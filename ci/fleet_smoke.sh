#!/usr/bin/env bash
# Fleet smoke: the router's failure model through the real binaries.
# Starts THREE `wmpctl serve --reactor` predictor nodes, streams a query
# log through `wmpctl fleet score` while one node is kill -9'd mid-stream
# (the score step exits nonzero on ANY failed workload, so "zero failed
# scores across a node death" is asserted by the exit code), proves that a
# coordinated publish with a dead node FAILS CLOSED (survivors stay on the
# prior epoch, nothing staged), then revives the node, publishes
# fleet-wide, rolls back fleet-wide, and re-scores. Any nonzero step (or
# an expected-to-fail step succeeding) fails the script.
set -euo pipefail

BUILD=${1:-build}
WORK=$(mktemp -d /tmp/wmp-fleet-smoke.XXXXXX)
LOG="$WORK/log.txt"
MODEL="$WORK/model.wmp"
MODEL2="$WORK/model2.wmp"
declare -a NODE_PIDS=()

cleanup() {
  for pid in "${NODE_PIDS[@]:-}"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      kill "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

SOCK1="$WORK/node1.sock"
SOCK2="$WORK/node2.sock"
SOCK3="$WORK/node3.sock"
NODES="unix:$SOCK1,unix:$SOCK2,unix:$SOCK3"

# start_node <index> -> NODE_PIDS[index]
start_node() {
  local i="$1"
  local sock_var="SOCK$((i + 1))"
  local sock="${!sock_var}"
  "$BUILD/wmpctl" serve --reactor --listen="unix:$sock" --model="$MODEL" \
    --name=default >"$WORK/node$((i + 1)).log" 2>&1 &
  NODE_PIDS[i]=$!
  for _ in $(seq 100); do
    [[ -S "$sock" ]] && return 0
    kill -0 "${NODE_PIDS[i]}" 2>/dev/null || {
      cat "$WORK/node$((i + 1)).log"; exit 1;
    }
    sleep 0.1
  done
  echo "node $((i + 1)) socket never appeared"
  cat "$WORK/node$((i + 1)).log"
  exit 1
}

echo "== generate + train two artifacts (the fleet rollout payloads)"
"$BUILD/wmpctl" generate --benchmark=tpcc --queries=4000 --out="$LOG"
"$BUILD/wmpctl" train --log="$LOG" --model="$MODEL" --templates=12 --batch=10
"$BUILD/wmpctl" train --log="$LOG" --model="$MODEL2" --templates=12 \
  --batch=10 --seed=7

echo "== start a 3-node predictor fleet (reactor transport)"
for i in 0 1 2; do start_node "$i"; done

echo "== fleet status: every node healthy on one consistent epoch"
"$BUILD/wmpctl" fleet status --nodes="$NODES"

echo "== score under fire: kill -9 node 2 mid-stream, expect ZERO failures"
# Twenty passes under twenty tenants: tenants hash across all three nodes,
# so when the kill lands mid-loop some passes are actively scoring against
# the dying node and must fail over. Any pass with a failed workload exits
# nonzero and fails the smoke.
(
  for t in $(seq 0 19); do
    echo "-- score pass tenant-$t" >>"$WORK/score1.log"
    "$BUILD/wmpctl" fleet score --nodes="$NODES" --log="$LOG" --chunk=200 \
      --batch=10 --tenant="tenant-$t" >>"$WORK/score1.log" 2>&1 || exit 1
  done
) &
SCORE_PID=$!
sleep 0.7
kill -9 "${NODE_PIDS[1]}" 2>/dev/null || true
wait "${NODE_PIDS[1]}" 2>/dev/null || true
if ! wait "$SCORE_PID"; then
  echo "FAIL: scoring reported failures across the node death"
  cat "$WORK/score1.log"
  exit 1
fi
tail -6 "$WORK/score1.log"
echo "   (passes that failed over: $(grep -c 'retries/failovers' \
  "$WORK/score1.log" || true) scored, kill survived)"

echo "== publish with a dead node must FAIL CLOSED"
if "$BUILD/wmpctl" fleet publish --nodes="$NODES" --model="$MODEL2" \
    >"$WORK/pub-dead.log" 2>&1; then
  echo "FAIL: publish claimed success with a dead node"
  cat "$WORK/pub-dead.log"
  exit 1
fi
cat "$WORK/pub-dead.log"

echo "== survivors must still be on the prior epoch, consistent"
"$BUILD/wmpctl" fleet status --nodes="unix:$SOCK1,unix:$SOCK3" \
  | tee "$WORK/status-after-fail.log"
grep -q "epochs consistent" "$WORK/status-after-fail.log"
if ! grep -q "epoch=1" "$WORK/status-after-fail.log"; then
  echo "FAIL: a survivor moved off the prior epoch after a failed rollout"
  exit 1
fi

echo "== revive node 2; the fleet-wide publish now succeeds"
start_node 1
"$BUILD/wmpctl" fleet publish --nodes="$NODES" --model="$MODEL2" \
  | tee "$WORK/pub-ok.log"
grep -q "every node on epoch 2" "$WORK/pub-ok.log"

echo "== fleet-wide rollback returns every node to epoch 1"
"$BUILD/wmpctl" fleet rollback --nodes="$NODES" | tee "$WORK/rb.log"
grep -q "every node on epoch 1" "$WORK/rb.log"

echo "== full-fleet re-score after the rollout churn: still zero failures"
"$BUILD/wmpctl" fleet score --nodes="$NODES" --log="$LOG" --chunk=400 \
  --batch=10

echo "== clean shutdown"
for pid in "${NODE_PIDS[@]}"; do
  kill -INT "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
done
NODE_PIDS=()
echo "fleet smoke OK"
