#!/usr/bin/env bash
# Wire-protocol smoke: the full out-of-process serving loop through the
# real binaries — start `wmpctl serve` on a loopback Unix socket, stream a
# log through `wmpctl score --connect` in chunks, roll out a retrained
# model with `wmpctl train --publish --connect` (which asserts zero failed
# requests and bitwise post-swap scores), roll it back, and shut the
# server down cleanly. Any nonzero step fails the script.
set -euo pipefail

BUILD=${1:-build}
WORK=$(mktemp -d /tmp/wmp-wire-smoke.XXXXXX)
SOCK="$WORK/wire.sock"
LOG="$WORK/log.txt"
MODEL="$WORK/model.wmp"
SERVER_LOG="$WORK/server.log"
SERVER_PID=""

cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== generate + train the first artifact"
"$BUILD/wmpctl" generate --benchmark=tpcc --queries=600 --out="$LOG"
"$BUILD/wmpctl" train --log="$LOG" --model="$MODEL" --templates=12 --batch=10

echo "== start wmpctl serve on unix:$SOCK"
"$BUILD/wmpctl" serve --listen="unix:$SOCK" --model="$MODEL" \
  --name=smoke --warm-log="$LOG" >"$SERVER_LOG" 2>&1 &
SERVER_PID=$!
for _ in $(seq 100); do
  [[ -S "$SOCK" ]] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$SERVER_LOG"; exit 1; }
  sleep 0.1
done
[[ -S "$SOCK" ]] || { echo "server socket never appeared"; cat "$SERVER_LOG"; exit 1; }

echo "== score the log over the wire in chunks"
"$BUILD/wmpctl" score --log="$LOG" --connect="unix:$SOCK" --chunk=150 --batch=10

echo "== retrain (different seed) and publish over the wire"
"$BUILD/wmpctl" train --log="$LOG" --model="$MODEL" --templates=12 --batch=10 \
  --seed=7 --publish --connect="unix:$SOCK" --name=smoke

echo "== roll the publish back"
"$BUILD/wmpctl" rollback --connect="unix:$SOCK" --name=smoke

echo "== score again after rollback"
"$BUILD/wmpctl" score --log="$LOG" --connect="unix:$SOCK" --chunk=150 --batch=10

echo "== clean shutdown"
kill -INT "$SERVER_PID"
wait "$SERVER_PID"
SERVER_PID=""
cat "$SERVER_LOG"
echo "wire smoke OK"
