#!/usr/bin/env bash
# Wire-protocol smoke: the full out-of-process serving loop through the
# real binaries — start `wmpctl serve` on a loopback Unix socket, stream a
# log through `wmpctl score --connect` in chunks, roll out a retrained
# model with `wmpctl train --publish --connect` (which asserts zero failed
# requests and bitwise post-swap scores), roll it back, and shut the
# server down cleanly. The loop runs TWICE: once against the blocking
# thread-per-connection server, once against the epoll reactor
# (`serve --reactor`) with the pipelined client (`score --pipeline`) —
# same protocol, same scores, different transport. Any nonzero step fails
# the script.
set -euo pipefail

BUILD=${1:-build}
WORK=$(mktemp -d /tmp/wmp-wire-smoke.XXXXXX)
LOG="$WORK/log.txt"
MODEL="$WORK/model.wmp"
SERVER_PID=""

cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== generate + train the first artifact"
"$BUILD/wmpctl" generate --benchmark=tpcc --queries=600 --out="$LOG"
"$BUILD/wmpctl" train --log="$LOG" --model="$MODEL" --templates=12 --batch=10

# run_loop <tag> <serve extra flags> <score extra flags>
run_loop() {
  local tag="$1" serve_flags="$2" score_flags="$3"
  local sock="$WORK/wire-$tag.sock"
  local server_log="$WORK/server-$tag.log"

  echo "== [$tag] start wmpctl serve $serve_flags on unix:$sock"
  # shellcheck disable=SC2086
  "$BUILD/wmpctl" serve --listen="unix:$sock" --model="$MODEL" \
    --name=smoke --warm-log="$LOG" $serve_flags >"$server_log" 2>&1 &
  SERVER_PID=$!
  for _ in $(seq 100); do
    [[ -S "$sock" ]] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { cat "$server_log"; exit 1; }
    sleep 0.1
  done
  [[ -S "$sock" ]] || { echo "server socket never appeared"; cat "$server_log"; exit 1; }

  echo "== [$tag] score the log over the wire in chunks"
  # shellcheck disable=SC2086
  "$BUILD/wmpctl" score --log="$LOG" --connect="unix:$sock" --chunk=150 \
    --batch=10 $score_flags

  echo "== [$tag] retrain (different seed) and publish over the wire"
  "$BUILD/wmpctl" train --log="$LOG" --model="$MODEL" --templates=12 \
    --batch=10 --seed=7 --publish --connect="unix:$sock" --name=smoke

  echo "== [$tag] roll the publish back"
  "$BUILD/wmpctl" rollback --connect="unix:$sock" --name=smoke

  echo "== [$tag] score again after rollback"
  # shellcheck disable=SC2086
  "$BUILD/wmpctl" score --log="$LOG" --connect="unix:$sock" --chunk=150 \
    --batch=10 $score_flags

  echo "== [$tag] clean shutdown"
  kill -INT "$SERVER_PID"
  wait "$SERVER_PID"
  SERVER_PID=""
  cat "$server_log"
}

run_loop blocking "" ""
run_loop reactor "--reactor" "--pipeline=16"
echo "wire smoke OK"
