// Unit tests for the MLP regressor and the L-BFGS minimizer.

#include <gtest/gtest.h>

#include <cmath>

#include "ml/lbfgs.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "util/io.h"
#include "util/random.h"

namespace wmp::ml {
namespace {

void LinearData(size_t n, uint64_t seed, Matrix* x, std::vector<double>* y) {
  Rng rng(seed);
  *x = Matrix(n, 3);
  y->resize(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < 3; ++c) x->At(i, c) = rng.UniformDouble(-1, 1);
    (*y)[i] = 2.0 * x->At(i, 0) - 1.0 * x->At(i, 1) + 0.5 * x->At(i, 2) + 3.0;
  }
}

void NonlinearData(size_t n, uint64_t seed, Matrix* x,
                   std::vector<double>* y) {
  Rng rng(seed);
  *x = Matrix(n, 2);
  y->resize(n);
  for (size_t i = 0; i < n; ++i) {
    x->At(i, 0) = rng.UniformDouble(-2, 2);
    x->At(i, 1) = rng.UniformDouble(-2, 2);
    (*y)[i] = x->At(i, 0) * x->At(i, 0) + std::sin(2.0 * x->At(i, 1));
  }
}

// ---------- L-BFGS on analytic objectives ----------

TEST(LbfgsTest, MinimizesQuadraticBowl) {
  // f(x) = (x0-3)^2 + 10 (x1+1)^2
  ObjectiveFn f = [](const std::vector<double>& x, std::vector<double>* g) {
    g->assign(2, 0.0);
    (*g)[0] = 2.0 * (x[0] - 3.0);
    (*g)[1] = 20.0 * (x[1] + 1.0);
    return (x[0] - 3.0) * (x[0] - 3.0) + 10.0 * (x[1] + 1.0) * (x[1] + 1.0);
  };
  auto result = MinimizeLbfgs(f, {0.0, 0.0});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->x[0], 3.0, 1e-4);
  EXPECT_NEAR(result->x[1], -1.0, 1e-4);
  EXPECT_TRUE(result->converged);
}

TEST(LbfgsTest, MinimizesRosenbrock) {
  // Classic ill-conditioned valley; optimum at (1, 1).
  ObjectiveFn f = [](const std::vector<double>& x, std::vector<double>* g) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    g->assign(2, 0.0);
    (*g)[0] = -2.0 * a - 400.0 * x[0] * b;
    (*g)[1] = 200.0 * b;
    return a * a + 100.0 * b * b;
  };
  LbfgsOptions opt;
  opt.max_iters = 500;
  auto result = MinimizeLbfgs(f, {-1.2, 1.0}, opt);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->x[0], 1.0, 1e-3);
  EXPECT_NEAR(result->x[1], 1.0, 1e-3);
}

TEST(LbfgsTest, EmptyStartRejected) {
  ObjectiveFn f = [](const std::vector<double>&, std::vector<double>* g) {
    g->clear();
    return 0.0;
  };
  EXPECT_TRUE(MinimizeLbfgs(f, {}).status().IsInvalidArgument());
}

// ---------- MLP ----------

TEST(MlpTest, LearnsLinearFunctionWithIdentityActivation) {
  Matrix x;
  std::vector<double> y;
  LinearData(600, 1, &x, &y);
  MlpOptions opt;
  opt.hidden_layers = {8};
  opt.activation = Activation::kIdentity;
  opt.solver = MlpSolver::kAdam;
  opt.max_iter = 200;
  MlpRegressor model(opt);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_LT(Rmse(y, model.Predict(x).value()), 0.1);
}

TEST(MlpTest, LearnsNonlinearFunctionWithRelu) {
  Matrix x;
  std::vector<double> y;
  NonlinearData(1200, 3, &x, &y);
  MlpOptions opt;
  opt.hidden_layers = {32, 16};
  opt.activation = Activation::kRelu;
  opt.solver = MlpSolver::kAdam;
  opt.learning_rate = 3e-3;
  opt.max_iter = 300;
  opt.n_iter_no_change = 30;
  MlpRegressor model(opt);
  ASSERT_TRUE(model.Fit(x, y).ok());
  // Target spread is ~2.1; a fit below 0.5 RMSE demonstrates real learning.
  EXPECT_LT(Rmse(y, model.Predict(x).value()), 0.5);
}

TEST(MlpTest, SgdSolverLearns) {
  Matrix x;
  std::vector<double> y;
  LinearData(400, 5, &x, &y);
  MlpOptions opt;
  opt.hidden_layers = {8};
  opt.activation = Activation::kIdentity;
  opt.solver = MlpSolver::kSgd;
  opt.learning_rate = 1e-2;
  opt.max_iter = 200;
  MlpRegressor model(opt);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_LT(Rmse(y, model.Predict(x).value()), 0.2);
}

TEST(MlpTest, LbfgsSolverLearnsSmallDataset) {
  // The paper observes L-BFGS is the better optimizer on small datasets.
  Matrix x;
  std::vector<double> y;
  LinearData(150, 7, &x, &y);
  MlpOptions opt;
  opt.hidden_layers = {6};
  opt.activation = Activation::kIdentity;
  opt.solver = MlpSolver::kLbfgs;
  opt.max_iter = 300;
  MlpRegressor model(opt);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_LT(Rmse(y, model.Predict(x).value()), 0.1);
}

TEST(MlpTest, TanhActivationWorks) {
  Matrix x;
  std::vector<double> y;
  NonlinearData(500, 9, &x, &y);
  MlpOptions opt;
  opt.hidden_layers = {16};
  opt.activation = Activation::kTanh;
  opt.max_iter = 200;
  MlpRegressor model(opt);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_LT(Rmse(y, model.Predict(x).value()), 1.0);
}

TEST(MlpTest, DefaultArchitectureIsPaperNet) {
  MlpRegressor model;
  EXPECT_EQ(model.options().hidden_layers,
            (std::vector<int>{48, 39, 27, 16, 7, 5}));
}

TEST(MlpTest, EarlyStoppingTerminatesBeforeMaxIter) {
  Matrix x;
  std::vector<double> y;
  LinearData(200, 11, &x, &y);
  MlpOptions opt;
  opt.hidden_layers = {4};
  opt.activation = Activation::kIdentity;
  opt.max_iter = 5000;
  opt.tol = 1e-3;
  opt.n_iter_no_change = 5;
  MlpRegressor model(opt);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_LT(model.iterations_run(), 5000);
}

TEST(MlpTest, ErrorsOnMisuse) {
  MlpRegressor model;
  EXPECT_TRUE(model.PredictOne({1.0}).status().IsFailedPrecondition());
  Matrix x(10, 2);
  EXPECT_TRUE(model.Fit(x, {1.0}).IsInvalidArgument());
  MlpOptions bad;
  bad.hidden_layers = {0};
  MlpRegressor bad_model(bad);
  std::vector<double> y(10, 1.0);
  EXPECT_TRUE(bad_model.Fit(x, y).IsInvalidArgument());
}

TEST(MlpTest, PredictDimensionChecked) {
  Matrix x;
  std::vector<double> y;
  LinearData(100, 13, &x, &y);
  MlpOptions opt;
  opt.hidden_layers = {4};
  opt.max_iter = 10;
  MlpRegressor model(opt);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_TRUE(model.PredictOne({1.0}).status().IsInvalidArgument());
}

TEST(MlpTest, DeterministicForSameSeed) {
  Matrix x;
  std::vector<double> y;
  LinearData(200, 17, &x, &y);
  MlpOptions opt;
  opt.hidden_layers = {8};
  opt.max_iter = 30;
  opt.seed = 99;
  MlpRegressor a(opt), b(opt);
  ASSERT_TRUE(a.Fit(x, y).ok());
  ASSERT_TRUE(b.Fit(x, y).ok());
  EXPECT_DOUBLE_EQ(a.PredictOne(x.RowVec(0)).value(),
                   b.PredictOne(x.RowVec(0)).value());
}

TEST(MlpTest, SerializationRoundTrip) {
  Matrix x;
  std::vector<double> y;
  NonlinearData(300, 19, &x, &y);
  MlpOptions opt;
  opt.hidden_layers = {12, 6};
  opt.max_iter = 50;
  MlpRegressor model(opt);
  ASSERT_TRUE(model.Fit(x, y).ok());
  BinaryWriter w;
  ASSERT_TRUE(model.Serialize(&w).ok());
  BinaryReader r(w.buffer());
  auto restored = MlpRegressor::Deserialize(&r);
  ASSERT_TRUE(restored.ok());
  for (size_t i = 0; i < 20; ++i) {
    auto probe = x.RowVec(i);
    EXPECT_NEAR((*restored)->PredictOne(probe).value(),
                model.PredictOne(probe).value(), 1e-10);
  }
}

// Property: all three solvers reach a reasonable fit on the same small task.
class MlpSolverProperty : public ::testing::TestWithParam<MlpSolver> {};

TEST_P(MlpSolverProperty, SolverFitsLinearTarget) {
  Matrix x;
  std::vector<double> y;
  LinearData(250, 23, &x, &y);
  MlpOptions opt;
  opt.hidden_layers = {8};
  opt.activation = Activation::kIdentity;
  opt.solver = GetParam();
  opt.max_iter = 250;
  opt.learning_rate = opt.solver == MlpSolver::kSgd ? 1e-2 : 1e-3;
  MlpRegressor model(opt);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_LT(Rmse(y, model.Predict(x).value()), 0.3)
      << MlpSolverName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Solvers, MlpSolverProperty,
                         ::testing::Values(MlpSolver::kSgd, MlpSolver::kAdam,
                                           MlpSolver::kLbfgs),
                         [](const ::testing::TestParamInfo<MlpSolver>& info) {
                           return MlpSolverName(info.param);
                         });

}  // namespace
}  // namespace wmp::ml
