// End-to-end tests of the fleet tier: engine::FleetEpochMap bookkeeping,
// the stage/commit/abort control plane on a single node, and
// net::FleetRouter against several in-process reactor nodes — probe-driven
// health states, failover scoring that stays bitwise-equal to the
// single-node reference while a node dies and revives, and the two-phase
// PublishAll/RollbackAll guarantee that a failed rollout leaves every node
// on its prior epoch.

#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "core/featurizer.h"
#include "core/learned_wmp.h"
#include "engine/batch_scorer.h"
#include "engine/fleet_map.h"
#include "engine/model_registry.h"
#include "engine/scoring_service.h"
#include "net/fleet.h"
#include "net/reactor_server.h"
#include "net/wire_client.h"
#include "util/io.h"
#include "util/strings.h"
#include "workloads/dataset.h"

namespace wmp {
namespace {

class FleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workloads::DatasetOptions opt;
    opt.num_queries = 300;
    opt.seed = 71;
    auto d = workloads::BuildDataset(workloads::Benchmark::kTpcc, opt);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    dataset_ = new workloads::Dataset(std::move(*d));
    indices_ =
        new std::vector<uint32_t>(core::AllIndices(dataset_->records.size()));

    core::LearnedWmpOptions lopt;
    lopt.templates.num_templates = 8;
    lopt.regressor = ml::RegressorKind::kGbt;
    auto model = core::LearnedWmpModel::Train(dataset_->records, *indices_,
                                              *dataset_->generator, lopt);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    model_ = new core::LearnedWmpModel(std::move(*model));

    core::LearnedWmpOptions lopt2 = lopt;
    lopt2.regressor = ml::RegressorKind::kRidge;
    auto model2 = core::LearnedWmpModel::Train(dataset_->records, *indices_,
                                               *dataset_->generator, lopt2);
    ASSERT_TRUE(model2.ok()) << model2.status().ToString();
    model2_ = new core::LearnedWmpModel(std::move(*model2));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete indices_;
    delete model_;
    delete model2_;
    dataset_ = nullptr;
    indices_ = nullptr;
    model_ = nullptr;
    model2_ = nullptr;
  }

  static std::shared_ptr<const core::LearnedWmpModel> Borrow(
      const core::LearnedWmpModel* model) {
    return {std::shared_ptr<const void>(), model};
  }

  static std::string SocketAddress(const char* tag) {
    return StrFormat("unix:/tmp/wmp_fleet_test.%d.%s.sock",
                     static_cast<int>(::getpid()), tag);
  }

  /// In-process reference predictions of `model` on the shared batch set.
  static std::vector<double> Reference(const core::LearnedWmpModel* model,
                                       const std::vector<core::WorkloadBatch>&
                                           batches) {
    engine::BatchScorer scorer(model);
    auto want = scorer.ScoreWorkloads(dataset_->records, batches);
    EXPECT_TRUE(want.ok());
    return want->predictions;
  }

  /// One predictor node: reactor server + its own registry, the topology
  /// FleetRouter assumes (each node keeps an independent epoch history).
  struct TestNode {
    engine::ScoringService service;
    engine::ModelRegistry registry;
    net::ReactorServer server;
    std::string address;

    TestNode(const core::LearnedWmpModel* model, std::string addr)
        : service({model}),
          server(&service, &registry, "default"),
          address(std::move(addr)) {}
    ~TestNode() { Down(); }

    void Up() {
      ASSERT_TRUE(server.Listen(address).ok());
      ASSERT_TRUE(server.Start().ok());
    }
    void Down() {
      server.Shutdown();
      service.Stop();
    }
  };

  /// Router options every fleet test starts from: no background probe
  /// thread (tests drive ProbeNow for determinism), fast failure
  /// detection, fixed seed.
  static net::FleetRouterOptions TestOptions() {
    net::FleetRouterOptions opts;
    opts.probe_interval_ms = 0;
    opts.connect_timeout_ms = 500;
    opts.request_timeout_ms = 3000;
    opts.control_timeout_ms = 3000;
    opts.down_after_failures = 2;
    opts.backoff_base_ms = 1;  // keep retries fast in tests
    opts.backoff_cap_ms = 4;
    opts.seed = 7;
    return opts;
  }

  static void ExpectCallBitwise(
      const Result<std::vector<Result<double>>>& got,
      const std::vector<double>& want) {
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->size(), want.size());
    for (size_t w = 0; w < want.size(); ++w) {
      ASSERT_TRUE((*got)[w].ok()) << (*got)[w].status().ToString();
      EXPECT_EQ(*(*got)[w], want[w]) << "w=" << w;
    }
  }

  static workloads::Dataset* dataset_;
  static std::vector<uint32_t>* indices_;
  static core::LearnedWmpModel* model_;
  static core::LearnedWmpModel* model2_;
};

workloads::Dataset* FleetTest::dataset_ = nullptr;
std::vector<uint32_t>* FleetTest::indices_ = nullptr;
core::LearnedWmpModel* FleetTest::model_ = nullptr;
core::LearnedWmpModel* FleetTest::model2_ = nullptr;

// ---------- FleetEpochMap ----------

TEST(FleetEpochMapTest, ObservedVsTargetAndMixedDetection) {
  engine::FleetEpochMap map;
  EXPECT_EQ(map.Get("a").observations, 0u);
  EXPECT_EQ(map.target(), 0u);
  EXPECT_FALSE(map.Mixed());
  EXPECT_TRUE(map.Divergent().empty());

  // Epoch 0 is a real observation ("node up, nothing published"), not an
  // unset sentinel: a fresh node among published peers IS a mixed fleet.
  map.Observe("a", 0);
  EXPECT_FALSE(map.Mixed());
  map.Observe("b", 2);
  EXPECT_TRUE(map.Mixed());
  map.Observe("a", 2);
  EXPECT_FALSE(map.Mixed());

  // Divergence is against the target and silent until one exists.
  EXPECT_TRUE(map.Divergent().empty());
  map.SetTarget(3);
  EXPECT_EQ(map.target(), 3u);
  auto divergent = map.Divergent();
  ASSERT_EQ(divergent.size(), 2u);
  map.Observe("a", 3);
  map.Observe("b", 3);
  EXPECT_TRUE(map.Divergent().empty());
  EXPECT_FALSE(map.Mixed());

  // Snapshot is address-ordered and counts observations.
  auto snapshot = map.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].first, "a");
  EXPECT_EQ(snapshot[0].second.observed_epoch, 3u);
  EXPECT_EQ(snapshot[0].second.observations, 3u);
}

// ---------- Stage / commit / abort on one node ----------

TEST_F(FleetTest, StageCommitAbortLifecycle) {
  TestNode node(model_, SocketAddress("twophase"));
  ASSERT_TRUE(node.registry.Record("default", Borrow(model_)).ok());
  node.Up();
  const auto batches =
      engine::MakeConsecutiveBatches(dataset_->records.size(), 10);
  const std::vector<double> want2 = Reference(model2_, batches);

  net::WireClient client(node.address);
  auto health = client.Health(41);
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->nonce, 41u);
  EXPECT_EQ(health->registry_epoch, 1u);
  EXPECT_EQ(health->staged_ticket, 0u);

  // Stage parks the artifact without installing anything.
  BinaryWriter artifact;
  ASSERT_TRUE(model2_->Serialize(&artifact).ok());
  auto staged = client.Stage("default", artifact.buffer());
  ASSERT_TRUE(staged.ok()) << staged.status().ToString();
  const uint64_t ticket = staged->ticket;
  EXPECT_GT(ticket, 0u);
  health = client.Health(42);
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->registry_epoch, 1u) << "stage must not install";
  EXPECT_EQ(health->staged_ticket, ticket);

  // A commit must name the exact ticket; a mismatch leaves the artifact
  // parked (the coordinator may still commit it correctly).
  auto bad = client.Commit(ticket + 1);
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsFailedPrecondition())
      << bad.status().ToString();
  health = client.Health(43);
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->staged_ticket, ticket);
  EXPECT_EQ(health->registry_epoch, 1u);

  // The real commit installs the staged bytes bitwise.
  auto committed = client.Commit(ticket);
  ASSERT_TRUE(committed.ok()) << committed.status().ToString();
  EXPECT_EQ(committed->registry_epoch, 2u);
  ExpectCallBitwise(client.ScoreWorkloads("t", dataset_->records, batches),
                    want2);
  health = client.Health(44);
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->registry_epoch, 2u);
  EXPECT_EQ(health->staged_ticket, 0u) << "commit consumes the ticket";

  // Abort is idempotent; ticket 0 discards whatever is parked.
  auto aborted = client.Abort(0);
  ASSERT_TRUE(aborted.ok());
  EXPECT_EQ(aborted->had_staged, 0u);
  staged = client.Stage("default", artifact.buffer());
  ASSERT_TRUE(staged.ok());
  aborted = client.Abort(staged->ticket);
  ASSERT_TRUE(aborted.ok());
  EXPECT_EQ(aborted->had_staged, 1u);
  aborted = client.Abort(staged->ticket);
  ASSERT_TRUE(aborted.ok());
  EXPECT_EQ(aborted->had_staged, 0u);
  health = client.Health(45);
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->registry_epoch, 2u) << "aborts must not change epochs";
}

// ---------- Router: probing + scoring ----------

TEST_F(FleetTest, RouterProbesFleetAndScoresBitwise) {
  std::vector<std::unique_ptr<TestNode>> fleet;
  std::vector<std::string> addresses;
  for (int i = 0; i < 3; ++i) {
    auto node = std::make_unique<TestNode>(
        model_, SocketAddress(StrFormat("score%d", i).c_str()));
    ASSERT_TRUE(node->registry.Record("default", Borrow(model_)).ok());
    node->Up();
    addresses.push_back(node->address);
    fleet.push_back(std::move(node));
  }
  const auto batches =
      engine::MakeConsecutiveBatches(dataset_->records.size(), 10);
  const std::vector<double> want = Reference(model_, batches);

  net::FleetRouter router(addresses, TestOptions());
  ASSERT_TRUE(router.Start().ok());
  // Start's synchronous sweep already probed every node.
  for (const auto& status : router.Nodes()) {
    EXPECT_EQ(status.health, net::NodeHealth::kHealthy) << status.address;
    EXPECT_EQ(status.observed_epoch, 1u);
    EXPECT_EQ(status.probes_ok, 1u);
  }
  EXPECT_FALSE(router.epoch_map().Mixed());

  // Distinct tenants spread across nodes; every call must be bitwise the
  // single-node reference regardless of which replica served it.
  constexpr int kTenants = 12;
  for (int t = 0; t < kTenants; ++t) {
    ExpectCallBitwise(
        router.ScoreWorkloads(StrFormat("tenant-%d", t), dataset_->records,
                              batches),
        want);
  }
  const auto counters = router.counters();
  EXPECT_EQ(counters.scores, static_cast<uint64_t>(kTenants));
  EXPECT_EQ(counters.score_failures, 0u);
  EXPECT_EQ(counters.score_retries, 0u);
  uint64_t served = 0;
  for (const auto& status : router.Nodes()) served += status.scores_ok;
  EXPECT_EQ(served, static_cast<uint64_t>(kTenants));
  router.Stop();
}

TEST_F(FleetTest, RouterFailsOverOnNodeDeathThenProbeRevives) {
  std::vector<std::unique_ptr<TestNode>> fleet;
  std::vector<std::string> addresses;
  for (int i = 0; i < 3; ++i) {
    auto node = std::make_unique<TestNode>(
        model_, SocketAddress(StrFormat("fail%d", i).c_str()));
    ASSERT_TRUE(node->registry.Record("default", Borrow(model_)).ok());
    node->Up();
    addresses.push_back(node->address);
    fleet.push_back(std::move(node));
  }
  const auto batches =
      engine::MakeConsecutiveBatches(dataset_->records.size(), 10);
  const std::vector<double> want = Reference(model_, batches);

  net::FleetRouter router(addresses, TestOptions());
  ASSERT_TRUE(router.Start().ok());
  ExpectCallBitwise(router.ScoreWorkloads("warm", dataset_->records, batches),
                    want);

  // Kill the middle node under traffic: every call must still succeed and
  // stay bitwise-correct — a node death costs retries, never a failed
  // client call.
  fleet[1]->Down();
  for (int t = 0; t < 16; ++t) {
    ExpectCallBitwise(
        router.ScoreWorkloads(StrFormat("tenant-%d", t), dataset_->records,
                              batches),
        want);
  }
  const auto counters = router.counters();
  EXPECT_EQ(counters.score_failures, 0u);
  EXPECT_GT(counters.score_retries, 0u)
      << "some tenant must have hashed onto the dead node";
  // After its first failure the node is suspect and healthy replicas
  // absorb the traffic, so only probes accumulate further evidence.
  EXPECT_EQ(router.Nodes()[1].health, net::NodeHealth::kSuspect);
  EXPECT_GT(router.Nodes()[1].scores_failed, 0u);

  // A probe sweep against the still-dead node crosses the failure
  // threshold and takes it down; further sweeps keep it down.
  router.ProbeNow();
  EXPECT_EQ(router.Nodes()[1].health, net::NodeHealth::kDown);
  router.ProbeNow();
  EXPECT_EQ(router.Nodes()[1].health, net::NodeHealth::kDown);

  // Revive it (same address, fresh process-equivalent) — only a probe
  // takes a node out of down, and traffic then uses it again.
  fleet[1] = std::make_unique<TestNode>(model_, addresses[1]);
  ASSERT_TRUE(fleet[1]->registry.Record("default", Borrow(model_)).ok());
  fleet[1]->Up();
  router.ProbeNow();
  EXPECT_EQ(router.Nodes()[1].health, net::NodeHealth::kHealthy);
  EXPECT_EQ(router.Nodes()[1].observed_epoch, 1u);
  const uint64_t served_before = router.Nodes()[1].scores_ok;
  for (int t = 0; t < 16; ++t) {
    ExpectCallBitwise(
        router.ScoreWorkloads(StrFormat("tenant-%d", t), dataset_->records,
                              batches),
        want);
  }
  EXPECT_GT(router.Nodes()[1].scores_ok, served_before)
      << "a revived node must rejoin the rotation";
  EXPECT_EQ(router.counters().score_failures, 0u);
  router.Stop();
}

// ---------- Router: coordinated rollouts ----------

TEST_F(FleetTest, PublishAllTwoPhaseSwapsTheWholeFleetBitwise) {
  std::vector<std::unique_ptr<TestNode>> fleet;
  std::vector<std::string> addresses;
  for (int i = 0; i < 3; ++i) {
    auto node = std::make_unique<TestNode>(
        model_, SocketAddress(StrFormat("pub%d", i).c_str()));
    ASSERT_TRUE(node->registry.Record("default", Borrow(model_)).ok());
    node->Up();
    addresses.push_back(node->address);
    fleet.push_back(std::move(node));
  }
  const auto batches =
      engine::MakeConsecutiveBatches(dataset_->records.size(), 10);
  const std::vector<double> want2 = Reference(model2_, batches);

  net::FleetRouter router(addresses, TestOptions());
  ASSERT_TRUE(router.Start().ok());
  auto report = router.PublishAll("default", *model2_);
  EXPECT_TRUE(report.ok) << report.failure;
  EXPECT_EQ(report.epoch, 2u);
  ASSERT_EQ(report.nodes.size(), 3u);
  for (const auto& entry : report.nodes) {
    EXPECT_TRUE(entry.staged) << entry.address;
    EXPECT_TRUE(entry.committed) << entry.address;
    EXPECT_FALSE(entry.aborted);
    EXPECT_FALSE(entry.compensated);
    EXPECT_EQ(entry.epoch, 2u);
  }
  EXPECT_EQ(router.epoch_map().target(), 2u);
  EXPECT_TRUE(router.epoch_map().Divergent().empty());
  EXPECT_FALSE(router.epoch_map().Mixed());

  // Every node — asked directly, not through the router — now serves the
  // new model bitwise, with nothing left parked.
  for (const auto& address : addresses) {
    net::WireClient direct(address);
    auto health = direct.Health(9);
    ASSERT_TRUE(health.ok());
    EXPECT_EQ(health->registry_epoch, 2u) << address;
    EXPECT_EQ(health->staged_ticket, 0u) << address;
    ExpectCallBitwise(
        direct.ScoreWorkloads("t", dataset_->records, batches), want2);
  }
  ExpectCallBitwise(router.ScoreWorkloads("t", dataset_->records, batches),
                    want2);
  router.Stop();
}

TEST_F(FleetTest, PublishAllStageFailureLeavesEveryNodeOnPriorEpoch) {
  std::vector<std::unique_ptr<TestNode>> fleet;
  std::vector<std::string> addresses;
  for (int i = 0; i < 3; ++i) {
    auto node = std::make_unique<TestNode>(
        model_, SocketAddress(StrFormat("pubfail%d", i).c_str()));
    ASSERT_TRUE(node->registry.Record("default", Borrow(model_)).ok());
    node->Up();
    addresses.push_back(node->address);
    fleet.push_back(std::move(node));
  }
  const auto batches =
      engine::MakeConsecutiveBatches(dataset_->records.size(), 10);
  const std::vector<double> want = Reference(model_, batches);

  net::FleetRouter router(addresses, TestOptions());
  ASSERT_TRUE(router.Start().ok());
  // One node down -> the stage phase cannot complete -> the rollout must
  // abort everywhere with NO epoch change anywhere.
  fleet[2]->Down();
  auto report = router.PublishAll("default", *model2_);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.failure.find("stage phase failed"), std::string::npos)
      << report.failure;
  EXPECT_TRUE(report.nodes[0].staged);
  EXPECT_TRUE(report.nodes[0].aborted);
  EXPECT_FALSE(report.nodes[0].committed);
  EXPECT_TRUE(report.nodes[1].staged);
  EXPECT_TRUE(report.nodes[1].aborted);
  EXPECT_FALSE(report.nodes[2].staged);
  EXPECT_FALSE(report.nodes[2].error.empty());

  // Surviving nodes: prior epoch, nothing parked, old model served.
  for (int i = 0; i < 2; ++i) {
    net::WireClient direct(addresses[i]);
    auto health = direct.Health(5);
    ASSERT_TRUE(health.ok());
    EXPECT_EQ(health->registry_epoch, 1u) << addresses[i];
    EXPECT_EQ(health->staged_ticket, 0u) << addresses[i];
    ExpectCallBitwise(
        direct.ScoreWorkloads("t", dataset_->records, batches), want);
  }
  EXPECT_EQ(router.counters().publishes, 1u);
  router.Stop();
}

TEST_F(FleetTest, RollbackAllRestoresThePreviousEpochFleetWide) {
  std::vector<std::unique_ptr<TestNode>> fleet;
  std::vector<std::string> addresses;
  for (int i = 0; i < 3; ++i) {
    // Each node serves model2 at epoch 2 with model_ at epoch 1 beneath.
    auto node = std::make_unique<TestNode>(
        model2_, SocketAddress(StrFormat("rb%d", i).c_str()));
    ASSERT_TRUE(node->registry.Record("default", Borrow(model_)).ok());
    ASSERT_TRUE(node->registry.Record("default", Borrow(model2_)).ok());
    node->Up();
    addresses.push_back(node->address);
    fleet.push_back(std::move(node));
  }
  const auto batches =
      engine::MakeConsecutiveBatches(dataset_->records.size(), 10);
  const std::vector<double> want = Reference(model_, batches);

  net::FleetRouter router(addresses, TestOptions());
  ASSERT_TRUE(router.Start().ok());
  EXPECT_EQ(router.Nodes()[0].observed_epoch, 2u);
  auto report = router.RollbackAll("default");
  EXPECT_TRUE(report.ok) << report.failure;
  EXPECT_EQ(report.epoch, 1u);
  EXPECT_EQ(router.epoch_map().target(), 1u);
  EXPECT_TRUE(router.epoch_map().Divergent().empty());
  for (const auto& address : addresses) {
    net::WireClient direct(address);
    ExpectCallBitwise(
        direct.ScoreWorkloads("t", dataset_->records, batches), want);
  }
  EXPECT_EQ(router.counters().rollbacks, 1u);
  router.Stop();
}

}  // namespace
}  // namespace wmp
