// Equivalence suite for the histogram training engine: the production path
// (feature-major bins, single-pass builds, sibling subtraction, pooled
// buffers, GBT leaf-scatter updates) must reproduce the retained reference
// (direct-build) engine within 1e-9 on predictions — DT and RF exactly,
// GBT up to histogram-subtraction noise — so a subtraction bug can never
// silently change models. Also pins the allocation-free-growth contract:
// histogram buffers allocated during an ensemble fit are bounded by tree
// depth, not node count.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ml/binned.h"
#include "ml/dtree.h"
#include "ml/gbt.h"
#include "ml/random_forest.h"
#include "util/random.h"

namespace wmp::ml {
namespace {

// Continuous targets over mixed step/smooth structure: tree-friendly but
// with noise, so competing split gains are well separated and the two
// engines choose identical structure.
void MakeData(size_t n, uint64_t seed, Matrix* x, std::vector<double>* y) {
  Rng rng(seed);
  *x = Matrix(n, 6);
  y->resize(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < 6; ++c) x->At(i, c) = rng.UniformDouble(-3, 3);
    (*y)[i] = (x->At(i, 0) > 0.4 ? 10.0 : 0.0) + 2.0 * x->At(i, 1) +
              x->At(i, 2) * x->At(i, 2) + rng.Normal(0, 0.5);
  }
}

double MaxRelDiff(const std::vector<double>& a, const std::vector<double>& b) {
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst,
                     std::fabs(a[i] - b[i]) / std::max(1.0, std::fabs(a[i])));
  }
  return worst;
}

TEST(TrainEquivalenceTest, DecisionTreeMatchesReferenceBitwise) {
  Matrix x;
  std::vector<double> y;
  MakeData(1500, 101, &x, &y);
  DecisionTreeOptions opt;
  opt.tree.max_depth = 10;
  DecisionTreeRegressor hist(opt);
  opt.tree.growth = TreeGrowth::kReference;
  DecisionTreeRegressor ref(opt);
  ASSERT_TRUE(hist.Fit(x, y).ok());
  ASSERT_TRUE(ref.Fit(x, y).ok());
  // All features examined per split -> subtraction engine; structure and
  // leaf means (computed from row scans, not histograms) match exactly on
  // tie-free data.
  ASSERT_EQ(hist.tree().nodes().size(), ref.tree().nodes().size());
  auto ph = hist.Predict(x).value();
  auto pr = ref.Predict(x).value();
  EXPECT_LE(MaxRelDiff(pr, ph), 1e-9);
}

TEST(TrainEquivalenceTest, RandomForestMatchesReferenceBitwise) {
  Matrix x;
  std::vector<double> y;
  MakeData(900, 103, &x, &y);
  RandomForestOptions opt;
  opt.num_trees = 15;
  opt.seed = 9;  // feature_fraction 0.6 -> per-node sampling, direct builds
  RandomForestRegressor hist(opt);
  opt.tree.growth = TreeGrowth::kReference;
  RandomForestRegressor ref(opt);
  ASSERT_TRUE(hist.Fit(x, y).ok());
  ASSERT_TRUE(ref.Fit(x, y).ok());
  auto ph = hist.Predict(x).value();
  auto pr = ref.Predict(x).value();
  // Sampled mode accumulates in the reference's exact order and consumes
  // the RNG identically, so the forests are bitwise equal.
  for (size_t i = 0; i < pr.size(); ++i) EXPECT_EQ(pr[i], ph[i]);
}

TEST(TrainEquivalenceTest, GbtMatchesReferenceWithinTolerance) {
  Matrix x;
  std::vector<double> y;
  MakeData(1200, 107, &x, &y);
  GbtOptions opt;
  opt.num_rounds = 60;
  GbtRegressor hist(opt);
  opt.growth = TreeGrowth::kReference;
  GbtRegressor ref(opt);
  ASSERT_TRUE(hist.Fit(x, y).ok());
  ASSERT_TRUE(ref.Fit(x, y).ok());
  EXPECT_EQ(hist.num_trees(), ref.num_trees());
  EXPECT_DOUBLE_EQ(hist.base_score(), ref.base_score());
  auto ph = hist.Predict(x).value();
  auto pr = ref.Predict(x).value();
  EXPECT_LE(MaxRelDiff(pr, ph), 1e-9);
}

TEST(TrainEquivalenceTest, GbtSubsampleExercisesBinSpaceTraversal) {
  // subsample < 1 routes out-of-sample rows through the grower's bin-space
  // traversal each round; colsample < 1 restricts subtraction to the
  // sampled segments. Both must stay within tolerance of raw re-traversal.
  Matrix x;
  std::vector<double> y;
  MakeData(1000, 109, &x, &y);
  GbtOptions opt;
  opt.num_rounds = 50;
  opt.subsample = 0.8;
  opt.colsample = 0.7;
  opt.seed = 21;
  GbtRegressor hist(opt);
  opt.growth = TreeGrowth::kReference;
  GbtRegressor ref(opt);
  ASSERT_TRUE(hist.Fit(x, y).ok());
  ASSERT_TRUE(ref.Fit(x, y).ok());
  auto ph = hist.Predict(x).value();
  auto pr = ref.Predict(x).value();
  EXPECT_LE(MaxRelDiff(pr, ph), 1e-9);
}

TEST(TrainEquivalenceTest, FitFromBinnedMatchesFitBitwise) {
  Matrix x;
  std::vector<double> y;
  MakeData(800, 113, &x, &y);
  auto data = BinnedDataset::Build(x, 64);
  ASSERT_TRUE(data.ok());

  GbtRegressor plain{GbtOptions{.num_rounds = 20}};
  GbtRegressor shared{GbtOptions{.num_rounds = 20}};
  ASSERT_TRUE(plain.Fit(x, y).ok());
  ASSERT_TRUE(shared.FitFromBinned(*data, y).ok());
  auto pp = plain.Predict(x).value();
  auto ps = shared.Predict(x).value();
  for (size_t i = 0; i < pp.size(); ++i) EXPECT_EQ(pp[i], ps[i]);

  RandomForestRegressor rf_plain{RandomForestOptions{.num_trees = 8}};
  RandomForestRegressor rf_shared{RandomForestOptions{.num_trees = 8}};
  ASSERT_TRUE(rf_plain.Fit(x, y).ok());
  ASSERT_TRUE(rf_shared.FitFromBinned(*data, y).ok());
  auto rp = rf_plain.Predict(x).value();
  auto rs = rf_shared.Predict(x).value();
  for (size_t i = 0; i < rp.size(); ++i) EXPECT_EQ(rp[i], rs[i]);
}

TEST(TrainEquivalenceTest, SharedBinCacheBinsOnceAcrossFamilies) {
  Matrix x;
  std::vector<double> y;
  MakeData(600, 127, &x, &y);
  BinnedDatasetCache cache;
  DecisionTreeRegressor dt;
  RandomForestRegressor rf{RandomForestOptions{.num_trees = 6}};
  GbtRegressor gbt{GbtOptions{.num_rounds = 15}};
  ASSERT_TRUE(dt.FitWithSharedBins(x, y, &cache).ok());
  ASSERT_TRUE(rf.FitWithSharedBins(x, y, &cache).ok());
  ASSERT_TRUE(gbt.FitWithSharedBins(x, y, &cache).ok());
  // All three share max_bins=64, so the design was binned exactly once.
  EXPECT_EQ(cache.builds(), 1u);
  EXPECT_EQ(cache.hits(), 2u);
  // The shared-bin fit is the fit each model computes alone.
  DecisionTreeRegressor dt_alone;
  ASSERT_TRUE(dt_alone.Fit(x, y).ok());
  auto pa = dt_alone.Predict(x).value();
  auto pc = dt.Predict(x).value();
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pc[i]);
}

TEST(TrainEquivalenceTest, ReferenceGrowthRejectsFitFromBinned) {
  Matrix x;
  std::vector<double> y;
  MakeData(200, 131, &x, &y);
  auto data = BinnedDataset::Build(x, 64);
  ASSERT_TRUE(data.ok());
  DecisionTreeOptions opt;
  opt.tree.growth = TreeGrowth::kReference;
  DecisionTreeRegressor dt(opt);
  EXPECT_TRUE(dt.FitFromBinned(*data, y).IsInvalidArgument());
}

// The allocation-free-growth contract: one ensemble fit allocates histogram
// buffers proportional to tree depth (pool slots), never to node count.
TEST(TrainEquivalenceTest, HistogramPoolAllocationsBoundedByDepth) {
  Matrix x;
  std::vector<double> y;
  MakeData(1000, 137, &x, &y);

  GbtOptions gopt;
  gopt.num_rounds = 80;
  gopt.max_depth = 6;
  GbtRegressor gbt(gopt);
  ASSERT_TRUE(gbt.Fit(x, y).ok());
  const TreeGrowerStats gs = gbt.grower_stats();
  EXPECT_GT(gs.nodes_built, 1000u) << "fixture should grow many nodes";
  EXPECT_LE(gs.pool_allocations, static_cast<size_t>(gopt.max_depth) + 2);
  EXPECT_GT(gs.histograms_subtracted, 0u);

  RandomForestOptions ropt;
  ropt.num_trees = 20;
  RandomForestRegressor rf(ropt);
  ASSERT_TRUE(rf.Fit(x, y).ok());
  const TreeGrowerStats rs = rf.grower_stats();
  EXPECT_GT(rs.nodes_built, 1000u);
  // Sampled mode recycles a single scratch buffer.
  EXPECT_EQ(rs.pool_allocations, 1u);
}

}  // namespace
}  // namespace wmp::ml
