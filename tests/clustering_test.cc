// Unit and property tests for k-means and DBSCAN.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ml/dbscan.h"
#include "ml/kmeans.h"
#include "util/io.h"
#include "util/random.h"

namespace wmp::ml {
namespace {

// Three well-separated Gaussian blobs in 2-D.
Matrix ThreeBlobs(size_t per_blob, uint64_t seed) {
  Rng rng(seed);
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 10.0}, {-10.0, 8.0}};
  Matrix x(per_blob * 3, 2);
  for (size_t b = 0; b < 3; ++b) {
    for (size_t i = 0; i < per_blob; ++i) {
      const size_t r = b * per_blob + i;
      x.At(r, 0) = centers[b][0] + rng.Normal(0, 0.5);
      x.At(r, 1) = centers[b][1] + rng.Normal(0, 0.5);
    }
  }
  return x;
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  Matrix x = ThreeBlobs(60, 3);
  KMeans km;
  ASSERT_TRUE(km.Fit(x, {.num_clusters = 3, .seed = 1}).ok());
  auto labels = km.AssignAll(x).value();
  // All points of one blob share a label, and the three blobs get three
  // distinct labels.
  std::set<int> blob_labels;
  for (size_t b = 0; b < 3; ++b) {
    const int l0 = labels[b * 60];
    for (size_t i = 0; i < 60; ++i) EXPECT_EQ(labels[b * 60 + i], l0);
    blob_labels.insert(l0);
  }
  EXPECT_EQ(blob_labels.size(), 3u);
}

TEST(KMeansTest, AssignReturnsNearestCentroid) {
  Matrix x = ThreeBlobs(40, 5);
  KMeans km;
  ASSERT_TRUE(km.Fit(x, {.num_clusters = 3, .seed = 2}).ok());
  // A point exactly at a centroid must be assigned to it.
  for (int c = 0; c < km.num_clusters(); ++c) {
    auto centroid = km.centroids().RowVec(static_cast<size_t>(c));
    EXPECT_EQ(km.Assign(centroid).value(), c);
  }
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  Matrix x = ThreeBlobs(50, 7);
  auto inertias = KMeansElbowCurve(x, {1, 2, 3, 5, 8}, {.seed = 3}).value();
  for (size_t i = 1; i < inertias.size(); ++i) {
    EXPECT_LE(inertias[i], inertias[i - 1] + 1e-9);
  }
}

TEST(KMeansTest, ElbowFindsTrueClusterCount) {
  Matrix x = ThreeBlobs(50, 9);
  std::vector<int> ks{1, 2, 3, 4, 5, 6, 7, 8};
  auto inertias = KMeansElbowCurve(x, ks, {.seed = 4}).value();
  // The max-distance-to-chord elbow should land at or next to k=3.
  size_t elbow = PickElbow(inertias);
  EXPECT_GE(ks[elbow], 2);
  EXPECT_LE(ks[elbow], 4);
}

TEST(KMeansTest, MoreClustersThanRowsCollapses) {
  auto x = Matrix::FromRows({{0, 0}, {1, 1}}).value();
  KMeans km;
  ASSERT_TRUE(km.Fit(x, {.num_clusters = 10, .seed = 5}).ok());
  EXPECT_LE(km.num_clusters(), 2);
}

TEST(KMeansTest, ErrorsOnBadInput) {
  KMeans km;
  Matrix empty;
  EXPECT_TRUE(km.Fit(empty, {}).IsInvalidArgument());
  Matrix x = ThreeBlobs(5, 1);
  EXPECT_TRUE(km.Fit(x, {.num_clusters = 0}).IsInvalidArgument());
  EXPECT_TRUE(km.Assign({1.0, 2.0}).status().IsFailedPrecondition());
}

TEST(KMeansTest, DeterministicForSameSeed) {
  Matrix x = ThreeBlobs(30, 11);
  KMeans a, b;
  ASSERT_TRUE(a.Fit(x, {.num_clusters = 3, .seed = 42}).ok());
  ASSERT_TRUE(b.Fit(x, {.num_clusters = 3, .seed = 42}).ok());
  EXPECT_EQ(a.centroids().data(), b.centroids().data());
}

TEST(KMeansTest, SerializationRoundTrip) {
  Matrix x = ThreeBlobs(30, 13);
  KMeans km;
  ASSERT_TRUE(km.Fit(x, {.num_clusters = 3, .seed = 6}).ok());
  BinaryWriter w;
  km.Serialize(&w);
  BinaryReader r(w.buffer());
  auto restored = KMeans::Deserialize(&r);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->centroids().data(), km.centroids().data());
  EXPECT_DOUBLE_EQ(restored->inertia(), km.inertia());
  // Restored model assigns identically.
  for (size_t i = 0; i < x.rows(); ++i) {
    EXPECT_EQ(restored->Assign(x.RowVec(i)).value(),
              km.Assign(x.RowVec(i)).value());
  }
}

// The register-blocked SquaredDistance kernel (4-wide accumulators) and the
// 4-row-blocked AssignAll path must produce assignments identical to the
// scalar per-row Assign, across dimensions that exercise every unroll
// remainder (d % 4 in {0,1,2,3}) and row-block remainder (n % 4 != 0).
TEST(KMeansTest, AssignAllMatchesAssignIdentically) {
  for (size_t d : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 11u}) {
    Rng rng(1000 + d);
    const size_t n = 203;  // not a multiple of the 4-row block
    Matrix x(n, d);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < d; ++j) x.At(i, j) = rng.Normal(0, 2.0);
    }
    KMeans km;
    ASSERT_TRUE(km.Fit(x, {.num_clusters = 11, .seed = d}).ok());
    auto all = km.AssignAll(x);
    ASSERT_TRUE(all.ok());
    ASSERT_EQ(all->size(), n);
    for (size_t i = 0; i < n; ++i) {
      auto one = km.Assign(x.RowVec(i));
      ASSERT_TRUE(one.ok());
      ASSERT_EQ((*all)[i], *one) << "d=" << d << " row " << i;
    }
  }
}

// Property: every point's assigned centroid is at least as close as any
// other centroid, across k values.
class KMeansAssignmentProperty : public ::testing::TestWithParam<int> {};

TEST_P(KMeansAssignmentProperty, NearestCentroidInvariant) {
  const int k = GetParam();
  Matrix x = ThreeBlobs(40, static_cast<uint64_t>(k) + 100);
  KMeans km;
  ASSERT_TRUE(km.Fit(x, {.num_clusters = k, .seed = 77}).ok());
  for (size_t i = 0; i < x.rows(); i += 7) {
    auto row = x.RowVec(i);
    const int assigned = km.Assign(row).value();
    const double d_assigned = SquaredDistance(
        row.data(), km.centroids().RowPtr(static_cast<size_t>(assigned)), 2);
    for (int c = 0; c < km.num_clusters(); ++c) {
      const double d = SquaredDistance(
          row.data(), km.centroids().RowPtr(static_cast<size_t>(c)), 2);
      EXPECT_GE(d + 1e-12, d_assigned);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KMeansAssignmentProperty,
                         ::testing::Values(1, 2, 3, 4, 6, 10, 20));

// ---------- DBSCAN ----------

TEST(DbscanTest, FindsDenseBlobsAndNoise) {
  Rng rng(31);
  std::vector<std::vector<double>> rows;
  // Two dense blobs.
  for (int i = 0; i < 50; ++i) {
    rows.push_back({rng.Normal(0, 0.2), rng.Normal(0, 0.2)});
    rows.push_back({rng.Normal(5, 0.2), rng.Normal(5, 0.2)});
  }
  // A single far-away outlier.
  rows.push_back({100.0, 100.0});
  Matrix x = Matrix::FromRows(rows).value();

  Dbscan db;
  ASSERT_TRUE(db.Fit(x, {.eps = 1.0, .min_points = 4}).ok());
  EXPECT_EQ(db.num_clusters(), 2);
  EXPECT_EQ(db.labels().back(), -1);  // outlier flagged as noise
}

TEST(DbscanTest, AllPointsOneClusterWhenEpsLarge) {
  Matrix x = ThreeBlobs(20, 33);
  Dbscan db;
  ASSERT_TRUE(db.Fit(x, {.eps = 100.0, .min_points = 3}).ok());
  EXPECT_EQ(db.num_clusters(), 1);
  for (int l : db.labels()) EXPECT_EQ(l, 0);
}

TEST(DbscanTest, AllNoiseWhenEpsTiny) {
  Matrix x = ThreeBlobs(20, 35);
  Dbscan db;
  ASSERT_TRUE(db.Fit(x, {.eps = 1e-6, .min_points = 3}).ok());
  EXPECT_EQ(db.num_clusters(), 0);
  for (int l : db.labels()) EXPECT_EQ(l, -1);
}

TEST(DbscanTest, CentroidsAreClusterMeans) {
  Rng rng(37);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 30; ++i) rows.push_back({rng.Normal(2, 0.1)});
  Matrix x = Matrix::FromRows(rows).value();
  Dbscan db;
  ASSERT_TRUE(db.Fit(x, {.eps = 0.5, .min_points = 3}).ok());
  ASSERT_EQ(db.num_clusters(), 1);
  EXPECT_NEAR(db.centroids().At(0, 0), 2.0, 0.1);
}

TEST(DbscanTest, ErrorsOnBadParams) {
  Matrix x = ThreeBlobs(5, 39);
  Dbscan db;
  EXPECT_TRUE(db.Fit(x, {.eps = 0.0, .min_points = 3}).IsInvalidArgument());
  EXPECT_TRUE(db.Fit(x, {.eps = 1.0, .min_points = 0}).IsInvalidArgument());
  Matrix empty;
  EXPECT_TRUE(db.Fit(empty, {}).IsInvalidArgument());
}

}  // namespace
}  // namespace wmp::ml
