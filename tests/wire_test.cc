// End-to-end tests of the out-of-process serving stack: net::WireServer +
// net::WireClient over a loopback Unix socket, the named ModelRegistry
// with rollback, ScoringService::PublishAll, and the post-publish
// template-cache warmer.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/featurizer.h"
#include "core/learned_wmp.h"
#include "ml/compiled_tree.h"
#include "engine/batch_scorer.h"
#include "engine/model_registry.h"
#include "engine/scoring_service.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/wire_client.h"
#include "net/wire_server.h"
#include "util/io.h"
#include "util/strings.h"
#include "workloads/dataset.h"

namespace wmp {
namespace {

class WireTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workloads::DatasetOptions opt;
    opt.num_queries = 300;
    opt.seed = 71;
    auto d = workloads::BuildDataset(workloads::Benchmark::kTpcc, opt);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    dataset_ = new workloads::Dataset(std::move(*d));
    indices_ =
        new std::vector<uint32_t>(core::AllIndices(dataset_->records.size()));

    core::LearnedWmpOptions lopt;
    lopt.templates.num_templates = 8;
    lopt.regressor = ml::RegressorKind::kGbt;
    auto model = core::LearnedWmpModel::Train(dataset_->records, *indices_,
                                              *dataset_->generator, lopt);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    model_ = new core::LearnedWmpModel(std::move(*model));

    core::LearnedWmpOptions lopt2 = lopt;
    lopt2.regressor = ml::RegressorKind::kRidge;
    auto model2 = core::LearnedWmpModel::Train(dataset_->records, *indices_,
                                               *dataset_->generator, lopt2);
    ASSERT_TRUE(model2.ok()) << model2.status().ToString();
    model2_ = new core::LearnedWmpModel(std::move(*model2));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete indices_;
    delete model_;
    delete model2_;
    dataset_ = nullptr;
    indices_ = nullptr;
    model_ = nullptr;
    model2_ = nullptr;
  }

  static std::shared_ptr<const core::LearnedWmpModel> Borrow(
      const core::LearnedWmpModel* model) {
    return {std::shared_ptr<const void>(), model};
  }

  static std::string SocketAddress(const char* tag) {
    return StrFormat("unix:/tmp/wmp_wire_test.%d.%s.sock",
                     static_cast<int>(::getpid()), tag);
  }

  static workloads::Dataset* dataset_;
  static std::vector<uint32_t>* indices_;
  static core::LearnedWmpModel* model_;
  static core::LearnedWmpModel* model2_;
};

workloads::Dataset* WireTest::dataset_ = nullptr;
std::vector<uint32_t>* WireTest::indices_ = nullptr;
core::LearnedWmpModel* WireTest::model_ = nullptr;
core::LearnedWmpModel* WireTest::model2_ = nullptr;

// ---------- ModelRegistry ----------

TEST_F(WireTest, RegistryRecordRollbackAndKeepLast) {
  engine::ModelRegistry registry({.keep_last = 3});
  EXPECT_FALSE(registry.Current("m").ok());
  EXPECT_FALSE(registry.Rollback("m").ok());
  EXPECT_FALSE(registry.Record("m", nullptr).ok());
  EXPECT_FALSE(registry.Record("", Borrow(model_)).ok());

  auto e1 = registry.Record("m", Borrow(model_));
  auto e2 = registry.Record("m", Borrow(model2_));
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  EXPECT_LT(*e1, *e2);
  EXPECT_EQ(registry.NumEpochs("m"), 2u);
  ASSERT_TRUE(registry.Current("m").ok());
  EXPECT_EQ(registry.Current("m")->model.get(), model2_);

  auto back = registry.Rollback("m");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->epoch, *e1);
  EXPECT_EQ(back->model.get(), model_);
  EXPECT_EQ(registry.Current("m")->model.get(), model_);
  // Only one epoch left now.
  EXPECT_FALSE(registry.Rollback("m").ok());

  // keep_last trims the oldest epochs.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(registry.Record("m", Borrow(model2_)).ok());
  }
  EXPECT_EQ(registry.NumEpochs("m"), 3u);

  // Names are independent histories.
  ASSERT_TRUE(registry.Record("other", Borrow(model_)).ok());
  EXPECT_EQ(registry.NumEpochs("other"), 1u);
  EXPECT_EQ(registry.Names().size(), 2u);
}

// ---------- PublishAll ----------

TEST_F(WireTest, PublishAllSwapsEveryShardBitwiseAndRecords) {
  engine::ScoringService service({model_, model_, model_});
  const auto batches =
      engine::MakeConsecutiveBatches(dataset_->records.size(), 10);
  engine::BatchScorer ref2(model2_);
  auto want = ref2.ScoreWorkloads(dataset_->records, batches);
  ASSERT_TRUE(want.ok());

  engine::ModelRegistry registry;
  auto epoch = service.PublishAll(Borrow(model2_), &registry, "tenant");
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_GT(*epoch, 0u);
  EXPECT_EQ(registry.Current("tenant")->model.get(), model2_);

  // EVERY shard must now serve model2, bitwise.
  for (size_t shard = 0; shard < service.num_shards(); ++shard) {
    for (size_t w = 0; w < batches.size(); ++w) {
      auto got = service
                     .SubmitToShard(shard, dataset_->records,
                                    batches[w].query_indices)
                     .get();
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, want->predictions[w]) << "shard " << shard;
    }
  }
  const engine::ServiceStats st = service.stats();
  EXPECT_EQ(st.models_published, service.num_shards());
  service.Stop();
}

TEST_F(WireTest, PublishAllRejectsBadArtifactsUntouched) {
  engine::ScoringService service({model_, model_});
  EXPECT_TRUE(service.PublishAll(nullptr).status().IsInvalidArgument());
  auto untrained = std::make_shared<const core::LearnedWmpModel>();
  EXPECT_TRUE(
      service.PublishAll(untrained).status().IsFailedPrecondition());
  engine::ModelRegistry registry;
  EXPECT_TRUE(service.PublishAll(Borrow(model2_), &registry, "")
                  .status()
                  .IsInvalidArgument());
  // Nothing was swapped or recorded by the failures.
  EXPECT_EQ(service.stats().models_published, 0u);
  EXPECT_TRUE(registry.Names().empty());
  for (size_t shard = 0; shard < service.num_shards(); ++shard) {
    EXPECT_EQ(service.model(shard).get(), model_);
  }
  service.Stop();
}

// ---------- Template-cache warming across swaps ----------

TEST_F(WireTest, PublishWarmsTemplateCacheAndKeepsPredictionsBitwise) {
  engine::ScoringServiceOptions sopt;
  sopt.cache_capacity = 0;  // isolate level 2
  engine::ScoringService service({model_}, sopt);
  service.SetWarmCorpus(&dataset_->records);
  const auto batches =
      engine::MakeConsecutiveBatches(dataset_->records.size(), 10);
  // Populate the template cache under model_'s epoch.
  for (const auto& b : batches) {
    ASSERT_TRUE(service.Submit("t", dataset_->records, b.query_indices)
                    .get()
                    .ok());
  }
  ASSERT_GT(service.stats().template_cache_misses, 0u);
  // Duplicate queries share one fingerprint (and one cache entry), so the
  // warmable working set is the DISTINCT fingerprint count.
  std::unordered_set<uint64_t> distinct;
  for (const auto& r : dataset_->records) {
    distinct.insert(r.content_fingerprint);
  }

  // Swap; the warmer re-assigns the resident keys under the new epoch.
  ASSERT_TRUE(service.PublishAll(Borrow(model2_)).ok());
  for (int spin = 0; spin < 500; ++spin) {
    if (service.stats().template_entries_warmed >= distinct.size()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const engine::ServiceStats warmed = service.stats();
  ASSERT_GE(warmed.template_entries_warmed, distinct.size());

  // Post-warm traffic: every member query hits the warmed cache (no new
  // misses beyond the pre-swap ones) and predictions are bitwise the new
  // model's own.
  engine::BatchScorer ref2(model2_);
  auto want = ref2.ScoreWorkloads(dataset_->records, batches);
  ASSERT_TRUE(want.ok());
  for (size_t w = 0; w < batches.size(); ++w) {
    auto got =
        service.Submit("t", dataset_->records, batches[w].query_indices)
            .get();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, want->predictions[w]);
  }
  const engine::ServiceStats after = service.stats();
  EXPECT_EQ(after.template_cache_misses, warmed.template_cache_misses)
      << "post-swap traffic should have been a full template-cache hit pass";
  EXPECT_GT(after.template_cache_hits, warmed.template_cache_hits);
  service.Stop();
}

TEST_F(WireTest, WarmingIsSkippedWithoutACorpus) {
  engine::ScoringService service({model_});
  const auto batches =
      engine::MakeConsecutiveBatches(dataset_->records.size(), 10);
  for (const auto& b : batches) {
    ASSERT_TRUE(service.Submit("t", dataset_->records, b.query_indices)
                    .get()
                    .ok());
  }
  ASSERT_TRUE(service.PublishAll(Borrow(model2_)).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(service.stats().template_entries_warmed, 0u);
  service.Stop();
}

// ---------- Wire server end to end ----------

TEST_F(WireTest, PingScoreAndStatsOverUnixSocket) {
  engine::ScoringService service({model_});
  engine::ModelRegistry registry;
  ASSERT_TRUE(registry.Record("default", Borrow(model_)).ok());
  net::WireServer server(&service, &registry, "default");
  const std::string address = SocketAddress("basic");
  ASSERT_TRUE(server.Listen(address).ok());
  ASSERT_TRUE(server.Start().ok());

  net::WireClient client(address);
  ASSERT_TRUE(client.Ping().ok());

  const auto batches =
      engine::MakeConsecutiveBatches(dataset_->records.size(), 10);
  engine::BatchScorer reference(model_);
  auto want = reference.ScoreWorkloads(dataset_->records, batches);
  ASSERT_TRUE(want.ok());
  auto got = client.ScoreWorkloads("tenant", dataset_->records, batches);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->size(), batches.size());
  for (size_t w = 0; w < batches.size(); ++w) {
    ASSERT_TRUE((*got)[w].ok());
    EXPECT_EQ(*(*got)[w], want->predictions[w])
        << "remote prediction must be bitwise the in-process one";
  }

  // Scoring the same workloads again over the wire hits the server-side
  // histogram cache: the fingerprints survived the hop.
  auto again = client.ScoreWorkloads("tenant", dataset_->records, batches);
  ASSERT_TRUE(again.ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->service.cache_hits, 0u);
  EXPECT_EQ(stats->service.failed, 0u);
  EXPECT_GE(stats->server.frames_served, 3u);
  EXPECT_EQ(stats->server.accept_failures, 0u);

  // A publish with an EMPTY name records under the server's default
  // registry name.
  ASSERT_EQ(registry.NumEpochs("default"), 1u);
  auto epoch = client.Publish("", *model2_);
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(registry.NumEpochs("default"), 2u);
  server.Shutdown();
  service.Stop();
}

TEST_F(WireTest, ConcurrentClientsAllBitwise) {
  engine::ScoringService service({model_, model_});
  net::WireServer server(&service, nullptr, "default");
  const std::string address = SocketAddress("conc");
  ASSERT_TRUE(server.Listen(address).ok());
  ASSERT_TRUE(server.Start().ok());

  const auto batches =
      engine::MakeConsecutiveBatches(dataset_->records.size(), 10);
  engine::BatchScorer reference(model_);
  auto want = reference.ScoreWorkloads(dataset_->records, batches);
  ASSERT_TRUE(want.ok());

  constexpr int kClients = 4;
  constexpr int kPasses = 3;
  std::atomic<uint64_t> mismatches{0}, errors{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      net::WireClient client(address);
      const std::string tenant = StrFormat("client-%d", c);
      for (int pass = 0; pass < kPasses; ++pass) {
        auto got = client.ScoreWorkloads(tenant, dataset_->records, batches);
        if (!got.ok()) {
          errors.fetch_add(batches.size(), std::memory_order_relaxed);
          continue;
        }
        for (size_t w = 0; w < batches.size(); ++w) {
          if (!(*got)[w].ok()) {
            errors.fetch_add(1, std::memory_order_relaxed);
          } else if (*(*got)[w] != want->predictions[w]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  server.Shutdown();
  service.Stop();
}

TEST_F(WireTest, PublishUnderTrafficThenRollbackRestoresPriorEpochScores) {
  engine::ScoringService service({model_, model_});
  service.SetWarmCorpus(&dataset_->records);
  engine::ModelRegistry registry;
  ASSERT_TRUE(registry.Record("default", Borrow(model_)).ok());
  net::WireServer server(&service, &registry, "default");
  const std::string address = SocketAddress("pub");
  ASSERT_TRUE(server.Listen(address).ok());
  ASSERT_TRUE(server.Start().ok());

  const auto batches =
      engine::MakeConsecutiveBatches(dataset_->records.size(), 10);
  engine::BatchScorer ref1(model_), ref2(model2_);
  auto want1 = ref1.ScoreWorkloads(dataset_->records, batches);
  auto want2 = ref2.ScoreWorkloads(dataset_->records, batches);
  ASSERT_TRUE(want1.ok());
  ASSERT_TRUE(want2.ok());

  // Live traffic across the swap: requests may score on either model but
  // must never fail.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> traffic_errors{0};
  std::thread traffic([&] {
    net::WireClient client(address);
    while (!stop.load(std::memory_order_relaxed)) {
      auto got =
          client.ScoreWorkloads("traffic", dataset_->records, batches);
      if (!got.ok()) {
        traffic_errors.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      for (const auto& outcome : *got) {
        if (!outcome.ok()) {
          traffic_errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  net::WireClient control(address);
  auto epoch2 = control.Publish("default", *model2_);
  ASSERT_TRUE(epoch2.ok()) << epoch2.status().ToString();
  auto after_publish =
      control.ScoreWorkloads("control", dataset_->records, batches);
  ASSERT_TRUE(after_publish.ok());
  for (size_t w = 0; w < batches.size(); ++w) {
    ASSERT_TRUE((*after_publish)[w].ok());
    EXPECT_EQ(*(*after_publish)[w], want2->predictions[w]);
  }

  auto rollback_epoch = control.Rollback("default");
  ASSERT_TRUE(rollback_epoch.ok()) << rollback_epoch.status().ToString();
  EXPECT_LT(*rollback_epoch, *epoch2);
  auto after_rollback =
      control.ScoreWorkloads("control", dataset_->records, batches);
  ASSERT_TRUE(after_rollback.ok());
  for (size_t w = 0; w < batches.size(); ++w) {
    ASSERT_TRUE((*after_rollback)[w].ok());
    EXPECT_EQ(*(*after_rollback)[w], want1->predictions[w])
        << "rollback must restore the previous epoch's scores exactly";
  }
  // A second rollback has no earlier epoch and must fail cleanly — and
  // leave the serving model untouched.
  EXPECT_FALSE(control.Rollback("default").ok());
  EXPECT_FALSE(control.Rollback("no-such-model").ok());

  stop.store(true, std::memory_order_relaxed);
  traffic.join();
  EXPECT_EQ(traffic_errors.load(), 0u);
  server.Shutdown();
  service.Stop();
}

TEST_F(WireTest, MalformedFramesGetCleanErrorsAndServerSurvives) {
  engine::ScoringService service({model_});
  net::WireServer server(&service, nullptr, "default");
  const std::string address = SocketAddress("bad");
  ASSERT_TRUE(server.Listen(address).ok());
  ASSERT_TRUE(server.Start().ok());

  {
    // Garbage bytes: the server answers one error frame, then closes.
    auto fd = net::ConnectTo(address);
    ASSERT_TRUE(fd.ok());
    const char junk[] = "GET / HTTP/1.1\r\n\r\n";
    ASSERT_TRUE(net::WriteFrame(*fd, net::FrameType::kPing, "").ok());
    auto pong = net::ReadFrame(*fd);
    ASSERT_TRUE(pong.ok());
    EXPECT_EQ(pong->type, net::FrameType::kPong);
    ASSERT_EQ(::write(*fd, junk, sizeof(junk) - 1),
              static_cast<ssize_t>(sizeof(junk) - 1));
    auto error = net::ReadFrame(*fd);
    if (error.ok()) {
      EXPECT_EQ(error->type, net::FrameType::kError);
    }  // (or the server already hung up — both are clean outcomes)
    net::CloseConnection(*fd);
  }
  {
    // A well-framed but undecodable score payload: error frame, and the
    // connection stays usable.
    net::WireClient client(address);
    auto fd = net::ConnectTo(address);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(
        net::WriteFrame(*fd, net::FrameType::kScoreRequest, "nonsense").ok());
    auto error = net::ReadFrame(*fd);
    ASSERT_TRUE(error.ok());
    EXPECT_EQ(error->type, net::FrameType::kError);
    ASSERT_TRUE(net::WriteFrame(*fd, net::FrameType::kPing, "p").ok());
    auto pong = net::ReadFrame(*fd);
    ASSERT_TRUE(pong.ok());
    EXPECT_EQ(pong->type, net::FrameType::kPong);
    net::CloseConnection(*fd);
  }
  {
    // A response frame type sent as a request is rejected, not executed.
    auto fd = net::ConnectTo(address);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(
        net::WriteFrame(*fd, net::FrameType::kScoreResponse, "").ok());
    auto error = net::ReadFrame(*fd);
    ASSERT_TRUE(error.ok());
    EXPECT_EQ(error->type, net::FrameType::kError);
    net::CloseConnection(*fd);
  }
  // The server is still healthy for well-behaved clients.
  net::WireClient client(address);
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_GT(server.stats().protocol_errors, 0u);
  server.Shutdown();
  service.Stop();
}

TEST_F(WireTest, PublishRejectsCorruptArtifactAndKeepsServing) {
  engine::ScoringService service({model_});
  engine::ModelRegistry registry;
  ASSERT_TRUE(registry.Record("default", Borrow(model_)).ok());
  net::WireServer server(&service, &registry, "default");
  const std::string address = SocketAddress("corrupt");
  ASSERT_TRUE(server.Listen(address).ok());
  ASSERT_TRUE(server.Start().ok());

  net::WireClient client(address);
  auto fd = net::ConnectTo(address);
  ASSERT_TRUE(fd.ok());
  net::PublishRequest request;
  request.model_name = "default";
  request.model_bytes = "this is not a model artifact";
  ASSERT_TRUE(net::WriteFrame(*fd, net::FrameType::kPublishRequest,
                              net::EncodePublishRequest(request))
                  .ok());
  auto error = net::ReadFrame(*fd);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->type, net::FrameType::kError);
  net::CloseConnection(*fd);

  // Nothing swapped: still model_ bitwise, and the registry still has
  // exactly one epoch.
  EXPECT_EQ(registry.NumEpochs("default"), 1u);
  const auto batches =
      engine::MakeConsecutiveBatches(dataset_->records.size(), 10);
  engine::BatchScorer reference(model_);
  auto want = reference.ScoreWorkloads(dataset_->records, batches);
  ASSERT_TRUE(want.ok());
  auto got = client.ScoreWorkloads("t", dataset_->records, batches);
  ASSERT_TRUE(got.ok());
  for (size_t w = 0; w < batches.size(); ++w) {
    ASSERT_TRUE((*got)[w].ok());
    EXPECT_EQ(*(*got)[w], want->predictions[w]);
  }
  server.Shutdown();
  service.Stop();
}

TEST_F(WireTest, PublishChecksumCatchesWireCorruptionBeforeAnyEpoch) {
  // A VALID artifact corrupted between encode and decode — the scenario
  // the publish checksum exists for. A single flipped bit inside the
  // model bytes must be rejected at DecodePublishRequest (the error
  // names the checksum), leaving the registry epoch count untouched —
  // the artifact never even reaches Deserialize.
  engine::ScoringService service({model_});
  engine::ModelRegistry registry;
  ASSERT_TRUE(registry.Record("default", Borrow(model_)).ok());
  net::WireServer server(&service, &registry, "default");
  const std::string address = SocketAddress("cksum");
  ASSERT_TRUE(server.Listen(address).ok());
  ASSERT_TRUE(server.Start().ok());

  BinaryWriter artifact;
  ASSERT_TRUE(model2_->Serialize(&artifact).ok());
  net::PublishRequest request;
  request.model_name = "default";
  request.model_bytes = artifact.buffer();
  std::string payload = net::EncodePublishRequest(request);
  // Payload layout: u32 name len + name + u32 bytes len + bytes + u64
  // hash. Flip one bit comfortably inside the model bytes.
  const size_t byte_in_model =
      4 + request.model_name.size() + 4 + request.model_bytes.size() / 2;
  ASSERT_LT(byte_in_model, payload.size() - 8);
  payload[byte_in_model] ^= 0x01;

  auto fd = net::ConnectTo(address);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(
      net::WriteFrame(*fd, net::FrameType::kPublishRequest, payload).ok());
  auto error = net::ReadFrame(*fd);
  ASSERT_TRUE(error.ok());
  ASSERT_EQ(error->type, net::FrameType::kError);
  const net::ErrorBody body = net::DecodeErrorBody(error->payload);
  EXPECT_NE(body.message.find("checksum"), std::string::npos)
      << "rejection must come from the checksum, got: " << body.message;
  net::CloseConnection(*fd);

  EXPECT_EQ(registry.NumEpochs("default"), 1u)
      << "a corrupt publish must not create a registry epoch";
  // An uncorrupted publish of the same artifact still goes through.
  net::WireClient client(address);
  auto epoch = client.Publish("default", *model2_);
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(registry.NumEpochs("default"), 2u);
  server.Shutdown();
  service.Stop();
}

TEST_F(WireTest, PublishedArtifactServesThroughCompiledEnsemble) {
  // The publish artifact ships the compact compiled codec; the server-side
  // deserialize must rebuild the compiled ensemble (model_ is GBT — a tree
  // family), keep compiled routing on, and serve scores bitwise equal to
  // the training-side model's own.
  engine::ScoringService service({model2_});
  engine::ModelRegistry registry;
  ASSERT_TRUE(registry.Record("default", Borrow(model2_)).ok());
  net::WireServer server(&service, &registry, "default");
  const std::string address = SocketAddress("compiled");
  ASSERT_TRUE(server.Listen(address).ok());
  ASSERT_TRUE(server.Start().ok());

  net::WireClient client(address);
  auto epoch = client.Publish("default", *model_);
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();

  auto current = registry.Current("default");
  ASSERT_TRUE(current.ok());
  const core::LearnedWmpModel* received = current->model.get();
  ASSERT_NE(received, model_) << "the artifact must have crossed the wire";
  ASSERT_NE(received->compiled(), nullptr)
      << "deserialize must recompile the tree-family regressor";
  EXPECT_TRUE(received->compiled_inference());
  EXPECT_EQ(received->compiled()->num_trees(), model_->compiled()->num_trees());
  EXPECT_EQ(received->compiled()->num_nodes(), model_->compiled()->num_nodes());

  const auto batches =
      engine::MakeConsecutiveBatches(dataset_->records.size(), 10);
  engine::BatchScorer reference(model_);
  auto want = reference.ScoreWorkloads(dataset_->records, batches);
  ASSERT_TRUE(want.ok());
  auto got = client.ScoreWorkloads("tenant", dataset_->records, batches);
  ASSERT_TRUE(got.ok());
  for (size_t w = 0; w < batches.size(); ++w) {
    ASSERT_TRUE((*got)[w].ok());
    EXPECT_EQ(*(*got)[w], want->predictions[w])
        << "published compiled artifact must score bitwise the original";
  }
  server.Shutdown();
  service.Stop();
}

TEST_F(WireTest, ClientReconnectsAfterServerRestart) {
  engine::ScoringService service({model_});
  const std::string address = SocketAddress("restart");
  auto server = std::make_unique<net::WireServer>(&service, nullptr, "d");
  ASSERT_TRUE(server->Listen(address).ok());
  ASSERT_TRUE(server->Start().ok());
  net::WireClient client(address);
  ASSERT_TRUE(client.Ping().ok());
  server->Shutdown();
  server = std::make_unique<net::WireServer>(&service, nullptr, "d");
  ASSERT_TRUE(server->Listen(address).ok());
  ASSERT_TRUE(server->Start().ok());
  // The pooled connection died with the old server; the next call must
  // transparently reconnect.
  EXPECT_TRUE(client.Ping().ok());
  server->Shutdown();
  service.Stop();
}

}  // namespace
}  // namespace wmp
