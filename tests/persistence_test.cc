// Tests for the deployment features: model persistence (the paper's
// "ship the model into the DBMS product" lifecycle), variable-length
// workloads, and the elbow-method template tuner.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/featurizer.h"
#include "core/learned_wmp.h"
#include "core/template_learner.h"
#include "workloads/dataset.h"

namespace wmp::core {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workloads::DatasetOptions opt;
    opt.num_queries = 500;
    opt.seed = 21;
    auto d = workloads::BuildDataset(workloads::Benchmark::kTpcc, opt);
    ASSERT_TRUE(d.ok());
    dataset_ = new workloads::Dataset(std::move(*d));
    indices_ = new std::vector<uint32_t>(AllIndices(dataset_->records.size()));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete indices_;
  }

  static LearnedWmpModel TrainSmall(ml::RegressorKind kind,
                                    TemplateMethod method =
                                        TemplateMethod::kPlanKMeans) {
    LearnedWmpOptions opt;
    opt.templates.method = method;
    opt.templates.num_templates = 8;
    opt.regressor = kind;
    auto model = LearnedWmpModel::Train(dataset_->records, *indices_,
                                        *dataset_->generator, opt);
    EXPECT_TRUE(model.ok()) << model.status().ToString();
    return std::move(*model);
  }

  static workloads::Dataset* dataset_;
  static std::vector<uint32_t>* indices_;
};

workloads::Dataset* PersistenceTest::dataset_ = nullptr;
std::vector<uint32_t>* PersistenceTest::indices_ = nullptr;

// ---------- TemplateModel persistence ----------

TEST_F(PersistenceTest, PlanKMeansTemplatesRoundTrip) {
  TemplateLearnerOptions opt;
  opt.num_templates = 8;
  auto model = TemplateModel::Learn(dataset_->records, *indices_,
                                    *dataset_->generator, opt);
  ASSERT_TRUE(model.ok());
  BinaryWriter w;
  ASSERT_TRUE(model->Serialize(&w).ok());
  BinaryReader r(w.buffer());
  auto restored = TemplateModel::Deserialize(&r);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_templates(), model->num_templates());
  for (uint32_t i : *indices_) {
    EXPECT_EQ(restored->Assign(dataset_->records[i]).value(),
              model->Assign(dataset_->records[i]).value());
  }
}

TEST_F(PersistenceTest, RuleBasedTemplatesRoundTrip) {
  TemplateLearnerOptions opt;
  opt.method = TemplateMethod::kRuleBased;
  auto model = TemplateModel::Learn(dataset_->records, *indices_,
                                    *dataset_->generator, opt);
  ASSERT_TRUE(model.ok());
  BinaryWriter w;
  ASSERT_TRUE(model->Serialize(&w).ok());
  BinaryReader r(w.buffer());
  auto restored = TemplateModel::Deserialize(&r);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_templates(), model->num_templates());
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(restored->Assign(dataset_->records[i]).value(),
              model->Assign(dataset_->records[i]).value());
  }
}

TEST_F(PersistenceTest, TextMethodsAreNotSerializable) {
  TemplateLearnerOptions opt;
  opt.method = TemplateMethod::kBagOfWords;
  opt.num_templates = 4;
  auto model = TemplateModel::Learn(dataset_->records, *indices_,
                                    *dataset_->generator, opt);
  ASSERT_TRUE(model.ok());
  BinaryWriter w;
  EXPECT_EQ(model->Serialize(&w).code(), StatusCode::kNotImplemented);
}

TEST_F(PersistenceTest, UnlearnedTemplateModelRefusesSerialize) {
  TemplateModel model;
  BinaryWriter w;
  EXPECT_TRUE(model.Serialize(&w).IsFailedPrecondition());
}

// ---------- LearnedWmpModel persistence ----------

class LearnedPersistence
    : public PersistenceTest,
      public ::testing::WithParamInterface<ml::RegressorKind> {};

TEST_P(LearnedPersistence, FullModelRoundTripsThroughBytes) {
  LearnedWmpModel model = TrainSmall(GetParam());
  BinaryWriter w;
  ASSERT_TRUE(model.Serialize(&w).ok());
  BinaryReader r(w.buffer());
  auto restored = LearnedWmpModel::Deserialize(&r);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  // Identical predictions on several workloads.
  for (uint32_t start = 0; start + 10 <= 100; start += 10) {
    std::vector<uint32_t> batch;
    for (uint32_t i = start; i < start + 10; ++i) batch.push_back(i);
    EXPECT_NEAR(
        restored->PredictWorkload(dataset_->records, batch).value(),
        model.PredictWorkload(dataset_->records, batch).value(), 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, LearnedPersistence,
    ::testing::Values(ml::RegressorKind::kRidge, ml::RegressorKind::kGbt,
                      ml::RegressorKind::kRandomForest,
                      ml::RegressorKind::kMlp),
    [](const ::testing::TestParamInfo<ml::RegressorKind>& info) {
      return ml::RegressorKindName(info.param);
    });

TEST_F(PersistenceTest, FileRoundTrip) {
  LearnedWmpModel model = TrainSmall(ml::RegressorKind::kGbt);
  const std::string path = ::testing::TempDir() + "/model.wmp";
  ASSERT_TRUE(model.SaveToFile(path).ok());
  auto restored = LearnedWmpModel::LoadFromFile(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  std::vector<uint32_t> batch{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_DOUBLE_EQ(
      restored->PredictWorkload(dataset_->records, batch).value(),
      model.PredictWorkload(dataset_->records, batch).value());
}

TEST_F(PersistenceTest, CorruptStreamRejected) {
  LearnedWmpModel model = TrainSmall(ml::RegressorKind::kRidge);
  BinaryWriter w;
  ASSERT_TRUE(model.Serialize(&w).ok());
  // Truncate at several depths; every prefix must fail cleanly, not crash.
  for (size_t cut : {size_t{0}, size_t{4}, size_t{10}, w.size() / 2,
                     w.size() - 1}) {
    BinaryReader r(w.buffer().substr(0, cut));
    EXPECT_FALSE(LearnedWmpModel::Deserialize(&r).ok()) << "cut=" << cut;
  }
  // Flip the magic.
  std::string bad = w.buffer();
  bad[0] = 'X';
  BinaryReader r(bad);
  EXPECT_TRUE(
      LearnedWmpModel::Deserialize(&r).status().IsInvalidArgument());
}

TEST_F(PersistenceTest, UntrainedModelRefusesSerialize) {
  LearnedWmpModel model;
  BinaryWriter w;
  EXPECT_TRUE(model.Serialize(&w).IsFailedPrecondition());
}

// ---------- variable-length workloads ----------

TEST_F(PersistenceTest, VariableLengthPredictsAnyBatchSize) {
  LearnedWmpOptions opt;
  opt.templates.num_templates = 8;
  opt.batch_size = 10;
  opt.variable_length = true;
  opt.regressor = ml::RegressorKind::kRidge;
  auto model = LearnedWmpModel::Train(dataset_->records, *indices_,
                                      *dataset_->generator, opt);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  // Predict batches of sizes the model never saw in training.
  for (size_t size : {3u, 10u, 25u}) {
    std::vector<uint32_t> batch;
    for (uint32_t i = 0; i < size; ++i) batch.push_back(i);
    auto pred = model->PredictWorkload(dataset_->records, batch);
    ASSERT_TRUE(pred.ok()) << "size " << size;
    EXPECT_GT(*pred, 0.0);
    double actual = 0;
    for (uint32_t i : batch) actual += dataset_->records[i].actual_memory_mb;
    // Within a loose factor: the point is sane scaling, not accuracy.
    EXPECT_LT(*pred, 6.0 * actual) << "size " << size;
    EXPECT_GT(*pred, actual / 6.0) << "size " << size;
  }
}

TEST_F(PersistenceTest, VariableLengthScalesWithBatchSize) {
  LearnedWmpOptions opt;
  opt.templates.num_templates = 8;
  opt.variable_length = true;
  opt.regressor = ml::RegressorKind::kRidge;
  auto model = LearnedWmpModel::Train(dataset_->records, *indices_,
                                      *dataset_->generator, opt);
  ASSERT_TRUE(model.ok());
  std::vector<uint32_t> small{0, 1, 2, 3, 4};
  std::vector<uint32_t> large;
  for (uint32_t rep = 0; rep < 4; ++rep) {
    for (uint32_t i : small) large.push_back(i);
  }
  // Same distribution, 4x the mass -> ~4x the prediction.
  const double p_small =
      model->PredictWorkload(dataset_->records, small).value();
  const double p_large =
      model->PredictWorkload(dataset_->records, large).value();
  EXPECT_NEAR(p_large / p_small, 4.0, 1e-6);
}

TEST_F(PersistenceTest, VariableLengthRequiresSumLabel) {
  LearnedWmpOptions opt;
  opt.templates.num_templates = 8;
  opt.variable_length = true;
  opt.label = WorkloadLabel::kMax;
  auto model = LearnedWmpModel::Train(dataset_->records, *indices_,
                                      *dataset_->generator, opt);
  EXPECT_TRUE(model.status().IsInvalidArgument());
}

// ---------- elbow tuner ----------

TEST_F(PersistenceTest, ElbowTunerPicksFromCandidates) {
  std::vector<int> ks{2, 4, 8, 12, 16, 24};
  auto k = ChooseNumTemplates(dataset_->records, *indices_, ks, 3);
  ASSERT_TRUE(k.ok()) << k.status().ToString();
  EXPECT_NE(std::find(ks.begin(), ks.end(), *k), ks.end());
  // TPC-C has 12 distinct query shapes; the elbow should land well below
  // the maximum candidate.
  EXPECT_LT(*k, 24);
}

TEST_F(PersistenceTest, ElbowTunerErrors) {
  EXPECT_TRUE(ChooseNumTemplates(dataset_->records, *indices_, {})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ChooseNumTemplates(dataset_->records, {}, {2, 3})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace wmp::core
