// End-to-end tests of the event-loop serving stack: net::ReactorServer
// driven by blocking clients (plain frames keep strict ordering, so the
// blocking WireClient doubles as the equivalence oracle), the pipelined
// net::AsyncWireClient, and the reactor's transport edge cases —
// fragmented frames, slow-reader backpressure, oversize/malformed frame
// isolation, idle reaping, and publish/rollback under live traffic.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/featurizer.h"
#include "core/learned_wmp.h"
#include "engine/batch_scorer.h"
#include "engine/model_registry.h"
#include "engine/scoring_service.h"
#include "net/async_client.h"
#include "net/frame.h"
#include "net/reactor_server.h"
#include "net/socket.h"
#include "net/wire_client.h"
#include "util/io.h"
#include "util/strings.h"
#include "workloads/dataset.h"

namespace wmp {
namespace {

class ReactorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workloads::DatasetOptions opt;
    opt.num_queries = 300;
    opt.seed = 71;
    auto d = workloads::BuildDataset(workloads::Benchmark::kTpcc, opt);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    dataset_ = new workloads::Dataset(std::move(*d));
    indices_ =
        new std::vector<uint32_t>(core::AllIndices(dataset_->records.size()));

    core::LearnedWmpOptions lopt;
    lopt.templates.num_templates = 8;
    lopt.regressor = ml::RegressorKind::kGbt;
    auto model = core::LearnedWmpModel::Train(dataset_->records, *indices_,
                                              *dataset_->generator, lopt);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    model_ = new core::LearnedWmpModel(std::move(*model));

    core::LearnedWmpOptions lopt2 = lopt;
    lopt2.regressor = ml::RegressorKind::kRidge;
    auto model2 = core::LearnedWmpModel::Train(dataset_->records, *indices_,
                                               *dataset_->generator, lopt2);
    ASSERT_TRUE(model2.ok()) << model2.status().ToString();
    model2_ = new core::LearnedWmpModel(std::move(*model2));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete indices_;
    delete model_;
    delete model2_;
    dataset_ = nullptr;
    indices_ = nullptr;
    model_ = nullptr;
    model2_ = nullptr;
  }

  static std::shared_ptr<const core::LearnedWmpModel> Borrow(
      const core::LearnedWmpModel* model) {
    return {std::shared_ptr<const void>(), model};
  }

  static std::string SocketAddress(const char* tag) {
    return StrFormat("unix:/tmp/wmp_reactor_test.%d.%s.sock",
                     static_cast<int>(::getpid()), tag);
  }

  /// In-process reference predictions of `model` on the shared batch set.
  static std::vector<double> Reference(const core::LearnedWmpModel* model,
                                       const std::vector<core::WorkloadBatch>&
                                           batches) {
    engine::BatchScorer scorer(model);
    auto want = scorer.ScoreWorkloads(dataset_->records, batches);
    EXPECT_TRUE(want.ok());
    return want->predictions;
  }

  static workloads::Dataset* dataset_;
  static std::vector<uint32_t>* indices_;
  static core::LearnedWmpModel* model_;
  static core::LearnedWmpModel* model2_;
};

workloads::Dataset* ReactorTest::dataset_ = nullptr;
std::vector<uint32_t>* ReactorTest::indices_ = nullptr;
core::LearnedWmpModel* ReactorTest::model_ = nullptr;
core::LearnedWmpModel* ReactorTest::model2_ = nullptr;

// ---------- Basic equivalence: blocking client against the reactor ----------

TEST_F(ReactorTest, BlockingClientScoresBitwiseEqualThroughReactor) {
  engine::ScoringService service({model_});
  engine::ModelRegistry registry;
  net::ReactorServer server(&service, &registry, "default");
  const std::string address = SocketAddress("equiv");
  ASSERT_TRUE(server.Listen(address).ok());
  ASSERT_TRUE(server.Start().ok());

  const auto batches =
      engine::MakeConsecutiveBatches(dataset_->records.size(), 10);
  const std::vector<double> want = Reference(model_, batches);

  net::WireClient client(address);
  ASSERT_TRUE(client.Ping().ok());
  auto got = client.ScoreWorkloads("t", dataset_->records, batches);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->size(), batches.size());
  for (size_t w = 0; w < batches.size(); ++w) {
    ASSERT_TRUE((*got)[w].ok());
    EXPECT_EQ(*(*got)[w], want[w]) << "w=" << w;
  }
  server.Shutdown();
  service.Stop();
}

// ---------- Incremental reassembly ----------

TEST_F(ReactorTest, ByteAtATimeFramesReassembleCorrectly) {
  engine::ScoringService service({model_});
  net::ReactorServer server(&service, nullptr, "default");
  const std::string address = SocketAddress("dribble");
  ASSERT_TRUE(server.Listen(address).ok());
  ASSERT_TRUE(server.Start().ok());

  auto fd = net::ConnectTo(address);
  ASSERT_TRUE(fd.ok());
  // A ping and then a real score request, every byte its own write(2) —
  // the kernel is free to fragment like this and so is a hostile peer.
  const auto batches =
      engine::MakeConsecutiveBatches(dataset_->records.size(), 30);
  const std::vector<double> want = Reference(model_, batches);
  const std::string wire =
      net::EncodeFrame(net::FrameType::kPing, "fragmented") +
      net::EncodeFrame(net::FrameType::kScoreRequest,
                       net::EncodeScoreRequest("t", dataset_->records,
                                               batches));
  for (char byte : wire) {
    ASSERT_EQ(::write(*fd, &byte, 1), 1);
  }
  auto pong = net::ReadFrame(*fd);
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->type, net::FrameType::kPong);
  EXPECT_EQ(pong->payload, "fragmented");
  auto response = net::ReadFrame(*fd);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->type, net::FrameType::kScoreResponse);
  auto decoded = net::DecodeScoreResponse(response->payload);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), batches.size());
  for (size_t w = 0; w < batches.size(); ++w) {
    ASSERT_TRUE(decoded->ok[w]);
    EXPECT_EQ(decoded->predictions[w], want[w]);
  }
  net::CloseConnection(*fd);
  server.Shutdown();
  service.Stop();
}

// ---------- Backpressure ----------

TEST_F(ReactorTest, SlowReaderTripsBackpressureWithoutLosingFrames) {
  engine::ScoringService service({model_});
  net::ReactorServerOptions options;
  options.write_high_watermark = 4096;  // tiny: easy to trip
  net::ReactorServer server(&service, nullptr, "default", options);
  const std::string address = SocketAddress("slow");
  ASSERT_TRUE(server.Listen(address).ok());
  ASSERT_TRUE(server.Start().ok());

  auto fd = net::ConnectTo(address);
  ASSERT_TRUE(fd.ok());
  // 80 pings of 8 KB echo 640 KB back — past any socket buffer, so with
  // the reader idle the server's write buffer must cross the watermark
  // and pause reads. The writer thread outruns the reader on purpose.
  constexpr int kPings = 80;
  const std::string payload(8192, 'x');
  std::thread writer([&] {
    for (int i = 0; i < kPings; ++i) {
      ASSERT_TRUE(
          net::WriteFrame(*fd, net::FrameType::kPing, payload).ok());
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  for (int i = 0; i < kPings; ++i) {
    auto pong = net::ReadFrame(*fd);
    ASSERT_TRUE(pong.ok()) << "pong " << i << ": "
                           << pong.status().ToString();
    EXPECT_EQ(pong->type, net::FrameType::kPong);
    EXPECT_EQ(pong->payload.size(), payload.size());
  }
  writer.join();
  EXPECT_GE(server.stats().backpressure_pauses, 1u)
      << "640 KB of unread echo must cross a 4 KB watermark";
  net::CloseConnection(*fd);
  server.Shutdown();
  service.Stop();
}

// ---------- Hostile input isolation ----------

TEST_F(ReactorTest, OversizeFrameRejectedWithoutStallingOthers) {
  engine::ScoringService service({model_});
  net::ReactorServer server(&service, nullptr, "default");
  const std::string address = SocketAddress("oversize");
  ASSERT_TRUE(server.Listen(address).ok());
  ASSERT_TRUE(server.Start().ok());

  // Connection A announces a 65 MB payload — only the 9 header bytes ever
  // travel. The reactor must reject from the header alone (no buffering
  // until the announced bytes arrive, which they never would).
  auto bad = net::ConnectTo(address);
  ASSERT_TRUE(bad.ok());
  std::string header;
  const uint32_t magic = 0x31464D57;
  const uint32_t huge = 65u << 20;
  header.append(reinterpret_cast<const char*>(&magic), 4);
  header.push_back(static_cast<char>(net::FrameType::kPing));
  header.append(reinterpret_cast<const char*>(&huge), 4);
  ASSERT_EQ(::write(*bad, header.data(), header.size()),
            static_cast<ssize_t>(header.size()));

  // Connection B scores normally while A's rejection is in flight.
  const auto batches =
      engine::MakeConsecutiveBatches(dataset_->records.size(), 25);
  const std::vector<double> want = Reference(model_, batches);
  net::WireClient good(address);
  auto got = good.ScoreWorkloads("t", dataset_->records, batches);
  ASSERT_TRUE(got.ok());
  for (size_t w = 0; w < batches.size(); ++w) {
    ASSERT_TRUE((*got)[w].ok());
    EXPECT_EQ(*(*got)[w], want[w]);
  }

  auto error = net::ReadFrame(*bad);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->type, net::FrameType::kError);
  // The offending connection is closed after the error.
  auto eof = net::ReadFrame(*bad);
  EXPECT_TRUE(eof.status().IsNotFound()) << eof.status().ToString();
  net::CloseConnection(*bad);
  EXPECT_GE(server.stats().wire.protocol_errors, 1u);
  server.Shutdown();
  service.Stop();
}

TEST_F(ReactorTest, MalformedFrameKillsOneConnectionLeavesOthersLive) {
  engine::ScoringService service({model_});
  net::ReactorServer server(&service, nullptr, "default");
  const std::string address = SocketAddress("garbage");
  ASSERT_TRUE(server.Listen(address).ok());
  ASSERT_TRUE(server.Start().ok());

  // A long-lived well-behaved connection, opened FIRST.
  auto good = net::ConnectTo(address);
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(net::WriteFrame(*good, net::FrameType::kPing, "before").ok());
  ASSERT_TRUE(net::ReadFrame(*good).ok());

  // Garbage magic on a second connection: one kError, then close.
  auto bad = net::ConnectTo(address);
  ASSERT_TRUE(bad.ok());
  const std::string garbage = "GARBAGE-NOT-A-FRAME";
  ASSERT_EQ(::write(*bad, garbage.data(), garbage.size()),
            static_cast<ssize_t>(garbage.size()));
  auto error = net::ReadFrame(*bad);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->type, net::FrameType::kError);
  auto eof = net::ReadFrame(*bad);
  EXPECT_TRUE(eof.status().IsNotFound());
  net::CloseConnection(*bad);

  // The well-behaved connection never noticed.
  ASSERT_TRUE(net::WriteFrame(*good, net::FrameType::kPing, "after").ok());
  auto pong = net::ReadFrame(*good);
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->payload, "after");
  net::CloseConnection(*good);
  server.Shutdown();
  service.Stop();
}

// ---------- Concurrency sweep ----------

TEST_F(ReactorTest, SixtyFourConnectionsScoreBitwiseEqual) {
  engine::ScoringService service({model_});
  net::ReactorServer server(&service, nullptr, "default");
  const std::string address = SocketAddress("sweep");
  ASSERT_TRUE(server.Listen(address).ok());
  ASSERT_TRUE(server.Start().ok());

  const auto batches =
      engine::MakeConsecutiveBatches(dataset_->records.size(), 15);
  const std::vector<double> want = Reference(model_, batches);

  // 8 threads x 8 clients = 64 distinct connections; every one must get
  // bitwise-identical scores. Failures are counted, not asserted, off the
  // main thread (gtest asserts are not thread-safe).
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int c = 0; c < 8; ++c) {
        net::WireClient client(address);
        auto got = client.ScoreWorkloads("t", dataset_->records, batches);
        if (!got.ok() || got->size() != batches.size()) {
          failures.fetch_add(1);
          continue;
        }
        for (size_t w = 0; w < batches.size(); ++w) {
          if (!(*got)[w].ok() || *(*got)[w] != want[w]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GE(server.stats().wire.connections_accepted, 64u);
  server.Shutdown();
  service.Stop();
}

// ---------- Pipelined client ----------

TEST_F(ReactorTest, PipelinedClientCompletesOutOfOrderResponses) {
  // A hand-rolled server that answers three pipelined requests in REVERSE
  // order, encoding each request's correlation id into its prediction —
  // the futures must each resolve with their OWN response, not the
  // arrival-order one.
  net::Listener listener;
  const std::string address = SocketAddress("ooo");
  ASSERT_TRUE(listener.Listen(address).ok());
  std::thread fake([&] {
    auto fd = listener.Accept();
    ASSERT_TRUE(fd.ok());
    std::vector<uint32_t> corr_ids;
    for (int i = 0; i < 3; ++i) {
      auto frame = net::ReadFrame(*fd);
      ASSERT_TRUE(frame.ok());
      ASSERT_EQ(frame->type, net::FrameType::kScoreRequestPipelined);
      std::string body;
      auto corr = net::DecodePipelinedPayload(frame->payload, &body);
      ASSERT_TRUE(corr.ok());
      corr_ids.push_back(*corr);
    }
    for (auto it = corr_ids.rbegin(); it != corr_ids.rend(); ++it) {
      net::ScoreResponse response;
      response.ok = {1};
      response.predictions = {static_cast<double>(*it)};
      response.errors = {""};
      ASSERT_TRUE(net::WriteFrame(
                      *fd, net::FrameType::kScoreResponsePipelined,
                      net::EncodePipelinedPayload(
                          *it, net::EncodeScoreResponse(response)))
                      .ok());
    }
    net::CloseConnection(*fd);
  });

  auto client = net::AsyncWireClient::Connect(address);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const auto batches =
      engine::MakeConsecutiveBatches(dataset_->records.size(),
                                     dataset_->records.size());
  std::vector<std::future<Result<net::ScoreResponse>>> futures;
  for (int i = 0; i < 3; ++i) {
    auto future =
        (*client)->SubmitScore("t", dataset_->records, batches);
    ASSERT_TRUE(future.ok()) << future.status().ToString();
    futures.push_back(std::move(*future));
  }
  // Correlation ids are assigned 1, 2, 3 in submit order; the fake server
  // answered 3, 2, 1 — each future must still see its own id.
  for (int i = 0; i < 3; ++i) {
    auto outcome = futures[i].get();
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ASSERT_EQ(outcome->size(), 1u);
    EXPECT_EQ(outcome->predictions[0], static_cast<double>(i + 1));
  }
  fake.join();
  (*client)->Close();
}

TEST_F(ReactorTest, PipelinedScoringAgainstReactorMatchesReference) {
  engine::ScoringService service({model_});
  net::ReactorServer server(&service, nullptr, "default");
  const std::string address = SocketAddress("pipe");
  ASSERT_TRUE(server.Listen(address).ok());
  ASSERT_TRUE(server.Start().ok());

  const auto batches =
      engine::MakeConsecutiveBatches(dataset_->records.size(), 10);
  const std::vector<double> want = Reference(model_, batches);

  auto client = net::AsyncWireClient::Connect(address);
  ASSERT_TRUE(client.ok());
  // Many single-batch requests in flight at once; the reactor answers in
  // completion order, the correlation ids route them home.
  std::vector<std::future<Result<net::ScoreResponse>>> futures;
  for (const core::WorkloadBatch& batch : batches) {
    auto future = (*client)->SubmitScore(
        "t", dataset_->records, std::vector<core::WorkloadBatch>{batch});
    ASSERT_TRUE(future.ok()) << future.status().ToString();
    futures.push_back(std::move(*future));
  }
  for (size_t w = 0; w < futures.size(); ++w) {
    auto outcome = futures[w].get();
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ASSERT_EQ(outcome->size(), 1u);
    ASSERT_TRUE(outcome->ok[0]);
    EXPECT_EQ(outcome->predictions[0], want[w]) << "w=" << w;
  }
  EXPECT_GE(server.stats().pipelined_frames, batches.size());
  (*client)->Close();
  server.Shutdown();
  service.Stop();
}

TEST_F(ReactorTest, PipelinedErrorIndictsOneRequestNotTheStream) {
  engine::ScoringService service({model_});
  net::ReactorServer server(&service, nullptr, "default");
  const std::string address = SocketAddress("pipeerr");
  ASSERT_TRUE(server.Listen(address).ok());
  ASSERT_TRUE(server.Start().ok());

  auto fd = net::ConnectTo(address);
  ASSERT_TRUE(fd.ok());
  // Correlation id decodes, body does not: kErrorPipelined carrying OUR
  // id must come back, and the connection must stay usable.
  ASSERT_TRUE(net::WriteFrame(*fd, net::FrameType::kScoreRequestPipelined,
                              net::EncodePipelinedPayload(42, "garbage"))
                  .ok());
  auto error = net::ReadFrame(*fd);
  ASSERT_TRUE(error.ok());
  ASSERT_EQ(error->type, net::FrameType::kErrorPipelined);
  std::string body;
  auto corr = net::DecodePipelinedPayload(error->payload, &body);
  ASSERT_TRUE(corr.ok());
  EXPECT_EQ(*corr, 42u);
  // Still alive: a plain ping round-trips.
  ASSERT_TRUE(net::WriteFrame(*fd, net::FrameType::kPing, "alive").ok());
  auto pong = net::ReadFrame(*fd);
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->type, net::FrameType::kPong);
  net::CloseConnection(*fd);
  server.Shutdown();
  service.Stop();
}

// ---------- Rollouts under traffic ----------

TEST_F(ReactorTest, PublishAndRollbackUnderTrafficStayBitwise) {
  engine::ScoringService service({model_});
  engine::ModelRegistry registry;
  ASSERT_TRUE(registry.Record("default", Borrow(model_)).ok());
  net::ReactorServer server(&service, &registry, "default");
  const std::string address = SocketAddress("rollout");
  ASSERT_TRUE(server.Listen(address).ok());
  ASSERT_TRUE(server.Start().ok());

  const auto batches =
      engine::MakeConsecutiveBatches(dataset_->records.size(), 10);
  const std::vector<double> want1 = Reference(model_, batches);
  const std::vector<double> want2 = Reference(model2_, batches);

  // Traffic thread: every prediction must be bitwise one of the two
  // models' — a swap mid-request may mix them across workloads, but never
  // produce a third value.
  std::atomic<bool> stop{false};
  std::atomic<int> anomalies{0};
  std::thread traffic([&] {
    net::WireClient client(address);
    while (!stop.load(std::memory_order_acquire)) {
      auto got = client.ScoreWorkloads("t", dataset_->records, batches);
      if (!got.ok() || got->size() != batches.size()) {
        anomalies.fetch_add(1);
        continue;
      }
      for (size_t w = 0; w < batches.size(); ++w) {
        if (!(*got)[w].ok() ||
            (*(*got)[w] != want1[w] && *(*got)[w] != want2[w])) {
          anomalies.fetch_add(1);
        }
      }
    }
  });

  net::WireClient admin(address);
  for (int round = 0; round < 3; ++round) {
    auto epoch = admin.Publish("default", *model2_);
    ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
    auto back = admin.Rollback("default");
    ASSERT_TRUE(back.ok()) << back.status().ToString();
  }
  stop.store(true, std::memory_order_release);
  traffic.join();
  EXPECT_EQ(anomalies.load(), 0);
  server.Shutdown();
  service.Stop();
}

TEST_F(ReactorTest, CorruptChecksumPublishRejectedBeforeAnyEpoch) {
  engine::ScoringService service({model_});
  engine::ModelRegistry registry;
  ASSERT_TRUE(registry.Record("default", Borrow(model_)).ok());
  net::ReactorServer server(&service, &registry, "default");
  const std::string address = SocketAddress("cksum");
  ASSERT_TRUE(server.Listen(address).ok());
  ASSERT_TRUE(server.Start().ok());

  BinaryWriter artifact;
  ASSERT_TRUE(model2_->Serialize(&artifact).ok());
  net::PublishRequest request;
  request.model_name = "default";
  request.model_bytes = artifact.buffer();
  std::string payload = net::EncodePublishRequest(request);
  const size_t byte_in_model =
      4 + request.model_name.size() + 4 + request.model_bytes.size() / 2;
  ASSERT_LT(byte_in_model, payload.size() - 8);
  payload[byte_in_model] ^= 0x01;

  auto fd = net::ConnectTo(address);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(
      net::WriteFrame(*fd, net::FrameType::kPublishRequest, payload).ok());
  auto error = net::ReadFrame(*fd);
  ASSERT_TRUE(error.ok());
  ASSERT_EQ(error->type, net::FrameType::kError);
  const net::ErrorBody body = net::DecodeErrorBody(error->payload);
  EXPECT_NE(body.message.find("checksum"), std::string::npos)
      << body.message;
  net::CloseConnection(*fd);
  EXPECT_EQ(registry.NumEpochs("default"), 1u);
  server.Shutdown();
  service.Stop();
}

// ---------- Idle reaping ----------

TEST_F(ReactorTest, IdleConnectionsAreReaped) {
  engine::ScoringService service({model_});
  net::ReactorServerOptions options;
  options.idle_timeout_ms = 50;
  net::ReactorServer server(&service, nullptr, "default", options);
  const std::string address = SocketAddress("idle");
  ASSERT_TRUE(server.Listen(address).ok());
  ASSERT_TRUE(server.Start().ok());

  auto fd = net::ConnectTo(address);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(net::WriteFrame(*fd, net::FrameType::kPing, "p").ok());
  ASSERT_TRUE(net::ReadFrame(*fd).ok());
  // Go quiet past the timeout; the server must hang up on us.
  auto eof = net::ReadFrame(*fd);
  EXPECT_TRUE(eof.status().IsNotFound()) << eof.status().ToString();
  net::CloseConnection(*fd);
  EXPECT_GE(server.stats().idle_closed, 1u);
  server.Shutdown();
  service.Stop();
}

}  // namespace
}  // namespace wmp
