// Unit and property tests for the Ridge / DT / RF / GBT regressors and the
// shared Regressor interface.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "ml/dtree.h"
#include "ml/gbt.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "ml/regressor.h"
#include "ml/ridge.h"
#include "util/io.h"
#include "util/random.h"

namespace wmp::ml {
namespace {

// y = 3 x0 - 2 x1 + 5 + noise
void LinearData(size_t n, uint64_t seed, double noise, Matrix* x,
                std::vector<double>* y) {
  Rng rng(seed);
  *x = Matrix(n, 2);
  y->resize(n);
  for (size_t i = 0; i < n; ++i) {
    x->At(i, 0) = rng.UniformDouble(-5, 5);
    x->At(i, 1) = rng.UniformDouble(-5, 5);
    (*y)[i] = 3.0 * x->At(i, 0) - 2.0 * x->At(i, 1) + 5.0 +
              rng.Normal(0, noise);
  }
}

// Piecewise-constant target: a tree-friendly step function.
void StepData(size_t n, uint64_t seed, Matrix* x, std::vector<double>* y) {
  Rng rng(seed);
  *x = Matrix(n, 3);
  y->resize(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < 3; ++c) x->At(i, c) = rng.UniformDouble(0, 1);
    (*y)[i] = (x->At(i, 0) > 0.5 ? 10.0 : 0.0) +
              (x->At(i, 1) > 0.25 ? 4.0 : 0.0);
  }
}

// ---------- Ridge ----------

TEST(RidgeTest, RecoversLinearCoefficients) {
  Matrix x;
  std::vector<double> y;
  LinearData(500, 1, 0.01, &x, &y);
  RidgeRegressor model(RidgeOptions{.alpha = 1e-6});
  ASSERT_TRUE(model.Fit(x, y).ok());
  ASSERT_EQ(model.coefficients().size(), 2u);
  EXPECT_NEAR(model.coefficients()[0], 3.0, 0.02);
  EXPECT_NEAR(model.coefficients()[1], -2.0, 0.02);
  EXPECT_NEAR(model.intercept(), 5.0, 0.05);
}

TEST(RidgeTest, RegularizationShrinksCoefficients) {
  Matrix x;
  std::vector<double> y;
  LinearData(200, 3, 0.5, &x, &y);
  RidgeRegressor weak(RidgeOptions{.alpha = 1e-6});
  RidgeRegressor strong(RidgeOptions{.alpha = 1e5});
  ASSERT_TRUE(weak.Fit(x, y).ok());
  ASSERT_TRUE(strong.Fit(x, y).ok());
  EXPECT_LT(std::fabs(strong.coefficients()[0]),
            std::fabs(weak.coefficients()[0]));
}

TEST(RidgeTest, HandlesRankDeficientDesign) {
  // Duplicate column -> singular gram without the internal jitter.
  Rng rng(5);
  Matrix x(50, 2);
  std::vector<double> y(50);
  for (size_t i = 0; i < 50; ++i) {
    x.At(i, 0) = rng.UniformDouble(0, 1);
    x.At(i, 1) = x.At(i, 0);
    y[i] = 2.0 * x.At(i, 0);
  }
  RidgeRegressor model(RidgeOptions{.alpha = 0.0});
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_NEAR(model.PredictOne({0.5, 0.5}).value(), 1.0, 0.05);
}

TEST(RidgeTest, ErrorsOnMisuse) {
  RidgeRegressor model;
  EXPECT_TRUE(model.PredictOne({1.0}).status().IsFailedPrecondition());
  Matrix x;
  EXPECT_TRUE(model.Fit(x, {}).IsInvalidArgument());
  Matrix x2(3, 1);
  EXPECT_TRUE(model.Fit(x2, {1.0}).IsInvalidArgument());
  RidgeRegressor bad(RidgeOptions{.alpha = -1.0});
  std::vector<double> y{1, 2, 3};
  EXPECT_TRUE(bad.Fit(x2, y).IsInvalidArgument());
}

TEST(RidgeTest, SerializationRoundTrip) {
  Matrix x;
  std::vector<double> y;
  LinearData(100, 7, 0.1, &x, &y);
  RidgeRegressor model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  BinaryWriter w;
  ASSERT_TRUE(model.Serialize(&w).ok());
  BinaryReader r(w.buffer());
  auto restored = RidgeRegressor::Deserialize(&r);
  ASSERT_TRUE(restored.ok());
  EXPECT_DOUBLE_EQ((*restored)->PredictOne({1.0, 2.0}).value(),
                   model.PredictOne({1.0, 2.0}).value());
}

// ---------- FeatureBinner ----------

TEST(FeatureBinnerTest, BinsAreMonotone) {
  Rng rng(11);
  Matrix x(300, 1);
  for (double& v : x.data()) v = rng.Normal(0, 10);
  FeatureBinner binner;
  ASSERT_TRUE(binner.Fit(x, 16).ok());
  EXPECT_LE(binner.NumBins(0), 16u);
  uint16_t prev = binner.BinValue(0, -100.0);
  for (double v = -100.0; v <= 100.0; v += 1.0) {
    uint16_t b = binner.BinValue(0, v);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

TEST(FeatureBinnerTest, ThresholdSemanticsMatchBinning) {
  Rng rng(13);
  Matrix x(200, 1);
  for (double& v : x.data()) v = rng.UniformDouble(0, 100);
  FeatureBinner binner;
  ASSERT_TRUE(binner.Fit(x, 8).ok());
  // For every edge, values <= edge land in a bin <= the edge's index.
  for (size_t b = 0; b + 1 < binner.NumBins(0); ++b) {
    const double edge = binner.UpperEdge(0, b);
    EXPECT_LE(binner.BinValue(0, edge), b);
    EXPECT_GT(binner.BinValue(0, edge + 1e-9), b);
  }
}

TEST(FeatureBinnerTest, ConstantFeatureGetsOneBin) {
  Matrix x(50, 1);
  for (double& v : x.data()) v = 7.0;
  FeatureBinner binner;
  ASSERT_TRUE(binner.Fit(x, 32).ok());
  EXPECT_EQ(binner.NumBins(0), 1u);
}

TEST(FeatureBinnerTest, RejectsBadMaxBins) {
  Matrix x(10, 1);
  FeatureBinner binner;
  EXPECT_TRUE(binner.Fit(x, 1).IsInvalidArgument());
}

// ---------- Decision tree ----------

TEST(DecisionTreeTest, LearnsStepFunctionExactly) {
  Matrix x;
  std::vector<double> y;
  StepData(800, 17, &x, &y);
  DecisionTreeRegressor model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  auto pred = model.Predict(x).value();
  EXPECT_LT(Rmse(y, pred), 0.5);
}

TEST(DecisionTreeTest, PredictionWithinTrainingRange) {
  Matrix x;
  std::vector<double> y;
  StepData(400, 19, &x, &y);
  DecisionTreeRegressor model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  const double y_min = *std::min_element(y.begin(), y.end());
  const double y_max = *std::max_element(y.begin(), y.end());
  Rng rng(23);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> probe{rng.UniformDouble(-1, 2),
                              rng.UniformDouble(-1, 2),
                              rng.UniformDouble(-1, 2)};
    const double p = model.PredictOne(probe).value();
    EXPECT_GE(p, y_min - 1e-9);
    EXPECT_LE(p, y_max + 1e-9);
  }
}

TEST(DecisionTreeTest, DepthZeroCapsAtRootMean) {
  Matrix x;
  std::vector<double> y;
  StepData(100, 29, &x, &y);
  DecisionTreeOptions opt;
  opt.tree.max_depth = 0;
  DecisionTreeRegressor model(opt);
  ASSERT_TRUE(model.Fit(x, y).ok());
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  EXPECT_NEAR(model.PredictOne({0.5, 0.5, 0.5}).value(), mean, 1e-9);
}

TEST(DecisionTreeTest, MinSamplesLeafRespected) {
  Matrix x;
  std::vector<double> y;
  StepData(200, 31, &x, &y);
  DecisionTreeOptions opt;
  opt.tree.min_samples_leaf = 50;
  DecisionTreeRegressor model(opt);
  ASSERT_TRUE(model.Fit(x, y).ok());
  // With 200 rows and >=50 per leaf there can be at most 4 leaves -> at
  // most 7 nodes.
  EXPECT_LE(model.tree().nodes().size(), 7u);
}

TEST(DecisionTreeTest, SerializationRoundTrip) {
  Matrix x;
  std::vector<double> y;
  StepData(300, 37, &x, &y);
  DecisionTreeRegressor model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  BinaryWriter w;
  ASSERT_TRUE(model.Serialize(&w).ok());
  BinaryReader r(w.buffer());
  auto restored = DecisionTreeRegressor::Deserialize(&r);
  ASSERT_TRUE(restored.ok());
  for (size_t i = 0; i < 20; ++i) {
    auto probe = x.RowVec(i);
    EXPECT_DOUBLE_EQ((*restored)->PredictOne(probe).value(),
                     model.PredictOne(probe).value());
  }
}

// ---------- Random forest ----------

TEST(RandomForestTest, BeatsSingleTreeOnNoisyData) {
  Rng rng(41);
  Matrix x(600, 4);
  std::vector<double> y(600);
  for (size_t i = 0; i < 600; ++i) {
    for (size_t c = 0; c < 4; ++c) x.At(i, c) = rng.UniformDouble(0, 1);
    y[i] = std::sin(6.0 * x.At(i, 0)) + x.At(i, 1) * x.At(i, 1) +
           rng.Normal(0, 0.5);
  }
  // Holdout: last 100 rows.
  Matrix x_tr(500, 4), x_te(100, 4);
  std::vector<double> y_tr(y.begin(), y.begin() + 500);
  std::vector<double> y_te(y.begin() + 500, y.end());
  std::copy(x.data().begin(), x.data().begin() + 500 * 4, x_tr.data().begin());
  std::copy(x.data().begin() + 500 * 4, x.data().end(), x_te.data().begin());

  DecisionTreeRegressor tree;
  RandomForestRegressor forest(RandomForestOptions{.num_trees = 30, .seed = 1});
  ASSERT_TRUE(tree.Fit(x_tr, y_tr).ok());
  ASSERT_TRUE(forest.Fit(x_tr, y_tr).ok());
  const double tree_rmse = Rmse(y_te, tree.Predict(x_te).value());
  const double forest_rmse = Rmse(y_te, forest.Predict(x_te).value());
  EXPECT_LT(forest_rmse, tree_rmse);
}

TEST(RandomForestTest, PredictionIsMeanOfTrees) {
  Matrix x;
  std::vector<double> y;
  StepData(200, 43, &x, &y);
  RandomForestRegressor model(RandomForestOptions{.num_trees = 5, .seed = 2});
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_EQ(model.num_trees(), 5u);
  const double y_min = *std::min_element(y.begin(), y.end());
  const double y_max = *std::max_element(y.begin(), y.end());
  const double p = model.PredictOne({0.5, 0.5, 0.5}).value();
  EXPECT_GE(p, y_min);
  EXPECT_LE(p, y_max);
}

TEST(RandomForestTest, SerializationRoundTrip) {
  Matrix x;
  std::vector<double> y;
  StepData(150, 47, &x, &y);
  RandomForestRegressor model(RandomForestOptions{.num_trees = 8, .seed = 3});
  ASSERT_TRUE(model.Fit(x, y).ok());
  BinaryWriter w;
  ASSERT_TRUE(model.Serialize(&w).ok());
  BinaryReader r(w.buffer());
  auto restored = RandomForestRegressor::Deserialize(&r);
  ASSERT_TRUE(restored.ok());
  for (size_t i = 0; i < 10; ++i) {
    auto probe = x.RowVec(i);
    EXPECT_DOUBLE_EQ((*restored)->PredictOne(probe).value(),
                     model.PredictOne(probe).value());
  }
}

// ---------- GBT ----------

TEST(GbtTest, FitsNonlinearFunction) {
  Rng rng(53);
  Matrix x(800, 2);
  std::vector<double> y(800);
  for (size_t i = 0; i < 800; ++i) {
    x.At(i, 0) = rng.UniformDouble(-3, 3);
    x.At(i, 1) = rng.UniformDouble(-3, 3);
    y[i] = x.At(i, 0) * x.At(i, 0) + 2.0 * x.At(i, 1);
  }
  GbtRegressor model(GbtOptions{.num_rounds = 120, .learning_rate = 0.2});
  ASSERT_TRUE(model.Fit(x, y).ok());
  auto pred = model.Predict(x).value();
  EXPECT_LT(Rmse(y, pred), 0.35);
}

TEST(GbtTest, MoreRoundsReduceTrainingError) {
  Matrix x;
  std::vector<double> y;
  StepData(400, 59, &x, &y);
  GbtRegressor small(GbtOptions{.num_rounds = 5});
  GbtRegressor large(GbtOptions{.num_rounds = 80});
  ASSERT_TRUE(small.Fit(x, y).ok());
  ASSERT_TRUE(large.Fit(x, y).ok());
  EXPECT_LT(Rmse(y, large.Predict(x).value()), Rmse(y, small.Predict(x).value()));
}

TEST(GbtTest, BaseScoreIsTargetMean) {
  Matrix x;
  std::vector<double> y;
  StepData(100, 61, &x, &y);
  GbtRegressor model(GbtOptions{.num_rounds = 3});
  ASSERT_TRUE(model.Fit(x, y).ok());
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  EXPECT_NEAR(model.base_score(), mean, 1e-9);
}

TEST(GbtTest, LambdaShrinksLeafContributions) {
  Matrix x;
  std::vector<double> y;
  StepData(300, 67, &x, &y);
  GbtRegressor lo(GbtOptions{.num_rounds = 1, .learning_rate = 1.0, .lambda = 0.0});
  GbtRegressor hi(GbtOptions{.num_rounds = 1, .learning_rate = 1.0, .lambda = 1000.0});
  ASSERT_TRUE(lo.Fit(x, y).ok());
  ASSERT_TRUE(hi.Fit(x, y).ok());
  // With heavy regularization the first tree moves predictions less.
  double lo_spread = 0.0, hi_spread = 0.0;
  for (size_t i = 0; i < 50; ++i) {
    auto probe = x.RowVec(i);
    lo_spread += std::fabs(lo.PredictOne(probe).value() - lo.base_score());
    hi_spread += std::fabs(hi.PredictOne(probe).value() - hi.base_score());
  }
  EXPECT_LT(hi_spread, lo_spread);
}

TEST(GbtTest, SubsampleAndColsampleStillLearn) {
  Matrix x;
  std::vector<double> y;
  StepData(500, 71, &x, &y);
  GbtRegressor model(GbtOptions{
      .num_rounds = 60, .subsample = 0.7, .colsample = 0.7, .seed = 4});
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_LT(Rmse(y, model.Predict(x).value()), 1.5);
}

TEST(GbtTest, SerializationRoundTrip) {
  Matrix x;
  std::vector<double> y;
  StepData(200, 73, &x, &y);
  GbtRegressor model(GbtOptions{.num_rounds = 10});
  ASSERT_TRUE(model.Fit(x, y).ok());
  BinaryWriter w;
  ASSERT_TRUE(model.Serialize(&w).ok());
  BinaryReader r(w.buffer());
  auto restored = GbtRegressor::Deserialize(&r);
  ASSERT_TRUE(restored.ok());
  for (size_t i = 0; i < 20; ++i) {
    auto probe = x.RowVec(i);
    EXPECT_NEAR((*restored)->PredictOne(probe).value(),
                model.PredictOne(probe).value(), 1e-12);
  }
}

// ---------- Regressor interface / factory ----------

TEST(RegressorFactoryTest, CreatesAllKindsWithPaperNames) {
  EXPECT_EQ(CreateRegressor(RegressorKind::kRidge)->Name(), "Ridge");
  EXPECT_EQ(CreateRegressor(RegressorKind::kDecisionTree)->Name(), "DT");
  EXPECT_EQ(CreateRegressor(RegressorKind::kRandomForest)->Name(), "RF");
  EXPECT_EQ(CreateRegressor(RegressorKind::kGbt)->Name(), "XGB");
  EXPECT_EQ(CreateRegressor(RegressorKind::kMlp)->Name(), "DNN");
  EXPECT_EQ(AllRegressorKinds().size(), 5u);
}

TEST(RegressorFactoryTest, GenericDeserializeDispatches) {
  Matrix x;
  std::vector<double> y;
  StepData(150, 79, &x, &y);
  for (RegressorKind kind :
       {RegressorKind::kRidge, RegressorKind::kDecisionTree,
        RegressorKind::kRandomForest, RegressorKind::kGbt}) {
    auto model = CreateRegressor(kind);
    ASSERT_TRUE(model->Fit(x, y).ok());
    BinaryWriter w;
    ASSERT_TRUE(model->Serialize(&w).ok());
    BinaryReader r(w.buffer());
    auto restored = DeserializeRegressor(&r);
    ASSERT_TRUE(restored.ok()) << RegressorKindName(kind);
    EXPECT_EQ((*restored)->Name(), model->Name());
    auto probe = x.RowVec(0);
    EXPECT_NEAR((*restored)->PredictOne(probe).value(),
                model->PredictOne(probe).value(), 1e-12);
  }
}

TEST(RegressorFactoryTest, UnknownTagRejected) {
  BinaryWriter w;
  w.WriteU32(0x12345678);
  BinaryReader r(w.buffer());
  EXPECT_TRUE(DeserializeRegressor(&r).status().IsInvalidArgument());
}

TEST(RegressorInterfaceTest, SerializedSizeMatchesStream) {
  Matrix x;
  std::vector<double> y;
  StepData(100, 83, &x, &y);
  auto model = CreateRegressor(RegressorKind::kGbt);
  ASSERT_TRUE(model->Fit(x, y).ok());
  BinaryWriter w;
  ASSERT_TRUE(model->Serialize(&w).ok());
  EXPECT_EQ(model->SerializedSize().value(), w.size());
}

// Property: every model family achieves low training RMSE on an easy
// linear target (sanity sweep across the registry).
class AllRegressorsProperty : public ::testing::TestWithParam<RegressorKind> {};

TEST_P(AllRegressorsProperty, FitsEasyLinearTarget) {
  Matrix x;
  std::vector<double> y;
  LinearData(400, 89, 0.05, &x, &y);
  auto model = CreateRegressor(GetParam());
  ASSERT_TRUE(model->Fit(x, y).ok());
  auto pred = model->Predict(x).value();
  // Spread of y is ~sqrt(9*25/3 + 4*25/3) ≈ 10; require far-better-than-mean.
  // The deep default DNN gets a looser bound: the paper's 6-hidden-layer net
  // is intentionally oversized for a 400-row linear toy problem.
  const double bound = GetParam() == RegressorKind::kMlp ? 4.5 : 3.0;
  EXPECT_LT(Rmse(y, pred), bound) << model->Name();
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllRegressorsProperty,
    ::testing::Values(RegressorKind::kRidge, RegressorKind::kDecisionTree,
                      RegressorKind::kRandomForest, RegressorKind::kGbt,
                      RegressorKind::kMlp),
    [](const ::testing::TestParamInfo<RegressorKind>& info) {
      return RegressorKindName(info.param);
    });

}  // namespace
}  // namespace wmp::ml
