// Unit tests for the text-based template-learning substrate: tokenizer,
// bag-of-words, schema-aware vectorizer, word embeddings, and rules.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "sql/parser.h"
#include "text/bow.h"
#include "text/embeddings.h"
#include "text/rules.h"
#include "text/text_mining.h"
#include "text/tokenizer.h"

namespace wmp::text {
namespace {

// ---------- tokenizer ----------

TEST(TokenizerTest, LowercasesAndFoldsLiterals) {
  auto tokens = TokenizeSql("SELECT Qty FROM Sales WHERE price > 10.5");
  EXPECT_EQ(tokens, (std::vector<std::string>{"select", "qty", "from", "sales",
                                              "where", "price", "#num"}));
}

TEST(TokenizerTest, StringsFoldToPlaceholder) {
  auto tokens = TokenizeSql("SELECT a FROM t WHERE b LIKE '%x%'");
  EXPECT_EQ(tokens.back(), "#str");
}

TEST(TokenizerTest, FoldingCanBeDisabled) {
  TokenizerOptions opt;
  opt.fold_numbers = false;
  opt.fold_strings = false;
  auto tokens = TokenizeSql("a = 42 AND b = 'x'", opt);
  EXPECT_EQ(tokens, (std::vector<std::string>{"a", "and", "b"}));
}

TEST(TokenizerTest, PunctuationDropped) {
  auto tokens = TokenizeSql("f(a), g.h");
  EXPECT_EQ(tokens, (std::vector<std::string>{"f", "a", "g", "h"}));
}

// ---------- bag of words ----------

TEST(BowTest, CountsTokensInVocabulary) {
  BowVectorizer bow;
  ASSERT_TRUE(bow.Fit({"select a from t", "select b from t"}).ok());
  auto vec = bow.Transform("select a, a from t").value();
  EXPECT_EQ(vec.size(), bow.vocab_size());
  EXPECT_DOUBLE_EQ(vec[static_cast<size_t>(bow.WordIndex("a"))], 2.0);
  EXPECT_DOUBLE_EQ(vec[static_cast<size_t>(bow.WordIndex("select"))], 1.0);
}

TEST(BowTest, OutOfVocabularyDropped) {
  BowVectorizer bow;
  ASSERT_TRUE(bow.Fit({"select a from t"}).ok());
  EXPECT_EQ(bow.WordIndex("zebra"), -1);
  auto vec = bow.Transform("zebra zebra").value();
  double total = 0;
  for (double v : vec) total += v;
  EXPECT_DOUBLE_EQ(total, 0.0);
}

TEST(BowTest, MaxVocabKeepsMostFrequent) {
  BowOptions opt;
  opt.max_vocab = 2;
  BowVectorizer bow;
  ASSERT_TRUE(bow.Fit({"aa aa aa bb bb cc"}, opt).ok());
  EXPECT_EQ(bow.vocab_size(), 2u);
  EXPECT_GE(bow.WordIndex("aa"), 0);
  EXPECT_GE(bow.WordIndex("bb"), 0);
  EXPECT_EQ(bow.WordIndex("cc"), -1);
}

TEST(BowTest, ErrorsOnMisuse) {
  BowVectorizer bow;
  EXPECT_TRUE(bow.Fit({}).IsInvalidArgument());
  EXPECT_TRUE(bow.Transform("x").status().IsFailedPrecondition());
}

// ---------- schema-aware (text mining) ----------

TEST(SchemaVectorizerTest, VocabularyFromCatalogOnly) {
  catalog::Catalog cat;
  catalog::TableDef t("orders", 10);
  ASSERT_TRUE(t.AddColumn(catalog::Column("o_id", catalog::ColumnType::kInt)).ok());
  ASSERT_TRUE(cat.AddTable(std::move(t)).ok());

  SchemaAwareVectorizer vectorizer;
  ASSERT_TRUE(vectorizer.Fit(cat).ok());
  // Clause keywords + "orders" + "o_id".
  EXPECT_EQ(vectorizer.vocab_size(),
            SchemaAwareVectorizer::ClauseKeywords().size() + 2);
  auto vec =
      vectorizer.Transform("select o_id from orders where zebra = 1").value();
  double total = 0;
  for (double v : vec) total += v;
  // select, o_id, from, orders, where -> 5 hits; zebra ignored.
  EXPECT_DOUBLE_EQ(total, 5.0);
}

TEST(SchemaVectorizerTest, EmptyCatalogRejected) {
  catalog::Catalog cat;
  SchemaAwareVectorizer vectorizer;
  EXPECT_TRUE(vectorizer.Fit(cat).IsInvalidArgument());
}

// ---------- embeddings ----------

TEST(EmbeddingsTest, CoOccurringWordsAreCloserThanUnrelated) {
  // "alpha beta" always co-occur; "gamma" lives in different contexts.
  std::vector<std::string> corpus;
  for (int i = 0; i < 60; ++i) {
    corpus.push_back("select alpha beta from t_one");
    corpus.push_back("select gamma from t_two where x");
  }
  WordEmbeddings emb;
  EmbeddingOptions opt;
  opt.dim = 8;
  ASSERT_TRUE(emb.Fit(corpus, opt).ok());
  const double close = emb.Similarity("alpha", "beta").value();
  const double far = emb.Similarity("alpha", "gamma").value();
  EXPECT_GT(close, far);
}

TEST(EmbeddingsTest, TransformAveragesKnownTokens) {
  WordEmbeddings emb;
  EmbeddingOptions opt;
  opt.dim = 4;
  ASSERT_TRUE(emb.Fit({"a b c", "a b d", "c d a"}, opt).ok());
  auto vec = emb.Transform("a b").value();
  EXPECT_EQ(vec.size(), 4u);
  auto va = emb.WordVector("a").value();
  auto vb = emb.WordVector("b").value();
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(vec[i], 0.5 * (va[i] + vb[i]), 1e-9);
  }
}

TEST(EmbeddingsTest, UnknownWordHandling) {
  WordEmbeddings emb;
  ASSERT_TRUE(emb.Fit({"a b", "b c"}).ok());
  EXPECT_TRUE(emb.WordVector("zzz").status().IsNotFound());
  auto vec = emb.Transform("zzz").value();  // zero vector, not an error
  for (double v : vec) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(EmbeddingsTest, DimCappedByVocab) {
  WordEmbeddings emb;
  EmbeddingOptions opt;
  opt.dim = 64;
  ASSERT_TRUE(emb.Fit({"a b", "a b"}, opt).ok());
  EXPECT_LE(emb.dim(), 2);
}

TEST(EmbeddingsTest, ErrorsOnBadInput) {
  WordEmbeddings emb;
  EXPECT_TRUE(emb.Fit({}).IsInvalidArgument());
  EmbeddingOptions opt;
  opt.dim = 0;
  EXPECT_TRUE(emb.Fit({"a"}, opt).IsInvalidArgument());
}

// ---------- rules ----------

sql::Query Q(const std::string& text) {
  auto q = sql::Parse(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

TEST(RulesTest, FirstMatchWinsAndCatchAll) {
  std::vector<TemplateRule> rules;
  rules.push_back({"agg-orders", {"orders"}, -1, -1, true, std::nullopt});
  rules.push_back({"any-orders", {"orders"}, -1, -1, std::nullopt, std::nullopt});
  RuleBasedClassifier clf(rules);
  EXPECT_EQ(clf.num_templates(), 3);
  EXPECT_EQ(clf.Classify(Q("SELECT COUNT(*) FROM orders")), 0);
  EXPECT_EQ(clf.Classify(Q("SELECT a FROM orders")), 1);
  EXPECT_EQ(clf.Classify(Q("SELECT a FROM lineitem")), 2);  // catch-all
}

TEST(RulesTest, JoinCountBounds) {
  TemplateRule rule{"two-way", {}, 1, 1, std::nullopt, std::nullopt};
  EXPECT_TRUE(RuleBasedClassifier::Matches(
      rule, Q("SELECT a.x FROM a, b WHERE a.id = b.id")));
  EXPECT_FALSE(RuleBasedClassifier::Matches(rule, Q("SELECT x FROM a")));
  EXPECT_FALSE(RuleBasedClassifier::Matches(
      rule,
      Q("SELECT a.x FROM a, b, c WHERE a.id = b.id AND b.id2 = c.id")));
}

TEST(RulesTest, RequiredTablesAllMustAppear) {
  TemplateRule rule{"ab", {"a", "b"}, -1, -1, std::nullopt, std::nullopt};
  EXPECT_TRUE(RuleBasedClassifier::Matches(
      rule, Q("SELECT a.x FROM a, b WHERE a.id = b.id")));
  EXPECT_FALSE(RuleBasedClassifier::Matches(rule, Q("SELECT x FROM a")));
}

TEST(RulesTest, OrderByConstraint) {
  TemplateRule rule{"sorted", {}, -1, -1, std::nullopt, true};
  EXPECT_TRUE(
      RuleBasedClassifier::Matches(rule, Q("SELECT x FROM a ORDER BY x")));
  EXPECT_FALSE(RuleBasedClassifier::Matches(rule, Q("SELECT x FROM a")));
}

TEST(RulesTest, GroupByCountsAsAggregation) {
  TemplateRule rule{"agg", {}, -1, -1, true, std::nullopt};
  EXPECT_TRUE(RuleBasedClassifier::Matches(
      rule, Q("SELECT x FROM a GROUP BY x")));
  EXPECT_TRUE(RuleBasedClassifier::Matches(rule, Q("SELECT SUM(x) FROM a")));
  EXPECT_FALSE(RuleBasedClassifier::Matches(rule, Q("SELECT x FROM a")));
}

}  // namespace
}  // namespace wmp::text
