// Tests for bin-space compiled inference (ml/compiled_tree.h): every
// family's compiled ensemble must reproduce the reference raw-space walk
// bitwise (DT/RF/GBT all keep the reference accumulation order), the
// compact stream must round-trip losslessly, Decompile must restore trees
// that predict identically, and the compiled codec must beat the legacy
// pointer-tree codec on size.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/compiled_tree.h"
#include "ml/dtree.h"
#include "ml/gbt.h"
#include "ml/random_forest.h"
#include "ml/ridge.h"
#include "util/io.h"
#include "util/random.h"

namespace wmp::ml {
namespace {

// A nonlinear regression fixture with interactions, shared across tests.
struct Fixture {
  Matrix x;
  Matrix test;
  std::vector<double> y;
};

Fixture MakeFixture(size_t n, size_t d, uint64_t seed) {
  Fixture f;
  Rng rng(seed);
  f.x = Matrix(n, d);
  f.test = Matrix(n / 2, d);
  f.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < d; ++c) f.x.At(i, c) = rng.UniformDouble(-5, 5);
    f.y[i] = f.x.At(i, 0) * f.x.At(i, 0) - 2.0 * f.x.At(i, 1) +
             (f.x.At(i, d > 2 ? 2 : 1) > 0 ? 3.0 : -1.0) +
             rng.Normal(0, 0.25);
  }
  // Test rows are drawn from a wider range than training, so traversal is
  // exercised outside the fitted bin edges too.
  for (size_t i = 0; i < f.test.rows(); ++i) {
    for (size_t c = 0; c < d; ++c) f.test.At(i, c) = rng.UniformDouble(-8, 8);
  }
  return f;
}

DecisionTreeRegressor TrainDt(const Fixture& f) {
  DecisionTreeOptions opt;
  opt.tree.max_depth = 9;
  opt.seed = 3;
  DecisionTreeRegressor model(opt);
  EXPECT_TRUE(model.Fit(f.x, f.y).ok());
  return model;
}

RandomForestRegressor TrainRf(const Fixture& f) {
  RandomForestOptions opt;
  opt.num_trees = 15;
  opt.tree.max_depth = 8;
  opt.seed = 5;
  RandomForestRegressor model(opt);
  EXPECT_TRUE(model.Fit(f.x, f.y).ok());
  return model;
}

GbtRegressor TrainGbt(const Fixture& f) {
  GbtOptions opt;
  opt.num_rounds = 30;
  opt.max_depth = 5;
  opt.subsample = 0.8;
  opt.colsample = 0.75;
  opt.seed = 7;
  GbtRegressor model(opt);
  EXPECT_TRUE(model.Fit(f.x, f.y).ok());
  return model;
}

// Bitwise comparison of the compiled ensemble against the reference walk,
// through all three prediction entries.
void ExpectBitwiseEqual(const CompiledEnsemble& compiled,
                        const Regressor& reference, const Matrix& x) {
  auto want = reference.Predict(x);
  ASSERT_TRUE(want.ok());
  auto got = compiled.Predict(x);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), want->size());
  for (size_t i = 0; i < want->size(); ++i) {
    EXPECT_EQ((*got)[i], (*want)[i]) << "row " << i;
    // Row-at-a-time entries agree with the batch path and the reference.
    EXPECT_EQ(compiled.PredictRow(x.RowPtr(i), x.cols()), (*want)[i]);
    EXPECT_EQ(compiled.PredictOne(x.RowVec(i)).value(), (*want)[i]);
  }
}

// ---------- Compiled vs reference, per family ----------

TEST(CompiledEnsembleTest, DecisionTreeBitwiseWithAndWithoutLut) {
  Fixture f = MakeFixture(500, 6, 101);
  DecisionTreeRegressor model = TrainDt(f);
  for (int lut : {0, 3, 6}) {
    auto compiled =
        CompiledEnsemble::Compile(model, CompileOptions{.lut_levels = lut});
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    EXPECT_EQ(compiled->combine(), CompiledEnsemble::Combine::kSingle);
    EXPECT_EQ(compiled->num_trees(), 1u);
    EXPECT_EQ(compiled->lut_levels(), compiled->num_nodes() > 1 ? lut : 0);
    ExpectBitwiseEqual(*compiled, model, f.x);
    ExpectBitwiseEqual(*compiled, model, f.test);
  }
}

TEST(CompiledEnsembleTest, RandomForestBitwise) {
  Fixture f = MakeFixture(400, 5, 103);
  RandomForestRegressor model = TrainRf(f);
  auto compiled = CompiledEnsemble::Compile(model);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ(compiled->combine(), CompiledEnsemble::Combine::kAverage);
  EXPECT_EQ(compiled->num_trees(), model.trees().size());
  ExpectBitwiseEqual(*compiled, model, f.x);
  ExpectBitwiseEqual(*compiled, model, f.test);
}

TEST(CompiledEnsembleTest, GbtBitwise) {
  // The boosted accumulation (base + lr * leaf, tree order) mirrors the
  // reference op-for-op, so even GBT is bitwise — stronger than the 1e-9
  // the bench gates require.
  Fixture f = MakeFixture(400, 5, 107);
  GbtRegressor model = TrainGbt(f);
  auto compiled = CompiledEnsemble::Compile(model);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ(compiled->combine(), CompiledEnsemble::Combine::kBoosted);
  EXPECT_EQ(compiled->base_score(), model.base_score());
  ExpectBitwiseEqual(*compiled, model, f.x);
  ExpectBitwiseEqual(*compiled, model, f.test);
}

TEST(CompiledEnsembleTest, WideBinSpaceFallsBackToU16Codes) {
  // > 255 distinct thresholds per feature forces u16 codes; equivalence
  // must hold there too.
  Fixture f = MakeFixture(3000, 2, 109);
  DecisionTreeOptions opt;
  opt.tree.max_depth = 16;
  opt.tree.max_bins = 4096;
  opt.tree.min_samples_leaf = 1;
  opt.seed = 11;
  DecisionTreeRegressor model(opt);
  ASSERT_TRUE(model.Fit(f.x, f.y).ok());
  auto compiled = CompiledEnsemble::Compile(model);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  if (!compiled->narrow()) {
    EXPECT_GT(compiled->num_nodes(), 511u);
  }
  ExpectBitwiseEqual(*compiled, model, f.x);
  ExpectBitwiseEqual(*compiled, model, f.test);
}

TEST(CompiledEnsembleTest, StumplessTreePredictsTheConstant) {
  // A constant target collapses the tree to a single leaf: no used
  // features, no LUT, and PredictRow must still return the leaf value.
  Matrix x(32, 3);
  Rng rng(13);
  for (double& v : x.data()) v = rng.Normal();
  std::vector<double> y(32, 4.25);
  DecisionTreeRegressor model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  auto compiled = CompiledEnsemble::Compile(model);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ(compiled->num_leaves(), 1u);
  ExpectBitwiseEqual(*compiled, model, x);
}

TEST(CompiledEnsembleTest, NonTreeFamilyFailsPrecondition) {
  RidgeRegressor ridge;
  Matrix x(20, 2);
  std::vector<double> y(20);
  Rng rng(17);
  for (size_t i = 0; i < 20; ++i) {
    x.At(i, 0) = rng.Normal();
    x.At(i, 1) = rng.Normal();
    y[i] = x.At(i, 0) + 2 * x.At(i, 1);
  }
  ASSERT_TRUE(ridge.Fit(x, y).ok());
  EXPECT_TRUE(
      CompiledEnsemble::CompileRegressor(ridge).status().IsFailedPrecondition());
}

// ---------- Serialization ----------

TEST(CompiledEnsembleTest, StreamRoundTripIsBitwiseAndSizeExact) {
  Fixture f = MakeFixture(400, 5, 211);
  RandomForestRegressor model = TrainRf(f);
  auto compiled = CompiledEnsemble::Compile(model);
  ASSERT_TRUE(compiled.ok());

  BinaryWriter writer;
  compiled->Serialize(&writer);
  EXPECT_EQ(writer.size(), compiled->SerializedBytes());

  BinaryReader reader(writer.buffer());
  auto back = CompiledEnsemble::Deserialize(&reader);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(back->combine(), compiled->combine());
  EXPECT_EQ(back->num_trees(), compiled->num_trees());
  EXPECT_EQ(back->num_nodes(), compiled->num_nodes());
  EXPECT_EQ(back->num_leaves(), compiled->num_leaves());
  EXPECT_EQ(back->narrow(), compiled->narrow());
  ExpectBitwiseEqual(*back, model, f.test);
}

TEST(CompiledEnsembleTest, TruncatedOrCorruptStreamsFailCleanly) {
  Fixture f = MakeFixture(300, 4, 213);
  GbtRegressor model = TrainGbt(f);
  auto compiled = CompiledEnsemble::Compile(model);
  ASSERT_TRUE(compiled.ok());
  BinaryWriter writer;
  compiled->Serialize(&writer);
  const std::string& full = writer.buffer();

  // Every truncation point must produce an error, never a crash or an
  // ensemble that silently predicts garbage.
  for (size_t cut : {size_t{0}, size_t{3}, size_t{9}, full.size() / 4,
                     full.size() / 2, full.size() - 1}) {
    BinaryReader reader(full.substr(0, cut));
    EXPECT_FALSE(CompiledEnsemble::Deserialize(&reader).ok()) << cut;
  }
  // A flipped magic tag is rejected outright.
  std::string bad = full;
  bad[0] = static_cast<char>(bad[0] ^ 0x5a);
  BinaryReader reader(bad);
  EXPECT_FALSE(CompiledEnsemble::Deserialize(&reader).ok());
}

TEST(CompiledEnsembleTest, RegressorCodecRoundTripsAndShrinks) {
  // The tree regressors now serialize through the compiled codec: the
  // stream must be substantially smaller than the legacy pointer codec and
  // deserialize to a bitwise-identical predictor.
  Fixture f = MakeFixture(400, 5, 307);
  {
    DecisionTreeRegressor model = TrainDt(f);
    BinaryWriter w;
    ASSERT_TRUE(model.Serialize(&w).ok());
    auto ptr_bytes = PointerSerializedBytes(model);
    ASSERT_TRUE(ptr_bytes.ok());
    EXPECT_LT(w.size(), *ptr_bytes);
    BinaryReader r(w.buffer());
    auto back = DecisionTreeRegressor::Deserialize(&r);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    auto want = model.Predict(f.test);
    auto got = (*back)->Predict(f.test);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    for (size_t i = 0; i < want->size(); ++i) EXPECT_EQ((*got)[i], (*want)[i]);
  }
  {
    GbtRegressor model = TrainGbt(f);
    BinaryWriter w;
    ASSERT_TRUE(model.Serialize(&w).ok());
    auto ptr_bytes = PointerSerializedBytes(model);
    ASSERT_TRUE(ptr_bytes.ok());
    EXPECT_LT(w.size(), *ptr_bytes);
    BinaryReader r(w.buffer());
    auto back = GbtRegressor::Deserialize(&r);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ((*back)->base_score(), model.base_score());
    auto want = model.Predict(f.test);
    auto got = (*back)->Predict(f.test);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    for (size_t i = 0; i < want->size(); ++i) EXPECT_EQ((*got)[i], (*want)[i]);
  }
}

// ---------- Decompile ----------

TEST(CompiledEnsembleTest, DecompileRestoresPredictionEquivalentTrees) {
  Fixture f = MakeFixture(400, 5, 401);
  RandomForestRegressor model = TrainRf(f);
  auto compiled = CompiledEnsemble::Compile(model);
  ASSERT_TRUE(compiled.ok());
  auto trees = compiled->Decompile();
  ASSERT_TRUE(trees.ok()) << trees.status().ToString();
  ASSERT_EQ(trees->size(), model.trees().size());
  // Tree by tree, the decompiled form predicts exactly what the original
  // fitted tree predicts (thresholds come back as the exact doubles).
  for (size_t t = 0; t < trees->size(); ++t) {
    ASSERT_EQ((*trees)[t].nodes().size(), model.trees()[t].nodes().size());
    for (size_t i = 0; i < f.test.rows(); ++i) {
      EXPECT_EQ((*trees)[t].Predict(f.test.RowPtr(i), f.test.cols()),
                model.trees()[t].Predict(f.test.RowPtr(i), f.test.cols()))
          << "tree " << t << " row " << i;
    }
  }
}

// ---------- Lockstep traversal kernels ----------

// Every batch kernel beyond the scalar walk; kAvx2 joins when this CPU has
// it (ForceKernel would refuse it otherwise).
std::vector<TraverseKernel> BatchKernels() {
  std::vector<TraverseKernel> kernels = {TraverseKernel::kLockstep4,
                                         TraverseKernel::kLockstep8};
  if (TraverseKernelSupported(TraverseKernel::kAvx2)) {
    kernels.push_back(TraverseKernel::kAvx2);
  }
  return kernels;
}

Matrix HeadRows(const Matrix& x, size_t n) {
  Matrix m(n, x.cols());
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < x.cols(); ++c) m.At(i, c) = x.At(i, c);
  }
  return m;
}

// Requires every batch kernel to reproduce the scalar walk bitwise on `x`.
void ExpectKernelsMatchScalar(CompiledEnsemble* compiled, const Matrix& x) {
  ASSERT_TRUE(compiled->ForceKernel(TraverseKernel::kScalar).ok());
  auto want = compiled->Predict(x);
  ASSERT_TRUE(want.ok());
  for (TraverseKernel k : BatchKernels()) {
    ASSERT_TRUE(compiled->ForceKernel(k).ok());
    auto got = compiled->Predict(x);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(got->size(), want->size());
    for (size_t i = 0; i < want->size(); ++i) {
      ASSERT_EQ((*got)[i], (*want)[i])
          << TraverseKernelName(k) << " n=" << x.rows() << " row " << i;
    }
  }
}

TEST(CompiledEnsembleTest, LockstepKernelsBitwiseAcrossTailsAndLuts) {
  // Row counts sweep every tail shape the block scheduler can see: empty,
  // shorter than any block (n < 4), between the widths (4 <= n < 8), exact
  // multiples, and ragged remainders of both 4 and 8.
  const size_t kRowCounts[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 12, 15, 16, 17, 31};
  Fixture f = MakeFixture(500, 6, 811);
  DecisionTreeRegressor dt = TrainDt(f);
  RandomForestRegressor rf = TrainRf(f);
  GbtRegressor gbt = TrainGbt(f);
  const Regressor* models[] = {&dt, &rf, &gbt};
  for (const Regressor* model : models) {
    for (int lut : {0, 3, 6}) {
      auto compiled = CompiledEnsemble::CompileRegressor(
          *model, CompileOptions{.lut_levels = lut,
                                 .kernel = TraverseKernel::kScalar});
      ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
      for (size_t n : kRowCounts) {
        ExpectKernelsMatchScalar(&*compiled, HeadRows(f.test, n));
      }
    }
  }
}

TEST(CompiledEnsembleTest, LockstepMixedLeafDepthsParkEarlyExitingLanes) {
  // A deep unpruned tree has leaves at wildly different depths, so lanes
  // of one block park at different iterations — the surviving lanes must
  // keep walking to *their* leaves while parked lanes hold position.
  Fixture f = MakeFixture(900, 4, 821);
  DecisionTreeOptions opt;
  opt.tree.max_depth = 18;
  opt.tree.min_samples_leaf = 1;
  opt.seed = 23;
  DecisionTreeRegressor model(opt);
  ASSERT_TRUE(model.Fit(f.x, f.y).ok());
  for (int lut : {0, 3}) {
    auto compiled = CompiledEnsemble::Compile(
        model,
        CompileOptions{.lut_levels = lut, .kernel = TraverseKernel::kScalar});
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    ExpectKernelsMatchScalar(&*compiled, f.test);
    ExpectKernelsMatchScalar(&*compiled, HeadRows(f.test, 13));
  }
}

TEST(CompiledEnsembleTest, LockstepWideBinSpaceU16) {
  // u16 codes: lockstep compares and the AVX2 gathers must mask two-byte
  // lanes correctly.
  Fixture f = MakeFixture(3000, 2, 823);
  DecisionTreeOptions opt;
  opt.tree.max_depth = 16;
  opt.tree.max_bins = 4096;
  opt.tree.min_samples_leaf = 1;
  opt.seed = 29;
  DecisionTreeRegressor model(opt);
  ASSERT_TRUE(model.Fit(f.x, f.y).ok());
  for (int lut : {0, 3, 6}) {
    auto compiled = CompiledEnsemble::Compile(
        model,
        CompileOptions{.lut_levels = lut, .kernel = TraverseKernel::kScalar});
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    ExpectKernelsMatchScalar(&*compiled, f.test);
    ExpectKernelsMatchScalar(&*compiled, HeadRows(f.test, 11));
  }
}

TEST(CompiledEnsembleTest, LockstepStumpEnsembleAllKernels) {
  // Single-leaf ensemble: d_ = 0, no LUT, every lane parks before the
  // first step — the degenerate case of the early-exit machinery.
  Matrix x(9, 3);
  Rng rng(31);
  for (double& v : x.data()) v = rng.Normal();
  std::vector<double> y(9, -2.5);
  DecisionTreeRegressor model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  auto compiled = CompiledEnsemble::Compile(model);
  ASSERT_TRUE(compiled.ok());
  ASSERT_EQ(compiled->num_leaves(), 1u);
  ExpectKernelsMatchScalar(&*compiled, x);
}

TEST(CompiledEnsembleTest, PredictMatchesPredictRowUnderEveryKernel) {
  // A one-row matrix is all tail, but it must agree with PredictRow and
  // PredictOne no matter which kernel is pinned.
  Fixture f = MakeFixture(400, 5, 827);
  GbtRegressor model = TrainGbt(f);
  auto compiled = CompiledEnsemble::Compile(model);
  ASSERT_TRUE(compiled.ok());
  std::vector<TraverseKernel> kernels = BatchKernels();
  kernels.push_back(TraverseKernel::kScalar);
  for (TraverseKernel k : kernels) {
    ASSERT_TRUE(compiled->ForceKernel(k).ok());
    for (size_t i = 0; i < 10; ++i) {
      auto one = compiled->Predict(HeadRows(f.test, 1));
      ASSERT_TRUE(one.ok());
      const double row = compiled->PredictRow(f.test.RowPtr(0), f.test.cols());
      EXPECT_EQ((*one)[0], row) << TraverseKernelName(k);
      EXPECT_EQ(compiled->PredictOne(f.test.RowVec(0)).value(), row);
    }
  }
}

TEST(CompiledEnsembleTest, KernelResolutionAndForceKernel) {
  Fixture f = MakeFixture(300, 4, 829);
  DecisionTreeRegressor model = TrainDt(f);
  auto compiled = CompiledEnsemble::Compile(model);
  ASSERT_TRUE(compiled.ok());
  // kAuto never survives resolution, and the resolved kernel is runnable.
  EXPECT_NE(compiled->kernel(), TraverseKernel::kAuto);
  EXPECT_TRUE(TraverseKernelSupported(compiled->kernel()));
  EXPECT_STRNE(compiled->kernel_name(), "auto");
  EXPECT_EQ(compiled->kernel_id(), static_cast<uint64_t>(compiled->kernel()));
  // Pinning is honored and reported.
  ASSERT_TRUE(compiled->ForceKernel(TraverseKernel::kLockstep4).ok());
  EXPECT_EQ(compiled->kernel(), TraverseKernel::kLockstep4);
  EXPECT_EQ(compiled->kernel_block_rows(), 4);
  if (!TraverseKernelSupported(TraverseKernel::kAvx2)) {
    EXPECT_TRUE(compiled->ForceKernel(TraverseKernel::kAvx2)
                    .IsFailedPrecondition());
    EXPECT_EQ(compiled->kernel(), TraverseKernel::kLockstep4);  // unchanged
  }
  // Wire id names: 0 is the reference path, kernel ids map to their names.
  EXPECT_STREQ(TraverseKernelIdName(0), "reference");
  EXPECT_STREQ(
      TraverseKernelIdName(static_cast<uint64_t>(TraverseKernel::kLockstep8)),
      "lockstep8");
}

}  // namespace
}  // namespace wmp::ml
