// Edge-case tests for FeatureBinner and the feature-major BinnedDataset:
// constant features, duplicate-collapsing quantile edges, the
// value-equals-edge boundary against the trees' `<=` threshold semantics,
// max_bins at both ends of its domain, storage-width selection, and
// cross-run determinism of the stochastic tree ensembles.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "ml/binned.h"
#include "ml/dtree.h"
#include "ml/gbt.h"
#include "ml/random_forest.h"
#include "util/random.h"

namespace wmp::ml {
namespace {

Matrix ColumnMatrix(const std::vector<double>& values) {
  Matrix x(values.size(), 1);
  for (size_t i = 0; i < values.size(); ++i) x.At(i, 0) = values[i];
  return x;
}

// ---------- FeatureBinner edges ----------

TEST(FeatureBinnerEdgeTest, BranchlessBinSearchMatchesLowerBoundExactly) {
  // BinValue's branchless halving search must compute std::lower_bound's
  // answer for every (edge count, probe position) combination — on the
  // edges themselves, just beside them, and outside the range — or models
  // silently drift from their pre-branchless bit pattern.
  Rng rng(20260726);
  for (size_t n_edges : {size_t{1}, size_t{2}, size_t{3}, size_t{7},
                         size_t{16}, size_t{63}, size_t{64}, size_t{255}}) {
    // Distinct sorted edges, as FeatureBinner::Fit constructs them.
    std::vector<double> values;
    double v = -50.0;
    for (size_t i = 0; i < 4 * n_edges + 4; ++i) {
      v += rng.UniformDouble() + 1e-3;
      values.push_back(v);
    }
    Matrix x = ColumnMatrix(values);
    FeatureBinner binner;
    ASSERT_TRUE(binner.Fit(x, static_cast<int>(n_edges) + 1).ok());
    std::vector<double> edges;
    for (size_t b = 0; b + 1 < binner.NumBins(0); ++b) {
      edges.push_back(binner.UpperEdge(0, b));
    }
    std::vector<double> probes = {-1e300, 1e300, 0.0};
    for (double e : edges) {
      probes.push_back(e);
      probes.push_back(std::nextafter(e, -1e308));
      probes.push_back(std::nextafter(e, 1e308));
      probes.push_back(e - 0.5);
      probes.push_back(e + 0.5);
    }
    for (double probe : probes) {
      const auto want = static_cast<uint16_t>(
          std::lower_bound(edges.begin(), edges.end(), probe) -
          edges.begin());
      EXPECT_EQ(binner.BinValue(0, probe), want)
          << "edges=" << edges.size() << " probe=" << probe;
    }
  }
}

TEST(FeatureBinnerEdgeTest, ConstantFeatureCollapsesToOneBin) {
  Matrix x(64, 2);
  Rng rng(3);
  for (size_t r = 0; r < 64; ++r) {
    x.At(r, 0) = 7.5;  // constant
    x.At(r, 1) = rng.UniformDouble(0, 1);
  }
  FeatureBinner binner;
  ASSERT_TRUE(binner.Fit(x, 64).ok());
  EXPECT_EQ(binner.NumBins(0), 1u);
  EXPECT_GT(binner.NumBins(1), 1u);
  // Every value of the constant feature lands in bin 0, on and off the
  // training value.
  EXPECT_EQ(binner.BinValue(0, 7.5), 0);
  EXPECT_EQ(binner.BinValue(0, -100.0), 0);
  EXPECT_EQ(binner.BinValue(0, 100.0), 0);
}

TEST(FeatureBinnerEdgeTest, DuplicateHeavyFeatureCollapsesEdges) {
  // Three distinct values; a 64-bin request must collapse to <= 3 buckets
  // with strictly increasing edges.
  std::vector<double> v;
  for (int i = 0; i < 30; ++i) v.push_back(1.0);
  for (int i = 0; i < 30; ++i) v.push_back(2.0);
  for (int i = 0; i < 30; ++i) v.push_back(3.0);
  Matrix x = ColumnMatrix(v);
  FeatureBinner binner;
  ASSERT_TRUE(binner.Fit(x, 64).ok());
  ASSERT_LE(binner.NumBins(0), 3u);
  ASSERT_GE(binner.NumBins(0), 2u);
  for (size_t b = 0; b + 2 < binner.NumBins(0); ++b) {
    EXPECT_LT(binner.UpperEdge(0, b), binner.UpperEdge(0, b + 1));
  }
  // The three values map to three distinct (monotone) bins when 3 buckets
  // survive the collapse.
  EXPECT_LT(binner.BinValue(0, 1.0), binner.BinValue(0, 3.0));
}

TEST(FeatureBinnerEdgeTest, ValueEqualsEdgeMatchesTreeThresholdSemantics) {
  Rng rng(17);
  std::vector<double> v(500);
  for (double& d : v) d = rng.UniformDouble(-50, 50);
  Matrix x = ColumnMatrix(v);
  FeatureBinner binner;
  ASSERT_TRUE(binner.Fit(x, 32).ok());
  ASSERT_GE(binner.NumBins(0), 2u);
  // A tree splitting at bin b stores threshold UpperEdge(0, b) and routes
  // `value <= threshold` left. Binning must agree on both sides of every
  // edge, including exact equality: BinValue(edge) <= b and
  // BinValue(nextafter(edge)) > b.
  for (size_t b = 0; b + 1 < binner.NumBins(0); ++b) {
    const double edge = binner.UpperEdge(0, b);
    EXPECT_LE(binner.BinValue(0, edge), b) << "value == edge must go left";
    EXPECT_GT(binner.BinValue(0, std::nextafter(edge, 1e18)), b)
        << "value just above edge must go right";
  }
}

TEST(FeatureBinnerEdgeTest, MaxBinsTwoStillSplits) {
  Rng rng(5);
  std::vector<double> v(200);
  for (double& d : v) d = rng.UniformDouble(0, 10);
  Matrix x = ColumnMatrix(v);
  FeatureBinner binner;
  ASSERT_TRUE(binner.Fit(x, 2).ok());
  EXPECT_EQ(binner.NumBins(0), 2u);
  // A tree on 2-bin features still learns a useful single split.
  std::vector<double> y(200);
  for (size_t i = 0; i < 200; ++i) y[i] = v[i] > binner.UpperEdge(0, 0) ? 5 : 0;
  DecisionTreeOptions opt;
  opt.tree.max_bins = 2;
  DecisionTreeRegressor model(opt);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_GT(model.tree().nodes().size(), 1u);
}

TEST(FeatureBinnerEdgeTest, MaxBinsDomainBounds) {
  Matrix x(10, 1);
  for (size_t i = 0; i < 10; ++i) x.At(i, 0) = static_cast<double>(i);
  FeatureBinner binner;
  EXPECT_TRUE(binner.Fit(x, 1).IsInvalidArgument());
  EXPECT_TRUE(binner.Fit(x, 65536).IsInvalidArgument());
  EXPECT_TRUE(binner.Fit(x, 65535).ok());
  EXPECT_TRUE(binner.Fit(x, 2).ok());
}

// ---------- Multi-probe batch binning ----------

TEST(BinColumnTest, BatchBinningMatchesBinValueBitwise) {
  // BinColumn's four interleaved branchless searches must produce exactly
  // BinValue's answer for every element — including remainder tails of
  // every length (n % 4 in {0,1,2,3}) and edge-exact probes.
  Rng rng(20260808);
  for (size_t n_bins : {size_t{2}, size_t{3}, size_t{17}, size_t{64},
                        size_t{256}, size_t{700}}) {
    std::vector<double> train(4 * n_bins + 8);
    double v = -100.0;
    for (double& d : train) {
      v += rng.UniformDouble() + 1e-3;
      d = v;
    }
    Matrix x = ColumnMatrix(train);
    FeatureBinner binner;
    ASSERT_TRUE(binner.Fit(x, static_cast<int>(n_bins)).ok());
    for (size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{4},
                     size_t{5}, size_t{7}, size_t{97}}) {
      std::vector<double> probes(n);
      for (size_t i = 0; i < n; ++i) {
        // Mix random values with exact edges and just-past-edge values.
        switch (i % 3) {
          case 0:
            probes[i] = rng.UniformDouble(-150, 150);
            break;
          case 1:
            probes[i] = binner.UpperEdge(0, i % (binner.NumBins(0) - 1));
            break;
          default:
            probes[i] = std::nextafter(
                binner.UpperEdge(0, i % (binner.NumBins(0) - 1)), 1e308);
        }
      }
      std::vector<uint16_t> wide(n, 0xffff);
      binner.BinColumn(0, probes.data(), n, 1, wide.data(), 1);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(wide[i], binner.BinValue(0, probes[i]))
            << "bins=" << n_bins << " n=" << n << " i=" << i;
      }
      if (binner.NumBins(0) <= 256) {
        std::vector<uint8_t> narrow(n, 0xff);
        binner.BinColumn(0, probes.data(), n, 1, narrow.data(), 1);
        for (size_t i = 0; i < n; ++i) {
          EXPECT_EQ(narrow[i], binner.BinValue(0, probes[i]));
        }
      }
    }
  }
}

TEST(BinColumnTest, RadixBucketedSearchMatchesBinValueBitwise) {
  // Features with >= 8 edges route BinColumn through the radix bucket
  // index; its sub-range lower bound must return the IDENTICAL index as
  // the scalar BinValue search for every probe — edges, both nextafter
  // neighbours of every edge, far outside the range, infinities, and NaN
  // (which must land in bin 0, like every all-comparisons-false search).
  Rng rng(20260808);
  for (size_t n_bins : {size_t{16}, size_t{64}, size_t{256}, size_t{1024}}) {
    std::vector<double> train(4 * n_bins + 8);
    double v = -500.0;
    for (double& d : train) {
      // Uneven gaps so bucket occupancy varies (some buckets empty, some
      // holding several edges) — the interesting radix regimes.
      v += rng.UniformDouble() * (rng.UniformDouble() < 0.1 ? 40.0 : 0.5) +
           1e-3;
      d = v;
    }
    Matrix x = ColumnMatrix(train);
    FeatureBinner binner;
    ASSERT_TRUE(binner.Fit(x, static_cast<int>(n_bins)).ok());
    ASSERT_GE(binner.NumBins(0), 9u) << "fixture must trigger the radix path";
    std::vector<double> probes = {
        -1e300, 1e300, 0.0,
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN()};
    for (size_t b = 0; b + 1 < binner.NumBins(0); ++b) {
      const double edge = binner.UpperEdge(0, b);
      probes.push_back(edge);
      probes.push_back(std::nextafter(edge, -1e308));
      probes.push_back(std::nextafter(edge, 1e308));
    }
    for (int i = 0; i < 500; ++i) probes.push_back(rng.UniformDouble(-600, 600));
    std::vector<uint16_t> got(probes.size(), 0xffff);
    binner.BinColumn(0, probes.data(), probes.size(), 1, got.data(), 1);
    for (size_t i = 0; i < probes.size(); ++i) {
      EXPECT_EQ(got[i], binner.BinValue(0, probes[i]))
          << "bins=" << n_bins << " probe=" << probes[i];
    }
    EXPECT_EQ(binner.BinValue(0, std::numeric_limits<double>::quiet_NaN()), 0);
  }
}

TEST(BinColumnTest, RadixIndexOnExternallySuppliedEdges) {
  // FromEdges (the compiled-tree reconstruction path) must build the same
  // radix index Fit does — including for adversarial edge layouts:
  // clustered edges (many per bucket) and a huge-span outlier edge
  // (nearly all edges in one bucket).
  std::vector<double> clustered;
  for (int i = 0; i < 40; ++i) clustered.push_back(1.0 + i * 1e-9);
  clustered.push_back(1e6);  // almost everything collapses into bucket 0
  FeatureBinner binner = FeatureBinner::FromEdges({clustered});
  Rng rng(99);
  std::vector<double> probes = {0.5, 1.0, 1.0 + 20e-9, 1e6, 2e6,
                                std::numeric_limits<double>::quiet_NaN()};
  for (const double e : clustered) {
    probes.push_back(e);
    probes.push_back(std::nextafter(e, -1e308));
    probes.push_back(std::nextafter(e, 1e308));
  }
  for (int i = 0; i < 200; ++i) probes.push_back(rng.UniformDouble(0, 2e6));
  std::vector<uint16_t> got(probes.size(), 0xffff);
  binner.BinColumn(0, probes.data(), probes.size(), 1, got.data(), 1);
  std::vector<double> edges_copy = clustered;
  for (size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(got[i], binner.BinValue(0, probes[i])) << "i=" << i;
    if (!std::isnan(probes[i])) {
      const auto want = static_cast<uint16_t>(
          std::lower_bound(edges_copy.begin(), edges_copy.end(), probes[i]) -
          edges_copy.begin());
      EXPECT_EQ(got[i], want) << "probe=" << probes[i];
    }
  }
}

TEST(BinColumnTest, DegenerateEdgeLayoutsFallBackSafely) {
  // Few edges (below the radix threshold), zero span, and non-finite
  // edges must all keep BinColumn == BinValue — whether by skipping the
  // radix index or surviving inside it.
  const std::vector<std::vector<double>> layouts = {
      {1.0},                                   // single edge
      {1.0, 2.0, 3.0},                         // below threshold
      {std::numeric_limits<double>::lowest(),  // span overflows to inf
       0.0, 1.0, 2.0, 3.0, 4.0, 5.0,
       std::numeric_limits<double>::max()},
  };
  Rng rng(101);
  for (const auto& edges : layouts) {
    FeatureBinner binner = FeatureBinner::FromEdges({edges});
    std::vector<double> probes = {-1e308, 1e308, 0.0,
                                  std::numeric_limits<double>::quiet_NaN()};
    for (const double e : edges) {
      probes.push_back(e);
      probes.push_back(std::nextafter(e, -1e308));
      probes.push_back(std::nextafter(e, 1e308));
    }
    for (int i = 0; i < 50; ++i) probes.push_back(rng.UniformDouble(-10, 10));
    std::vector<uint16_t> got(probes.size(), 0xffff);
    binner.BinColumn(0, probes.data(), probes.size(), 1, got.data(), 1);
    for (size_t i = 0; i < probes.size(); ++i) {
      EXPECT_EQ(got[i], binner.BinValue(0, probes[i]))
          << "edges=" << edges.size() << " probe=" << probes[i];
    }
  }
}

TEST(BinColumnTest, StridedAccessReadsAndWritesTheRightSlots) {
  // The Matrix-column use (value_stride = d) and the row-major scatter use
  // (out_stride = d) must touch exactly their own slots.
  Rng rng(77);
  Matrix x(50, 3);
  for (double& v : x.data()) v = rng.Normal(0, 10);
  FeatureBinner binner;
  ASSERT_TRUE(binner.Fit(x, 32).ok());
  for (size_t f = 0; f < 3; ++f) {
    std::vector<uint8_t> out(50 * 3, 0xee);
    binner.BinColumn(f, x.data().data() + f, 50, 3, out.data() + f, 3);
    for (size_t r = 0; r < 50; ++r) {
      EXPECT_EQ(out[r * 3 + f], binner.BinValue(f, x.At(r, f)));
      // Neighbouring slots untouched.
      for (size_t g = 0; g < 3; ++g) {
        if (g != f) EXPECT_EQ(out[r * 3 + g], 0xee);
      }
    }
  }
}

TEST(BinColumnTest, BinAllMatchesPerElementBinValue) {
  Rng rng(79);
  Matrix x(113, 5);
  for (double& v : x.data()) v = rng.UniformDouble(-3, 3);
  FeatureBinner binner;
  ASSERT_TRUE(binner.Fit(x, 24).ok());
  auto all = binner.BinAll(x);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 113u * 5u);
  for (size_t r = 0; r < 113; ++r) {
    for (size_t f = 0; f < 5; ++f) {
      EXPECT_EQ((*all)[r * 5 + f], binner.BinValue(f, x.At(r, f)));
    }
  }
}

// ---------- BinnedDataset ----------

TEST(BinnedDatasetTest, ColumnsAndRowsMirrorBinValue) {
  Rng rng(29);
  Matrix x(120, 3);
  for (double& v : x.data()) v = rng.Normal(0, 4);
  auto data = BinnedDataset::Build(x, 16);
  ASSERT_TRUE(data.ok());
  EXPECT_TRUE(data->narrow());
  EXPECT_EQ(data->num_rows(), 120u);
  EXPECT_EQ(data->num_features(), 3u);
  uint32_t total = 0;
  for (size_t f = 0; f < 3; ++f) {
    EXPECT_EQ(data->BinOffset(f), total);
    total += data->NumBins(f);
    for (size_t r = 0; r < 120; ++r) {
      const uint32_t want = data->binner().BinValue(f, x.At(r, f));
      EXPECT_EQ(data->Column8(f)[r], want);
      EXPECT_EQ(data->Row8(r)[f], want);
      EXPECT_EQ(data->BinAt(r, f), want);
    }
  }
  EXPECT_EQ(data->total_bins(), total);
}

TEST(BinnedDatasetTest, WideFeaturesSelectSixteenBitStorage) {
  // 1000 distinct values with 1024 requested bins -> > 256 buckets, so the
  // dataset must fall back to uint16 columns and still mirror BinValue.
  std::vector<double> v(1000);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  Matrix x = ColumnMatrix(v);
  auto data = BinnedDataset::Build(x, 1024);
  ASSERT_TRUE(data.ok());
  EXPECT_FALSE(data->narrow());
  EXPECT_GT(data->NumBins(0), 256u);
  for (size_t r = 0; r < v.size(); ++r) {
    const uint32_t want = data->binner().BinValue(0, v[r]);
    EXPECT_EQ(data->Column16(0)[r], want);
    EXPECT_EQ(data->Row16(r)[0], want);
  }
  // A tree trained on wide bins must still work end-to-end.
  std::vector<double> y(v.size());
  for (size_t i = 0; i < v.size(); ++i) y[i] = v[i] < 500 ? 1.0 : 9.0;
  DecisionTreeOptions opt;
  opt.tree.max_bins = 1024;
  DecisionTreeRegressor model(opt);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_NEAR(model.PredictOne({100.0}).value(), 1.0, 1e-9);
  EXPECT_NEAR(model.PredictOne({900.0}).value(), 9.0, 1e-9);
}

TEST(BinnedDatasetCacheTest, SharesOneBuildAcrossConsumers) {
  Rng rng(31);
  Matrix x(80, 4);
  for (double& v : x.data()) v = rng.UniformDouble(0, 1);
  BinnedDatasetCache cache;
  auto a = cache.Get(x, 64);
  ASSERT_TRUE(a.ok());
  auto b = cache.Get(x, 64);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);  // same dataset instance
  EXPECT_EQ(cache.builds(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  // A different bin budget is a different dataset.
  auto c = cache.Get(x, 32);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(*a, *c);
  EXPECT_EQ(cache.builds(), 2u);
  // Different content of the same shape misses.
  Matrix x2 = x;
  x2.At(0, 0) += 1.0;
  auto d = cache.Get(x2, 64);
  ASSERT_TRUE(d.ok());
  EXPECT_NE(*a, *d);
  EXPECT_EQ(cache.builds(), 3u);
}

// ---------- Cross-run determinism of the stochastic ensembles ----------

TEST(TreeDeterminismTest, RandomForestIsBitwiseReproducible) {
  Rng rng(41);
  Matrix x(400, 5);
  std::vector<double> y(400);
  for (size_t i = 0; i < 400; ++i) {
    for (size_t c = 0; c < 5; ++c) x.At(i, c) = rng.UniformDouble(0, 1);
    y[i] = x.At(i, 0) * 3 + (x.At(i, 1) > 0.5 ? 2.0 : 0.0) + rng.Normal(0, 0.2);
  }
  RandomForestOptions opt;
  opt.num_trees = 12;
  opt.seed = 7;
  RandomForestRegressor a(opt), b(opt);
  ASSERT_TRUE(a.Fit(x, y).ok());
  ASSERT_TRUE(b.Fit(x, y).ok());
  auto pa = a.Predict(x).value();
  auto pb = b.Predict(x).value();
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
}

TEST(TreeDeterminismTest, GbtIsBitwiseReproducible) {
  Rng rng(43);
  Matrix x(300, 4);
  std::vector<double> y(300);
  for (size_t i = 0; i < 300; ++i) {
    for (size_t c = 0; c < 4; ++c) x.At(i, c) = rng.UniformDouble(-2, 2);
    y[i] = x.At(i, 0) * x.At(i, 0) + x.At(i, 1) + rng.Normal(0, 0.1);
  }
  GbtOptions opt;
  opt.num_rounds = 25;
  opt.subsample = 0.8;
  opt.colsample = 0.75;
  opt.seed = 11;
  GbtRegressor a(opt), b(opt);
  ASSERT_TRUE(a.Fit(x, y).ok());
  ASSERT_TRUE(b.Fit(x, y).ok());
  auto pa = a.Predict(x).value();
  auto pb = b.Predict(x).value();
  for (size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
}

}  // namespace
}  // namespace wmp::ml
