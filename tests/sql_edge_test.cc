// Edge-case coverage for the SQL front end: quoted identifiers, escaped
// strings, adversarially long identifiers, and deep/wide query shapes.
//
// These tests were locked in before the arena/interning conversion of the
// lexer + AST and must stay green after it, with the same ASTs and identical
// printer round-trips — they are the behavioral contract for that refactor.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sql/ast.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace wmp::sql {
namespace {

// Print -> Parse -> Print must be a fixed point, and the reparsed AST must
// match the original structurally (select/from/where arity and identifiers).
void ExpectRoundTrip(const Query& q) {
  const std::string printed = Print(q);
  auto q2 = Parse(printed);
  ASSERT_TRUE(q2.ok()) << "printed: " << printed << " -> "
                       << q2.status().ToString();
  EXPECT_EQ(Print(*q2), printed);
  EXPECT_EQ(q2->select_list.size(), q.select_list.size());
  EXPECT_EQ(q2->from.size(), q.from.size());
  EXPECT_EQ(q2->where.size(), q.where.size());
  EXPECT_EQ(q2->group_by.size(), q.group_by.size());
  EXPECT_EQ(q2->order_by.size(), q.order_by.size());
  EXPECT_EQ(q2->limit, q.limit);
}

// ---------- quoted identifiers ----------

TEST(QuotedIdentTest, PreservesCaseAndSpaces) {
  auto q = Parse("SELECT \"Weird Col\" FROM \"My Table\"");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->select_list.size(), 1u);
  EXPECT_EQ(q->select_list[0].column.column, "Weird Col");
  ASSERT_EQ(q->from.size(), 1u);
  EXPECT_EQ(q->from[0].table, "My Table");
  ExpectRoundTrip(*q);
}

TEST(QuotedIdentTest, ReservedWordsUsableWhenQuoted) {
  auto q = Parse("SELECT \"select\".\"from\" FROM \"where\" \"select\"");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select_list[0].column.table, "select");
  EXPECT_EQ(q->select_list[0].column.column, "from");
  EXPECT_EQ(q->from[0].table, "where");
  EXPECT_EQ(q->from[0].alias, "select");
  ExpectRoundTrip(*q);
}

TEST(QuotedIdentTest, EmbeddedQuoteEscape) {
  auto q = Parse("SELECT \"a\"\"b\" FROM t");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select_list[0].column.column, "a\"b");
  ExpectRoundTrip(*q);
}

TEST(QuotedIdentTest, MixedQuotedAndBareQualifiers) {
  auto q = Parse("SELECT t.\"Exact Name\" FROM big_table t "
                 "WHERE t.\"Exact Name\" > 5 ORDER BY t.\"Exact Name\"");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select_list[0].column.table, "t");
  EXPECT_EQ(q->select_list[0].column.column, "Exact Name");
  EXPECT_EQ(q->where[0].lhs.column, "Exact Name");
  ExpectRoundTrip(*q);
}

TEST(QuotedIdentTest, LeadingDigitAndSymbolsRequireQuotes) {
  auto q = Parse("SELECT \"2nd col\", \"a-b\" FROM \"99 tbl\"");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select_list[0].column.column, "2nd col");
  EXPECT_EQ(q->select_list[1].column.column, "a-b");
  EXPECT_EQ(q->from[0].table, "99 tbl");
  ExpectRoundTrip(*q);
}

TEST(QuotedIdentTest, EmptyQuotedIdentifierIsError) {
  EXPECT_TRUE(Lex("SELECT \"\" FROM t").status().IsInvalidArgument());
}

TEST(QuotedIdentTest, UnterminatedQuotedIdentifierIsError) {
  EXPECT_TRUE(Lex("SELECT \"oops FROM t").status().IsInvalidArgument());
}

TEST(QuotedIdentTest, QuoteIdentifierHelper) {
  EXPECT_EQ(QuoteIdentifier("plain_col2"), "plain_col2");
  EXPECT_EQ(QuoteIdentifier("Upper"), "\"Upper\"");
  EXPECT_EQ(QuoteIdentifier("has space"), "\"has space\"");
  EXPECT_EQ(QuoteIdentifier("select"), "\"select\"");
  EXPECT_EQ(QuoteIdentifier("2nd"), "\"2nd\"");
  EXPECT_EQ(QuoteIdentifier("a\"b"), "\"a\"\"b\"");
}

// ---------- escaped strings ----------

TEST(EscapedStringTest, DoubledQuoteForms) {
  auto tokens = Lex("'' 'o''brien' '''' 'a''''b'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "");
  EXPECT_EQ((*tokens)[1].text, "o'brien");
  EXPECT_EQ((*tokens)[2].text, "'");
  EXPECT_EQ((*tokens)[3].text, "a''b");
}

TEST(EscapedStringTest, RoundTripThroughPredicate) {
  auto q = Parse("SELECT a FROM t WHERE name LIKE '%o''brien%'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->where[0].values[0].text, "%o'brien%");
  // NOTE: the printer emits the raw string; re-lexing restores the quote.
  const std::string printed = Print(*q);
  auto q2 = Parse(printed);
  ASSERT_TRUE(q2.ok()) << "printed: " << printed;
  EXPECT_EQ(q2->where[0].values[0].text, "%o'brien%");
}

// ---------- adversarial identifier lengths ----------

TEST(LongIdentTest, EightKilobyteIdentifierRoundTrips) {
  const std::string big(8192, 'x');
  auto q = Parse("SELECT " + big + " FROM t WHERE " + big + " = 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select_list[0].column.column, big);
  EXPECT_EQ(q->where[0].lhs.column, big);
  ExpectRoundTrip(*q);
}

TEST(LongIdentTest, LongQuotedIdentifierWithSpaces) {
  std::string big;
  for (int i = 0; i < 1000; ++i) big += "Seg ";
  auto q = Parse("SELECT \"" + big + "\" FROM t");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select_list[0].column.column, big);
  ExpectRoundTrip(*q);
}

TEST(LongIdentTest, KeywordPrefixedIdentifiersStayIdentifiers) {
  auto q = Parse("SELECT selected, fromage, distinctive FROM t");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select_list[0].column.column, "selected");
  EXPECT_EQ(q->select_list[1].column.column, "fromage");
  EXPECT_EQ(q->select_list[2].column.column, "distinctive");
  ExpectRoundTrip(*q);
}

// ---------- deep / wide query shapes ----------

TEST(DeepShapeTest, WideInList) {
  std::string sql = "SELECT a FROM t WHERE b IN (0";
  for (int i = 1; i < 2000; ++i) sql += ", " + std::to_string(i);
  sql += ")";
  auto q = Parse(sql);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->where.size(), 1u);
  ASSERT_EQ(q->where[0].values.size(), 2000u);
  EXPECT_EQ(q->where[0].values[1999].number, 1999.0);
  ExpectRoundTrip(*q);
}

TEST(DeepShapeTest, ManyConjuncts) {
  std::string sql = "SELECT a FROM t WHERE c0 = 0";
  for (int i = 1; i < 500; ++i) {
    sql += " AND c" + std::to_string(i) + " = " + std::to_string(i);
  }
  auto q = Parse(sql);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->where.size(), 500u);
  EXPECT_EQ(q->where[499].lhs.column, "c499");
  ExpectRoundTrip(*q);
}

TEST(DeepShapeTest, ManySelectItemsAndTables) {
  std::string sql = "SELECT t0.c";
  for (int i = 1; i < 300; ++i) sql += ", t" + std::to_string(i) + ".c";
  sql += " FROM t0";
  for (int i = 1; i < 300; ++i) sql += ", t" + std::to_string(i);
  auto q = Parse(sql);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select_list.size(), 300u);
  EXPECT_EQ(q->from.size(), 300u);
  EXPECT_EQ(q->from[299].table, "t299");
  ExpectRoundTrip(*q);
}

TEST(DeepShapeTest, CombinedStress) {
  std::string sql =
      "SELECT DISTINCT \"Fact\".\"Big Measure\", SUM(f.amount), COUNT(*) "
      "FROM fact_sales f, \"Fact\", dim_date \"D 1\" "
      "WHERE f.date_id = \"D 1\".id AND \"Fact\".\"Big Measure\" BETWEEN "
      "-1.5 AND 2e3 AND f.region IN (1, 2, 3) AND f.note LIKE 'it''s %' "
      "GROUP BY f.region ORDER BY f.region DESC LIMIT 42";
  auto q = Parse(sql);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->distinct);
  EXPECT_EQ(q->select_list[0].column.table, "Fact");
  EXPECT_EQ(q->from[2].alias, "D 1");
  EXPECT_EQ(q->where[0].kind, Predicate::Kind::kJoin);
  EXPECT_EQ(q->where[3].values[0].text, "it's %");
  EXPECT_EQ(q->limit, 42);
  ExpectRoundTrip(*q);
}

}  // namespace
}  // namespace wmp::sql
