// Unit and integration tests for the LearnedWMP core: template learning,
// histograms, workload batching, the LearnedWMP/SingleWMP models, and the
// experiment harness.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/experiment.h"
#include "core/featurizer.h"
#include "core/histogram.h"
#include "core/learned_wmp.h"
#include "core/single_wmp.h"
#include "core/template_learner.h"
#include "core/workload.h"
#include "ml/metrics.h"
#include "ml/search.h"
#include "plan/features.h"

namespace wmp::core {
namespace {

// Shared small dataset (TPC-C: cheapest to build) for the core tests.
class CoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workloads::DatasetOptions opt;
    opt.num_queries = 600;
    opt.seed = 5;
    auto d = workloads::BuildDataset(workloads::Benchmark::kTpcc, opt);
    ASSERT_TRUE(d.ok());
    dataset_ = new workloads::Dataset(std::move(*d));
    indices_ = new std::vector<uint32_t>(AllIndices(dataset_->records.size()));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete indices_;
    dataset_ = nullptr;
    indices_ = nullptr;
  }

  static workloads::Dataset* dataset_;
  static std::vector<uint32_t>* indices_;
};

workloads::Dataset* CoreTest::dataset_ = nullptr;
std::vector<uint32_t>* CoreTest::indices_ = nullptr;

// ---------- featurizer ----------

TEST_F(CoreTest, FeatureMatrixSelectsRows) {
  ml::Matrix x = PlanFeatureMatrix(dataset_->records, {0, 5, 7});
  EXPECT_EQ(x.rows(), 3u);
  EXPECT_EQ(x.cols(), plan::kPlanFeatureDim);
  EXPECT_EQ(x.RowVec(1), dataset_->records[5].plan_features);
  auto y = ActualMemoryVector(dataset_->records, {7});
  EXPECT_DOUBLE_EQ(y[0], dataset_->records[7].actual_memory_mb);
  auto d = DbmsEstimateVector(dataset_->records, {7});
  EXPECT_DOUBLE_EQ(d[0], dataset_->records[7].dbms_estimate_mb);
}

// ---------- histogram ----------

TEST(HistogramTest, CountsAndMass) {
  auto h = BuildHistogram({0, 1, 1, 3, 0, 0}, 4).value();
  EXPECT_EQ(h, (std::vector<double>{3, 2, 0, 1}));
  EXPECT_DOUBLE_EQ(HistogramMass(h), 6.0);  // paper eq. 4: sum == |Q|
}

TEST(HistogramTest, RejectsBadIds) {
  EXPECT_TRUE(BuildHistogram({4}, 4).status().IsOutOfRange());
  EXPECT_TRUE(BuildHistogram({-1}, 4).status().IsOutOfRange());
  EXPECT_TRUE(BuildHistogram({}, 0).status().IsInvalidArgument());
}

// ---------- workload batching ----------

TEST_F(CoreTest, BatchesAreFixedSizeAndDisjoint) {
  WorkloadSetOptions opt;
  opt.batch_size = 10;
  auto batches = BuildWorkloads(dataset_->records, *indices_, opt);
  EXPECT_EQ(batches.size(), 60u);
  std::set<uint32_t> seen;
  for (const auto& b : batches) {
    EXPECT_EQ(b.query_indices.size(), 10u);
    for (uint32_t i : b.query_indices) EXPECT_TRUE(seen.insert(i).second);
  }
}

TEST_F(CoreTest, IncompleteRemainderDropped) {
  WorkloadSetOptions opt;
  opt.batch_size = 7;
  auto batches = BuildWorkloads(dataset_->records, *indices_, opt);
  EXPECT_EQ(batches.size(), 600u / 7u);
}

TEST_F(CoreTest, SumLabelIsSumOfMemberMemory) {
  WorkloadSetOptions opt;
  opt.batch_size = 5;
  opt.shuffle = false;
  auto batches = BuildWorkloads(dataset_->records, *indices_, opt);
  double expected = 0;
  for (uint32_t i : batches[0].query_indices) {
    expected += dataset_->records[i].actual_memory_mb;
  }
  EXPECT_DOUBLE_EQ(batches[0].label_mb, expected);
}

TEST_F(CoreTest, MaxLabelOption) {
  WorkloadSetOptions opt;
  opt.batch_size = 5;
  opt.shuffle = false;
  opt.label = WorkloadLabel::kMax;
  auto batches = BuildWorkloads(dataset_->records, *indices_, opt);
  double expected = 0;
  for (uint32_t i : batches[0].query_indices) {
    expected = std::max(expected, dataset_->records[i].actual_memory_mb);
  }
  EXPECT_DOUBLE_EQ(batches[0].label_mb, expected);
  // Max label is never above the sum label.
  WorkloadSetOptions sum_opt = opt;
  sum_opt.label = WorkloadLabel::kSum;
  auto sum_batches = BuildWorkloads(dataset_->records, *indices_, sum_opt);
  EXPECT_LE(batches[0].label_mb, sum_batches[0].label_mb);
}

// ---------- template learning ----------

TEST_F(CoreTest, PlanKMeansAssignsWithinRange) {
  TemplateLearnerOptions opt;
  opt.num_templates = 8;
  auto model = TemplateModel::Learn(dataset_->records, *indices_,
                                    *dataset_->generator, opt);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->num_templates(), 8);
  std::set<int> used;
  for (uint32_t i : *indices_) {
    int id = model->Assign(dataset_->records[i]).value();
    EXPECT_GE(id, 0);
    EXPECT_LT(id, 8);
    used.insert(id);
  }
  EXPECT_GE(used.size(), 4u);  // clustering actually separates queries
}

TEST_F(CoreTest, TemplatesGroupSimilarMemoryQueries) {
  // The paper's core intuition: queries in a template have similar memory.
  // Variance of memory within templates must be well below the global
  // variance.
  TemplateLearnerOptions opt;
  opt.num_templates = 12;
  auto model = TemplateModel::Learn(dataset_->records, *indices_,
                                    *dataset_->generator, opt);
  ASSERT_TRUE(model.ok());
  std::vector<double> sums(12, 0), sqs(12, 0), counts(12, 0);
  double gsum = 0, gsq = 0;
  for (uint32_t i : *indices_) {
    const double m = dataset_->records[i].actual_memory_mb;
    const int id = model->Assign(dataset_->records[i]).value();
    sums[static_cast<size_t>(id)] += m;
    sqs[static_cast<size_t>(id)] += m * m;
    counts[static_cast<size_t>(id)] += 1;
    gsum += m;
    gsq += m * m;
  }
  const double n = static_cast<double>(indices_->size());
  const double global_var = gsq / n - (gsum / n) * (gsum / n);
  double within = 0;
  for (size_t t = 0; t < 12; ++t) {
    if (counts[t] < 1) continue;
    within += sqs[t] - sums[t] * sums[t] / counts[t];
  }
  within /= n;
  EXPECT_LT(within, 0.5 * global_var);
}

TEST_F(CoreTest, RuleBasedUsesExpertRules) {
  TemplateLearnerOptions opt;
  opt.method = TemplateMethod::kRuleBased;
  auto model = TemplateModel::Learn(dataset_->records, *indices_,
                                    *dataset_->generator, opt);
  ASSERT_TRUE(model.ok());
  // 12 TPC-C rules + catch-all.
  EXPECT_EQ(model->num_templates(), 13);
  // Rule-based ids should agree with generator families for most queries.
  size_t agree = 0;
  for (uint32_t i : *indices_) {
    if (model->Assign(dataset_->records[i]).value() ==
        dataset_->records[i].family_id) {
      ++agree;
    }
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(indices_->size()),
            0.8);
}

TEST_F(CoreTest, AllTemplateMethodsLearnAndAssign) {
  for (TemplateMethod method : AllTemplateMethods()) {
    TemplateLearnerOptions opt;
    opt.method = method;
    opt.num_templates = 6;
    opt.dbscan.eps = 2.0;
    opt.dbscan.min_points = 5;
    auto model = TemplateModel::Learn(dataset_->records, *indices_,
                                      *dataset_->generator, opt);
    ASSERT_TRUE(model.ok()) << TemplateMethodName(method) << ": "
                            << model.status().ToString();
    EXPECT_GE(model->num_templates(), 1) << TemplateMethodName(method);
    const int id = model->Assign(dataset_->records[0]).value();
    EXPECT_GE(id, 0);
    EXPECT_LT(id, model->num_templates());
  }
}

TEST_F(CoreTest, TemplateLearnErrors) {
  TemplateLearnerOptions opt;
  auto no_rows = TemplateModel::Learn(dataset_->records, {},
                                      *dataset_->generator, opt);
  EXPECT_TRUE(no_rows.status().IsInvalidArgument());
  opt.num_templates = 0;
  auto bad_k = TemplateModel::Learn(dataset_->records, *indices_,
                                    *dataset_->generator, opt);
  EXPECT_TRUE(bad_k.status().IsInvalidArgument());
  TemplateModel unlearned;
  EXPECT_TRUE(
      unlearned.Assign(dataset_->records[0]).status().IsFailedPrecondition());
}

// ---------- LearnedWMP / SingleWMP ----------

LearnedWmpOptions SmallLearnedOptions() {
  LearnedWmpOptions opt;
  opt.templates.num_templates = 10;
  opt.batch_size = 10;
  opt.regressor = ml::RegressorKind::kGbt;
  return opt;
}

TEST_F(CoreTest, LearnedWmpTrainPredictRoundTrip) {
  auto model = LearnedWmpModel::Train(dataset_->records, *indices_,
                                      *dataset_->generator,
                                      SmallLearnedOptions());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(model->train_stats().num_workloads, 60u);

  std::vector<uint32_t> batch(indices_->begin(), indices_->begin() + 10);
  auto pred = model->PredictWorkload(dataset_->records, batch);
  ASSERT_TRUE(pred.ok());
  EXPECT_GT(*pred, 0.0);
  EXPECT_TRUE(std::isfinite(*pred));

  // Histogram path equals end-to-end path (IN1-IN5 decomposition).
  auto hist = model->BinWorkload(dataset_->records, batch).value();
  EXPECT_DOUBLE_EQ(HistogramMass(hist), 10.0);  // eq. 8: sums to s
  EXPECT_DOUBLE_EQ(model->PredictFromHistogram(hist).value(), *pred);
}

TEST_F(CoreTest, LearnedWmpBeatsDbmsBaseline) {
  ml::IndexSplit split =
      ml::TrainTestSplitIndices(dataset_->records.size(), 0.2, 3);
  auto model = LearnedWmpModel::Train(dataset_->records, split.train,
                                      *dataset_->generator,
                                      SmallLearnedOptions());
  ASSERT_TRUE(model.ok());
  WorkloadSetOptions wopt;
  wopt.batch_size = 10;
  auto batches = BuildWorkloads(dataset_->records, split.test, wopt);
  std::vector<double> labels;
  for (const auto& b : batches) labels.push_back(b.label_mb);
  auto learned = model->PredictWorkloads(dataset_->records, batches).value();
  auto dbms = DbmsWorkloadEstimates(dataset_->records, batches);
  EXPECT_LT(ml::Rmse(labels, learned), ml::Rmse(labels, dbms));
}

TEST_F(CoreTest, LearnedWmpErrorChecks) {
  auto too_few = LearnedWmpModel::Train(dataset_->records, {0, 1, 2},
                                        *dataset_->generator,
                                        SmallLearnedOptions());
  EXPECT_TRUE(too_few.status().IsInvalidArgument());
  LearnedWmpModel untrained;
  EXPECT_TRUE(untrained.PredictFromHistogram({1.0})
                  .status()
                  .IsFailedPrecondition());
  auto model = LearnedWmpModel::Train(dataset_->records, *indices_,
                                      *dataset_->generator,
                                      SmallLearnedOptions());
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->PredictFromHistogram({1.0, 2.0})
                  .status()
                  .IsInvalidArgument());  // wrong length
}

TEST_F(CoreTest, SingleWmpSumsPerQueryEstimates) {
  SingleWmpOptions opt;
  opt.regressor = ml::RegressorKind::kDecisionTree;
  auto model = SingleWmpModel::Train(dataset_->records, *indices_, opt);
  ASSERT_TRUE(model.ok());
  std::vector<uint32_t> batch{0, 1, 2};
  double sum = 0;
  for (uint32_t i : batch) {
    sum += model->PredictQuery(dataset_->records[i]).value();
  }
  EXPECT_NEAR(model->PredictWorkload(dataset_->records, batch).value(), sum,
              1e-9);
}

TEST_F(CoreTest, SingleWmpPredictsQueryMemoryWell) {
  ml::IndexSplit split =
      ml::TrainTestSplitIndices(dataset_->records.size(), 0.25, 7);
  SingleWmpOptions opt;
  opt.regressor = ml::RegressorKind::kGbt;
  auto model = SingleWmpModel::Train(dataset_->records, split.train, opt);
  ASSERT_TRUE(model.ok());
  std::vector<double> y, yhat;
  for (uint32_t i : split.test) {
    y.push_back(dataset_->records[i].actual_memory_mb);
    yhat.push_back(model->PredictQuery(dataset_->records[i]).value());
  }
  // Clearly better than predicting the mean. (TPC-C point lookups leave
  // little per-query signal in estimated plan features — equality
  // selectivities are literal-independent — so the margin is modest.)
  double mean = 0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  std::vector<double> mean_pred(y.size(), mean);
  EXPECT_LT(ml::Rmse(y, yhat), 0.8 * ml::Rmse(y, mean_pred));
}

TEST_F(CoreTest, DbmsBaselineIsDeterministicSum) {
  std::vector<uint32_t> batch{3, 4};
  const double expected = dataset_->records[3].dbms_estimate_mb +
                          dataset_->records[4].dbms_estimate_mb;
  EXPECT_DOUBLE_EQ(DbmsWorkloadEstimate(dataset_->records, batch), expected);
}

// ---------- experiment harness ----------

TEST(ExperimentTest, DefaultTemplateCountsFollowFig10) {
  EXPECT_EQ(DefaultNumTemplates(workloads::Benchmark::kTpcds), 100);
  EXPECT_GE(DefaultNumTemplates(workloads::Benchmark::kJob), 20);
  EXPECT_LE(DefaultNumTemplates(workloads::Benchmark::kJob), 40);
  EXPECT_LE(DefaultNumTemplates(workloads::Benchmark::kTpcc), 40);
}

TEST(ExperimentTest, PrepareSplitsQueriesAndBuildsTestWorkloads) {
  ExperimentConfig cfg;
  cfg.benchmark = workloads::Benchmark::kTpcc;
  cfg.scale = 0.2;  // ~790 queries
  auto data = PrepareExperiment(cfg);
  ASSERT_TRUE(data.ok());
  EXPECT_NEAR(static_cast<double>(data->test_indices.size()) /
                  static_cast<double>(data->dataset.records.size()),
              0.2, 0.01);
  EXPECT_EQ(data->test_batches.size(), data->test_indices.size() / 10);
  EXPECT_EQ(data->test_labels.size(), data->test_batches.size());
}

TEST(ExperimentTest, CoreExperimentProducesAllElevenModels) {
  ExperimentConfig cfg;
  cfg.benchmark = workloads::Benchmark::kTpcc;
  cfg.scale = 0.15;
  cfg.num_templates = 8;
  auto result = RunCoreExperiment(cfg);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->reports.size(), 11u);  // DBMS + 5 single + 5 learned
  EXPECT_EQ(result->reports[0].name, "SingleWMP-DBMS");
  for (const ModelReport& r : result->reports) {
    EXPECT_GT(r.rmse, 0.0) << r.name;
    EXPECT_TRUE(std::isfinite(r.mape)) << r.name;
    EXPECT_EQ(r.predictions.size(), result->num_test_workloads) << r.name;
    if (r.name != "SingleWMP-DBMS") {
      EXPECT_GT(r.model_bytes, 0u) << r.name;
      EXPECT_GT(r.infer_us_per_workload, 0.0) << r.name;
    }
  }
  EXPECT_GT(result->template_learning_ms, 0.0);
}

}  // namespace
}  // namespace wmp::core
