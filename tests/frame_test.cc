// Tests for the wire frame codec (net/frame.h) and the protocol payload
// encodings (net/protocol.h): byte-level round trips, partial
// reads/short writes across a real descriptor, and rejection of oversize,
// truncated, and malformed frames with clean errors.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <thread>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/protocol.h"
#include "workloads/dataset.h"
#include "workloads/wire_format.h"

namespace wmp::net {
namespace {

// A pipe whose ends close on destruction; ReadFrame/WriteFrame speak
// plain descriptors, so the codec is testable without sockets.
struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::pipe(fds), 0); }
  ~Pipe() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
  int reader() const { return fds[0]; }
  int writer() const { return fds[1]; }
  void CloseWriter() {
    ::close(fds[1]);
    fds[1] = -1;
  }
};

TEST(FrameTest, EncodeDecodeRoundTrip) {
  const std::string payload = "hello workload memory prediction";
  const std::string wire = EncodeFrame(FrameType::kScoreRequest, payload);
  size_t consumed = 0;
  auto frame = DecodeFrame(wire, FrameLimits{}, &consumed);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(frame->type, FrameType::kScoreRequest);
  EXPECT_EQ(frame->payload, payload);
}

TEST(FrameTest, DecodeEmptyPayloadAndBackToBackFrames) {
  const std::string wire = EncodeFrame(FrameType::kPing, "") +
                           EncodeFrame(FrameType::kPong, "x");
  size_t consumed = 0;
  auto first = DecodeFrame(wire, FrameLimits{}, &consumed);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->type, FrameType::kPing);
  EXPECT_TRUE(first->payload.empty());
  auto second = DecodeFrame(wire.substr(consumed), FrameLimits{}, &consumed);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->type, FrameType::kPong);
  EXPECT_EQ(second->payload, "x");
}

TEST(FrameTest, DecodeRejectsBadMagic) {
  std::string wire = EncodeFrame(FrameType::kPing, "abc");
  wire[0] ^= 0x5A;  // corrupt the magic
  size_t consumed = 0;
  auto frame = DecodeFrame(wire, FrameLimits{}, &consumed);
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsInvalidArgument());
}

TEST(FrameTest, DecodeRejectsOversizeAnnouncedLength) {
  FrameLimits limits;
  limits.max_payload_bytes = 16;
  const std::string wire =
      EncodeFrame(FrameType::kScoreRequest, std::string(17, 'x'));
  size_t consumed = 0;
  auto frame = DecodeFrame(wire, limits, &consumed);
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsInvalidArgument());
  // The announced length is rejected from the header alone — a prefix
  // holding just the header fails identically instead of waiting for
  // bytes that may never come.
  auto prefix = DecodeFrame(wire.substr(0, 9), limits, &consumed);
  ASSERT_FALSE(prefix.ok());
  EXPECT_TRUE(prefix.status().IsInvalidArgument());
}

TEST(FrameTest, DecodeReportsIncompleteFramesAsOutOfRange) {
  const std::string wire = EncodeFrame(FrameType::kPing, "abcdef");
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    size_t consumed = 0;
    auto frame = DecodeFrame(wire.substr(0, cut), FrameLimits{}, &consumed);
    ASSERT_FALSE(frame.ok()) << "cut=" << cut;
    EXPECT_TRUE(frame.status().IsOutOfRange()) << "cut=" << cut;
  }
}

TEST(FrameTest, ReadFrameAssemblesByteDribbledInput) {
  // The peer writes one byte at a time: ReadFrame must loop over partial
  // reads of both header and payload.
  Pipe pipe;
  const std::string payload(257, 'q');
  const std::string wire = EncodeFrame(FrameType::kStatsRequest, payload);
  std::thread writer([&] {
    for (char c : wire) {
      ASSERT_EQ(::write(pipe.writer(), &c, 1), 1);
    }
  });
  auto frame = ReadFrame(pipe.reader());
  writer.join();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, FrameType::kStatsRequest);
  EXPECT_EQ(frame->payload, payload);
}

TEST(FrameTest, WriteFrameSurvivesShortWritesOnAFullPipe) {
  // A payload much larger than the pipe buffer forces write() to return
  // short; the slow byte-trickle reader keeps the pipe near-full the
  // whole time.
  Pipe pipe;
  const std::string payload(2 << 20, 'z');
  std::string received;
  std::thread reader([&] {
    auto frame = ReadFrame(pipe.reader());
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    received = std::move(frame->payload);
  });
  ASSERT_TRUE(WriteFrame(pipe.writer(), FrameType::kPublishRequest, payload)
                  .ok());
  reader.join();
  EXPECT_EQ(received, payload);
}

TEST(FrameTest, ReadFrameCleanEofIsNotFound) {
  Pipe pipe;
  pipe.CloseWriter();
  auto frame = ReadFrame(pipe.reader());
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsNotFound());
}

TEST(FrameTest, ReadFrameEofInsideHeaderOrPayloadIsIOError) {
  const std::string wire = EncodeFrame(FrameType::kPing, "abcdef");
  for (size_t cut : {size_t{3}, size_t{9 + 2}}) {
    Pipe pipe;
    ASSERT_EQ(::write(pipe.writer(), wire.data(), cut),
              static_cast<ssize_t>(cut));
    pipe.CloseWriter();
    auto frame = ReadFrame(pipe.reader());
    ASSERT_FALSE(frame.ok()) << "cut=" << cut;
    EXPECT_TRUE(frame.status().IsIOError()) << "cut=" << cut;
  }
}

TEST(FrameTest, ReadFrameRejectsOversizeBeforeReadingPayload) {
  Pipe pipe;
  FrameLimits limits;
  limits.max_payload_bytes = 8;
  // Write only the header announcing a huge payload: the reader must
  // reject it without waiting for the (never-sent) payload bytes.
  std::string header = EncodeFrame(FrameType::kPing, "").substr(0, 5);
  const uint32_t huge = 1u << 30;
  header.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  ASSERT_EQ(::write(pipe.writer(), header.data(), header.size()),
            static_cast<ssize_t>(header.size()));
  auto frame = ReadFrame(pipe.reader(), limits);
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsInvalidArgument());
}

// ---------- protocol payloads ----------

TEST(ProtocolTest, ScoreRequestRoundTripCarriesFingerprintsBitwise) {
  workloads::DatasetOptions opt;
  opt.num_queries = 24;
  opt.seed = 5;
  auto dataset = workloads::BuildDataset(workloads::Benchmark::kTpcc, opt);
  ASSERT_TRUE(dataset.ok());

  const std::vector<std::vector<uint32_t>> indices = {{0, 1, 2}, {3, 0, 5}};
  std::vector<core::WorkloadBatch> batches(indices.size());
  for (size_t b = 0; b < indices.size(); ++b) {
    batches[b].query_indices = indices[b];
  }
  auto decoded = DecodeScoreRequest(
      EncodeScoreRequest("tenant-42", dataset->records, batches));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->tenant, "tenant-42");
  ASSERT_EQ(decoded->records.size(), dataset->records.size());
  for (size_t i = 0; i < decoded->records.size(); ++i) {
    const auto& a = dataset->records[i];
    const auto& b = decoded->records[i];
    EXPECT_EQ(a.sql_text, b.sql_text);
    EXPECT_EQ(a.plan_features, b.plan_features);
    EXPECT_EQ(a.family_id, b.family_id);
    // The serving-layer cache key survives the hop bitwise.
    EXPECT_EQ(workloads::ContentFingerprint(a), b.content_fingerprint);
    EXPECT_EQ(a.content_fingerprint, b.content_fingerprint);
  }
  ASSERT_EQ(decoded->batches.size(), 2u);
  EXPECT_EQ(decoded->batches[0].query_indices, indices[0]);
  EXPECT_EQ(decoded->batches[1].query_indices, indices[1]);
}

TEST(ProtocolTest, ScoreRequestRejectsOutOfRangeWorkloadIndices) {
  workloads::DatasetOptions opt;
  opt.num_queries = 8;
  opt.seed = 5;
  auto dataset = workloads::BuildDataset(workloads::Benchmark::kTpcc, opt);
  ASSERT_TRUE(dataset.ok());
  std::vector<core::WorkloadBatch> batches(1);
  batches[0].query_indices = {
      static_cast<uint32_t>(dataset->records.size())};  // one past the end
  auto decoded = DecodeScoreRequest(
      EncodeScoreRequest("t", dataset->records, batches));
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsOutOfRange());
}

TEST(ProtocolTest, RecordWithWrongFingerprintIsRejected) {
  workloads::DatasetOptions opt;
  opt.num_queries = 8;
  opt.seed = 5;
  auto dataset = workloads::BuildDataset(workloads::Benchmark::kTpcc, opt);
  ASSERT_TRUE(dataset.ok());
  // Claim a fingerprint that is not record 0's content hash: the shared
  // server-side caches key on it, so the decoder must refuse.
  dataset->records[0].content_fingerprint =
      workloads::ContentFingerprint(dataset->records[0]) ^ 1;
  std::vector<core::WorkloadBatch> batches(1);
  batches[0].query_indices = {0};
  auto decoded = DecodeScoreRequest(
      EncodeScoreRequest("t", dataset->records, batches));
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsInvalidArgument());
}

TEST(ProtocolTest, TruncatedScoreRequestFailsCleanly) {
  workloads::DatasetOptions opt;
  opt.num_queries = 8;
  opt.seed = 5;
  auto dataset = workloads::BuildDataset(workloads::Benchmark::kTpcc, opt);
  ASSERT_TRUE(dataset.ok());
  std::vector<core::WorkloadBatch> batches(1);
  batches[0].query_indices = {0, 1, 2};
  const std::string full =
      EncodeScoreRequest("t", dataset->records, batches);
  // Every strict prefix must decode to an error, never crash or hang.
  for (size_t cut = 0; cut < full.size(); cut += 7) {
    auto decoded = DecodeScoreRequest(full.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }
}

TEST(ProtocolTest, ScoreResponseMixedOutcomesRoundTrip) {
  ScoreResponse response;
  response.ok = {1, 0, 1};
  response.predictions = {12.5, 0.0, -3.25};
  response.errors = {"", "empty workload", ""};
  auto decoded = DecodeScoreResponse(EncodeScoreResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->ok, response.ok);
  EXPECT_EQ(decoded->predictions[0], 12.5);
  EXPECT_EQ(decoded->predictions[2], -3.25);
  EXPECT_EQ(decoded->errors[1], "empty workload");
}

TEST(ProtocolTest, PublishAndRollbackRoundTrip) {
  PublishRequest publish;
  publish.model_name = "tenant-a";
  publish.model_bytes = std::string("\x01\x02\x03\x00\x7f", 5);
  auto publish2 = DecodePublishRequest(EncodePublishRequest(publish));
  ASSERT_TRUE(publish2.ok());
  EXPECT_EQ(publish2->model_name, publish.model_name);
  EXPECT_EQ(publish2->model_bytes, publish.model_bytes);

  // Empty name is valid (server substitutes its default); a missing
  // artifact is not.
  EXPECT_TRUE(DecodePublishRequest(EncodePublishRequest({"", "bytes"}))
                  .ok());
  EXPECT_FALSE(DecodePublishRequest(EncodePublishRequest({"name", ""}))
                   .ok());

  RollbackResponse rollback;
  rollback.registry_epoch = 7;
  rollback.shards_swapped = 3;
  auto rollback2 = DecodeRollbackResponse(EncodeRollbackResponse(rollback));
  ASSERT_TRUE(rollback2.ok());
  EXPECT_EQ(rollback2->registry_epoch, 7u);
  EXPECT_EQ(rollback2->shards_swapped, 3u);
}

TEST(ProtocolTest, StatsResponseRoundTripAndErrorBody) {
  StatsResponse stats;
  stats.service.submitted = 10;
  stats.service.completed = 9;
  stats.service.failed = 1;
  stats.service.template_entries_warmed = 123;
  stats.service.max_latency_us = 456;
  stats.server.connections_accepted = 3;
  stats.server.frames_served = 17;
  auto decoded = DecodeStatsResponse(EncodeStatsResponse(stats));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->service.submitted, 10u);
  EXPECT_EQ(decoded->service.completed, 9u);
  EXPECT_EQ(decoded->service.template_entries_warmed, 123u);
  EXPECT_EQ(decoded->service.max_latency_us, 456u);
  EXPECT_EQ(decoded->server.connections_accepted, 3u);
  EXPECT_EQ(decoded->server.frames_served, 17u);

  ErrorBody error;
  error.code = static_cast<uint8_t>(StatusCode::kFailedPrecondition);
  error.message = "no model";
  const Status st = StatusFromError(DecodeErrorBody(EncodeErrorBody(error)));
  EXPECT_TRUE(st.IsFailedPrecondition());
  EXPECT_NE(st.message().find("no model"), std::string::npos);
  // Garbage degrades to Internal, never throws.
  EXPECT_TRUE(StatusFromError(DecodeErrorBody("zz")).IsInternal());
}

}  // namespace
}  // namespace wmp::net
