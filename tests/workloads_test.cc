// Unit and property tests for the benchmark workload generators and the
// dataset builder.

#include <gtest/gtest.h>

#include <set>

#include "plan/planner.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "plan/features.h"
#include "workloads/dataset.h"

namespace wmp::workloads {
namespace {

TEST(BenchmarkTest, NamesAndPaperCounts) {
  EXPECT_STREQ(BenchmarkName(Benchmark::kTpcds), "TPC-DS");
  EXPECT_STREQ(BenchmarkName(Benchmark::kJob), "JOB");
  EXPECT_STREQ(BenchmarkName(Benchmark::kTpcc), "TPC-C");
  EXPECT_EQ(PaperQueryCount(Benchmark::kTpcds), 93000u);
  EXPECT_EQ(PaperQueryCount(Benchmark::kJob), 2300u);
  EXPECT_EQ(PaperQueryCount(Benchmark::kTpcc), 3958u);
  EXPECT_EQ(AllBenchmarks().size(), 3u);
}

TEST(GeneratorTest, FamilyCountsMatchBenchmarks) {
  EXPECT_EQ(MakeTpcdsGenerator()->num_families(), 99);
  EXPECT_EQ(MakeJobGenerator()->num_families(), 33);
  EXPECT_EQ(MakeTpccGenerator()->num_families(), 12);
}

TEST(GeneratorTest, ExpertRulesCoverEveryFamily) {
  for (Benchmark b : AllBenchmarks()) {
    auto gen = CreateGenerator(b);
    EXPECT_EQ(gen->ExpertRules().size(),
              static_cast<size_t>(gen->num_families()))
        << BenchmarkName(b);
  }
}

TEST(GeneratorTest, InvalidFamilyRejected) {
  Rng rng(1);
  for (Benchmark b : AllBenchmarks()) {
    auto gen = CreateGenerator(b);
    EXPECT_TRUE(gen->GenerateQuery(-1, &rng).status().IsInvalidArgument());
    EXPECT_TRUE(gen->GenerateQuery(gen->num_families(), &rng)
                    .status()
                    .IsInvalidArgument());
  }
}

// Property sweep: every family of every benchmark generates queries that
// (a) print + reparse cleanly, (b) plan against the generator's catalog,
// and (c) reference only catalogued tables.
class FamilyProperty
    : public ::testing::TestWithParam<Benchmark> {};

TEST_P(FamilyProperty, AllFamiliesGeneratePlannableQueries) {
  auto gen = CreateGenerator(GetParam());
  plan::Planner planner(&gen->catalog());
  Rng rng(7);
  for (int family = 0; family < gen->num_families(); ++family) {
    for (int rep = 0; rep < 3; ++rep) {
      auto q = gen->GenerateQuery(family, &rng);
      ASSERT_TRUE(q.ok()) << "family " << family << ": "
                          << q.status().ToString();
      const std::string text = sql::Print(*q);
      auto reparsed = sql::Parse(text);
      ASSERT_TRUE(reparsed.ok())
          << "family " << family << " text: " << text;
      auto plan = planner.CreatePlan(*q);
      ASSERT_TRUE(plan.ok()) << "family " << family << ": "
                             << plan.status().ToString() << "\n"
                             << text;
      EXPECT_GE((*plan)->TreeSize(), 2u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, FamilyProperty,
                         ::testing::Values(Benchmark::kTpcds, Benchmark::kJob,
                                           Benchmark::kTpcc),
                         [](const ::testing::TestParamInfo<Benchmark>& info) {
                           // gtest parameter names must be alphanumeric.
                           switch (info.param) {
                             case Benchmark::kTpcds:
                               return std::string("TPCDS");
                             case Benchmark::kJob:
                               return std::string("JOB");
                             case Benchmark::kTpcc:
                               return std::string("TPCC");
                           }
                           return std::string("unknown");
                         });

TEST(GeneratorTest, EqPredicatesCarryTrueSelectivityHints) {
  auto gen = MakeTpccGenerator();
  Rng rng(11);
  auto q = gen->GenerateQuery(0, &rng);  // item point lookup
  ASSERT_TRUE(q.ok());
  ASSERT_FALSE(q->where.empty());
  EXPECT_GT(q->where[0].true_selectivity, 0.0);
  EXPECT_LE(q->where[0].true_selectivity, 1.0);
}

TEST(GeneratorTest, JobQueriesAreJoinHeavyAndAggregated) {
  auto gen = MakeJobGenerator();
  Rng rng(13);
  size_t total_joins = 0;
  for (int family = 0; family < gen->num_families(); ++family) {
    auto q = gen->GenerateQuery(family, &rng);
    ASSERT_TRUE(q.ok());
    EXPECT_TRUE(q->HasAggregation());  // SELECT MIN(...)
    EXPECT_TRUE(q->group_by.empty());
    total_joins += q->JoinPredicates().size();
  }
  // 33 families averaging >= 2 joins (join-order benchmark character).
  EXPECT_GE(total_joins, 66u);
}

TEST(GeneratorTest, TpccQueriesAreShort) {
  auto gen = MakeTpccGenerator();
  Rng rng(17);
  for (int family = 0; family < gen->num_families(); ++family) {
    auto q = gen->GenerateQuery(family, &rng);
    ASSERT_TRUE(q.ok());
    EXPECT_LE(q->from.size(), 2u);  // at most one join
  }
}

TEST(GeneratorTest, SampleRangePredicateStaysInDomain) {
  auto gen = MakeTpcdsGenerator();
  auto table = gen->catalog().FindTable("store_sales");
  ASSERT_TRUE(table.ok());
  Rng rng(19);
  for (int i = 0; i < 50; ++i) {
    auto pred = SampleRangePredicate(**table, "ss", "ss_sales_price",
                                     rng.UniformDouble(0.01, 0.9), &rng);
    ASSERT_TRUE(pred.ok());
    for (const sql::Literal& lit : pred->values) {
      EXPECT_GE(lit.number, 0.0 - 1e-9);
      EXPECT_LE(lit.number, 200.0 + 1e-9);
    }
  }
}

TEST(DatasetTest, BuildProducesCompleteRecords) {
  DatasetOptions opt;
  opt.num_queries = 120;
  opt.seed = 3;
  auto dataset = BuildDataset(Benchmark::kTpcc, opt);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset->records.size(), 120u);
  EXPECT_EQ(dataset->benchmark_name, "TPC-C");
  std::set<int> families;
  for (const QueryRecord& r : dataset->records) {
    EXPECT_FALSE(r.sql_text.empty());
    ASSERT_NE(r.plan, nullptr);
    EXPECT_EQ(r.plan_features.size(), plan::kPlanFeatureDim);
    EXPECT_GT(r.actual_memory_mb, 0.0);
    EXPECT_GT(r.dbms_estimate_mb, 0.0);
    families.insert(r.family_id);
  }
  EXPECT_GT(families.size(), 6u);  // uniform sampling hits most families
}

TEST(DatasetTest, DeterministicForSameSeed) {
  DatasetOptions opt;
  opt.num_queries = 40;
  opt.seed = 9;
  auto a = BuildDataset(Benchmark::kJob, opt);
  auto b = BuildDataset(Benchmark::kJob, opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(a->records[i].sql_text, b->records[i].sql_text);
    EXPECT_DOUBLE_EQ(a->records[i].actual_memory_mb,
                     b->records[i].actual_memory_mb);
  }
}

TEST(DatasetTest, AnalyticQueriesNeedMoreMemoryThanTransactional) {
  DatasetOptions opt;
  opt.num_queries = 150;
  auto olap = BuildDataset(Benchmark::kJob, opt);
  auto oltp = BuildDataset(Benchmark::kTpcc, opt);
  ASSERT_TRUE(olap.ok());
  ASSERT_TRUE(oltp.ok());
  auto mean = [](const Dataset& d) {
    double m = 0;
    for (const auto& r : d.records) m += r.actual_memory_mb;
    return m / static_cast<double>(d.records.size());
  };
  EXPECT_GT(mean(*olap), 5.0 * mean(*oltp));
}

TEST(DatasetTest, SummaryStringMentionsFamilyAndMemory) {
  DatasetOptions opt;
  opt.num_queries = 1;
  auto d = BuildDataset(Benchmark::kTpcc, opt);
  ASSERT_TRUE(d.ok());
  const std::string s = SummarizeRecord(d->records[0]);
  EXPECT_NE(s.find("family="), std::string::npos);
  EXPECT_NE(s.find("MB"), std::string::npos);
}

}  // namespace
}  // namespace wmp::workloads
