// Concurrency tests for the async serving layer: util::MpscQueue wiring,
// engine::HistogramCache, and engine::ScoringService — many client threads
// hammering Submit() against multi-shard services. The core properties:
// every future resolves, async predictions equal the scalar path within
// 1e-9, and cache hits are bitwise identical to cold scores.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/featurizer.h"
#include "core/learned_wmp.h"
#include "core/workload.h"
#include "engine/histogram_cache.h"
#include "engine/scoring_service.h"
#include "engine/template_cache.h"
#include "util/sync.h"
#include "util/timer.h"
#include "workloads/dataset.h"

namespace wmp {
namespace {

// ---------- Workload fingerprints ----------

class ServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workloads::DatasetOptions opt;
    opt.num_queries = 400;
    opt.seed = 71;
    auto d = workloads::BuildDataset(workloads::Benchmark::kTpcc, opt);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    dataset_ = new workloads::Dataset(std::move(*d));
    indices_ = new std::vector<uint32_t>(
        core::AllIndices(dataset_->records.size()));

    core::LearnedWmpOptions lopt;
    lopt.templates.num_templates = 8;
    lopt.regressor = ml::RegressorKind::kGbt;
    auto model = core::LearnedWmpModel::Train(dataset_->records, *indices_,
                                              *dataset_->generator, lopt);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    model_ = new core::LearnedWmpModel(std::move(*model));

    core::LearnedWmpOptions lopt2 = lopt;
    lopt2.regressor = ml::RegressorKind::kRidge;
    auto model2 = core::LearnedWmpModel::Train(dataset_->records, *indices_,
                                               *dataset_->generator, lopt2);
    ASSERT_TRUE(model2.ok()) << model2.status().ToString();
    model2_ = new core::LearnedWmpModel(std::move(*model2));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete indices_;
    delete model_;
    delete model2_;
    dataset_ = nullptr;
    indices_ = nullptr;
    model_ = nullptr;
    model2_ = nullptr;
  }

  static std::vector<uint32_t> Workload(size_t start, size_t size) {
    std::vector<uint32_t> w;
    for (size_t q = 0; q < size; ++q) {
      w.push_back(static_cast<uint32_t>((start + q) % dataset_->records.size()));
    }
    return w;
  }

  /// Non-owning shared_ptr over a suite-lifetime model — the borrow form
  /// PublishModel takes in tests.
  static std::shared_ptr<const core::LearnedWmpModel> Borrow(
      const core::LearnedWmpModel* model) {
    return {std::shared_ptr<const void>(), model};
  }

  static workloads::Dataset* dataset_;
  static std::vector<uint32_t>* indices_;
  static core::LearnedWmpModel* model_;
  static core::LearnedWmpModel* model2_;
};

workloads::Dataset* ServiceTest::dataset_ = nullptr;
std::vector<uint32_t>* ServiceTest::indices_ = nullptr;
core::LearnedWmpModel* ServiceTest::model_ = nullptr;
core::LearnedWmpModel* ServiceTest::model2_ = nullptr;

TEST_F(ServiceTest, WorkloadFingerprintIsOrderInvariantAndContentSensitive) {
  const std::vector<uint32_t> a = {0, 1, 2, 3};
  const std::vector<uint32_t> a_shuffled = {3, 1, 0, 2};
  const std::vector<uint32_t> b = {0, 1, 2, 4};
  const std::vector<uint32_t> a_dup = {0, 1, 2, 3, 3};
  const auto& r = dataset_->records;
  EXPECT_EQ(core::WorkloadFingerprint(r, a),
            core::WorkloadFingerprint(r, a_shuffled));
  EXPECT_NE(core::WorkloadFingerprint(r, a), core::WorkloadFingerprint(r, b));
  EXPECT_NE(core::WorkloadFingerprint(r, a),
            core::WorkloadFingerprint(r, a_dup));
  EXPECT_NE(core::WorkloadFingerprint(r, {}), 0u);
}

// ---------- HistogramCache ----------

TEST(HistogramCacheTest, LookupInsertEvictLru) {
  engine::HistogramCache cache({.capacity = 2, .num_shards = 1});
  const double h1[] = {1.0, 2.0};
  const double h2[] = {3.0, 4.0};
  const double h3[] = {5.0, 6.0};
  double out[2] = {0, 0};
  EXPECT_FALSE(cache.Lookup(1, out, 2));
  cache.Insert(1, h1, 2);
  cache.Insert(2, h2, 2);
  ASSERT_TRUE(cache.Lookup(1, out, 2));  // refreshes key 1
  EXPECT_EQ(out[0], 1.0);
  EXPECT_EQ(out[1], 2.0);
  cache.Insert(3, h3, 2);  // evicts key 2 (LRU)
  EXPECT_FALSE(cache.Lookup(2, out, 2));
  EXPECT_TRUE(cache.Lookup(1, out, 2));
  EXPECT_TRUE(cache.Lookup(3, out, 2));
  const auto st = cache.stats();
  EXPECT_EQ(st.size, 2u);
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.insertions, 3u);
  // Width mismatch is a miss, never a smeared row.
  double wide[3] = {0, 0, 0};
  EXPECT_FALSE(cache.Lookup(1, wide, 3));
  cache.Clear();
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_FALSE(cache.Lookup(1, out, 2));
}

TEST(HistogramCacheTest, EpochMismatchInvalidatesEntries) {
  engine::HistogramCache cache({.capacity = 8, .num_shards = 1});
  const double h[] = {1.0, 2.0};
  double out[2] = {0, 0};
  cache.Insert(1, h, 2, /*epoch=*/0);
  ASSERT_TRUE(cache.Lookup(1, out, 2, /*epoch=*/0));
  // A hot-swapped model probes under the next epoch: the stale entry must
  // miss and be erased, never smearing the old model's histogram in.
  EXPECT_FALSE(cache.Lookup(1, out, 2, /*epoch=*/1));
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.stats().size, 0u);
  // Re-inserted under the new epoch it serves again...
  cache.Insert(1, h, 2, /*epoch=*/1);
  EXPECT_TRUE(cache.Lookup(1, out, 2, /*epoch=*/1));
  // ... and a straggling old-epoch flush (pinned to the retired snapshot)
  // neither clobbers the new entry with its insert nor evicts it with its
  // probe — it just misses.
  cache.Insert(1, h, 2, /*epoch=*/0);
  EXPECT_FALSE(cache.Lookup(1, out, 2, /*epoch=*/0));
  EXPECT_TRUE(cache.Lookup(1, out, 2, /*epoch=*/1));
}

TEST(HistogramCacheTest, ZeroCapacityNeverStores) {
  engine::HistogramCache cache({.capacity = 0});
  const double h[] = {1.0};
  double out[1];
  cache.Insert(7, h, 1);
  EXPECT_FALSE(cache.Lookup(7, out, 1));
  EXPECT_EQ(cache.stats().size, 0u);
}

TEST(HistogramCacheTest, ConcurrentMixedUseIsSafe) {
  engine::HistogramCache cache({.capacity = 64, .num_shards = 4});
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> bad{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      double out[4];
      for (uint64_t i = 0; i < 2000; ++i) {
        const uint64_t key = (i * 2654435761u + static_cast<uint64_t>(t)) % 128;
        const double bins[4] = {static_cast<double>(key), 1, 2, 3};
        if (i % 3 == 0) {
          cache.Insert(key, bins, 4);
        } else if (cache.Lookup(key, out, 4)) {
          // An entry's content must always match its key.
          if (out[0] != static_cast<double>(key)) bad.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
  const auto st = cache.stats();
  EXPECT_LE(st.size, 64u + 4u);  // per-shard rounding slack
  EXPECT_GT(st.hits + st.misses, 0u);
}

// ---------- TemplateIdCache ----------

TEST(TemplateIdCacheTest, LookupInsertEvictAndEpochInvalidate) {
  engine::TemplateIdCache cache({.capacity = 2, .num_shards = 1});
  const uint64_t keys[] = {1, 2, 3};
  const int ids[] = {10, 20, 30};
  int got[3] = {-1, -1, -1};
  uint8_t hit[3] = {9, 9, 9};
  EXPECT_EQ(cache.LookupBatch(keys, 3, 0, got, hit), 0u);
  EXPECT_EQ(hit[0] + hit[1] + hit[2], 0);

  cache.InsertBatch(keys, ids, 2, /*epoch=*/0);  // keys 1, 2
  ASSERT_EQ(cache.LookupBatch(keys, 1, 0, got, hit), 1u);  // refreshes key 1
  EXPECT_EQ(got[0], 10);
  cache.InsertBatch(keys + 2, ids + 2, 1, /*epoch=*/0);  // evicts key 2 (LRU)
  EXPECT_EQ(cache.LookupBatch(keys, 3, 0, got, hit), 2u);
  EXPECT_TRUE(hit[0] && !hit[1] && hit[2]);
  EXPECT_EQ(got[2], 30);
  auto st = cache.stats();
  EXPECT_EQ(st.size, 2u);
  EXPECT_EQ(st.insertions, 3u);
  EXPECT_EQ(st.evictions, 1u);

  // Next model epoch: every surviving entry is stale — miss + erase.
  EXPECT_EQ(cache.LookupBatch(keys, 3, /*epoch=*/1, got, hit), 0u);
  st = cache.stats();
  EXPECT_EQ(st.invalidations, 2u);
  EXPECT_EQ(st.size, 0u);

  // A straggling old-epoch insert can never serve epoch 1 — and once
  // epoch 1 re-learns the key, the stale flush's probe misses without
  // evicting the new entry and its insert is dropped.
  cache.InsertBatch(keys, ids, 1, /*epoch=*/0);
  EXPECT_EQ(cache.LookupBatch(keys, 1, /*epoch=*/1, got, hit), 0u);
  const int new_id = 77;
  cache.InsertBatch(keys, &new_id, 1, /*epoch=*/1);
  EXPECT_EQ(cache.LookupBatch(keys, 1, /*epoch=*/0, got, hit), 0u);
  cache.InsertBatch(keys, ids, 1, /*epoch=*/0);  // stale writer: dropped
  ASSERT_EQ(cache.LookupBatch(keys, 1, /*epoch=*/1, got, hit), 1u);
  EXPECT_EQ(got[0], 77);

  cache.Clear();
  EXPECT_EQ(cache.stats().size, 0u);
}

TEST(TemplateIdCacheTest, ZeroCapacityNeverStores) {
  engine::TemplateIdCache cache({.capacity = 0});
  const uint64_t key = 7;
  const int id = 3;
  int got = -1;
  uint8_t hit = 0;
  cache.InsertBatch(&key, &id, 1, 0);
  EXPECT_EQ(cache.LookupBatch(&key, 1, 0, &got, &hit), 0u);
  EXPECT_EQ(cache.stats().size, 0u);
}

// Hit/miss/evict/invalidate races: concurrent batched probes and inserts
// (with epoch churn) must stay internally consistent — a hit's id always
// matches its key's ground truth for the epoch probed.
TEST(TemplateIdCacheTest, ConcurrentMixedUseIsSafe) {
  engine::TemplateIdCache cache({.capacity = 64, .num_shards = 4});
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> bad{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      constexpr size_t kBatch = 8;
      uint64_t keys[kBatch];
      int ids[kBatch];
      int got[kBatch];
      uint8_t hit[kBatch];
      for (uint64_t i = 0; i < 1500; ++i) {
        const uint64_t epoch = i / 500;  // three epochs per thread
        for (size_t j = 0; j < kBatch; ++j) {
          keys[j] = (i * 2654435761u + static_cast<uint64_t>(t) + j * 97) % 128;
          // Ground truth: the id a key maps to under an epoch.
          ids[j] = static_cast<int>(keys[j] * 3 + epoch);
        }
        if (i % 3 == 0) {
          cache.InsertBatch(keys, ids, kBatch, epoch);
        } else {
          cache.LookupBatch(keys, kBatch, epoch, got, hit);
          for (size_t j = 0; j < kBatch; ++j) {
            if (hit[j] && got[j] != ids[j]) bad.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
  const auto st = cache.stats();
  EXPECT_LE(st.size, 64u + 4u);  // per-shard rounding slack
  EXPECT_GT(st.hits + st.misses, 0u);
}

// ---------- ScoringService ----------

TEST_F(ServiceTest, SingleShardMatchesScalarPath) {
  engine::ScoringService service({model_});
  const auto batches = engine::MakeConsecutiveBatches(400, 10);
  std::vector<std::future<Result<double>>> futures;
  for (const auto& b : batches) {
    futures.push_back(service.Submit("tenant", dataset_->records,
                                     b.query_indices));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    auto got = futures[i].get();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    auto want =
        model_->PredictWorkload(dataset_->records, batches[i].query_indices);
    ASSERT_TRUE(want.ok());
    EXPECT_NEAR(*got, *want, 1e-9) << "workload " << i;
  }
  service.Stop();
  const auto st = service.stats();
  EXPECT_EQ(st.submitted, batches.size());
  EXPECT_EQ(st.completed, batches.size());
  EXPECT_EQ(st.failed, 0u);
  EXPECT_GE(st.flushes, 1u);
  EXPECT_EQ(st.queue_depth, 0u);
}

TEST_F(ServiceTest, ManyClientsManyShardsEveryFutureResolvesCorrectly) {
  // Two distinct models + a replica shard: the router must keep tenant ->
  // model assignments stable while clients hammer all shards at once.
  engine::ScoringServiceOptions opt;
  opt.max_batch = 16;
  opt.max_delay_us = 100;
  engine::ScoringService service({model_, model2_, model_}, opt);

  constexpr size_t kClients = 8, kPerClient = 60;
  util::Latch start(kClients);
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      start.ArriveAndWait();
      for (size_t i = 0; i < kPerClient; ++i) {
        const size_t shard = (c + i) % service.num_shards();
        auto w = Workload(c * 37 + i * 11, 5 + (i % 7));
        auto fut = service.SubmitToShard(shard, dataset_->records, w);
        auto got = fut.get();
        if (!got.ok()) {
          failures.fetch_add(1);
          continue;
        }
        auto want = service.model(shard)->PredictWorkload(dataset_->records, w);
        if (!want.ok() || std::abs(*got - *want) > 1e-9) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  service.Stop();
  const auto st = service.stats();
  EXPECT_EQ(st.submitted, kClients * kPerClient);
  EXPECT_EQ(st.completed, kClients * kPerClient);
  EXPECT_EQ(st.failed, 0u);
}

TEST_F(ServiceTest, RepeatedWorkloadsHitTheCacheBitwise) {
  engine::ScoringServiceOptions opt;
  opt.cache_capacity = 256;
  engine::ScoringService service({model_}, opt);
  const auto batches = engine::MakeConsecutiveBatches(400, 10);

  std::vector<double> cold;
  for (const auto& b : batches) {
    auto got = service.Submit("t", dataset_->records, b.query_indices).get();
    ASSERT_TRUE(got.ok());
    cold.push_back(*got);
  }
  const auto cold_stats = service.stats();
  EXPECT_EQ(cold_stats.cache_hits, 0u);
  EXPECT_EQ(cold_stats.cache_misses, batches.size());

  // Second pass: the same workloads, shuffled member order — fingerprints
  // are order-invariant, so every one hits, and scores are bitwise equal.
  for (size_t i = 0; i < batches.size(); ++i) {
    std::vector<uint32_t> shuffled = batches[i].query_indices;
    std::reverse(shuffled.begin(), shuffled.end());
    auto got = service.Submit("t", dataset_->records, shuffled).get();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, cold[i]) << "workload " << i;  // bitwise
  }
  const auto warm_stats = service.stats();
  EXPECT_EQ(warm_stats.cache_hits, batches.size());
  EXPECT_EQ(warm_stats.cache_misses, batches.size());
  EXPECT_DOUBLE_EQ(warm_stats.cache_hit_rate(), 0.5);
}

TEST_F(ServiceTest, BadRequestFailsAloneGoodNeighborsSucceed) {
  engine::ScoringServiceOptions opt;
  opt.max_batch = 64;
  opt.max_delay_us = 5000;  // wide window so the good pair share a flush
  opt.adaptive_flush = false;  // keep the window; adaptive would flush early
  engine::ScoringService service({model_}, opt);

  auto good1 = service.Submit("t", dataset_->records, Workload(0, 10));
  // Out-of-range query index: rejected at the Submit trust boundary, before
  // it can poison the dispatcher's batch.
  auto bad = service.Submit("t", dataset_->records, {4000000000u});
  auto good2 = service.Submit("t", dataset_->records, Workload(20, 10));

  auto g1 = good1.get();
  auto b = bad.get();
  auto g2 = good2.get();
  EXPECT_TRUE(g1.ok()) << g1.status().ToString();
  EXPECT_TRUE(b.status().IsOutOfRange());
  EXPECT_TRUE(g2.ok()) << g2.status().ToString();
  service.Stop();
  const auto st = service.stats();
  EXPECT_EQ(st.completed, 2u);
  EXPECT_EQ(st.failed, 0u);  // never entered a queue
}

// The reachable batch-poisoning case: an empty workload fails a
// variable-length model's whole histogram pass (zero mass), and the
// dispatcher's request-by-request fallback isolates the error to the
// offending future while its flush-mates still score correctly.
TEST_F(ServiceTest, EmptyWorkloadFailsAloneUnderVariableLengthModel) {
  core::LearnedWmpOptions lopt;
  lopt.templates.num_templates = 8;
  lopt.regressor = ml::RegressorKind::kRidge;
  lopt.variable_length = true;
  auto model = core::LearnedWmpModel::Train(dataset_->records, *indices_,
                                            *dataset_->generator, lopt);
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  engine::ScoringServiceOptions opt;
  opt.max_delay_us = 5000;  // wide window so all three share a flush
  opt.adaptive_flush = false;  // keep the window; adaptive would flush early
  engine::ScoringService service({&*model}, opt);
  auto good1 = service.Submit("t", dataset_->records, Workload(0, 10));
  auto empty = service.Submit("t", dataset_->records, {});
  auto good2 = service.Submit("t", dataset_->records, Workload(50, 25));

  auto g1 = good1.get();
  auto e = empty.get();
  auto g2 = good2.get();
  ASSERT_TRUE(g1.ok()) << g1.status().ToString();
  EXPECT_TRUE(e.status().IsInvalidArgument()) << e.status().ToString();
  ASSERT_TRUE(g2.ok()) << g2.status().ToString();
  auto want1 = model->PredictWorkload(dataset_->records, Workload(0, 10));
  auto want2 = model->PredictWorkload(dataset_->records, Workload(50, 25));
  ASSERT_TRUE(want1.ok());
  ASSERT_TRUE(want2.ok());
  EXPECT_NEAR(*g1, *want1, 1e-9);
  EXPECT_NEAR(*g2, *want2, 1e-9);
  service.Stop();
  EXPECT_EQ(service.stats().failed, 1u);
  EXPECT_EQ(service.stats().completed, 2u);
}

// Batch-level scoring failures (here: an untrained model, so every
// ScoreWorkloads call errors) resolve every future with the error instead
// of abandoning promises or crashing the dispatcher.
TEST_F(ServiceTest, ScoringFailureResolvesEveryFutureWithError) {
  const core::LearnedWmpModel untrained;
  engine::ScoringService service({&untrained});
  std::vector<std::future<Result<double>>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(
        service.Submit("t", dataset_->records, Workload(i * 10, 10)));
  }
  for (auto& f : futures) {
    auto got = f.get();
    EXPECT_TRUE(got.status().IsFailedPrecondition()) << got.status();
  }
  service.Stop();
  const auto st = service.stats();
  EXPECT_EQ(st.failed, 10u);
  EXPECT_EQ(st.completed, 0u);
}

TEST_F(ServiceTest, StopDrainsAcceptedWorkAndRejectsNewWork) {
  engine::ScoringServiceOptions opt;
  opt.max_delay_us = 20000;  // requests sit in the queue when Stop arrives
  opt.adaptive_flush = false;  // adaptive would score them before Stop
  auto service = std::make_unique<engine::ScoringService>(
      std::vector<const core::LearnedWmpModel*>{model_}, opt);
  std::vector<std::future<Result<double>>> futures;
  for (int i = 0; i < 30; ++i) {
    futures.push_back(
        service->Submit("t", dataset_->records, Workload(i * 10, 10)));
  }
  service->Stop();
  for (auto& f : futures) {
    auto got = f.get();
    EXPECT_TRUE(got.ok()) << got.status().ToString();  // drained, not dropped
  }
  auto late = service->Submit("t", dataset_->records, Workload(0, 10)).get();
  EXPECT_TRUE(late.status().IsFailedPrecondition());
  service.reset();  // destructor after explicit Stop is safe
}

TEST_F(ServiceTest, RouterIsStableAndCoversShards) {
  engine::ScoringService service({model_, model2_, model_, model2_});
  std::set<size_t> seen;
  for (int t = 0; t < 64; ++t) {
    const std::string tenant = "tenant-" + std::to_string(t);
    const size_t s = service.ShardForTenant(tenant);
    EXPECT_LT(s, service.num_shards());
    EXPECT_EQ(s, service.ShardForTenant(tenant));  // stable
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), service.num_shards());  // 64 tenants cover 4 shards
  auto bad = service.SubmitToShard(99, dataset_->records, Workload(0, 5));
  EXPECT_TRUE(bad.get().status().IsInvalidArgument());
}

TEST_F(ServiceTest, MicroBatchingActuallyBatches) {
  engine::ScoringServiceOptions opt;
  opt.max_batch = 128;
  opt.max_delay_us = 20000;
  // This test is about the fixed collection window; the adaptive
  // controller would trade batch depth for latency on purpose.
  opt.adaptive_flush = false;
  engine::ScoringService service({model_}, opt);
  constexpr size_t kClients = 4, kPerClient = 25;
  util::Latch start(kClients);
  std::vector<std::thread> clients;
  std::vector<std::vector<std::future<Result<double>>>> futures(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      start.ArriveAndWait();
      for (size_t i = 0; i < kPerClient; ++i) {
        futures[c].push_back(
            service.Submit("t", dataset_->records, Workload(c * 100 + i, 10)));
      }
    });
  }
  for (auto& t : clients) t.join();
  for (auto& fs : futures) {
    for (auto& f : fs) EXPECT_TRUE(f.get().ok());
  }
  service.Stop();
  const auto st = service.stats();
  EXPECT_EQ(st.completed, kClients * kPerClient);
  // Cross-client micro-batching: far fewer flushes than requests.
  EXPECT_LT(st.flushes, st.completed / 2);
  EXPECT_GT(st.avg_batch(), 2.0);
  EXPECT_GE(st.max_queue_depth, 1u);
}

// ---------- Template-id cache through the serving path ----------

// Novel combinations of known queries: the histogram cache cannot hit
// (every workload fingerprint is new) but the template cache resolves
// every member query, so featurize/assign is skipped per query — and the
// memoized ids reproduce the cold path's predictions bitwise.
TEST_F(ServiceTest, NovelCombinationsOfKnownQueriesHitTemplateCacheBitwise) {
  engine::ScoringServiceOptions opt;
  opt.cache_capacity = 0;  // disable level 1: isolate the per-query memo
  opt.template_cache_capacity = 4096;
  engine::ScoringService service({model_}, opt);
  const auto batches = engine::MakeConsecutiveBatches(400, 10);

  std::vector<double> cold;
  for (const auto& b : batches) {
    auto got = service.Submit("t", dataset_->records, b.query_indices).get();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    cold.push_back(*got);
  }
  const auto cold_stats = service.stats();
  EXPECT_EQ(cold_stats.cache_hits, 0u);  // level 1 is off
  // The memo is content-addressed: the handful of duplicate-content
  // queries in the log hit even on the cold pass, so assert on totals and
  // deltas rather than exact zero.
  EXPECT_EQ(cold_stats.template_cache_hits + cold_stats.template_cache_misses,
            400u);
  EXPECT_GT(cold_stats.template_cache_misses, 300u);

  // Same workloads again: every query id comes from the memo, and the
  // histogram it builds is bit-identical, so the prediction is too.
  for (size_t i = 0; i < batches.size(); ++i) {
    auto got =
        service.Submit("t", dataset_->records, batches[i].query_indices).get();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, cold[i]) << "workload " << i;  // bitwise
  }
  const auto warm_stats = service.stats();
  EXPECT_EQ(warm_stats.template_cache_hits,
            cold_stats.template_cache_hits + 400u);  // every query memoized
  EXPECT_EQ(warm_stats.template_cache_misses, cold_stats.template_cache_misses);

  // Novel regrouping: stride-partition the same 400 known queries into
  // workloads no fingerprint has seen. All template ids resolve from the
  // memo; predictions match the scalar path exactly per workload.
  for (size_t g = 0; g < 40; ++g) {
    std::vector<uint32_t> novel;
    for (size_t j = 0; j < 10; ++j) {
      novel.push_back(static_cast<uint32_t>((g + j * 40) % 400));
    }
    auto got = service.Submit("t", dataset_->records, novel).get();
    ASSERT_TRUE(got.ok());
    auto want = model_->PredictWorkload(dataset_->records, novel);
    ASSERT_TRUE(want.ok());
    EXPECT_NEAR(*got, *want, 1e-9) << "novel workload " << g;
  }
  const auto novel_stats = service.stats();
  EXPECT_EQ(novel_stats.template_cache_hits,
            warm_stats.template_cache_hits + 400u);  // all 400 again
  EXPECT_EQ(novel_stats.template_cache_misses,
            warm_stats.template_cache_misses);
  service.Stop();
}

// Concurrent Submit against a tiny template cache: hit/miss/evict races
// through the full serving path must never corrupt a prediction.
TEST_F(ServiceTest, ConcurrentSubmitWithTinyTemplateCacheStaysCorrect) {
  engine::ScoringServiceOptions opt;
  opt.cache_capacity = 0;         // every workload reaches the binning path
  opt.template_cache_capacity = 16;  // constant eviction under 400 queries
  engine::ScoringService service({model_}, opt);
  constexpr size_t kClients = 4, kPerClient = 40;
  util::Latch start(kClients);
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      start.ArriveAndWait();
      for (size_t i = 0; i < kPerClient; ++i) {
        auto w = Workload(c * 53 + i * 17, 6 + (i % 5));
        auto got = service.Submit("t", dataset_->records, w).get();
        if (!got.ok()) {
          failures.fetch_add(1);
          continue;
        }
        auto want = model_->PredictWorkload(dataset_->records, w);
        if (!want.ok() || std::abs(*got - *want) > 1e-9) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  service.Stop();
}

// ---------- Adaptive flush ----------

// A closed-loop client must not pay the fixed delay window as latency:
// once its request is the only one in flight, the dispatcher flushes
// immediately (and says so in the flush-reason counters).
TEST_F(ServiceTest, AdaptiveFlushSparesClosedLoopClientsTheDelayWindow) {
  constexpr int kRequests = 5;
  constexpr int64_t kDelayUs = 200000;  // 200 ms: unmissable if waited out
  engine::ScoringServiceOptions opt;
  opt.max_delay_us = kDelayUs;
  opt.adaptive_flush = true;
  engine::ScoringService service({model_}, opt);
  Stopwatch sw;
  for (int i = 0; i < kRequests; ++i) {
    auto got =
        service.Submit("t", dataset_->records, Workload(i * 10, 10)).get();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
  }
  const double elapsed_s = sw.ElapsedSeconds();
  service.Stop();
  // Fixed-delay dispatch would take >= kRequests * 200 ms = 1 s.
  EXPECT_LT(elapsed_s, 0.5);
  const auto st = service.stats();
  EXPECT_EQ(st.completed, static_cast<uint64_t>(kRequests));
  EXPECT_GE(st.flushes_adaptive, 1u);
  EXPECT_EQ(st.flushes_deadline, 0u);
  EXPECT_EQ(st.flushes,
            st.flushes_full + st.flushes_adaptive + st.flushes_deadline +
                st.flushes_drain);
}

// Control experiment: with the adaptive controller off, the same closed
// loop waits out every delay window, and the counters attribute each
// flush to the deadline.
TEST_F(ServiceTest, FixedDelayFlushesAreDeadlineBoundAndCounted) {
  constexpr int kRequests = 3;
  constexpr int64_t kDelayUs = 30000;  // 30 ms per request
  engine::ScoringServiceOptions opt;
  opt.max_delay_us = kDelayUs;
  opt.adaptive_flush = false;
  engine::ScoringService service({model_}, opt);
  Stopwatch sw;
  for (int i = 0; i < kRequests; ++i) {
    auto got =
        service.Submit("t", dataset_->records, Workload(i * 10, 10)).get();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
  }
  const double elapsed_s = sw.ElapsedSeconds();
  service.Stop();
  EXPECT_GE(elapsed_s, 0.08);  // 3 x 30 ms, minus timer slack
  const auto st = service.stats();
  EXPECT_GE(st.flushes_deadline, 1u);
  EXPECT_EQ(st.flushes_adaptive, 0u);
  EXPECT_GE(st.avg_latency_us(), static_cast<double>(kDelayUs) * 0.8);
}

// ---------- RCU model hot-swap ----------

// PublishModel swaps the serving snapshot between flushes and the epoch
// bump invalidates both cache levels: post-swap predictions match the new
// model bitwise (a stale cached histogram or template id would surface
// here as an old-model prediction).
TEST_F(ServiceTest, PublishModelServesNewModelBitwiseAndInvalidatesCaches) {
  engine::ScoringServiceOptions opt;
  opt.cache_capacity = 256;
  opt.template_cache_capacity = 4096;
  engine::ScoringService service({model_}, opt);
  const auto batches = engine::MakeConsecutiveBatches(400, 10);

  // Warm both cache levels under the old model.
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& b : batches) {
      auto got = service.Submit("t", dataset_->records, b.query_indices).get();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
    }
  }
  const auto pre = service.stats();
  EXPECT_EQ(pre.cache_hits, batches.size());  // pass 2 hit level 1

  ASSERT_TRUE(service.PublishModel(0, Borrow(model2_)).ok());
  EXPECT_EQ(service.stats().models_published, 1u);

  // The reference for "what the new model says", through the same batched
  // arithmetic the service uses — predictions must agree bitwise.
  engine::BatchScorer reference(model2_);
  auto want = reference.ScoreWorkloads(dataset_->records, batches);
  ASSERT_TRUE(want.ok());
  for (size_t i = 0; i < batches.size(); ++i) {
    auto got =
        service.Submit("t", dataset_->records, batches[i].query_indices).get();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, want->predictions[i]) << "workload " << i;  // bitwise
  }
  // The post-swap pass could not have been served by stale entries: both
  // levels re-missed (epoch bump), then re-filled under the new epoch.
  const auto post = service.stats();
  EXPECT_EQ(post.cache_hits, pre.cache_hits);  // no new level-1 hits
  EXPECT_GT(post.template_cache_misses, pre.template_cache_misses);

  // Out-of-range shard and null model are rejected, not crashed.
  EXPECT_TRUE(service.PublishModel(99, Borrow(model2_)).IsInvalidArgument());
  EXPECT_TRUE(service.PublishModel(0, nullptr).IsInvalidArgument());
  service.Stop();
}

// The acceptance bar for hot-swap: publishing under full client load
// completes with zero failed requests, every prediction matches one of
// the two models involved, and the service converges to the final model
// bitwise. Also retires an *owned* model under traffic (RCU: the last
// in-flight reference frees it).
TEST_F(ServiceTest, PublishModelUnderLiveTrafficLosesNothing) {
  engine::ScoringService service({model_});
  constexpr size_t kClients = 4, kPerClient = 60;
  util::Latch start(kClients + 1);
  std::atomic<int> failures{0};
  std::atomic<int> unexplained{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      start.ArriveAndWait();
      for (size_t i = 0; i < kPerClient; ++i) {
        auto w = Workload(c * 31 + i * 13, 5 + (i % 6));
        auto got = service.Submit("t", dataset_->records, w).get();
        if (!got.ok()) {
          failures.fetch_add(1);
          continue;
        }
        // Every prediction must be explainable by a model that was
        // published at some point (swap timing is the dispatcher's call).
        auto w1 = model_->PredictWorkload(dataset_->records, w);
        auto w2 = model2_->PredictWorkload(dataset_->records, w);
        if (!w1.ok() || !w2.ok() ||
            (std::abs(*got - *w1) > 1e-9 && std::abs(*got - *w2) > 1e-9)) {
          unexplained.fetch_add(1);
        }
      }
    });
  }
  // Publisher thread: flip between the two suite models under load, and
  // retire a short-lived owned model mid-stream (trained here, dropped by
  // the swap — RCU must keep it alive exactly as long as a flush uses it).
  std::thread publisher([&] {
    start.ArriveAndWait();
    core::LearnedWmpOptions lopt;
    lopt.templates.num_templates = 8;
    lopt.regressor = ml::RegressorKind::kRidge;
    auto owned = core::LearnedWmpModel::Train(dataset_->records, *indices_,
                                              *dataset_->generator, lopt);
    for (int flip = 0; flip < 10; ++flip) {
      ASSERT_TRUE(service
                      .PublishModel(0, flip % 2 == 0 ? Borrow(model2_)
                                                     : Borrow(model_))
                      .ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (owned.ok()) {
      auto shared =
          std::make_shared<const core::LearnedWmpModel>(std::move(*owned));
      ASSERT_TRUE(service.PublishModel(0, shared).ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    // Converge on model2 for the post-traffic check.
    ASSERT_TRUE(service.PublishModel(0, Borrow(model2_)).ok());
  });
  for (auto& t : clients) t.join();
  publisher.join();
  EXPECT_EQ(failures.load(), 0);
  // The owned interim model serves a brief window (ridge on the same
  // histograms — numerically distinct from both suite models), so don't
  // count its predictions as corruption; they must still be rare.
  EXPECT_LE(unexplained.load(), static_cast<int>(kClients * kPerClient / 4));

  // Post-swap steady state: bitwise the final model, via the same batched
  // arithmetic.
  const auto probes = engine::MakeConsecutiveBatches(100, 10);
  engine::BatchScorer reference(model2_);
  auto want = reference.ScoreWorkloads(dataset_->records, probes);
  ASSERT_TRUE(want.ok());
  for (size_t i = 0; i < probes.size(); ++i) {
    auto got =
        service.Submit("t", dataset_->records, probes[i].query_indices).get();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, want->predictions[i]) << "probe " << i;
  }
  service.Stop();
  EXPECT_EQ(service.stats().failed, 0u);
}

}  // namespace
}  // namespace wmp
