// Unit tests for StandardScaler and the evaluation metrics.

#include <gtest/gtest.h>

#include <cmath>

#include "ml/metrics.h"
#include "ml/scaler.h"
#include "util/io.h"
#include "util/random.h"

namespace wmp::ml {
namespace {

Matrix RandomMatrix(size_t n, size_t d, uint64_t seed, double scale = 1.0,
                    double offset = 0.0) {
  Rng rng(seed);
  Matrix m(n, d);
  for (double& v : m.data()) v = rng.Normal() * scale + offset;
  return m;
}

TEST(ScalerTest, TransformedColumnsAreStandardized) {
  Matrix x = RandomMatrix(500, 4, 3, /*scale=*/7.0, /*offset=*/100.0);
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit(x).ok());
  Matrix t = scaler.Transform(x).value();
  for (size_t c = 0; c < 4; ++c) {
    double mean = 0.0, var = 0.0;
    for (size_t r = 0; r < t.rows(); ++r) mean += t.At(r, c);
    mean /= static_cast<double>(t.rows());
    for (size_t r = 0; r < t.rows(); ++r) {
      var += (t.At(r, c) - mean) * (t.At(r, c) - mean);
    }
    var /= static_cast<double>(t.rows());
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-9);
  }
}

TEST(ScalerTest, ConstantColumnCentersOnly) {
  auto x = Matrix::FromRows({{5.0, 1.0}, {5.0, 2.0}, {5.0, 3.0}}).value();
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit(x).ok());
  Matrix t = scaler.Transform(x).value();
  for (size_t r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(t.At(r, 0), 0.0);
}

TEST(ScalerTest, RowRoundTrip) {
  Matrix x = RandomMatrix(100, 3, 5, 4.0, -2.0);
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit(x).ok());
  std::vector<double> row{1.5, -3.0, 0.25};
  std::vector<double> orig = row;
  ASSERT_TRUE(scaler.TransformRow(&row).ok());
  ASSERT_TRUE(scaler.InverseTransformRow(&row).ok());
  for (size_t i = 0; i < row.size(); ++i) EXPECT_NEAR(row[i], orig[i], 1e-10);
}

TEST(ScalerTest, ErrorsOnMisuse) {
  StandardScaler scaler;
  Matrix empty;
  EXPECT_TRUE(scaler.Fit(empty).IsInvalidArgument());
  Matrix x = RandomMatrix(10, 2, 1);
  EXPECT_TRUE(scaler.Transform(x).status().IsFailedPrecondition());
  ASSERT_TRUE(scaler.Fit(x).ok());
  Matrix wrong = RandomMatrix(5, 3, 2);
  EXPECT_TRUE(scaler.Transform(wrong).status().IsInvalidArgument());
}

TEST(ScalerTest, SerializationRoundTrip) {
  Matrix x = RandomMatrix(50, 6, 7, 3.0, 10.0);
  StandardScaler scaler;
  ASSERT_TRUE(scaler.Fit(x).ok());
  BinaryWriter w;
  scaler.Serialize(&w);
  BinaryReader r(w.buffer());
  auto restored = StandardScaler::Deserialize(&r);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->mean(), scaler.mean());
  EXPECT_EQ(restored->std_dev(), scaler.std_dev());
}

// ---------- metrics ----------

TEST(MetricsTest, RmseKnownValue) {
  // errors: 1, -1, 2 -> mse = 2 -> rmse = sqrt(2)
  EXPECT_NEAR(Rmse({1, 2, 3}, {2, 1, 5}), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(Rmse({4, 4}, {4, 4}), 0.0);
}

TEST(MetricsTest, MaeKnownValue) {
  EXPECT_NEAR(MeanAbsError({1, 2, 3}, {2, 1, 5}), 4.0 / 3.0, 1e-12);
}

TEST(MetricsTest, MapeKnownValue) {
  // |10-11|/10 = 0.1, |20-18|/20 = 0.1 -> 10%
  EXPECT_NEAR(Mape({10, 20}, {11, 18}), 10.0, 1e-9);
}

TEST(MetricsTest, MapeSkipsNearZeroTargets) {
  EXPECT_NEAR(Mape({0.0, 10.0}, {5.0, 12.0}), 20.0, 1e-9);
}

TEST(MetricsTest, ResidualsAreSigned) {
  auto r = Residuals({10, 10}, {12, 7});
  EXPECT_DOUBLE_EQ(r[0], 2.0);   // overestimate
  EXPECT_DOUBLE_EQ(r[1], -3.0);  // underestimate
}

TEST(MetricsTest, QuantileInterpolates) {
  std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 1.75);
}

TEST(MetricsTest, QuantileClampsOutOfRangeQ) {
  std::vector<double> v{5, 6};
  EXPECT_DOUBLE_EQ(Quantile(v, -0.5), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.5), 6.0);
}

TEST(MetricsTest, SummaryOfSymmetricResidualsIsUnskewed) {
  Rng rng(21);
  std::vector<double> res(20001);
  for (double& v : res) v = rng.Normal(0.0, 3.0);
  ResidualSummary s = SummarizeResiduals(res);
  EXPECT_NEAR(s.mean, 0.0, 0.1);
  EXPECT_NEAR(s.median, 0.0, 0.1);
  EXPECT_NEAR(s.skewness, 0.0, 0.1);
  EXPECT_NEAR(s.iqr, 2.0 * 0.6745 * 3.0, 0.15);  // normal IQR = 1.349 sigma
  EXPECT_LT(s.p25, s.median);
  EXPECT_LT(s.median, s.p75);
  EXPECT_LT(s.p5, s.p25);
  EXPECT_GT(s.p95, s.p75);
}

TEST(MetricsTest, SummaryDetectsSkew) {
  Rng rng(23);
  std::vector<double> res(10000);
  for (double& v : res) v = rng.LogNormal(0.0, 1.0);  // right-skewed
  ResidualSummary s = SummarizeResiduals(res);
  EXPECT_GT(s.skewness, 1.0);
  EXPECT_GT(s.mean, s.median);
}

}  // namespace
}  // namespace wmp::ml
