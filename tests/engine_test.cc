// Unit tests for the execution-memory model, pipeline analysis, simulator,
// and the DBMS heuristic estimator.

#include <gtest/gtest.h>

#include <cmath>

#include "engine/dbms_estimator.h"
#include "engine/memory_model.h"
#include "engine/pipeline.h"
#include "engine/simulator.h"
#include "plan/planner.h"
#include "sql/parser.h"
#include "test_schema.h"

namespace wmp::engine {
namespace {

using plan::OperatorType;
using plan::PlanNode;
using testing_support::MakeStarCatalog;

// All hand-built test trees share one arena; it lives for the process.
util::Arena* TestArena() {
  static util::Arena* arena = new util::Arena(64 << 10);
  return arena;
}

SimulatorOptions SimOpts(double sigma, uint64_t seed = 7) {
  SimulatorOptions opt;
  opt.noise_sigma = sigma;
  opt.seed = seed;
  return opt;
}

PlanNode* Leaf(OperatorType op, double card, double width,
               double true_card = -1.0) {
  PlanNode* node = TestArena()->New<PlanNode>(TestArena(), op);
  node->input_card = node->output_card = card;
  node->true_input_card = node->true_output_card = true_card;
  node->row_width = width;
  return node;
}

TEST(MemoryModelTest, ScansUseConstantBuffers) {
  MemoryModelConfig cfg;
  auto* scan = Leaf(OperatorType::kTbScan, 1e6, 50);
  auto mem = ComputeOperatorMemory(*scan, cfg, CardTrack::kEstimated);
  EXPECT_DOUBLE_EQ(mem.build_bytes, cfg.scan_buffer_bytes);
  EXPECT_FALSE(mem.spills);
}

TEST(MemoryModelTest, SortScalesWithInputAndOverhead) {
  MemoryModelConfig cfg;
  auto* sort = Leaf(OperatorType::kSort, 1e5, 100);
  auto mem = ComputeOperatorMemory(*sort, cfg, CardTrack::kEstimated);
  EXPECT_NEAR(mem.build_bytes, 1e5 * 100 * cfg.sort_overhead_factor, 1.0);
  EXPECT_FALSE(mem.spills);
}

TEST(MemoryModelTest, OversizedSortSpillsToHeapCap) {
  MemoryModelConfig cfg;
  auto* sort = Leaf(OperatorType::kSort, 1e8, 100);  // 10 GB >> heap
  auto mem = ComputeOperatorMemory(*sort, cfg, CardTrack::kEstimated);
  EXPECT_TRUE(mem.spills);
  EXPECT_DOUBLE_EQ(mem.build_bytes, cfg.sort_heap_bytes);
  EXPECT_LT(mem.resident_bytes, cfg.sort_heap_bytes);  // merge buffers only
}

TEST(MemoryModelTest, HashJoinBilledOnBuildSide) {
  MemoryModelConfig cfg;
  auto* join = plan::MakeNode(TestArena(), OperatorType::kHsJoin);
  join->children.push_back(Leaf(OperatorType::kTbScan, 1e6, 40));  // probe
  join->children.push_back(Leaf(OperatorType::kTbScan, 1e4, 20));  // build
  auto mem = ComputeOperatorMemory(*join, cfg, CardTrack::kEstimated);
  const double expected =
      1e4 * (20 + cfg.hash_entry_overhead) / cfg.hash_table_load_factor;
  EXPECT_NEAR(mem.build_bytes, expected, 1.0);
}

TEST(MemoryModelTest, HashGroupByScalesWithGroups) {
  MemoryModelConfig cfg;
  auto* grpby = Leaf(OperatorType::kGroupBy, 1e6, 32);
  grpby->output_card = 5000;  // groups
  grpby->hash_mode = true;
  auto mem = ComputeOperatorMemory(*grpby, cfg, CardTrack::kEstimated);
  EXPECT_GT(mem.build_bytes, 5000 * 32);
  EXPECT_LT(mem.build_bytes, cfg.group_heap_bytes);

  grpby->hash_mode = false;  // streaming over sorted input is cheap
  auto stream_mem = ComputeOperatorMemory(*grpby, cfg, CardTrack::kEstimated);
  EXPECT_LT(stream_mem.build_bytes, mem.build_bytes);
}

TEST(MemoryModelTest, TrueTrackReadsTrueCards) {
  MemoryModelConfig cfg;
  auto* sort = Leaf(OperatorType::kSort, /*card=*/1000, /*width=*/100,
                   /*true_card=*/50000);
  auto est = ComputeOperatorMemory(*sort, cfg, CardTrack::kEstimated);
  auto tru = ComputeOperatorMemory(*sort, cfg, CardTrack::kTrue);
  EXPECT_NEAR(tru.build_bytes / est.build_bytes, 50.0, 0.01);
}

TEST(MemoryModelTest, TrueTrackFallsBackWhenUnannotated) {
  MemoryModelConfig cfg;
  auto* sort = Leaf(OperatorType::kSort, 1000, 100);  // true_card = -1
  auto est = ComputeOperatorMemory(*sort, cfg, CardTrack::kEstimated);
  auto tru = ComputeOperatorMemory(*sort, cfg, CardTrack::kTrue);
  EXPECT_DOUBLE_EQ(tru.build_bytes, est.build_bytes);
}

// ---------- pipeline analysis ----------

TEST(PipelineTest, SortPhasesDoNotStack) {
  // SORT over a scan: peak = scan + sort build, not scan + 2x sort.
  MemoryModelConfig cfg;
  auto* sort = plan::MakeNode(TestArena(), OperatorType::kSort);
  sort->input_card = sort->output_card = 1e5;
  sort->row_width = 100;
  sort->children.push_back(Leaf(OperatorType::kTbScan, 1e5, 100));
  auto profile = AnalyzePlanMemory(*sort, cfg, CardTrack::kEstimated);
  const double sort_bytes = 1e5 * 100 * cfg.sort_overhead_factor;
  EXPECT_NEAR(profile.peak_bytes,
              sort_bytes + cfg.scan_buffer_bytes + cfg.executor_base_bytes,
              1.0);
}

TEST(PipelineTest, TwoSortsOnSameSpineDoNotCoexist) {
  // SORT(SORT(scan)): the inner sort's buffer is freed before the outer
  // one finishes building only partially — our model keeps inner resident
  // while outer builds, so peak = inner_resident + outer_build + base.
  MemoryModelConfig cfg;
  auto* inner = plan::MakeNode(TestArena(), OperatorType::kSort);
  inner->input_card = inner->output_card = 1e5;
  inner->row_width = 100;
  inner->children.push_back(Leaf(OperatorType::kTbScan, 1e5, 100));
  auto* outer = plan::MakeNode(TestArena(), OperatorType::kSort);
  outer->input_card = outer->output_card = 1e5;
  outer->row_width = 100;
  outer->children.push_back(inner);
  auto profile = AnalyzePlanMemory(*outer, cfg, CardTrack::kEstimated);
  const double sort_bytes = 1e5 * 100 * cfg.sort_overhead_factor;
  EXPECT_NEAR(profile.peak_bytes,
              2 * sort_bytes + cfg.executor_base_bytes, 1.0);
}

TEST(PipelineTest, HashJoinProbePhaseHoldsTableAndProbePipeline) {
  MemoryModelConfig cfg;
  auto* join = plan::MakeNode(TestArena(), OperatorType::kHsJoin);
  join->children.push_back(Leaf(OperatorType::kTbScan, 1e6, 40));
  join->children.push_back(Leaf(OperatorType::kTbScan, 1e4, 20));
  auto profile = AnalyzePlanMemory(*join, cfg, CardTrack::kEstimated);
  const double table =
      1e4 * (20 + cfg.hash_entry_overhead) / cfg.hash_table_load_factor;
  EXPECT_NEAR(profile.peak_bytes,
              table + cfg.scan_buffer_bytes + cfg.executor_base_bytes, 1.0);
}

TEST(PipelineTest, SpillCountAggregates) {
  MemoryModelConfig cfg;
  auto* sort = plan::MakeNode(TestArena(), OperatorType::kSort);
  sort->input_card = sort->output_card = 1e8;  // spills
  sort->row_width = 100;
  sort->children.push_back(Leaf(OperatorType::kTbScan, 1e8, 100));
  auto profile = AnalyzePlanMemory(*sort, cfg, CardTrack::kEstimated);
  EXPECT_EQ(profile.spill_count, 1);
}

// ---------- simulator + DBMS estimator on real plans ----------

class EngineOnPlansTest : public ::testing::Test {
 protected:
  EngineOnPlansTest() : cat_(MakeStarCatalog()), planner_(&cat_) {}

  plan::PlanTree Plan(const std::string& sql) {
    auto query = sql::Parse(sql);
    EXPECT_TRUE(query.ok());
    auto plan = planner_.CreatePlan(*query);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return std::move(plan).value();
  }

  catalog::Catalog cat_;
  plan::Planner planner_;
};

TEST_F(EngineOnPlansTest, BiggerQueriesNeedMoreMemory) {
  Simulator sim(SimOpts(0.0));
  auto small = Plan("SELECT s_id FROM sales WHERE s_date = 7");
  auto big = Plan(
      "SELECT c.c_region, SUM(s.s_price) FROM sales s, customer c "
      "WHERE s.s_cust = c.c_id GROUP BY c.c_region ORDER BY c.c_region");
  EXPECT_GT(sim.SimulatePeakMemoryMb(*big), sim.SimulatePeakMemoryMb(*small));
}

TEST_F(EngineOnPlansTest, NoiseIsBoundedAndCentered) {
  auto plan = Plan(
      "SELECT c.c_region, SUM(s.s_price) FROM sales s, customer c "
      "WHERE s.s_cust = c.c_id GROUP BY c.c_region");
  Simulator noiseless(SimOpts(0.0));
  const double base = noiseless.SimulatePeakMemoryMb(*plan);
  Simulator noisy(SimOpts(0.06, 3));
  double sum = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double m = noisy.SimulatePeakMemoryMb(*plan);
    EXPECT_GT(m, base * std::exp(-3 * 0.07));
    EXPECT_LT(m, base * std::exp(3 * 0.07));
    sum += m;
  }
  EXPECT_NEAR(sum / 500.0, base, base * 0.02);
}

TEST_F(EngineOnPlansTest, DbmsEstimateDivergesFromTruth) {
  // On the skewed/correlated star schema the optimizer's cardinalities are
  // wrong, so its memory estimate must systematically miss the simulated
  // truth for join+agg queries.
  Simulator sim(SimOpts(0.0));
  auto plan = Plan(
      "SELECT c.c_region, SUM(s.s_price) FROM sales s, customer c "
      "WHERE s.s_cust = c.c_id AND s.s_qty = 5 GROUP BY c.c_region");
  const double truth = sim.SimulatePeakMemoryMb(*plan);
  const double estimate = DbmsEstimateMemoryMb(*plan);
  EXPECT_GT(std::fabs(estimate - truth) / truth, 0.10);
}

TEST_F(EngineOnPlansTest, DbmsEstimateIsPositiveAndFinite) {
  for (const char* sql : {
           "SELECT s_id FROM sales",
           "SELECT DISTINCT c_region FROM customer",
           "SELECT s_id FROM sales ORDER BY s_id",
       }) {
    auto plan = Plan(sql);
    const double est = DbmsEstimateMemoryMb(*plan);
    EXPECT_GT(est, 0.0) << sql;
    EXPECT_TRUE(std::isfinite(est)) << sql;
  }
}

TEST_F(EngineOnPlansTest, SimulatorDeterministicNoiselessly) {
  auto plan = Plan("SELECT s_id FROM sales ORDER BY s_id");
  Simulator a(SimOpts(0.0)), b(SimOpts(0.0));
  EXPECT_DOUBLE_EQ(a.SimulatePeakMemoryMb(*plan),
                   b.SimulatePeakMemoryMb(*plan));
}

}  // namespace
}  // namespace wmp::engine
