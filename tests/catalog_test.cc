// Unit tests for the catalog substrate.

#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace wmp::catalog {
namespace {

TableDef MakeOrders() {
  TableDef t("orders", 100000);
  EXPECT_TRUE(t.AddColumn(Column("o_id", ColumnType::kBigInt,
                                 {.ndv = 100000, .min_value = 1,
                                  .max_value = 100000}))
                  .ok());
  EXPECT_TRUE(t.AddColumn(Column("o_cust", ColumnType::kInt,
                                 {.ndv = 5000, .min_value = 1,
                                  .max_value = 5000, .zipf_skew = 0.8}))
                  .ok());
  EXPECT_TRUE(t.AddColumn(Column("o_status", ColumnType::kString,
                                 {.ndv = 5, .min_value = 0, .max_value = 5}))
                  .ok());
  return t;
}

TEST(ColumnTest, WidthDefaultsByType) {
  Column c("x", ColumnType::kString);
  EXPECT_EQ(c.width(), 24u);
  Column d("y", ColumnType::kInt);
  EXPECT_EQ(d.width(), 4u);
  Column e("z", ColumnType::kDouble, {.avg_width = 16});
  EXPECT_EQ(e.width(), 16u);  // explicit override wins
}

TEST(ColumnTest, TypeNames) {
  EXPECT_STREQ(ColumnTypeName(ColumnType::kInt), "INT");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kString), "VARCHAR");
  EXPECT_STREQ(ColumnTypeName(ColumnType::kDate), "DATE");
}

TEST(TableTest, DuplicateColumnRejected) {
  TableDef t("t", 10);
  EXPECT_TRUE(t.AddColumn(Column("a", ColumnType::kInt)).ok());
  EXPECT_TRUE(t.AddColumn(Column("a", ColumnType::kInt)).code() ==
              StatusCode::kAlreadyExists);
}

TEST(TableTest, FindColumn) {
  TableDef t = MakeOrders();
  auto col = t.FindColumn("o_cust");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->stats().ndv, 5000u);
  EXPECT_TRUE(t.FindColumn("nope").status().IsNotFound());
}

TEST(TableTest, IndexRequiresColumn) {
  TableDef t = MakeOrders();
  EXPECT_TRUE(t.AddIndex("o_id", /*unique=*/true).ok());
  EXPECT_TRUE(t.HasIndexOn("o_id"));
  EXPECT_FALSE(t.HasIndexOn("o_cust"));
  EXPECT_TRUE(t.AddIndex("ghost").IsNotFound());
}

TEST(TableTest, ForeignKeyRequiresLocalColumn) {
  TableDef t = MakeOrders();
  EXPECT_TRUE(
      t.AddForeignKey({"o_cust", "customer", "c_id", /*fanout_skew=*/2.0}).ok());
  const ForeignKey* fk = t.FindForeignKey("o_cust");
  ASSERT_NE(fk, nullptr);
  EXPECT_EQ(fk->ref_table, "customer");
  EXPECT_DOUBLE_EQ(fk->fanout_skew, 2.0);
  EXPECT_EQ(t.FindForeignKey("o_id"), nullptr);
  EXPECT_TRUE(t.AddForeignKey({"ghost", "x", "y", 1.0}).IsNotFound());
}

TEST(TableTest, CorrelationSymmetricLookup) {
  TableDef t = MakeOrders();
  ASSERT_TRUE(t.AddCorrelation("o_cust", "o_status", 0.7).ok());
  EXPECT_DOUBLE_EQ(t.CorrelationBetween("o_cust", "o_status"), 0.7);
  EXPECT_DOUBLE_EQ(t.CorrelationBetween("o_status", "o_cust"), 0.7);
  EXPECT_DOUBLE_EQ(t.CorrelationBetween("o_id", "o_cust"), 0.0);
  EXPECT_TRUE(t.AddCorrelation("o_cust", "o_status", 1.5).IsInvalidArgument());
  EXPECT_TRUE(t.AddCorrelation("o_cust", "ghost", 0.5).IsNotFound());
}

TEST(TableTest, RowWidthSumsColumns) {
  TableDef t = MakeOrders();
  EXPECT_EQ(t.row_width(), 8u + 4u + 24u);
}

TEST(CatalogTest, AddAndFind) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable(MakeOrders()).ok());
  EXPECT_TRUE(cat.HasTable("orders"));
  auto t = cat.FindTable("orders");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->row_count(), 100000u);
  EXPECT_TRUE(cat.FindTable("ghost").status().IsNotFound());
  EXPECT_EQ(cat.num_tables(), 1u);
}

TEST(CatalogTest, DuplicateTableRejected) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable(MakeOrders()).ok());
  EXPECT_EQ(cat.AddTable(MakeOrders()).code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, MutableLookupAdjustsStats) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable(MakeOrders()).ok());
  auto t = cat.FindMutableTable("orders");
  ASSERT_TRUE(t.ok());
  (*t)->set_row_count(42);
  EXPECT_EQ((*cat.FindTable("orders"))->row_count(), 42u);
}

TEST(CatalogTest, TableNamesPreserveOrder) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable(TableDef("zzz", 1)).ok());
  ASSERT_TRUE(cat.AddTable(TableDef("aaa", 1)).ok());
  ASSERT_EQ(cat.table_names().size(), 2u);
  EXPECT_EQ(cat.table_names()[0], "zzz");
  EXPECT_EQ(cat.table_names()[1], "aaa");
}

}  // namespace
}  // namespace wmp::catalog
