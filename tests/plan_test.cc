// Unit tests for cardinality models, the planner, EXPLAIN round-trips, and
// plan featurization.

#include <gtest/gtest.h>

#include <set>

#include "plan/cardinality.h"
#include "plan/explain.h"
#include "plan/features.h"
#include "plan/plan_parser.h"
#include "plan/planner.h"
#include "sql/parser.h"
#include "test_schema.h"

namespace wmp::plan {
namespace {

using testing_support::MakeStarCatalog;

class PlanTest : public ::testing::Test {
 protected:
  PlanTest() : cat_(MakeStarCatalog()), planner_(&cat_) {}

  PlanTree Plan(const std::string& sql) {
    auto query = sql::Parse(sql);
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    auto plan = planner_.CreatePlan(*query);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return std::move(plan).value();
  }

  // Counts nodes of one operator type.
  static int CountOps(const PlanNode& root, OperatorType op) {
    int n = 0;
    root.Visit([&](const PlanNode& node) { n += node.op == op; });
    return n;
  }

  catalog::Catalog cat_;
  Planner planner_;
};

// ---------- harmonic / zipf helpers ----------

TEST(ZipfMathTest, HarmonicMatchesExactSmallN) {
  // H_4(1) = 1 + 1/2 + 1/3 + 1/4 = 2.0833
  EXPECT_NEAR(HarmonicApprox(4, 1.0), 2.0833, 0.08);
  // H_n(0) = n exactly.
  EXPECT_DOUBLE_EQ(HarmonicApprox(100, 0.0), 100.0);
}

TEST(ZipfMathTest, PrefixTablePathBitwiseEqualsDirectSummation) {
  // The per-theta prefix-table fast path must return the exact bit
  // pattern of the reference summation for every (n, theta), including
  // fractional n, the exact-summation boundary, and the integral tail.
  ASSERT_TRUE(HarmonicTableCache());  // fast path is the default
  for (double theta : {0.2, 0.5, 1.0, 1.3, 2.6}) {
    for (double n :
         {1.0, 1.5, 7.0, 7.9, 100.25, 2047.0, 2048.0, 2048.5, 1e6}) {
      SetHarmonicTableCache(true);
      const double fast = HarmonicApprox(n, theta);
      SetHarmonicTableCache(false);
      const double reference = HarmonicApprox(n, theta);
      SetHarmonicTableCache(true);
      EXPECT_EQ(fast, reference) << "n=" << n << " theta=" << theta;
    }
  }
}

TEST(ZipfMathTest, CdfBoundsAndMonotonicity) {
  EXPECT_DOUBLE_EQ(ZipfCdfApprox(0, 100, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(ZipfCdfApprox(100, 100, 1.0), 1.0);
  double prev = 0.0;
  for (double k = 1; k <= 100; k += 7) {
    const double c = ZipfCdfApprox(k, 100, 1.0);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(ZipfMathTest, CollisionProbExceedsUniformUnderSkew) {
  const double uniform = ZipfCollisionProb(1000, 0.0);
  EXPECT_NEAR(uniform, 1.0 / 1000, 2e-4);
  EXPECT_GT(ZipfCollisionProb(1000, 1.0), 3.0 * uniform);
}

// ---------- cardinality models ----------

TEST_F(PlanTest, OptimizerEqualitySelectivityIsOneOverNdv) {
  OptimizerCardinalityModel model(&cat_);
  const catalog::TableDef& sales = **cat_.FindTable("sales");
  auto pred = sql::Predicate::Comparison({"s", "s_qty"}, sql::CompareOp::kEq,
                                         {sql::Literal::Number(5)});
  EXPECT_NEAR(model.PredicateSelectivity(pred, sales).value(), 1.0 / 100,
              1e-12);
}

TEST_F(PlanTest, TrueEqualityExceedsOptimizerOnSkewedColumn) {
  // s_qty has zipf_skew 0.6: the true (frequency-weighted) selectivity of
  // an equality is higher than 1/ndv.
  OptimizerCardinalityModel opt(&cat_);
  TrueCardinalityModel oracle(&cat_);
  const catalog::TableDef& sales = **cat_.FindTable("sales");
  auto pred = sql::Predicate::Comparison({"s", "s_qty"}, sql::CompareOp::kEq,
                                         {sql::Literal::Number(5)});
  EXPECT_GT(oracle.PredicateSelectivity(pred, sales).value(),
            opt.PredicateSelectivity(pred, sales).value());
}

TEST_F(PlanTest, GeneratorHintOverridesTrueModel) {
  TrueCardinalityModel oracle(&cat_);
  const catalog::TableDef& sales = **cat_.FindTable("sales");
  auto pred = sql::Predicate::Comparison({"s", "s_qty"}, sql::CompareOp::kEq,
                                         {sql::Literal::Number(5)});
  pred.true_selectivity = 0.123;
  EXPECT_DOUBLE_EQ(oracle.PredicateSelectivity(pred, sales).value(), 0.123);
}

TEST_F(PlanTest, CorrelationBackoffRaisesConjunctionSelectivity) {
  // s_qty and s_price are declared 0.8-correlated: the true conjunction
  // filters less than the independent product.
  OptimizerCardinalityModel opt(&cat_);
  TrueCardinalityModel oracle(&cat_);
  const catalog::TableDef& sales = **cat_.FindTable("sales");
  auto p1 = sql::Predicate::Comparison({"s", "s_qty"}, sql::CompareOp::kLe,
                                       {sql::Literal::Number(20)});
  auto p2 = sql::Predicate::Comparison({"s", "s_price"}, sql::CompareOp::kLe,
                                       {sql::Literal::Number(2000)});
  std::vector<const sql::Predicate*> preds{&p1, &p2};
  const double opt_sel = opt.ConjunctionSelectivity(preds, sales).value();
  const double true_sel = oracle.ConjunctionSelectivity(preds, sales).value();
  EXPECT_GT(true_sel, opt_sel);
}

TEST_F(PlanTest, JoinFanoutSkewRaisesTrueJoinSize) {
  OptimizerCardinalityModel opt(&cat_);
  TrueCardinalityModel oracle(&cat_);
  const catalog::TableDef& sales = **cat_.FindTable("sales");
  const catalog::TableDef& customer = **cat_.FindTable("customer");
  auto join = sql::Predicate::Join({"s", "s_cust"}, {"c", "c_id"});
  const double opt_sel = opt.JoinSelectivity(join, sales, customer).value();
  const double true_sel = oracle.JoinSelectivity(join, sales, customer).value();
  EXPECT_NEAR(true_sel / opt_sel, 2.5, 1e-9);  // declared fanout skew
}

TEST_F(PlanTest, GroupCountCappedByInput) {
  OptimizerCardinalityModel opt(&cat_);
  const catalog::TableDef* sales = *cat_.FindTable("sales");
  const double groups =
      opt.GroupCount({{sales, "s_cust"}}, /*input_card=*/100).value();
  EXPECT_LE(groups, 100.0);
}

TEST_F(PlanTest, TrueGroupCountShrinksUnderSkew) {
  OptimizerCardinalityModel opt(&cat_);
  TrueCardinalityModel oracle(&cat_);
  const catalog::TableDef* sales = *cat_.FindTable("sales");
  const double est = opt.GroupCount({{sales, "s_cust"}}, 1e6).value();
  const double tru = oracle.GroupCount({{sales, "s_cust"}}, 1e6).value();
  EXPECT_LT(tru, est);
}

// ---------- planner ----------

TEST_F(PlanTest, SingleTableScanShape) {
  auto plan = Plan("SELECT s_id FROM sales WHERE s_qty > 50");
  EXPECT_EQ(plan->op, OperatorType::kReturn);
  EXPECT_EQ(CountOps(*plan, OperatorType::kTbScan), 1);
  EXPECT_EQ(CountOps(*plan, OperatorType::kHsJoin), 0);
}

TEST_F(PlanTest, SelectiveIndexedPredicateUsesIndexScan) {
  // s_date is indexed; equality on ndv=2000 gives sel 5e-4 < 0.05.
  auto plan = Plan("SELECT s_id FROM sales WHERE s_date = 77");
  EXPECT_EQ(CountOps(*plan, OperatorType::kIxScan), 1);
  EXPECT_EQ(CountOps(*plan, OperatorType::kFetch), 1);
  EXPECT_EQ(CountOps(*plan, OperatorType::kTbScan), 0);
}

TEST_F(PlanTest, UnselectivePredicateStaysTableScan) {
  auto plan = Plan("SELECT s_id FROM sales WHERE s_date > 100");
  EXPECT_EQ(CountOps(*plan, OperatorType::kIxScan), 0);
  EXPECT_EQ(CountOps(*plan, OperatorType::kTbScan), 1);
}

TEST_F(PlanTest, LikePredicateAddsFilter) {
  auto plan = Plan("SELECT c_id FROM customer WHERE c_name LIKE '%smith%'");
  EXPECT_EQ(CountOps(*plan, OperatorType::kFilter), 1);
}

TEST_F(PlanTest, TwoTableJoinUsesHashJoin) {
  auto plan = Plan(
      "SELECT s.s_id FROM sales s, customer c WHERE s.s_cust = c.c_id");
  EXPECT_EQ(CountOps(*plan, OperatorType::kHsJoin), 1);
  // Build side (children[1]) must be the smaller input (customer).
  const PlanNode* join = nullptr;
  plan->Visit([&](const PlanNode& n) {
    if (n.op == OperatorType::kHsJoin) join = &n;
  });
  ASSERT_NE(join, nullptr);
  ASSERT_EQ(join->children.size(), 2u);
  EXPECT_LE(join->children[1]->output_card, join->children[0]->output_card);
}

TEST_F(PlanTest, SmallOuterWithIndexedInnerUsesNestedLoop) {
  // dates filtered to ~1 row (d_id = const), customer has index on c_id...
  // Use sales filtered by indexed s_date = const joined to dates via index.
  auto plan = Plan(
      "SELECT d.d_year FROM dates d, customer c "
      "WHERE d.d_id = c.c_id AND d.d_year = 2000");
  // dates filtered to ~333 rows -> small outer; customer has index on c_id.
  EXPECT_EQ(CountOps(*plan, OperatorType::kNlJoin), 1);
}

TEST_F(PlanTest, ThreeWayJoinShape) {
  auto plan = Plan(
      "SELECT c.c_region, SUM(s.s_price) FROM sales s, customer c, dates d "
      "WHERE s.s_cust = c.c_id AND s.s_date = d.d_id "
      "GROUP BY c.c_region");
  const int joins = CountOps(*plan, OperatorType::kHsJoin) +
                    CountOps(*plan, OperatorType::kNlJoin) +
                    CountOps(*plan, OperatorType::kMsJoin);
  EXPECT_EQ(joins, 2);
  EXPECT_EQ(CountOps(*plan, OperatorType::kGroupBy), 1);
  EXPECT_EQ(CountOps(*plan, OperatorType::kReturn), 1);
}

TEST_F(PlanTest, GroupByChoosesHashModeForSmallGroups) {
  auto plan = Plan(
      "SELECT c_region, COUNT(*) FROM customer GROUP BY c_region");
  const PlanNode* grpby = nullptr;
  plan->Visit([&](const PlanNode& n) {
    if (n.op == OperatorType::kGroupBy) grpby = &n;
  });
  ASSERT_NE(grpby, nullptr);
  EXPECT_TRUE(grpby->hash_mode);
  EXPECT_LE(grpby->output_card, 25.0 + 1.0);
}

TEST_F(PlanTest, OrderByAddsTopSort) {
  auto plan = Plan("SELECT s_id FROM sales ORDER BY s_id");
  EXPECT_EQ(CountOps(*plan, OperatorType::kSort), 1);
  // SORT must sit directly under RETURN.
  EXPECT_EQ(plan->children[0]->op, OperatorType::kSort);
}

TEST_F(PlanTest, DistinctBecomesGroupBy) {
  auto plan = Plan("SELECT DISTINCT c_region FROM customer");
  EXPECT_EQ(CountOps(*plan, OperatorType::kGroupBy), 1);
}

TEST_F(PlanTest, LimitCapsReturnCardinality) {
  auto plan = Plan("SELECT s_id FROM sales LIMIT 10");
  EXPECT_DOUBLE_EQ(plan->output_card, 10.0);
}

TEST_F(PlanTest, CardinalitiesPropagateSanely) {
  auto plan = Plan("SELECT s_id FROM sales WHERE s_qty = 5");
  plan->Visit([](const PlanNode& n) {
    EXPECT_GE(n.output_card, 1.0);
    EXPECT_GE(n.true_output_card, 1.0);
    // No operator increases cardinality except joins.
    if (n.op != OperatorType::kHsJoin && n.op != OperatorType::kNlJoin &&
        n.op != OperatorType::kMsJoin && !n.children.empty()) {
      EXPECT_LE(n.output_card, n.children[0]->output_card + 1e-9);
    }
  });
}

TEST_F(PlanTest, TrueCardsDivergeFromEstimates) {
  auto plan = Plan(
      "SELECT s.s_id FROM sales s, customer c "
      "WHERE s.s_cust = c.c_id AND s.s_qty = 5");
  const PlanNode* join = nullptr;
  plan->Visit([&](const PlanNode& n) {
    if (n.op == OperatorType::kHsJoin || n.op == OperatorType::kNlJoin ||
        n.op == OperatorType::kMsJoin) {
      join = &n;
    }
  });
  ASSERT_NE(join, nullptr);
  // Skewed predicate + fanout skew: truth exceeds the estimate.
  EXPECT_GT(join->true_output_card, join->output_card);
}

TEST_F(PlanTest, AnnotationCanBeDisabled) {
  PlannerOptions opt;
  opt.annotate_true_cardinalities = false;
  Planner p(&cat_, opt);
  auto query = sql::Parse("SELECT s_id FROM sales");
  auto plan = p.CreatePlan(*query);
  ASSERT_TRUE(plan.ok());
  (*plan)->Visit([](const PlanNode& n) {
    EXPECT_LT(n.true_output_card, 0.0);
  });
}

TEST_F(PlanTest, UnknownTableOrColumnRejected) {
  auto q1 = sql::Parse("SELECT x FROM ghost");
  EXPECT_TRUE(planner_.CreatePlan(*q1).status().IsNotFound());
  auto q2 = sql::Parse("SELECT ghost_col FROM sales");
  EXPECT_TRUE(planner_.CreatePlan(*q2).status().IsNotFound());
  auto q3 = sql::Parse("SELECT s_id FROM sales, customer WHERE c_id = 1 AND s_id = c_id");
  EXPECT_TRUE(planner_.CreatePlan(*q3).ok());  // unqualified but unique
}

TEST_F(PlanTest, AmbiguousUnqualifiedColumnRejected) {
  // Both sales and customer contain no common column name in this schema;
  // simulate ambiguity via duplicate alias instead.
  auto q = sql::Parse("SELECT s_id FROM sales s, customer s");
  EXPECT_TRUE(planner_.CreatePlan(*q).status().IsInvalidArgument());
}

// ---------- explain + parse round-trip ----------

TEST_F(PlanTest, ExplainContainsOperatorsAndCards) {
  auto plan = Plan(
      "SELECT c.c_region, COUNT(*) FROM sales s, customer c "
      "WHERE s.s_cust = c.c_id GROUP BY c.c_region ORDER BY c.c_region");
  const std::string text = Explain(*plan);
  EXPECT_NE(text.find("RETURN"), std::string::npos);
  EXPECT_NE(text.find("HSJOIN"), std::string::npos);
  EXPECT_NE(text.find("GRPBY"), std::string::npos);
  EXPECT_NE(text.find("out="), std::string::npos);
  EXPECT_NE(text.find("tout="), std::string::npos);
}

class ExplainRoundTrip : public PlanTest,
                         public ::testing::WithParamInterface<const char*> {};

TEST_P(ExplainRoundTrip, ParseReconstructsPlanExactly) {
  auto plan = Plan(GetParam());
  const std::string text = Explain(*plan);
  auto reparsed = ParseExplain(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << text;
  EXPECT_EQ(Explain(**reparsed), text);
  EXPECT_EQ((*reparsed)->TreeSize(), plan->TreeSize());
  // Features must survive the round trip bit-for-bit.
  EXPECT_EQ(ExtractPlanFeatures(**reparsed), ExtractPlanFeatures(*plan));
}

INSTANTIATE_TEST_SUITE_P(
    Plans, ExplainRoundTrip,
    ::testing::Values(
        "SELECT s_id FROM sales WHERE s_qty = 5",
        "SELECT s_id FROM sales WHERE s_date = 9",
        "SELECT DISTINCT c_region FROM customer",
        "SELECT c_id FROM customer WHERE c_name LIKE '%a%'",
        "SELECT s.s_id FROM sales s, customer c WHERE s.s_cust = c.c_id",
        "SELECT c.c_region, SUM(s.s_price) FROM sales s, customer c, dates d "
        "WHERE s.s_cust = c.c_id AND s.s_date = d.d_id AND d.d_year = 2000 "
        "GROUP BY c.c_region ORDER BY c.c_region LIMIT 10"));

TEST(PlanParserTest, RejectsMalformedInput) {
  EXPECT_TRUE(ParseExplain("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseExplain("BOGUS in=1 out=1").status().IsNotFound());
  EXPECT_TRUE(ParseExplain("  RETURN in=1 out=1")  // root indented
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseExplain("RETURN in=1 out=1\n    TBSCAN(t) in=1 out=1")
                  .status()
                  .IsInvalidArgument());  // skips a level
  EXPECT_TRUE(ParseExplain("RETURN in=x out=1").status().IsInvalidArgument());
  EXPECT_TRUE(
      ParseExplain("RETURN bogus=1 out=1").status().IsInvalidArgument());
}

// ---------- features ----------

TEST_F(PlanTest, FeatureVectorLayoutMatchesFig2Scheme) {
  auto plan = Plan("SELECT s_id FROM sales WHERE s_qty = 5");
  auto features = ExtractPlanFeatures(*plan);
  ASSERT_EQ(features.size(), kPlanFeatureDim);
  // One TBSCAN and one RETURN; all other counts zero.
  const size_t tbscan = 2 * static_cast<size_t>(OperatorType::kTbScan);
  const size_t ret = 2 * static_cast<size_t>(OperatorType::kReturn);
  EXPECT_DOUBLE_EQ(features[tbscan], 1.0);
  EXPECT_GT(features[tbscan + 1], 0.0);
  EXPECT_DOUBLE_EQ(features[ret], 1.0);
  const size_t hsjoin = 2 * static_cast<size_t>(OperatorType::kHsJoin);
  EXPECT_DOUBLE_EQ(features[hsjoin], 0.0);
}

TEST_F(PlanTest, FeatureNamesAligned) {
  auto names = PlanFeatureNames();
  ASSERT_EQ(names.size(), kPlanFeatureDim);
  EXPECT_EQ(names[2 * static_cast<size_t>(OperatorType::kHsJoin)],
            "HSJOIN.count");
  EXPECT_EQ(names[2 * static_cast<size_t>(OperatorType::kHsJoin) + 1],
            "HSJOIN.card");
}

TEST_F(PlanTest, PlanCloneIsDeepAndEqual) {
  auto plan = Plan(
      "SELECT s.s_id FROM sales s, customer c WHERE s.s_cust = c.c_id");
  auto clone = plan.Clone();
  EXPECT_EQ(Explain(*clone), Explain(*plan));
  clone->children[0]->output_card = 99.0;
  EXPECT_NE(Explain(*clone), Explain(*plan));
}

}  // namespace
}  // namespace wmp::plan
