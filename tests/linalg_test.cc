// Unit and property tests for src/ml/linalg.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "ml/linalg.h"
#include "util/random.h"

namespace wmp::ml {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m.At(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m.At(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.0);
}

TEST(MatrixTest, AppendRowFixesWidth) {
  Matrix m;
  ASSERT_TRUE(m.AppendRow({1, 2, 3}).ok());
  ASSERT_TRUE(m.AppendRow({4, 5, 6}).ok());
  EXPECT_TRUE(m.AppendRow({7}).IsInvalidArgument());
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.RowVec(1), (std::vector<double>{4, 5, 6}));
}

TEST(MatrixTest, FromRowsRejectsRagged) {
  EXPECT_FALSE(Matrix::FromRows({{1, 2}, {3}}).ok());
  auto m = Matrix::FromRows({{1, 2}, {3, 4}});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->At(1, 0), 3.0);
}

TEST(MatrixTest, TransposeInvolution) {
  Rng rng(5);
  Matrix m(4, 7);
  for (double& v : m.data()) v = rng.Normal();
  Matrix tt = m.Transposed().Transposed();
  EXPECT_EQ(tt.data(), m.data());
}

TEST(LinalgTest, MatVecKnownValues) {
  auto m = Matrix::FromRows({{1, 2}, {3, 4}}).value();
  auto y = MatVec(m, {1, 1});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(LinalgTest, MatTVecMatchesTransposedMatVec) {
  Rng rng(9);
  Matrix m(5, 3);
  for (double& v : m.data()) v = rng.Normal();
  std::vector<double> x{1.0, -2.0, 0.5, 3.0, -1.5};
  auto a = MatTVec(m, x);
  auto b = MatVec(m.Transposed(), x);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(LinalgTest, MatMulIdentity) {
  Rng rng(11);
  Matrix m(3, 3);
  for (double& v : m.data()) v = rng.Normal();
  Matrix eye(3, 3);
  for (size_t i = 0; i < 3; ++i) eye.At(i, i) = 1.0;
  Matrix prod = MatMul(m, eye);
  for (size_t i = 0; i < m.data().size(); ++i) {
    EXPECT_NEAR(prod.data()[i], m.data()[i], 1e-12);
  }
}

TEST(LinalgTest, MatMulKnownValues) {
  auto a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}}).value();
  auto b = Matrix::FromRows({{7, 8}, {9, 10}, {11, 12}}).value();
  Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 154.0);
}

TEST(LinalgTest, GramMatchesExplicitProduct) {
  Rng rng(13);
  Matrix m(6, 4);
  for (double& v : m.data()) v = rng.Normal();
  Matrix g = Gram(m);
  Matrix expected = MatMul(m.Transposed(), m);
  ASSERT_EQ(g.rows(), expected.rows());
  for (size_t i = 0; i < g.data().size(); ++i) {
    EXPECT_NEAR(g.data()[i], expected.data()[i], 1e-10);
  }
}

TEST(LinalgTest, DotNormAxpy) {
  std::vector<double> a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(Dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(Norm2(a), 5.0);
  std::vector<double> y{1.0, 1.0};
  Axpy(2.0, a, &y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 9.0);
}

TEST(LinalgTest, SquaredDistance) {
  double a[] = {0.0, 0.0};
  double b[] = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b, 2), 25.0);
}

TEST(LinalgTest, SquaredDistanceKernelNameIsKnown) {
  const std::string kernel = SquaredDistanceKernel();
  EXPECT_TRUE(kernel == "scalar" || kernel == "avx2" || kernel == "neon")
      << kernel;
}

TEST(LinalgTest, SquaredDistanceDispatchBitwiseMatchesScalar) {
  // Whatever kernel the runtime dispatch picked must reproduce the scalar
  // reference bit-for-bit — the SIMD variants keep the scalar's fixed
  // 4-accumulator reduction order and never contract to FMA. Sweep sizes
  // crossing every vector-width boundary and remainder-tail length.
  Rng rng(20260808);
  for (size_t n = 0; n <= 67; ++n) {
    std::vector<double> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.Normal(0, 1e3);
      b[i] = rng.Normal(0, 1e-3);
    }
    const double got = SquaredDistance(a.data(), b.data(), n);
    const double want = SquaredDistanceScalar(a.data(), b.data(), n);
    EXPECT_EQ(got, want) << "n=" << n << " kernel=" << SquaredDistanceKernel();
  }
  // A large, cache-crossing size as well.
  std::vector<double> a(4099), b(4099);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.UniformDouble(-5, 5);
    b[i] = rng.UniformDouble(-5, 5);
  }
  EXPECT_EQ(SquaredDistance(a.data(), b.data(), a.size()),
            SquaredDistanceScalar(a.data(), b.data(), a.size()));
}

TEST(CholeskyTest, SolvesKnownSystem) {
  // SPD matrix [[4,2],[2,3]], b = [8, 7] -> x = [1.25, 1.5]
  auto a = Matrix::FromRows({{4, 2}, {2, 3}}).value();
  auto chol = CholeskySolver::Factor(a);
  ASSERT_TRUE(chol.ok());
  auto x = chol->Solve({8, 7});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.25, 1e-10);
  EXPECT_NEAR((*x)[1], 1.5, 1e-10);
}

TEST(CholeskyTest, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_TRUE(CholeskySolver::Factor(a).status().IsInvalidArgument());
}

TEST(CholeskyTest, RejectsIndefinite) {
  auto a = Matrix::FromRows({{1, 2}, {2, 1}}).value();  // eigenvalues 3, -1
  EXPECT_TRUE(CholeskySolver::Factor(a).status().IsFailedPrecondition());
}

TEST(CholeskyTest, RejectsWrongRhsSize) {
  auto a = Matrix::FromRows({{2, 0}, {0, 2}}).value();
  auto chol = CholeskySolver::Factor(a).value();
  EXPECT_TRUE(chol.Solve({1, 2, 3}).status().IsInvalidArgument());
}

// Property: for random SPD systems A = B^T B + I, solving returns x with
// A x ~= b, across dimensions.
class CholeskyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyPropertyTest, SolveSatisfiesSystem) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 31 + 7);
  Matrix b(static_cast<size_t>(n), static_cast<size_t>(n));
  for (double& v : b.data()) v = rng.Normal();
  Matrix a = Gram(b);
  for (int i = 0; i < n; ++i) a.At(static_cast<size_t>(i), static_cast<size_t>(i)) += 1.0;

  std::vector<double> rhs(static_cast<size_t>(n));
  for (double& v : rhs) v = rng.Normal();

  auto chol = CholeskySolver::Factor(a);
  ASSERT_TRUE(chol.ok());
  auto x = chol->Solve(rhs);
  ASSERT_TRUE(x.ok());
  auto ax = MatVec(a, *x);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(ax[static_cast<size_t>(i)], rhs[static_cast<size_t>(i)], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, CholeskyPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 32, 64));

}  // namespace
}  // namespace wmp::ml
