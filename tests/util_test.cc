// Unit tests for src/util: Status/Result, RNG + Zipf, binary IO, strings,
// the table printer, and the serving-layer primitives (MPSC queue, latch).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/io.h"
#include "util/mpsc_queue.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/sync.h"
#include "util/table_printer.h"

namespace wmp {
namespace {

// ---------- Status / Result ----------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad k");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, CopyPreservesState) {
  Status st = Status::NotFound("x");
  Status copy = st;
  EXPECT_TRUE(copy.IsNotFound());
  EXPECT_EQ(copy.message(), "x");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotImplemented("").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

Result<int> HalveEven(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Status UseMacros(int v, int* out) {
  WMP_ASSIGN_OR_RETURN(int half, HalveEven(v));
  WMP_RETURN_IF_ERROR(Status::OK());
  *out = half;
  return Status::OK();
}

TEST(ResultTest, MacrosPropagate) {
  int out = 0;
  EXPECT_TRUE(UseMacros(8, &out).ok());
  EXPECT_EQ(out, 4);
  Status st = UseMacros(7, &out);
  EXPECT_TRUE(st.IsInvalidArgument());
}

// ---------- Rng ----------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-3, 12);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 12);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double mean = 0.0;
  for (int i = 0; i < 20000; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    mean += v;
  }
  mean /= 20000;
  EXPECT_NEAR(mean, 0.5, 0.02);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(11);
  double mean = 0.0, var = 0.0;
  const int n = 50000;
  std::vector<double> xs(n);
  for (int i = 0; i < n; ++i) {
    xs[i] = rng.Normal(5.0, 2.0);
    mean += xs[i];
  }
  mean /= n;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= n;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(17);
  std::vector<double> w{0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 30000; ++i) ++counts[rng.WeightedIndex(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.25);
}

TEST(RngTest, ForkDivergesFromParent) {
  Rng parent(19);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.Next() == child.Next());
  EXPECT_LT(same, 4);
}

// ---------- ZipfDistribution ----------

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfDistribution zipf(100, 0.0);
  EXPECT_NEAR(zipf.Pmf(1), 0.01, 1e-12);
  EXPECT_NEAR(zipf.Pmf(100), 0.01, 1e-12);
}

TEST(ZipfTest, SkewConcentratesMassOnLowRanks) {
  ZipfDistribution zipf(1000, 1.0);
  EXPECT_GT(zipf.Pmf(1), zipf.Pmf(2));
  EXPECT_GT(zipf.Pmf(2), zipf.Pmf(100));
  EXPECT_GT(zipf.Cdf(10), 0.3);  // heavy head
}

TEST(ZipfTest, CdfIsMonotoneAndComplete) {
  ZipfDistribution zipf(50, 0.8);
  double prev = 0.0;
  for (uint64_t k = 1; k <= 50; ++k) {
    double c = zipf.Cdf(k);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(zipf.Cdf(50), 1.0);
}

TEST(ZipfTest, SamplesMatchPmf) {
  ZipfDistribution zipf(10, 1.0);
  Rng rng(23);
  std::vector<int> counts(11, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    uint64_t k = zipf.Sample(&rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 10u);
    ++counts[k];
  }
  for (uint64_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.Pmf(k), 0.01);
  }
}

// ---------- Binary IO ----------

TEST(BinaryIoTest, RoundTripsAllPrimitives) {
  BinaryWriter w;
  w.WriteU8(7);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(1ULL << 60);
  w.WriteI64(-12345);
  w.WriteDouble(3.14159);
  w.WriteString("workload");
  w.WriteDoubleVec({1.5, -2.5, 0.0});
  w.WriteIntVec({4, -5, 6});

  BinaryReader r(w.buffer());
  EXPECT_EQ(r.ReadU8().value(), 7);
  EXPECT_EQ(r.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64().value(), 1ULL << 60);
  EXPECT_EQ(r.ReadI64().value(), -12345);
  EXPECT_DOUBLE_EQ(r.ReadDouble().value(), 3.14159);
  EXPECT_EQ(r.ReadString().value(), "workload");
  EXPECT_EQ(r.ReadDoubleVec().value(), (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_EQ(r.ReadIntVec().value(), (std::vector<int>{4, -5, 6}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryIoTest, TruncatedStreamErrors) {
  BinaryWriter w;
  w.WriteU32(1);
  BinaryReader r(w.buffer());
  EXPECT_TRUE(r.ReadU64().status().IsOutOfRange());
}

TEST(BinaryIoTest, TruncatedVectorErrors) {
  BinaryWriter w;
  w.WriteU64(1000);  // claims 1000 doubles, provides none
  BinaryReader r(w.buffer());
  EXPECT_TRUE(r.ReadDoubleVec().status().IsOutOfRange());
}

TEST(BinaryIoTest, PeekDoesNotConsume) {
  BinaryWriter w;
  w.WriteU32(99);
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.PeekU32().value(), 99u);
  EXPECT_EQ(r.ReadU32().value(), 99u);
}

TEST(BinaryIoTest, FileRoundTrip) {
  BinaryWriter w;
  w.WriteString("persisted model");
  const std::string path = testing::TempDir() + "/wmp_io_test.bin";
  ASSERT_TRUE(w.WriteToFile(path).ok());
  auto r = BinaryReader::FromFile(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->ReadString().value(), "persisted model");
}

TEST(BinaryIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(
      BinaryReader::FromFile("/nonexistent/x.bin").status().IsIOError());
}

// ---------- strings ----------

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToLower("SELECT * FROM T"), "select * from t");
  EXPECT_EQ(ToUpper("hsjoin"), "HSJOIN");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringsTest, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  select   a  from t ");
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "select");
  EXPECT_EQ(parts[3], "t");
}

TEST(StringsTest, JoinAndStartsWith) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_TRUE(StartsWith("TBSCAN(t)", "TBSCAN"));
  EXPECT_FALSE(StartsWith("TB", "TBSCAN"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%s=%d", "k", 10), "k=10");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.0 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(3.5 * 1024 * 1024), "3.5 MB");
}

// ---------- table printer ----------

TEST(TablePrinterTest, AlignsColumnsAndPadsShortRows) {
  TablePrinter tp("demo");
  tp.SetHeader({"model", "rmse"});
  tp.AddRow({"LearnedWMP-DNN", "169"});
  tp.AddRow({"x"});
  std::ostringstream os;
  tp.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("LearnedWMP-DNN"), std::string::npos);
  EXPECT_NE(out.find("rmse"), std::string::npos);
  EXPECT_EQ(tp.num_rows(), 2u);
}

TEST(TablePrinterTest, NumericRowFormatting) {
  TablePrinter tp;
  tp.AddRow("row", {1.23456, 7.0}, 3);
  std::ostringstream os;
  tp.Print(os);
  EXPECT_NE(os.str().find("1.235"), std::string::npos);
  EXPECT_NE(os.str().find("7.000"), std::string::npos);
}

// ---------- MpscQueue ----------

TEST(MpscQueueTest, FifoAndPopSomeBounds) {
  util::MpscQueue<int> q;
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  EXPECT_EQ(q.size(), 5u);
  std::vector<int> out;
  EXPECT_EQ(q.PopSome(3, &out), 3u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.PopSome(10, &out), 2u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(q.PopSome(1, &out), 0u);
}

TEST(MpscQueueTest, CloseRejectsPushesButDrains) {
  util::MpscQueue<int> q;
  EXPECT_TRUE(q.Push(1));
  q.Close();
  EXPECT_FALSE(q.Push(2));
  EXPECT_TRUE(q.closed());
  // Queued item is still poppable; the wait reports ready, then closed.
  EXPECT_EQ(q.WaitNonEmpty(), util::QueueWait::kReady);
  std::vector<int> out;
  EXPECT_EQ(q.PopSome(10, &out), 1u);
  EXPECT_EQ(q.WaitNonEmpty(), util::QueueWait::kClosed);
}

TEST(MpscQueueTest, WaitUntilTimesOutWhenEmpty) {
  util::MpscQueue<int> q;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  EXPECT_EQ(q.WaitNonEmptyUntil(deadline), util::QueueWait::kTimeout);
}

TEST(MpscQueueTest, ManyProducersOneConsumerLosesNothing) {
  util::MpscQueue<int> q;
  constexpr int kProducers = 6, kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  std::vector<int> got;
  while (got.size() < kProducers * kPerProducer) {
    if (q.WaitNonEmpty() == util::QueueWait::kClosed) break;
    q.PopSome(64, &got);
  }
  for (auto& t : producers) t.join();
  ASSERT_EQ(got.size(), static_cast<size_t>(kProducers * kPerProducer));
  std::set<int> unique(got.begin(), got.end());
  EXPECT_EQ(unique.size(), got.size());  // every value exactly once
}

// ---------- Latch ----------

TEST(LatchTest, ReleasesAllWaitersTogether) {
  constexpr size_t kThreads = 4;
  util::Latch latch(kThreads + 1);
  std::atomic<int> released{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      latch.ArriveAndWait();
      released.fetch_add(1);
    });
  }
  EXPECT_EQ(released.load(), 0);  // all parked until the last arrival
  latch.ArriveAndWait();
  for (auto& t : threads) t.join();
  EXPECT_EQ(released.load(), static_cast<int>(kThreads));
  latch.Wait();  // post-release waits return immediately
}

TEST(LatchTest, CountDownThenWait) {
  util::Latch latch(2);
  latch.CountDown();
  std::thread t([&] { latch.CountDown(); });
  latch.Wait();
  t.join();
}

// ---------- Percentiles ----------

TEST(StatsTest, PercentileIsNearestRankNotOneAbove) {
  // 1..100: the nearest-rank p-th percentile of n samples is the
  // ceil(p*n)-th smallest — p99 of 100 is 99, not the max.
  std::vector<double> s;
  for (int i = 1; i <= 100; ++i) s.push_back(static_cast<double>(i));
  EXPECT_EQ(util::PercentileInPlace(&s, 0.99), 99.0);
  EXPECT_EQ(util::PercentileInPlace(&s, 0.50), 50.0);
  EXPECT_EQ(util::PercentileInPlace(&s, 1.00), 100.0);
  EXPECT_EQ(util::PercentileInPlace(&s, 0.0), 1.0);
  std::vector<double> four = {4.0, 1.0, 3.0, 2.0};
  EXPECT_EQ(util::PercentileInPlace(&four, 0.50), 2.0);  // 2nd of 4
  EXPECT_EQ(util::PercentileInPlace(&four, 0.51), 3.0);
  std::vector<double> empty;
  EXPECT_EQ(util::PercentileInPlace(&empty, 0.5), 0.0);
}

}  // namespace
}  // namespace wmp
