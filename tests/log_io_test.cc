// Tests for query-log text IO — the deployment ingestion path — and for
// generator-free training from an ingested log.

#include <gtest/gtest.h>

#include "core/featurizer.h"
#include "core/learned_wmp.h"
#include "plan/explain.h"
#include "workloads/dataset.h"
#include "workloads/log_io.h"

namespace wmp::workloads {
namespace {

Dataset SmallDataset() {
  DatasetOptions opt;
  opt.num_queries = 80;
  opt.seed = 31;
  auto d = BuildDataset(Benchmark::kTpcc, opt);
  EXPECT_TRUE(d.ok());
  return std::move(*d);
}

TEST(LogIoTest, SerializeParseRoundTrip) {
  Dataset dataset = SmallDataset();
  const std::string text = SerializeQueryLog(dataset.records);
  auto parsed = ParseQueryLog(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), dataset.records.size());
  for (size_t i = 0; i < parsed->size(); ++i) {
    const QueryRecord& a = dataset.records[i];
    const QueryRecord& b = (*parsed)[i];
    EXPECT_EQ(a.sql_text, b.sql_text);
    EXPECT_DOUBLE_EQ(a.actual_memory_mb, b.actual_memory_mb);
    EXPECT_DOUBLE_EQ(a.dbms_estimate_mb, b.dbms_estimate_mb);
    EXPECT_EQ(a.family_id, b.family_id);
    // Plans reconstruct exactly (EXPLAIN uses %.17g).
    EXPECT_EQ(plan::Explain(*a.plan), plan::Explain(*b.plan));
    EXPECT_EQ(a.plan_features, b.plan_features);
  }
}

TEST(LogIoTest, FileRoundTrip) {
  Dataset dataset = SmallDataset();
  const std::string path = ::testing::TempDir() + "/wmp_querylog.txt";
  ASSERT_TRUE(WriteQueryLog(dataset.records, path).ok());
  auto loaded = LoadQueryLog(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), dataset.records.size());
}

TEST(LogIoTest, OptionalFieldsDefault) {
  const std::string text =
      "-- query: SELECT a FROM t\n"
      "-- memory_mb: 12.5\n"
      "RETURN in=1 out=1 width=8\n"
      "  TBSCAN(t) in=10 out=1 width=8\n"
      "\n";
  auto parsed = ParseQueryLog(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_DOUBLE_EQ((*parsed)[0].actual_memory_mb, 12.5);
  EXPECT_DOUBLE_EQ((*parsed)[0].dbms_estimate_mb, 0.0);
  EXPECT_EQ((*parsed)[0].family_id, -1);
  EXPECT_EQ((*parsed)[0].query.from[0].table, "t");
}

TEST(LogIoTest, MalformedLogsRejected) {
  // No records at all.
  EXPECT_TRUE(ParseQueryLog("").status().IsInvalidArgument());
  // EXPLAIN block without a query header.
  EXPECT_TRUE(ParseQueryLog("RETURN in=1 out=1 width=8\n\n")
                  .status()
                  .IsInvalidArgument());
  // Query without a plan.
  EXPECT_TRUE(ParseQueryLog("-- query: SELECT a FROM t\n\n")
                  .status()
                  .IsInvalidArgument());
  // Unknown directive.
  EXPECT_TRUE(ParseQueryLog("-- bogus: 1\n").status().IsInvalidArgument());
  // Broken SQL inside an otherwise valid record.
  EXPECT_FALSE(ParseQueryLog("-- query: SELECT FROM\n"
                             "RETURN in=1 out=1 width=8\n\n")
                   .ok());
  // Duplicate query header in one record.
  EXPECT_TRUE(ParseQueryLog("-- query: SELECT a FROM t\n"
                            "-- query: SELECT b FROM t\n"
                            "RETURN in=1 out=1 width=8\n\n")
                  .status()
                  .IsInvalidArgument());
}

TEST(LogIoTest, WriteRejectsPlanlessRecords) {
  std::vector<QueryRecord> records(1);
  records[0].sql_text = "SELECT a FROM t";
  EXPECT_TRUE(WriteQueryLog(records, "/tmp/never_written.txt")
                  .IsInvalidArgument());
}

TEST(LogIoTest, TrainFromIngestedLogEndToEnd) {
  // The wmpctl workflow: generate -> serialize -> parse -> train -> predict,
  // with no generator available on the training side.
  DatasetOptions opt;
  opt.num_queries = 400;
  opt.seed = 33;
  auto dataset = BuildDataset(Benchmark::kTpcc, opt);
  ASSERT_TRUE(dataset.ok());
  auto reloaded = ParseQueryLog(SerializeQueryLog(dataset->records));
  ASSERT_TRUE(reloaded.ok());

  core::LearnedWmpOptions lopt;
  lopt.templates.num_templates = 8;
  auto model = core::LearnedWmpModel::Train(
      *reloaded, core::AllIndices(reloaded->size()), lopt);
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  std::vector<uint32_t> batch{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto pred = model->PredictWorkload(*reloaded, batch);
  ASSERT_TRUE(pred.ok());
  EXPECT_GT(*pred, 0.0);
}

TEST(QueryLogReaderTest, ChunkedReadMatchesWholeFileLoad) {
  DatasetOptions opt;
  opt.num_queries = 100;
  opt.seed = 47;
  auto dataset = BuildDataset(Benchmark::kTpcc, opt);
  ASSERT_TRUE(dataset.ok());
  const std::string path = ::testing::TempDir() + "/wmp_chunked_log.txt";
  ASSERT_TRUE(WriteQueryLog(dataset->records, path).ok());
  auto whole = LoadQueryLog(path);
  ASSERT_TRUE(whole.ok());

  for (size_t chunk : {size_t{1}, size_t{7}, size_t{100}, size_t{1000}}) {
    auto reader = QueryLogReader::Open(path);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    std::vector<QueryRecord> streamed;
    size_t chunks = 0;
    for (;;) {
      auto n = reader->ReadChunk(chunk, &streamed);
      ASSERT_TRUE(n.ok()) << n.status().ToString();
      if (*n == 0) break;
      EXPECT_LE(*n, chunk);
      ++chunks;
    }
    EXPECT_TRUE(reader->exhausted());
    EXPECT_EQ(reader->records_read(), whole->size());
    ASSERT_EQ(streamed.size(), whole->size()) << "chunk=" << chunk;
    if (chunk < whole->size()) {
      EXPECT_GT(chunks, 1u);
    }
    for (size_t i = 0; i < streamed.size(); ++i) {
      EXPECT_EQ(streamed[i].sql_text, (*whole)[i].sql_text);
      EXPECT_EQ(streamed[i].plan_features, (*whole)[i].plan_features);
      EXPECT_DOUBLE_EQ(streamed[i].actual_memory_mb,
                       (*whole)[i].actual_memory_mb);
      // Cache keys must not depend on how the record was ingested.
      EXPECT_EQ(streamed[i].content_fingerprint,
                (*whole)[i].content_fingerprint);
      EXPECT_NE(streamed[i].content_fingerprint, 0u);
    }
  }
}

TEST(QueryLogReaderTest, EofAndEmptyAndMissingFile) {
  EXPECT_TRUE(QueryLogReader::Open("/no/such/wmp/log.txt")
                  .status()
                  .IsIOError());
  const std::string path = ::testing::TempDir() + "/wmp_empty_log.txt";
  { std::ofstream out(path, std::ios::trunc); }
  auto reader = QueryLogReader::Open(path);
  ASSERT_TRUE(reader.ok());
  std::vector<QueryRecord> out;
  auto n = reader->ReadChunk(16, &out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
  EXPECT_TRUE(reader->exhausted());
  // Further reads stay at a clean EOF.
  auto again = reader->ReadChunk(16, &out);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
}

TEST(QueryLogReaderTest, MalformedRecordFailsWithLineAnnotatedError) {
  const std::string path = ::testing::TempDir() + "/wmp_malformed_log.txt";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "-- query: SELECT a FROM t\n"
        << "-- memory_mb: 12.5\n"
        << "RETURN in=1 out=1 width=8\n"
        << "  TBSCAN(t) in=10 out=1 width=8\n"
        << "\n"
        << "-- bogus-directive: nope\n"
        << "\n";
  }
  auto reader = QueryLogReader::Open(path);
  ASSERT_TRUE(reader.ok());
  std::vector<QueryRecord> out;
  auto first = reader->ReadChunk(1, &out);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(*first, 1u);
  auto second = reader->ReadChunk(1, &out);
  ASSERT_FALSE(second.ok());
  EXPECT_NE(second.status().message().find("line 6"), std::string::npos)
      << second.status().ToString();
}

TEST(LogIoTest, GeneratorFreeTrainingRejectsRuleBased) {
  Dataset dataset = SmallDataset();
  core::LearnedWmpOptions opt;
  opt.templates.method = core::TemplateMethod::kRuleBased;
  opt.batch_size = 5;
  auto model = core::LearnedWmpModel::Train(
      dataset.records, core::AllIndices(dataset.records.size()), opt);
  EXPECT_TRUE(model.status().IsInvalidArgument());
}

}  // namespace
}  // namespace wmp::workloads
