// CentroidIndex must agree label-for-label with the NearestCentroids
// reference scan on every input — including adversarial ties, duplicate
// centroids, and coincident rows — since downstream histograms feed a
// regressor whose output the serving layer promises to be bitwise stable.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "ml/centroid_index.h"
#include "ml/linalg.h"
#include "util/random.h"

namespace wmp::ml {
namespace {

std::vector<int> ReferenceLabels(const std::vector<double>& rows, size_t n,
                                 const Matrix& centroids) {
  std::vector<int> labels(n, -1);
  NearestCentroids(rows.data(), n, centroids, labels.data());
  return labels;
}

std::vector<int> PrunedLabels(const std::vector<double>& rows, size_t n,
                              const Matrix& centroids,
                              CentroidIndex::AssignStats* stats = nullptr) {
  CentroidIndex index(centroids);
  std::vector<int> labels(n, -1);
  index.Assign(rows.data(), n, labels.data(), stats);
  return labels;
}

TEST(EarlyExitDistanceTest, MatchesScalarKernelWhenNotAborted) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = static_cast<size_t>(rng.UniformInt(1, 40));
    std::vector<double> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.UniformDouble(-5.0, 5.0);
      b[i] = rng.UniformDouble(-5.0, 5.0);
    }
    const double ref = SquaredDistanceScalar(a.data(), b.data(), n);
    const double got = SquaredDistanceEarlyExit(
        a.data(), b.data(), n, std::numeric_limits<double>::max());
    // Bitwise, not approximately.
    EXPECT_EQ(ref, got) << "n=" << n;
  }
}

TEST(EarlyExitDistanceTest, AbortsOnlyWhenTrulyAboveBound) {
  Rng rng(29);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = static_cast<size_t>(rng.UniformInt(1, 40));
    std::vector<double> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.UniformDouble(-5.0, 5.0);
      b[i] = rng.UniformDouble(-5.0, 5.0);
    }
    const double ref = SquaredDistanceScalar(a.data(), b.data(), n);
    const double bound = ref * rng.UniformDouble(0.0, 2.0);
    const double got = SquaredDistanceEarlyExit(a.data(), b.data(), n, bound);
    if (std::isinf(got)) {
      EXPECT_GT(ref, bound);  // an abort must be provably correct
    } else {
      EXPECT_EQ(ref, got);
    }
  }
}

TEST(CentroidIndexTest, ExhaustiveSameArgminSweep) {
  // Random rows x random centroids over many shapes, labels equal exactly.
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t k = static_cast<size_t>(rng.UniformInt(1, 24));
    const size_t d = static_cast<size_t>(rng.UniformInt(1, 30));
    const size_t n = static_cast<size_t>(rng.UniformInt(1, 64));
    Matrix centroids(k, d);
    for (size_t c = 0; c < k; ++c) {
      for (size_t j = 0; j < d; ++j) {
        centroids.At(c, j) = rng.UniformDouble(-3.0, 3.0);
      }
    }
    std::vector<double> rows(n * d);
    for (double& v : rows) v = rng.UniformDouble(-3.0, 3.0);
    EXPECT_EQ(PrunedLabels(rows, n, centroids),
              ReferenceLabels(rows, n, centroids))
        << "k=" << k << " d=" << d << " n=" << n;
  }
}

TEST(CentroidIndexTest, TieHeavyGridResolvesByLowestIndex) {
  // Centroids on a symmetric grid, rows exactly midway: every distance
  // ties, and the winner must be the lowest index — under seeding too.
  const size_t d = 4;
  Matrix centroids(4, d);
  const double coords[4][4] = {{1, 0, 0, 0}, {-1, 0, 0, 0},
                               {0, 1, 0, 0}, {0, -1, 0, 0}};
  for (size_t c = 0; c < 4; ++c) {
    for (size_t j = 0; j < d; ++j) centroids.At(c, j) = coords[c][j];
  }
  // All rows at the origin: equidistant from all four centroids.
  const size_t n = 9;
  std::vector<double> rows(n * d, 0.0);
  // Make row 3 closest to centroid 3 so the seeding for row 4 starts at a
  // high index and the tie-aware update must walk back down to 0.
  rows[3 * d + 1] = -0.5;
  const auto ref = ReferenceLabels(rows, n, centroids);
  EXPECT_EQ(PrunedLabels(rows, n, centroids), ref);
  EXPECT_EQ(ref[3], 3);
  EXPECT_EQ(ref[4], 0);
}

TEST(CentroidIndexTest, DuplicateCentroidsKeepIndexOrder) {
  const size_t d = 3, k = 5;
  Matrix centroids(k, d);
  for (size_t j = 0; j < d; ++j) {
    centroids.At(0, j) = 1.0;
    centroids.At(1, j) = 2.0;
    centroids.At(2, j) = 1.0;  // duplicate of 0
    centroids.At(3, j) = 2.0;  // duplicate of 1
    centroids.At(4, j) = -7.0;
  }
  Rng rng(3);
  const size_t n = 40;
  std::vector<double> rows(n * d);
  for (size_t r = 0; r < n; ++r) {
    const double base = rng.Bernoulli(0.5) ? 1.0 : 2.0;
    for (size_t j = 0; j < d; ++j) {
      rows[r * d + j] = base + rng.UniformDouble(-0.01, 0.01);
    }
  }
  const auto got = PrunedLabels(rows, n, centroids);
  EXPECT_EQ(got, ReferenceLabels(rows, n, centroids));
  for (int label : got) EXPECT_TRUE(label == 0 || label == 1 || label == 4);
}

TEST(CentroidIndexTest, RowOnCentroidGivesZeroDistance) {
  // best == 0 makes the skip threshold 0: all centroids at nonzero
  // distance are skipped, and the answer must still be exact.
  const size_t d = 8, k = 6;
  Rng rng(11);
  Matrix centroids(k, d);
  for (size_t c = 0; c < k; ++c) {
    for (size_t j = 0; j < d; ++j) {
      centroids.At(c, j) = rng.UniformDouble(-2.0, 2.0);
    }
  }
  std::vector<double> rows;
  for (size_t c = 0; c < k; ++c) {
    for (size_t j = 0; j < d; ++j) rows.push_back(centroids.At(c, j));
  }
  CentroidIndex::AssignStats stats;
  const auto got = PrunedLabels(rows, k, centroids, &stats);
  EXPECT_EQ(got, ReferenceLabels(rows, k, centroids));
  for (size_t c = 0; c < k; ++c) EXPECT_EQ(got[c], static_cast<int>(c));
  EXPECT_GT(stats.bound_skips, 0u);
}

TEST(CentroidIndexTest, ClusteredRowsPruneMostDistances) {
  // Paper-shaped input: rows concentrated near a few of many centroids.
  // Correctness is label equality; the stats assert the pruning actually
  // does something on the shape the serving path sees.
  Rng rng(23);
  const size_t k = 20, d = 22, n = 512;
  Matrix centroids(k, d);
  for (size_t c = 0; c < k; ++c) {
    for (size_t j = 0; j < d; ++j) {
      centroids.At(c, j) = rng.UniformDouble(-10.0, 10.0);
    }
  }
  std::vector<double> rows(n * d);
  for (size_t r = 0; r < n; ++r) {
    const size_t home = static_cast<size_t>(
        rng.UniformInt(0, 2));  // batches hit few templates
    for (size_t j = 0; j < d; ++j) {
      rows[r * d + j] = centroids.At(home, j) + rng.UniformDouble(-0.5, 0.5);
    }
  }
  CentroidIndex::AssignStats stats;
  EXPECT_EQ(PrunedLabels(rows, n, centroids, &stats),
            ReferenceLabels(rows, n, centroids));
  EXPECT_EQ(stats.rows, n);
  // The reference scan would compute n*k full distances.
  EXPECT_LT(stats.full_distances, n * k / 2);
  EXPECT_GT(stats.bound_skips + stats.early_exits, n * k / 2);
}

TEST(CentroidIndexTest, SingleCentroidAndEmptyBatch) {
  Matrix centroids(1, 5);
  for (size_t j = 0; j < 5; ++j) centroids.At(0, j) = 1.0;
  CentroidIndex index(centroids);
  std::vector<double> rows(3 * 5, 4.0);
  std::vector<int> labels(3, -1);
  index.Assign(rows.data(), 3, labels.data());
  EXPECT_EQ(labels, (std::vector<int>{0, 0, 0}));
  index.Assign(rows.data(), 0, labels.data());  // no-op, no crash
}

}  // namespace
}  // namespace wmp::ml
