// Unit tests for the SQL lexer, parser, printer, and AST helpers.

#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace wmp::sql {
namespace {

// ---------- lexer ----------

TEST(LexerTest, KeywordsNormalizedIdentifiersLowered) {
  auto tokens = Lex("select FOO.Bar From T");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[1].text, "foo");
  EXPECT_TRUE((*tokens)[2].IsSymbol("."));
  EXPECT_EQ((*tokens)[3].text, "bar");
  EXPECT_TRUE((*tokens)[4].IsKeyword("FROM"));
}

TEST(LexerTest, NumbersAndStrings) {
  auto tokens = Lex("42 -3.5 1e6 'o''brien'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "42");
  EXPECT_EQ((*tokens)[1].text, "-3.5");
  EXPECT_EQ((*tokens)[2].text, "1e6");
  EXPECT_EQ((*tokens)[3].type, TokenType::kString);
  EXPECT_EQ((*tokens)[3].text, "o'brien");
}

TEST(LexerTest, TwoCharOperators) {
  auto tokens = Lex("a <> b <= c >= d != e");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[1].IsSymbol("<>"));
  EXPECT_TRUE((*tokens)[3].IsSymbol("<="));
  EXPECT_TRUE((*tokens)[5].IsSymbol(">="));
  EXPECT_TRUE((*tokens)[7].IsSymbol("<>"));  // != normalized
}

TEST(LexerTest, UnterminatedStringIsError) {
  EXPECT_TRUE(Lex("select 'oops").status().IsInvalidArgument());
}

TEST(LexerTest, StrayCharacterIsError) {
  EXPECT_TRUE(Lex("select @foo").status().IsInvalidArgument());
}

TEST(LexerTest, EndTokenAlwaysPresent) {
  auto tokens = Lex("");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_EQ((*tokens)[0].type, TokenType::kEnd);
}

// ---------- parser ----------

TEST(ParserTest, MinimalSelect) {
  auto q = Parse("SELECT * FROM lineitem");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->select_list.size(), 1u);
  EXPECT_TRUE(q->select_list[0].is_star);
  ASSERT_EQ(q->from.size(), 1u);
  EXPECT_EQ(q->from[0].table, "lineitem");
  EXPECT_TRUE(q->where.empty());
}

TEST(ParserTest, FullQueryShape) {
  auto q = Parse(
      "SELECT s.a, SUM(s.b), COUNT(*) FROM sales s, dates d "
      "WHERE s.date_id = d.id AND s.qty > 10 AND d.year BETWEEN 1999 AND 2001 "
      "AND s.region IN (1, 2, 3) AND s.note LIKE '%promo%' "
      "GROUP BY s.a ORDER BY s.a LIMIT 100");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select_list.size(), 3u);
  EXPECT_EQ(q->select_list[1].agg, AggFunc::kSum);
  EXPECT_TRUE(q->select_list[2].is_star);
  EXPECT_EQ(q->select_list[2].agg, AggFunc::kCount);
  ASSERT_EQ(q->from.size(), 2u);
  EXPECT_EQ(q->from[0].alias, "s");
  ASSERT_EQ(q->where.size(), 5u);
  EXPECT_EQ(q->where[0].kind, Predicate::Kind::kJoin);
  EXPECT_EQ(q->where[1].op, CompareOp::kGt);
  EXPECT_EQ(q->where[2].op, CompareOp::kBetween);
  ASSERT_EQ(q->where[3].values.size(), 3u);
  EXPECT_EQ(q->where[4].op, CompareOp::kLike);
  ASSERT_EQ(q->group_by.size(), 1u);
  EXPECT_EQ(q->limit, 100);
}

TEST(ParserTest, AsAliasAndBareAlias) {
  auto q = Parse("SELECT a FROM t AS x, u y");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->from[0].alias, "x");
  EXPECT_EQ(q->from[1].alias, "y");
  EXPECT_EQ(q->from[1].effective_name(), "y");
}

TEST(ParserTest, DistinctFlag) {
  auto q = Parse("SELECT DISTINCT c FROM t");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->distinct);
}

TEST(ParserTest, JoinMustBeEquality) {
  EXPECT_TRUE(Parse("SELECT * FROM a, b WHERE a.x < b.y")
                  .status()
                  .IsInvalidArgument());
}

TEST(ParserTest, SyntaxErrorsAnnotated) {
  auto st = Parse("SELECT FROM t").status();
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("offset"), std::string::npos);
  EXPECT_TRUE(Parse("SELECT a").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("SELECT a FROM t WHERE").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("SELECT a FROM t LIMIT 'x'").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("SELECT a FROM t extra junk ho")
                  .status()
                  .IsInvalidArgument());
}

TEST(ParserTest, TrailingSemicolonAccepted) {
  EXPECT_TRUE(Parse("SELECT a FROM t;").ok());
}

// ---------- printer round-trip ----------

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, PrintThenParseIsIdentity) {
  auto q1 = Parse(GetParam());
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  const std::string printed = Print(*q1);
  auto q2 = Parse(printed);
  ASSERT_TRUE(q2.ok()) << "printed: " << printed << " -> "
                       << q2.status().ToString();
  EXPECT_EQ(Print(*q2), printed);  // fixed point after one round
}

INSTANTIATE_TEST_SUITE_P(
    Queries, RoundTripTest,
    ::testing::Values(
        "SELECT * FROM t",
        "SELECT a, b FROM t WHERE a = 5",
        "SELECT DISTINCT a FROM t ORDER BY a",
        "SELECT t.a, SUM(t.b) FROM t GROUP BY t.a",
        "SELECT a FROM t WHERE a BETWEEN 1 AND 10 LIMIT 5",
        "SELECT a FROM t WHERE b IN (1, 2, 3) AND c LIKE '%x%'",
        "SELECT x.a, COUNT(*) FROM t x, u y WHERE x.id = y.id AND x.v > 1.5 "
        "GROUP BY x.a ORDER BY x.a LIMIT 10",
        "SELECT MIN(a), MAX(b), AVG(c) FROM t WHERE d <> 0"));

// ---------- AST helpers ----------

TEST(AstTest, HasAggregationAndPredicateFilters) {
  auto q = Parse(
      "SELECT s.a, SUM(s.b) FROM sales s, dates d "
      "WHERE s.did = d.id AND s.qty > 10 AND d.year = 2000 GROUP BY s.a");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->HasAggregation());
  EXPECT_EQ(q->JoinPredicates().size(), 1u);
  EXPECT_EQ(q->LocalPredicates("s").size(), 1u);
  EXPECT_EQ(q->LocalPredicates("d").size(), 1u);
  EXPECT_EQ(q->LocalPredicates("zzz").size(), 0u);
}

TEST(AstTest, LiteralPrinting) {
  EXPECT_EQ(Literal::Number(42).ToString(), "42");
  EXPECT_EQ(Literal::Number(2.5).ToString(), "2.5");
  EXPECT_EQ(Literal::String("abc").ToString(), "'abc'");
}

TEST(AstTest, PredicateTrueSelectivityDefaultsUnknown) {
  auto q = Parse("SELECT a FROM t WHERE a = 1");
  ASSERT_TRUE(q.ok());
  EXPECT_LT(q->where[0].true_selectivity, 0.0);
}

}  // namespace
}  // namespace wmp::sql
