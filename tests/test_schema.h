#ifndef WMP_TESTS_TEST_SCHEMA_H_
#define WMP_TESTS_TEST_SCHEMA_H_

// Shared miniature star schema for planner/engine/core tests:
// a fact table `sales` joined to dimensions `customer` and `dates`.

#include "catalog/catalog.h"

namespace wmp::testing_support {

inline catalog::Catalog MakeStarCatalog() {
  using catalog::Column;
  using catalog::ColumnType;
  catalog::Catalog cat;

  catalog::TableDef sales("sales", 1000000);
  EXPECT_TRUE(sales
                  .AddColumn(Column("s_id", ColumnType::kBigInt,
                                    {.ndv = 1000000, .min_value = 1,
                                     .max_value = 1000000}))
                  .ok());
  EXPECT_TRUE(sales
                  .AddColumn(Column("s_cust", ColumnType::kInt,
                                    {.ndv = 50000, .min_value = 1,
                                     .max_value = 50000, .zipf_skew = 0.9}))
                  .ok());
  EXPECT_TRUE(sales
                  .AddColumn(Column("s_date", ColumnType::kInt,
                                    {.ndv = 2000, .min_value = 1,
                                     .max_value = 2000, .zipf_skew = 0.4}))
                  .ok());
  EXPECT_TRUE(sales
                  .AddColumn(Column("s_qty", ColumnType::kInt,
                                    {.ndv = 100, .min_value = 1,
                                     .max_value = 100, .zipf_skew = 0.6}))
                  .ok());
  EXPECT_TRUE(sales
                  .AddColumn(Column("s_price", ColumnType::kDouble,
                                    {.ndv = 10000, .min_value = 0,
                                     .max_value = 10000}))
                  .ok());
  EXPECT_TRUE(sales.AddIndex("s_id", /*unique=*/true).ok());
  EXPECT_TRUE(sales.AddIndex("s_date").ok());
  EXPECT_TRUE(
      sales.AddForeignKey({"s_cust", "customer", "c_id", 2.5}).ok());
  EXPECT_TRUE(sales.AddForeignKey({"s_date", "dates", "d_id", 1.2}).ok());
  EXPECT_TRUE(sales.AddCorrelation("s_qty", "s_price", 0.8).ok());

  catalog::TableDef customer("customer", 50000);
  EXPECT_TRUE(customer
                  .AddColumn(Column("c_id", ColumnType::kInt,
                                    {.ndv = 50000, .min_value = 1,
                                     .max_value = 50000}))
                  .ok());
  EXPECT_TRUE(customer
                  .AddColumn(Column("c_region", ColumnType::kInt,
                                    {.ndv = 25, .min_value = 1,
                                     .max_value = 25, .zipf_skew = 0.7}))
                  .ok());
  EXPECT_TRUE(customer.AddColumn(Column("c_name", ColumnType::kString,
                                        {.ndv = 50000})).ok());
  EXPECT_TRUE(customer.AddIndex("c_id", /*unique=*/true).ok());

  catalog::TableDef dates("dates", 2000);
  EXPECT_TRUE(dates
                  .AddColumn(Column("d_id", ColumnType::kInt,
                                    {.ndv = 2000, .min_value = 1,
                                     .max_value = 2000}))
                  .ok());
  EXPECT_TRUE(dates
                  .AddColumn(Column("d_year", ColumnType::kInt,
                                    {.ndv = 6, .min_value = 1998,
                                     .max_value = 2004}))
                  .ok());
  EXPECT_TRUE(dates.AddIndex("d_id", /*unique=*/true).ok());

  EXPECT_TRUE(cat.AddTable(std::move(sales)).ok());
  EXPECT_TRUE(cat.AddTable(std::move(customer)).ok());
  EXPECT_TRUE(cat.AddTable(std::move(dates)).ok());
  return cat;
}

}  // namespace wmp::testing_support

#endif  // WMP_TESTS_TEST_SCHEMA_H_
