// Tests for the batched, parallel inference path: util/parallel.h, the
// vectorized Regressor::Predict overrides, TemplateModel::AssignBatch,
// batched histogram construction, LearnedWmpModel::PredictWorkloads, and
// the engine::BatchScorer session API. The core property throughout:
// batch and scalar paths agree to within 1e-9.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/featurizer.h"
#include "core/histogram.h"
#include "core/learned_wmp.h"
#include "core/template_learner.h"
#include "engine/batch_scorer.h"
#include "engine/histogram_cache.h"
#include "ml/regressor.h"
#include "util/parallel.h"
#include "util/random.h"
#include "workloads/dataset.h"

namespace wmp {
namespace {

// ---------- util/parallel.h ----------

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  util::ParallelFor(kN, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, HandlesEmptyAndTinyRanges) {
  int calls = 0;
  util::ParallelFor(0, 1, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // n <= grain runs serially on the caller in one chunk.
  util::ParallelFor(5, 100, [&](size_t begin, size_t end) {
    ++calls;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 5u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, NestedCallsSerializeWithoutDeadlock) {
  std::atomic<size_t> total{0};
  util::ParallelFor(64, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      // Nested: must complete inline on the current thread.
      util::ParallelFor(8, 1, [&](size_t b2, size_t e2) {
        total.fetch_add(e2 - b2, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(total.load(), 64u * 8u);
}

TEST(ParallelForTest, ExplicitThreadCountAndDefaults) {
  EXPECT_GE(util::HardwareThreads(), 1u);
  util::SetDefaultParallelism(2);
  EXPECT_EQ(util::DefaultParallelism(), 2u);
  util::SetDefaultParallelism(0);
  EXPECT_EQ(util::DefaultParallelism(), util::HardwareThreads());
  std::atomic<size_t> count{0};
  util::ParallelFor(
      1000, 1,
      [&](size_t begin, size_t end) {
        count.fetch_add(end - begin, std::memory_order_relaxed);
      },
      /*num_threads=*/3);
  EXPECT_EQ(count.load(), 1000u);
}

// ---------- Regressor batch-vs-scalar equivalence ----------

void MakeRegressionData(size_t n, size_t d, uint64_t seed, ml::Matrix* x,
                        std::vector<double>* y) {
  Rng rng(seed);
  *x = ml::Matrix(n, d);
  y->resize(n);
  for (size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (size_t c = 0; c < d; ++c) {
      x->At(i, c) = rng.UniformDouble(-3, 3);
      acc += (c % 2 == 0 ? 1.5 : -0.7) * x->At(i, c);
    }
    (*y)[i] = acc + std::sin(x->At(i, 0)) + rng.Normal(0, 0.1);
  }
}

class BatchEquivalence : public ::testing::TestWithParam<ml::RegressorKind> {};

TEST_P(BatchEquivalence, PredictMatchesPredictOneLoop) {
  ml::Matrix x_train, x_test;
  std::vector<double> y_train, y_test;
  MakeRegressionData(300, 4, 11, &x_train, &y_train);
  MakeRegressionData(257, 4, 12, &x_test, &y_test);

  auto model = ml::CreateRegressor(GetParam(), 5);
  ASSERT_TRUE(model->Fit(x_train, y_train).ok());

  auto batch = model->Predict(x_test);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), x_test.rows());
  for (size_t i = 0; i < x_test.rows(); ++i) {
    auto one = model->PredictOne(x_test.RowVec(i));
    ASSERT_TRUE(one.ok());
    EXPECT_NEAR((*batch)[i], *one, 1e-9)
        << model->Name() << " row " << i;
  }
}

TEST_P(BatchEquivalence, PredictErrorsBeforeFit) {
  auto model = ml::CreateRegressor(GetParam());
  ml::Matrix x(3, 2);
  EXPECT_FALSE(model->Predict(x).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, BatchEquivalence,
    ::testing::Values(ml::RegressorKind::kRidge,
                      ml::RegressorKind::kDecisionTree,
                      ml::RegressorKind::kRandomForest,
                      ml::RegressorKind::kGbt, ml::RegressorKind::kMlp),
    [](const ::testing::TestParamInfo<ml::RegressorKind>& info) {
      return ml::RegressorKindName(info.param);
    });

// ---------- Histogram matrix ----------

TEST(HistogramMatrixTest, MatchesPerWorkloadBuildHistogram) {
  const std::vector<int> ids = {0, 2, 1, 2, 2, 0, 3, 3, 1, 0};
  const std::vector<size_t> offsets = {0, 4, 4, 10};  // middle workload empty
  auto h = core::BuildHistogramMatrix(ids, offsets, 4);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  ASSERT_EQ(h->rows(), 3u);
  ASSERT_EQ(h->cols(), 4u);
  for (size_t w = 0; w + 1 < offsets.size(); ++w) {
    std::vector<int> slice(ids.begin() + static_cast<ptrdiff_t>(offsets[w]),
                           ids.begin() + static_cast<ptrdiff_t>(offsets[w + 1]));
    auto expected = core::BuildHistogram(slice, 4);
    ASSERT_TRUE(expected.ok());
    for (size_t c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(h->At(w, c), (*expected)[c]) << "w=" << w << " c=" << c;
    }
  }
}

TEST(HistogramMatrixTest, BuildHistogramRowsScattersAndValidates) {
  const std::vector<int> ids = {0, 2, 1, 2};
  const std::vector<size_t> offsets = {0, 2, 4};
  ml::Matrix out(4, 3);
  out.At(1, 0) = 99.0;  // must stay untouched (not a target row)
  // Scatter workload 0 -> row 3, workload 1 -> row 0.
  ASSERT_TRUE(core::BuildHistogramRows(ids, offsets, 3, {3, 0}, &out).ok());
  EXPECT_DOUBLE_EQ(out.At(3, 0), 1.0);
  EXPECT_DOUBLE_EQ(out.At(3, 2), 1.0);
  EXPECT_DOUBLE_EQ(out.At(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(out.At(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(out.At(1, 0), 99.0);
  // Target rows are filled concurrently: duplicates and out-of-range rows
  // are rejected, as are row_map/offsets size mismatches.
  EXPECT_FALSE(core::BuildHistogramRows(ids, offsets, 3, {2, 2}, &out).ok());
  EXPECT_FALSE(core::BuildHistogramRows(ids, offsets, 3, {9, 0}, &out).ok());
  EXPECT_FALSE(core::BuildHistogramRows(ids, offsets, 3, {0}, &out).ok());
  ml::Matrix narrow(4, 2);
  EXPECT_FALSE(core::BuildHistogramRows(ids, offsets, 3, {3, 0}, &narrow).ok());
}

TEST(HistogramMatrixTest, RejectsBadIdsAndOffsets) {
  EXPECT_FALSE(core::BuildHistogramMatrix({0, 7}, {0, 2}, 4).ok());
  EXPECT_FALSE(core::BuildHistogramMatrix({0, -1}, {0, 2}, 4).ok());
  EXPECT_FALSE(core::BuildHistogramMatrix({0, 1}, {0, 1}, 4).ok());   // short
  EXPECT_FALSE(core::BuildHistogramMatrix({0, 1}, {2, 0, 2}, 4).ok());
  EXPECT_FALSE(core::BuildHistogramMatrix({}, {}, 4).ok());
}

// ---------- End-to-end batch pipeline on a generated dataset ----------

class BatchPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workloads::DatasetOptions opt;
    opt.num_queries = 400;
    opt.seed = 33;
    auto d = workloads::BuildDataset(workloads::Benchmark::kTpcc, opt);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    dataset_ = new workloads::Dataset(std::move(*d));
    indices_ = new std::vector<uint32_t>(
        core::AllIndices(dataset_->records.size()));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
    delete indices_;
    indices_ = nullptr;
  }

  static core::LearnedWmpModel TrainSmall(
      ml::RegressorKind kind, bool variable_length = false,
      core::TemplateMethod method = core::TemplateMethod::kPlanKMeans) {
    core::LearnedWmpOptions opt;
    opt.templates.method = method;
    opt.templates.num_templates = 8;
    opt.regressor = kind;
    opt.variable_length = variable_length;
    auto model = core::LearnedWmpModel::Train(dataset_->records, *indices_,
                                              *dataset_->generator, opt);
    EXPECT_TRUE(model.ok()) << model.status().ToString();
    return std::move(*model);
  }

  static workloads::Dataset* dataset_;
  static std::vector<uint32_t>* indices_;
};

workloads::Dataset* BatchPipelineTest::dataset_ = nullptr;
std::vector<uint32_t>* BatchPipelineTest::indices_ = nullptr;

TEST_F(BatchPipelineTest, AssignBatchMatchesAssignForEveryMethod) {
  for (core::TemplateMethod method :
       {core::TemplateMethod::kPlanKMeans, core::TemplateMethod::kPlanDbscan,
        core::TemplateMethod::kRuleBased}) {
    core::TemplateLearnerOptions opt;
    opt.method = method;
    opt.num_templates = 8;
    opt.dbscan = {.eps = 2.5, .min_points = 4};
    auto model = core::TemplateModel::Learn(dataset_->records, *indices_,
                                            *dataset_->generator, opt);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    auto batch = model->AssignBatch(dataset_->records, *indices_);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_EQ(batch->size(), indices_->size());
    for (size_t i = 0; i < indices_->size(); ++i) {
      auto one = model->Assign(dataset_->records[(*indices_)[i]]);
      ASSERT_TRUE(one.ok());
      EXPECT_EQ((*batch)[i], *one)
          << core::TemplateMethodName(method) << " row " << i;
    }
  }
}

TEST_F(BatchPipelineTest, AssignBatchOnEmptyAndUntrained) {
  core::TemplateModel untrained;
  EXPECT_FALSE(untrained.AssignBatch(dataset_->records, *indices_).ok());
  auto model = TrainSmall(ml::RegressorKind::kRidge);
  auto empty = model.templates().AssignBatch(dataset_->records, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST_F(BatchPipelineTest, PredictWorkloadsMatchesScalarLoopAllKinds) {
  core::WorkloadSetOptions wopt;
  wopt.batch_size = 10;
  wopt.seed = 9;
  const auto batches =
      core::BuildWorkloads(dataset_->records, *indices_, wopt);
  ASSERT_FALSE(batches.empty());
  for (ml::RegressorKind kind : ml::AllRegressorKinds()) {
    const core::LearnedWmpModel model = TrainSmall(kind);
    auto batch = model.PredictWorkloads(dataset_->records, batches);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_EQ(batch->size(), batches.size());
    for (size_t b = 0; b < batches.size(); ++b) {
      auto one =
          model.PredictWorkload(dataset_->records, batches[b].query_indices);
      ASSERT_TRUE(one.ok());
      EXPECT_NEAR((*batch)[b], *one, 1e-9)
          << ml::RegressorKindName(kind) << " workload " << b;
    }
  }
}

// End-to-end gate for the pruned centroid path: the same trained model
// must produce bitwise-identical template ids and predictions whether
// AssignBatch routes through the CentroidIndex (default) or the
// NearestCentroids reference scan — EXPECT_EQ on doubles, not NEAR.
TEST_F(BatchPipelineTest, PrunedAssignBitwiseEqualsReferenceEndToEnd) {
  core::WorkloadSetOptions wopt;
  wopt.batch_size = 10;
  wopt.seed = 21;
  const auto batches =
      core::BuildWorkloads(dataset_->records, *indices_, wopt);
  ASSERT_FALSE(batches.empty());
  for (core::TemplateMethod method :
       {core::TemplateMethod::kPlanKMeans, core::TemplateMethod::kPlanDbscan}) {
    core::LearnedWmpModel model =
        TrainSmall(ml::RegressorKind::kGbt, /*variable_length=*/false, method);
    ASSERT_TRUE(model.templates().pruned_assign());

    auto pruned_ids =
        model.templates().AssignBatch(dataset_->records, *indices_);
    ASSERT_TRUE(pruned_ids.ok()) << pruned_ids.status().ToString();
    auto pruned_pred = model.PredictWorkloads(dataset_->records, batches);
    ASSERT_TRUE(pruned_pred.ok()) << pruned_pred.status().ToString();
    const auto stats = model.templates().assign_stats();
    EXPECT_GE(stats.rows, indices_->size())
        << core::TemplateMethodName(method);
    EXPECT_GT(stats.bound_skips + stats.early_exits, 0u)
        << core::TemplateMethodName(method);

    model.mutable_templates()->set_pruned_assign(false);
    auto ref_ids = model.templates().AssignBatch(dataset_->records, *indices_);
    ASSERT_TRUE(ref_ids.ok()) << ref_ids.status().ToString();
    auto ref_pred = model.PredictWorkloads(dataset_->records, batches);
    ASSERT_TRUE(ref_pred.ok()) << ref_pred.status().ToString();

    ASSERT_EQ(pruned_ids->size(), ref_ids->size());
    for (size_t i = 0; i < ref_ids->size(); ++i) {
      ASSERT_EQ((*pruned_ids)[i], (*ref_ids)[i])
          << core::TemplateMethodName(method) << " row " << i;
    }
    ASSERT_EQ(pruned_pred->size(), ref_pred->size());
    for (size_t b = 0; b < ref_pred->size(); ++b) {
      EXPECT_EQ((*pruned_pred)[b], (*ref_pred)[b])
          << core::TemplateMethodName(method) << " workload " << b;
    }
  }
}

TEST_F(BatchPipelineTest, PredictWorkloadsVariableLengthMatchesScalar) {
  const core::LearnedWmpModel model =
      TrainSmall(ml::RegressorKind::kGbt, /*variable_length=*/true);
  // Mixed workload sizes: variable-length mode rescales by actual size.
  std::vector<core::WorkloadBatch> batches;
  size_t next = 0;
  for (int size : {3, 10, 25, 7, 1}) {
    core::WorkloadBatch b;
    for (int q = 0; q < size; ++q) {
      b.query_indices.push_back(
          static_cast<uint32_t>((next++) % dataset_->records.size()));
    }
    batches.push_back(std::move(b));
  }
  auto batch = model.PredictWorkloads(dataset_->records, batches);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  for (size_t b = 0; b < batches.size(); ++b) {
    auto one =
        model.PredictWorkload(dataset_->records, batches[b].query_indices);
    ASSERT_TRUE(one.ok());
    EXPECT_NEAR((*batch)[b], *one, 1e-9) << "workload " << b;
  }
}

TEST_F(BatchPipelineTest, PredictWorkloadsOnEmptyAndUntrained) {
  const core::LearnedWmpModel model = TrainSmall(ml::RegressorKind::kRidge);
  auto empty = model.PredictWorkloads(dataset_->records, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  core::LearnedWmpModel untrained;
  EXPECT_FALSE(untrained.PredictWorkloads(dataset_->records, {}).ok());
}

// ---------- BatchScorer ----------

TEST_F(BatchPipelineTest, BatchScorerMatchesScalarLoopAndReportsStats) {
  const core::LearnedWmpModel model = TrainSmall(ml::RegressorKind::kGbt);
  engine::BatchScorer scorer(&model);
  auto scores = scorer.ScoreLog(dataset_->records, 10);
  ASSERT_TRUE(scores.ok()) << scores.status().ToString();
  EXPECT_EQ(scores->predictions.size(), 40u);
  // Stats arrive by value with the result...
  EXPECT_EQ(scores->stats.num_workloads, 40u);
  EXPECT_EQ(scores->stats.num_queries, 400u);
  EXPECT_GT(scores->stats.queries_per_sec, 0.0);
  EXPECT_EQ(scores->stats.cache_hits, 0u);  // no cache attached
  EXPECT_EQ(scores->stats.cache_misses, 0u);
  // ...and the legacy last-call getter still mirrors them.
  EXPECT_EQ(scorer.stats().num_workloads, 40u);
  EXPECT_EQ(scorer.stats().num_queries, 400u);

  const auto batches = engine::MakeConsecutiveBatches(400, 10);
  for (size_t b = 0; b < batches.size(); ++b) {
    auto one =
        model.PredictWorkload(dataset_->records, batches[b].query_indices);
    ASSERT_TRUE(one.ok());
    EXPECT_NEAR(scores->predictions[b], *one, 1e-9);
  }
}

TEST_F(BatchPipelineTest, BatchScorerThreadOptionsAgree) {
  const core::LearnedWmpModel model = TrainSmall(ml::RegressorKind::kRidge);
  engine::BatchScorerOptions single;
  single.num_threads = 1;
  engine::BatchScorerOptions many;
  many.num_threads = static_cast<int>(util::HardwareThreads());
  engine::BatchScorer s1(&model, single), sn(&model, many);
  auto p1 = s1.ScoreLog(dataset_->records, 25);
  auto pn = sn.ScoreLog(dataset_->records, 25);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(pn.ok());
  ASSERT_EQ(p1->predictions.size(), pn->predictions.size());
  for (size_t i = 0; i < p1->predictions.size(); ++i) {
    EXPECT_NEAR(p1->predictions[i], pn->predictions[i], 1e-9) << i;
  }
}

// One scorer shared by concurrent threads: ScoreWorkloads is const and
// returns stats by value, so per-call numbers never interleave.
TEST_F(BatchPipelineTest, BatchScorerIsReentrant) {
  const core::LearnedWmpModel model = TrainSmall(ml::RegressorKind::kRidge);
  const engine::BatchScorer scorer(&model);
  auto baseline = scorer.ScoreLog(dataset_->records, 10);
  ASSERT_TRUE(baseline.ok());

  constexpr int kThreads = 4, kReps = 5;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    // Distinct batch sizes per thread so concurrent calls produce
    // different stats — interleaving would be visible.
    const int batch_size = 10 + t * 5;
    threads.emplace_back([&, batch_size] {
      for (int r = 0; r < kReps; ++r) {
        auto res = scorer.ScoreLog(dataset_->records, batch_size);
        if (!res.ok() ||
            res->stats.num_workloads != res->predictions.size() ||
            res->stats.num_queries != 400u) {
          mismatches.fetch_add(1);
          continue;
        }
        if (batch_size == 10) {
          for (size_t i = 0; i < res->predictions.size(); ++i) {
            if (res->predictions[i] != baseline->predictions[i]) {
              mismatches.fetch_add(1);
            }
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// With a histogram cache attached, a repeated scoring pass hits for every
// workload and reproduces the cold pass bitwise.
TEST_F(BatchPipelineTest, BatchScorerCacheHitsAreBitwiseIdentical) {
  const core::LearnedWmpModel model = TrainSmall(ml::RegressorKind::kGbt);
  engine::HistogramCache cache({.capacity = 256, .num_shards = 4});
  engine::BatchScorerOptions opt;
  opt.cache = &cache;
  engine::BatchScorer scorer(&model, opt);

  auto cold = scorer.ScoreLog(dataset_->records, 10);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(cold->stats.cache_hits, 0u);
  EXPECT_EQ(cold->stats.cache_misses, 40u);

  auto warm = scorer.ScoreLog(dataset_->records, 10);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->stats.cache_hits, 40u);
  EXPECT_EQ(warm->stats.cache_misses, 0u);
  ASSERT_EQ(warm->predictions.size(), cold->predictions.size());
  for (size_t i = 0; i < warm->predictions.size(); ++i) {
    EXPECT_EQ(warm->predictions[i], cold->predictions[i]) << i;  // bitwise
  }

  // An uncached scorer over the same model agrees bitwise with the cold
  // pass too: the cache-aware front half is arithmetically the same path.
  engine::BatchScorer plain(&model);
  auto uncached = plain.ScoreLog(dataset_->records, 10);
  ASSERT_TRUE(uncached.ok());
  for (size_t i = 0; i < uncached->predictions.size(); ++i) {
    EXPECT_EQ(uncached->predictions[i], cold->predictions[i]) << i;
  }
}

TEST(MakeConsecutiveBatchesTest, ChopsWithPartialTail) {
  auto batches = engine::MakeConsecutiveBatches(25, 10);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].query_indices.size(), 10u);
  EXPECT_EQ(batches[2].query_indices.size(), 5u);
  EXPECT_EQ(batches[2].query_indices.front(), 20u);
  EXPECT_TRUE(engine::MakeConsecutiveBatches(0, 10).empty());
  EXPECT_TRUE(engine::MakeConsecutiveBatches(10, 0).empty());
}

// ---------- Persistence + batch ----------

TEST_F(BatchPipelineTest, LoadFromFilePredictsInBatch) {
  const core::LearnedWmpModel model = TrainSmall(ml::RegressorKind::kGbt);
  const std::string path = ::testing::TempDir() + "/batch_model.wmp";
  ASSERT_TRUE(model.SaveToFile(path).ok());

  auto scorer = engine::BatchScorer::FromFile(path);
  ASSERT_TRUE(scorer.ok()) << scorer.status().ToString();
  auto restored_scores = scorer->ScoreLog(dataset_->records, 10);
  ASSERT_TRUE(restored_scores.ok()) << restored_scores.status().ToString();

  // The restored model's batch predictions match the original model's
  // scalar loop: persistence round-trip + batch path compose.
  const auto batches = engine::MakeConsecutiveBatches(400, 10);
  for (size_t b = 0; b < batches.size(); ++b) {
    auto one =
        model.PredictWorkload(dataset_->records, batches[b].query_indices);
    ASSERT_TRUE(one.ok());
    EXPECT_NEAR(restored_scores->predictions[b], *one, 1e-9)
        << "workload " << b;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wmp
