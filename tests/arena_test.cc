// Unit tests for the bump arena, ArenaVec, and the global string interner.

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/arena.h"
#include "util/interner.h"

namespace wmp::util {
namespace {

TEST(ArenaTest, AlignmentRespected) {
  Arena arena(512);
  for (size_t align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    void* p = arena.Allocate(3, align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u) << align;
  }
}

TEST(ArenaTest, ResetIsGrowOnly) {
  Arena arena(256);
  void* first = arena.Allocate(64, 8);
  // Fill past several chunk growths.
  for (int i = 0; i < 100; ++i) arena.Allocate(128, 8);
  const size_t reserved = arena.bytes_reserved();
  EXPECT_GT(reserved, 256u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  // Same storage comes back: no new chunks, and the first allocation lands
  // on the same address.
  void* again = arena.Allocate(64, 8);
  EXPECT_EQ(again, first);
  for (int i = 0; i < 100; ++i) arena.Allocate(128, 8);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaTest, OversizedAllocationGetsOwnChunk) {
  Arena arena(256);
  char* big = arena.AllocateArray<char>(1 << 20);
  big[0] = 'x';
  big[(1 << 20) - 1] = 'y';
  EXPECT_GE(arena.bytes_reserved(), size_t{1} << 20);
}

TEST(ArenaTest, NewConstructsObjects) {
  struct Node {
    int a;
    double b;
  };
  Arena arena;
  Node* n = arena.New<Node>(Node{7, 2.5});
  EXPECT_EQ(n->a, 7);
  EXPECT_EQ(n->b, 2.5);
}

TEST(ArenaTest, CopyStringSurvivesSource) {
  Arena arena;
  std::string_view v;
  {
    std::string s = "transient-identifier-text";
    v = arena.CopyString(s);
  }
  EXPECT_EQ(v, "transient-identifier-text");
  EXPECT_EQ(arena.CopyString("").data(), nullptr);
}

TEST(ArenaTest, MallocModeAllocatesAndResets) {
  Arena arena(256, Arena::Mode::kMalloc);
  EXPECT_EQ(arena.mode(), Arena::Mode::kMalloc);
  for (int i = 0; i < 50; ++i) {
    int* p = arena.New<int>(i);
    EXPECT_EQ(*p, i);
  }
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  arena.Reset();  // frees; ASan would flag any use-after or leak
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  int* p = arena.New<int>(42);
  EXPECT_EQ(*p, 42);
}

TEST(ArenaVecTest, GrowthPreservesContents) {
  Arena arena;
  ArenaVec<int> v(&arena);
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), 1000u);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(v[i], i);
  EXPECT_EQ(v.front(), 0);
  EXPECT_EQ(v.back(), 999);
  int sum = 0;
  for (int x : v) sum += x;
  EXPECT_EQ(sum, 499500);
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back(5);
  EXPECT_EQ(v[0], 5);
}

TEST(ArenaVecTest, ReserveThenFill) {
  Arena arena;
  ArenaVec<const char*> v;
  v.set_arena(&arena);
  v.reserve(16);
  const size_t before = arena.bytes_allocated();
  for (int i = 0; i < 16; ++i) v.push_back("x");
  EXPECT_EQ(arena.bytes_allocated(), before);  // no regrowth
}

TEST(InternerTest, CanonicalPointerReturned) {
  const std::string_view a = Intern("store_sales");
  std::string copy = "store_";
  copy += "sales";  // different buffer, same contents
  const std::string_view b = Intern(copy);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.data(), b.data());  // same canonical storage
  EXPECT_EQ(Intern("").size(), 0u);
}

TEST(InternerTest, ConcurrentInterningConverges) {
  constexpr int kStrings = 200;
  std::vector<std::thread> threads;
  std::vector<std::vector<std::string_view>> views(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t, &views] {
      for (int i = 0; i < kStrings; ++i) {
        views[t].push_back(
            Intern("col_" + std::to_string(i % 50) + "_shared"));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < 4; ++t) {
    for (int i = 0; i < kStrings; ++i) {
      ASSERT_EQ(views[0][i % kStrings].data(), views[t][i].data());
    }
  }
}

}  // namespace
}  // namespace wmp::util
