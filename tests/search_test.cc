// Unit tests for train/test splitting, k-fold indices, and randomized search.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ml/ridge.h"
#include "ml/search.h"
#include "util/random.h"

namespace wmp::ml {
namespace {

TEST(SplitTest, TrainTestPartitionIsExactAndDisjoint) {
  IndexSplit split = TrainTestSplitIndices(100, 0.2, 7);
  EXPECT_EQ(split.test.size(), 20u);
  EXPECT_EQ(split.train.size(), 80u);
  std::set<uint32_t> all(split.train.begin(), split.train.end());
  all.insert(split.test.begin(), split.test.end());
  EXPECT_EQ(all.size(), 100u);
}

TEST(SplitTest, DeterministicPerSeed) {
  IndexSplit a = TrainTestSplitIndices(50, 0.3, 11);
  IndexSplit b = TrainTestSplitIndices(50, 0.3, 11);
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.test, b.test);
  IndexSplit c = TrainTestSplitIndices(50, 0.3, 12);
  EXPECT_NE(a.test, c.test);
}

TEST(SplitTest, AtLeastOneTestRow) {
  IndexSplit split = TrainTestSplitIndices(10, 0.001, 1);
  EXPECT_GE(split.test.size(), 1u);
}

TEST(KFoldTest, FoldsCoverEveryRowExactlyOnce) {
  auto folds = KFoldIndices(53, 5, 3);
  ASSERT_EQ(folds.size(), 5u);
  std::vector<int> seen(53, 0);
  for (const auto& f : folds) {
    for (uint32_t i : f.test) ++seen[i];
    EXPECT_EQ(f.train.size() + f.test.size(), 53u);
  }
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST(TakeRowsTest, SelectsRequestedRows) {
  auto x = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}}).value();
  std::vector<double> y{10, 20, 30};
  Matrix xs;
  std::vector<double> ys;
  TakeRows(x, y, {2, 0}, &xs, &ys);
  EXPECT_EQ(xs.RowVec(0), (std::vector<double>{5, 6}));
  EXPECT_EQ(xs.RowVec(1), (std::vector<double>{1, 2}));
  EXPECT_EQ(ys, (std::vector<double>{30, 10}));
}

TEST(RandomizedSearchTest, PicksBetterRegularization) {
  // Very noisy target with few informative rows: huge alpha should lose to
  // a moderate one, and the search must identify the winner by validation
  // RMSE.
  Rng rng(5);
  Matrix x(200, 3);
  std::vector<double> y(200);
  for (size_t i = 0; i < 200; ++i) {
    for (size_t c = 0; c < 3; ++c) x.At(i, c) = rng.UniformDouble(-1, 1);
    y[i] = 4.0 * x.At(i, 0) + rng.Normal(0, 0.1);
  }
  std::vector<SearchCandidate> candidates;
  for (double alpha : {1e-4, 1.0, 1e6}) {
    candidates.push_back(
        {"alpha=" + std::to_string(alpha), [alpha] {
           return std::make_unique<RidgeRegressor>(RidgeOptions{.alpha = alpha});
         }});
  }
  auto outcome = RandomizedSearch(x, y, candidates, {.seed = 9});
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->rmse.size(), 3u);
  // The evaluated order equals candidate order when num_samples == 0.
  EXPECT_NE(outcome->evaluated[outcome->best_index], 2u);  // not alpha=1e6
  EXPECT_GT(outcome->rmse[2], outcome->best_rmse);
}

TEST(RandomizedSearchTest, SamplesSubset) {
  Rng rng(7);
  Matrix x(100, 2);
  std::vector<double> y(100);
  for (size_t i = 0; i < 100; ++i) {
    x.At(i, 0) = rng.UniformDouble();
    x.At(i, 1) = rng.UniformDouble();
    y[i] = x.At(i, 0);
  }
  std::vector<SearchCandidate> candidates;
  for (int i = 0; i < 10; ++i) {
    candidates.push_back({"c", [] {
                            return std::make_unique<RidgeRegressor>();
                          }});
  }
  auto outcome =
      RandomizedSearch(x, y, candidates, {.num_samples = 4, .seed = 3});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->rmse.size(), 4u);
  std::set<size_t> uniq(outcome->evaluated.begin(), outcome->evaluated.end());
  EXPECT_EQ(uniq.size(), 4u);  // sampled without replacement
}

TEST(RandomizedSearchTest, ErrorsOnEmptyCandidates) {
  Matrix x(10, 1);
  std::vector<double> y(10, 0.0);
  EXPECT_TRUE(RandomizedSearch(x, y, {}).status().IsInvalidArgument());
}

}  // namespace
}  // namespace wmp::ml
