// Chaos tests: the deterministic net::FaultInjector itself, the hardened
// clients under scripted faults (idempotent retries, the publish
// never-resend rule, read deadlines, per-request pipelined deadlines),
// the reactor under concurrent hostile connections, and the fleet
// router's commit-failure compensation — the scenario where a commit
// response is lost AFTER the node applied it, which the router must
// detect and roll back so the fleet never serves mixed epochs.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/featurizer.h"
#include "core/learned_wmp.h"
#include "engine/batch_scorer.h"
#include "engine/model_registry.h"
#include "engine/scoring_service.h"
#include "net/async_client.h"
#include "net/fault_inject.h"
#include "net/fleet.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/reactor_server.h"
#include "net/socket.h"
#include "net/wire_client.h"
#include "util/io.h"
#include "util/strings.h"
#include "workloads/dataset.h"

namespace wmp {
namespace {

class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workloads::DatasetOptions opt;
    opt.num_queries = 300;
    opt.seed = 71;
    auto d = workloads::BuildDataset(workloads::Benchmark::kTpcc, opt);
    ASSERT_TRUE(d.ok()) << d.status().ToString();
    dataset_ = new workloads::Dataset(std::move(*d));
    indices_ =
        new std::vector<uint32_t>(core::AllIndices(dataset_->records.size()));

    core::LearnedWmpOptions lopt;
    lopt.templates.num_templates = 8;
    lopt.regressor = ml::RegressorKind::kGbt;
    auto model = core::LearnedWmpModel::Train(dataset_->records, *indices_,
                                              *dataset_->generator, lopt);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    model_ = new core::LearnedWmpModel(std::move(*model));

    core::LearnedWmpOptions lopt2 = lopt;
    lopt2.regressor = ml::RegressorKind::kRidge;
    auto model2 = core::LearnedWmpModel::Train(dataset_->records, *indices_,
                                               *dataset_->generator, lopt2);
    ASSERT_TRUE(model2.ok()) << model2.status().ToString();
    model2_ = new core::LearnedWmpModel(std::move(*model2));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete indices_;
    delete model_;
    delete model2_;
    dataset_ = nullptr;
    indices_ = nullptr;
    model_ = nullptr;
    model2_ = nullptr;
  }

  static std::shared_ptr<const core::LearnedWmpModel> Borrow(
      const core::LearnedWmpModel* model) {
    return {std::shared_ptr<const void>(), model};
  }

  static std::string SocketAddress(const char* tag) {
    return StrFormat("unix:/tmp/wmp_chaos_test.%d.%s.sock",
                     static_cast<int>(::getpid()), tag);
  }

  static std::vector<double> Reference(const core::LearnedWmpModel* model,
                                       const std::vector<core::WorkloadBatch>&
                                           batches) {
    engine::BatchScorer scorer(model);
    auto want = scorer.ScoreWorkloads(dataset_->records, batches);
    EXPECT_TRUE(want.ok());
    return want->predictions;
  }

  static void ExpectCallBitwise(
      const Result<std::vector<Result<double>>>& got,
      const std::vector<double>& want) {
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->size(), want.size());
    for (size_t w = 0; w < want.size(); ++w) {
      ASSERT_TRUE((*got)[w].ok()) << (*got)[w].status().ToString();
      EXPECT_EQ(*(*got)[w], want[w]) << "w=" << w;
    }
  }

  static workloads::Dataset* dataset_;
  static std::vector<uint32_t>* indices_;
  static core::LearnedWmpModel* model_;
  static core::LearnedWmpModel* model2_;
};

workloads::Dataset* ChaosTest::dataset_ = nullptr;
std::vector<uint32_t>* ChaosTest::indices_ = nullptr;
core::LearnedWmpModel* ChaosTest::model_ = nullptr;
core::LearnedWmpModel* ChaosTest::model2_ = nullptr;

// ---------- FaultInjector determinism ----------

TEST(FaultInjectorTest, SameSeedReplaysTheExactFaultSequence) {
  // Two injectors with the same plan, driven in lockstep over separate
  // socketpairs, must agree op-for-op on every decision — the property
  // that makes a chaos test a test instead of a dice roll.
  net::FaultPlan plan;
  plan.seed = 97;
  plan.delay_prob = 0.2;
  plan.drop_prob = 0.2;
  plan.flip_prob = 0.1;
  plan.delay_ms = 1;
  net::FaultInjector a(plan);
  net::FaultInjector b(plan);

  int pair_a[2] = {-1, -1}, pair_b[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair_a), 0);
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair_b), 0);
  const char bytes[16] = "fifteen + zero.";
  for (int op = 0; op < 100; ++op) {
    Status sa = a.InjectedWrite(pair_a[0], bytes, sizeof(bytes));
    Status sb = b.InjectedWrite(pair_b[0], bytes, sizeof(bytes));
    ASSERT_EQ(sa.code(), sb.code()) << "op " << op;
    const net::FaultStats fa = a.stats();
    const net::FaultStats fb = b.stats();
    ASSERT_EQ(fa.delays, fb.delays) << "op " << op;
    ASSERT_EQ(fa.drops, fb.drops) << "op " << op;
    ASSERT_EQ(fa.bitflips, fb.bitflips) << "op " << op;
  }
  EXPECT_EQ(a.stats().ops, 100u);
  EXPECT_GT(a.stats().faults(), 0u) << "the mix should have fired by now";
  for (int fd : {pair_a[0], pair_a[1], pair_b[0], pair_b[1]}) ::close(fd);
}

TEST(FaultInjectorTest, ScriptedFaultsFireAtExactOpIndexesOnTargetedFds) {
  net::FaultPlan plan;
  plan.script.push_back({.op_index = 1, .kind = net::FaultKind::kDrop});
  plan.script.push_back({.op_index = 3, .kind = net::FaultKind::kReset});
  net::FaultInjector chaos(plan);

  int pair[2] = {-1, -1};
  int bystander[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, bystander), 0);
  chaos.TargetFd(pair[0]);

  const char payload[4] = {'w', 'm', 'p', '!'};
  // Untargeted fds do not advance the op counter or suffer faults.
  ASSERT_TRUE(chaos.InjectedWrite(bystander[0], payload, 4).ok());
  EXPECT_EQ(chaos.stats().ops, 0u);

  ASSERT_TRUE(chaos.InjectedWrite(pair[0], payload, 4).ok());  // op 0
  ASSERT_TRUE(chaos.InjectedWrite(pair[0], payload, 4).ok());  // op 1: drop
  EXPECT_EQ(chaos.stats().drops, 1u);
  ASSERT_TRUE(chaos.InjectedWrite(pair[0], payload, 4).ok());  // op 2
  Status reset = chaos.InjectedWrite(pair[0], payload, 4);     // op 3: reset
  EXPECT_FALSE(reset.ok());
  EXPECT_EQ(chaos.stats().resets, 1u);
  EXPECT_EQ(chaos.stats().ops, 4u);

  // The peer received ops 0 and 2 only — the drop reported success to the
  // writer while sending nothing (the lost-response scenario).
  char got[64];
  ssize_t n = net::ReadSome(pair[1], got, sizeof(got));
  EXPECT_EQ(n, 8);
  for (int fd : {pair[0], pair[1], bystander[0], bystander[1]}) ::close(fd);
}

// ---------- WireClient under faults ----------

TEST_F(ChaosTest, WireClientRetriesIdempotentCallsAcrossResets) {
  engine::ScoringService service({model_});
  net::ReactorServer server(&service, nullptr, "default");
  const std::string address = SocketAddress("retry");
  ASSERT_TRUE(server.Listen(address).ok());
  ASSERT_TRUE(server.Start().ok());
  const auto batches =
      engine::MakeConsecutiveBatches(dataset_->records.size(), 10);
  const std::vector<double> want = Reference(model_, batches);

  net::WireClientOptions copts;
  copts.max_attempts = 3;
  copts.backoff_base_ms = 1;
  copts.backoff_cap_ms = 2;
  copts.read_timeout_ms = 2000;
  copts.write_timeout_ms = 2000;
  net::WireClient client(address, copts);
  ASSERT_TRUE(client.Connect().ok());

  // The reactor server does its own non-blocking I/O, so with no targeted
  // fds only this client's frame ops count — op indexes are exact.
  // Call 1: write 0, read 1. Call 2: write 2 (reset -> reconnect+resend),
  // write 3, read 4. Call 3: write 5, read 6 (reset; a failed response
  // READ of an idempotent call may resend), write 7, read 8.
  net::FaultPlan plan;
  plan.script.push_back({.op_index = 2, .kind = net::FaultKind::kReset});
  plan.script.push_back({.op_index = 6, .kind = net::FaultKind::kReset});
  net::FaultInjector chaos(plan);
  chaos.Arm();

  for (int call = 0; call < 3; ++call) {
    ExpectCallBitwise(
        client.ScoreWorkloads("t", dataset_->records, batches), want);
  }
  chaos.Disarm();
  EXPECT_EQ(chaos.stats().resets, 2u);
  EXPECT_GE(chaos.stats().ops, 9u);
  server.Shutdown();
  service.Stop();
}

TEST_F(ChaosTest, PublishAppliesOnceAndNeverResendsAcrossALostResponse) {
  engine::ScoringService service({model_});
  engine::ModelRegistry registry;
  ASSERT_TRUE(registry.Record("default", Borrow(model_)).ok());
  net::ReactorServer server(&service, &registry, "default");
  const std::string address = SocketAddress("pubonce");
  ASSERT_TRUE(server.Listen(address).ok());
  ASSERT_TRUE(server.Start().ok());
  const auto batches =
      engine::MakeConsecutiveBatches(dataset_->records.size(), 10);
  const std::vector<double> want2 = Reference(model2_, batches);

  net::WireClientOptions copts;
  copts.max_attempts = 3;  // retries exist — and must NOT apply here
  copts.backoff_base_ms = 1;
  net::WireClient client(address, copts);
  ASSERT_TRUE(client.Connect().ok());

  // Kill the publish RESPONSE read (op 1; the write is op 0). The server
  // has already applied the publish; a resend would re-publish and bump
  // the epoch twice. The client must surface the error instead.
  net::FaultPlan plan;
  plan.script.push_back({.op_index = 1, .kind = net::FaultKind::kReset});
  net::FaultInjector chaos(plan);
  chaos.Arm();
  auto published = client.Publish("default", *model2_);
  chaos.Disarm();
  ASSERT_FALSE(published.ok()) << "the response was provably lost";

  // Exactly one application: epoch went 1 -> 2, not 3, and the node
  // serves the new model bitwise. The reactor applies the publish on its
  // event loop after the client's read already failed, so poll for the
  // swap before asserting it happened exactly once.
  Result<net::HealthResponse> health = Status::Internal("not yet probed");
  for (int spin = 0; spin < 500; ++spin) {
    health = client.Health(77);
    ASSERT_TRUE(health.ok()) << health.status().ToString();
    if (health->registry_epoch != 1u) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(health->registry_epoch, 2u)
      << "publish must have applied exactly once";
  ExpectCallBitwise(client.ScoreWorkloads("t", dataset_->records, batches),
                    want2);
  server.Shutdown();
  service.Stop();
}

TEST_F(ChaosTest, WireClientReadDeadlineFailsFastAgainstAStalledServer) {
  // A hand-rolled server that accepts, swallows the request, and answers
  // nothing: without SO_RCVTIMEO the client would park forever.
  net::Listener listener;
  const std::string address = SocketAddress("stall");
  ASSERT_TRUE(listener.Listen(address).ok());
  std::thread fake([&] {
    auto fd = listener.Accept();
    ASSERT_TRUE(fd.ok());
    auto request = net::ReadFrame(*fd);
    ASSERT_TRUE(request.ok());
    // Hold the response until the client gives up and closes.
    (void)net::ReadFrame(*fd);
    net::CloseConnection(*fd);
  });

  net::WireClientOptions copts;
  copts.read_timeout_ms = 100;
  copts.max_attempts = 1;
  net::WireClient client(address, copts);
  const auto started = std::chrono::steady_clock::now();
  Status outcome = client.Ping();
  const auto waited = std::chrono::steady_clock::now() - started;
  EXPECT_TRUE(outcome.IsDeadlineExceeded()) << outcome.ToString();
  EXPECT_FALSE(client.connected())
      << "a deadline mid-frame must drop the connection";
  EXPECT_LT(waited, std::chrono::seconds(2));
  fake.join();
}

// ---------- AsyncWireClient per-request deadlines ----------

TEST_F(ChaosTest, PipelinedDeadlineFailsOnlyTheStalledFutureStreamIntact) {
  // The server answers requests 1 and 3 immediately, withholds 2 past its
  // deadline, then delivers it LATE. Exactly future 2 must fail (with
  // kDeadlineExceeded), the others succeed, the late response is dropped
  // quietly, and the stream keeps serving new requests.
  net::Listener listener;
  const std::string address = SocketAddress("perreq");
  ASSERT_TRUE(listener.Listen(address).ok());
  std::atomic<bool> late_sent{false};
  std::thread fake([&] {
    auto fd = listener.Accept();
    ASSERT_TRUE(fd.ok());
    auto answer = [&](uint32_t corr) {
      net::ScoreResponse response;
      response.ok = {1};
      response.predictions = {static_cast<double>(corr)};
      response.errors = {""};
      ASSERT_TRUE(net::WriteFrame(
                      *fd, net::FrameType::kScoreResponsePipelined,
                      net::EncodePipelinedPayload(
                          corr, net::EncodeScoreResponse(response)))
                      .ok());
    };
    std::vector<uint32_t> corr_ids;
    for (int i = 0; i < 3; ++i) {
      auto frame = net::ReadFrame(*fd);
      ASSERT_TRUE(frame.ok());
      std::string body;
      auto corr = net::DecodePipelinedPayload(frame->payload, &body);
      ASSERT_TRUE(corr.ok());
      corr_ids.push_back(*corr);
    }
    answer(corr_ids[0]);
    answer(corr_ids[2]);
    // Let request 2's deadline (150 ms) expire, then answer it anyway.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    answer(corr_ids[1]);
    late_sent = true;
    // The stream must still work: serve one more request.
    auto frame = net::ReadFrame(*fd);
    ASSERT_TRUE(frame.ok());
    std::string body;
    auto corr = net::DecodePipelinedPayload(frame->payload, &body);
    ASSERT_TRUE(corr.ok());
    answer(*corr);
    (void)net::ReadFrame(*fd);  // returns when the client closes
    net::CloseConnection(*fd);
  });

  net::AsyncWireClientOptions aopts;
  aopts.request_timeout_ms = 150;
  auto client = net::AsyncWireClient::Connect(address, aopts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const auto batches = engine::MakeConsecutiveBatches(
      dataset_->records.size(), dataset_->records.size());
  std::vector<std::future<Result<net::ScoreResponse>>> futures;
  for (int i = 0; i < 3; ++i) {
    auto future = (*client)->SubmitScore("t", dataset_->records, batches);
    ASSERT_TRUE(future.ok()) << future.status().ToString();
    futures.push_back(std::move(*future));
  }
  auto first = futures[0].get();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->predictions[0], 1.0);
  auto third = futures[2].get();
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_EQ(third->predictions[0], 3.0);
  auto second = futures[1].get();
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsDeadlineExceeded())
      << second.status().ToString();
  EXPECT_TRUE((*client)->alive())
      << "one expired request must not kill the stream";

  // Wait for the late response for the expired id to arrive; it must be
  // discarded instead of being read as a desynchronized stream.
  while (!late_sent) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto fourth = (*client)->SubmitScore("t", dataset_->records, batches);
  ASSERT_TRUE(fourth.ok()) << fourth.status().ToString();
  auto outcome = fourth->get();
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->predictions[0], 4.0);
  EXPECT_TRUE((*client)->alive());
  (*client)->Close();
  fake.join();
}

// ---------- Reactor under concurrent hostile connections ----------

TEST_F(ChaosTest, ReactorStaysBitwiseCorrectUnderConnectionChaos) {
  engine::ScoringService service({model_});
  net::ReactorServer server(&service, nullptr, "default");
  const std::string address = SocketAddress("hostile");
  ASSERT_TRUE(server.Listen(address).ok());
  ASSERT_TRUE(server.Start().ok());
  const auto batches =
      engine::MakeConsecutiveBatches(dataset_->records.size(), 10);
  const std::vector<double> want = Reference(model_, batches);

  // Three attackers in parallel with the clean client: a slow-loris that
  // dribbles a partial header and stalls, a truncator that dies inside a
  // declared payload, and a garbage blaster with a bad magic.
  std::atomic<bool> stop{false};
  auto slow_loris = [&] {
    while (!stop) {
      auto fd = net::ConnectTo(address);
      if (!fd.ok()) continue;
      const char partial[3] = {'W', 'M', 'F'};
      net::SendSome(*fd, partial, sizeof(partial));
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      net::CloseConnection(*fd);
    }
  };
  auto truncator = [&] {
    while (!stop) {
      auto fd = net::ConnectTo(address);
      if (!fd.ok()) continue;
      // Valid header promising 4096 payload bytes; deliver 16 and die.
      const std::string wire = net::EncodeFrame(
          net::FrameType::kScoreRequest, std::string(4096, 'x'));
      net::SendSome(*fd, wire.data(), net::kFrameHeaderBytes + 16);
      net::CloseConnection(*fd);
    }
  };
  auto garbage = [&] {
    while (!stop) {
      auto fd = net::ConnectTo(address);
      if (!fd.ok()) continue;
      const char junk[] = "\xde\xad\xbe\xef not a frame at all";
      net::SendSome(*fd, junk, sizeof(junk));
      net::CloseConnection(*fd);
    }
  };
  std::thread attackers[3] = {std::thread(slow_loris), std::thread(truncator),
                              std::thread(garbage)};

  auto client = net::AsyncWireClient::Connect(address);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  std::vector<std::future<Result<net::ScoreResponse>>> futures;
  for (const core::WorkloadBatch& batch : batches) {
    auto future = (*client)->SubmitScore(
        "t", dataset_->records, std::vector<core::WorkloadBatch>{batch});
    ASSERT_TRUE(future.ok()) << future.status().ToString();
    futures.push_back(std::move(*future));
  }
  for (size_t w = 0; w < futures.size(); ++w) {
    auto outcome = futures[w].get();
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ASSERT_EQ(outcome->size(), 1u);
    ASSERT_TRUE(outcome->ok[0]);
    EXPECT_EQ(outcome->predictions[0], want[w]) << "w=" << w;
  }
  stop = true;
  for (auto& attacker : attackers) attacker.join();
  (*client)->Close();

  // The server survived all of it and still answers a fresh connection.
  net::WireClient prober(address);
  EXPECT_TRUE(prober.Ping().ok());
  server.Shutdown();
  service.Stop();
}

// ---------- Fleet commit-failure compensation ----------

TEST_F(ChaosTest, CommitResponseLossTriggersCompensationBackToPriorEpoch) {
  // Worst-case rollout failure: node 1 APPLIES the commit but the
  // response is lost. The router must notice the landed commit (consumed
  // ticket + moved epoch), roll node 0 and node 1 back, abort node 2, and
  // leave the whole fleet on the prior epoch — never mixed.
  struct TestNode {
    engine::ScoringService service;
    engine::ModelRegistry registry;
    net::ReactorServer server;
    TestNode(const core::LearnedWmpModel* model)
        : service({model}), server(&service, &registry, "default") {}
  };
  std::vector<std::unique_ptr<TestNode>> fleet;
  std::vector<std::string> addresses;
  for (int i = 0; i < 3; ++i) {
    auto node = std::make_unique<TestNode>(model_);
    ASSERT_TRUE(node->registry.Record("default", Borrow(model_)).ok());
    const std::string address =
        SocketAddress(StrFormat("commitloss%d", i).c_str());
    ASSERT_TRUE(node->server.Listen(address).ok());
    ASSERT_TRUE(node->server.Start().ok());
    addresses.push_back(address);
    fleet.push_back(std::move(node));
  }
  const auto batches =
      engine::MakeConsecutiveBatches(dataset_->records.size(), 10);
  const std::vector<double> want = Reference(model_, batches);

  net::FleetRouterOptions ropts;
  ropts.probe_interval_ms = 0;  // op counting needs no concurrent probes
  ropts.seed = 7;
  ropts.backoff_base_ms = 1;
  net::FleetRouter router(addresses, ropts);
  ASSERT_TRUE(router.Start().ok());  // probes run before the injector arms

  // Reactor nodes do no blocking frame ops, so the router's control-plane
  // clients are the only ops counted. PublishAll: stage = ops 0..5
  // (write/read per node), commit node 0 = ops 6,7, commit node 1 =
  // write 8, read 9 — reset op 9, the commit response read.
  net::FaultPlan plan;
  plan.script.push_back({.op_index = 9, .kind = net::FaultKind::kReset});
  net::FaultInjector chaos(plan);
  chaos.Arm();
  auto report = router.PublishAll("default", *model2_);
  chaos.Disarm();
  EXPECT_EQ(chaos.stats().resets, 1u);

  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.failure.find("commit failed on"), std::string::npos)
      << report.failure;
  // Node 0 committed and was compensated by rollback.
  EXPECT_TRUE(report.nodes[0].committed);
  EXPECT_TRUE(report.nodes[0].compensated);
  // Node 1's commit landed without a response; the router must have
  // detected it and rolled back rather than (uselessly) aborting.
  EXPECT_FALSE(report.nodes[1].committed) << "the response never arrived";
  EXPECT_TRUE(report.nodes[1].compensated) << report.nodes[1].error;
  // Node 2 was still staged and was aborted.
  EXPECT_FALSE(report.nodes[2].committed);
  EXPECT_TRUE(report.nodes[2].aborted);

  // Every node is back on epoch 1 with nothing parked, serving the old
  // model bitwise — the fleet was never left mixed.
  for (const auto& address : addresses) {
    net::WireClient direct(address);
    auto health = direct.Health(3);
    ASSERT_TRUE(health.ok()) << health.status().ToString();
    EXPECT_EQ(health->registry_epoch, 1u) << address;
    EXPECT_EQ(health->staged_ticket, 0u) << address;
    ExpectCallBitwise(
        direct.ScoreWorkloads("t", dataset_->records, batches), want);
  }
  router.ProbeNow();
  EXPECT_FALSE(router.epoch_map().Mixed());
  ExpectCallBitwise(router.ScoreWorkloads("t", dataset_->records, batches),
                    want);
  router.Stop();
  for (auto& node : fleet) {
    node->server.Shutdown();
    node->service.Stop();
  }
}

}  // namespace
}  // namespace wmp
