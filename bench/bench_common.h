#ifndef WMP_BENCH_BENCH_COMMON_H_
#define WMP_BENCH_BENCH_COMMON_H_

// Shared flag parsing and formatting for the figure harnesses.
//
// Every harness accepts:
//   --scale=<f>      fraction of the paper's query counts (default 0.15 for
//                    TPC-DS; JOB and TPC-C always run at paper scale since
//                    they are small). --scale=1.0 reproduces the full paper
//                    setup.
//   --seed=<n>       RNG seed (default 42)
//   --batch=<n>      workload batch size s (default 10)
//   --templates=<n>  override template count k (default: per-benchmark)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/experiment.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace wmp::bench {

struct BenchArgs {
  double tpcds_scale = 0.15;
  uint64_t seed = 42;
  int batch_size = 10;
  int num_templates = 0;  // 0 = per-benchmark default
  std::string json_path;  // --json=PATH: machine-readable results (throughput)
  bool quick = false;  // --quick: shrink sweeps to a CI smoke-test size
};

inline BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--scale=", 8) == 0) {
      args.tpcds_scale = std::strtod(a + 8, nullptr);
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      args.seed = std::strtoull(a + 7, nullptr, 10);
    } else if (std::strncmp(a, "--batch=", 8) == 0) {
      args.batch_size = std::atoi(a + 8);
    } else if (std::strncmp(a, "--templates=", 12) == 0) {
      args.num_templates = std::atoi(a + 12);
    } else if (std::strncmp(a, "--json=", 7) == 0) {
      args.json_path = a + 7;
    } else if (std::strcmp(a, "--quick") == 0) {
      args.quick = true;
    } else if (std::strcmp(a, "--help") == 0) {
      std::printf(
          "flags: --scale=<f> --seed=<n> --batch=<n> --templates=<n> "
          "--json=<path> --quick\n");
      std::exit(0);
    }
  }
  return args;
}

inline core::ExperimentConfig MakeConfig(workloads::Benchmark benchmark,
                                         const BenchArgs& args) {
  core::ExperimentConfig cfg;
  cfg.benchmark = benchmark;
  // JOB and TPC-C are small; always run them at the paper's query counts.
  cfg.scale = benchmark == workloads::Benchmark::kTpcds ? args.tpcds_scale : 1.0;
  cfg.batch_size = args.batch_size;
  cfg.num_templates = args.num_templates;
  cfg.seed = args.seed;
  return cfg;
}

inline void PrintRunBanner(const char* figure, const char* what,
                           const BenchArgs& args) {
  std::printf("=======================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("TPC-DS scale=%.2f (93000 queries at 1.0), batch=%d, seed=%llu\n",
              args.tpcds_scale, args.batch_size,
              static_cast<unsigned long long>(args.seed));
  std::printf("=======================================================\n");
}

}  // namespace wmp::bench

#endif  // WMP_BENCH_BENCH_COMMON_H_
