// Training-throughput benchmark for the histogram tree engine.
//
// Trains DT / RF / GBT on the two real training designs of the pipeline —
// the SingleWMP per-query plan-feature matrix and the LearnedWMP workload
// histogram matrix — once with the retained reference (direct-build)
// engine and once with the histogram engine (feature-major bins, sibling
// subtraction, pooled buffers, GBT leaf-scatter updates), and reports
// rows/sec, end-to-end speedup, and the engine's per-phase breakdown
// (bin / grow / round-update).
//
// Equivalence gate: for every family the two engines' predictions on the
// training design must agree within 1e-9 relative; any breach exits
// nonzero, so CI's train-smoke step (--quick) catches subtraction bugs
// that would silently change models.
//
// Defaults to the paper's full TPC-DS query count (--scale=1.0, 93k
// queries); --quick shrinks the fixture for CI. Output: human tables plus
// JSON records (stdout, or --json=PATH).

#include <cmath>
#include <cstring>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "util/timer.h"
#include "core/featurizer.h"
#include "ml/compiled_tree.h"
#include "ml/dtree.h"
#include "ml/gbt.h"
#include "ml/random_forest.h"
#include "ml/scaler.h"
#include "ml/tree_grower.h"

using namespace wmp;

namespace {

struct FamilyRow {
  std::string fixture;
  std::string family;
  size_t rows = 0;
  size_t cols = 0;
  double ref_ms = 0.0;
  double new_ms = 0.0;
  double speedup = 0.0;
  double rows_per_sec = 0.0;  // histogram engine, end-to-end fit
  double bin_ms = 0.0;
  double grow_ms = 0.0;
  double update_ms = 0.0;
  size_t pool_allocs = 0;
  double max_rel_diff = 0.0;
  // Compiled bin-space inference over the training design: batch Predict
  // time of the raw-space regressor vs the compiled ensemble, and their
  // divergence (0 required for DT/RF, <= 1e-9 relative for GBT).
  double pred_ms = 0.0;
  double compiled_pred_ms = 0.0;
  double compiled_max_diff = 0.0;
};

std::string ToJson(const FamilyRow& r) {
  return StrFormat(
      "{\"fixture\": \"%s\", \"family\": \"%s\", \"rows\": %zu, "
      "\"cols\": %zu, \"ref_ms\": %.2f, \"new_ms\": %.2f, "
      "\"speedup\": %.2f, \"rows_per_sec\": %.0f, \"bin_ms\": %.2f, "
      "\"grow_ms\": %.2f, \"update_ms\": %.2f, \"pool_allocs\": %zu, "
      "\"max_rel_diff\": %.3g, \"pred_ms\": %.2f, "
      "\"compiled_pred_ms\": %.2f, \"compiled_max_diff\": %.3g}",
      r.fixture.c_str(), r.family.c_str(), r.rows, r.cols, r.ref_ms, r.new_ms,
      r.speedup, r.rows_per_sec, r.bin_ms, r.grow_ms, r.update_ms,
      r.pool_allocs, r.max_rel_diff, r.pred_ms, r.compiled_pred_ms,
      r.compiled_max_diff);
}

ml::TreeGrowerStats GrowerStatsOf(const ml::Regressor& model) {
  if (const auto* dt = dynamic_cast<const ml::DecisionTreeRegressor*>(&model)) {
    return dt->grower_stats();
  }
  if (const auto* rf =
          dynamic_cast<const ml::RandomForestRegressor*>(&model)) {
    return rf->grower_stats();
  }
  if (const auto* gbt = dynamic_cast<const ml::GbtRegressor*>(&model)) {
    return gbt->grower_stats();
  }
  return {};
}

// Trains `make(growth)` under both engines and scores the divergence of
// their train-set predictions (relative, with an absolute floor of 1).
template <typename Factory>
FamilyRow RunFamily(const std::string& fixture, const std::string& family,
                    const ml::Matrix& x, const std::vector<double>& y,
                    const Factory& make, bool* ok) {
  FamilyRow row;
  row.fixture = fixture;
  row.family = family;
  row.rows = x.rows();
  row.cols = x.cols();

  auto reference = make(ml::TreeGrowth::kReference);
  Stopwatch sw;
  if (Status st = reference->Fit(x, y); !st.ok()) {
    std::cerr << fixture << "/" << family << " reference fit failed: " << st
              << "\n";
    *ok = false;
    return row;
  }
  row.ref_ms = sw.ElapsedMillis();

  auto histogram = make(ml::TreeGrowth::kHistogram);
  sw.Reset();
  if (Status st = histogram->Fit(x, y); !st.ok()) {
    std::cerr << fixture << "/" << family << " histogram fit failed: " << st
              << "\n";
    *ok = false;
    return row;
  }
  row.new_ms = sw.ElapsedMillis();
  row.speedup = row.ref_ms / std::max(row.new_ms, 1e-3);
  row.rows_per_sec =
      static_cast<double>(x.rows()) / std::max(row.new_ms / 1e3, 1e-9);
  const ml::FitTiming timing = histogram->fit_timing();
  row.bin_ms = timing.bin_ms;
  row.grow_ms = timing.grow_ms;
  row.update_ms = timing.update_ms;
  row.pool_allocs = GrowerStatsOf(*histogram).pool_allocations;

  auto ref_pred = reference->Predict(x);
  sw.Reset();
  auto new_pred = histogram->Predict(x);
  row.pred_ms = sw.ElapsedMillis();
  if (!ref_pred.ok() || !new_pred.ok()) {
    std::cerr << fixture << "/" << family << " predict failed\n";
    *ok = false;
    return row;
  }
  for (size_t i = 0; i < ref_pred->size(); ++i) {
    const double denom = std::max(1.0, std::fabs((*ref_pred)[i]));
    row.max_rel_diff = std::max(
        row.max_rel_diff, std::fabs((*ref_pred)[i] - (*new_pred)[i]) / denom);
  }
  if (row.max_rel_diff > 1e-9) {
    std::cerr << "EQUIVALENCE BREACH: " << fixture << "/" << family
              << " diverges by " << row.max_rel_diff << " (> 1e-9)\n";
    *ok = false;
  }

  // Compiled bin-space inference gate: flatten the freshly trained model
  // and require its batch predictions to match the regressor's own —
  // bitwise for DT/RF (pure bin-space traversal + exact combine), and
  // within 1e-9 relative for GBT. CI's train smoke (--quick) runs this.
  auto compiled = ml::CompiledEnsemble::CompileRegressor(*histogram);
  if (!compiled.ok()) {
    std::cerr << fixture << "/" << family
              << " compile failed: " << compiled.status() << "\n";
    *ok = false;
    return row;
  }
  sw.Reset();
  auto comp_pred = compiled->Predict(x);
  row.compiled_pred_ms = sw.ElapsedMillis();
  if (!comp_pred.ok()) {
    std::cerr << fixture << "/" << family
              << " compiled predict failed: " << comp_pred.status() << "\n";
    *ok = false;
    return row;
  }
  const bool exact = family != "XGB";
  for (size_t i = 0; i < new_pred->size(); ++i) {
    const double denom = std::max(1.0, std::fabs((*new_pred)[i]));
    row.compiled_max_diff =
        std::max(row.compiled_max_diff,
                 std::fabs((*new_pred)[i] - (*comp_pred)[i]) / denom);
  }
  if (row.compiled_max_diff > (exact ? 0.0 : 1e-9)) {
    std::cerr << "COMPILED EQUIVALENCE BREACH: " << fixture << "/" << family
              << " compiled diverges by " << row.compiled_max_diff << " (> "
              << (exact ? "bitwise" : "1e-9") << ")\n";
    *ok = false;
  }
  return row;
}

void RunFixture(const std::string& fixture, const ml::Matrix& x,
                const std::vector<double>& y, uint64_t seed, bool quick,
                std::vector<FamilyRow>* rows, bool* ok) {
  // DT/RF hyperparameters mirror CreateRegressor's experiment defaults for
  // the per-query design and MakeLearnedRegressor's tuned settings for the
  // workload design; GBT likewise (reduced rounds under --quick).
  const bool learned = fixture == "workload";
  rows->push_back(RunFamily(fixture, "DT", x, y, [&](ml::TreeGrowth growth) {
    ml::DecisionTreeOptions opt;
    opt.tree.max_depth = learned ? 8 : 12;
    opt.tree.min_samples_leaf = learned ? 4 : 2;
    opt.tree.growth = growth;
    opt.seed = seed;
    return std::make_unique<ml::DecisionTreeRegressor>(opt);
  }, ok));
  rows->push_back(RunFamily(fixture, "RF", x, y, [&](ml::TreeGrowth growth) {
    ml::RandomForestOptions opt;
    opt.num_trees = quick ? 10 : 40;
    if (learned) {
      opt.tree.max_depth = 10;
      opt.tree.min_samples_leaf = 3;
    }
    opt.tree.growth = growth;
    opt.seed = seed;
    return std::make_unique<ml::RandomForestRegressor>(opt);
  }, ok));
  rows->push_back(RunFamily(fixture, "XGB", x, y, [&](ml::TreeGrowth growth) {
    ml::GbtOptions opt;
    if (learned) {
      opt.num_rounds = quick ? 30 : 150;
      opt.learning_rate = 0.06;
      opt.max_depth = 4;
      opt.min_child_weight = 3;
      opt.colsample = 0.8;
      opt.subsample = 0.9;
    } else {
      opt.num_rounds = quick ? 20 : 80;
    }
    opt.growth = growth;
    opt.seed = seed;
    return std::make_unique<ml::GbtRegressor>(opt);
  }, ok));
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  // Unlike the figure harnesses this bench defaults to the paper's full
  // query count — the acceptance target is end-to-end speedup at paper
  // scale — unless the caller passed --scale or --quick.
  bool scale_given = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) scale_given = true;
  }
  if (!scale_given) args.tpcds_scale = args.quick ? 0.04 : 1.0;
  bench::PrintRunBanner("train_throughput",
                        "tree-family training engines, reference vs histogram",
                        args);

  core::ExperimentConfig cfg =
      bench::MakeConfig(workloads::Benchmark::kTpcds, args);
  auto data = core::PrepareExperiment(cfg);
  if (!data.ok()) {
    std::cerr << "fixture build failed: " << data.status() << "\n";
    return 1;
  }
  const auto& records = data->dataset.records;

  bool ok = true;
  std::vector<FamilyRow> rows;

  // Fixture 1: the SingleWMP per-query design (plan features -> memory).
  {
    ml::Matrix x = core::PlanFeatureMatrix(records, data->train_indices);
    std::vector<double> y =
        core::ActualMemoryVector(records, data->train_indices);
    ml::StandardScaler scaler;
    if (Status st = scaler.Fit(x); !st.ok()) {
      std::cerr << "scaler fit failed: " << st << "\n";
      return 1;
    }
    auto scaled = scaler.Transform(x);
    if (!scaled.ok()) {
      std::cerr << "scaler transform failed: " << scaled.status() << "\n";
      return 1;
    }
    RunFixture("perquery", *scaled, y, cfg.seed, args.quick, &rows, &ok);
  }

  // Fixture 2: the LearnedWMP workload-histogram design. Phase 1-2 run
  // once (Ridge keeps the throwaway phase-3 fit cheap); the tree families
  // then train on the same histogram matrix the production trainer sees.
  {
    const core::ExperimentConfig& resolved = data->config;
    core::LearnedWmpOptions lopt;
    lopt.templates.num_templates = resolved.num_templates;
    lopt.batch_size = resolved.batch_size;
    lopt.label = resolved.label;
    lopt.regressor = ml::RegressorKind::kRidge;
    lopt.seed = resolved.seed;
    auto model = core::LearnedWmpModel::Train(
        records, data->train_indices, *data->dataset.generator, lopt);
    if (!model.ok()) {
      std::cerr << "workload fixture failed: " << model.status() << "\n";
      return 1;
    }
    core::WorkloadSetOptions wopt;
    wopt.batch_size = lopt.batch_size;
    wopt.label = lopt.label;
    wopt.seed = lopt.seed;
    const std::vector<core::WorkloadBatch> batches =
        core::BuildWorkloads(records, data->train_indices, wopt);
    auto h = model->BinWorkloads(records, batches);
    if (!h.ok()) {
      std::cerr << "workload binning failed: " << h.status() << "\n";
      return 1;
    }
    std::vector<double> y(batches.size());
    for (size_t b = 0; b < batches.size(); ++b) y[b] = batches[b].label_mb;
    RunFixture("workload", *h, y, cfg.seed, args.quick, &rows, &ok);
  }

  for (const char* fixture : {"perquery", "workload"}) {
    TablePrinter table(StrFormat("train_throughput — %s design", fixture));
    table.SetHeader({"family", "rows", "ref ms", "hist ms", "speedup",
                     "rows/s", "bin ms", "grow ms", "update ms", "pool allocs",
                     "max rel diff", "pred ms", "compiled ms",
                     "compiled diff"});
    for (const FamilyRow& r : rows) {
      if (r.fixture != fixture) continue;
      table.AddRow({r.family, StrFormat("%zu", r.rows),
                    StrFormat("%.1f", r.ref_ms), StrFormat("%.1f", r.new_ms),
                    StrFormat("%.2fx", r.speedup),
                    StrFormat("%.0f", r.rows_per_sec),
                    StrFormat("%.1f", r.bin_ms), StrFormat("%.1f", r.grow_ms),
                    StrFormat("%.1f", r.update_ms),
                    StrFormat("%zu", r.pool_allocs),
                    StrFormat("%.2g", r.max_rel_diff),
                    StrFormat("%.1f", r.pred_ms),
                    StrFormat("%.1f", r.compiled_pred_ms),
                    StrFormat("%.2g", r.compiled_max_diff)});
    }
    table.Print(std::cout);
  }

  FILE* out = stdout;
  if (!args.json_path.empty()) {
    out = std::fopen(args.json_path.c_str(), "w");
    if (out == nullptr) {
      std::cerr << "cannot open " << args.json_path << "\n";
      return 1;
    }
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out, "  %s%s\n", ToJson(rows[i]).c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  if (out != stdout) std::fclose(out);

  if (!ok) {
    std::cerr << "train_throughput: equivalence breach or failure\n";
    return 1;
  }
  return 0;
}
