// Fig. 4 reproduction: RMSE of workload memory prediction (smaller is
// better) for SingleWMP-DBMS, the five SingleWMP ML variants, and the five
// LearnedWMP variants, on TPC-DS / JOB / TPC-C.
//
// Expected shape (paper §IV-A): every ML model beats SingleWMP-DBMS by a
// wide margin (the paper reports up to 47.6% error reduction vs the state
// of practice overall and 90.95% on TPC-DS for the best models), and
// LearnedWMP variants are competitive with SingleWMP ML variants.

#include <iostream>

#include "bench_common.h"

using namespace wmp;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Fig. 4", "workload memory RMSE (MB, smaller is better)",
                        args);

  for (workloads::Benchmark benchmark : workloads::AllBenchmarks()) {
    auto result = core::RunCoreExperiment(bench::MakeConfig(benchmark, args));
    if (!result.ok()) {
      std::cerr << "experiment failed: " << result.status() << "\n";
      return 1;
    }
    TablePrinter table(StrFormat(
        "Fig. 4 — %s (%zu queries, %zu test workloads, k=%d)",
        result->benchmark.c_str(), result->num_queries,
        result->num_test_workloads, result->num_templates));
    table.SetHeader({"model", "RMSE (MB)", "vs DBMS"});
    const double dbms_rmse = result->reports[0].rmse;
    for (const core::ModelReport& r : result->reports) {
      const double reduction = 100.0 * (1.0 - r.rmse / dbms_rmse);
      table.AddRow({r.name, StrFormat("%.1f", r.rmse),
                    r.name == "SingleWMP-DBMS"
                        ? std::string("baseline")
                        : StrFormat("%+.1f%%", reduction)});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
