// Serving-path benchmark: p50/p99 request latency and sustained
// queries/sec of engine::ScoringService vs client count x shard count,
// plus the histogram-cache payoff on a repeated-workload stream.
//
// Phases per configuration grid point:
//   baseline        one synchronous BatchScorer::ScoreLog at batch 1000 —
//                   the PR 1 offline-batch throughput the async service
//                   must sustain.
//   cold_sync       C closed-loop clients (block on every future) over a
//                   fresh stream: per-request latency of the micro-batching
//                   path with only C workloads ever in flight.
//   cold_pipelined  C open-loop clients submit their whole slice, then
//                   drain the futures — the async API used as intended, so
//                   the dispatcher sees deep queues and flushes full
//                   batches.
//   repeat          the pipelined stream submitted R times (drained
//                   between passes); from the second pass on every
//                   histogram is a cache hit, and hit-path predictions are
//                   checked bitwise against pass one.
//
// Output: human tables plus JSON records (stdout, or --json=PATH):
//   {"figure":"serve_latency","mode":"repeat","clients":8,"shards":2,
//    "queries_per_sec":...,"p50_us":...,"p99_us":...,
//    "cache_hit_rate":...,"bitwise_identical":true}
// Latency percentiles are client-observed submit -> resolve times; in the
// pipelined modes they are completion (sojourn) times, queueing included.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "engine/batch_scorer.h"
#include "engine/scoring_service.h"
#include "util/parallel.h"
#include "util/stats.h"
#include "util/sync.h"
#include "util/timer.h"

using namespace wmp;

namespace {

struct ServeRow {
  std::string mode;  // "baseline", "cold", "repeat"
  int clients = 0;
  int shards = 0;
  size_t workloads = 0;
  size_t queries = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double hit_rate = 0.0;
  bool bitwise_identical = true;
};

std::string ToJson(const ServeRow& r) {
  return StrFormat(
      "{\"figure\":\"serve_latency\",\"mode\":\"%s\",\"clients\":%d,"
      "\"shards\":%d,\"workloads\":%zu,\"queries\":%zu,\"seconds\":%.3f,"
      "\"queries_per_sec\":%.1f,\"p50_us\":%.1f,\"p99_us\":%.1f,"
      "\"cache_hit_rate\":%.4f,\"bitwise_identical\":%s}",
      r.mode.c_str(), r.clients, r.shards, r.workloads, r.queries, r.seconds,
      r.qps, r.p50_us, r.p99_us, r.hit_rate,
      r.bitwise_identical ? "true" : "false");
}

// Drives `clients` threads, each submitting its slice of `batches`
// `repeat` times, and fills latency + prediction outputs. Predictions are
// recorded per (pass, workload) for the bitwise check.
struct DriveResult {
  double seconds = 0.0;
  std::vector<double> latencies_us;
  std::vector<std::vector<double>> pass_predictions;  // [repeat][workload]
  uint64_t errors = 0;
};

DriveResult Drive(engine::ScoringService* service,
                  const std::vector<workloads::QueryRecord>& records,
                  const std::vector<core::WorkloadBatch>& batches,
                  int clients, int repeat, bool pipelined) {
  DriveResult out;
  out.pass_predictions.assign(
      static_cast<size_t>(repeat),
      std::vector<double>(batches.size(), 0.0));
  std::vector<std::vector<double>> per_client_lat(
      static_cast<size_t>(clients));
  std::atomic<uint64_t> errors{0};
  util::Latch start(static_cast<size_t>(clients) + 1);
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const std::string tenant = StrFormat("client-%d", c);
      auto& lat = per_client_lat[static_cast<size_t>(c)];
      // Strided slice: client c owns workloads c, c+clients, ... — clients
      // never submit each other's workloads, so a pass can re-hit its own
      // pass-1 cache entries without cross-client coordination.
      std::vector<size_t> slice;
      for (size_t w = static_cast<size_t>(c); w < batches.size();
           w += static_cast<size_t>(clients)) {
        slice.push_back(w);
      }
      start.ArriveAndWait();
      for (int r = 0; r < repeat; ++r) {
        auto& preds = out.pass_predictions[static_cast<size_t>(r)];
        if (pipelined) {
          // Open loop: submit the whole slice, then drain. Latency is the
          // client-observed completion (sojourn) time per request.
          std::vector<std::chrono::steady_clock::time_point> t0(slice.size());
          std::vector<std::future<Result<double>>> futures;
          futures.reserve(slice.size());
          for (size_t i = 0; i < slice.size(); ++i) {
            t0[i] = std::chrono::steady_clock::now();
            futures.push_back(service->Submit(
                tenant, records, batches[slice[i]].query_indices));
          }
          for (size_t i = 0; i < slice.size(); ++i) {
            auto got = futures[i].get();
            lat.push_back(
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - t0[i])
                    .count());
            if (got.ok()) {
              preds[slice[i]] = *got;
            } else {
              errors.fetch_add(1, std::memory_order_relaxed);
            }
          }
        } else {
          // Closed loop: one request in flight per client.
          for (size_t w : slice) {
            Stopwatch sw;
            auto fut =
                service->Submit(tenant, records, batches[w].query_indices);
            auto got = fut.get();
            lat.push_back(sw.ElapsedMicros());
            if (got.ok()) {
              preds[w] = *got;
            } else {
              errors.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      }
    });
  }
  Stopwatch wall;
  start.ArriveAndWait();
  for (auto& t : threads) t.join();
  out.seconds = wall.ElapsedSeconds();
  out.errors = errors.load();
  for (auto& v : per_client_lat) {
    out.latencies_us.insert(out.latencies_us.end(), v.begin(), v.end());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("serve_latency",
                        "async service latency/throughput vs clients x shards",
                        args);

  // One TPC-C model serves every configuration; the serving layer, not the
  // model, is under test.
  const core::ExperimentConfig cfg =
      bench::MakeConfig(workloads::Benchmark::kTpcc, args);
  auto data = core::PrepareExperiment(cfg);
  if (!data.ok()) {
    std::cerr << "prepare failed: " << data.status() << "\n";
    return 1;
  }
  core::LearnedWmpOptions lopt;
  lopt.templates.num_templates = 16;
  lopt.batch_size = cfg.batch_size;
  lopt.seed = cfg.seed;
  auto model = core::LearnedWmpModel::Train(
      data->dataset.records, data->train_indices, *data->dataset.generator,
      lopt);
  if (!model.ok()) {
    std::cerr << "train failed: " << model.status() << "\n";
    return 1;
  }
  const auto& records = data->dataset.records;
  const auto batches =
      engine::MakeConsecutiveBatches(records.size(), cfg.batch_size);

  std::vector<ServeRow> rows;

  // --- Baseline: the PR 1 offline path, batch 1000, all cores ---
  {
    engine::BatchScorer scorer(&*model);
    auto warmup = scorer.ScoreLog(records, 1000);  // touch pool + caches
    auto res = scorer.ScoreLog(records, 1000);
    ServeRow row;
    row.mode = "baseline";
    if (res.ok()) {
      row.workloads = res->stats.num_workloads;
      row.queries = res->stats.num_queries;
      row.seconds = res->stats.elapsed_ms / 1e3;
      row.qps = res->stats.queries_per_sec;
    } else {
      std::cerr << "baseline failed: " << res.status() << "\n";
      return 1;
    }
    (void)warmup;
    rows.push_back(row);
  }

  const int repeat = 10;  // repeated-stream passes; hits = (repeat-1)/repeat
  const auto run_row = [&](const char* mode, int clients, int shards,
                           int passes, bool pipelined,
                           const std::vector<core::WorkloadBatch>& batches) {
    engine::ScoringServiceOptions sopt;
    if (pipelined) {
      // Open-loop clients build deep queues; let the dispatcher flush them
      // in full-size scoring passes, and keep the delay window small so
      // the per-pass drain barrier doesn't idle the service.
      sopt.max_batch = 1024;
      sopt.max_delay_us = 25;
    }
    engine::ScoringService service(
        std::vector<const core::LearnedWmpModel*>(
            static_cast<size_t>(shards), &*model),
        sopt);
    DriveResult d =
        Drive(&service, records, batches, clients, passes, pipelined);
    service.Stop();
    const engine::ServiceStats st = service.stats();
    ServeRow row;
    row.mode = mode;
    row.clients = clients;
    row.shards = shards;
    row.workloads = st.completed;
    // The clients' strided slices partition the stream, so each pass
    // submits every workload exactly once.
    size_t pass_queries = 0;
    for (const auto& b : batches) pass_queries += b.query_indices.size();
    row.queries = pass_queries * static_cast<size_t>(passes);
    row.seconds = d.seconds;
    row.qps =
        d.seconds > 0 ? static_cast<double>(row.queries) / d.seconds : 0.0;
    row.p50_us = util::PercentileInPlace(&d.latencies_us, 0.50);
    row.p99_us = util::PercentileInPlace(&d.latencies_us, 0.99);
    row.hit_rate = st.cache_hit_rate();
    row.bitwise_identical = d.errors == 0;
    for (int r = 1; r < passes && row.bitwise_identical; ++r) {
      for (size_t w = 0; w < batches.size(); ++w) {
        if (d.pass_predictions[static_cast<size_t>(r)][w] !=
            d.pass_predictions[0][w]) {
          row.bitwise_identical = false;
          break;
        }
      }
    }
    rows.push_back(row);
    return row;
  };

  for (int shards : {1, 2, 4}) {
    TablePrinter table(StrFormat("serve_latency — %d shard(s)", shards));
    table.SetHeader({"clients", "sync qps", "sync p50/p99 us", "piped qps",
                     "repeat qps", "hit rate", "bitwise"});
    for (int clients : {1, 2, 4, 8}) {
      const ServeRow sync =
          run_row("cold_sync", clients, shards, 1, false, batches);
      const ServeRow piped =
          run_row("cold_pipelined", clients, shards, 1, true, batches);
      const ServeRow rep =
          run_row("repeat", clients, shards, repeat, true, batches);
      table.AddRow({StrFormat("%d", clients), StrFormat("%.0f", sync.qps),
                    StrFormat("%.0f / %.0f", sync.p50_us, sync.p99_us),
                    StrFormat("%.0f", piped.qps), StrFormat("%.0f", rep.qps),
                    StrFormat("%.1f%%", 100.0 * rep.hit_rate),
                    rep.bitwise_identical ? "yes" : "NO"});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  // --- Apples-to-apples vs the baseline: serve the SAME batch-1000
  // workloads through the async service, 8 concurrent clients, repeated
  // stream. This is the acceptance bar: the serving layer (queues,
  // futures, micro-batching, cache) must sustain the offline batch-1000
  // throughput, not tax it away.
  {
    const auto batches_1000 =
        engine::MakeConsecutiveBatches(records.size(), 1000);
    TablePrinter table("serve_latency — batch-1000 stream, 8 clients");
    table.SetHeader(
        {"shards", "qps", "baseline qps", "ratio", "hit rate", "bitwise"});
    for (int shards : {1, 2}) {
      const ServeRow row =
          run_row("serve_batch1000", 8, shards, 50, true, batches_1000);
      table.AddRow({StrFormat("%d", shards), StrFormat("%.0f", row.qps),
                    StrFormat("%.0f", rows[0].qps),
                    StrFormat("%.2fx", row.qps / std::max(rows[0].qps, 1.0)),
                    StrFormat("%.1f%%", 100.0 * row.hit_rate),
                    row.bitwise_identical ? "yes" : "NO"});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  FILE* out = stdout;
  if (!args.json_path.empty()) {
    out = std::fopen(args.json_path.c_str(), "w");
    if (out == nullptr) {
      std::cerr << "cannot open " << args.json_path << "\n";
      return 1;
    }
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out, "  %s%s\n", ToJson(rows[i]).c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  if (out != stdout) std::fclose(out);
  return 0;
}
