// Serving-path benchmark: p50/p99 request latency and sustained
// queries/sec of engine::ScoringService vs client count x shard count,
// plus the payoff of each serving-path v2 mechanism:
//
//   baseline        one synchronous BatchScorer::ScoreLog at batch 1000 —
//                   the PR 1 offline-batch throughput the async service
//                   must sustain.
//   sync_fixed /    C closed-loop clients (block on every future) over a
//   sync_adaptive   fresh stream, with the adaptive flush controller off
//                   vs on — the adaptive dispatcher flushes the moment no
//                   further arrival can be pending instead of sleeping out
//                   max_delay_us, so closed-loop p50 collapses.
//   cold_pipelined  C open-loop clients submit their whole slice, then
//                   drain the futures — the async API used as intended, so
//                   the dispatcher sees deep queues and flushes full
//                   batches.
//   repeat          the pipelined stream submitted R times (drained
//                   between passes); from the second pass on every
//                   histogram is a level-1 cache hit, and hit-path
//                   predictions are checked bitwise against pass one.
//   novel           the same *queries* regrouped into workloads no
//                   fingerprint has seen: the histogram cache cannot hit,
//                   but the per-query template-id cache resolves every
//                   member, so featurize/assign is skipped per query.
//                   Reports both levels' hit rates side by side.
//   hotswap         PublishModel of a second trained model under full
//                   pipelined load: zero failed requests across the swap,
//                   and post-swap predictions bitwise equal to the new
//                   model's own batched scoring.
//
// Output: human tables plus JSON records (stdout, or --json=PATH):
//   {"figure":"serve_latency","mode":"novel","clients":4,"shards":1,
//    "queries_per_sec":...,"p50_us":...,"p99_us":...,"adaptive":true,
//    "cache_hit_rate":...,"template_hit_rate":...,"flushes_full":...,
//    "flushes_adaptive":...,"flushes_deadline":...,"errors":0,
//    "bitwise_identical":true}
// Latency percentiles are client-observed submit -> resolve times; in the
// pipelined modes they are completion (sojourn) times, queueing included.
//
// --quick shrinks every sweep to a seconds-long CI smoke configuration.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "engine/batch_scorer.h"
#include "engine/scoring_service.h"
#include "ml/compiled_tree.h"
#include "util/parallel.h"
#include "util/stats.h"
#include "util/sync.h"
#include "util/timer.h"

using namespace wmp;

namespace {

struct ServeRow {
  std::string mode;
  int clients = 0;
  int shards = 0;
  bool adaptive = true;
  size_t workloads = 0;
  size_t queries = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double hit_rate = 0.0;       // level 1: histogram cache
  double template_hit_rate = 0.0;  // level 2: template-id cache
  uint64_t flushes_full = 0;
  uint64_t flushes_adaptive = 0;
  uint64_t flushes_deadline = 0;
  uint64_t errors = 0;
  bool bitwise_identical = true;
  // Traversal kernel of the served model's compiled ensemble; "reference"
  // when compiled routing is off for the run.
  std::string kernel = "reference";
};

std::string ToJson(const ServeRow& r) {
  return StrFormat(
      "{\"figure\":\"serve_latency\",\"mode\":\"%s\",\"clients\":%d,"
      "\"shards\":%d,\"adaptive\":%s,\"kernel\":\"%s\",\"workloads\":%zu,"
      "\"queries\":%zu,"
      "\"seconds\":%.3f,\"queries_per_sec\":%.1f,\"p50_us\":%.1f,"
      "\"p99_us\":%.1f,\"cache_hit_rate\":%.4f,\"template_hit_rate\":%.4f,"
      "\"flushes_full\":%llu,\"flushes_adaptive\":%llu,"
      "\"flushes_deadline\":%llu,\"errors\":%llu,\"bitwise_identical\":%s}",
      r.mode.c_str(), r.clients, r.shards, r.adaptive ? "true" : "false",
      r.kernel.c_str(), r.workloads, r.queries, r.seconds, r.qps, r.p50_us,
      r.p99_us, r.hit_rate, r.template_hit_rate,
      static_cast<unsigned long long>(r.flushes_full),
      static_cast<unsigned long long>(r.flushes_adaptive),
      static_cast<unsigned long long>(r.flushes_deadline),
      static_cast<unsigned long long>(r.errors),
      r.bitwise_identical ? "true" : "false");
}

// Drives `clients` threads, each submitting its slice of `batches`
// `repeat` times, and fills latency + prediction outputs. Predictions are
// recorded per (pass, workload) for the bitwise check.
struct DriveResult {
  double seconds = 0.0;
  std::vector<double> latencies_us;
  std::vector<std::vector<double>> pass_predictions;  // [repeat][workload]
  uint64_t errors = 0;
};

DriveResult Drive(engine::ScoringService* service,
                  const std::vector<workloads::QueryRecord>& records,
                  const std::vector<core::WorkloadBatch>& batches,
                  int clients, int repeat, bool pipelined) {
  DriveResult out;
  out.pass_predictions.assign(
      static_cast<size_t>(repeat),
      std::vector<double>(batches.size(), 0.0));
  std::vector<std::vector<double>> per_client_lat(
      static_cast<size_t>(clients));
  std::atomic<uint64_t> errors{0};
  util::Latch start(static_cast<size_t>(clients) + 1);
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const std::string tenant = StrFormat("client-%d", c);
      auto& lat = per_client_lat[static_cast<size_t>(c)];
      // Strided slice: client c owns workloads c, c+clients, ... — clients
      // never submit each other's workloads, so a pass can re-hit its own
      // pass-1 cache entries without cross-client coordination.
      std::vector<size_t> slice;
      for (size_t w = static_cast<size_t>(c); w < batches.size();
           w += static_cast<size_t>(clients)) {
        slice.push_back(w);
      }
      start.ArriveAndWait();
      for (int r = 0; r < repeat; ++r) {
        auto& preds = out.pass_predictions[static_cast<size_t>(r)];
        if (pipelined) {
          // Open loop: submit the whole slice, then drain. Latency is the
          // client-observed completion (sojourn) time per request.
          std::vector<std::chrono::steady_clock::time_point> t0(slice.size());
          std::vector<std::future<Result<double>>> futures;
          futures.reserve(slice.size());
          for (size_t i = 0; i < slice.size(); ++i) {
            t0[i] = std::chrono::steady_clock::now();
            futures.push_back(service->Submit(
                tenant, records, batches[slice[i]].query_indices));
          }
          for (size_t i = 0; i < slice.size(); ++i) {
            auto got = futures[i].get();
            lat.push_back(
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - t0[i])
                    .count());
            if (got.ok()) {
              preds[slice[i]] = *got;
            } else {
              errors.fetch_add(1, std::memory_order_relaxed);
            }
          }
        } else {
          // Closed loop: one request in flight per client.
          for (size_t w : slice) {
            Stopwatch sw;
            auto fut =
                service->Submit(tenant, records, batches[w].query_indices);
            auto got = fut.get();
            lat.push_back(sw.ElapsedMicros());
            if (got.ok()) {
              preds[w] = *got;
            } else {
              errors.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      }
    });
  }
  Stopwatch wall;
  start.ArriveAndWait();
  for (auto& t : threads) t.join();
  out.seconds = wall.ElapsedSeconds();
  out.errors = errors.load();
  for (auto& v : per_client_lat) {
    out.latencies_us.insert(out.latencies_us.end(), v.begin(), v.end());
  }
  return out;
}

size_t CountQueries(const std::vector<core::WorkloadBatch>& batches) {
  size_t n = 0;
  for (const auto& b : batches) n += b.query_indices.size();
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner(
      "serve_latency",
      "async service v2: adaptive flush, two-level cache, model hot-swap",
      args);

  // One TPC-C model serves every configuration; the serving layer, not the
  // model, is under test. A second model (different seed) is the hot-swap
  // payload.
  const core::ExperimentConfig cfg =
      bench::MakeConfig(workloads::Benchmark::kTpcc, args);
  auto data = core::PrepareExperiment(cfg);
  if (!data.ok()) {
    std::cerr << "prepare failed: " << data.status() << "\n";
    return 1;
  }
  core::LearnedWmpOptions lopt;
  lopt.templates.num_templates = 16;
  lopt.batch_size = cfg.batch_size;
  lopt.seed = cfg.seed;
  auto model = core::LearnedWmpModel::Train(
      data->dataset.records, data->train_indices, *data->dataset.generator,
      lopt);
  if (!model.ok()) {
    std::cerr << "train failed: " << model.status() << "\n";
    return 1;
  }
  core::LearnedWmpOptions lopt2 = lopt;
  lopt2.seed = cfg.seed + 1;  // distinct centroids + trees: a real retrain
  auto model2 = core::LearnedWmpModel::Train(
      data->dataset.records, data->train_indices, *data->dataset.generator,
      lopt2);
  if (!model2.ok()) {
    std::cerr << "train (swap payload) failed: " << model2.status() << "\n";
    return 1;
  }
  const auto& records = data->dataset.records;
  const auto batches =
      engine::MakeConsecutiveBatches(records.size(), cfg.batch_size);

  std::vector<ServeRow> rows;

  // --- Baseline: the PR 1 offline path, batch 1000, all cores ---
  {
    engine::BatchScorer scorer(&*model);
    auto warmup = scorer.ScoreLog(records, 1000);  // touch pool + caches
    auto res = scorer.ScoreLog(records, 1000);
    ServeRow row;
    row.mode = "baseline";
    if (res.ok()) {
      row.workloads = res->stats.num_workloads;
      row.queries = res->stats.num_queries;
      row.seconds = res->stats.elapsed_ms / 1e3;
      row.qps = res->stats.queries_per_sec;
    } else {
      std::cerr << "baseline failed: " << res.status() << "\n";
      return 1;
    }
    (void)warmup;
    rows.push_back(row);
  }

  // One run of `passes` over `batches` against a fresh service; returns the
  // recorded row (also appended to `rows`).
  const auto run_row = [&](const char* mode, int clients, int shards,
                           int passes, bool pipelined,
                           const std::vector<core::WorkloadBatch>& batches,
                           engine::ScoringServiceOptions sopt) {
    engine::ScoringService service(
        std::vector<const core::LearnedWmpModel*>(
            static_cast<size_t>(shards), &*model),
        sopt);
    DriveResult d =
        Drive(&service, records, batches, clients, passes, pipelined);
    service.Stop();
    const engine::ServiceStats st = service.stats();
    ServeRow row;
    row.mode = mode;
    row.clients = clients;
    row.shards = shards;
    row.adaptive = sopt.adaptive_flush;
    row.workloads = st.completed;
    // The clients' strided slices partition the stream, so each pass
    // submits every workload exactly once.
    row.queries = CountQueries(batches) * static_cast<size_t>(passes);
    row.seconds = d.seconds;
    row.qps =
        d.seconds > 0 ? static_cast<double>(row.queries) / d.seconds : 0.0;
    row.p50_us = util::PercentileInPlace(&d.latencies_us, 0.50);
    row.p99_us = util::PercentileInPlace(&d.latencies_us, 0.99);
    row.hit_rate = st.cache_hit_rate();
    row.template_hit_rate = st.template_cache_hit_rate();
    row.flushes_full = st.flushes_full;
    row.flushes_adaptive = st.flushes_adaptive;
    row.flushes_deadline = st.flushes_deadline;
    row.errors = d.errors;
    row.bitwise_identical = d.errors == 0;
    for (int r = 1; r < passes && row.bitwise_identical; ++r) {
      for (size_t w = 0; w < batches.size(); ++w) {
        if (d.pass_predictions[static_cast<size_t>(r)][w] !=
            d.pass_predictions[0][w]) {
          row.bitwise_identical = false;
          break;
        }
      }
    }
    rows.push_back(row);
    return row;
  };

  const std::vector<int> shard_grid = args.quick ? std::vector<int>{1}
                                                 : std::vector<int>{1, 2, 4};
  const std::vector<int> client_grid =
      args.quick ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  const int repeat = args.quick ? 4 : 10;  // hits = (repeat-1)/repeat

  // --- Adaptive vs fixed closed-loop latency, and the pipelined/repeat
  // throughput sweep ---
  for (int shards : shard_grid) {
    TablePrinter table(StrFormat("serve_latency — %d shard(s)", shards));
    table.SetHeader({"clients", "fixed p50/p99 us", "adaptive p50/p99 us",
                     "piped qps", "repeat qps", "hist hit", "tmpl hit",
                     "bitwise"});
    for (int clients : client_grid) {
      engine::ScoringServiceOptions fixed_opt;
      fixed_opt.adaptive_flush = false;
      const ServeRow fixed =
          run_row("sync_fixed", clients, shards, 1, false, batches, fixed_opt);
      engine::ScoringServiceOptions adaptive_opt;  // defaults: adaptive on
      const ServeRow adaptive = run_row("sync_adaptive", clients, shards, 1,
                                        false, batches, adaptive_opt);
      // Open-loop clients build deep queues; let the dispatcher flush them
      // in full-size scoring passes, and keep the delay window small so
      // the per-pass drain barrier doesn't idle the service.
      engine::ScoringServiceOptions piped_opt;
      piped_opt.max_batch = 1024;
      piped_opt.max_delay_us = 25;
      const ServeRow piped = run_row("cold_pipelined", clients, shards, 1,
                                     true, batches, piped_opt);
      const ServeRow rep =
          run_row("repeat", clients, shards, repeat, true, batches, piped_opt);
      table.AddRow(
          {StrFormat("%d", clients),
           StrFormat("%.0f / %.0f", fixed.p50_us, fixed.p99_us),
           StrFormat("%.0f / %.0f", adaptive.p50_us, adaptive.p99_us),
           StrFormat("%.0f", piped.qps), StrFormat("%.0f", rep.qps),
           StrFormat("%.1f%%", 100.0 * rep.hit_rate),
           StrFormat("%.1f%%", 100.0 * rep.template_hit_rate),
           rep.bitwise_identical ? "yes" : "NO"});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  // --- Novel combinations of known queries: histogram cache blind,
  // template-id cache hot. Warm with the consecutive grouping, then
  // submit stride regroupings no workload fingerprint has seen. ---
  {
    const int clients = args.quick ? 2 : 4;
    engine::ScoringServiceOptions sopt;
    sopt.max_batch = 1024;
    sopt.max_delay_us = 25;
    engine::ScoringService service({&*model}, sopt);
    // Warm pass: consecutive grouping fills both cache levels.
    DriveResult warm = Drive(&service, records, batches, clients, 1, true);
    const engine::ServiceStats warm_st = service.stats();
    // Novel pass: deal queries round-robin into as many workloads, so
    // every workload is a new multiset of already-known queries.
    const size_t n_workloads = batches.size();
    std::vector<core::WorkloadBatch> novel(n_workloads);
    for (size_t q = 0; q < records.size(); ++q) {
      novel[q % n_workloads].query_indices.push_back(
          static_cast<uint32_t>(q));
    }
    DriveResult d = Drive(&service, records, novel, clients, 1, true);
    service.Stop();
    const engine::ServiceStats st = service.stats();
    ServeRow row;
    row.mode = "novel";
    row.clients = clients;
    row.shards = 1;
    row.workloads = novel.size();
    row.queries = CountQueries(novel);
    row.seconds = d.seconds;
    row.qps = d.seconds > 0 ? static_cast<double>(row.queries) / d.seconds
                            : 0.0;
    row.p50_us = util::PercentileInPlace(&d.latencies_us, 0.50);
    row.p99_us = util::PercentileInPlace(&d.latencies_us, 0.99);
    // Deltas isolate the novel pass from the warm-up.
    const uint64_t h_hits = st.cache_hits - warm_st.cache_hits;
    const uint64_t h_miss = st.cache_misses - warm_st.cache_misses;
    const uint64_t t_hits = st.template_cache_hits - warm_st.template_cache_hits;
    const uint64_t t_miss =
        st.template_cache_misses - warm_st.template_cache_misses;
    row.hit_rate = h_hits + h_miss > 0
                       ? static_cast<double>(h_hits) /
                             static_cast<double>(h_hits + h_miss)
                       : 0.0;
    row.template_hit_rate = t_hits + t_miss > 0
                                ? static_cast<double>(t_hits) /
                                      static_cast<double>(t_hits + t_miss)
                                : 0.0;
    // Delta-consistent with the hit rates: the novel row reports the
    // novel pass only, not the warm-up's flushes or errors.
    row.flushes_full = st.flushes_full - warm_st.flushes_full;
    row.flushes_adaptive = st.flushes_adaptive - warm_st.flushes_adaptive;
    row.flushes_deadline = st.flushes_deadline - warm_st.flushes_deadline;
    row.errors = d.errors;
    row.bitwise_identical = d.errors == 0;
    if (warm.errors != 0) {
      std::cerr << "serve_latency: novel warm-up pass had " << warm.errors
                << " errors\n";
      return 1;
    }
    rows.push_back(row);
    TablePrinter table("serve_latency — novel combinations of known queries");
    table.SetHeader({"pass", "hist hit rate", "tmpl hit rate", "qps"});
    table.AddRow({"warm (consecutive)",
                  StrFormat("%.1f%%", 100.0 * warm_st.cache_hit_rate()),
                  StrFormat("%.1f%%",
                            100.0 * warm_st.template_cache_hit_rate()),
                  StrFormat("%.0f", warm.seconds > 0
                                        ? CountQueries(batches) / warm.seconds
                                        : 0.0)});
    table.AddRow({"novel (regrouped)",
                  StrFormat("%.1f%%", 100.0 * row.hit_rate),
                  StrFormat("%.1f%%", 100.0 * row.template_hit_rate),
                  StrFormat("%.0f", row.qps)});
    table.Print(std::cout);
    std::cout << "\n";
  }

  // --- Hot swap under live pipelined load: publish model2 mid-stream,
  // then check the post-swap steady state is model2 bitwise. ---
  {
    const int clients = args.quick ? 2 : 4;
    const int passes = args.quick ? 6 : 12;
    engine::ScoringServiceOptions sopt;
    sopt.max_batch = 1024;
    sopt.max_delay_us = 25;
    engine::ScoringService service({&*model}, sopt);
    std::thread publisher([&] {
      // Swap once the stream is demonstrably live (mid-first-pass), gated
      // on completed requests rather than a sleep so a fast machine can't
      // race past the publish. Publishing after the drive finished would
      // be harmless — but then the phase would measure nothing.
      const uint64_t live_mark = batches.size() / 2 + 1;
      while (service.stats().completed < live_mark) std::this_thread::yield();
      (void)service.PublishModel(0, {std::shared_ptr<const void>(), &*model2});
    });
    DriveResult d = Drive(&service, records, batches, clients, passes, true);
    publisher.join();
    // Post-swap steady state, still under the same service: bitwise the
    // new model's own batched scoring.
    engine::BatchScorer reference(&*model2);
    auto want = reference.ScoreWorkloads(records, batches);
    bool post_swap_bitwise = want.ok();
    uint64_t post_errors = 0;
    if (want.ok()) {
      for (size_t w = 0; w < batches.size(); ++w) {
        auto got =
            service.Submit("probe", records, batches[w].query_indices).get();
        if (!got.ok()) {
          ++post_errors;
        } else if (*got != want->predictions[w]) {
          post_swap_bitwise = false;
        }
      }
    }
    service.Stop();
    const engine::ServiceStats st = service.stats();
    ServeRow row;
    row.mode = "hotswap";
    row.clients = clients;
    row.shards = 1;
    row.workloads = st.completed;
    row.queries = CountQueries(batches) * static_cast<size_t>(passes);
    row.seconds = d.seconds;
    row.qps = d.seconds > 0 ? static_cast<double>(row.queries) / d.seconds
                            : 0.0;
    row.p50_us = util::PercentileInPlace(&d.latencies_us, 0.50);
    row.p99_us = util::PercentileInPlace(&d.latencies_us, 0.99);
    row.hit_rate = st.cache_hit_rate();
    row.template_hit_rate = st.template_cache_hit_rate();
    row.flushes_full = st.flushes_full;
    row.flushes_adaptive = st.flushes_adaptive;
    row.flushes_deadline = st.flushes_deadline;
    row.errors = d.errors + post_errors;
    row.bitwise_identical = post_swap_bitwise;
    rows.push_back(row);
    TablePrinter table("serve_latency — PublishModel under live traffic");
    table.SetHeader(
        {"requests", "failed", "post-swap bitwise", "qps during swap"});
    table.AddRow({StrFormat("%llu",
                            static_cast<unsigned long long>(st.completed)),
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        st.failed + row.errors)),
                  post_swap_bitwise ? "yes" : "NO",
                  StrFormat("%.0f", row.qps)});
    table.Print(std::cout);
    std::cout << "\n";
  }

  // --- Apples-to-apples vs the baseline: serve the SAME batch-1000
  // workloads through the async service, 8 concurrent clients, repeated
  // stream. This is the acceptance bar: the serving layer (queues,
  // futures, micro-batching, caches) must sustain the offline batch-1000
  // throughput, not tax it away.
  {
    const auto batches_1000 =
        engine::MakeConsecutiveBatches(records.size(), 1000);
    const int b1000_clients = args.quick ? 4 : 8;
    const int b1000_passes = args.quick ? 10 : 50;
    const std::vector<int> b1000_shards =
        args.quick ? std::vector<int>{1} : std::vector<int>{1, 2};
    TablePrinter table(StrFormat("serve_latency — batch-1000 stream, %d clients",
                                 b1000_clients));
    table.SetHeader(
        {"shards", "qps", "baseline qps", "ratio", "hit rate", "bitwise"});
    engine::ScoringServiceOptions sopt;
    sopt.max_batch = 1024;
    sopt.max_delay_us = 25;
    for (int shards : b1000_shards) {
      const ServeRow row = run_row("serve_batch1000", b1000_clients, shards,
                                   b1000_passes, true, batches_1000, sopt);
      table.AddRow({StrFormat("%d", shards), StrFormat("%.0f", row.qps),
                    StrFormat("%.0f", rows[0].qps),
                    StrFormat("%.2fx", row.qps / std::max(rows[0].qps, 1.0)),
                    StrFormat("%.1f%%", 100.0 * row.hit_rate),
                    row.bitwise_identical ? "yes" : "NO"});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  // --- Compiled bin-space inference vs the reference regressor walk,
  // through the full service stack, once per traversal kernel. One cold
  // pipelined pass each over the same stream; every compiled run's bitwise
  // flag compares every prediction against the reference pass and feeds
  // the nonzero-exit gate below, so CI's serve smoke fails on any
  // compiled/reference divergence — under the scalar walk and the default
  // lockstep kernel alike. ---
  {
    const int clients = args.quick ? 2 : 4;
    engine::ScoringServiceOptions sopt;
    sopt.max_batch = 1024;
    sopt.max_delay_us = 25;
    model->set_compiled_inference(false);
    engine::ScoringService ref_service({&*model}, sopt);
    DriveResult ref = Drive(&ref_service, records, batches, clients, 1, true);
    ref_service.Stop();
    model->set_compiled_inference(true);
    TablePrinter table("serve_latency — compiled bin-space inference");
    table.SetHeader({"path", "kernel", "qps", "p50 us", "p99 us", "bitwise"});
    table.AddRow({"reference", "-",
                  StrFormat("%.0f",
                            ref.seconds > 0
                                ? CountQueries(batches) / ref.seconds
                                : 0.0),
                  StrFormat("%.0f", util::PercentileInPlace(
                                        &ref.latencies_us, 0.50)),
                  StrFormat("%.0f", util::PercentileInPlace(
                                        &ref.latencies_us, 0.99)),
                  "-"});
    // Scalar walk first, then the default (lockstep) kernel — the service
    // is constructed after each recompile, so it serves a stable snapshot.
    const struct {
      const char* mode;
      ml::TraverseKernel kernel;
    } kernel_runs[] = {{"compiled_scalar", ml::TraverseKernel::kScalar},
                       {"compiled", ml::TraverseKernel::kAuto}};
    for (const auto& kr : kernel_runs) {
      if (!model->RecompileInference(ml::CompileOptions{.kernel = kr.kernel})
               .ok()) {
        std::cerr << "recompile failed\n";
        return 1;
      }
      engine::ScoringService service({&*model}, sopt);
      DriveResult d = Drive(&service, records, batches, clients, 1, true);
      service.Stop();
      bool bitwise = ref.errors == 0 && d.errors == 0;
      for (size_t w = 0; bitwise && w < batches.size(); ++w) {
        if (d.pass_predictions[0][w] != ref.pass_predictions[0][w]) {
          std::cerr << "compiled/reference divergence (" << kr.mode
                    << ") at workload " << w << ": "
                    << d.pass_predictions[0][w] << " vs "
                    << ref.pass_predictions[0][w] << "\n";
          bitwise = false;
        }
      }
      ServeRow row;
      row.mode = kr.mode;
      row.kernel = model->compiled() != nullptr
                       ? model->compiled()->kernel_name()
                       : "reference";
      row.clients = clients;
      row.shards = 1;
      row.workloads = batches.size();
      row.queries = CountQueries(batches);
      row.seconds = d.seconds;
      row.qps = d.seconds > 0 ? static_cast<double>(row.queries) / d.seconds
                              : 0.0;
      row.p50_us = util::PercentileInPlace(&d.latencies_us, 0.50);
      row.p99_us = util::PercentileInPlace(&d.latencies_us, 0.99);
      row.errors = d.errors + ref.errors;
      row.bitwise_identical = bitwise;
      rows.push_back(row);
      table.AddRow({kr.mode, row.kernel, StrFormat("%.0f", row.qps),
                    StrFormat("%.0f", row.p50_us),
                    StrFormat("%.0f", row.p99_us), bitwise ? "yes" : "NO"});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  // --- Cache-bypass cold mode: both cache levels disabled and the
  // records' precomputed plan_features stripped, so every submission pays
  // the full cold featurize (plan walk) -> scale -> assign per query on
  // every request. Pruned centroid assignment vs the NearestCentroids
  // reference scan isolates the assignment engine inside the service
  // stack; predictions must be bitwise equal, and the pruned run reports
  // the ServiceStats assignment counters. ---
  {
    const int clients = args.quick ? 2 : 4;
    engine::ScoringServiceOptions sopt;
    sopt.max_batch = 1024;
    sopt.max_delay_us = 25;
    sopt.cache_capacity = 0;           // bypass level 1 (histograms)
    sopt.template_cache_capacity = 0;  // bypass level 2 (template ids)
    auto& mut_records = data->dataset.records;
    std::vector<std::vector<double>> saved(mut_records.size());
    for (size_t i = 0; i < mut_records.size(); ++i) {
      saved[i].swap(mut_records[i].plan_features);
    }
    struct ColdOut {
      ServeRow row;
      std::vector<double> predictions;
      engine::ServiceStats stats;
    };
    const auto run_cold = [&](const char* mode, bool pruned) {
      model->mutable_templates()->set_pruned_assign(pruned);
      engine::ScoringService service({&*model}, sopt);
      DriveResult d = Drive(&service, records, batches, clients, 1, true);
      service.Stop();
      ColdOut out;
      out.stats = service.stats();
      out.predictions = d.pass_predictions[0];
      out.row.mode = mode;
      out.row.clients = clients;
      out.row.shards = 1;
      out.row.workloads = batches.size();
      out.row.queries = CountQueries(batches);
      out.row.seconds = d.seconds;
      out.row.qps = d.seconds > 0
                        ? static_cast<double>(out.row.queries) / d.seconds
                        : 0.0;
      out.row.p50_us = util::PercentileInPlace(&d.latencies_us, 0.50);
      out.row.p99_us = util::PercentileInPlace(&d.latencies_us, 0.99);
      out.row.errors = d.errors;
      return out;
    };
    // Reference first so the pruned run's counter deltas are its own.
    const auto ref_before = model->templates().assign_stats();
    ColdOut ref = run_cold("cold_nocache_reference", false);
    const auto pruned_before = model->templates().assign_stats();
    ColdOut pruned = run_cold("cold_nocache_pruned", true);
    const auto pruned_after = model->templates().assign_stats();
    model->mutable_templates()->set_pruned_assign(true);
    for (size_t i = 0; i < mut_records.size(); ++i) {
      saved[i].swap(mut_records[i].plan_features);
    }
    // The reference scan must not have touched the pruned counters, and
    // the two cold runs must agree bitwise per workload.
    bool bitwise = ref.row.errors == 0 && pruned.row.errors == 0 &&
                   pruned_before.rows == ref_before.rows;
    for (size_t w = 0; bitwise && w < batches.size(); ++w) {
      if (pruned.predictions[w] != ref.predictions[w]) {
        std::cerr << "cold_nocache divergence at workload " << w << ": "
                  << pruned.predictions[w] << " vs " << ref.predictions[w]
                  << "\n";
        bitwise = false;
      }
    }
    ref.row.bitwise_identical = bitwise;
    pruned.row.bitwise_identical = bitwise;
    rows.push_back(ref.row);
    rows.push_back(pruned.row);
    const uint64_t d_rows = pruned_after.rows - pruned_before.rows;
    const uint64_t d_skip = pruned_after.bound_skips - pruned_before.bound_skips;
    const uint64_t d_early =
        pruned_after.early_exits - pruned_before.early_exits;
    TablePrinter table(
        "serve_latency — cache-bypass cold path (plan-walk featurize)");
    table.SetHeader({"path", "qps", "p50 us", "p99 us", "assign rows",
                     "bound skips", "early exits", "bitwise"});
    table.AddRow({"reference scan", StrFormat("%.0f", ref.row.qps),
                  StrFormat("%.0f", ref.row.p50_us),
                  StrFormat("%.0f", ref.row.p99_us), "-", "-", "-", "-"});
    table.AddRow(
        {"pruned index", StrFormat("%.0f", pruned.row.qps),
         StrFormat("%.0f", pruned.row.p50_us),
         StrFormat("%.0f", pruned.row.p99_us),
         StrFormat("%llu", static_cast<unsigned long long>(d_rows)),
         StrFormat("%llu", static_cast<unsigned long long>(d_skip)),
         StrFormat("%llu", static_cast<unsigned long long>(d_early)),
         bitwise ? "yes" : "NO"});
    table.Print(std::cout);
    std::cout << "\n";
  }

  FILE* out = stdout;
  if (!args.json_path.empty()) {
    out = std::fopen(args.json_path.c_str(), "w");
    if (out == nullptr) {
      std::cerr << "cannot open " << args.json_path << "\n";
      return 1;
    }
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out, "  %s%s\n", ToJson(rows[i]).c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  if (out != stdout) std::fclose(out);

  // Exit nonzero if any serving-path invariant failed, so the CI smoke
  // step fails on crashes AND regressions.
  for (const ServeRow& r : rows) {
    if (r.errors != 0 || !r.bitwise_identical) {
      std::cerr << "serve_latency: mode " << r.mode << " had " << r.errors
                << " errors (bitwise "
                << (r.bitwise_identical ? "ok" : "BROKEN") << ")\n";
      return 1;
    }
  }
  return 0;
}
