// Micro-benchmarks (google-benchmark) of the hot pipeline components:
// SQL parsing, planning, plan featurization (TR2), EXPLAIN round-trip,
// template assignment (IN3), histogram construction (IN4), the end-to-end
// LearnedWMP inference path (IN1-IN5), and the batched serving path
// (engine::BatchScorer) vs the scalar per-query loop.
//
// The serving benchmarks sweep batch sizes {1, 10, 100, 1000} and thread
// counts {1, hardware_concurrency}; `items_per_second` is queries/sec.
// Run with `--benchmark_format=json` (optionally
// `--benchmark_out=FILE --benchmark_out_format=json`) to emit the JSON
// trajectory.

#include <benchmark/benchmark.h>

#include "core/featurizer.h"
#include "core/histogram.h"
#include "core/learned_wmp.h"
#include "engine/batch_scorer.h"
#include "plan/explain.h"
#include "plan/features.h"
#include "plan/plan_parser.h"
#include "plan/planner.h"
#include "sql/parser.h"
#include "util/arena.h"
#include "util/parallel.h"
#include "workloads/dataset.h"

namespace {

using namespace wmp;

// Shared fixture state, built once.
struct PipelineState {
  workloads::Dataset dataset;
  core::LearnedWmpModel model;
  std::vector<uint32_t> batch;
  std::string sample_sql;
  std::string sample_explain;

  static PipelineState& Get() {
    static PipelineState* state = [] {
      auto* s = new PipelineState();
      workloads::DatasetOptions opt;
      opt.num_queries = 2000;
      opt.seed = 17;
      s->dataset =
          std::move(*workloads::BuildDataset(workloads::Benchmark::kTpcds, opt));
      core::LearnedWmpOptions lopt;
      lopt.templates.num_templates = 50;
      s->model = std::move(*core::LearnedWmpModel::Train(
          s->dataset.records, core::AllIndices(s->dataset.records.size()),
          *s->dataset.generator, lopt));
      for (uint32_t i = 0; i < 10; ++i) s->batch.push_back(i);
      s->sample_sql = s->dataset.records[0].sql_text;
      s->sample_explain = plan::Explain(*s->dataset.records[0].plan);
      return s;
    }();
    return *state;
  }
};

void BM_SqlParse(benchmark::State& state) {
  PipelineState& s = PipelineState::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::Parse(s.sample_sql));
  }
}
BENCHMARK(BM_SqlParse);

void BM_PlanQuery(benchmark::State& state) {
  PipelineState& s = PipelineState::Get();
  plan::Planner planner(&s.dataset.generator->catalog());
  const sql::Query& q = s.dataset.records[0].query;
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.CreatePlan(q));
  }
}
BENCHMARK(BM_PlanQuery);

void BM_ExtractPlanFeatures(benchmark::State& state) {
  PipelineState& s = PipelineState::Get();
  const plan::PlanNode& plan = *s.dataset.records[0].plan;
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan::ExtractPlanFeatures(plan));
  }
}
BENCHMARK(BM_ExtractPlanFeatures);

void BM_ExplainRoundTrip(benchmark::State& state) {
  PipelineState& s = PipelineState::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan::ParseExplain(s.sample_explain));
  }
}
BENCHMARK(BM_ExplainRoundTrip);

void BM_TemplateAssign(benchmark::State& state) {
  PipelineState& s = PipelineState::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        s.model.templates().Assign(s.dataset.records[0]));
  }
}
BENCHMARK(BM_TemplateAssign);

void BM_BinWorkload(benchmark::State& state) {
  PipelineState& s = PipelineState::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.model.BinWorkload(s.dataset.records, s.batch));
  }
}
BENCHMARK(BM_BinWorkload);

void BM_PredictWorkload(benchmark::State& state) {
  PipelineState& s = PipelineState::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        s.model.PredictWorkload(s.dataset.records, s.batch));
  }
}
BENCHMARK(BM_PredictWorkload);

// ---------------------------------------------------------------------------
// Cache-bypass cold path: what a template-cache miss (or a drift/retrain
// row) pays. Each iteration re-parses and re-plans a batch of queries from
// SQL text into one reused bump arena, then featurizes + scales + assigns
// them in a single AssignBatch pass over records whose plan_features are
// absent — the featurizer walks the freshly planned trees instead of
// gathering precomputed rows. Arg 0 is the batch size; arg 1 toggles the
// pruned centroid index (1) vs the NearestCentroids reference scan (0).
// `items_per_second` is cold queries/sec end to end (parse -> assign).
// ---------------------------------------------------------------------------
void BM_ColdPathParsePlanAssign(benchmark::State& state) {
  PipelineState& s = PipelineState::Get();
  const size_t batch = static_cast<size_t>(state.range(0));
  const bool prev_pruned = s.model.templates().pruned_assign();
  s.model.mutable_templates()->set_pruned_assign(state.range(1) != 0);
  plan::Planner planner(&s.dataset.generator->catalog());
  util::Arena arena(plan::kPlanArenaChunk * batch);
  std::vector<workloads::QueryRecord> cold(batch);
  std::vector<uint32_t> indices(batch);
  for (size_t i = 0; i < batch; ++i) indices[i] = static_cast<uint32_t>(i);
  for (auto _ : state) {
    // Non-owning PlanTree views into `arena` die with the rebuild below,
    // never outliving the reset.
    for (size_t i = 0; i < batch; ++i) cold[i].plan = plan::PlanTree();
    arena.Reset();
    for (size_t i = 0; i < batch; ++i) {
      auto query = sql::Parse(s.dataset.records[i].sql_text);
      if (!query.ok()) {
        state.SkipWithError("parse failed");
        return;
      }
      auto root = planner.CreatePlanInto(*query, &arena);
      if (!root.ok()) {
        state.SkipWithError("plan failed");
        return;
      }
      cold[i].plan = plan::PlanTree(nullptr, *root);
    }
    auto ids = s.model.templates().AssignBatch(cold, indices);
    if (!ids.ok()) {
      state.SkipWithError("assign failed");
      return;
    }
    benchmark::DoNotOptimize(ids);
  }
  for (size_t i = 0; i < batch; ++i) cold[i].plan = plan::PlanTree();
  s.model.mutable_templates()->set_pruned_assign(prev_pruned);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_ColdPathParsePlanAssign)
    ->Args({10, 1})
    ->Args({100, 1})
    ->Args({10, 0})
    ->Args({100, 0});

// ---------------------------------------------------------------------------
// Batched serving throughput. Arg 0 is the workload batch size; arg 1 the
// worker-thread count. Both paths score the whole 2000-query dataset per
// iteration, so `items_per_second` reads directly as queries/sec.
// ---------------------------------------------------------------------------

// The seed's scalar loop: one PredictWorkload (featurize -> assign ->
// histogram -> regress, one query at a time) per workload.
void BM_ScoreDatasetScalarLoop(benchmark::State& state) {
  PipelineState& s = PipelineState::Get();
  const auto batches = engine::MakeConsecutiveBatches(
      s.dataset.records.size(), static_cast<int>(state.range(0)));
  for (auto _ : state) {
    for (const auto& b : batches) {
      benchmark::DoNotOptimize(
          s.model.PredictWorkload(s.dataset.records, b.query_indices));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(s.dataset.records.size()));
}

// The batched path: one BatchScorer session scoring every workload in a
// single featurize -> assign -> histogram -> regress matrix pass.
void BM_ScoreDatasetBatchScorer(benchmark::State& state) {
  PipelineState& s = PipelineState::Get();
  const auto batches = engine::MakeConsecutiveBatches(
      s.dataset.records.size(), static_cast<int>(state.range(0)));
  engine::BatchScorerOptions opt;
  opt.num_threads = static_cast<int>(state.range(1));
  engine::BatchScorer scorer(&s.model, opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scorer.ScoreWorkloads(s.dataset.records, batches));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(s.dataset.records.size()));
}

void ServingArgs(benchmark::internal::Benchmark* b) {
  const int hw = static_cast<int>(wmp::util::HardwareThreads());
  for (int batch_size : {1, 10, 100, 1000}) {
    b->Args({batch_size, 1});
    if (hw > 1) b->Args({batch_size, hw});
  }
}

BENCHMARK(BM_ScoreDatasetScalarLoop)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_ScoreDatasetBatchScorer)->Apply(ServingArgs);

}  // namespace

BENCHMARK_MAIN();
