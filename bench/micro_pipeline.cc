// Micro-benchmarks (google-benchmark) of the hot pipeline components:
// SQL parsing, planning, plan featurization (TR2), EXPLAIN round-trip,
// template assignment (IN3), histogram construction (IN4), and the
// end-to-end LearnedWMP inference path (IN1-IN5).

#include <benchmark/benchmark.h>

#include "core/featurizer.h"
#include "core/histogram.h"
#include "core/learned_wmp.h"
#include "plan/explain.h"
#include "plan/features.h"
#include "plan/plan_parser.h"
#include "plan/planner.h"
#include "sql/parser.h"
#include "workloads/dataset.h"

namespace {

using namespace wmp;

// Shared fixture state, built once.
struct PipelineState {
  workloads::Dataset dataset;
  core::LearnedWmpModel model;
  std::vector<uint32_t> batch;
  std::string sample_sql;
  std::string sample_explain;

  static PipelineState& Get() {
    static PipelineState* state = [] {
      auto* s = new PipelineState();
      workloads::DatasetOptions opt;
      opt.num_queries = 2000;
      opt.seed = 17;
      s->dataset =
          std::move(*workloads::BuildDataset(workloads::Benchmark::kTpcds, opt));
      core::LearnedWmpOptions lopt;
      lopt.templates.num_templates = 50;
      s->model = std::move(*core::LearnedWmpModel::Train(
          s->dataset.records, core::AllIndices(s->dataset.records.size()),
          *s->dataset.generator, lopt));
      for (uint32_t i = 0; i < 10; ++i) s->batch.push_back(i);
      s->sample_sql = s->dataset.records[0].sql_text;
      s->sample_explain = plan::Explain(*s->dataset.records[0].plan);
      return s;
    }();
    return *state;
  }
};

void BM_SqlParse(benchmark::State& state) {
  PipelineState& s = PipelineState::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::Parse(s.sample_sql));
  }
}
BENCHMARK(BM_SqlParse);

void BM_PlanQuery(benchmark::State& state) {
  PipelineState& s = PipelineState::Get();
  plan::Planner planner(&s.dataset.generator->catalog());
  const sql::Query& q = s.dataset.records[0].query;
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.CreatePlan(q));
  }
}
BENCHMARK(BM_PlanQuery);

void BM_ExtractPlanFeatures(benchmark::State& state) {
  PipelineState& s = PipelineState::Get();
  const plan::PlanNode& plan = *s.dataset.records[0].plan;
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan::ExtractPlanFeatures(plan));
  }
}
BENCHMARK(BM_ExtractPlanFeatures);

void BM_ExplainRoundTrip(benchmark::State& state) {
  PipelineState& s = PipelineState::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan::ParseExplain(s.sample_explain));
  }
}
BENCHMARK(BM_ExplainRoundTrip);

void BM_TemplateAssign(benchmark::State& state) {
  PipelineState& s = PipelineState::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        s.model.templates().Assign(s.dataset.records[0]));
  }
}
BENCHMARK(BM_TemplateAssign);

void BM_BinWorkload(benchmark::State& state) {
  PipelineState& s = PipelineState::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.model.BinWorkload(s.dataset.records, s.batch));
  }
}
BENCHMARK(BM_BinWorkload);

void BM_PredictWorkload(benchmark::State& state) {
  PipelineState& s = PipelineState::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        s.model.PredictWorkload(s.dataset.records, s.batch));
  }
}
BENCHMARK(BM_PredictWorkload);

}  // namespace

BENCHMARK_MAIN();
