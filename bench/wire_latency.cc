// Out-of-process serving benchmark: what does the wire add on top of the
// in-process ScoringService, and do the serving guarantees survive the
// process boundary?
//
//   inproc          C closed-loop clients submit one workload at a time
//                   straight into engine::ScoringService — the PR 3
//                   serving baseline the wire path is measured against.
//   remote          the same clients, each with its own net::WireClient,
//                   against a net::WireServer on a loopback Unix socket
//                   fronting an identical service: one workload per score
//                   frame, so p50/p99 isolates the per-request wire cost
//                   (frame codec + syscalls + record serialization).
//   remote_batched  the wire API used as intended — each score frame
//                   carries the client's whole workload slice, so framing
//                   and record shipping amortize across the batch. This is
//                   the qps number an admission controller integration
//                   should expect.
//   publish_rollback under concurrent remote score traffic, publish a
//                   retrained model over the wire (PublishAll across all
//                   shards + registry record), verify post-swap remote
//                   scores match the new model's own in-process
//                   BatchScorer bitwise — then Rollback and verify the
//                   PREVIOUS epoch's scores come back bitwise. Zero failed
//                   requests allowed anywhere.
//   reactor         the per-request closed-loop clients again, but against
//                   the single-threaded epoll ReactorServer instead of the
//                   thread-per-connection WireServer — swept over
//                   connection counts to show one event-loop thread
//                   holding many sockets.
//   pipelined       net::AsyncWireClient against the reactor: one workload
//                   per kScoreRequestPipelined frame with a 16-deep
//                   in-flight window per connection, so round trips
//                   overlap instead of serializing. Same connection sweep;
//                   this is the mode whose qps is compared against the
//                   blocking per-request wire at the top connection count.
//   reactor_publish_rollback
//                   the publish_rollback phase repeated against the
//                   reactor: checksum-verified publish, bitwise post-swap
//                   and post-rollback scores, zero failures — under
//                   concurrent reactor score traffic.
//
// Every remote prediction is compared bitwise against the in-process
// BatchScorer on the same model: the wire must be a transport, not a
// perturbation. Output: human tables + JSON records (--json=PATH), with
// --quick shrinking the sweep to a CI smoke size. Nonzero exit on any
// error, failed request, or bitwise mismatch.

#include <atomic>
#include <cstdio>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "bench_common.h"
#include "engine/batch_scorer.h"
#include "engine/model_registry.h"
#include "engine/scoring_service.h"
#include "net/async_client.h"
#include "net/reactor_server.h"
#include "net/wire_client.h"
#include "net/wire_server.h"
#include "util/stats.h"
#include "util/sync.h"
#include "util/timer.h"

using namespace wmp;

namespace {

struct WireRow {
  std::string mode;
  int clients = 0;
  size_t workloads = 0;
  size_t queries = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  uint64_t errors = 0;
  bool bitwise_identical = true;
};

std::string ToJson(const WireRow& r) {
  return StrFormat(
      "{\"figure\":\"wire_latency\",\"mode\":\"%s\",\"clients\":%d,"
      "\"workloads\":%zu,\"queries\":%zu,\"seconds\":%.3f,"
      "\"queries_per_sec\":%.1f,\"p50_us\":%.1f,\"p99_us\":%.1f,"
      "\"errors\":%llu,\"bitwise_identical\":%s}",
      r.mode.c_str(), r.clients, r.workloads, r.queries, r.seconds, r.qps,
      r.p50_us, r.p99_us, static_cast<unsigned long long>(r.errors),
      r.bitwise_identical ? "true" : "false");
}

size_t CountQueries(const std::vector<core::WorkloadBatch>& batches) {
  size_t n = 0;
  for (const auto& b : batches) n += b.query_indices.size();
  return n;
}

// Client c owns workloads c, c+clients, ... — a deterministic partition so
// per-workload predictions can be compared against the reference.
std::vector<size_t> SliceFor(int c, int clients, size_t n) {
  std::vector<size_t> slice;
  for (size_t w = static_cast<size_t>(c); w < n;
       w += static_cast<size_t>(clients)) {
    slice.push_back(w);
  }
  return slice;
}

struct DriveOut {
  double seconds = 0.0;
  std::vector<double> latencies_us;
  std::vector<double> predictions;  // per workload (last pass wins)
  uint64_t errors = 0;
};

// What an admission controller actually puts in a per-workload frame:
// just the member queries' scoring-relevant content (the wire format
// never ships plans/ASTs). Fingerprints are preserved so the server's
// caches key identically to the full-log requests.
std::vector<workloads::QueryRecord> CloneMembersForWire(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<uint32_t>& member_indices) {
  std::vector<workloads::QueryRecord> out;
  out.reserve(member_indices.size());
  for (uint32_t qi : member_indices) {
    const workloads::QueryRecord& r = records[qi];
    workloads::QueryRecord c;
    c.sql_text = r.sql_text;
    c.plan_features = r.plan_features;
    c.actual_memory_mb = r.actual_memory_mb;
    c.dbms_estimate_mb = r.dbms_estimate_mb;
    c.family_id = r.family_id;
    c.content_fingerprint = r.content_fingerprint;
    out.push_back(std::move(c));
  }
  return out;
}

// Drives `clients` threads of remote traffic for `passes` passes.
// per_call_workloads == 1 sends one workload per frame (latency mode);
// 0 sends the whole slice per frame (batched mode).
DriveOut DriveRemote(const std::string& address,
                     const std::vector<workloads::QueryRecord>& records,
                     const std::vector<core::WorkloadBatch>& batches,
                     int clients, int passes, size_t per_call_workloads) {
  DriveOut out;
  out.predictions.assign(batches.size(), 0.0);
  std::vector<std::vector<double>> per_client_lat(
      static_cast<size_t>(clients));
  std::atomic<uint64_t> errors{0};
  util::Latch start(static_cast<size_t>(clients) + 1);
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::WireClient client(address);
      auto& lat = per_client_lat[static_cast<size_t>(c)];
      const std::vector<size_t> slice = SliceFor(c, clients, batches.size());
      const std::string tenant = StrFormat("wire-client-%d", c);
      // Per-workload frames ship only that workload's member records
      // (prepared outside the timed region); the batched mode ships the
      // shared log once per frame and indexes into it.
      std::vector<std::vector<workloads::QueryRecord>> member_records;
      std::vector<core::WorkloadBatch> member_batch(1);
      if (per_call_workloads == 1) {
        member_records.reserve(slice.size());
        for (size_t w : slice) {
          member_records.push_back(
              CloneMembersForWire(records, batches[w].query_indices));
        }
      }
      start.ArriveAndWait();
      for (int pass = 0; pass < passes; ++pass) {
        if (per_call_workloads == 1) {
          for (size_t i = 0; i < slice.size(); ++i) {
            member_batch[0].query_indices.resize(member_records[i].size());
            for (uint32_t q = 0; q < member_records[i].size(); ++q) {
              member_batch[0].query_indices[q] = q;
            }
            Stopwatch sw;
            auto got = client.ScoreWorkloads(tenant, member_records[i],
                                             member_batch);
            lat.push_back(sw.ElapsedMicros());
            if (!got.ok() || !(*got)[0].ok()) {
              errors.fetch_add(1, std::memory_order_relaxed);
            } else {
              out.predictions[slice[i]] = *(*got)[0];
            }
          }
          continue;
        }
        const size_t group = slice.size();
        for (size_t begin = 0; begin < slice.size(); begin += group) {
          const size_t end = std::min(begin + group, slice.size());
          std::vector<core::WorkloadBatch> call_batches;
          call_batches.reserve(end - begin);
          for (size_t i = begin; i < end; ++i) {
            core::WorkloadBatch b;
            b.query_indices = batches[slice[i]].query_indices;
            call_batches.push_back(std::move(b));
          }
          Stopwatch sw;
          auto got = client.ScoreWorkloads(tenant, records, call_batches);
          lat.push_back(sw.ElapsedMicros());
          if (!got.ok()) {
            errors.fetch_add(end - begin, std::memory_order_relaxed);
            continue;
          }
          for (size_t i = begin; i < end; ++i) {
            const auto& outcome = (*got)[i - begin];
            if (outcome.ok()) {
              out.predictions[slice[i]] = *outcome;
            } else {
              errors.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      }
    });
  }
  Stopwatch wall;
  start.ArriveAndWait();
  for (auto& t : threads) t.join();
  out.seconds = wall.ElapsedSeconds();
  out.errors = errors.load();
  for (auto& v : per_client_lat) {
    out.latencies_us.insert(out.latencies_us.end(), v.begin(), v.end());
  }
  return out;
}

// Drives `clients` AsyncWireClient connections against a ReactorServer:
// one workload per pipelined frame, `window` requests in flight per
// connection. Latency is submit→harvest per request (harvested in
// submission order, so it reflects the amortized wire cost a caller
// actually experiences with the window open, not a single round trip).
DriveOut DrivePipelined(const std::string& address,
                        const std::vector<workloads::QueryRecord>& records,
                        const std::vector<core::WorkloadBatch>& batches,
                        int clients, int passes, size_t window) {
  DriveOut out;
  out.predictions.assign(batches.size(), 0.0);
  std::vector<std::vector<double>> per_client_lat(
      static_cast<size_t>(clients));
  std::atomic<uint64_t> errors{0};
  util::Latch start(static_cast<size_t>(clients) + 1);
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::AsyncWireClientOptions aopt;
      aopt.max_inflight = window;
      auto connected = net::AsyncWireClient::Connect(address, aopt);
      if (!connected.ok()) {
        errors.fetch_add(1, std::memory_order_relaxed);
        start.ArriveAndWait();
        return;
      }
      std::unique_ptr<net::AsyncWireClient> client = std::move(*connected);
      auto& lat = per_client_lat[static_cast<size_t>(c)];
      const std::vector<size_t> slice = SliceFor(c, clients, batches.size());
      const std::string tenant = StrFormat("pipelined-client-%d", c);
      // Per-workload payloads prepared outside the timed region, exactly
      // like the per-request blocking mode, so the comparison isolates
      // the transport.
      std::vector<std::vector<workloads::QueryRecord>> member_records;
      std::vector<std::vector<core::WorkloadBatch>> member_batches;
      member_records.reserve(slice.size());
      member_batches.reserve(slice.size());
      for (size_t w : slice) {
        member_records.push_back(
            CloneMembersForWire(records, batches[w].query_indices));
        core::WorkloadBatch b;
        b.query_indices.resize(member_records.back().size());
        for (uint32_t q = 0; q < b.query_indices.size(); ++q) {
          b.query_indices[q] = q;
        }
        member_batches.push_back({std::move(b)});
      }
      struct InFlight {
        size_t w = 0;
        Stopwatch sw;
        std::future<Result<net::ScoreResponse>> response;
      };
      start.ArriveAndWait();
      for (int pass = 0; pass < passes; ++pass) {
        std::vector<InFlight> inflight;
        inflight.reserve(slice.size());
        for (size_t i = 0; i < slice.size(); ++i) {
          InFlight f;
          f.w = slice[i];
          auto submitted = client->SubmitScore(tenant, member_records[i],
                                               member_batches[i]);
          if (!submitted.ok()) {
            errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          f.response = std::move(*submitted);
          inflight.push_back(std::move(f));
        }
        for (InFlight& f : inflight) {
          auto got = f.response.get();
          lat.push_back(f.sw.ElapsedMicros());
          if (!got.ok() || got->size() != 1 || !got->ok[0]) {
            errors.fetch_add(1, std::memory_order_relaxed);
          } else {
            out.predictions[f.w] = got->predictions[0];
          }
        }
      }
    });
  }
  Stopwatch wall;
  start.ArriveAndWait();
  for (auto& t : threads) t.join();
  out.seconds = wall.ElapsedSeconds();
  out.errors = errors.load();
  for (auto& v : per_client_lat) {
    out.latencies_us.insert(out.latencies_us.end(), v.begin(), v.end());
  }
  return out;
}

bool BitwiseEqual(const std::vector<double>& got,
                  const std::vector<double>& want) {
  if (got.size() != want.size()) return false;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i] != want[i]) return false;
  }
  return true;
}

WireRow MakeDriveRow(const std::string& mode, int clients, int passes,
                     const std::vector<core::WorkloadBatch>& batches,
                     DriveOut d, const std::vector<double>& want) {
  WireRow row;
  row.mode = mode;
  row.clients = clients;
  row.workloads = batches.size() * static_cast<size_t>(passes);
  row.queries = CountQueries(batches) * static_cast<size_t>(passes);
  row.seconds = d.seconds;
  row.qps = d.seconds > 0 ? static_cast<double>(row.queries) / d.seconds : 0.0;
  row.p50_us = util::PercentileInPlace(&d.latencies_us, 0.50);
  row.p99_us = util::PercentileInPlace(&d.latencies_us, 0.99);
  row.errors = d.errors;
  row.bitwise_identical = BitwiseEqual(d.predictions, want);
  return row;
}

// Publish model2 over the wire under concurrent score traffic, verify the
// post-swap steady state is model2 bitwise, roll back, verify model1's
// scores return bitwise. Works unchanged against either server (the
// checksum trust boundary and the registry epoch machinery live behind
// the shared dispatcher).
WireRow RunPublishRollback(const std::string& address,
                           const std::string& mode,
                           const std::vector<workloads::QueryRecord>& records,
                           const std::vector<core::WorkloadBatch>& batches,
                           const core::LearnedWmpModel& swap_model,
                           const std::vector<double>& want1,
                           const std::vector<double>& want2, int clients) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bg_errors{0};
  // Background clients keep scoring across both swaps; their predictions
  // are intentionally unchecked (they legitimately straddle epochs) but
  // must never FAIL.
  std::vector<std::thread> background;
  for (int c = 0; c < clients; ++c) {
    background.emplace_back([&, c] {
      net::WireClient client(address);
      const auto slice = SliceFor(c, clients, batches.size());
      const std::string tenant = StrFormat("bg-client-%d", c);
      while (!stop.load(std::memory_order_relaxed)) {
        for (size_t w : slice) {
          auto got = client.ScoreWorkloads(tenant, records, {batches[w]});
          if (!got.ok() || !(*got)[0].ok()) {
            bg_errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  WireRow row;
  row.mode = mode;
  row.clients = clients;
  row.workloads = batches.size() * 2;
  row.queries = CountQueries(batches) * 2;
  Stopwatch wall;
  net::WireClient control(address);
  uint64_t control_errors = 0;
  bool bitwise = true;
  // Publish the retrain over the wire, then the post-swap steady state
  // must be the new model, bitwise, as served to a fresh client.
  auto epoch2 = control.Publish("bench", swap_model);
  if (!epoch2.ok()) {
    std::cerr << "publish failed: " << epoch2.status() << "\n";
    ++control_errors;
  }
  auto after_publish = control.ScoreWorkloads("verify", records, batches);
  if (!after_publish.ok()) {
    ++control_errors;
  } else {
    std::vector<double> got(batches.size(), 0.0);
    for (size_t w = 0; w < batches.size(); ++w) {
      if ((*after_publish)[w].ok()) {
        got[w] = *(*after_publish)[w];
      } else {
        ++control_errors;
      }
    }
    if (!BitwiseEqual(got, want2)) bitwise = false;
  }
  // Roll back: the PREVIOUS epoch's scores must return exactly.
  auto epoch1 = control.Rollback("bench");
  if (!epoch1.ok()) {
    std::cerr << "rollback failed: " << epoch1.status() << "\n";
    ++control_errors;
  }
  auto after_rollback = control.ScoreWorkloads("verify", records, batches);
  if (!after_rollback.ok()) {
    ++control_errors;
  } else {
    std::vector<double> got(batches.size(), 0.0);
    for (size_t w = 0; w < batches.size(); ++w) {
      if ((*after_rollback)[w].ok()) {
        got[w] = *(*after_rollback)[w];
      } else {
        ++control_errors;
      }
    }
    if (!BitwiseEqual(got, want1)) bitwise = false;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : background) t.join();
  row.seconds = wall.ElapsedSeconds();
  row.qps = 0.0;  // correctness phase, not a throughput claim
  row.errors = control_errors + bg_errors.load();
  row.bitwise_identical = bitwise;

  TablePrinter table(
      StrFormat("wire_latency — PublishAll + Rollback over the wire (%s)",
                mode.c_str()));
  table.SetHeader({"publish epoch", "rollback epoch", "bg errors",
                   "bitwise (swap/rollback)"});
  table.AddRow(
      {epoch2.ok()
           ? StrFormat("%llu", static_cast<unsigned long long>(*epoch2))
           : "FAILED",
       epoch1.ok()
           ? StrFormat("%llu", static_cast<unsigned long long>(*epoch1))
           : "FAILED",
       StrFormat("%llu", static_cast<unsigned long long>(bg_errors.load())),
       bitwise ? "yes" : "NO"});
  table.Print(std::cout);
  std::cout << "\n";
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner(
      "wire_latency",
      "out-of-process serving: wire protocol vs in-process service", args);

  const core::ExperimentConfig cfg =
      bench::MakeConfig(workloads::Benchmark::kTpcc, args);
  auto data = core::PrepareExperiment(cfg);
  if (!data.ok()) {
    std::cerr << "prepare failed: " << data.status() << "\n";
    return 1;
  }
  core::LearnedWmpOptions lopt;
  lopt.templates.num_templates = 16;
  lopt.batch_size = cfg.batch_size;
  lopt.seed = cfg.seed;
  auto model1 = core::LearnedWmpModel::Train(
      data->dataset.records, data->train_indices, *data->dataset.generator,
      lopt);
  if (!model1.ok()) {
    std::cerr << "train failed: " << model1.status() << "\n";
    return 1;
  }
  core::LearnedWmpOptions lopt2 = lopt;
  lopt2.seed = cfg.seed + 1;  // a genuinely different retrain
  auto model2 = core::LearnedWmpModel::Train(
      data->dataset.records, data->train_indices, *data->dataset.generator,
      lopt2);
  if (!model2.ok()) {
    std::cerr << "train (swap payload) failed: " << model2.status() << "\n";
    return 1;
  }
  const auto& records = data->dataset.records;
  const auto batches =
      engine::MakeConsecutiveBatches(records.size(), cfg.batch_size);
  auto m1 = std::make_shared<const core::LearnedWmpModel>(std::move(*model1));
  auto m2 = std::make_shared<const core::LearnedWmpModel>(std::move(*model2));

  // In-process bitwise references for both models.
  engine::BatchScorer ref1(m1), ref2(m2);
  auto want1 = ref1.ScoreWorkloads(records, batches);
  auto want2 = ref2.ScoreWorkloads(records, batches);
  if (!want1.ok() || !want2.ok()) {
    std::cerr << "reference scoring failed\n";
    return 1;
  }

  const int clients = args.quick ? 2 : 4;
  const int passes = args.quick ? 2 : 5;
  std::vector<WireRow> rows;

  // --- inproc: closed-loop clients straight into the service ---
  {
    engine::ScoringService service({m1});
    std::vector<std::vector<double>> per_client_lat(
        static_cast<size_t>(clients));
    std::vector<double> predictions(batches.size(), 0.0);
    std::atomic<uint64_t> errors{0};
    util::Latch start(static_cast<size_t>(clients) + 1);
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        auto& lat = per_client_lat[static_cast<size_t>(c)];
        const auto slice = SliceFor(c, clients, batches.size());
        const std::string tenant = StrFormat("inproc-client-%d", c);
        start.ArriveAndWait();
        for (int pass = 0; pass < passes; ++pass) {
          for (size_t w : slice) {
            Stopwatch sw;
            auto got =
                service.Submit(tenant, records, batches[w].query_indices)
                    .get();
            lat.push_back(sw.ElapsedMicros());
            if (got.ok()) {
              predictions[w] = *got;
            } else {
              errors.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }
    Stopwatch wall;
    start.ArriveAndWait();
    for (auto& t : threads) t.join();
    WireRow row;
    row.mode = "inproc";
    row.clients = clients;
    row.seconds = wall.ElapsedSeconds();
    service.Stop();
    row.workloads = batches.size() * static_cast<size_t>(passes);
    row.queries = CountQueries(batches) * static_cast<size_t>(passes);
    row.qps = row.seconds > 0
                  ? static_cast<double>(row.queries) / row.seconds
                  : 0.0;
    std::vector<double> lat;
    for (auto& v : per_client_lat) lat.insert(lat.end(), v.begin(), v.end());
    row.p50_us = util::PercentileInPlace(&lat, 0.50);
    row.p99_us = util::PercentileInPlace(&lat, 0.99);
    row.errors = errors.load();
    row.bitwise_identical = BitwiseEqual(predictions, want1->predictions);
    rows.push_back(row);
  }

  // --- remote modes: a real server on a loopback Unix socket ---
  const std::string address =
      StrFormat("unix:/tmp/wmp_wire_latency.%d.sock",
                static_cast<int>(::getpid()));
  engine::ScoringService service({m1});
  service.SetWarmCorpus(&records);
  engine::ModelRegistry registry;
  if (auto rec = registry.Record("bench", m1); !rec.ok()) {
    std::cerr << "registry record failed: " << rec.status() << "\n";
    return 1;
  }
  net::WireServer server(&service, &registry, "bench");
  if (Status st = server.Listen(address); !st.ok()) {
    std::cerr << "listen failed: " << st << "\n";
    return 1;
  }
  if (Status st = server.Start(); !st.ok()) {
    std::cerr << "start failed: " << st << "\n";
    return 1;
  }

  for (const bool batched : {false, true}) {
    rows.push_back(MakeDriveRow(
        batched ? "remote_batched" : "remote", clients, passes, batches,
        DriveRemote(address, records, batches, clients, passes,
                    batched ? 0 : 1),
        want1->predictions));
  }

  // --- publish + rollback under concurrent remote traffic ---
  rows.push_back(RunPublishRollback(address, "publish_rollback", records,
                                    batches, *m2, want1->predictions,
                                    want2->predictions, clients));

  // --- event-loop reactor + pipelined client: connection sweep ---
  // The reactor fronts the SAME service and registry as the blocking
  // server (two transports, one engine), so its scores are compared
  // against the identical in-process reference. The blocking per-request
  // mode is re-driven at each sweep point to give the pipelined mode an
  // apples-to-apples baseline at the same connection count.
  const std::string reactor_address =
      StrFormat("unix:/tmp/wmp_wire_latency.%d.reactor.sock",
                static_cast<int>(::getpid()));
  net::ReactorServer reactor(&service, &registry, "bench");
  if (Status st = reactor.Listen(reactor_address); !st.ok()) {
    std::cerr << "reactor listen failed: " << st << "\n";
    return 1;
  }
  if (Status st = reactor.Start(); !st.ok()) {
    std::cerr << "reactor start failed: " << st << "\n";
    return 1;
  }
  const std::vector<int> sweep =
      args.quick ? std::vector<int>{2, 8} : std::vector<int>{1, 2, 4, 8};
  const size_t kWindow = 16;
  double blocking_qps_top = 0.0, pipelined_qps_top = 0.0;
  for (int n : sweep) {
    WireRow blocking_row = MakeDriveRow(
        "remote", n, passes, batches,
        DriveRemote(address, records, batches, n, passes, 1),
        want1->predictions);
    WireRow reactor_row = MakeDriveRow(
        "reactor", n, passes, batches,
        DriveRemote(reactor_address, records, batches, n, passes, 1),
        want1->predictions);
    WireRow pipelined_row = MakeDriveRow(
        "pipelined", n, passes, batches,
        DrivePipelined(reactor_address, records, batches, n, passes, kWindow),
        want1->predictions);
    if (n == sweep.back()) {
      blocking_qps_top = blocking_row.qps;
      pipelined_qps_top = pipelined_row.qps;
    }
    rows.push_back(std::move(blocking_row));
    rows.push_back(std::move(reactor_row));
    rows.push_back(std::move(pipelined_row));
  }
  if (blocking_qps_top > 0) {
    std::printf(
        "pipelined reactor at %d connections: %.0f q/s vs blocking "
        "per-request %.0f q/s — %.2fx (window %zu)\n\n",
        sweep.back(), pipelined_qps_top, blocking_qps_top,
        pipelined_qps_top / blocking_qps_top, kWindow);
  }

  // --- publish + rollback against the reactor, under reactor traffic ---
  rows.push_back(RunPublishRollback(reactor_address,
                                    "reactor_publish_rollback", records,
                                    batches, *m2, want1->predictions,
                                    want2->predictions, clients));

  reactor.Shutdown();
  server.Shutdown();
  service.Stop();

  TablePrinter table("wire_latency — in-process vs wire");
  table.SetHeader({"mode", "clients", "qps", "p50 us", "p99 us", "errors",
                   "bitwise"});
  for (const WireRow& r : rows) {
    table.AddRow({r.mode, StrFormat("%d", r.clients),
                  StrFormat("%.0f", r.qps), StrFormat("%.0f", r.p50_us),
                  StrFormat("%.0f", r.p99_us),
                  StrFormat("%llu", static_cast<unsigned long long>(r.errors)),
                  r.bitwise_identical ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::cout << "\n";

  FILE* out = stdout;
  if (!args.json_path.empty()) {
    out = std::fopen(args.json_path.c_str(), "w");
    if (out == nullptr) {
      std::cerr << "cannot open " << args.json_path << "\n";
      return 1;
    }
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out, "  %s%s\n", ToJson(rows[i]).c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  if (out != stdout) std::fclose(out);

  for (const WireRow& r : rows) {
    if (r.errors != 0 || !r.bitwise_identical) {
      std::cerr << "wire_latency: mode " << r.mode << " had " << r.errors
                << " errors (bitwise "
                << (r.bitwise_identical ? "ok" : "BROKEN") << ")\n";
      return 1;
    }
  }
  return 0;
}
