// Fig. 6 reproduction: ML model training time (ms) of LearnedWMP vs
// SingleWMP per model family. SingleWMP-DBMS is excluded (no training,
// footnote 1 in the paper).
//
// Expected shape: LearnedWMP trains faster than the equivalent SingleWMP
// model for every non-trivial learner (it fits |Q_train|/s workload
// examples instead of |Q_train| queries); Ridge shows no meaningful gap
// (closed-form solve, the paper calls this out).
//
// Output: human tables plus JSON records (stdout, or --json=PATH) so the
// BENCH trajectory can track training perf per family — including the tree
// engines' bin/grow/update phase breakdown for the Learned variants.

#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "bench_common.h"

using namespace wmp;

namespace {

struct TrainRow {
  std::string benchmark;
  std::string family;
  double single_ms = 0.0;
  double learned_ms = 0.0;
  double speedup = 0.0;
  double template_ms = 0.0;  // shared phase-1 cost, repeated per row
  ml::FitTiming learned_phases;
};

std::string ToJson(const TrainRow& r) {
  return StrFormat(
      "{\"benchmark\": \"%s\", \"family\": \"%s\", \"single_ms\": %.2f, "
      "\"learned_ms\": %.2f, \"speedup\": %.2f, \"template_ms\": %.2f, "
      "\"learned_bin_ms\": %.2f, \"learned_grow_ms\": %.2f, "
      "\"learned_update_ms\": %.2f}",
      r.benchmark.c_str(), r.family.c_str(), r.single_ms, r.learned_ms,
      r.speedup, r.template_ms, r.learned_phases.bin_ms,
      r.learned_phases.grow_ms, r.learned_phases.update_ms);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Fig. 6", "model training time (ms)", args);

  std::vector<TrainRow> rows;
  for (workloads::Benchmark benchmark : workloads::AllBenchmarks()) {
    auto result = core::RunCoreExperiment(bench::MakeConfig(benchmark, args));
    if (!result.ok()) {
      std::cerr << "experiment failed: " << result.status() << "\n";
      return 1;
    }
    struct FamilyTimes {
      double single_ms = 0.0;
      double learned_ms = 0.0;
      ml::FitTiming learned_phases;
    };
    std::map<std::string, FamilyTimes> by_family;
    for (const core::ModelReport& r : result->reports) {
      if (r.name == "SingleWMP-DBMS") continue;
      const bool learned = r.name.rfind("LearnedWMP-", 0) == 0;
      const std::string family = r.name.substr(r.name.find('-') + 1);
      FamilyTimes& t = by_family[family];
      if (learned) {
        t.learned_ms = r.train_ms;
        t.learned_phases = r.fit_timing;
      } else {
        t.single_ms = r.train_ms;
      }
    }
    TablePrinter table(
        StrFormat("Fig. 6 — %s training time (ms)", result->benchmark.c_str()));
    table.SetHeader({"family", "SingleWMP", "LearnedWMP", "speedup"});
    for (const auto& [family, times] : by_family) {
      table.AddRow({family, StrFormat("%.1f", times.single_ms),
                    StrFormat("%.1f", times.learned_ms),
                    StrFormat("%.1fx", times.single_ms /
                                           std::max(times.learned_ms, 1e-3))});
      rows.push_back({result->benchmark, family, times.single_ms,
                      times.learned_ms,
                      times.single_ms / std::max(times.learned_ms, 1e-3),
                      result->template_learning_ms, times.learned_phases});
    }
    table.Print(std::cout);
    std::cout << StrFormat(
        "(shared LearnedWMP phase-1 template learning: %.1f ms, once per "
        "deployment)\n\n",
        result->template_learning_ms);
  }

  FILE* out = stdout;
  if (!args.json_path.empty()) {
    out = std::fopen(args.json_path.c_str(), "w");
    if (out == nullptr) {
      std::cerr << "cannot open " << args.json_path << "\n";
      return 1;
    }
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out, "  %s%s\n", ToJson(rows[i]).c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  if (out != stdout) std::fclose(out);
  return 0;
}
