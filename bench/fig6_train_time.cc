// Fig. 6 reproduction: ML model training time (ms) of LearnedWMP vs
// SingleWMP per model family. SingleWMP-DBMS is excluded (no training,
// footnote 1 in the paper).
//
// Expected shape: LearnedWMP trains faster than the equivalent SingleWMP
// model for every non-trivial learner (it fits |Q_train|/s workload
// examples instead of |Q_train| queries); Ridge shows no meaningful gap
// (closed-form solve, the paper calls this out).

#include <iostream>
#include <map>

#include "bench_common.h"

using namespace wmp;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Fig. 6", "model training time (ms)", args);

  for (workloads::Benchmark benchmark : workloads::AllBenchmarks()) {
    auto result = core::RunCoreExperiment(bench::MakeConfig(benchmark, args));
    if (!result.ok()) {
      std::cerr << "experiment failed: " << result.status() << "\n";
      return 1;
    }
    std::map<std::string, std::pair<double, double>> by_family;  // single, learned
    for (const core::ModelReport& r : result->reports) {
      if (r.name == "SingleWMP-DBMS") continue;
      const bool learned = r.name.rfind("LearnedWMP-", 0) == 0;
      const std::string family = r.name.substr(r.name.find('-') + 1);
      (learned ? by_family[family].second : by_family[family].first) =
          r.train_ms;
    }
    TablePrinter table(
        StrFormat("Fig. 6 — %s training time (ms)", result->benchmark.c_str()));
    table.SetHeader({"family", "SingleWMP", "LearnedWMP", "speedup"});
    for (const auto& [family, times] : by_family) {
      table.AddRow({family, StrFormat("%.1f", times.first),
                    StrFormat("%.1f", times.second),
                    StrFormat("%.1fx", times.first /
                                           std::max(times.second, 1e-3))});
    }
    table.Print(std::cout);
    std::cout << StrFormat(
        "(shared LearnedWMP phase-1 template learning: %.1f ms, once per "
        "deployment)\n\n",
        result->template_learning_ms);
  }
  return 0;
}
