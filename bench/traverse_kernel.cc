// Traversal-kernel micro-bench: scalar walk vs lockstep-4/8 vs the AVX2
// gather kernel on compiled DT/RF/GBT ensembles, swept over LUT depth
// {0, 3, 6}, u8/u16 code widths, and batch sizes {1, 10, 100, 1000}.
//
// This isolates CompiledEnsemble::Predict — synthetic training data, no
// workload pipeline — so the numbers measure pure traversal throughput
// (rows/sec) of each kernel. Every configuration's predictions are gated
// bitwise against the scalar walk on the same chunking; any divergence is
// a nonzero exit (CI runs `--quick`).
//
// Flags: --quick (CI smoke size), --json=PATH (trajectory records),
// --seed=<n>.

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ml/compiled_tree.h"
#include "ml/dtree.h"
#include "ml/gbt.h"
#include "ml/random_forest.h"
#include "util/random.h"
#include "util/timer.h"

using namespace wmp;

namespace {

// Keeps Predict results observable across timing passes.
volatile double g_sink = 0.0;

struct SyntheticData {
  ml::Matrix train;
  ml::Matrix test;
  std::vector<double> y;
};

SyntheticData MakeData(size_t n, size_t n_test, size_t d, uint64_t seed) {
  SyntheticData data;
  Rng rng(seed);
  data.train = ml::Matrix(n, d);
  data.test = ml::Matrix(n_test, d);
  data.y.resize(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < d; ++c) {
      data.train.At(i, c) = rng.UniformDouble(-5, 5);
    }
    data.y[i] = data.train.At(i, 0) * data.train.At(i, 0) -
                2.0 * data.train.At(i, 1 % d) +
                (data.train.At(i, 2 % d) > 0 ? 3.0 : -1.0) +
                rng.Normal(0, 0.25);
  }
  // Test rows range wider than training so traversal leaves the fitted
  // edges too.
  for (size_t i = 0; i < n_test; ++i) {
    for (size_t c = 0; c < d; ++c) {
      data.test.At(i, c) = rng.UniformDouble(-8, 8);
    }
  }
  return data;
}

struct ModelSpec {
  std::string name;
  std::unique_ptr<ml::Regressor> model;
  SyntheticData data;
};

// Paper-scale-ish families: RF ~100 trees, GBT ~200 rounds (shrunk under
// --quick), a deep single DT, and a wide-bin DT that forces u16 codes.
std::vector<ModelSpec> TrainModels(bool quick, uint64_t seed) {
  std::vector<ModelSpec> specs;
  const size_t n = quick ? 1500 : 4000;
  const size_t n_test = quick ? 512 : 2048;
  {
    ModelSpec s;
    s.name = "dt";
    s.data = MakeData(n, n_test, 16, seed + 1);
    ml::DecisionTreeOptions opt;
    opt.tree.max_depth = 12;
    opt.seed = 3;
    auto m = std::make_unique<ml::DecisionTreeRegressor>(opt);
    if (!m->Fit(s.data.train, s.data.y).ok()) std::abort();
    s.model = std::move(m);
    specs.push_back(std::move(s));
  }
  {
    ModelSpec s;
    s.name = "rf";
    s.data = MakeData(n, n_test, 16, seed + 2);
    ml::RandomForestOptions opt;
    opt.num_trees = quick ? 20 : 100;
    opt.tree.max_depth = 10;
    opt.seed = 5;
    auto m = std::make_unique<ml::RandomForestRegressor>(opt);
    if (!m->Fit(s.data.train, s.data.y).ok()) std::abort();
    s.model = std::move(m);
    specs.push_back(std::move(s));
  }
  {
    ModelSpec s;
    s.name = "gbt";
    s.data = MakeData(n, n_test, 16, seed + 3);
    ml::GbtOptions opt;
    opt.num_rounds = quick ? 40 : 200;
    opt.max_depth = 6;
    opt.seed = 7;
    auto m = std::make_unique<ml::GbtRegressor>(opt);
    if (!m->Fit(s.data.train, s.data.y).ok()) std::abort();
    s.model = std::move(m);
    specs.push_back(std::move(s));
  }
  {
    // > 255 distinct thresholds per feature falls back to u16 codes.
    ModelSpec s;
    s.name = "dt_wide";
    s.data = MakeData(quick ? 2000 : 4000, n_test, 2, seed + 4);
    ml::DecisionTreeOptions opt;
    opt.tree.max_depth = 16;
    opt.tree.max_bins = 4096;
    opt.tree.min_samples_leaf = 1;
    opt.seed = 11;
    auto m = std::make_unique<ml::DecisionTreeRegressor>(opt);
    if (!m->Fit(s.data.train, s.data.y).ok()) std::abort();
    s.model = std::move(m);
    specs.push_back(std::move(s));
  }
  return specs;
}

std::vector<ml::Matrix> SplitChunks(const ml::Matrix& x, size_t batch) {
  std::vector<ml::Matrix> chunks;
  for (size_t begin = 0; begin < x.rows(); begin += batch) {
    const size_t rows = std::min(batch, x.rows() - begin);
    ml::Matrix m(rows, x.cols());
    for (size_t i = 0; i < rows; ++i) {
      for (size_t c = 0; c < x.cols(); ++c) {
        m.At(i, c) = x.At(begin + i, c);
      }
    }
    chunks.push_back(std::move(m));
  }
  return chunks;
}

// One pass collects predictions (for the bitwise gate), then timed passes
// repeat until `min_ms` has elapsed. Returns rows/sec, or -1 on error.
double MeasureRowsPerSec(const ml::CompiledEnsemble& compiled,
                         const std::vector<ml::Matrix>& chunks, size_t rows,
                         double min_ms, std::vector<double>* predictions) {
  predictions->clear();
  predictions->reserve(rows);
  for (const ml::Matrix& m : chunks) {
    auto p = compiled.Predict(m);
    if (!p.ok()) return -1.0;
    predictions->insert(predictions->end(), p->begin(), p->end());
  }
  int reps = 0;
  double ms = 0.0;
  Stopwatch sw;
  do {
    double sum = 0.0;
    for (const ml::Matrix& m : chunks) {
      auto p = compiled.Predict(m);
      if (!p.ok()) return -1.0;
      sum += p->front();
    }
    g_sink = g_sink + sum;
    ++reps;
    ms = sw.ElapsedMillis();
  } while (ms < min_ms);
  return 1e3 * static_cast<double>(rows) * reps / ms;
}

struct BenchRow {
  std::string model;
  std::string codes;  // "u8" | "u16"
  int lut = 0;
  std::string kernel;
  size_t batch = 0;
  double rows_per_sec = 0.0;
  double speedup = 0.0;  // vs scalar at the same (model, lut, batch)
};

std::string ToJson(const BenchRow& r) {
  return StrFormat(
      "{\"figure\":\"traverse_kernel\",\"model\":\"%s\",\"codes\":\"%s\","
      "\"lut\":%d,\"kernel\":\"%s\",\"batch\":%zu,\"rows_per_sec\":%.0f,"
      "\"speedup_vs_scalar\":%.3f}",
      r.model.c_str(), r.codes.c_str(), r.lut, r.kernel.c_str(), r.batch,
      r.rows_per_sec, r.speedup);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  std::printf("=======================================================\n");
  std::printf("traverse_kernel — lockstep vs scalar compiled traversal\n");
  std::printf("quick=%s seed=%llu\n", args.quick ? "yes" : "no",
              static_cast<unsigned long long>(args.seed));
  std::printf("=======================================================\n");

  std::vector<ml::TraverseKernel> kernels = {ml::TraverseKernel::kScalar,
                                             ml::TraverseKernel::kLockstep4,
                                             ml::TraverseKernel::kLockstep8};
  if (ml::TraverseKernelSupported(ml::TraverseKernel::kAvx2)) {
    kernels.push_back(ml::TraverseKernel::kAvx2);
  } else {
    std::printf("avx2 kernel: unsupported on this cpu, skipped\n");
  }
  const std::vector<int> luts = args.quick ? std::vector<int>{0, 3}
                                           : std::vector<int>{0, 3, 6};
  const std::vector<size_t> batches = args.quick
                                          ? std::vector<size_t>{1, 100, 512}
                                          : std::vector<size_t>{1, 10, 100,
                                                                1000};
  const double min_ms = args.quick ? 10.0 : 60.0;

  std::vector<ModelSpec> specs = TrainModels(args.quick, args.seed);
  std::vector<BenchRow> rows;
  size_t mismatches = 0;
  for (const ModelSpec& spec : specs) {
    auto compiled = ml::CompiledEnsemble::CompileRegressor(
        *spec.model, ml::CompileOptions{.lut_levels = 0,
                                        .kernel = ml::TraverseKernel::kScalar});
    if (!compiled.ok()) {
      std::cerr << "compile failed: " << compiled.status() << "\n";
      return 1;
    }
    const char* codes = compiled->narrow() ? "u8" : "u16";
    std::printf("\nmodel %s: %zu trees, %zu nodes, %s codes\n",
                spec.name.c_str(), compiled->num_trees(),
                compiled->num_nodes(), codes);
    for (int lut : luts) {
      auto ce = ml::CompiledEnsemble::CompileRegressor(
          *spec.model,
          ml::CompileOptions{.lut_levels = lut,
                             .kernel = ml::TraverseKernel::kScalar});
      if (!ce.ok()) {
        std::cerr << "compile failed: " << ce.status() << "\n";
        return 1;
      }
      TablePrinter table(StrFormat("%s lut=%d — rows/sec by kernel",
                                   spec.name.c_str(), lut));
      std::vector<std::string> header = {"batch"};
      for (ml::TraverseKernel k : kernels) {
        header.push_back(ml::TraverseKernelName(k));
      }
      header.push_back("best gain");
      table.SetHeader(header);
      for (size_t batch : batches) {
        const std::vector<ml::Matrix> chunks =
            SplitChunks(spec.data.test, batch);
        const size_t n = spec.data.test.rows();
        std::vector<std::string> cells = {StrFormat("%zu", batch)};
        double scalar_rps = 0.0;
        double best_gain = 0.0;
        std::vector<double> want, got;
        for (ml::TraverseKernel k : kernels) {
          if (!ce->ForceKernel(k).ok()) {
            std::cerr << "ForceKernel failed\n";
            return 1;
          }
          std::vector<double>* preds =
              k == ml::TraverseKernel::kScalar ? &want : &got;
          const double rps = MeasureRowsPerSec(*ce, chunks, n, min_ms, preds);
          if (rps < 0) {
            std::cerr << "predict failed\n";
            return 1;
          }
          if (k == ml::TraverseKernel::kScalar) {
            scalar_rps = rps;
          } else {
            // Bitwise gate: every kernel must reproduce the scalar walk
            // exactly on this chunking.
            for (size_t i = 0; i < want.size(); ++i) {
              if (got[i] != want[i]) {
                std::cerr << "BITWISE MISMATCH: " << spec.name << " lut="
                          << lut << " batch=" << batch << " kernel="
                          << ml::TraverseKernelName(k) << " row " << i << ": "
                          << got[i] << " vs " << want[i] << "\n";
                ++mismatches;
                break;
              }
            }
            best_gain = std::max(best_gain, rps / scalar_rps);
          }
          cells.push_back(StrFormat("%.0f", rps));
          BenchRow row;
          row.model = spec.name;
          row.codes = codes;
          row.lut = lut;
          row.kernel = ml::TraverseKernelName(k);
          row.batch = batch;
          row.rows_per_sec = rps;
          row.speedup = scalar_rps > 0 ? rps / scalar_rps : 0.0;
          rows.push_back(row);
        }
        cells.push_back(StrFormat("%.2fx", best_gain));
        table.AddRow(cells);
      }
      table.Print(std::cout);
    }
  }

  FILE* out = stdout;
  if (!args.json_path.empty()) {
    out = std::fopen(args.json_path.c_str(), "w");
    if (out == nullptr) {
      std::cerr << "cannot open " << args.json_path << "\n";
      return 1;
    }
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out, "  %s%s\n", ToJson(rows[i]).c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  if (out != stdout) std::fclose(out);

  if (mismatches > 0) {
    std::cerr << mismatches << " kernel configuration(s) diverged from the "
                               "scalar walk\n";
    return 1;
  }
  std::printf("\nall kernels bitwise-identical to the scalar walk\n");
  return 0;
}
