// Fig. 11 reproduction: MAPE of LearnedWMP-XGB on TPC-DS as a function of
// the workload batch size s in {1, 2, 3, 5, 10, 15, 20, 25, 30, 35, 40,
// 45, 50}, plus the paper's batch-size-1 comparison against SingleWMP-XGB.
//
// Expected shape (§IV-C "Effect of the batch size parameter"): MAPE drops
// steeply as s grows, then flattens — batch estimation is more accurate
// than per-query estimation. At s=1 SingleWMP beats LearnedWMP (the
// histogram of a single query is a much weaker signal than its raw plan
// features; the paper reports 3.6% vs 10.2%).

#include <iostream>

#include "bench_common.h"

using namespace wmp;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Fig. 11", "MAPE vs workload batch size s (TPC-DS)",
                        args);

  TablePrinter table("Fig. 11 — TPC-DS, LearnedWMP-XGB");
  table.SetHeader({"batch size s", "MAPE", "RMSE (MB)", "test workloads"});
  const int batch_sizes[] = {1, 2, 3, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50};
  double learned_s1_mape = 0.0;
  for (int s : batch_sizes) {
    core::ExperimentConfig cfg =
        bench::MakeConfig(workloads::Benchmark::kTpcds, args);
    cfg.batch_size = s;
    auto data = core::PrepareExperiment(cfg);
    if (!data.ok()) {
      std::cerr << "prepare failed: " << data.status() << "\n";
      return 1;
    }
    auto report = core::EvaluateLearnedWmp(*data, ml::RegressorKind::kGbt);
    if (!report.ok()) {
      std::cerr << "s=" << s << " failed: " << report.status() << "\n";
      return 1;
    }
    if (s == 1) learned_s1_mape = report->mape;
    table.AddRow({StrFormat("%d", s), StrFormat("%.1f%%", report->mape),
                  StrFormat("%.1f", report->rmse),
                  StrFormat("%zu", data->test_batches.size())});
  }
  table.Print(std::cout);

  // Batch-size-1 head-to-head: SingleWMP sees raw plan features and wins.
  core::ExperimentConfig cfg =
      bench::MakeConfig(workloads::Benchmark::kTpcds, args);
  cfg.batch_size = 1;
  auto data = core::PrepareExperiment(cfg);
  if (!data.ok()) {
    std::cerr << "prepare failed: " << data.status() << "\n";
    return 1;
  }
  auto single = core::EvaluateSingleWmp(*data, ml::RegressorKind::kGbt);
  if (!single.ok()) {
    std::cerr << "single failed: " << single.status() << "\n";
    return 1;
  }
  std::cout << StrFormat(
      "\nbatch size 1 head-to-head: LearnedWMP-XGB MAPE %.1f%% vs "
      "SingleWMP-XGB MAPE %.1f%% — per-query features win on single "
      "queries, batching wins on workloads.\n",
      learned_s1_mape, single->mape);
  return 0;
}
