// Fig. 8 reproduction: serialized model size (kB) of LearnedWMP vs
// SingleWMP per model family.
//
// Expected shape (paper §IV-B): LearnedWMP models are substantially
// smaller for the tree-based families (they fit 10x fewer training
// examples, so the trees stay shallow) — EXCEPT Ridge, which inverts:
// LearnedWMP-Ridge stores one coefficient per template (k of them) while
// SingleWMP-Ridge stores one per plan feature, and k exceeds the plan
// feature count. The paper calls out exactly this exception.
//
// `model_bytes` is the production codec — the bin-space compiled form for
// the tree families (ml/compiled_tree.h): one shared edge table plus
// (child i32, feature u16, code u8/u16) per node. The `pointer` column is
// what the same regressor would occupy under the legacy five-8-byte-field
// node codec, so the table (and the --json records) show the compiled
// codec's shrink factor per family.

#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace wmp;

namespace {

struct SizeRow {
  std::string benchmark;
  std::string model;   // "SingleWMP" or "LearnedWMP"
  std::string family;  // "XGB", "DT", ...
  size_t bytes = 0;
  size_t pointer_bytes = 0;
};

std::string ToJson(const SizeRow& r) {
  return StrFormat(
      "{\"figure\":\"fig8_model_size\",\"benchmark\":\"%s\","
      "\"model\":\"%s\",\"family\":\"%s\",\"bytes\":%zu,"
      "\"pointer_bytes\":%zu,\"compiled_over_pointer\":%.3f}",
      r.benchmark.c_str(), r.model.c_str(), r.family.c_str(), r.bytes,
      r.pointer_bytes,
      r.pointer_bytes > 0
          ? static_cast<double>(r.bytes) / static_cast<double>(r.pointer_bytes)
          : 1.0);
}

struct FamilySizes {
  SizeRow single;
  SizeRow learned;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Fig. 8", "serialized model size (kB)", args);

  std::vector<SizeRow> rows;
  for (workloads::Benchmark benchmark : workloads::AllBenchmarks()) {
    auto result = core::RunCoreExperiment(bench::MakeConfig(benchmark, args));
    if (!result.ok()) {
      std::cerr << "experiment failed: " << result.status() << "\n";
      return 1;
    }
    std::map<std::string, FamilySizes> by_family;
    for (const core::ModelReport& r : result->reports) {
      if (r.name == "SingleWMP-DBMS") continue;
      const bool learned = r.name.rfind("LearnedWMP-", 0) == 0;
      const std::string family = r.name.substr(r.name.find('-') + 1);
      SizeRow& row =
          learned ? by_family[family].learned : by_family[family].single;
      row.benchmark = result->benchmark;
      row.model = learned ? "LearnedWMP" : "SingleWMP";
      row.family = family;
      row.bytes = r.model_bytes;
      row.pointer_bytes = r.pointer_model_bytes;
    }
    TablePrinter table(
        StrFormat("Fig. 8 — %s model size (kB)", result->benchmark.c_str()));
    table.SetHeader({"family", "SingleWMP", "LearnedWMP", "Learned/Single",
                     "Single ptr", "Learned ptr", "compiled/ptr"});
    for (const auto& [family, sizes] : by_family) {
      const SizeRow& s = sizes.single;
      const SizeRow& l = sizes.learned;
      const size_t ptr_total = s.pointer_bytes + l.pointer_bytes;
      const size_t total = s.bytes + l.bytes;
      table.AddRow(
          {family, StrFormat("%.1f", s.bytes / 1024.0),
           StrFormat("%.1f", l.bytes / 1024.0),
           StrFormat("%.0f%%", 100.0 * static_cast<double>(l.bytes) /
                                   static_cast<double>(s.bytes)),
           StrFormat("%.1f", s.pointer_bytes / 1024.0),
           StrFormat("%.1f", l.pointer_bytes / 1024.0),
           ptr_total > 0 ? StrFormat("%.0f%%", 100.0 *
                                                   static_cast<double>(total) /
                                                   static_cast<double>(
                                                       ptr_total))
                         : std::string("n/a")});
      rows.push_back(s);
      rows.push_back(l);
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  // Machine-readable trajectory: one JSON record per (benchmark, model,
  // family) size.
  FILE* out = stdout;
  if (!args.json_path.empty()) {
    out = std::fopen(args.json_path.c_str(), "w");
    if (out == nullptr) {
      std::cerr << "cannot open " << args.json_path << "\n";
      return 1;
    }
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out, "  %s%s\n", ToJson(rows[i]).c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  if (out != stdout) std::fclose(out);
  return 0;
}
