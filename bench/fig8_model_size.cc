// Fig. 8 reproduction: serialized model size (kB) of LearnedWMP vs
// SingleWMP per model family.
//
// Expected shape (paper §IV-B): LearnedWMP models are substantially
// smaller for the tree-based families (they fit 10x fewer training
// examples, so the trees stay shallow) — EXCEPT Ridge, which inverts:
// LearnedWMP-Ridge stores one coefficient per template (k of them) while
// SingleWMP-Ridge stores one per plan feature, and k exceeds the plan
// feature count. The paper calls out exactly this exception.

#include <iostream>
#include <map>

#include "bench_common.h"

using namespace wmp;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Fig. 8", "serialized model size (kB)", args);

  for (workloads::Benchmark benchmark : workloads::AllBenchmarks()) {
    auto result = core::RunCoreExperiment(bench::MakeConfig(benchmark, args));
    if (!result.ok()) {
      std::cerr << "experiment failed: " << result.status() << "\n";
      return 1;
    }
    std::map<std::string, std::pair<size_t, size_t>> by_family;
    for (const core::ModelReport& r : result->reports) {
      if (r.name == "SingleWMP-DBMS") continue;
      const bool learned = r.name.rfind("LearnedWMP-", 0) == 0;
      const std::string family = r.name.substr(r.name.find('-') + 1);
      (learned ? by_family[family].second : by_family[family].first) =
          r.model_bytes;
    }
    TablePrinter table(
        StrFormat("Fig. 8 — %s model size (kB)", result->benchmark.c_str()));
    table.SetHeader({"family", "SingleWMP", "LearnedWMP", "Learned/Single"});
    for (const auto& [family, sizes] : by_family) {
      table.AddRow(
          {family, StrFormat("%.1f", sizes.first / 1024.0),
           StrFormat("%.1f", sizes.second / 1024.0),
           StrFormat("%.0f%%", 100.0 * static_cast<double>(sizes.second) /
                                   static_cast<double>(sizes.first))});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
