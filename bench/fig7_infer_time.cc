// Fig. 7 reproduction: inference time per workload (µs) of LearnedWMP vs
// SingleWMP per model family.
//
// Expected shape (paper §IV-B): LearnedWMP achieves 3x-10x faster
// inference — it evaluates the regressor once per workload on a k-dim
// histogram instead of once per member query.

#include <iostream>
#include <map>

#include "bench_common.h"

using namespace wmp;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Fig. 7", "inference time per workload (µs)", args);

  for (workloads::Benchmark benchmark : workloads::AllBenchmarks()) {
    auto result = core::RunCoreExperiment(bench::MakeConfig(benchmark, args));
    if (!result.ok()) {
      std::cerr << "experiment failed: " << result.status() << "\n";
      return 1;
    }
    std::map<std::string, std::pair<double, double>> by_family;
    for (const core::ModelReport& r : result->reports) {
      if (r.name == "SingleWMP-DBMS") continue;
      const bool learned = r.name.rfind("LearnedWMP-", 0) == 0;
      const std::string family = r.name.substr(r.name.find('-') + 1);
      (learned ? by_family[family].second : by_family[family].first) =
          r.infer_us_per_workload;
    }
    TablePrinter table(StrFormat("Fig. 7 — %s inference time (µs/workload)",
                                 result->benchmark.c_str()));
    table.SetHeader({"family", "SingleWMP", "LearnedWMP", "speedup"});
    for (const auto& [family, times] : by_family) {
      table.AddRow({family, StrFormat("%.1f", times.first),
                    StrFormat("%.1f", times.second),
                    StrFormat("%.1fx", times.first /
                                           std::max(times.second, 1e-3))});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
