// Fig. 7 reproduction: inference time per workload (µs) of LearnedWMP vs
// SingleWMP per model family — plus a batch-throughput sweep of the new
// serving path.
//
// Expected shape (paper §IV-B): LearnedWMP achieves 3x-10x faster
// inference — it evaluates the regressor once per workload on a k-dim
// histogram instead of once per member query.
//
// The throughput sweep scores each benchmark's full query set through
// engine::BatchScorer at batch sizes {1, 10, 100, 1000} and thread counts
// {1, hardware_concurrency}, against the seed's scalar PredictWorkload loop
// as the baseline. Results print as a table and, with --json=PATH (or by
// default at the end of stdout), as JSON records for the bench trajectory.

#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "engine/batch_scorer.h"
#include "ml/compiled_tree.h"
#include "util/parallel.h"
#include "util/timer.h"

using namespace wmp;

namespace {

struct ThroughputRow {
  std::string benchmark;
  // "scalar" (per-query loop), "batch" (BatchScorer through the compiled
  // bin-space ensemble — the default serving path), or "batch_reference"
  // (BatchScorer with compiled routing off: the raw-space regressor walk).
  std::string mode;
  // Traversal kernel of compiled runs ("scalar", "lockstep8", ...);
  // "reference" when the compiled path is off or absent.
  std::string kernel = "reference";
  int batch_size = 0;
  int threads = 0;
  size_t queries = 0;
  double ms = 0.0;
  double qps = 0.0;
};

std::string ToJson(const ThroughputRow& r) {
  return StrFormat(
      "{\"figure\":\"fig7_batch_throughput\",\"benchmark\":\"%s\","
      "\"mode\":\"%s\",\"kernel\":\"%s\",\"batch_size\":%d,\"threads\":%d,"
      "\"queries\":%zu,\"ms\":%.3f,\"queries_per_sec\":%.1f}",
      r.benchmark.c_str(), r.mode.c_str(), r.kernel.c_str(), r.batch_size,
      r.threads, r.queries, r.ms, r.qps);
}

// Scores the whole dataset through the scalar per-query loop (the seed's
// inference path) once and reports queries/sec. A failed prediction zeroes
// the throughput (mirroring BatchRun) instead of reporting an inflated
// rate over unscored queries.
ThroughputRow ScalarBaseline(const core::ExperimentData& data,
                             const core::LearnedWmpModel& model,
                             int batch_size) {
  const auto batches = engine::MakeConsecutiveBatches(
      data.dataset.records.size(), batch_size);
  Stopwatch sw;
  bool ok = true;
  for (const auto& b : batches) {
    auto p = model.PredictWorkload(data.dataset.records, b.query_indices);
    if (!p.ok()) {
      ok = false;
      break;
    }
  }
  ThroughputRow row;
  row.mode = "scalar";
  row.batch_size = batch_size;
  row.threads = 1;
  row.queries = data.dataset.records.size();
  row.ms = sw.ElapsedMillis();
  row.qps = ok && row.ms > 0
                ? 1e3 * static_cast<double>(row.queries) / row.ms
                : 0.0;
  return row;
}

ThroughputRow BatchRun(const core::ExperimentData& data,
                       const core::LearnedWmpModel& model, int batch_size,
                       int threads) {
  engine::BatchScorerOptions opt;
  opt.num_threads = threads;
  engine::BatchScorer scorer(&model, opt);
  auto p = scorer.ScoreLog(data.dataset.records, batch_size);
  ThroughputRow row;
  row.mode = model.compiled_inference() ? "batch" : "batch_reference";
  if (model.compiled_inference() && model.compiled() != nullptr) {
    row.kernel = model.compiled()->kernel_name();
  }
  row.batch_size = batch_size;
  row.threads = threads;
  if (p.ok()) {
    row.queries = p->stats.num_queries;
    row.ms = p->stats.elapsed_ms;
    row.qps = p->stats.queries_per_sec;
  }
  return row;
}

// Bitwise gate on the compiled fast path: scores the full log through the
// compiled ensemble and through the reference regressor walk and requires
// every prediction identical. The throughput rows above are only honest if
// the fast path is exact, so a breach fails the harness (nonzero exit —
// CI's serve smoke runs this binary).
bool CompiledMatchesReference(const core::ExperimentData& data,
                              core::LearnedWmpModel* model) {
  const auto batches =
      engine::MakeConsecutiveBatches(data.dataset.records.size(), 100);
  model->set_compiled_inference(false);
  auto reference = model->PredictWorkloads(data.dataset.records, batches);
  model->set_compiled_inference(true);
  if (!reference.ok()) {
    std::cerr << "equivalence scoring failed\n";
    return false;
  }
  // Every traversal kernel must reproduce the reference walk bitwise —
  // the scalar walk and the lockstep blocks alike (kAuto is the serving
  // default). Leaves the model recompiled with the default kernel.
  for (ml::TraverseKernel kernel :
       {ml::TraverseKernel::kScalar, ml::TraverseKernel::kAuto}) {
    if (!model->RecompileInference(ml::CompileOptions{.kernel = kernel})
             .ok()) {
      std::cerr << "recompile failed\n";
      return false;
    }
    auto compiled = model->PredictWorkloads(data.dataset.records, batches);
    if (!compiled.ok()) {
      std::cerr << "equivalence scoring failed\n";
      return false;
    }
    for (size_t i = 0; i < compiled->size(); ++i) {
      if ((*compiled)[i] != (*reference)[i]) {
        std::cerr << "kernel " << model->compiled()->kernel_name()
                  << " diverges from reference at workload " << i << ": "
                  << (*compiled)[i] << " vs " << (*reference)[i] << "\n";
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Fig. 7", "inference time per workload (µs)", args);

  std::vector<ThroughputRow> throughput;
  for (workloads::Benchmark benchmark : workloads::AllBenchmarks()) {
    const core::ExperimentConfig cfg = bench::MakeConfig(benchmark, args);
    // One dataset build per benchmark, shared by the Fig. 7 sweep and the
    // batch-throughput sweep below.
    auto data = core::PrepareExperiment(cfg);
    if (!data.ok()) {
      std::cerr << "prepare failed: " << data.status() << "\n";
      return 1;
    }
    auto result = core::RunCoreExperiment(*data);
    if (!result.ok()) {
      std::cerr << "experiment failed: " << result.status() << "\n";
      return 1;
    }
    std::map<std::string, std::pair<double, double>> by_family;
    for (const core::ModelReport& r : result->reports) {
      if (r.name == "SingleWMP-DBMS") continue;
      const bool learned = r.name.rfind("LearnedWMP-", 0) == 0;
      const std::string family = r.name.substr(r.name.find('-') + 1);
      (learned ? by_family[family].second : by_family[family].first) =
          r.infer_us_per_workload;
    }
    TablePrinter table(StrFormat("Fig. 7 — %s inference time (µs/workload)",
                                 result->benchmark.c_str()));
    table.SetHeader({"family", "SingleWMP", "LearnedWMP", "speedup"});
    for (const auto& [family, times] : by_family) {
      table.AddRow({family, StrFormat("%.1f", times.first),
                    StrFormat("%.1f", times.second),
                    StrFormat("%.1fx", times.first /
                                           std::max(times.second, 1e-3))});
    }
    table.Print(std::cout);
    std::cout << "\n";

    // --- Batch-throughput sweep over the same data ---
    core::LearnedWmpOptions lopt;
    lopt.templates.num_templates = result->num_templates;
    lopt.batch_size = cfg.batch_size;
    lopt.seed = cfg.seed;
    auto model = core::LearnedWmpModel::Train(
        data->dataset.records, data->train_indices, *data->dataset.generator,
        lopt);
    if (!model.ok()) {
      std::cerr << "train failed: " << model.status() << "\n";
      return 1;
    }
    if (!CompiledMatchesReference(*data, &*model)) {
      std::cerr << "compiled inference is NOT bitwise-equal to the "
                   "reference path\n";
      return 1;
    }
    const int hw = static_cast<int>(util::HardwareThreads());
    // The compiled path runs twice per batch size: once pinned to the
    // scalar walk and once on the default (lockstep) kernel, so the
    // lockstep gain is visible at paper scale next to the compiled gain.
    const char* lockstep_name = ml::TraverseKernelName(
        ml::ResolveTraverseKernel(ml::TraverseKernel::kAuto));
    TablePrinter tput(StrFormat("%s batch throughput (queries/sec)",
                                result->benchmark.c_str()));
    tput.SetHeader({"batch", "scalar 1t", "reference 1t", "compiled(scalar)",
                    StrFormat("compiled(%s)", lockstep_name),
                    StrFormat("compiled %dt", hw), "lockstep gain",
                    "compiled gain"});
    for (int batch_size : {1, 10, 100, 1000}) {
      ThroughputRow scalar = ScalarBaseline(*data, *model, batch_size);
      model->set_compiled_inference(false);
      ThroughputRow reference = BatchRun(*data, *model, batch_size, 1);
      model->set_compiled_inference(true);
      if (!model
               ->RecompileInference(
                   ml::CompileOptions{.kernel = ml::TraverseKernel::kScalar})
               .ok()) {
        std::cerr << "recompile failed\n";
        return 1;
      }
      ThroughputRow batch_scalar_kernel = BatchRun(*data, *model, batch_size, 1);
      if (!model
               ->RecompileInference(
                   ml::CompileOptions{.kernel = ml::TraverseKernel::kAuto})
               .ok()) {
        std::cerr << "recompile failed\n";
        return 1;
      }
      ThroughputRow batch1 = BatchRun(*data, *model, batch_size, 1);
      ThroughputRow batch_hw = hw > 1 ? BatchRun(*data, *model, batch_size, hw)
                                      : batch1;
      scalar.benchmark = reference.benchmark = batch_scalar_kernel.benchmark =
          batch1.benchmark = batch_hw.benchmark = result->benchmark;
      tput.AddRow({StrFormat("%d", batch_size), StrFormat("%.0f", scalar.qps),
                   StrFormat("%.0f", reference.qps),
                   StrFormat("%.0f", batch_scalar_kernel.qps),
                   StrFormat("%.0f", batch1.qps),
                   StrFormat("%.0f", batch_hw.qps),
                   batch_scalar_kernel.qps > 0.0
                       ? StrFormat("%.2fx", batch1.qps / batch_scalar_kernel.qps)
                       : std::string("n/a"),
                   reference.qps > 0.0
                       ? StrFormat("%.2fx", batch1.qps / reference.qps)
                       : std::string("n/a")});
      throughput.push_back(scalar);
      throughput.push_back(reference);
      throughput.push_back(batch_scalar_kernel);
      throughput.push_back(batch1);
      if (hw > 1) throughput.push_back(batch_hw);
    }
    tput.Print(std::cout);
    std::cout << "\n";
  }

  // Machine-readable trajectory: one JSON record per run.
  FILE* out = stdout;
  if (!args.json_path.empty()) {
    out = std::fopen(args.json_path.c_str(), "w");
    if (out == nullptr) {
      std::cerr << "cannot open " << args.json_path << "\n";
      return 1;
    }
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < throughput.size(); ++i) {
    std::fprintf(out, "  %s%s\n", ToJson(throughput[i]).c_str(),
                 i + 1 < throughput.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  if (out != stdout) std::fclose(out);
  return 0;
}
