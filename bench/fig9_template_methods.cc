// Fig. 9 reproduction: LearnedWMP-XGB accuracy on JOB under the five
// template-learning methods — the paper's plan-feature k-means ("query
// plan (ours)") vs rule-based, bag-of-words, text-mining, and
// word-embedding alternatives.
//
// Expected shape: the plan-based method wins; plan features carry the
// optimizer's cardinality estimates, which correlate with memory usage,
// while query-text features do not (§IV-C "Learning Query Templates").

#include <iostream>

#include "bench_common.h"

using namespace wmp;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Fig. 9",
                        "template-learning methods, LearnedWMP-XGB on JOB",
                        args);

  core::ExperimentConfig base =
      bench::MakeConfig(workloads::Benchmark::kJob, args);
  TablePrinter table("Fig. 9 — JOB, LearnedWMP-XGB by template method");
  table.SetHeader({"method", "k", "RMSE (MB)", "MAPE"});
  for (core::TemplateMethod method : core::AllTemplateMethods()) {
    if (method == core::TemplateMethod::kPlanDbscan) continue;  // Fig. 9 has 5
    core::ExperimentConfig cfg = base;
    cfg.template_method = method;
    auto data = core::PrepareExperiment(cfg);
    if (!data.ok()) {
      std::cerr << "prepare failed: " << data.status() << "\n";
      return 1;
    }
    auto report = core::EvaluateLearnedWmp(*data, ml::RegressorKind::kGbt);
    if (!report.ok()) {
      std::cerr << core::TemplateMethodName(method)
                << " failed: " << report.status() << "\n";
      return 1;
    }
    // Rule-based derives its own k from the rule set; clustering methods
    // use the configured k.
    const int k = method == core::TemplateMethod::kRuleBased
                      ? 34  // 33 JOB family rules + catch-all
                      : data->config.num_templates;
    table.AddRow({core::TemplateMethodName(method), StrFormat("%d", k),
                  StrFormat("%.1f", report->rmse),
                  StrFormat("%.1f%%", report->mape)});
  }
  table.Print(std::cout);
  return 0;
}
