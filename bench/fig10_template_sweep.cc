// Fig. 10 reproduction: MAPE of LearnedWMP-XGB as a function of the number
// of templates k in {10, 20, ..., 100}, for each benchmark.
//
// Expected shape (§IV-C "Effect of the number of query templates"):
// TPC-DS keeps improving toward k=100 (large, diverse query population);
// JOB and TPC-C reach their best MAPE at a moderate k (20-40) and
// fluctuate beyond — fewer distinct query shapes to separate.

#include <iostream>

#include "bench_common.h"

using namespace wmp;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Fig. 10", "MAPE vs number of templates k", args);

  for (workloads::Benchmark benchmark : workloads::AllBenchmarks()) {
    core::ExperimentConfig base = bench::MakeConfig(benchmark, args);
    TablePrinter table(StrFormat("Fig. 10 — %s, LearnedWMP-XGB",
                                 workloads::BenchmarkName(benchmark)));
    table.SetHeader({"k", "MAPE", "RMSE (MB)"});
    double best_mape = 1e18;
    int best_k = 0;
    for (int k = 10; k <= 100; k += 10) {
      core::ExperimentConfig cfg = base;
      cfg.num_templates = k;
      auto data = core::PrepareExperiment(cfg);
      if (!data.ok()) {
        std::cerr << "prepare failed: " << data.status() << "\n";
        return 1;
      }
      auto report = core::EvaluateLearnedWmp(*data, ml::RegressorKind::kGbt);
      if (!report.ok()) {
        std::cerr << "k=" << k << " failed: " << report.status() << "\n";
        return 1;
      }
      if (report->mape < best_mape) {
        best_mape = report->mape;
        best_k = k;
      }
      table.AddRow({StrFormat("%d", k), StrFormat("%.1f%%", report->mape),
                    StrFormat("%.1f", report->rmse)});
    }
    table.Print(std::cout);
    std::cout << StrFormat("best k = %d (MAPE %.1f%%)\n\n", best_k, best_mape);
  }
  return 0;
}
