// Ablation (paper §III-B3 "Optimizer"): L-BFGS vs Adam vs SGD for training
// the LearnedWMP MLP, on a small dataset (JOB) and a larger one (TPC-DS).
//
// Expected shape: L-BFGS is the stronger optimizer on the small dataset
// (faster to a better loss); Adam wins on the larger one — matching the
// paper's observation and scikit-learn's guidance.

#include <iostream>

#include "bench_common.h"
#include "core/histogram.h"
#include "ml/mlp.h"
#include "util/timer.h"

using namespace wmp;

namespace {

int RunOne(const char* label, workloads::Benchmark benchmark,
           const bench::BenchArgs& args) {
  core::ExperimentConfig cfg = bench::MakeConfig(benchmark, args);
  auto data = core::PrepareExperiment(cfg);
  if (!data.ok()) {
    std::cerr << "prepare failed: " << data.status() << "\n";
    return 1;
  }
  TablePrinter table(StrFormat("MLP optimizer ablation — %s (%zu queries)",
                               label, data->dataset.records.size()));
  table.SetHeader({"solver", "fit time (ms)", "final loss", "iters",
                   "workload RMSE (MB)"});
  for (ml::MlpSolver solver :
       {ml::MlpSolver::kLbfgs, ml::MlpSolver::kAdam, ml::MlpSolver::kSgd}) {
    core::LearnedWmpOptions opt;
    opt.templates.num_templates = data->config.num_templates;
    opt.batch_size = data->config.batch_size;
    opt.regressor = ml::RegressorKind::kMlp;
    opt.seed = data->config.seed;
    // Train manually so we can swap the solver.
    core::TemplateLearnerOptions topt = opt.templates;
    auto templates = core::TemplateModel::Learn(
        data->dataset.records, data->train_indices, *data->dataset.generator,
        topt);
    if (!templates.ok()) {
      std::cerr << "templates failed: " << templates.status() << "\n";
      return 1;
    }
    core::WorkloadSetOptions wopt;
    wopt.batch_size = opt.batch_size;
    wopt.seed = opt.seed;
    auto batches = core::BuildWorkloads(data->dataset.records,
                                        data->train_indices, wopt);
    ml::Matrix h(batches.size(),
                 static_cast<size_t>(templates->num_templates()));
    std::vector<double> y(batches.size());
    for (size_t b = 0; b < batches.size(); ++b) {
      std::vector<int> ids;
      for (uint32_t qi : batches[b].query_indices) {
        ids.push_back(templates->Assign(data->dataset.records[qi]).value());
      }
      auto hist = core::BuildHistogram(ids, templates->num_templates()).value();
      std::copy(hist.begin(), hist.end(), h.RowPtr(b));
      y[b] = batches[b].label_mb;
    }

    ml::MlpOptions mopt;
    mopt.solver = solver;
    mopt.seed = opt.seed;
    ml::MlpRegressor mlp(mopt);
    Stopwatch sw;
    if (Status st = mlp.Fit(h, y); !st.ok()) {
      std::cerr << "fit failed: " << st << "\n";
      return 1;
    }
    const double fit_ms = sw.ElapsedMillis();

    // Score on the test workloads.
    std::vector<double> pred(data->test_batches.size());
    for (size_t b = 0; b < data->test_batches.size(); ++b) {
      std::vector<int> ids;
      for (uint32_t qi : data->test_batches[b].query_indices) {
        ids.push_back(templates->Assign(data->dataset.records[qi]).value());
      }
      auto hist = core::BuildHistogram(ids, templates->num_templates()).value();
      pred[b] = mlp.PredictOne(hist).value();
    }
    table.AddRow({ml::MlpSolverName(solver), StrFormat("%.1f", fit_ms),
                  StrFormat("%.4f", mlp.final_loss()),
                  StrFormat("%d", mlp.iterations_run()),
                  StrFormat("%.1f", ml::Rmse(data->test_labels, pred))});
  }
  table.Print(std::cout);
  std::cout << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Ablation", "MLP optimizer: L-BFGS vs Adam vs SGD",
                        args);
  if (int rc = RunOne("small dataset (JOB)", workloads::Benchmark::kJob, args);
      rc != 0) {
    return rc;
  }
  return RunOne("large dataset (TPC-DS)", workloads::Benchmark::kTpcds, args);
}
