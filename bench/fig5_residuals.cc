// Fig. 5 reproduction: distribution of estimation-error residuals
// (predicted - actual, MB) per model and benchmark. The paper draws violin
// plots; this harness prints each violin's numeric skeleton: median, IQR
// (the thick bar), the p5/p95 tails (the violin's extent), and moment
// skewness.
//
// Expected shape: SingleWMP-DBMS violins are wide, far from zero, and
// skewed (toward underestimation on the analytic benchmarks); ML-based
// models are centered near zero and narrow.

#include <iostream>

#include "bench_common.h"

using namespace wmp;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Fig. 5", "residual distributions (MB)", args);

  for (workloads::Benchmark benchmark : workloads::AllBenchmarks()) {
    auto result = core::RunCoreExperiment(bench::MakeConfig(benchmark, args));
    if (!result.ok()) {
      std::cerr << "experiment failed: " << result.status() << "\n";
      return 1;
    }
    TablePrinter table(
        StrFormat("Fig. 5 — %s residuals (predicted - actual, MB)",
                  result->benchmark.c_str()));
    table.SetHeader(
        {"model", "median", "IQR", "p5", "p95", "skewness", "bias"});
    for (const core::ModelReport& r : result->reports) {
      const auto& s = r.residuals;
      const char* bias = s.median < -1.0   ? "under-estimates"
                         : s.median > 1.0  ? "over-estimates"
                                           : "centered";
      table.AddRow({r.name, StrFormat("%.1f", s.median),
                    StrFormat("%.1f", s.iqr), StrFormat("%.1f", s.p5),
                    StrFormat("%.1f", s.p95), StrFormat("%+.2f", s.skewness),
                    bias});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
