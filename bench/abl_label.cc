// Ablation (DESIGN.md "Paper inconsistency noted"): the workload label
// aggregator. The paper's prose defines y as the SUM of member queries'
// peak memory while its eq. (1) writes MAX; this harness trains
// LearnedWMP-XGB under both definitions on TPC-DS and reports accuracy for
// each, demonstrating that the pipeline supports either and that sum (the
// concurrently-resident total) is the better-behaved target.

#include <iostream>

#include "bench_common.h"

using namespace wmp;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Ablation", "workload label: sum (text) vs max (eq. 1)",
                        args);

  TablePrinter table("Label aggregator ablation — TPC-DS, LearnedWMP-XGB");
  table.SetHeader({"label", "RMSE (MB)", "MAPE", "mean label (MB)"});
  for (core::WorkloadLabel label :
       {core::WorkloadLabel::kSum, core::WorkloadLabel::kMax}) {
    core::ExperimentConfig cfg =
        bench::MakeConfig(workloads::Benchmark::kTpcds, args);
    cfg.label = label;
    auto data = core::PrepareExperiment(cfg);
    if (!data.ok()) {
      std::cerr << "prepare failed: " << data.status() << "\n";
      return 1;
    }
    auto report = core::EvaluateLearnedWmp(*data, ml::RegressorKind::kGbt);
    if (!report.ok()) {
      std::cerr << "evaluate failed: " << report.status() << "\n";
      return 1;
    }
    double mean_label = 0.0;
    for (double y : data->test_labels) mean_label += y;
    mean_label /= static_cast<double>(data->test_labels.size());
    table.AddRow({label == core::WorkloadLabel::kSum ? "sum" : "max",
                  StrFormat("%.1f", report->rmse),
                  StrFormat("%.1f%%", report->mape),
                  StrFormat("%.1f", mean_label)});
  }
  table.Print(std::cout);
  return 0;
}
