// Cold-path featurization throughput: parse -> plan -> featurize/scale ->
// assign, reference engine vs the arena/pruned engine, per benchmark.
//
// The reference path reproduces the pre-arena pipeline cost model: a
// malloc-mode arena gives every plan node and string its own heap
// allocation (freed individually per batch, like the old unique_ptr
// trees), featurization returns a fresh std::vector per query, scaling
// runs row-at-a-time, and assignment is the full k-centroid scan.
//
// The engine path is the production cold path: all queries of a batch
// plan into one shared bump arena (Reset per batch, grow-only),
// featurization writes straight into a reusable scratch matrix,
// scaling is one in-place pass, and assignment routes through the
// pruned ml::CentroidIndex.
//
// Equivalence gate: per query the two paths must produce the SAME
// template id and BITWISE-equal scaled feature rows. Any divergence
// prints the offender and the process exits nonzero, so CI's
// featurize-smoke step (--quick) catches pruning or arena bugs that
// would silently re-template queries.
//
// Defaults to paper scale (TPC-DS 93k queries at --scale=1.0; JOB and
// TPC-C always run at their paper counts); --quick shrinks everything
// for CI. Output: a human table plus JSON records (stdout, or
// --json=PATH).

#include <cmath>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ml/centroid_index.h"
#include "plan/cardinality.h"
#include "ml/kmeans.h"
#include "ml/linalg.h"
#include "ml/scaler.h"
#include "plan/features.h"
#include "plan/plan_node.h"
#include "plan/planner.h"
#include "sql/parser.h"
#include "util/arena.h"
#include "util/timer.h"
#include "workloads/dataset.h"

using namespace wmp;

namespace {

struct PhaseSplit {
  double parse_ms = 0.0;
  double plan_ms = 0.0;
  double featurize_ms = 0.0;  // extract + scale
  double assign_ms = 0.0;
  double total() const { return parse_ms + plan_ms + featurize_ms + assign_ms; }
};

struct BenchRow {
  std::string benchmark;
  size_t queries = 0;
  int k = 0;
  PhaseSplit ref;
  PhaseSplit eng;
  double speedup = 0.0;
  double eng_qps = 0.0;
  ml::CentroidIndex::AssignStats assign;
  size_t diverged = 0;
};

std::string ToJson(const BenchRow& r) {
  return StrFormat(
      "{\"figure\":\"featurize_throughput\",\"benchmark\":\"%s\","
      "\"queries\":%zu,\"k\":%d,"
      "\"ref_parse_ms\":%.2f,\"ref_plan_ms\":%.2f,"
      "\"ref_featurize_ms\":%.2f,\"ref_assign_ms\":%.2f,\"ref_ms\":%.2f,"
      "\"eng_parse_ms\":%.2f,\"eng_plan_ms\":%.2f,"
      "\"eng_featurize_ms\":%.2f,\"eng_assign_ms\":%.2f,\"eng_ms\":%.2f,"
      "\"speedup\":%.2f,\"queries_per_sec\":%.0f,"
      "\"assign_rows\":%llu,\"bound_skips\":%llu,\"early_exits\":%llu,"
      "\"full_distances\":%llu,\"diverged\":%zu}",
      r.benchmark.c_str(), r.queries, r.k, r.ref.parse_ms, r.ref.plan_ms,
      r.ref.featurize_ms, r.ref.assign_ms, r.ref.total(), r.eng.parse_ms,
      r.eng.plan_ms, r.eng.featurize_ms, r.eng.assign_ms, r.eng.total(),
      r.speedup, r.eng_qps,
      static_cast<unsigned long long>(r.assign.rows),
      static_cast<unsigned long long>(r.assign.bound_skips),
      static_cast<unsigned long long>(r.assign.early_exits),
      static_cast<unsigned long long>(r.assign.full_distances), r.diverged);
}

// Fitted assignment model shared by both paths: scaler + centroids from
// the records' precomputed plan features (exactly what TemplateModel's
// plan-k-means method fits on).
struct AssignModel {
  ml::StandardScaler scaler;
  ml::KMeans kmeans;
  ml::CentroidIndex index;
};

Result<AssignModel> FitAssignModel(
    const std::vector<workloads::QueryRecord>& records, int k,
    uint64_t seed) {
  ml::Matrix x(records.size(), plan::kPlanFeatureDim);
  for (size_t i = 0; i < records.size(); ++i) {
    const auto& f = records[i].plan_features;
    if (f.size() != plan::kPlanFeatureDim) {
      return Status::InvalidArgument("record missing plan features");
    }
    std::copy(f.begin(), f.end(), x.RowPtr(i));
  }
  AssignModel m{{}, {}, ml::CentroidIndex(ml::Matrix(1, 1))};
  WMP_RETURN_IF_ERROR(m.scaler.Fit(x));
  WMP_RETURN_IF_ERROR(m.scaler.TransformInPlace(&x));
  ml::KMeansOptions kopt;
  kopt.num_clusters = k;
  kopt.seed = seed;
  WMP_RETURN_IF_ERROR(m.kmeans.Fit(x, kopt));
  m.index = ml::CentroidIndex(m.kmeans.centroids());
  return m;
}

// Reference cold path over one batch: per-query heap plans
// (malloc-mode arena), per-query feature vectors, row-at-a-time scaling,
// full-scan assignment. Scaled rows and labels land in `scaled`/`labels`
// for the equivalence gate.
Status RunReferenceBatch(const std::vector<workloads::QueryRecord>& records,
                         size_t begin, size_t end, const plan::Planner& planner,
                         const AssignModel& model, util::Arena* malloc_arena,
                         PhaseSplit* split, ml::Matrix* scaled,
                         std::vector<int>* labels) {
  const size_t n = end - begin;
  std::vector<sql::Query> queries;
  queries.reserve(n);
  Stopwatch sw;
  for (size_t i = begin; i < end; ++i) {
    WMP_ASSIGN_OR_RETURN(sql::Query q, sql::Parse(records[i].sql_text));
    queries.push_back(std::move(q));
  }
  split->parse_ms += sw.ElapsedMillis();

  std::vector<const plan::PlanNode*> roots(n);
  sw.Reset();
  for (size_t i = 0; i < n; ++i) {
    WMP_ASSIGN_OR_RETURN(roots[i],
                         planner.CreatePlanInto(queries[i], malloc_arena));
  }
  split->plan_ms += sw.ElapsedMillis();

  sw.Reset();
  std::vector<std::vector<double>> rows(n);
  for (size_t i = 0; i < n; ++i) {
    rows[i] = plan::ExtractPlanFeatures(*roots[i]);
    WMP_RETURN_IF_ERROR(model.scaler.TransformRow(&rows[i]));
  }
  split->featurize_ms += sw.ElapsedMillis();

  sw.Reset();
  for (size_t i = 0; i < n; ++i) {
    WMP_ASSIGN_OR_RETURN((*labels)[begin + i], model.kmeans.Assign(rows[i]));
  }
  split->assign_ms += sw.ElapsedMillis();

  for (size_t i = 0; i < n; ++i) {
    std::copy(rows[i].begin(), rows[i].end(), scaled->RowPtr(begin + i));
  }
  malloc_arena->Reset();  // frees each node/string individually
  return Status::OK();
}

// Engine cold path over one batch: shared bump arena, scratch-matrix
// featurization, one in-place scaling pass, pruned index assignment.
Status RunEngineBatch(const std::vector<workloads::QueryRecord>& records,
                      size_t begin, size_t end, const plan::Planner& planner,
                      const AssignModel& model, util::Arena* arena,
                      ml::Matrix* scratch, PhaseSplit* split,
                      ml::Matrix* scaled, std::vector<int>* labels,
                      ml::CentroidIndex::AssignStats* stats) {
  const size_t n = end - begin;
  std::vector<sql::Query> queries;
  queries.reserve(n);
  Stopwatch sw;
  for (size_t i = begin; i < end; ++i) {
    WMP_ASSIGN_OR_RETURN(sql::Query q, sql::Parse(records[i].sql_text));
    queries.push_back(std::move(q));
  }
  split->parse_ms += sw.ElapsedMillis();

  std::vector<const plan::PlanNode*> roots(n);
  sw.Reset();
  for (size_t i = 0; i < n; ++i) {
    WMP_ASSIGN_OR_RETURN(roots[i], planner.CreatePlanInto(queries[i], arena));
  }
  split->plan_ms += sw.ElapsedMillis();

  sw.Reset();
  scratch->Reshape(n, plan::kPlanFeatureDim);
  for (size_t i = 0; i < n; ++i) {
    plan::ExtractPlanFeaturesInto(*roots[i], scratch->RowPtr(i));
  }
  WMP_RETURN_IF_ERROR(model.scaler.TransformInPlace(scratch));
  split->featurize_ms += sw.ElapsedMillis();

  sw.Reset();
  model.index.Assign(scratch->RowPtr(0), n, labels->data() + begin, stats);
  split->assign_ms += sw.ElapsedMillis();

  for (size_t i = 0; i < n; ++i) {
    const double* row = scratch->RowPtr(i);
    std::copy(row, row + plan::kPlanFeatureDim, scaled->RowPtr(begin + i));
  }
  arena->Reset();  // rewinds, keeps chunks
  return Status::OK();
}

Result<BenchRow> RunBenchmark(workloads::Benchmark benchmark,
                              const bench::BenchArgs& args) {
  workloads::DatasetOptions dopt;
  dopt.seed = args.seed;
  const size_t paper = workloads::PaperQueryCount(benchmark);
  if (args.quick) {
    dopt.num_queries = std::min<size_t>(paper, 1000);
  } else if (benchmark == workloads::Benchmark::kTpcds) {
    dopt.num_queries = static_cast<size_t>(
        static_cast<double>(paper) * args.tpcds_scale);
  }
  WMP_ASSIGN_OR_RETURN(workloads::Dataset data,
                       workloads::BuildDataset(benchmark, dopt));
  const auto& records = data.records;

  BenchRow row;
  row.benchmark = data.benchmark_name;
  row.queries = records.size();
  row.k = args.num_templates > 0 ? args.num_templates : 40;
  WMP_ASSIGN_OR_RETURN(AssignModel model,
                       FitAssignModel(records, row.k, args.seed));
  // Drop the fixture's parsed ASTs and plan trees: the cold path under
  // test re-derives both from SQL text, and at paper scale ~100k live
  // mini-arenas otherwise fragment the heap the benchmark allocates from —
  // a fixture artifact no serving process exhibits.
  for (auto& r : data.records) {
    r.query = {};
    r.plan.reset();
    r.plan_features.clear();
    r.plan_features.shrink_to_fit();
  }
  plan::Planner planner(&data.generator->catalog(), dopt.planner);

  const size_t batch =
      args.batch_size > 0 ? static_cast<size_t>(args.batch_size) : 10;
  const size_t n = records.size();
  ml::Matrix ref_scaled(n, plan::kPlanFeatureDim);
  ml::Matrix eng_scaled(n, plan::kPlanFeatureDim);
  std::vector<int> ref_labels(n, -1), eng_labels(n, -1);

  // Two passes per path: the first warms allocator free lists, the bump
  // arena's chunks, and the interner, and is discarded; the second is
  // measured. Without it the path that runs first pays the dataset
  // builder's cold heap and the comparison skews with run order.
  {
    // The reference run also reproduces the pre-PR HarmonicApprox cost
    // model (per-key memo in front of the exact summation); values are
    // bitwise identical either way, which the gate below re-proves.
    plan::SetHarmonicTableCache(false);
    util::Arena malloc_arena(plan::kPlanArenaChunk,
                             util::Arena::Mode::kMalloc);
    for (int pass = 0; pass < 2; ++pass) {
      PhaseSplit warmup;
      PhaseSplit* split = pass == 0 ? &warmup : &row.ref;
      for (size_t b = 0; b < n; b += batch) {
        WMP_RETURN_IF_ERROR(RunReferenceBatch(
            records, b, std::min(b + batch, n), planner, model, &malloc_arena,
            split, &ref_scaled, &ref_labels));
      }
    }
    plan::SetHarmonicTableCache(true);
  }
  {
    util::Arena arena(plan::kPlanArenaChunk);
    ml::Matrix scratch;
    for (int pass = 0; pass < 2; ++pass) {
      PhaseSplit warmup;
      ml::CentroidIndex::AssignStats discard;
      PhaseSplit* split = pass == 0 ? &warmup : &row.eng;
      ml::CentroidIndex::AssignStats* stats =
          pass == 0 ? &discard : &row.assign;
      for (size_t b = 0; b < n; b += batch) {
        WMP_RETURN_IF_ERROR(RunEngineBatch(
            records, b, std::min(b + batch, n), planner, model, &arena,
            &scratch, split, &eng_scaled, &eng_labels, stats));
      }
    }
  }

  // Equivalence gate: identical template ids, bitwise-equal scaled rows.
  for (size_t i = 0; i < n; ++i) {
    bool bad = ref_labels[i] != eng_labels[i];
    for (size_t c = 0; !bad && c < plan::kPlanFeatureDim; ++c) {
      bad = std::memcmp(&ref_scaled.At(i, c), &eng_scaled.At(i, c),
                        sizeof(double)) != 0;
    }
    if (bad && row.diverged++ == 0) {
      std::cerr << "DIVERGENCE: " << row.benchmark << " query " << i
                << " ref id " << ref_labels[i] << " vs engine id "
                << eng_labels[i] << "\n";
    }
  }
  row.speedup = row.ref.total() / std::max(row.eng.total(), 1e-3);
  row.eng_qps =
      static_cast<double>(n) / std::max(row.eng.total() / 1e3, 1e-9);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  // Paper scale by default — the acceptance target is cold-path speedup at
  // the paper's query counts — unless the caller passed --scale or --quick.
  bool scale_given = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) scale_given = true;
  }
  if (!scale_given && !args.quick) args.tpcds_scale = 1.0;
  bench::PrintRunBanner("featurize_throughput",
                        "cold path: parse/plan/featurize/assign, reference vs "
                        "arena+pruned engine",
                        args);

  std::vector<BenchRow> rows;
  bool ok = true;
  for (workloads::Benchmark b : workloads::AllBenchmarks()) {
    auto row = RunBenchmark(b, args);
    if (!row.ok()) {
      std::cerr << "benchmark failed: " << row.status() << "\n";
      return 1;
    }
    if (row->diverged > 0) {
      std::cerr << "EQUIVALENCE BREACH: " << row->benchmark << " has "
                << row->diverged << " diverging queries\n";
      ok = false;
    }
    rows.push_back(std::move(*row));
  }

  // Aggregate row: the acceptance target (>= 1.5x cold-path throughput at
  // paper scale) is judged on the workload mix, where TPC-DS's 93k queries
  // dominate — JOB's join-enumeration-bound planner gains less from arena
  // allocation and would misrepresent the path on its own.
  {
    BenchRow all;
    all.benchmark = "ALL";
    for (const BenchRow& r : rows) {
      all.queries += r.queries;
      all.k = r.k;
      all.ref.parse_ms += r.ref.parse_ms;
      all.ref.plan_ms += r.ref.plan_ms;
      all.ref.featurize_ms += r.ref.featurize_ms;
      all.ref.assign_ms += r.ref.assign_ms;
      all.eng.parse_ms += r.eng.parse_ms;
      all.eng.plan_ms += r.eng.plan_ms;
      all.eng.featurize_ms += r.eng.featurize_ms;
      all.eng.assign_ms += r.eng.assign_ms;
      all.assign.rows += r.assign.rows;
      all.assign.bound_skips += r.assign.bound_skips;
      all.assign.early_exits += r.assign.early_exits;
      all.assign.full_distances += r.assign.full_distances;
      all.diverged += r.diverged;
    }
    all.speedup = all.ref.total() / std::max(all.eng.total(), 1e-3);
    all.eng_qps = static_cast<double>(all.queries) /
                  std::max(all.eng.total() / 1e3, 1e-9);
    rows.push_back(std::move(all));
  }

  TablePrinter table("featurize_throughput — cold-path phase split (ms)");
  table.SetHeader({"benchmark", "queries", "k", "ref parse", "ref plan",
                   "ref feat", "ref assign", "ref total", "eng parse",
                   "eng plan", "eng feat", "eng assign", "eng total",
                   "speedup", "eng q/s", "pruned %"});
  for (const BenchRow& r : rows) {
    const uint64_t cand = r.assign.rows * static_cast<uint64_t>(r.k);
    const double pruned =
        cand > 0 ? 100.0 *
                       static_cast<double>(r.assign.bound_skips +
                                           r.assign.early_exits) /
                       static_cast<double>(cand)
                 : 0.0;
    table.AddRow({r.benchmark, StrFormat("%zu", r.queries),
                  StrFormat("%d", r.k), StrFormat("%.1f", r.ref.parse_ms),
                  StrFormat("%.1f", r.ref.plan_ms),
                  StrFormat("%.1f", r.ref.featurize_ms),
                  StrFormat("%.1f", r.ref.assign_ms),
                  StrFormat("%.1f", r.ref.total()),
                  StrFormat("%.1f", r.eng.parse_ms),
                  StrFormat("%.1f", r.eng.plan_ms),
                  StrFormat("%.1f", r.eng.featurize_ms),
                  StrFormat("%.1f", r.eng.assign_ms),
                  StrFormat("%.1f", r.eng.total()),
                  StrFormat("%.2fx", r.speedup), StrFormat("%.0f", r.eng_qps),
                  StrFormat("%.1f", pruned)});
  }
  table.Print(std::cout);

  FILE* out = stdout;
  if (!args.json_path.empty()) {
    out = std::fopen(args.json_path.c_str(), "w");
    if (out == nullptr) {
      std::cerr << "cannot open " << args.json_path << "\n";
      return 1;
    }
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out, "  %s%s\n", ToJson(rows[i]).c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  if (out != stdout) std::fclose(out);
  return ok ? 0 : 1;
}
