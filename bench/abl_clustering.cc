// Ablation (paper §V, related work): k-means vs DBSCAN for template
// learning, LearnedWMP-XGB on JOB. The paper reports comparing
// DBSCAN-based templates (DBSeer-style) with k-means and finding k-means
// more accurate for resource prediction.

#include <iostream>

#include "bench_common.h"

using namespace wmp;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  bench::PrintRunBanner("Ablation", "k-means vs DBSCAN templates (JOB, XGB)",
                        args);

  core::ExperimentConfig base =
      bench::MakeConfig(workloads::Benchmark::kJob, args);
  TablePrinter table("k-means vs DBSCAN template learning — JOB, LearnedWMP-XGB");
  table.SetHeader({"clustering", "templates", "RMSE (MB)", "MAPE"});

  {
    auto data = core::PrepareExperiment(base);
    if (!data.ok()) {
      std::cerr << "prepare failed: " << data.status() << "\n";
      return 1;
    }
    auto report = core::EvaluateLearnedWmp(*data, ml::RegressorKind::kGbt);
    if (!report.ok()) {
      std::cerr << "kmeans failed: " << report.status() << "\n";
      return 1;
    }
    table.AddRow({"k-means (ours)", StrFormat("%d", data->config.num_templates),
                  StrFormat("%.1f", report->rmse),
                  StrFormat("%.1f%%", report->mape)});
  }
  // DBSCAN density clustering at a few eps settings; the cluster count is
  // data-driven, so we report it per run.
  for (double eps : {0.5, 1.0, 2.0}) {
    core::ExperimentConfig cfg = base;
    cfg.template_method = core::TemplateMethod::kPlanDbscan;
    auto data = core::PrepareExperiment(cfg);
    if (!data.ok()) {
      std::cerr << "prepare failed: " << data.status() << "\n";
      return 1;
    }
    core::LearnedWmpOptions opt;
    opt.templates.method = core::TemplateMethod::kPlanDbscan;
    opt.templates.dbscan.eps = eps;
    opt.templates.dbscan.min_points = 8;
    opt.batch_size = cfg.batch_size;
    opt.regressor = ml::RegressorKind::kGbt;
    opt.seed = cfg.seed;
    auto model = core::LearnedWmpModel::Train(
        data->dataset.records, data->train_indices, *data->dataset.generator,
        opt);
    if (!model.ok()) {
      table.AddRow({StrFormat("DBSCAN eps=%.1f", eps), "-",
                    model.status().message(), "-"});
      continue;
    }
    auto pred =
        model->PredictWorkloads(data->dataset.records, data->test_batches);
    if (!pred.ok()) {
      std::cerr << "predict failed: " << pred.status() << "\n";
      return 1;
    }
    table.AddRow({StrFormat("DBSCAN eps=%.1f", eps),
                  StrFormat("%d", model->templates().num_templates()),
                  StrFormat("%.1f", ml::Rmse(data->test_labels, *pred)),
                  StrFormat("%.1f%%", ml::Mape(data->test_labels, *pred))});
  }
  table.Print(std::cout);
  return 0;
}
