// Remote serving — the out-of-process deployment story, end to end.
//
// examples/online_serving.cpp shows the IN-process serving layer; this
// example adds the process boundary a real DBMS integration has: the
// predictor runs behind a socket (net::WireServer) and the admission
// controller talks to it with net::WireClient — score a workload before
// admitting it, retrain and publish without restarting, roll back a bad
// model in one call.
//
// For a single self-contained binary the "server process" here is a
// server on a loopback Unix socket inside this process; `wmpctl serve`
// is the same stack as an actual daemon. The flow:
//
//   1. Train a model, stand up ScoringService + ModelRegistry + WireServer.
//   2. A client connects and scores workloads over the wire — predictions
//      are bitwise what an in-process BatchScorer computes.
//   3. Retrain and Publish() the artifact over the wire: every shard
//      swaps atomically, the registry records the new epoch, and the
//      template cache re-warms in the background.
//   4. The new model misbehaves? Rollback() restores the previous epoch —
//      and its exact scores.
//
// Run: ./build/remote_serving

#include <cstdio>
#include <unistd.h>

#include "core/featurizer.h"
#include "core/learned_wmp.h"
#include "engine/batch_scorer.h"
#include "engine/model_registry.h"
#include "engine/scoring_service.h"
#include "net/wire_client.h"
#include "net/wire_server.h"
#include "util/strings.h"
#include "workloads/dataset.h"

using namespace wmp;

int main() {
  // --- 1. Train and stand up the serving stack -------------------------
  workloads::DatasetOptions dopt;
  dopt.num_queries = 800;
  dopt.seed = 17;
  auto dataset = workloads::BuildDataset(workloads::Benchmark::kTpcc, dopt);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  core::LearnedWmpOptions opt;
  opt.templates.num_templates = 12;
  auto trained = core::LearnedWmpModel::Train(
      dataset->records, core::AllIndices(dataset->records.size()),
      *dataset->generator, opt);
  if (!trained.ok()) {
    std::fprintf(stderr, "train: %s\n", trained.status().ToString().c_str());
    return 1;
  }
  auto model =
      std::make_shared<const core::LearnedWmpModel>(std::move(*trained));

  engine::ScoringService service({model});
  service.SetWarmCorpus(&dataset->records);  // publishes re-warm the cache
  engine::ModelRegistry registry;
  if (!registry.Record("tpcc", model).ok()) return 1;

  net::WireServer server(&service, &registry, "tpcc");
  const std::string address =
      StrFormat("unix:/tmp/wmp_remote_serving.%d.sock",
                static_cast<int>(::getpid()));
  if (Status st = server.Listen(address); !st.ok()) {
    std::fprintf(stderr, "listen: %s\n", st.ToString().c_str());
    return 1;
  }
  if (Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("predictor serving on %s\n\n", server.address().c_str());

  // --- 2. The admission controller scores over the wire ----------------
  net::WireClient client(address);
  const auto batches =
      engine::MakeConsecutiveBatches(dataset->records.size(), 10);
  auto remote = client.ScoreWorkloads("controller", dataset->records, batches);
  if (!remote.ok()) {
    std::fprintf(stderr, "score: %s\n", remote.status().ToString().c_str());
    return 1;
  }
  engine::BatchScorer local(model);
  auto reference = local.ScoreWorkloads(dataset->records, batches);
  size_t mismatches = 0;
  for (size_t w = 0; w < batches.size(); ++w) {
    if (!(*remote)[w].ok() || *(*remote)[w] != reference->predictions[w]) {
      ++mismatches;
    }
  }
  std::printf("scored %zu workloads remotely; first prediction %.1f MB; "
              "%zu differ from in-process scoring (must be 0)\n",
              batches.size(), *(*remote)[0], mismatches);

  // --- 3. Retrain + publish over the wire ------------------------------
  core::LearnedWmpOptions opt2 = opt;
  opt2.seed = 99;  // a genuinely different retrain
  auto retrained = core::LearnedWmpModel::Train(
      dataset->records, core::AllIndices(dataset->records.size()),
      *dataset->generator, opt2);
  if (!retrained.ok()) return 1;
  auto epoch = client.Publish("tpcc", *retrained);
  if (!epoch.ok()) {
    std::fprintf(stderr, "publish: %s\n", epoch.status().ToString().c_str());
    return 1;
  }
  auto after = client.ScoreWorkloads("controller", dataset->records, batches);
  std::printf("published retrain as registry epoch %llu; workload 0 now "
              "predicts %.1f MB\n",
              static_cast<unsigned long long>(*epoch),
              after.ok() && (*after)[0].ok() ? *(*after)[0] : -1.0);

  // --- 4. Roll it back -------------------------------------------------
  auto back = client.Rollback("tpcc");
  if (!back.ok()) {
    std::fprintf(stderr, "rollback: %s\n", back.status().ToString().c_str());
    return 1;
  }
  auto restored =
      client.ScoreWorkloads("controller", dataset->records, batches);
  if (!restored.ok()) {
    std::fprintf(stderr, "post-rollback score: %s\n",
                 restored.status().ToString().c_str());
    return 1;
  }
  size_t drift = 0;
  for (size_t w = 0; w < batches.size(); ++w) {
    if (!(*restored)[w].ok() ||
        *(*restored)[w] != reference->predictions[w]) {
      ++drift;
    }
  }
  std::printf("rolled back to epoch %llu: %zu workloads differ from the "
              "original model (must be 0)\n",
              static_cast<unsigned long long>(*back), drift);

  auto stats = client.Stats();
  if (stats.ok()) {
    std::printf("\nserver: %llu frames over %llu connections, %llu template "
                "entries re-warmed across the swaps\n",
                static_cast<unsigned long long>(stats->server.frames_served),
                static_cast<unsigned long long>(
                    stats->server.connections_accepted),
                static_cast<unsigned long long>(
                    stats->service.template_entries_warmed));
  }
  server.Shutdown();
  service.Stop();
  return mismatches == 0 && drift == 0 ? 0 : 1;
}
