// Plan explorer — the DBMS-substrate toolchain as a library.
//
// Takes SQL text (a built-in TPC-DS-style sample, or your own as argv[1]),
// parses it, plans it against the TPC-DS catalog, and prints:
//   * the parsed/normalized SQL,
//   * the annotated EXPLAIN tree (estimated + true cardinalities),
//   * the TR2 plan feature vector LearnedWMP clusters on,
//   * the simulated peak memory and the DBMS heuristic estimate.
//
// Run: ./build/examples/plan_explorer
//      ./build/examples/plan_explorer "SELECT d0.d_year, SUM(ss.ss_net_profit)
//        FROM store_sales ss, date_dim d0 WHERE ss.ss_sold_date_sk = d0.d_date_sk
//        AND d0.d_year BETWEEN 1998 AND 2000 GROUP BY d0.d_year"

#include <cstdio>

#include "engine/dbms_estimator.h"
#include "engine/simulator.h"
#include "plan/explain.h"
#include "plan/features.h"
#include "plan/planner.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "workloads/tpcds.h"

using namespace wmp;

int main(int argc, char** argv) {
  const char* kDefaultSql =
      "SELECT d0.d_year, d1.i_category, SUM(ss.ss_net_profit), COUNT(*) "
      "FROM store_sales ss, date_dim d0, item d1 "
      "WHERE ss.ss_sold_date_sk = d0.d_date_sk AND ss.ss_item_sk = d1.i_item_sk "
      "AND d0.d_year BETWEEN 1998 AND 2000 AND d1.i_category IN (1, 2, 3) "
      "GROUP BY d0.d_year, d1.i_category ORDER BY d0.d_year LIMIT 100";
  const std::string sql = argc > 1 ? argv[1] : kDefaultSql;

  auto generator = workloads::MakeTpcdsGenerator();
  auto query = sql::Parse(sql);
  if (!query.ok()) {
    std::fprintf(stderr, "parse error: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed SQL:\n  %s\n\n", sql::Print(*query).c_str());

  plan::Planner planner(&generator->catalog());
  auto plan = planner.CreatePlan(*query);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan error: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("EXPLAIN (in/out = optimizer estimates, tin/tout = truth):\n%s\n",
              plan::Explain(**plan).c_str());

  auto features = plan::ExtractPlanFeatures(**plan);
  auto names = plan::PlanFeatureNames();
  std::printf("plan features (TR2):\n");
  for (size_t i = 0; i < features.size(); ++i) {
    if (features[i] != 0.0) {
      std::printf("  %-14s %.1f\n", names[i].c_str(), features[i]);
    }
  }

  engine::Simulator simulator;
  std::printf("\nsimulated peak working memory: %.1f MB\n",
              simulator.SimulatePeakMemoryMb(**plan));
  std::printf("DBMS heuristic estimate:       %.1f MB\n",
              engine::DbmsEstimateMemoryMb(**plan));
  return 0;
}
