// Capacity planning — sizing working memory for a mixed analytic workload.
//
// The DBA question: "how much working memory should the new OLAP node
// have so that 95% of 10-query workload batches run without spilling?"
// LearnedWMP answers it by predicting the demand distribution over
// representative workloads; this example compares the recommendation
// against the true demand distribution and the DBMS heuristic's answer.
//
// Run: ./build/examples/capacity_planning

#include <cstdio>
#include <iostream>

#include "core/learned_wmp.h"
#include "core/single_wmp.h"
#include "ml/metrics.h"
#include "ml/search.h"
#include "util/strings.h"
#include "util/table_printer.h"
#include "workloads/dataset.h"

using namespace wmp;

int main() {
  workloads::DatasetOptions dopt;
  dopt.num_queries = 12000;  // ~13% of the paper's TPC-DS log
  dopt.seed = 23;
  auto dataset = workloads::BuildDataset(workloads::Benchmark::kTpcds, dopt);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  ml::IndexSplit split =
      ml::TrainTestSplitIndices(dataset->records.size(), 0.25, 5);

  core::LearnedWmpOptions opt;
  opt.templates.num_templates = 100;
  opt.regressor = ml::RegressorKind::kGbt;
  auto model = core::LearnedWmpModel::Train(dataset->records, split.train,
                                            *dataset->generator, opt);
  if (!model.ok()) {
    std::fprintf(stderr, "train: %s\n", model.status().ToString().c_str());
    return 1;
  }

  TablePrinter table("memory sizing for 10-query TPC-DS workload batches");
  table.SetHeader({"percentile", "true demand (MB)", "LearnedWMP (MB)",
                   "DBMS heuristic (MB)"});
  core::WorkloadSetOptions wopt;
  wopt.batch_size = 10;
  auto batches = core::BuildWorkloads(dataset->records, split.test, wopt);
  std::vector<double> truths, learned, dbms;
  for (const auto& b : batches) {
    truths.push_back(b.label_mb);
    learned.push_back(
        model->PredictWorkload(dataset->records, b.query_indices).ValueOr(0));
    dbms.push_back(core::DbmsWorkloadEstimate(dataset->records, b.query_indices));
  }
  for (double q : {0.50, 0.75, 0.90, 0.95, 0.99}) {
    table.AddRow({StrFormat("p%.0f", q * 100),
                  StrFormat("%.0f", ml::Quantile(truths, q)),
                  StrFormat("%.0f", ml::Quantile(learned, q)),
                  StrFormat("%.0f", ml::Quantile(dbms, q))});
  }
  table.Print(std::cout);

  const double rec = ml::Quantile(learned, 0.95);
  const double true_p95 = ml::Quantile(truths, 0.95);
  std::printf(
      "\nrecommendation: provision %.0f MB working memory per node "
      "(true p95: %.0f MB, error %+.1f%%)\n",
      rec, true_p95, 100.0 * (rec - true_p95) / true_p95);
  return 0;
}
