// Online serving — the paper's DBMS-integration story, end to end.
//
// A DBMS admission controller doesn't score pre-assembled evaluation sets;
// it fields a stream of concurrent per-session prediction requests. This
// example stands up the async scoring service (engine::ScoringService) over
// a trained LearnedWMP model, drives it from several "session" threads, and
// shows what the serving layer adds over the raw BatchScorer:
//
//   * Submit() returns a future immediately — sessions overlap their own
//     work with scoring.
//   * Concurrent requests are micro-batched into one scoring pass per
//     flush (see flushes vs requests in the stats printout).
//   * A steady-state session re-submitting the same workload hits the
//     histogram cache and skips featurize/assign entirely, with
//     bit-identical predictions.
//
// Run: ./build/online_serving

#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "core/featurizer.h"
#include "core/learned_wmp.h"
#include "engine/batch_scorer.h"
#include "engine/scoring_service.h"
#include "util/sync.h"
#include "workloads/dataset.h"

using namespace wmp;

int main() {
  // Train on a simulated TPC-C log (a deployment would LoadFromFile a
  // model shipped by wmpctl train).
  workloads::DatasetOptions dopt;
  dopt.num_queries = 800;
  dopt.seed = 17;
  auto dataset = workloads::BuildDataset(workloads::Benchmark::kTpcc, dopt);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  core::LearnedWmpOptions opt;
  opt.templates.num_templates = 12;
  auto model = core::LearnedWmpModel::Train(
      dataset->records, core::AllIndices(dataset->records.size()),
      *dataset->generator, opt);
  if (!model.ok()) {
    std::fprintf(stderr, "train: %s\n", model.status().ToString().c_str());
    return 1;
  }

  // Two shards over the one model: dispatch spreads across queues while
  // the process-wide worker pool stays shared.
  engine::ScoringServiceOptions sopt;
  sopt.max_batch = 32;
  sopt.max_delay_us = 500;
  engine::ScoringService service({&*model, &*model}, sopt);

  // Four concurrent sessions, each scoring its own slice of the log —
  // and every session re-submits its first workload, as a steady-state
  // OLTP stream would, to exercise the cache.
  const auto batches = engine::MakeConsecutiveBatches(
      dataset->records.size(), /*batch_size=*/10);
  constexpr size_t kSessions = 4;
  util::Latch start(kSessions);
  std::vector<std::thread> sessions;
  for (size_t s = 0; s < kSessions; ++s) {
    sessions.emplace_back([&, s] {
      const std::string tenant = "session-" + std::to_string(s);
      start.ArriveAndWait();
      double first_cold = 0.0, first_warm = 0.0;
      for (int pass = 0; pass < 2; ++pass) {
        for (size_t w = s; w < batches.size(); w += kSessions) {
          auto fut =
              service.Submit(tenant, dataset->records,
                             batches[w].query_indices);
          auto got = fut.get();
          if (!got.ok()) {
            std::fprintf(stderr, "%s: %s\n", tenant.c_str(),
                         got.status().ToString().c_str());
            return;
          }
          if (w == s) (pass == 0 ? first_cold : first_warm) = *got;
        }
      }
      std::printf("%s: workload %zu cold %.2f MB, cached %.2f MB (%s)\n",
                  tenant.c_str(), s, first_cold, first_warm,
                  first_cold == first_warm ? "bit-identical" : "MISMATCH");
    });
  }
  for (auto& t : sessions) t.join();
  service.Stop();

  const engine::ServiceStats st = service.stats();
  std::printf(
      "\nservice: %llu requests -> %llu flushes (avg batch %.1f), "
      "cache hit rate %.1f%%, avg latency %.0f us\n",
      static_cast<unsigned long long>(st.completed),
      static_cast<unsigned long long>(st.flushes), st.avg_batch(),
      100.0 * st.cache_hit_rate(), st.avg_latency_us());
  return st.failed == 0 ? 0 : 1;
}
