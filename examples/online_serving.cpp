// Online serving — the paper's DBMS-integration story, end to end.
//
// A DBMS admission controller doesn't score pre-assembled evaluation sets;
// it fields a stream of concurrent per-session prediction requests. This
// example stands up the async scoring service (engine::ScoringService) over
// a trained LearnedWMP model, drives it from several "session" threads, and
// shows what the serving layer adds over the raw BatchScorer:
//
//   * Submit() returns a future immediately — sessions overlap their own
//     work with scoring.
//   * Concurrent requests are micro-batched into one scoring pass per
//     flush; the adaptive controller flushes early whenever no further
//     arrival can be pending, so closed-loop sessions skip the delay
//     window (see the flush-reason breakdown in the stats printout).
//   * A steady-state session re-submitting the same workload hits the
//     histogram cache and skips featurize/assign entirely, with
//     bit-identical predictions — and a *novel* workload made of known
//     queries still skips per-query featurize/assign via the template-id
//     cache.
//   * Retraining publishes into the live service (PublishModel): traffic
//     keeps flowing across the swap and both caches version on the model
//     epoch, so no stale prediction can leak.
//
// Run: ./build/online_serving

#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "core/featurizer.h"
#include "core/learned_wmp.h"
#include "engine/batch_scorer.h"
#include "engine/scoring_service.h"
#include "util/sync.h"
#include "workloads/dataset.h"

using namespace wmp;

int main() {
  // Train on a simulated TPC-C log (a deployment would LoadFromFile a
  // model shipped by wmpctl train).
  workloads::DatasetOptions dopt;
  dopt.num_queries = 800;
  dopt.seed = 17;
  auto dataset = workloads::BuildDataset(workloads::Benchmark::kTpcc, dopt);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  core::LearnedWmpOptions opt;
  opt.templates.num_templates = 12;
  auto model = core::LearnedWmpModel::Train(
      dataset->records, core::AllIndices(dataset->records.size()),
      *dataset->generator, opt);
  if (!model.ok()) {
    std::fprintf(stderr, "train: %s\n", model.status().ToString().c_str());
    return 1;
  }

  // Two shards over the one model: dispatch spreads across queues while
  // the process-wide worker pool stays shared.
  engine::ScoringServiceOptions sopt;
  sopt.max_batch = 32;
  sopt.max_delay_us = 500;
  engine::ScoringService service({&*model, &*model}, sopt);

  // Four concurrent sessions, each scoring its own slice of the log —
  // and every session re-submits its first workload, as a steady-state
  // OLTP stream would, to exercise the cache.
  const auto batches = engine::MakeConsecutiveBatches(
      dataset->records.size(), /*batch_size=*/10);
  constexpr size_t kSessions = 4;
  util::Latch start(kSessions);
  std::vector<std::thread> sessions;
  for (size_t s = 0; s < kSessions; ++s) {
    sessions.emplace_back([&, s] {
      const std::string tenant = "session-" + std::to_string(s);
      start.ArriveAndWait();
      double first_cold = 0.0, first_warm = 0.0;
      for (int pass = 0; pass < 2; ++pass) {
        for (size_t w = s; w < batches.size(); w += kSessions) {
          auto fut =
              service.Submit(tenant, dataset->records,
                             batches[w].query_indices);
          auto got = fut.get();
          if (!got.ok()) {
            std::fprintf(stderr, "%s: %s\n", tenant.c_str(),
                         got.status().ToString().c_str());
            return;
          }
          if (w == s) (pass == 0 ? first_cold : first_warm) = *got;
        }
      }
      std::printf("%s: workload %zu cold %.2f MB, cached %.2f MB (%s)\n",
                  tenant.c_str(), s, first_cold, first_warm,
                  first_cold == first_warm ? "bit-identical" : "MISMATCH");
    });
  }
  for (auto& t : sessions) t.join();

  // A novel workload assembled from queries session-0 already scored:
  // the caches are per shard, so only queries routed through the same
  // tenant are memoized there. Its fingerprint is new (histogram cache
  // miss) but every member's template id is memoized, so featurize/assign
  // is skipped per query. Session 0's slice is workloads 0, 4, 8, ... —
  // take one query from each of its first ten workloads.
  std::vector<uint32_t> novel;
  for (uint32_t k = 0; k < 10; ++k) novel.push_back(k * 40 + k);
  auto novel_before = service.stats();
  auto novel_got = service.Submit("session-0", dataset->records, novel).get();
  auto novel_after = service.stats();
  if (novel_got.ok()) {
    std::printf(
        "\nnovel workload of known queries: %.2f MB "
        "(histogram cache +%llu hits, template cache +%llu hits)\n",
        *novel_got,
        static_cast<unsigned long long>(novel_after.cache_hits -
                                        novel_before.cache_hits),
        static_cast<unsigned long long>(novel_after.template_cache_hits -
                                        novel_before.template_cache_hits));
  }

  // Retrain (here: a different seed stands in for fresh log data) and
  // publish into the live service — the paper's "ship the model into the
  // DBMS" step, without a restart.
  core::LearnedWmpOptions opt2 = opt;
  opt2.seed = 99;
  auto retrained = core::LearnedWmpModel::Train(
      dataset->records, core::AllIndices(dataset->records.size()),
      *dataset->generator, opt2);
  if (retrained.ok()) {
    auto fresh =
        std::make_shared<const core::LearnedWmpModel>(std::move(*retrained));
    for (size_t shard = 0; shard < service.num_shards(); ++shard) {
      if (Status st = service.PublishModel(shard, fresh); !st.ok()) {
        std::fprintf(stderr, "publish: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    auto before = service.Submit("session-0", dataset->records,
                                 batches[0].query_indices)
                      .get();
    if (before.ok()) {
      std::printf("after hot-swap, workload 0 scores %.2f MB on the "
                  "retrained model (no restart, no failed requests)\n",
                  *before);
    }
  }
  service.Stop();

  const engine::ServiceStats st = service.stats();
  std::printf(
      "\nservice: %llu requests -> %llu flushes (avg batch %.1f; "
      "%llu full, %llu adaptive, %llu deadline), hist cache %.1f%%, "
      "template cache %.1f%%, %llu models published, avg latency %.0f us\n",
      static_cast<unsigned long long>(st.completed),
      static_cast<unsigned long long>(st.flushes), st.avg_batch(),
      static_cast<unsigned long long>(st.flushes_full),
      static_cast<unsigned long long>(st.flushes_adaptive),
      static_cast<unsigned long long>(st.flushes_deadline),
      100.0 * st.cache_hit_rate(), 100.0 * st.template_cache_hit_rate(),
      static_cast<unsigned long long>(st.models_published),
      st.avg_latency_us());
  return st.failed == 0 ? 0 : 1;
}
