// Admission control — the paper's §I motivating scenario.
//
// A DBMS with a fixed working-memory budget decides which incoming
// workloads to admit. Admitting on UNDER-estimates over-commits memory
// (spills, thrashing, query failures); admitting on OVER-estimates leaves
// the machine idle. This example replays held-out JOB workloads through an
// admission gate driven by (a) the DBMS optimizer's heuristic estimates
// and (b) LearnedWMP, and scores both against an oracle that knows the
// true demand.
//
// Run: ./build/examples/admission_control

#include <cstdio>
#include <iostream>

#include "core/learned_wmp.h"
#include "core/single_wmp.h"
#include "ml/search.h"
#include "util/strings.h"
#include "util/table_printer.h"
#include "workloads/dataset.h"

using namespace wmp;

namespace {

struct GateOutcome {
  int admitted = 0;
  int overcommits = 0;       // admitted but true demand exceeded the budget
  double wasted_mb = 0.0;    // budget left idle on workloads rejected wrongly
};

GateOutcome RunGate(const std::vector<double>& estimates,
                    const std::vector<double>& truths, double budget_mb) {
  GateOutcome out;
  for (size_t i = 0; i < estimates.size(); ++i) {
    const bool admit = estimates[i] <= budget_mb;
    const bool fits = truths[i] <= budget_mb;
    if (admit) {
      ++out.admitted;
      if (!fits) ++out.overcommits;
    } else if (fits) {
      out.wasted_mb += budget_mb - truths[i];
    }
  }
  return out;
}

}  // namespace

int main() {
  workloads::DatasetOptions dopt;
  dopt.seed = 11;
  auto dataset = workloads::BuildDataset(workloads::Benchmark::kJob, dopt);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  ml::IndexSplit split =
      ml::TrainTestSplitIndices(dataset->records.size(), 0.2, 3);

  core::LearnedWmpOptions opt;
  opt.regressor = ml::RegressorKind::kGbt;
  opt.templates.num_templates = 40;
  auto model = core::LearnedWmpModel::Train(dataset->records, split.train,
                                            *dataset->generator, opt);
  if (!model.ok()) {
    std::fprintf(stderr, "train: %s\n", model.status().ToString().c_str());
    return 1;
  }

  core::WorkloadSetOptions wopt;
  wopt.batch_size = 10;
  auto batches = core::BuildWorkloads(dataset->records, split.test, wopt);
  std::vector<double> truths, learned, dbms;
  for (const auto& b : batches) {
    truths.push_back(b.label_mb);
    learned.push_back(
        model->PredictWorkload(dataset->records, b.query_indices).ValueOr(0));
    dbms.push_back(core::DbmsWorkloadEstimate(dataset->records, b.query_indices));
  }
  double mean_truth = 0.0;
  for (double t : truths) mean_truth += t;
  mean_truth /= static_cast<double>(truths.size());

  std::printf("admission control over %zu held-out JOB workloads "
              "(mean true demand %.0f MB)\n\n",
              batches.size(), mean_truth);
  TablePrinter table;
  table.SetHeader({"budget (MB)", "estimator", "admitted", "overcommits",
                   "idle waste (MB)"});
  for (double budget : {0.8 * mean_truth, mean_truth, 1.5 * mean_truth}) {
    const GateOutcome l = RunGate(learned, truths, budget);
    const GateOutcome d = RunGate(dbms, truths, budget);
    table.AddRow({StrFormat("%.0f", budget), "LearnedWMP-XGB",
                  StrFormat("%d", l.admitted), StrFormat("%d", l.overcommits),
                  StrFormat("%.0f", l.wasted_mb)});
    table.AddRow({"", "SingleWMP-DBMS", StrFormat("%d", d.admitted),
                  StrFormat("%d", d.overcommits),
                  StrFormat("%.0f", d.wasted_mb)});
  }
  table.Print(std::cout);
  return 0;
}
