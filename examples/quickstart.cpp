// Quickstart: the full LearnedWMP workflow in ~60 lines.
//
//  1. Build a (simulated) query log for a benchmark      -> BuildDataset
//  2. Train a LearnedWMP model on it                     -> LearnedWmpModel::Train
//  3. Predict the memory demand of an unseen workload    -> PredictWorkload
//
// Run: ./build/examples/quickstart

#include <cstdio>

#include "core/featurizer.h"
#include "core/learned_wmp.h"
#include "ml/search.h"
#include "workloads/dataset.h"

using namespace wmp;

int main() {
  // 1. Fabricate a query log: 2,000 TPC-C queries, planned and "executed"
  //    by the memory simulator.
  workloads::DatasetOptions dopt;
  dopt.num_queries = 2000;
  dopt.seed = 7;
  auto dataset = workloads::BuildDataset(workloads::Benchmark::kTpcc, dopt);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("query log: %zu %s queries\n", dataset->records.size(),
              dataset->benchmark_name.c_str());
  std::printf("sample query: %s\n", dataset->records[0].sql_text.c_str());

  // 2. Train LearnedWMP-XGB on 80% of the log.
  ml::IndexSplit split =
      ml::TrainTestSplitIndices(dataset->records.size(), 0.2, /*seed=*/1);
  core::LearnedWmpOptions opt;
  opt.templates.num_templates = 16;  // k query templates
  opt.batch_size = 10;               // workload size s
  opt.regressor = ml::RegressorKind::kGbt;
  auto model = core::LearnedWmpModel::Train(dataset->records, split.train,
                                            *dataset->generator, opt);
  if (!model.ok()) {
    std::fprintf(stderr, "train: %s\n", model.status().ToString().c_str());
    return 1;
  }
  std::printf("trained on %zu workloads (templates %.0fms, regressor %.0fms)\n",
              model->train_stats().num_workloads,
              model->train_stats().template_ms,
              model->train_stats().regressor_ms);

  // 3. Predict an unseen workload: the first 10 held-out queries.
  std::vector<uint32_t> workload(split.test.begin(), split.test.begin() + 10);
  auto hist = model->BinWorkload(dataset->records, workload);
  auto predicted = model->PredictWorkload(dataset->records, workload);
  if (!predicted.ok()) {
    std::fprintf(stderr, "predict: %s\n", predicted.status().ToString().c_str());
    return 1;
  }
  double actual = 0.0;
  for (uint32_t i : workload) actual += dataset->records[i].actual_memory_mb;

  std::printf("\nworkload histogram (k=%d bins): [", model->templates().num_templates());
  for (size_t i = 0; i < hist->size(); ++i) {
    std::printf("%s%.0f", i ? " " : "", (*hist)[i]);
  }
  std::printf("]\n");
  std::printf("predicted memory: %.1f MB\n", *predicted);
  std::printf("actual memory:    %.1f MB\n", actual);
  std::printf("relative error:   %.1f%%\n",
              100.0 * (*predicted - actual) / actual);
  return 0;
}
