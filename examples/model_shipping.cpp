// Model shipping — the paper's "DBMS Integration" story.
//
// A DBMS vendor pre-trains a LearnedWMP model on sample workloads, ships
// the serialized model inside the product, and the deployed instance
// serves predictions immediately — then retrains on its own query log to
// specialize. This example runs that lifecycle end to end:
//
//   vendor:   train on synthetic TPC-DS log  -> SaveToFile("model.wmp")
//   customer: LoadFromFile("model.wmp")      -> serve predictions
//   customer: retrain on local log           -> accuracy improves
//
// Run: ./build/examples/model_shipping

#include <cstdio>

#include "core/featurizer.h"
#include "core/learned_wmp.h"
#include "ml/metrics.h"
#include "ml/search.h"
#include "workloads/dataset.h"

using namespace wmp;

namespace {

double ScoreModel(const core::LearnedWmpModel& model,
                  const workloads::Dataset& dataset,
                  const std::vector<core::WorkloadBatch>& batches,
                  const std::vector<double>& labels) {
  auto pred = model.PredictWorkloads(dataset.records, batches);
  return pred.ok() ? ml::Rmse(labels, *pred) : -1.0;
}

}  // namespace

int main() {
  const std::string model_path = "/tmp/learnedwmp_shipped.wmp";

  // --- Vendor side: pre-train on a generic sample log --------------------
  workloads::DatasetOptions vendor_opt;
  vendor_opt.num_queries = 2500;  // vendors ship with modest sample logs
  vendor_opt.seed = 100;  // the vendor's sample workloads
  auto vendor_log = workloads::BuildDataset(workloads::Benchmark::kTpcds,
                                            vendor_opt);
  if (!vendor_log.ok()) {
    std::fprintf(stderr, "vendor log: %s\n",
                 vendor_log.status().ToString().c_str());
    return 1;
  }
  core::LearnedWmpOptions opt;
  opt.templates.num_templates = 60;
  opt.regressor = ml::RegressorKind::kGbt;
  auto vendor_model = core::LearnedWmpModel::Train(
      vendor_log->records, core::AllIndices(vendor_log->records.size()),
      *vendor_log->generator, opt);
  if (!vendor_model.ok()) {
    std::fprintf(stderr, "train: %s\n",
                 vendor_model.status().ToString().c_str());
    return 1;
  }
  if (Status st = vendor_model->SaveToFile(model_path); !st.ok()) {
    std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("vendor: trained on %zu workloads, shipped %zu bytes to %s\n",
              vendor_model->train_stats().num_workloads,
              vendor_model->SerializedSize().ValueOr(0), model_path.c_str());

  // --- Customer side: different data distribution (different seed) -------
  workloads::DatasetOptions customer_opt;
  customer_opt.num_queries = 9000;  // the live site accumulates more
  customer_opt.seed = 555;  // the customer's own workloads
  auto customer_log = workloads::BuildDataset(workloads::Benchmark::kTpcds,
                                              customer_opt);
  if (!customer_log.ok()) {
    std::fprintf(stderr, "customer log: %s\n",
                 customer_log.status().ToString().c_str());
    return 1;
  }
  ml::IndexSplit split =
      ml::TrainTestSplitIndices(customer_log->records.size(), 0.3, 9);
  core::WorkloadSetOptions wopt;
  wopt.batch_size = 10;
  auto batches =
      core::BuildWorkloads(customer_log->records, split.test, wopt);
  std::vector<double> labels;
  for (const auto& b : batches) labels.push_back(b.label_mb);

  auto shipped = core::LearnedWmpModel::LoadFromFile(model_path);
  if (!shipped.ok()) {
    std::fprintf(stderr, "load: %s\n", shipped.status().ToString().c_str());
    return 1;
  }
  const double shipped_rmse =
      ScoreModel(*shipped, *customer_log, batches, labels);
  std::printf(
      "customer: loaded shipped model, day-one RMSE on local workloads: "
      "%.1f MB\n",
      shipped_rmse);

  // --- Customer retrains on its own log (the paper's feedback loop) ------
  auto retrained = core::LearnedWmpModel::Train(
      customer_log->records, split.train, *customer_log->generator, opt);
  if (!retrained.ok()) {
    std::fprintf(stderr, "retrain: %s\n",
                 retrained.status().ToString().c_str());
    return 1;
  }
  const double retrained_rmse =
      ScoreModel(*retrained, *customer_log, batches, labels);
  std::printf(
      "customer: after retraining on the local query log: %.1f MB "
      "(%+.0f%% vs shipped)\n",
      retrained_rmse,
      100.0 * (retrained_rmse - shipped_rmse) / shipped_rmse);
  return 0;
}
