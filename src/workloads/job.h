#ifndef WMP_WORKLOADS_JOB_H_
#define WMP_WORKLOADS_JOB_H_

/// \file job.h
/// Join Order Benchmark (JOB)-like generator: an IMDB-style schema
/// (21 tables, heavily skewed and correlated) and 33 join-heavy query
/// families mirroring the 33 families of the real benchmark — many joins
/// around the `title` hub, selective dimension predicates, a single MIN
/// aggregate, and no grouping.

#include <memory>

#include "workloads/generator.h"

namespace wmp::workloads {

/// Creates the JOB-like generator.
std::unique_ptr<WorkloadGenerator> MakeJobGenerator();

}  // namespace wmp::workloads

#endif  // WMP_WORKLOADS_JOB_H_
