#include "workloads/job.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <map>

#include "util/interner.h"
#include "util/strings.h"

namespace wmp::workloads {

namespace {

using catalog::Column;
using catalog::ColumnStats;
using catalog::ColumnType;
using catalog::TableDef;

ColumnStats Key(uint64_t ndv) {
  return {.ndv = ndv, .min_value = 1, .max_value = static_cast<double>(ndv)};
}

ColumnStats Attr(uint64_t ndv, double skew, double lo = 1, double hi = -1) {
  return {.ndv = ndv,
          .min_value = lo,
          .max_value = hi < 0 ? static_cast<double>(ndv) : hi,
          .zipf_skew = skew};
}

void AddColumnOrDie(TableDef* t, Column c) {
  const Status st = t->AddColumn(std::move(c));
  WMP_CHECK_OK(st);
}

catalog::Catalog BuildJobCatalog() {
  catalog::Catalog cat;
  {
    TableDef t("title", 2528312);
    AddColumnOrDie(&t, Column("id", ColumnType::kInt, Key(2528312)));
    AddColumnOrDie(&t, Column("kind_id", ColumnType::kInt, Attr(7, 0.9)));
    AddColumnOrDie(&t, Column("production_year", ColumnType::kInt,
                              Attr(133, 0.8, 1880, 2012)));
    AddColumnOrDie(&t, Column("title", ColumnType::kString, Attr(2400000, 0.0)));
    WMP_CHECK_OK(t.AddIndex("id", true));
    WMP_CHECK_OK(t.AddForeignKey({"kind_id", "kind_type", "id", 1.0}));
    WMP_CHECK_OK(t.AddCorrelation("kind_id", "production_year", 0.5));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  }
  auto add_link_table = [&](const char* name, uint64_t rows,
                            double movie_skew,
                            std::vector<Column> extra_cols,
                            std::vector<catalog::ForeignKey> extra_fks,
                            double movie_fanout) {
    TableDef t(name, rows);
    AddColumnOrDie(&t, Column("movie_id", ColumnType::kInt,
                              Attr(std::min<uint64_t>(rows, 2528312),
                                   movie_skew)));
    WMP_CHECK_OK(t.AddForeignKey({"movie_id", "title", "id", movie_fanout}));
    WMP_CHECK_OK(t.AddIndex("movie_id"));
    for (Column& c : extra_cols) AddColumnOrDie(&t, std::move(c));
    for (catalog::ForeignKey& fk : extra_fks) {
      WMP_CHECK_OK(t.AddForeignKey(std::move(fk)));
    }
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  };

  add_link_table("movie_companies", 2609129, 1.0,
                 {Column("company_id", ColumnType::kInt, Attr(234997, 1.1)),
                  Column("company_type_id", ColumnType::kInt, Attr(2, 0.3))},
                 {{"company_id", "company_name", "id", 2.5},
                  {"company_type_id", "company_type", "id", 1.0}},
                 1.9);
  add_link_table("cast_info", 36244344, 1.1,
                 {Column("person_id", ColumnType::kInt, Attr(4061926, 1.0)),
                  Column("role_id", ColumnType::kInt, Attr(11, 0.8))},
                 {{"person_id", "name", "id", 2.8},
                  {"role_id", "role_type", "id", 1.0}},
                 3.0);
  add_link_table("movie_info", 14835720, 1.0,
                 {Column("info_type_id", ColumnType::kInt, Attr(71, 1.2))},
                 {{"info_type_id", "info_type", "id", 1.0}}, 2.4);
  add_link_table("movie_info_idx", 1380035, 0.6,
                 {Column("info_type_id", ColumnType::kInt, Attr(5, 0.5))},
                 {{"info_type_id", "info_type", "id", 1.0}}, 1.3);
  add_link_table("movie_keyword", 4523930, 1.0,
                 {Column("keyword_id", ColumnType::kInt, Attr(134170, 1.1))},
                 {{"keyword_id", "keyword", "id", 2.6}}, 2.1);
  add_link_table("aka_title", 361472, 0.7, {}, {}, 1.2);
  add_link_table("complete_cast", 135086, 0.4,
                 {Column("subject_id", ColumnType::kInt, Attr(2, 0.2)),
                  Column("status_id", ColumnType::kInt, Attr(2, 0.2))},
                 {{"subject_id", "comp_cast_type", "id", 1.0},
                  {"status_id", "comp_cast_type", "id", 1.0}},
                 1.1);
  add_link_table("movie_link", 29997, 0.5,
                 {Column("link_type_id", ColumnType::kInt, Attr(16, 0.6))},
                 {{"link_type_id", "link_type", "id", 1.0}}, 1.1);

  auto add_entity = [&](const char* name, uint64_t rows,
                        std::vector<Column> cols) {
    TableDef t(name, rows);
    AddColumnOrDie(&t, Column("id", ColumnType::kInt, Key(rows)));
    WMP_CHECK_OK(t.AddIndex("id", true));
    for (Column& c : cols) AddColumnOrDie(&t, std::move(c));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  };
  add_entity("company_name", 234997,
             {Column("country_code", ColumnType::kString, Attr(112, 1.0)),
              Column("name", ColumnType::kString, Attr(230000, 0.0))});
  add_entity("company_type", 4,
             {Column("kind", ColumnType::kString, Attr(4, 0.0))});
  add_entity("name", 4061926,
             {Column("gender", ColumnType::kString, Attr(3, 0.7)),
              Column("name_pcode", ColumnType::kString, Attr(25000, 0.6))});
  add_entity("char_name", 3140339, {});
  add_entity("keyword", 134170,
             {Column("keyword", ColumnType::kString, Attr(134170, 0.0))});
  add_entity("info_type", 113,
             {Column("info", ColumnType::kString, Attr(113, 0.0))});
  add_entity("kind_type", 7,
             {Column("kind", ColumnType::kString, Attr(7, 0.0))});
  add_entity("role_type", 12,
             {Column("role", ColumnType::kString, Attr(12, 0.0))});
  add_entity("comp_cast_type", 4,
             {Column("kind", ColumnType::kString, Attr(4, 0.0))});
  add_entity("link_type", 18,
             {Column("link", ColumnType::kString, Attr(18, 0.0))});

  // Person-side satellites.
  {
    TableDef t("aka_name", 901343);
    AddColumnOrDie(&t, Column("person_id", ColumnType::kInt, Attr(901343, 0.8)));
    WMP_CHECK_OK(t.AddForeignKey({"person_id", "name", "id", 1.4}));
    WMP_CHECK_OK(t.AddIndex("person_id"));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  }
  {
    TableDef t("person_info", 2963664);
    AddColumnOrDie(&t, Column("person_id", ColumnType::kInt, Attr(2963664, 0.9)));
    AddColumnOrDie(&t, Column("info_type_id", ColumnType::kInt, Attr(40, 1.0)));
    WMP_CHECK_OK(t.AddForeignKey({"person_id", "name", "id", 1.8}));
    WMP_CHECK_OK(t.AddForeignKey({"info_type_id", "info_type", "id", 1.0}));
    WMP_CHECK_OK(t.AddIndex("person_id"));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  }
  return cat;
}

// A join chain hanging off the title hub: the link table plus optional
// entity hops, with candidate predicate columns `(table, column, fraction)`.
struct Chain {
  const char* link;  // table joined on movie_id
  // (table, fk_on_that_table, entity, entity_pk)
  std::vector<std::array<const char*, 4>> hops;
  // (table, column, typical domain fraction; <=0 means equality/IN)
  std::vector<std::array<const char*, 2>> eq_pred_cols;
  std::vector<std::pair<std::array<const char*, 2>, double>> range_pred_cols;
};

std::vector<Chain> BuildChains() {
  std::vector<Chain> chains;
  chains.push_back({"movie_companies",
                    {{{"movie_companies", "company_id", "company_name", "id"}},
                     {{"movie_companies", "company_type_id", "company_type",
                       "id"}}},
                    {{{"company_name", "country_code"}},
                     {{"company_type", "kind"}}},
                    {}});
  chains.push_back({"cast_info",
                    {{{"cast_info", "person_id", "name", "id"}},
                     {{"cast_info", "role_id", "role_type", "id"}}},
                    {{{"name", "gender"}}, {{"role_type", "role"}}},
                    {}});
  chains.push_back({"movie_info",
                    {{{"movie_info", "info_type_id", "info_type", "id"}}},
                    {{{"info_type", "info"}}},
                    {}});
  chains.push_back({"movie_keyword",
                    {{{"movie_keyword", "keyword_id", "keyword", "id"}}},
                    {{{"keyword", "keyword"}}},
                    {}});
  chains.push_back({"movie_info_idx",
                    {{{"movie_info_idx", "info_type_id", "info_type", "id"}}},
                    {{{"info_type", "info"}}},
                    {}});
  chains.push_back({"complete_cast",
                    {{{"complete_cast", "subject_id", "comp_cast_type", "id"}}},
                    {{{"comp_cast_type", "kind"}}},
                    {}});
  chains.push_back({"movie_link",
                    {{{"movie_link", "link_type_id", "link_type", "id"}}},
                    {{{"link_type", "link"}}},
                    {}});
  chains.push_back({"aka_title", {}, {}, {}});
  return chains;
}

struct JobFamily {
  std::vector<int> chains;  // indices into BuildChains()
  int hop_depth = 1;        // how many entity hops each chain includes
  bool title_year_pred = true;
  bool title_kind_pred = false;
  int num_chain_preds = 1;
};

std::vector<JobFamily> BuildJobFamilies(size_t num_chains) {
  std::vector<JobFamily> families;
  // Enumerate chain subsets of growing size with rotations, 33 total —
  // matching the 33 families of the real JOB.
  for (int spin = 0; families.size() < 33 && spin < 12; ++spin) {
    for (size_t width = 1; width <= 4 && families.size() < 33; ++width) {
      JobFamily fam;
      for (size_t c = 0; c < width; ++c) {
        fam.chains.push_back(
            static_cast<int>((static_cast<size_t>(spin) + c * 2) % num_chains));
      }
      std::sort(fam.chains.begin(), fam.chains.end());
      fam.chains.erase(std::unique(fam.chains.begin(), fam.chains.end()),
                       fam.chains.end());
      fam.hop_depth = 1 + (spin + static_cast<int>(width)) % 2;
      fam.title_year_pred = (spin % 3) != 1;
      fam.title_kind_pred = (spin % 2) == 0;
      fam.num_chain_preds = 1 + (spin + static_cast<int>(width)) % 2;
      families.push_back(std::move(fam));
    }
  }
  families.resize(33);
  return families;
}

class JobGenerator : public WorkloadGenerator {
 public:
  JobGenerator()
      : name_("JOB"),
        catalog_(BuildJobCatalog()),
        chains_(BuildChains()),
        families_(BuildJobFamilies(chains_.size())) {}

  const std::string& name() const override { return name_; }
  const catalog::Catalog& catalog() const override { return catalog_; }
  int num_families() const override {
    return static_cast<int>(families_.size());
  }

  Result<sql::Query> GenerateQuery(int family_id, Rng* rng) const override {
    if (family_id < 0 || family_id >= num_families()) {
      return Status::InvalidArgument("bad JOB family id");
    }
    const JobFamily& fam = families_[static_cast<size_t>(family_id)];
    sql::Query q;
    q.from.push_back({"title", "t"});
    q.select_list.push_back(
        sql::SelectItem::Agg(sql::AggFunc::kMin, {"t", "production_year"}));

    int alias_counter = 0;
    int preds_added = 0;
    for (int chain_idx : fam.chains) {
      const Chain& chain = chains_[static_cast<size_t>(chain_idx)];
      const std::string_view link_alias =
          util::Intern(StrFormat("l%d", alias_counter++));
      q.from.push_back({chain.link, link_alias});
      q.where.push_back(
          sql::Predicate::Join({link_alias, "movie_id"}, {"t", "id"}));

      // table -> interned alias (the AST keeps string_views into the
      // interner, never into this frame).
      std::map<std::string, std::string_view, std::less<>> alias_of;
      alias_of[chain.link] = link_alias;
      const int hops =
          std::min<int>(fam.hop_depth, static_cast<int>(chain.hops.size()));
      for (int h = 0; h < hops; ++h) {
        const auto& [from_table, fk, entity, pk] = chain.hops[static_cast<size_t>(h)];
        const std::string_view entity_alias =
            util::Intern(StrFormat("e%d", alias_counter++));
        q.from.push_back({entity, entity_alias});
        q.where.push_back(sql::Predicate::Join({alias_of[from_table], fk},
                                               {entity_alias, pk}));
        alias_of[entity] = entity_alias;
      }
      // Selective predicate on one of the chain's entity columns.
      if (preds_added < fam.num_chain_preds) {
        for (const auto& pred_col : chain.eq_pred_cols) {
          auto it = alias_of.find(pred_col[0]);
          if (it == alias_of.end()) continue;
          WMP_ASSIGN_OR_RETURN(const catalog::TableDef* table,
                               catalog_.FindTable(pred_col[0]));
          sql::Predicate pred;
          if (rng->Bernoulli(0.35)) {
            WMP_ASSIGN_OR_RETURN(
                pred, SampleInPredicate(*table, it->second, pred_col[1],
                                        static_cast<int>(rng->UniformInt(2, 5)),
                                        rng));
          } else {
            WMP_ASSIGN_OR_RETURN(
                pred, SampleEqPredicate(*table, it->second, pred_col[1], rng));
          }
          q.where.push_back(std::move(pred));
          ++preds_added;
          break;
        }
      }
    }

    WMP_ASSIGN_OR_RETURN(const catalog::TableDef* title,
                         catalog_.FindTable("title"));
    if (fam.title_year_pred) {
      WMP_ASSIGN_OR_RETURN(
          sql::Predicate pred,
          SampleRangePredicate(*title, "t", "production_year",
                               rng->UniformDouble(0.05, 0.5), rng));
      q.where.push_back(std::move(pred));
    }
    if (fam.title_kind_pred) {
      WMP_ASSIGN_OR_RETURN(sql::Predicate pred,
                           SampleEqPredicate(*title, "t", "kind_id", rng));
      q.where.push_back(std::move(pred));
    }
    return q;
  }

  std::vector<text::TemplateRule> ExpertRules() const override {
    std::vector<text::TemplateRule> rules;
    rules.reserve(families_.size());
    for (size_t i = 0; i < families_.size(); ++i) {
      const JobFamily& fam = families_[i];
      text::TemplateRule rule;
      rule.name = StrFormat("job-f%zu", i);
      rule.required_tables.push_back("title");
      int joins = 0;
      for (int chain_idx : fam.chains) {
        const Chain& chain = chains_[static_cast<size_t>(chain_idx)];
        rule.required_tables.push_back(chain.link);
        ++joins;
        const int hops =
            std::min<int>(fam.hop_depth, static_cast<int>(chain.hops.size()));
        joins += hops;
      }
      rule.min_joins = joins;
      rule.max_joins = joins;
      rule.requires_aggregation = true;  // every JOB family aggregates (MIN)
      rules.push_back(std::move(rule));
    }
    return rules;
  }

 private:
  std::string name_;
  catalog::Catalog catalog_;
  std::vector<Chain> chains_;
  std::vector<JobFamily> families_;
};

}  // namespace

std::unique_ptr<WorkloadGenerator> MakeJobGenerator() {
  return std::make_unique<JobGenerator>();
}

}  // namespace wmp::workloads
