#include "workloads/tpcc.h"

#include <cassert>

#include "util/interner.h"
#include "util/strings.h"

namespace wmp::workloads {

namespace {

using catalog::Column;
using catalog::ColumnStats;
using catalog::ColumnType;
using catalog::TableDef;

ColumnStats Key(uint64_t ndv) {
  return {.ndv = ndv, .min_value = 1, .max_value = static_cast<double>(ndv)};
}

ColumnStats Attr(uint64_t ndv, double skew, double lo = 1, double hi = -1) {
  return {.ndv = ndv,
          .min_value = lo,
          .max_value = hi < 0 ? static_cast<double>(ndv) : hi,
          .zipf_skew = skew};
}

void AddColumnOrDie(TableDef* t, Column c) {
  const Status st = t->AddColumn(std::move(c));
  WMP_CHECK_OK(st);
}

catalog::Catalog BuildTpccCatalog() {
  catalog::Catalog cat;
  constexpr uint64_t kW = 100;  // warehouses
  {
    TableDef t("warehouse", kW);
    AddColumnOrDie(&t, Column("w_id", ColumnType::kInt, Key(kW)));
    AddColumnOrDie(&t, Column("w_tax", ColumnType::kDecimal,
                              Attr(100, 0.0, 0, 0.2)));
    WMP_CHECK_OK(t.AddIndex("w_id", true));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  }
  {
    TableDef t("district", kW * 10);
    AddColumnOrDie(&t, Column("d_id", ColumnType::kInt, Key(kW * 10)));
    AddColumnOrDie(&t, Column("d_w_id", ColumnType::kInt, Attr(kW, 0.0)));
    AddColumnOrDie(&t, Column("d_next_o_id", ColumnType::kInt,
                              Attr(30000, 0.0, 1, 30000)));
    WMP_CHECK_OK(t.AddIndex("d_id", true));
    WMP_CHECK_OK(t.AddForeignKey({"d_w_id", "warehouse", "w_id", 1.0}));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  }
  {
    TableDef t("customer", kW * 30000);
    AddColumnOrDie(&t, Column("c_id", ColumnType::kInt, Key(kW * 30000)));
    AddColumnOrDie(&t, Column("c_d_id", ColumnType::kInt, Attr(kW * 10, 0.2)));
    AddColumnOrDie(&t, Column("c_last", ColumnType::kString, Attr(1000, 1.0)));
    AddColumnOrDie(&t, Column("c_balance", ColumnType::kDecimal,
                              Attr(100000, 0.3, -10000, 10000)));
    AddColumnOrDie(&t, Column("c_credit", ColumnType::kString, Attr(2, 0.2)));
    WMP_CHECK_OK(t.AddIndex("c_id", true));
    WMP_CHECK_OK(t.AddIndex("c_last"));
    WMP_CHECK_OK(t.AddForeignKey({"c_d_id", "district", "d_id", 1.0}));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  }
  {
    TableDef t("orders", kW * 30000);
    AddColumnOrDie(&t, Column("o_id", ColumnType::kInt, Key(kW * 30000)));
    AddColumnOrDie(&t, Column("o_c_id", ColumnType::kInt,
                              Attr(kW * 30000, 0.6)));
    AddColumnOrDie(&t, Column("o_d_id", ColumnType::kInt, Attr(kW * 10, 0.2)));
    AddColumnOrDie(&t, Column("o_carrier_id", ColumnType::kInt,
                              Attr(10, 0.3, 1, 10)));
    WMP_CHECK_OK(t.AddIndex("o_id", true));
    WMP_CHECK_OK(t.AddIndex("o_c_id"));
    WMP_CHECK_OK(t.AddForeignKey({"o_c_id", "customer", "c_id", 1.3}));
    WMP_CHECK_OK(t.AddForeignKey({"o_d_id", "district", "d_id", 1.0}));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  }
  {
    TableDef t("new_order", kW * 9000);
    AddColumnOrDie(&t, Column("no_o_id", ColumnType::kInt, Attr(kW * 9000, 0.0)));
    AddColumnOrDie(&t, Column("no_d_id", ColumnType::kInt, Attr(kW * 10, 0.1)));
    WMP_CHECK_OK(t.AddIndex("no_o_id"));
    WMP_CHECK_OK(t.AddForeignKey({"no_o_id", "orders", "o_id", 1.0}));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  }
  {
    TableDef t("order_line", kW * 300000);
    AddColumnOrDie(&t, Column("ol_o_id", ColumnType::kInt,
                              Attr(kW * 30000, 0.1)));
    AddColumnOrDie(&t, Column("ol_d_id", ColumnType::kInt, Attr(kW * 10, 0.2)));
    AddColumnOrDie(&t, Column("ol_i_id", ColumnType::kInt, Attr(100000, 0.9)));
    AddColumnOrDie(&t, Column("ol_amount", ColumnType::kDecimal,
                              Attr(100000, 0.4, 0, 10000)));
    AddColumnOrDie(&t, Column("ol_quantity", ColumnType::kInt,
                              Attr(10, 0.2, 1, 10)));
    WMP_CHECK_OK(t.AddIndex("ol_o_id"));
    WMP_CHECK_OK(t.AddForeignKey({"ol_o_id", "orders", "o_id", 1.2}));
    WMP_CHECK_OK(t.AddForeignKey({"ol_i_id", "item", "i_id", 2.0}));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  }
  {
    TableDef t("item", 100000);
    AddColumnOrDie(&t, Column("i_id", ColumnType::kInt, Key(100000)));
    AddColumnOrDie(&t, Column("i_price", ColumnType::kDecimal,
                              Attr(10000, 0.2, 1, 100)));
    AddColumnOrDie(&t, Column("i_im_id", ColumnType::kInt, Attr(10000, 0.3)));
    WMP_CHECK_OK(t.AddIndex("i_id", true));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  }
  {
    TableDef t("stock", kW * 100000);
    AddColumnOrDie(&t, Column("s_i_id", ColumnType::kInt, Attr(100000, 0.0)));
    AddColumnOrDie(&t, Column("s_w_id", ColumnType::kInt, Attr(kW, 0.0)));
    AddColumnOrDie(&t, Column("s_quantity", ColumnType::kInt,
                              Attr(100, 0.3, 0, 100)));
    WMP_CHECK_OK(t.AddIndex("s_i_id"));
    WMP_CHECK_OK(t.AddForeignKey({"s_i_id", "item", "i_id", 1.0}));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  }
  {
    TableDef t("history", kW * 30000);
    AddColumnOrDie(&t, Column("h_c_id", ColumnType::kInt,
                              Attr(kW * 30000, 0.5)));
    AddColumnOrDie(&t, Column("h_amount", ColumnType::kDecimal,
                              Attr(10000, 0.3, 0, 5000)));
    WMP_CHECK_OK(t.AddForeignKey({"h_c_id", "customer", "c_id", 1.2}));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  }
  return cat;
}

// The 12 TPC-C read-path families. Each entry builds one query shape.
constexpr int kNumTpccFamilies = 12;

class TpccGenerator : public WorkloadGenerator {
 public:
  TpccGenerator() : name_("TPC-C"), catalog_(BuildTpccCatalog()) {}

  const std::string& name() const override { return name_; }
  const catalog::Catalog& catalog() const override { return catalog_; }
  int num_families() const override { return kNumTpccFamilies; }

  Result<sql::Query> GenerateQuery(int family_id, Rng* rng) const override {
    if (family_id < 0 || family_id >= kNumTpccFamilies) {
      return Status::InvalidArgument("bad TPC-C family id");
    }
    switch (family_id) {
      case 0:  // NewOrder: item price lookup
        return PointLookup("item", {"i_price"}, "i_id", rng);
      case 1:  // NewOrder: stock quantity
        return TwoPredLookup("stock", {"s_quantity"}, "s_i_id", "s_w_id", rng);
      case 2:  // NewOrder/Payment: customer by id
        return PointLookup("customer", {"c_balance", "c_credit"}, "c_id", rng);
      case 3: {  // Payment: customers by last name, ordered
        sql::Query q;
        q.from.push_back({"customer", ""});
        q.select_list.push_back(sql::SelectItem::Col({"", "c_id"}));
        q.select_list.push_back(sql::SelectItem::Col({"", "c_balance"}));
        WMP_ASSIGN_OR_RETURN(sql::Predicate pred,
                             SampleEqPredicate(*Table("customer"), "",
                                               "c_last", rng));
        q.where.push_back(std::move(pred));
        q.order_by.push_back({"", "c_id"});
        return q;
      }
      case 4:  // Payment: warehouse tax
        return PointLookup("warehouse", {"w_tax"}, "w_id", rng);
      case 5:  // Payment/NewOrder: district
        return PointLookup("district", {"d_next_o_id"}, "d_id", rng);
      case 6: {  // OrderStatus: latest order of a customer
        sql::Query q;
        q.from.push_back({"orders", ""});
        q.select_list.push_back(sql::SelectItem::Col({"", "o_id"}));
        q.select_list.push_back(sql::SelectItem::Col({"", "o_carrier_id"}));
        WMP_ASSIGN_OR_RETURN(
            sql::Predicate pred,
            SampleEqPredicate(*Table("orders"), "", "o_c_id", rng));
        q.where.push_back(std::move(pred));
        q.order_by.push_back({"", "o_id"});
        q.limit = 1;
        return q;
      }
      case 7: {  // OrderStatus: lines of one order
        sql::Query q;
        q.from.push_back({"order_line", ""});
        q.select_list.push_back(sql::SelectItem::Col({"", "ol_i_id"}));
        q.select_list.push_back(sql::SelectItem::Col({"", "ol_amount"}));
        WMP_ASSIGN_OR_RETURN(
            sql::Predicate pred,
            SampleEqPredicate(*Table("order_line"), "", "ol_o_id", rng));
        q.where.push_back(std::move(pred));
        return q;
      }
      case 8: {  // Delivery: order total
        sql::Query q;
        q.from.push_back({"order_line", ""});
        q.select_list.push_back(
            sql::SelectItem::Agg(sql::AggFunc::kSum, {"", "ol_amount"}));
        WMP_ASSIGN_OR_RETURN(
            sql::Predicate pred,
            SampleEqPredicate(*Table("order_line"), "", "ol_o_id", rng));
        q.where.push_back(std::move(pred));
        return q;
      }
      case 9: {  // Delivery: oldest undelivered order of a district
        sql::Query q;
        q.from.push_back({"new_order", ""});
        q.select_list.push_back(
            sql::SelectItem::Agg(sql::AggFunc::kMin, {"", "no_o_id"}));
        WMP_ASSIGN_OR_RETURN(
            sql::Predicate pred,
            SampleEqPredicate(*Table("new_order"), "", "no_d_id", rng));
        q.where.push_back(std::move(pred));
        return q;
      }
      case 10: {  // StockLevel: distinct recently-sold items low on stock
        sql::Query q;
        q.distinct = true;
        q.from.push_back({"order_line", "ol"});
        q.from.push_back({"stock", "s"});
        q.select_list.push_back(sql::SelectItem::Col({"ol", "ol_i_id"}));
        q.where.push_back(sql::Predicate::Join({"ol", "ol_i_id"}, {"s", "s_i_id"}));
        WMP_ASSIGN_OR_RETURN(
            sql::Predicate recency,
            SampleRangePredicate(*Table("order_line"), "ol", "ol_o_id",
                                 rng->UniformDouble(0.0005, 0.002), rng));
        q.where.push_back(std::move(recency));
        WMP_ASSIGN_OR_RETURN(
            sql::Predicate low,
            SampleRangePredicate(*Table("stock"), "s", "s_quantity",
                                 rng->UniformDouble(0.1, 0.2), rng));
        q.where.push_back(std::move(low));
        return q;
      }
      default: {  // 11 — Payment audit: customer payment history sum
        sql::Query q;
        q.from.push_back({"history", ""});
        q.select_list.push_back(
            sql::SelectItem::Agg(sql::AggFunc::kSum, {"", "h_amount"}));
        q.select_list.push_back(sql::SelectItem::CountStar());
        WMP_ASSIGN_OR_RETURN(
            sql::Predicate pred,
            SampleEqPredicate(*Table("history"), "", "h_c_id", rng));
        q.where.push_back(std::move(pred));
        return q;
      }
    }
  }

  std::vector<text::TemplateRule> ExpertRules() const override {
    // One fingerprint per family, written the way a DBA would: by the
    // tables touched and whether the query aggregates.
    std::vector<text::TemplateRule> rules(kNumTpccFamilies);
    auto& r = rules;
    r[0] = {"item-lookup", {"item"}, 0, 0, false, false};
    r[1] = {"stock-lookup", {"stock"}, 0, 0, false, false};
    r[2] = {"customer-by-id", {"customer"}, 0, 0, false, false};
    r[3] = {"customer-by-lastname", {"customer"}, 0, 0, false, true};
    r[4] = {"warehouse-tax", {"warehouse"}, 0, 0, false, false};
    r[5] = {"district-next-oid", {"district"}, 0, 0, false, false};
    r[6] = {"latest-order", {"orders"}, 0, 0, false, true};
    r[7] = {"order-lines", {"order_line"}, 0, 0, false, false};
    r[8] = {"order-total", {"order_line"}, 0, 0, true, false};
    r[9] = {"oldest-new-order", {"new_order"}, 0, 0, true, false};
    r[10] = {"stock-level", {"order_line", "stock"}, 1, 1, std::nullopt,
             std::nullopt};
    r[11] = {"payment-history", {"history"}, 0, 0, true, false};
    return rules;
  }

 private:
  const catalog::TableDef* Table(const std::string& name) const {
    return *catalog_.FindTable(name);
  }

  Result<sql::Query> PointLookup(const std::string& table,
                                 std::vector<std::string> cols,
                                 const std::string& key, Rng* rng) const {
    sql::Query q;
    // Intern: the AST's views must not dangle into these local strings.
    q.from.push_back({util::Intern(table), ""});
    for (const std::string& c : cols) {
      q.select_list.push_back(sql::SelectItem::Col({"", util::Intern(c)}));
    }
    WMP_ASSIGN_OR_RETURN(sql::Predicate pred,
                         SampleEqPredicate(*Table(table), "", key, rng));
    q.where.push_back(std::move(pred));
    return q;
  }

  Result<sql::Query> TwoPredLookup(const std::string& table,
                                   std::vector<std::string> cols,
                                   const std::string& key1,
                                   const std::string& key2, Rng* rng) const {
    WMP_ASSIGN_OR_RETURN(sql::Query q, PointLookup(table, cols, key1, rng));
    WMP_ASSIGN_OR_RETURN(sql::Predicate pred,
                         SampleEqPredicate(*Table(table), "", key2, rng));
    q.where.push_back(std::move(pred));
    return q;
  }

  std::string name_;
  catalog::Catalog catalog_;
};

}  // namespace

std::unique_ptr<WorkloadGenerator> MakeTpccGenerator() {
  return std::make_unique<TpccGenerator>();
}

}  // namespace wmp::workloads
