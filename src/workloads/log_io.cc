#include "workloads/log_io.h"

#include <cstdlib>
#include <fstream>

#include "plan/explain.h"
#include "plan/features.h"
#include "plan/plan_parser.h"
#include "sql/parser.h"
#include "util/strings.h"

namespace wmp::workloads {

std::string SerializeQueryLog(const std::vector<QueryRecord>& records) {
  std::string out;
  for (const QueryRecord& r : records) {
    out += "-- query: " + r.sql_text + "\n";
    out += StrFormat("-- memory_mb: %.17g\n", r.actual_memory_mb);
    if (r.dbms_estimate_mb > 0.0) {
      out += StrFormat("-- dbms_estimate_mb: %.17g\n", r.dbms_estimate_mb);
    }
    if (r.family_id >= 0) {
      out += StrFormat("-- family: %d\n", r.family_id);
    }
    out += plan::Explain(*r.plan);
    out += "\n";  // blank line terminates the record
  }
  return out;
}

Status WriteQueryLog(const std::vector<QueryRecord>& records,
                     const std::string& path) {
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].plan == nullptr) {
      return Status::InvalidArgument(
          StrFormat("record %zu has no plan", i));
    }
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << SerializeQueryLog(records);
  if (!out) return Status::IOError("short write: " + path);
  return Status::OK();
}

Result<std::vector<QueryRecord>> ParseQueryLog(const std::string& text) {
  std::vector<QueryRecord> records;
  std::vector<std::string> lines = Split(text, '\n');

  QueryRecord current;
  std::string explain_block;
  bool in_record = false;
  size_t line_no = 0;

  auto flush = [&]() -> Status {
    if (!in_record) return Status::OK();
    if (current.sql_text.empty()) {
      return Status::InvalidArgument(
          StrFormat("record ending at line %zu has no '-- query:' header",
                    line_no));
    }
    if (explain_block.empty()) {
      return Status::InvalidArgument(
          StrFormat("record ending at line %zu has no EXPLAIN block", line_no));
    }
    WMP_ASSIGN_OR_RETURN(current.query, sql::Parse(current.sql_text));
    WMP_ASSIGN_OR_RETURN(current.plan, plan::ParseExplain(explain_block));
    current.plan_features = plan::ExtractPlanFeatures(*current.plan);
    records.push_back(std::move(current));
    current = QueryRecord{};
    explain_block.clear();
    in_record = false;
    return Status::OK();
  };

  for (const std::string& raw : lines) {
    ++line_no;
    if (Trim(raw).empty()) {
      WMP_RETURN_IF_ERROR(flush());
      continue;
    }
    if (StartsWith(raw, "-- query: ")) {
      if (in_record && !current.sql_text.empty()) {
        return Status::InvalidArgument(
            StrFormat("line %zu: duplicate '-- query:' in one record",
                      line_no));
      }
      in_record = true;
      current.sql_text = raw.substr(10);
      continue;
    }
    if (StartsWith(raw, "-- memory_mb: ")) {
      current.actual_memory_mb = std::strtod(raw.c_str() + 14, nullptr);
      in_record = true;
      continue;
    }
    if (StartsWith(raw, "-- dbms_estimate_mb: ")) {
      current.dbms_estimate_mb = std::strtod(raw.c_str() + 21, nullptr);
      in_record = true;
      continue;
    }
    if (StartsWith(raw, "-- family: ")) {
      current.family_id = std::atoi(raw.c_str() + 11);
      in_record = true;
      continue;
    }
    if (StartsWith(raw, "--")) {
      return Status::InvalidArgument(
          StrFormat("line %zu: unknown log directive", line_no));
    }
    // Plan line (possibly indented).
    in_record = true;
    explain_block += raw;
    explain_block += '\n';
  }
  WMP_RETURN_IF_ERROR(flush());
  if (records.empty()) {
    return Status::InvalidArgument("query log contains no records");
  }
  // Memoize the serving-layer content hash while the rows are hot.
  FingerprintRecords(&records);
  return records;
}

Result<std::vector<QueryRecord>> LoadQueryLog(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return ParseQueryLog(text);
}

}  // namespace wmp::workloads
