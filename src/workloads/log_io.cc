#include "workloads/log_io.h"

#include <cstdlib>
#include <fstream>

#include "plan/explain.h"
#include "plan/features.h"
#include "plan/plan_parser.h"
#include "sql/parser.h"
#include "util/strings.h"

namespace wmp::workloads {

std::string SerializeQueryLog(const std::vector<QueryRecord>& records) {
  std::string out;
  for (const QueryRecord& r : records) {
    out += "-- query: " + r.sql_text + "\n";
    out += StrFormat("-- memory_mb: %.17g\n", r.actual_memory_mb);
    if (r.dbms_estimate_mb > 0.0) {
      out += StrFormat("-- dbms_estimate_mb: %.17g\n", r.dbms_estimate_mb);
    }
    if (r.family_id >= 0) {
      out += StrFormat("-- family: %d\n", r.family_id);
    }
    out += plan::Explain(*r.plan);
    out += "\n";  // blank line terminates the record
  }
  return out;
}

Status WriteQueryLog(const std::vector<QueryRecord>& records,
                     const std::string& path) {
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].plan == nullptr) {
      return Status::InvalidArgument(
          StrFormat("record %zu has no plan", i));
    }
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << SerializeQueryLog(records);
  if (!out) return Status::IOError("short write: " + path);
  return Status::OK();
}

namespace {

/// Incremental single-record parser shared by the whole-text ParseQueryLog
/// and the streaming QueryLogReader — the format's record boundary is a
/// blank line, so one line of lookahead is never needed and a record can
/// be finalized (SQL re-parsed, EXPLAIN block re-planned, features
/// recomputed) the moment its terminator arrives.
struct RecordAssembler {
  QueryRecord current;
  std::string explain_block;
  bool in_record = false;

  /// Finalizes the pending record (if any) into `*done`; `*completed`
  /// says whether one was produced.
  Status Complete(size_t line_no, QueryRecord* done, bool* completed) {
    *completed = false;
    if (!in_record) return Status::OK();
    if (current.sql_text.empty()) {
      return Status::InvalidArgument(
          StrFormat("record ending at line %zu has no '-- query:' header",
                    line_no));
    }
    if (explain_block.empty()) {
      return Status::InvalidArgument(
          StrFormat("record ending at line %zu has no EXPLAIN block",
                    line_no));
    }
    WMP_ASSIGN_OR_RETURN(current.query, sql::Parse(current.sql_text));
    WMP_ASSIGN_OR_RETURN(current.plan, plan::ParseExplain(explain_block));
    current.plan_features = plan::ExtractPlanFeatures(*current.plan);
    *done = std::move(current);
    *completed = true;
    current = QueryRecord{};
    explain_block.clear();
    in_record = false;
    return Status::OK();
  }

  /// Consumes one line; a blank line completes the pending record.
  Status Feed(const std::string& raw, size_t line_no, QueryRecord* done,
              bool* completed) {
    *completed = false;
    if (Trim(raw).empty()) return Complete(line_no, done, completed);
    if (StartsWith(raw, "-- query: ")) {
      if (in_record && !current.sql_text.empty()) {
        return Status::InvalidArgument(
            StrFormat("line %zu: duplicate '-- query:' in one record",
                      line_no));
      }
      in_record = true;
      current.sql_text = raw.substr(10);
      return Status::OK();
    }
    if (StartsWith(raw, "-- memory_mb: ")) {
      current.actual_memory_mb = std::strtod(raw.c_str() + 14, nullptr);
      in_record = true;
      return Status::OK();
    }
    if (StartsWith(raw, "-- dbms_estimate_mb: ")) {
      current.dbms_estimate_mb = std::strtod(raw.c_str() + 21, nullptr);
      in_record = true;
      return Status::OK();
    }
    if (StartsWith(raw, "-- family: ")) {
      current.family_id = std::atoi(raw.c_str() + 11);
      in_record = true;
      return Status::OK();
    }
    if (StartsWith(raw, "--")) {
      return Status::InvalidArgument(
          StrFormat("line %zu: unknown log directive", line_no));
    }
    // Plan line (possibly indented).
    in_record = true;
    explain_block += raw;
    explain_block += '\n';
    return Status::OK();
  }
};

}  // namespace

Result<std::vector<QueryRecord>> ParseQueryLog(const std::string& text) {
  std::vector<QueryRecord> records;
  std::vector<std::string> lines = Split(text, '\n');
  RecordAssembler assembler;
  size_t line_no = 0;
  QueryRecord done;
  bool completed = false;
  for (const std::string& raw : lines) {
    ++line_no;
    WMP_RETURN_IF_ERROR(assembler.Feed(raw, line_no, &done, &completed));
    if (completed) records.push_back(std::move(done));
  }
  WMP_RETURN_IF_ERROR(assembler.Complete(line_no, &done, &completed));
  if (completed) records.push_back(std::move(done));
  if (records.empty()) {
    return Status::InvalidArgument("query log contains no records");
  }
  // Memoize the serving-layer content hash while the rows are hot.
  FingerprintRecords(&records);
  return records;
}

Result<std::vector<QueryRecord>> LoadQueryLog(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return ParseQueryLog(text);
}

Result<QueryLogReader> QueryLogReader::Open(const std::string& path) {
  QueryLogReader reader;
  reader.in_.open(path);
  if (!reader.in_) return Status::IOError("cannot open for read: " + path);
  return reader;
}

Result<size_t> QueryLogReader::ReadChunk(size_t max_records,
                                         std::vector<QueryRecord>* out) {
  if (exhausted_ || max_records == 0) return static_cast<size_t>(0);
  // ReadChunk always leaves the stream at a record boundary (it returns
  // only after a record completes or at end of log), so the assembler
  // carries no state between chunks.
  RecordAssembler assembler;
  const size_t base = out->size();
  size_t appended = 0;
  QueryRecord done;
  bool completed = false;
  std::string raw;
  while (appended < max_records && std::getline(in_, raw)) {
    ++line_no_;
    WMP_RETURN_IF_ERROR(assembler.Feed(raw, line_no_, &done, &completed));
    if (completed) {
      out->push_back(std::move(done));
      ++appended;
    }
  }
  if (appended < max_records) {
    // getline hit end of file; flush a final unterminated record.
    WMP_RETURN_IF_ERROR(assembler.Complete(line_no_, &done, &completed));
    if (completed) {
      out->push_back(std::move(done));
      ++appended;
    }
    exhausted_ = true;
  }
  records_read_ += appended;
  // Fingerprint just the fresh rows (FingerprintRecords over the whole
  // vector would be correct — it skips memoized rows — but would rescan
  // the caller's carry-over on every chunk).
  for (size_t i = base; i < out->size(); ++i) {
    QueryRecord& r = (*out)[i];
    if (r.content_fingerprint == 0) {
      r.content_fingerprint = ContentFingerprint(r);
    }
  }
  return appended;
}

}  // namespace wmp::workloads
