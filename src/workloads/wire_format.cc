#include "workloads/wire_format.h"

#include "util/strings.h"

namespace wmp::workloads {

namespace {

constexpr uint32_t kRecordsMagic = 0x57524543;  // "WREC"
constexpr uint32_t kRecordsVersion = 1;

}  // namespace

void SerializeRecordsWire(const std::vector<QueryRecord>& records,
                          BinaryWriter* writer) {
  writer->WriteU32(kRecordsMagic);
  writer->WriteU32(kRecordsVersion);
  writer->WriteU64(records.size());
  for (const QueryRecord& r : records) {
    writer->WriteString(r.sql_text);
    writer->WriteDoubleVec(r.plan_features);
    writer->WriteDouble(r.actual_memory_mb);
    writer->WriteDouble(r.dbms_estimate_mb);
    writer->WriteI64(r.family_id);
    writer->WriteU64(r.content_fingerprint != 0
                         ? r.content_fingerprint
                         : ContentFingerprint(r));
  }
}

Result<std::vector<QueryRecord>> DeserializeRecordsWire(BinaryReader* reader) {
  WMP_ASSIGN_OR_RETURN(const uint32_t magic, reader->ReadU32());
  if (magic != kRecordsMagic) {
    return Status::InvalidArgument(
        StrFormat("bad record-batch magic 0x%08x", magic));
  }
  WMP_ASSIGN_OR_RETURN(const uint32_t version, reader->ReadU32());
  if (version != kRecordsVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported record-batch version %u", version));
  }
  WMP_ASSIGN_OR_RETURN(const uint64_t n, reader->ReadU64());
  // Sanity bound before reserving: each record costs at least the four
  // fixed-width fields on the wire, so a count the remaining bytes cannot
  // possibly hold is a corrupt or adversarial header, not a short read.
  constexpr uint64_t kMinWireBytesPerRecord = 4 + 8 + 8 + 8 + 8 + 8;
  if (n > reader->remaining() / kMinWireBytesPerRecord + 1) {
    return Status::InvalidArgument(
        StrFormat("record-batch count %llu exceeds what %zu payload bytes "
                  "can hold",
                  static_cast<unsigned long long>(n), reader->remaining()));
  }
  std::vector<QueryRecord> records(static_cast<size_t>(n));
  for (QueryRecord& r : records) {
    WMP_ASSIGN_OR_RETURN(r.sql_text, reader->ReadString());
    WMP_ASSIGN_OR_RETURN(r.plan_features, reader->ReadDoubleVec());
    WMP_ASSIGN_OR_RETURN(r.actual_memory_mb, reader->ReadDouble());
    WMP_ASSIGN_OR_RETURN(r.dbms_estimate_mb, reader->ReadDouble());
    WMP_ASSIGN_OR_RETURN(const int64_t family, reader->ReadI64());
    r.family_id = static_cast<int>(family);
    WMP_ASSIGN_OR_RETURN(const uint64_t carried, reader->ReadU64());
    // The fingerprint keys SHARED server-side caches, so it is part of
    // the trust boundary: recompute from the carried content (HashBytes
    // is platform-stable, so the honest value matches bitwise and cache
    // hits survive the hop) and reject a mismatch — a client shipping a
    // wrong fingerprint could otherwise poison other tenants' cache
    // entries or abort nothing more than its own request.
    r.content_fingerprint = ContentFingerprint(r);
    if (carried != 0 && carried != r.content_fingerprint) {
      return Status::InvalidArgument(
          "record carries a fingerprint that does not match its content");
    }
  }
  return records;
}

}  // namespace wmp::workloads
