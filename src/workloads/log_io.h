#ifndef WMP_WORKLOADS_LOG_IO_H_
#define WMP_WORKLOADS_LOG_IO_H_

/// \file log_io.h
/// Text serialization of query logs — the deployment-grade TR1 ingestion
/// path. A production site dumps its query log as SQL + EXPLAIN + observed
/// peak memory; LearnedWMP trains from that dump without access to the
/// DBMS. The format is line-oriented and append-friendly:
///
///   -- query: SELECT ...
///   -- memory_mb: 38.25
///   -- dbms_estimate_mb: 12.5        (optional)
///   -- family: 7                     (optional)
///   RETURN in=... out=... width=...
///     SORT ...
///   <blank line terminates the record>

#include <string>
#include <vector>

#include "util/status.h"
#include "workloads/query_record.h"

namespace wmp::workloads {

/// \brief Writes `records` (SQL text, plan, labels) to `path` in the query
/// log format. Fails if a record lacks a plan.
Status WriteQueryLog(const std::vector<QueryRecord>& records,
                     const std::string& path);

/// \brief Parses a query log produced by WriteQueryLog (or by an external
/// dump tool emitting the same format).
///
/// Each record's SQL is re-parsed into an AST and its EXPLAIN block into a
/// plan tree; plan features are recomputed from the parsed plan. Records
/// missing the optional fields get `dbms_estimate_mb = 0` and
/// `family_id = -1`. Malformed records fail the whole load with a
/// line-annotated error.
Result<std::vector<QueryRecord>> LoadQueryLog(const std::string& path);

/// In-memory variants (for tests and piping).
std::string SerializeQueryLog(const std::vector<QueryRecord>& records);
Result<std::vector<QueryRecord>> ParseQueryLog(const std::string& text);

}  // namespace wmp::workloads

#endif  // WMP_WORKLOADS_LOG_IO_H_
