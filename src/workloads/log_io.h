#ifndef WMP_WORKLOADS_LOG_IO_H_
#define WMP_WORKLOADS_LOG_IO_H_

/// \file log_io.h
/// Text serialization of query logs — the deployment-grade TR1 ingestion
/// path. A production site dumps its query log as SQL + EXPLAIN + observed
/// peak memory; LearnedWMP trains from that dump without access to the
/// DBMS. The format is line-oriented and append-friendly:
///
///   -- query: SELECT ...
///   -- memory_mb: 38.25
///   -- dbms_estimate_mb: 12.5        (optional)
///   -- family: 7                     (optional)
///   RETURN in=... out=... width=...
///     SORT ...
///   <blank line terminates the record>

#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"
#include "workloads/query_record.h"

namespace wmp::workloads {

/// \brief Writes `records` (SQL text, plan, labels) to `path` in the query
/// log format. Fails if a record lacks a plan.
Status WriteQueryLog(const std::vector<QueryRecord>& records,
                     const std::string& path);

/// \brief Parses a query log produced by WriteQueryLog (or by an external
/// dump tool emitting the same format).
///
/// Each record's SQL is re-parsed into an AST and its EXPLAIN block into a
/// plan tree; plan features are recomputed from the parsed plan. Records
/// missing the optional fields get `dbms_estimate_mb = 0` and
/// `family_id = -1`. Malformed records fail the whole load with a
/// line-annotated error.
Result<std::vector<QueryRecord>> LoadQueryLog(const std::string& path);

/// In-memory variants (for tests and piping).
std::string SerializeQueryLog(const std::vector<QueryRecord>& records);
Result<std::vector<QueryRecord>> ParseQueryLog(const std::string& text);

/// \brief Streaming reader of the query-log format.
///
/// `LoadQueryLog` slurps the whole file — fine for experiments, but a
/// production site's log is arbitrarily large while scoring only ever
/// needs one workload's worth of records at a time. The reader parses
/// records incrementally (the format is line-oriented and
/// blank-line-delimited, so record boundaries need no lookahead) and
/// hands them out in caller-sized chunks; `wmpctl score` streams a log
/// through the scorer this way with a resident set capped at one chunk.
///
/// Chunks are fingerprinted on the way out (same as LoadQueryLog), so
/// serving-layer cache keys are identical whether a record arrived via a
/// chunk or a whole-file load.
class QueryLogReader {
 public:
  /// Opens `path`; fails with IOError when unreadable.
  static Result<QueryLogReader> Open(const std::string& path);

  /// Parses up to `max_records` further records into `*out` (appended;
  /// existing elements untouched). Returns the number appended — 0 means
  /// clean end of log. Malformed records fail with a line-annotated error,
  /// like ParseQueryLog.
  Result<size_t> ReadChunk(size_t max_records, std::vector<QueryRecord>* out);

  /// True once the last record has been returned.
  bool exhausted() const { return exhausted_; }
  /// Records handed out so far.
  size_t records_read() const { return records_read_; }

 private:
  QueryLogReader() = default;

  std::ifstream in_;
  size_t line_no_ = 0;
  size_t records_read_ = 0;
  bool exhausted_ = false;
};

}  // namespace wmp::workloads

#endif  // WMP_WORKLOADS_LOG_IO_H_
