#ifndef WMP_WORKLOADS_QUERY_RECORD_H_
#define WMP_WORKLOADS_QUERY_RECORD_H_

/// \file query_record.h
/// One fully-processed historical query: the unit of the training corpus
/// `Q_train` (paper step TR1). A record carries everything every
/// downstream component needs — SQL text for the text-based template
/// learners, the plan + features for the plan-based learner and SingleWMP,
/// the simulated actual memory as the label, and the DBMS heuristic
/// estimate as the state-of-practice baseline.

#include <memory>
#include <string>
#include <vector>

#include "plan/plan_node.h"
#include "sql/ast.h"

namespace wmp::workloads {

/// \brief A processed query from the (simulated) query log.
struct QueryRecord {
  std::string sql_text;
  sql::Query query;
  /// Owning tree handle: the plan's nodes live in the tree's arena.
  plan::PlanTree plan;
  /// TR2 features: per-operator (count, total estimated cardinality).
  std::vector<double> plan_features;
  /// Ground-truth peak working memory (MB) from the execution simulator.
  double actual_memory_mb = 0.0;
  /// The optimizer's heuristic memory estimate (MB): SingleWMP-DBMS.
  double dbms_estimate_mb = 0.0;
  /// Generator family the query was instantiated from (for rule-based
  /// templates and diagnostics; the learned pipeline never reads it).
  int family_id = -1;
  /// Memoized ContentFingerprint() (0 = not yet computed). The dataset
  /// builder and log loader fill it once so the serving layer's cache
  /// keys — core::WorkloadFingerprint (the histogram-cache key) and the
  /// per-query key of engine::TemplateIdCache — combine precomputed words
  /// instead of re-hashing query text per submission. With the per-query
  /// template cache this matters per member query per flush, not just
  /// per workload.
  uint64_t content_fingerprint = 0;

  QueryRecord() = default;
  QueryRecord(QueryRecord&&) = default;
  QueryRecord& operator=(QueryRecord&&) = default;
  QueryRecord(const QueryRecord&) = delete;
  QueryRecord& operator=(const QueryRecord&) = delete;
};

/// One-line diagnostic summary ("family=12 mem=38.2MB est=12.1MB ops=9").
std::string SummarizeRecord(const QueryRecord& record);

/// Canonical 64-bit hash of the record's template-relevant content: SQL
/// text, plan features (by bit pattern), and generator family — everything
/// any template method reads. Ignores the memoized field; stable within a
/// process, which is all a cache key needs.
uint64_t ContentFingerprint(const QueryRecord& record);

/// Fills `content_fingerprint` for every record that does not have one
/// yet (parallel over rows). Idempotent, so appending a fresh chunk to an
/// already-fingerprinted log re-hashes only the new rows.
void FingerprintRecords(std::vector<QueryRecord>* records);

}  // namespace wmp::workloads

#endif  // WMP_WORKLOADS_QUERY_RECORD_H_
