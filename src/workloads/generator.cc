#include "workloads/generator.h"

#include <algorithm>
#include <cmath>

#include "plan/cardinality.h"
#include "util/interner.h"

namespace wmp::workloads {

int WorkloadGenerator::SampleFamily(Rng* rng) const {
  return static_cast<int>(rng->UniformInt(0, num_families() - 1));
}

namespace {

// Samples a frequency rank from Zipf(ndv, theta) by inverting the
// closed-form CDF with binary search (O(log ndv), no per-column tables).
uint64_t SampleZipfRank(uint64_t ndv, double theta, Rng* rng) {
  if (ndv <= 1) return 1;
  const double u = rng->UniformDouble();
  uint64_t lo = 1, hi = ndv;
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (plan::ZipfCdfApprox(static_cast<double>(mid),
                            static_cast<double>(ndv), theta) < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// True selectivity (row fraction) of rank `k` under Zipf(ndv, theta).
double RankSelectivity(uint64_t k, uint64_t ndv, double theta) {
  const double n = static_cast<double>(ndv);
  return std::max(plan::ZipfCdfApprox(static_cast<double>(k), n, theta) -
                      plan::ZipfCdfApprox(static_cast<double>(k) - 1.0, n, theta),
                  1e-12);
}

// Maps a frequency rank to a literal value. Values are laid out so hot
// ranks sit at the low end of the [min, max] domain (the assumption the
// true-cardinality model's range math uses).
double RankToValue(uint64_t rank, const catalog::ColumnStats& stats) {
  const double ndv = std::max<double>(static_cast<double>(stats.ndv), 1.0);
  const double frac = (static_cast<double>(rank) - 0.5) / ndv;
  return stats.min_value + frac * (stats.max_value - stats.min_value);
}

}  // namespace

Result<sql::Predicate> SampleEqPredicate(const catalog::TableDef& table,
                                         std::string_view alias,
                                         std::string_view column, Rng* rng) {
  WMP_ASSIGN_OR_RETURN(const catalog::Column* col, table.FindColumn(column));
  alias = util::Intern(alias);
  column = util::Intern(column);
  const catalog::ColumnStats& stats = col->stats();
  const uint64_t rank = SampleZipfRank(stats.ndv, stats.zipf_skew, rng);
  sql::Predicate pred = sql::Predicate::Comparison(
      {alias, column}, sql::CompareOp::kEq,
      {sql::Literal::Number(RankToValue(rank, stats))});
  pred.true_selectivity = RankSelectivity(rank, stats.ndv, stats.zipf_skew);
  return pred;
}

Result<sql::Predicate> SampleInPredicate(const catalog::TableDef& table,
                                         std::string_view alias,
                                         std::string_view column,
                                         int num_values, Rng* rng) {
  WMP_ASSIGN_OR_RETURN(const catalog::Column* col, table.FindColumn(column));
  alias = util::Intern(alias);
  column = util::Intern(column);
  if (num_values < 1) {
    return Status::InvalidArgument("IN predicate needs >= 1 value");
  }
  const catalog::ColumnStats& stats = col->stats();
  std::vector<sql::Literal> values;
  std::vector<uint64_t> ranks;
  double sel = 0.0;
  for (int i = 0; i < num_values; ++i) {
    uint64_t rank = SampleZipfRank(stats.ndv, stats.zipf_skew, rng);
    if (std::find(ranks.begin(), ranks.end(), rank) != ranks.end()) continue;
    ranks.push_back(rank);
    values.push_back(sql::Literal::Number(RankToValue(rank, stats)));
    sel += RankSelectivity(rank, stats.ndv, stats.zipf_skew);
  }
  sql::Predicate pred = sql::Predicate::Comparison(
      {alias, column}, sql::CompareOp::kIn, std::move(values));
  pred.true_selectivity = std::min(sel, 1.0);
  return pred;
}

Result<sql::Predicate> SampleRangePredicate(const catalog::TableDef& table,
                                            std::string_view alias,
                                            std::string_view column,
                                            double domain_fraction, Rng* rng) {
  WMP_ASSIGN_OR_RETURN(const catalog::Column* col, table.FindColumn(column));
  alias = util::Intern(alias);
  column = util::Intern(column);
  const catalog::ColumnStats& stats = col->stats();
  const double span = stats.max_value - stats.min_value;
  domain_fraction = std::clamp(domain_fraction, 0.001, 1.0);
  switch (rng->UniformInt(0, 2)) {
    case 0: {  // col <= cutoff covering `fraction` of the low end
      const double cutoff = stats.min_value + domain_fraction * span;
      return sql::Predicate::Comparison({alias, column}, sql::CompareOp::kLe,
                                        {sql::Literal::Number(cutoff)});
    }
    case 1: {  // col >= cutoff covering `fraction` of the high end
      const double cutoff = stats.max_value - domain_fraction * span;
      return sql::Predicate::Comparison({alias, column}, sql::CompareOp::kGe,
                                        {sql::Literal::Number(cutoff)});
    }
    default: {  // BETWEEN a band of width `fraction` at a random offset
      const double start =
          stats.min_value +
          rng->UniformDouble(0.0, 1.0 - domain_fraction) * span;
      return sql::Predicate::Comparison(
          {alias, column}, sql::CompareOp::kBetween,
          {sql::Literal::Number(start),
           sql::Literal::Number(start + domain_fraction * span)});
    }
  }
}

}  // namespace wmp::workloads
