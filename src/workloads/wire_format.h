#ifndef WMP_WORKLOADS_WIRE_FORMAT_H_
#define WMP_WORKLOADS_WIRE_FORMAT_H_

/// \file wire_format.h
/// Binary (de)serialization of QueryRecord batches for the wire protocol.
///
/// A score request ships the *scoring-relevant* content of each record —
/// SQL text, plan features, labels, generator family, and the memoized
/// `content_fingerprint` — through util/io's length-prefixed primitives.
/// The parsed AST and plan tree are deliberately NOT carried: the serving
/// path never reads them (TemplateModel featurizes plan-feature methods
/// from `plan_features` and text methods from `sql_text`), and they are
/// exactly the expensive-to-reparse half of a record.
///
/// Fingerprints ride along so the server's cache keys are *bitwise* the
/// client's: `ContentFingerprint` hashes SQL bytes, plan-feature bit
/// patterns, and the family id — all of which this format round-trips
/// exactly — so a workload that hit the server's template-id or histogram
/// cache when submitted in-process hits the same entries when submitted
/// over the wire. Because those keys index caches SHARED across clients,
/// deserialization recomputes the hash from the carried content (the
/// honest value matches bitwise — HashBytes is platform-stable) and
/// rejects a record whose carried fingerprint disagrees, so one client
/// cannot poison another's cache entries.

#include <vector>

#include "util/io.h"
#include "workloads/query_record.h"

namespace wmp::workloads {

/// Appends `records` to `writer` (format magic + version + row count +
/// per-record fields). Records need not carry plans or ASTs.
void SerializeRecordsWire(const std::vector<QueryRecord>& records,
                          BinaryWriter* writer);

/// Parses a record batch written by SerializeRecordsWire. The returned
/// records have null `plan` and a default `query` AST; every
/// `content_fingerprint` is recomputed from the carried content, and a
/// record whose carried (nonzero) fingerprint disagrees is rejected.
Result<std::vector<QueryRecord>> DeserializeRecordsWire(BinaryReader* reader);

}  // namespace wmp::workloads

#endif  // WMP_WORKLOADS_WIRE_FORMAT_H_
