#include "workloads/dataset.h"

#include "plan/features.h"
#include "sql/printer.h"
#include "util/parallel.h"

namespace wmp::workloads {

const char* BenchmarkName(Benchmark b) {
  switch (b) {
    case Benchmark::kTpcds:
      return "TPC-DS";
    case Benchmark::kJob:
      return "JOB";
    case Benchmark::kTpcc:
      return "TPC-C";
  }
  return "?";
}

const std::vector<Benchmark>& AllBenchmarks() {
  static const std::vector<Benchmark> kAll = {
      Benchmark::kTpcds, Benchmark::kJob, Benchmark::kTpcc};
  return kAll;
}

size_t PaperQueryCount(Benchmark b) {
  switch (b) {
    case Benchmark::kTpcds:
      return 93000;
    case Benchmark::kJob:
      return 2300;
    case Benchmark::kTpcc:
      return 3958;
  }
  return 0;
}

std::unique_ptr<WorkloadGenerator> CreateGenerator(Benchmark b) {
  switch (b) {
    case Benchmark::kTpcds:
      return MakeTpcdsGenerator();
    case Benchmark::kJob:
      return MakeJobGenerator();
    case Benchmark::kTpcc:
      return MakeTpccGenerator();
  }
  return nullptr;
}

Result<Dataset> BuildDataset(Benchmark benchmark,
                             const DatasetOptions& options) {
  Dataset dataset;
  dataset.generator = CreateGenerator(benchmark);
  if (dataset.generator == nullptr) {
    return Status::InvalidArgument("unknown benchmark");
  }
  dataset.benchmark_name = BenchmarkName(benchmark);
  const size_t n =
      options.num_queries > 0 ? options.num_queries : PaperQueryCount(benchmark);

  plan::Planner planner(&dataset.generator->catalog(), options.planner);
  engine::SimulatorOptions sim_options = options.simulator;
  sim_options.seed ^= options.seed;
  engine::Simulator simulator(sim_options);

  // Phase 1 (serial — the RNG draw order defines the dataset): sample the
  // family, generate the query, and plan it.
  Rng rng(options.seed);
  dataset.records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    QueryRecord record;
    record.family_id = dataset.generator->SampleFamily(&rng);
    WMP_ASSIGN_OR_RETURN(
        record.query, dataset.generator->GenerateQuery(record.family_id, &rng));
    record.sql_text = sql::Print(record.query);
    WMP_ASSIGN_OR_RETURN(record.plan, planner.CreatePlan(record.query));
    dataset.records.push_back(std::move(record));
  }

  // Phase 2 (parallel — pure per-plan analyses): TR2 featurization, the
  // DBMS heuristic estimate, and the serving-layer content fingerprint run
  // on the worker pool.
  util::ParallelFor(n, 32, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      QueryRecord& record = dataset.records[i];
      record.plan_features = plan::ExtractPlanFeatures(*record.plan);
      record.dbms_estimate_mb =
          engine::DbmsEstimateMemoryMb(*record.plan, options.dbms);
      record.content_fingerprint = ContentFingerprint(record);
    }
  });

  // Phase 3 (parallel analysis + serial noise stream inside the batch
  // call): simulated memory labels, bitwise identical to the per-query
  // loop.
  std::vector<const plan::PlanNode*> plans(n);
  for (size_t i = 0; i < n; ++i) plans[i] = dataset.records[i].plan.get();
  const std::vector<double> labels = simulator.SimulatePeakMemoryMbBatch(plans);
  for (size_t i = 0; i < n; ++i) {
    dataset.records[i].actual_memory_mb = labels[i];
  }
  return dataset;
}

}  // namespace wmp::workloads
