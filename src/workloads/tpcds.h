#ifndef WMP_WORKLOADS_TPCDS_H_
#define WMP_WORKLOADS_TPCDS_H_

/// \file tpcds.h
/// TPC-DS-like analytic benchmark generator: a retail star schema
/// (4 fact tables, 11 dimensions, scale ~SF10) and 99 query families —
/// multi-way star joins with selective dimension predicates, aggregation,
/// and top-k sorts — matching the 99 seed templates of the real benchmark.

#include <memory>

#include "workloads/generator.h"

namespace wmp::workloads {

/// Creates the TPC-DS-like generator.
std::unique_ptr<WorkloadGenerator> MakeTpcdsGenerator();

}  // namespace wmp::workloads

#endif  // WMP_WORKLOADS_TPCDS_H_
