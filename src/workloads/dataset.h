#ifndef WMP_WORKLOADS_DATASET_H_
#define WMP_WORKLOADS_DATASET_H_

/// \file dataset.h
/// End-to-end dataset construction: generate queries, plan them, simulate
/// their actual peak memory, and record the DBMS heuristic estimates —
/// i.e., fabricate the query-log dump that the paper's training pipeline
/// consumes in step TR1.

#include <memory>
#include <string>
#include <vector>

#include "engine/dbms_estimator.h"
#include "engine/simulator.h"
#include "plan/planner.h"
#include "workloads/generator.h"
#include "workloads/job.h"
#include "workloads/query_record.h"
#include "workloads/tpcc.h"
#include "workloads/tpcds.h"

namespace wmp::workloads {

/// The three evaluation benchmarks of the paper (§IV "Datasets").
enum class Benchmark { kTpcds, kJob, kTpcc };

/// Paper-style benchmark name.
const char* BenchmarkName(Benchmark b);

/// All benchmarks in paper order.
const std::vector<Benchmark>& AllBenchmarks();

/// Query counts used in the paper: 93,000 / 2,300 / 3,958.
size_t PaperQueryCount(Benchmark b);

/// Factory for the benchmark's generator.
std::unique_ptr<WorkloadGenerator> CreateGenerator(Benchmark b);

/// Dataset construction knobs.
struct DatasetOptions {
  size_t num_queries = 0;  ///< 0 = PaperQueryCount(benchmark)
  uint64_t seed = 42;
  engine::SimulatorOptions simulator;
  engine::DbmsEstimatorOptions dbms;
  plan::PlannerOptions planner;
};

/// \brief A materialized query log for one benchmark.
struct Dataset {
  std::string benchmark_name;
  std::unique_ptr<WorkloadGenerator> generator;  ///< owns the catalog
  std::vector<QueryRecord> records;

  Dataset() = default;
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;
};

/// \brief Builds the full dataset for `benchmark`.
Result<Dataset> BuildDataset(Benchmark benchmark,
                             const DatasetOptions& options = {});

}  // namespace wmp::workloads

#endif  // WMP_WORKLOADS_DATASET_H_
