#include "workloads/tpcds.h"

#include <algorithm>
#include <cassert>

#include "util/interner.h"
#include "util/strings.h"

namespace wmp::workloads {

namespace {

using catalog::Column;
using catalog::ColumnStats;
using catalog::ColumnType;
using catalog::TableDef;

// A dimension reachable from a fact table: the fact-side FK, the dimension
// PK, predicate columns with their typical covered domain fraction, and a
// grouping column.
struct DimSpec {
  const char* table;
  const char* fk;  // column on the fact
  const char* pk;  // column on the dimension
  std::vector<std::pair<const char*, double>> pred_cols;
  const char* group_col;
};

struct FactSpec {
  const char* table;
  const char* alias;
  std::vector<const char*> measures;
  std::vector<const char*> pred_measures;  // range-predicate targets
  std::vector<DimSpec> dims;
};

// One of the 99 query families.
struct FamilyRecipe {
  int fact = 0;
  std::vector<int> dims;     // indices into FactSpec::dims
  int dim_preds = 1;         // how many dimensions carry a local predicate
  bool fact_pred = false;    // range predicate on a fact measure
  int num_aggs = 1;
  bool group = true;
  bool order = false;
  int limit = -1;
};

void AddColumnOrDie(TableDef* t, Column c) {
  const Status st = t->AddColumn(std::move(c));
  WMP_CHECK_OK(st);
}

ColumnStats Key(uint64_t ndv) {
  return {.ndv = ndv, .min_value = 1, .max_value = static_cast<double>(ndv)};
}

ColumnStats Attr(uint64_t ndv, double skew, double lo = 1, double hi = -1) {
  return {.ndv = ndv,
          .min_value = lo,
          .max_value = hi < 0 ? static_cast<double>(ndv) : hi,
          .zipf_skew = skew};
}

catalog::Catalog BuildTpcdsCatalog() {
  catalog::Catalog cat;

  // --- dimensions -----------------------------------------------------------
  {
    TableDef t("date_dim", 73049);
    AddColumnOrDie(&t, Column("d_date_sk", ColumnType::kInt, Key(73049)));
    AddColumnOrDie(&t, Column("d_year", ColumnType::kInt,
                              Attr(25, 0.3, 1990, 2014)));
    AddColumnOrDie(&t, Column("d_moy", ColumnType::kInt, Attr(12, 0.0, 1, 12)));
    AddColumnOrDie(&t, Column("d_qoy", ColumnType::kInt, Attr(4, 0.0, 1, 4)));
    AddColumnOrDie(&t, Column("d_dow", ColumnType::kInt, Attr(7, 0.0, 1, 7)));
    WMP_CHECK_OK(t.AddIndex("d_date_sk", true));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  }
  {
    TableDef t("item", 102000);
    AddColumnOrDie(&t, Column("i_item_sk", ColumnType::kInt, Key(102000)));
    AddColumnOrDie(&t, Column("i_category", ColumnType::kString, Attr(10, 0.4)));
    AddColumnOrDie(&t, Column("i_class", ColumnType::kString, Attr(100, 0.5)));
    AddColumnOrDie(&t, Column("i_brand", ColumnType::kString, Attr(1000, 0.7)));
    AddColumnOrDie(&t, Column("i_current_price", ColumnType::kDecimal,
                              Attr(1000, 0.2, 0, 300)));
    WMP_CHECK_OK(t.AddIndex("i_item_sk", true));
    WMP_CHECK_OK(t.AddCorrelation("i_category", "i_class", 0.85));
    WMP_CHECK_OK(t.AddCorrelation("i_class", "i_brand", 0.7));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  }
  {
    TableDef t("customer", 500000);
    AddColumnOrDie(&t, Column("c_customer_sk", ColumnType::kInt, Key(500000)));
    AddColumnOrDie(&t, Column("c_birth_year", ColumnType::kInt,
                              Attr(70, 0.3, 1930, 2000)));
    AddColumnOrDie(&t, Column("c_birth_country", ColumnType::kString,
                              Attr(200, 0.8)));
    AddColumnOrDie(&t, Column("c_preferred", ColumnType::kInt, Attr(2, 0.0, 0, 1)));
    WMP_CHECK_OK(t.AddIndex("c_customer_sk", true));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  }
  {
    TableDef t("customer_address", 250000);
    AddColumnOrDie(&t, Column("ca_address_sk", ColumnType::kInt, Key(250000)));
    AddColumnOrDie(&t, Column("ca_state", ColumnType::kString, Attr(51, 0.8)));
    AddColumnOrDie(&t, Column("ca_city", ColumnType::kString, Attr(8000, 0.9)));
    WMP_CHECK_OK(t.AddIndex("ca_address_sk", true));
    WMP_CHECK_OK(t.AddCorrelation("ca_state", "ca_city", 0.9));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  }
  {
    TableDef t("customer_demographics", 1920800);
    AddColumnOrDie(&t, Column("cd_demo_sk", ColumnType::kInt, Key(1920800)));
    AddColumnOrDie(&t, Column("cd_gender", ColumnType::kString, Attr(2, 0.0)));
    AddColumnOrDie(&t, Column("cd_education", ColumnType::kString, Attr(7, 0.3)));
    AddColumnOrDie(&t, Column("cd_marital", ColumnType::kString, Attr(5, 0.2)));
    WMP_CHECK_OK(t.AddIndex("cd_demo_sk", true));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  }
  {
    TableDef t("household_demographics", 7200);
    AddColumnOrDie(&t, Column("hd_demo_sk", ColumnType::kInt, Key(7200)));
    AddColumnOrDie(&t, Column("hd_income_band", ColumnType::kInt,
                              Attr(20, 0.4, 1, 20)));
    AddColumnOrDie(&t, Column("hd_dep_count", ColumnType::kInt, Attr(10, 0.3, 0, 9)));
    WMP_CHECK_OK(t.AddIndex("hd_demo_sk", true));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  }
  {
    TableDef t("store", 102);
    AddColumnOrDie(&t, Column("s_store_sk", ColumnType::kInt, Key(102)));
    AddColumnOrDie(&t, Column("s_state", ColumnType::kString, Attr(20, 0.9)));
    AddColumnOrDie(&t, Column("s_market", ColumnType::kInt, Attr(10, 0.4, 1, 10)));
    WMP_CHECK_OK(t.AddIndex("s_store_sk", true));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  }
  {
    TableDef t("promotion", 500);
    AddColumnOrDie(&t, Column("p_promo_sk", ColumnType::kInt, Key(500)));
    AddColumnOrDie(&t, Column("p_channel", ColumnType::kString, Attr(4, 0.5)));
    WMP_CHECK_OK(t.AddIndex("p_promo_sk", true));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  }
  {
    TableDef t("warehouse", 15);
    AddColumnOrDie(&t, Column("w_warehouse_sk", ColumnType::kInt, Key(15)));
    AddColumnOrDie(&t, Column("w_state", ColumnType::kString, Attr(15, 0.3)));
    WMP_CHECK_OK(t.AddIndex("w_warehouse_sk", true));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  }
  {
    TableDef t("time_dim", 86400);
    AddColumnOrDie(&t, Column("t_time_sk", ColumnType::kInt, Key(86400)));
    AddColumnOrDie(&t, Column("t_hour", ColumnType::kInt, Attr(24, 0.2, 0, 23)));
    WMP_CHECK_OK(t.AddIndex("t_time_sk", true));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  }
  {
    TableDef t("ship_mode", 20);
    AddColumnOrDie(&t, Column("sm_ship_mode_sk", ColumnType::kInt, Key(20)));
    AddColumnOrDie(&t, Column("sm_type", ColumnType::kString, Attr(6, 0.3)));
    WMP_CHECK_OK(t.AddIndex("sm_ship_mode_sk", true));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  }

  // --- facts ----------------------------------------------------------------
  auto add_fact_fk = [](TableDef* t, const char* col, uint64_t ndv,
                        double skew, const char* ref_table,
                        const char* ref_col, double fanout_skew) {
    AddColumnOrDie(t, Column(col, ColumnType::kInt, Attr(ndv, skew)));
    WMP_CHECK_OK(t->AddForeignKey({col, ref_table, ref_col, fanout_skew}));
  };
  {
    TableDef t("store_sales", 2880000);
    add_fact_fk(&t, "ss_sold_date_sk", 1823, 0.3, "date_dim", "d_date_sk", 1.4);
    add_fact_fk(&t, "ss_item_sk", 102000, 0.9, "item", "i_item_sk", 2.2);
    add_fact_fk(&t, "ss_customer_sk", 500000, 0.8, "customer",
                "c_customer_sk", 1.8);
    add_fact_fk(&t, "ss_store_sk", 102, 0.5, "store", "s_store_sk", 1.3);
    add_fact_fk(&t, "ss_promo_sk", 500, 1.0, "promotion", "p_promo_sk", 2.5);
    add_fact_fk(&t, "ss_addr_sk", 250000, 0.7, "customer_address",
                "ca_address_sk", 1.6);
    add_fact_fk(&t, "ss_cdemo_sk", 1920800, 0.4, "customer_demographics",
                "cd_demo_sk", 1.2);
    add_fact_fk(&t, "ss_hdemo_sk", 7200, 0.6, "household_demographics",
                "hd_demo_sk", 1.5);
    AddColumnOrDie(&t, Column("ss_quantity", ColumnType::kInt,
                              Attr(100, 0.4, 1, 100)));
    AddColumnOrDie(&t, Column("ss_sales_price", ColumnType::kDecimal,
                              Attr(20000, 0.6, 0, 200)));
    AddColumnOrDie(&t, Column("ss_ext_discount_amt", ColumnType::kDecimal,
                              Attr(10000, 0.8, 0, 1000)));
    AddColumnOrDie(&t, Column("ss_net_profit", ColumnType::kDecimal,
                              Attr(100000, 0.5, -5000, 5000)));
    WMP_CHECK_OK(t.AddIndex("ss_sold_date_sk"));
    WMP_CHECK_OK(t.AddIndex("ss_item_sk"));
    WMP_CHECK_OK(t.AddCorrelation("ss_quantity", "ss_sales_price", 0.6));
    WMP_CHECK_OK(t.AddCorrelation("ss_item_sk", "ss_promo_sk", 0.5));
    WMP_CHECK_OK(t.AddCorrelation("ss_sales_price", "ss_net_profit", 0.8));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  }
  {
    TableDef t("catalog_sales", 1440000);
    add_fact_fk(&t, "cs_sold_date_sk", 1823, 0.3, "date_dim", "d_date_sk", 1.4);
    add_fact_fk(&t, "cs_item_sk", 102000, 0.9, "item", "i_item_sk", 2.0);
    add_fact_fk(&t, "cs_customer_sk", 500000, 0.8, "customer",
                "c_customer_sk", 1.7);
    add_fact_fk(&t, "cs_warehouse_sk", 15, 0.4, "warehouse",
                "w_warehouse_sk", 1.2);
    add_fact_fk(&t, "cs_promo_sk", 500, 1.0, "promotion", "p_promo_sk", 2.2);
    add_fact_fk(&t, "cs_ship_mode_sk", 20, 0.5, "ship_mode",
                "sm_ship_mode_sk", 1.3);
    AddColumnOrDie(&t, Column("cs_quantity", ColumnType::kInt,
                              Attr(100, 0.4, 1, 100)));
    AddColumnOrDie(&t, Column("cs_sales_price", ColumnType::kDecimal,
                              Attr(20000, 0.6, 0, 300)));
    AddColumnOrDie(&t, Column("cs_net_profit", ColumnType::kDecimal,
                              Attr(100000, 0.5, -5000, 8000)));
    WMP_CHECK_OK(t.AddIndex("cs_sold_date_sk"));
    WMP_CHECK_OK(t.AddCorrelation("cs_quantity", "cs_sales_price", 0.6));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  }
  {
    TableDef t("web_sales", 720000);
    add_fact_fk(&t, "ws_sold_date_sk", 1823, 0.3, "date_dim", "d_date_sk", 1.3);
    add_fact_fk(&t, "ws_sold_time_sk", 86400, 0.5, "time_dim", "t_time_sk", 1.2);
    add_fact_fk(&t, "ws_item_sk", 102000, 0.9, "item", "i_item_sk", 2.0);
    add_fact_fk(&t, "ws_customer_sk", 500000, 0.8, "customer",
                "c_customer_sk", 1.6);
    add_fact_fk(&t, "ws_promo_sk", 500, 1.0, "promotion", "p_promo_sk", 2.0);
    AddColumnOrDie(&t, Column("ws_quantity", ColumnType::kInt,
                              Attr(100, 0.4, 1, 100)));
    AddColumnOrDie(&t, Column("ws_sales_price", ColumnType::kDecimal,
                              Attr(20000, 0.6, 0, 300)));
    AddColumnOrDie(&t, Column("ws_net_profit", ColumnType::kDecimal,
                              Attr(100000, 0.5, -5000, 8000)));
    WMP_CHECK_OK(t.AddIndex("ws_sold_date_sk"));
    WMP_CHECK_OK(t.AddCorrelation("ws_quantity", "ws_sales_price", 0.6));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  }
  {
    TableDef t("inventory", 11700000);
    add_fact_fk(&t, "inv_date_sk", 261, 0.1, "date_dim", "d_date_sk", 1.1);
    add_fact_fk(&t, "inv_item_sk", 102000, 0.2, "item", "i_item_sk", 1.2);
    add_fact_fk(&t, "inv_warehouse_sk", 15, 0.1, "warehouse",
                "w_warehouse_sk", 1.1);
    AddColumnOrDie(&t, Column("inv_quantity_on_hand", ColumnType::kInt,
                              Attr(1000, 0.2, 0, 1000)));
    WMP_CHECK_OK(t.AddIndex("inv_date_sk"));
    WMP_CHECK_OK(cat.AddTable(std::move(t)));
  }
  return cat;
}

std::vector<FactSpec> BuildFactSpecs() {
  std::vector<FactSpec> facts;
  facts.push_back(FactSpec{
      "store_sales",
      "ss",
      {"ss_quantity", "ss_sales_price", "ss_ext_discount_amt", "ss_net_profit"},
      {"ss_sales_price", "ss_net_profit"},
      {
          {"date_dim", "ss_sold_date_sk", "d_date_sk",
           {{"d_year", 0.08}, {"d_moy", 0.1}, {"d_qoy", 0.25}},
           "d_year"},
          {"item", "ss_item_sk", "i_item_sk",
           {{"i_category", 0.1}, {"i_brand", 0.002}, {"i_current_price", 0.2}},
           "i_category"},
          {"customer", "ss_customer_sk", "c_customer_sk",
           {{"c_birth_year", 0.1}, {"c_birth_country", 0.01}},
           "c_birth_year"},
          {"store", "ss_store_sk", "s_store_sk",
           {{"s_state", 0.05}, {"s_market", 0.1}},
           "s_state"},
          {"promotion", "ss_promo_sk", "p_promo_sk",
           {{"p_channel", 0.25}},
           "p_channel"},
          {"customer_address", "ss_addr_sk", "ca_address_sk",
           {{"ca_state", 0.04}},
           "ca_state"},
          {"household_demographics", "ss_hdemo_sk", "hd_demo_sk",
           {{"hd_income_band", 0.1}, {"hd_dep_count", 0.2}},
           "hd_income_band"},
      }});
  facts.push_back(FactSpec{
      "catalog_sales",
      "cs",
      {"cs_quantity", "cs_sales_price", "cs_net_profit"},
      {"cs_sales_price", "cs_net_profit"},
      {
          {"date_dim", "cs_sold_date_sk", "d_date_sk",
           {{"d_year", 0.08}, {"d_moy", 0.1}},
           "d_year"},
          {"item", "cs_item_sk", "i_item_sk",
           {{"i_category", 0.1}, {"i_class", 0.02}},
           "i_category"},
          {"customer", "cs_customer_sk", "c_customer_sk",
           {{"c_birth_year", 0.1}},
           "c_birth_year"},
          {"warehouse", "cs_warehouse_sk", "w_warehouse_sk",
           {{"w_state", 0.2}},
           "w_state"},
          {"ship_mode", "cs_ship_mode_sk", "sm_ship_mode_sk",
           {{"sm_type", 0.3}},
           "sm_type"},
      }});
  facts.push_back(FactSpec{
      "web_sales",
      "ws",
      {"ws_quantity", "ws_sales_price", "ws_net_profit"},
      {"ws_sales_price", "ws_net_profit"},
      {
          {"date_dim", "ws_sold_date_sk", "d_date_sk",
           {{"d_year", 0.08}, {"d_dow", 0.3}},
           "d_year"},
          {"time_dim", "ws_sold_time_sk", "t_time_sk",
           {{"t_hour", 0.15}},
           "t_hour"},
          {"item", "ws_item_sk", "i_item_sk",
           {{"i_category", 0.1}, {"i_brand", 0.002}},
           "i_category"},
          {"customer", "ws_customer_sk", "c_customer_sk",
           {{"c_preferred", 0.5}},
           "c_preferred"},
      }});
  facts.push_back(FactSpec{
      "inventory",
      "inv",
      {"inv_quantity_on_hand"},
      {"inv_quantity_on_hand"},
      {
          {"date_dim", "inv_date_sk", "d_date_sk",
           {{"d_moy", 0.1}, {"d_qoy", 0.25}},
           "d_moy"},
          {"item", "inv_item_sk", "i_item_sk",
           {{"i_category", 0.1}},
           "i_category"},
          {"warehouse", "inv_warehouse_sk", "w_warehouse_sk",
           {{"w_state", 0.2}},
           "w_state"},
      }});
  return facts;
}

// Enumerates 99 structurally distinct family recipes.
std::vector<FamilyRecipe> BuildFamilies(const std::vector<FactSpec>& facts) {
  std::vector<FamilyRecipe> families;
  // Sweep: fact x dim-count x rotation x (group, order) until 99 recipes.
  for (int spin = 0; families.size() < 99 && spin < 8; ++spin) {
    for (size_t f = 0; f < facts.size() && families.size() < 99; ++f) {
      const int avail = static_cast<int>(facts[f].dims.size());
      for (int ndims = 1; ndims <= std::min(4, avail) && families.size() < 99;
           ++ndims) {
        FamilyRecipe recipe;
        recipe.fact = static_cast<int>(f);
        for (int d = 0; d < ndims; ++d) {
          recipe.dims.push_back((spin + d) % avail);
        }
        // De-duplicate rotations landing on the same dim set.
        std::sort(recipe.dims.begin(), recipe.dims.end());
        recipe.dims.erase(
            std::unique(recipe.dims.begin(), recipe.dims.end()),
            recipe.dims.end());
        recipe.dim_preds = 1 + (spin + ndims) % 2;
        recipe.fact_pred = ((spin + static_cast<int>(f)) % 2) == 0;
        recipe.num_aggs = 1 + (spin + ndims) % 3;
        recipe.group = (spin % 3) != 2;
        recipe.order = recipe.group ? ((spin + ndims) % 2 == 0)
                                    : true;  // top-k reports sort raw rows
        recipe.limit = !recipe.group ? 100 : (spin % 4 == 0 ? 100 : -1);
        families.push_back(std::move(recipe));
      }
    }
  }
  families.resize(99);
  return families;
}

class TpcdsGenerator : public WorkloadGenerator {
 public:
  TpcdsGenerator()
      : name_("TPC-DS"),
        catalog_(BuildTpcdsCatalog()),
        facts_(BuildFactSpecs()),
        families_(BuildFamilies(facts_)) {}

  const std::string& name() const override { return name_; }
  const catalog::Catalog& catalog() const override { return catalog_; }
  int num_families() const override {
    return static_cast<int>(families_.size());
  }

  Result<sql::Query> GenerateQuery(int family_id, Rng* rng) const override {
    if (family_id < 0 || family_id >= num_families()) {
      return Status::InvalidArgument("bad TPC-DS family id");
    }
    const FamilyRecipe& recipe = families_[static_cast<size_t>(family_id)];
    const FactSpec& fact = facts_[static_cast<size_t>(recipe.fact)];
    WMP_ASSIGN_OR_RETURN(const catalog::TableDef* fact_table,
                         catalog_.FindTable(fact.table));

    sql::Query q;
    q.from.push_back({fact.table, fact.alias});
    // Aliases are interned: the AST's string_views must outlive this frame.
    std::vector<std::string_view> dim_aliases;
    for (size_t i = 0; i < recipe.dims.size(); ++i) {
      const DimSpec& dim = fact.dims[static_cast<size_t>(recipe.dims[i])];
      const std::string_view alias = util::Intern(StrFormat("d%zu", i));
      q.from.push_back({dim.table, alias});
      dim_aliases.push_back(alias);
      q.where.push_back(sql::Predicate::Join({fact.alias, dim.fk},
                                             {alias, dim.pk}));
    }

    // Local predicates on the first `dim_preds` dimensions.
    const int npreds =
        std::min<int>(recipe.dim_preds, static_cast<int>(recipe.dims.size()));
    for (int i = 0; i < npreds; ++i) {
      const DimSpec& dim = fact.dims[static_cast<size_t>(recipe.dims[i])];
      WMP_ASSIGN_OR_RETURN(const catalog::TableDef* dim_table,
                           catalog_.FindTable(dim.table));
      const auto& [col, fraction] = dim.pred_cols[static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(dim.pred_cols.size()) - 1))];
      WMP_ASSIGN_OR_RETURN(const catalog::Column* column,
                           dim_table->FindColumn(col));
      sql::Predicate pred;
      if (column->stats().ndv <= 30 || rng->Bernoulli(0.4)) {
        // Small domains and 40% of large ones: IN / equality.
        if (rng->Bernoulli(0.5)) {
          WMP_ASSIGN_OR_RETURN(
              pred, SampleInPredicate(*dim_table, dim_aliases[i], col,
                                      static_cast<int>(rng->UniformInt(2, 4)),
                                      rng));
        } else {
          WMP_ASSIGN_OR_RETURN(
              pred, SampleEqPredicate(*dim_table, dim_aliases[i], col, rng));
        }
      } else {
        const double jitter = rng->LogNormal(0.0, 0.4);
        WMP_ASSIGN_OR_RETURN(
            pred, SampleRangePredicate(*dim_table, dim_aliases[i], col,
                                       fraction * jitter, rng));
      }
      q.where.push_back(std::move(pred));
    }
    if (recipe.fact_pred) {
      const char* col = fact.pred_measures[static_cast<size_t>(rng->UniformInt(
          0, static_cast<int64_t>(fact.pred_measures.size()) - 1))];
      WMP_ASSIGN_OR_RETURN(
          sql::Predicate pred,
          SampleRangePredicate(*fact_table, fact.alias, col,
                               rng->UniformDouble(0.1, 0.6), rng));
      q.where.push_back(std::move(pred));
    }

    // SELECT list, GROUP BY, ORDER BY.
    if (recipe.group) {
      const size_t group_cols = std::min<size_t>(2, recipe.dims.size());
      for (size_t i = 0; i < group_cols; ++i) {
        const DimSpec& dim = fact.dims[static_cast<size_t>(recipe.dims[i])];
        sql::ColumnRef ref{dim_aliases[i], dim.group_col};
        q.select_list.push_back(sql::SelectItem::Col(ref));
        q.group_by.push_back(ref);
      }
      static const sql::AggFunc kAggs[] = {sql::AggFunc::kSum,
                                           sql::AggFunc::kAvg,
                                           sql::AggFunc::kMin,
                                           sql::AggFunc::kMax};
      for (int a = 0; a < recipe.num_aggs; ++a) {
        const char* measure = fact.measures[static_cast<size_t>(a) %
                                            fact.measures.size()];
        q.select_list.push_back(sql::SelectItem::Agg(
            kAggs[static_cast<size_t>(a) % 4], {fact.alias, measure}));
      }
      q.select_list.push_back(sql::SelectItem::CountStar());
      if (recipe.order) q.order_by = q.group_by;
    } else {
      // Top-k report over raw joined rows: wide sort input.
      for (const char* measure : fact.measures) {
        q.select_list.push_back(sql::SelectItem::Col({fact.alias, measure}));
      }
      const DimSpec& dim = fact.dims[static_cast<size_t>(recipe.dims[0])];
      q.select_list.push_back(sql::SelectItem::Col({dim_aliases[0], dim.group_col}));
      q.order_by.push_back({fact.alias, fact.measures[0]});
    }
    q.limit = recipe.limit;
    return q;
  }

  std::vector<text::TemplateRule> ExpertRules() const override {
    std::vector<text::TemplateRule> rules;
    rules.reserve(families_.size());
    for (size_t i = 0; i < families_.size(); ++i) {
      const FamilyRecipe& recipe = families_[i];
      const FactSpec& fact = facts_[static_cast<size_t>(recipe.fact)];
      text::TemplateRule rule;
      rule.name = StrFormat("tpcds-f%zu", i);
      rule.required_tables.push_back(fact.table);
      for (int d : recipe.dims) {
        rule.required_tables.push_back(fact.dims[static_cast<size_t>(d)].table);
      }
      rule.min_joins = static_cast<int>(recipe.dims.size());
      rule.max_joins = static_cast<int>(recipe.dims.size());
      rule.requires_aggregation = recipe.group;
      rules.push_back(std::move(rule));
    }
    return rules;
  }

 private:
  std::string name_;
  catalog::Catalog catalog_;
  std::vector<FactSpec> facts_;
  std::vector<FamilyRecipe> families_;
};

}  // namespace

std::unique_ptr<WorkloadGenerator> MakeTpcdsGenerator() {
  return std::make_unique<TpcdsGenerator>();
}

}  // namespace wmp::workloads
