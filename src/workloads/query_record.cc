#include "workloads/query_record.h"

#include <cstdint>

#include "util/hash.h"
#include "util/parallel.h"
#include "util/strings.h"

namespace wmp::workloads {

using util::HashBytes;
using util::Mix64;

std::string SummarizeRecord(const QueryRecord& record) {
  return StrFormat("family=%d mem=%.1fMB est=%.1fMB ops=%zu", record.family_id,
                   record.actual_memory_mb, record.dbms_estimate_mb,
                   record.plan != nullptr ? record.plan->TreeSize() : 0);
}

uint64_t ContentFingerprint(const QueryRecord& record) {
  // Hash everything a template method may read: SQL text (text-based
  // methods), plan features (the paper's plan-based methods), and the
  // generator family (rule-based). Doubles hash by bit pattern, which is
  // exactly the equality the histogram cache needs — bitwise-identical
  // inputs yield bitwise-identical histograms.
  uint64_t h = HashBytes(record.sql_text.data(), record.sql_text.size(),
                         /*seed=*/record.sql_text.size());
  if (!record.plan_features.empty()) {
    h = HashBytes(record.plan_features.data(),
                  record.plan_features.size() * sizeof(double), h);
  }
  const uint64_t family =
      static_cast<uint64_t>(static_cast<int64_t>(record.family_id));
  return Mix64(h ^ Mix64(family));
}

void FingerprintRecords(std::vector<QueryRecord>* records) {
  util::ParallelFor(records->size(), 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      QueryRecord& record = (*records)[i];
      if (record.content_fingerprint == 0) {
        record.content_fingerprint = ContentFingerprint(record);
      }
    }
  });
}

}  // namespace wmp::workloads
