#include "workloads/query_record.h"

#include "util/strings.h"

namespace wmp::workloads {

std::string SummarizeRecord(const QueryRecord& record) {
  return StrFormat("family=%d mem=%.1fMB est=%.1fMB ops=%zu", record.family_id,
                   record.actual_memory_mb, record.dbms_estimate_mb,
                   record.plan != nullptr ? record.plan->TreeSize() : 0);
}

}  // namespace wmp::workloads
