#ifndef WMP_WORKLOADS_GENERATOR_H_
#define WMP_WORKLOADS_GENERATOR_H_

/// \file generator.h
/// Workload-generation framework.
///
/// A generator owns a benchmark's catalog and a set of *query families*
/// (the benchmark's seed templates — TPC-DS has 99, JOB 33). Each call to
/// GenerateQuery instantiates one family with fresh literals, mirroring the
/// official query-generation toolkits the paper uses (§IV "Datasets").

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "sql/ast.h"
#include "text/rules.h"
#include "util/random.h"
#include "util/status.h"

namespace wmp::workloads {

/// \brief Abstract benchmark query generator.
class WorkloadGenerator {
 public:
  virtual ~WorkloadGenerator() = default;

  /// Benchmark name ("TPC-DS", "JOB", "TPC-C").
  virtual const std::string& name() const = 0;
  /// Schema + statistics the queries run against.
  virtual const catalog::Catalog& catalog() const = 0;
  /// Number of query families (seed templates).
  virtual int num_families() const = 0;
  /// Instantiates family `family_id` with random literals.
  virtual Result<sql::Query> GenerateQuery(int family_id, Rng* rng) const = 0;

  /// Expert ("DBA-written") rules, one per family, for the rule-based
  /// template ablation of Fig. 9.
  virtual std::vector<text::TemplateRule> ExpertRules() const = 0;

  /// Samples a family id; default is uniform.
  virtual int SampleFamily(Rng* rng) const;
};

/// \name Predicate helpers shared by the concrete generators.
///
/// Equality and IN predicates sample their constants *data-distributedly*
/// (frequent values are picked more often, via the column's Zipf skew) and
/// attach the sampled value's true selectivity as a ground-truth hint.
/// Range predicates pick a domain cutoff; the true-cardinality model
/// derives their skew-aware row fraction from catalog statistics.
/// @{

/// `alias.column = <sampled value>` with a true-selectivity hint.
Result<sql::Predicate> SampleEqPredicate(const catalog::TableDef& table,
                                         std::string_view alias,
                                         std::string_view column, Rng* rng);

/// `alias.column IN (<k sampled values>)` with a true-selectivity hint.
Result<sql::Predicate> SampleInPredicate(const catalog::TableDef& table,
                                         std::string_view alias,
                                         std::string_view column,
                                         int num_values, Rng* rng);

/// Range predicate covering roughly `domain_fraction` of the domain; the
/// comparison direction and operator (<=, >=, BETWEEN) are randomized.
Result<sql::Predicate> SampleRangePredicate(const catalog::TableDef& table,
                                            std::string_view alias,
                                            std::string_view column,
                                            double domain_fraction, Rng* rng);
/// @}

}  // namespace wmp::workloads

#endif  // WMP_WORKLOADS_GENERATOR_H_
