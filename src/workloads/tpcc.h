#ifndef WMP_WORKLOADS_TPCC_H_
#define WMP_WORKLOADS_TPCC_H_

/// \file tpcc.h
/// TPC-C-like transactional benchmark generator: the 9-table order-entry
/// schema (W=100) and 12 query families covering the read paths of the five
/// TPC-C transactions (NewOrder, Payment, OrderStatus, Delivery,
/// StockLevel). Queries are short point/range lookups with tiny working
/// memory — the transactional contrast to the analytic benchmarks.

#include <memory>

#include "workloads/generator.h"

namespace wmp::workloads {

/// Creates the TPC-C-like generator.
std::unique_ptr<WorkloadGenerator> MakeTpccGenerator();

}  // namespace wmp::workloads

#endif  // WMP_WORKLOADS_TPCC_H_
