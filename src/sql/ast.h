#ifndef WMP_SQL_AST_H_
#define WMP_SQL_AST_H_

/// \file ast.h
/// Abstract syntax tree for the SQL subset the library understands:
/// conjunctive SELECT-FROM-WHERE with joins, aggregation, grouping,
/// ordering, DISTINCT, and LIMIT — the shape of every TPC-DS / JOB / TPC-C
/// query the workload generators emit.
///
/// Identifier fields (table/column/alias names) are `std::string_view`s with
/// *static or interned* storage: the parser interns every identifier through
/// util::Intern, and generators either use string literals or intern their
/// formatted aliases. Interned views live for the whole process, so a Query
/// is freely copyable/movable and its nodes never own identifier memory.
/// When constructing ASTs by hand, never point these fields at a local
/// std::string — intern it.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wmp::sql {

/// Comparison operator of a predicate.
enum class CompareOp : uint8_t {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kBetween,
  kIn,
  kLike,
};

/// SQL spelling of an operator ("=", "<", "BETWEEN", ...).
const char* CompareOpName(CompareOp op);

/// Renders an identifier as SQL text: bare when it is a plain lower-case
/// word, double-quoted (with "" escaping) when it contains other characters,
/// starts with a digit, or collides with a reserved keyword — so
/// Parse(Print(q)) reproduces the identifier exactly.
std::string QuoteIdentifier(std::string_view id);

/// \brief Qualified column reference; `table` may be an alias or empty when
/// unambiguous.
struct ColumnRef {
  std::string_view table;   ///< alias or table name; empty when unambiguous
  std::string_view column;

  bool operator==(const ColumnRef& o) const {
    return table == o.table && column == o.column;
  }
  /// Quoted SQL spelling (`table.column` with each part quoted as needed).
  std::string ToString() const;
};

/// \brief A literal operand: numeric or string.
struct Literal {
  double number = 0.0;
  std::string text;
  bool is_string = false;

  static Literal Number(double v) { return {v, {}, false}; }
  static Literal String(std::string s) { return {0.0, std::move(s), true}; }
  std::string ToString() const;
};

/// \brief One conjunct of the WHERE clause.
///
/// `kComparison` compares a column against literal(s); `kJoin` equates two
/// columns of different tables.
///
/// `true_selectivity` is a ground-truth hook: workload generators that know
/// the synthetic data distribution attach the predicate's true selectivity
/// here so the execution simulator does not have to re-derive it. Parsed
/// queries carry -1 (unknown) and the simulator falls back to
/// skew-aware statistics. The optimizer-side estimator NEVER reads it.
struct Predicate {
  enum class Kind : uint8_t { kComparison, kJoin };

  Kind kind = Kind::kComparison;
  ColumnRef lhs;
  CompareOp op = CompareOp::kEq;
  std::vector<Literal> values;  ///< 1 (compare), 2 (between), n (IN)
  ColumnRef rhs;                ///< join partner column (kJoin only)
  double true_selectivity = -1.0;

  static Predicate Comparison(ColumnRef col, CompareOp op,
                              std::vector<Literal> values);
  static Predicate Join(ColumnRef a, ColumnRef b);
};

/// Aggregate function in a select item.
enum class AggFunc : uint8_t { kNone, kCount, kSum, kAvg, kMin, kMax };

/// SQL name of an aggregate ("COUNT", ...); empty for kNone.
const char* AggFuncName(AggFunc f);

/// \brief One item of the SELECT list.
struct SelectItem {
  AggFunc agg = AggFunc::kNone;
  ColumnRef column;
  bool is_star = false;  ///< `*` or `COUNT(*)`

  static SelectItem Star() { return {AggFunc::kNone, {}, true}; }
  static SelectItem Col(ColumnRef c) { return {AggFunc::kNone, std::move(c), false}; }
  static SelectItem Agg(AggFunc f, ColumnRef c) { return {f, std::move(c), false}; }
  static SelectItem CountStar() { return {AggFunc::kCount, {}, true}; }
};

/// \brief FROM-list entry with optional alias.
struct TableRef {
  std::string_view table;
  std::string_view alias;  ///< empty = table name itself

  std::string_view effective_name() const {
    return alias.empty() ? table : alias;
  }
};

/// \brief A parsed (or generated) query.
struct Query {
  bool distinct = false;
  std::vector<SelectItem> select_list;
  std::vector<TableRef> from;
  std::vector<Predicate> where;  ///< implicit conjunction
  std::vector<ColumnRef> group_by;
  std::vector<ColumnRef> order_by;
  int64_t limit = -1;  ///< -1 = no limit

  /// True if any select item aggregates.
  bool HasAggregation() const;
  /// Join predicates only.
  std::vector<const Predicate*> JoinPredicates() const;
  /// Local (non-join) predicates referencing `table_or_alias`.
  std::vector<const Predicate*> LocalPredicates(
      std::string_view table_or_alias) const;
};

}  // namespace wmp::sql

#endif  // WMP_SQL_AST_H_
