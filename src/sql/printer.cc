#include "sql/printer.h"

#include "util/strings.h"

namespace wmp::sql {

namespace {

std::string PrintSelectItem(const SelectItem& item) {
  if (item.agg == AggFunc::kNone) {
    return item.is_star ? "*" : item.column.ToString();
  }
  const std::string arg = item.is_star ? "*" : item.column.ToString();
  return std::string(AggFuncName(item.agg)) + "(" + arg + ")";
}

std::string PrintPredicate(const Predicate& p) {
  if (p.kind == Predicate::Kind::kJoin) {
    return p.lhs.ToString() + " = " + p.rhs.ToString();
  }
  switch (p.op) {
    case CompareOp::kBetween:
      return p.lhs.ToString() + " BETWEEN " + p.values[0].ToString() +
             " AND " + p.values[1].ToString();
    case CompareOp::kIn: {
      std::vector<std::string> vals;
      vals.reserve(p.values.size());
      for (const Literal& v : p.values) vals.push_back(v.ToString());
      return p.lhs.ToString() + " IN (" + Join(vals, ", ") + ")";
    }
    default:
      return p.lhs.ToString() + " " + CompareOpName(p.op) + " " +
             p.values[0].ToString();
  }
}

}  // namespace

std::string Print(const Query& query) {
  std::string out = "SELECT ";
  if (query.distinct) out += "DISTINCT ";
  {
    std::vector<std::string> items;
    items.reserve(query.select_list.size());
    for (const SelectItem& item : query.select_list) {
      items.push_back(PrintSelectItem(item));
    }
    out += Join(items, ", ");
  }
  out += " FROM ";
  {
    std::vector<std::string> tables;
    tables.reserve(query.from.size());
    for (const TableRef& t : query.from) {
      tables.push_back(t.alias.empty()
                           ? QuoteIdentifier(t.table)
                           : QuoteIdentifier(t.table) + " " +
                                 QuoteIdentifier(t.alias));
    }
    out += Join(tables, ", ");
  }
  if (!query.where.empty()) {
    out += " WHERE ";
    std::vector<std::string> preds;
    preds.reserve(query.where.size());
    for (const Predicate& p : query.where) preds.push_back(PrintPredicate(p));
    out += Join(preds, " AND ");
  }
  if (!query.group_by.empty()) {
    std::vector<std::string> cols;
    cols.reserve(query.group_by.size());
    for (const ColumnRef& c : query.group_by) cols.push_back(c.ToString());
    out += " GROUP BY " + Join(cols, ", ");
  }
  if (!query.order_by.empty()) {
    std::vector<std::string> cols;
    cols.reserve(query.order_by.size());
    for (const ColumnRef& c : query.order_by) cols.push_back(c.ToString());
    out += " ORDER BY " + Join(cols, ", ");
  }
  if (query.limit >= 0) {
    out += StrFormat(" LIMIT %lld", static_cast<long long>(query.limit));
  }
  return out;
}

}  // namespace wmp::sql
