#include "sql/ast.h"

#include "util/strings.h"

namespace wmp::sql {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kBetween:
      return "BETWEEN";
    case CompareOp::kIn:
      return "IN";
    case CompareOp::kLike:
      return "LIKE";
  }
  return "?";
}

std::string Literal::ToString() const {
  if (is_string) return "'" + text + "'";
  // Integral literals print without a trailing ".000000".
  if (number == static_cast<double>(static_cast<int64_t>(number))) {
    return StrFormat("%lld", static_cast<long long>(number));
  }
  return StrFormat("%g", number);
}

Predicate Predicate::Comparison(ColumnRef col, CompareOp op,
                                std::vector<Literal> values) {
  Predicate p;
  p.kind = Kind::kComparison;
  p.lhs = std::move(col);
  p.op = op;
  p.values = std::move(values);
  return p;
}

Predicate Predicate::Join(ColumnRef a, ColumnRef b) {
  Predicate p;
  p.kind = Kind::kJoin;
  p.lhs = std::move(a);
  p.op = CompareOp::kEq;
  p.rhs = std::move(b);
  return p;
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kNone:
      return "";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "";
}

bool Query::HasAggregation() const {
  for (const SelectItem& item : select_list) {
    if (item.agg != AggFunc::kNone) return true;
  }
  return false;
}

std::vector<const Predicate*> Query::JoinPredicates() const {
  std::vector<const Predicate*> out;
  for (const Predicate& p : where) {
    if (p.kind == Predicate::Kind::kJoin) out.push_back(&p);
  }
  return out;
}

std::vector<const Predicate*> Query::LocalPredicates(
    const std::string& table_or_alias) const {
  std::vector<const Predicate*> out;
  for (const Predicate& p : where) {
    if (p.kind == Predicate::Kind::kComparison &&
        p.lhs.table == table_or_alias) {
      out.push_back(&p);
    }
  }
  return out;
}

}  // namespace wmp::sql
