#include "sql/ast.h"

#include <cctype>

#include "sql/lexer.h"
#include "util/strings.h"

namespace wmp::sql {

namespace {

bool NeedsQuoting(std::string_view id) {
  if (id.empty()) return true;
  const unsigned char first = static_cast<unsigned char>(id[0]);
  if (!(std::islower(first) || id[0] == '_')) return true;
  for (char ch : id) {
    const unsigned char c = static_cast<unsigned char>(ch);
    if (!(std::islower(c) || std::isdigit(c) || ch == '_')) return true;
  }
  return IsReservedKeyword(ToUpper(id));
}

}  // namespace

std::string QuoteIdentifier(std::string_view id) {
  if (!NeedsQuoting(id)) return std::string(id);
  std::string out;
  out.reserve(id.size() + 2);
  out.push_back('"');
  for (char c : id) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string ColumnRef::ToString() const {
  if (table.empty()) return QuoteIdentifier(column);
  return QuoteIdentifier(table) + "." + QuoteIdentifier(column);
}

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kBetween:
      return "BETWEEN";
    case CompareOp::kIn:
      return "IN";
    case CompareOp::kLike:
      return "LIKE";
  }
  return "?";
}

std::string Literal::ToString() const {
  if (is_string) {
    std::string out;
    out.reserve(text.size() + 2);
    out.push_back('\'');
    for (char c : text) {
      if (c == '\'') out.push_back('\'');  // '' escape, mirrors the lexer
      out.push_back(c);
    }
    out.push_back('\'');
    return out;
  }
  // Integral literals print without a trailing ".000000".
  if (number == static_cast<double>(static_cast<int64_t>(number))) {
    return StrFormat("%lld", static_cast<long long>(number));
  }
  return StrFormat("%g", number);
}

Predicate Predicate::Comparison(ColumnRef col, CompareOp op,
                                std::vector<Literal> values) {
  Predicate p;
  p.kind = Kind::kComparison;
  p.lhs = std::move(col);
  p.op = op;
  p.values = std::move(values);
  return p;
}

Predicate Predicate::Join(ColumnRef a, ColumnRef b) {
  Predicate p;
  p.kind = Kind::kJoin;
  p.lhs = std::move(a);
  p.op = CompareOp::kEq;
  p.rhs = std::move(b);
  return p;
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kNone:
      return "";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "";
}

bool Query::HasAggregation() const {
  for (const SelectItem& item : select_list) {
    if (item.agg != AggFunc::kNone) return true;
  }
  return false;
}

std::vector<const Predicate*> Query::JoinPredicates() const {
  std::vector<const Predicate*> out;
  for (const Predicate& p : where) {
    if (p.kind == Predicate::Kind::kJoin) out.push_back(&p);
  }
  return out;
}

std::vector<const Predicate*> Query::LocalPredicates(
    std::string_view table_or_alias) const {
  std::vector<const Predicate*> out;
  for (const Predicate& p : where) {
    if (p.kind == Predicate::Kind::kComparison &&
        p.lhs.table == table_or_alias) {
      out.push_back(&p);
    }
  }
  return out;
}

}  // namespace wmp::sql
