#ifndef WMP_SQL_PARSER_H_
#define WMP_SQL_PARSER_H_

/// \file parser.h
/// Recursive-descent parser for the SQL subset:
///
///   query     := SELECT [DISTINCT] items FROM tables [WHERE conj]
///                [GROUP BY cols] [ORDER BY cols [ASC|DESC]] [LIMIT n] [;]
///   items     := item (',' item)*        item := '*' | agg '(' arg ')' | colref
///   tables    := table [[AS] alias] (',' table [[AS] alias])*
///   conj      := pred (AND pred)*
///   pred      := colref cmp literal | colref cmp colref (join)
///              | colref BETWEEN lit AND lit | colref IN '(' lit, ... ')'
///              | colref LIKE string
///
/// Disjunction (OR) and explicit JOIN ... ON syntax are intentionally out of
/// scope — the paper's workloads are conjunctive SPJ+aggregation queries.

#include <string>

#include "sql/ast.h"
#include "util/status.h"

namespace wmp::sql {

/// \brief Parses `input` into a Query. Returns InvalidArgument with an
/// offset-annotated message on syntax errors.
Result<Query> Parse(const std::string& input);

}  // namespace wmp::sql

#endif  // WMP_SQL_PARSER_H_
