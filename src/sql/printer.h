#ifndef WMP_SQL_PRINTER_H_
#define WMP_SQL_PRINTER_H_

/// \file printer.h
/// Renders a Query AST back to SQL text. `Parse(Print(q))` is the identity
/// on the supported subset (modulo whitespace), which the workload
/// generators rely on to emit query text for the text-based template
/// learners (Fig. 9).

#include <string>

#include "sql/ast.h"

namespace wmp::sql {

/// \brief SQL text of `query`.
std::string Print(const Query& query);

}  // namespace wmp::sql

#endif  // WMP_SQL_PRINTER_H_
