#include "sql/parser.h"

#include <cstdlib>
#include <cstring>

#include "sql/lexer.h"
#include "util/arena.h"
#include "util/interner.h"
#include "util/strings.h"

namespace wmp::sql {

namespace {

/// Token-stream cursor with one-token lookahead helpers. Identifiers are
/// interned into the global pool as they enter the AST, so the Query owns
/// no identifier storage and outlives the token buffer.
class Parser {
 public:
  explicit Parser(const std::vector<Token>& tokens) : tokens_(tokens) {}

  Result<Query> ParseQuery() {
    Query q;
    WMP_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    if (AcceptKeyword("DISTINCT")) q.distinct = true;
    WMP_RETURN_IF_ERROR(ParseSelectList(&q));
    WMP_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    WMP_RETURN_IF_ERROR(ParseTableList(&q));
    if (AcceptKeyword("WHERE")) {
      WMP_RETURN_IF_ERROR(ParseConjunction(&q));
    }
    if (AcceptKeyword("GROUP")) {
      WMP_RETURN_IF_ERROR(ExpectKeyword("BY"));
      WMP_RETURN_IF_ERROR(ParseColumnList(&q.group_by));
    }
    if (AcceptKeyword("ORDER")) {
      WMP_RETURN_IF_ERROR(ExpectKeyword("BY"));
      WMP_RETURN_IF_ERROR(ParseColumnList(&q.order_by));
      if (AcceptKeyword("ASC") || AcceptKeyword("DESC")) {
        // Direction is accepted but not modeled (memory-irrelevant).
      }
    }
    if (AcceptKeyword("LIMIT")) {
      WMP_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
      if (lit.is_string || lit.number < 0) {
        return Error("LIMIT requires a non-negative number");
      }
      q.limit = static_cast<int64_t>(lit.number);
    }
    AcceptSymbol(";");
    if (!Peek().IsSymbol("") && Peek().type != TokenType::kEnd) {
      return Error("trailing tokens after query");
    }
    return q;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool AcceptKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const char* s) {
    if (Peek().IsSymbol(s)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Error(StrFormat("expected %s", kw));
    }
    return Status::OK();
  }
  Status ExpectSymbol(const char* s) {
    if (!AcceptSymbol(s)) {
      return Error(StrFormat("expected '%s'", s));
    }
    return Status::OK();
  }
  Status Error(const std::string& what) const {
    const std::string near(Peek().text);
    return Status::InvalidArgument(
        StrFormat("%s at offset %zu (near '%s')", what.c_str(), Peek().offset,
                  near.c_str()));
  }

  Result<ColumnRef> ParseColumnRef() {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected column reference");
    }
    ColumnRef ref;
    ref.column = util::Intern(Advance().text);
    if (AcceptSymbol(".")) {
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected column after '.'");
      }
      ref.table = ref.column;
      ref.column = util::Intern(Advance().text);
    }
    return ref;
  }

  Result<Literal> ParseLiteral() {
    if (Peek().type == TokenType::kNumber) {
      // Token text is not NUL-terminated; strtod needs a bounded copy.
      char buf[64];
      const std::string_view text = Advance().text;
      const size_t len = text.size() < sizeof(buf) - 1 ? text.size()
                                                       : sizeof(buf) - 1;
      std::memcpy(buf, text.data(), len);
      buf[len] = '\0';
      return Literal::Number(std::strtod(buf, nullptr));
    }
    if (Peek().type == TokenType::kString) {
      return Literal::String(std::string(Advance().text));
    }
    return Error("expected literal");
  }

  Status ParseSelectList(Query* q) {
    do {
      if (AcceptSymbol("*")) {
        q->select_list.push_back(SelectItem::Star());
        continue;
      }
      AggFunc agg = AggFunc::kNone;
      for (AggFunc f : {AggFunc::kCount, AggFunc::kSum, AggFunc::kAvg,
                        AggFunc::kMin, AggFunc::kMax}) {
        if (Peek().IsKeyword(AggFuncName(f))) {
          agg = f;
          ++pos_;
          break;
        }
      }
      if (agg != AggFunc::kNone) {
        WMP_RETURN_IF_ERROR(ExpectSymbol("("));
        if (AcceptSymbol("*")) {
          if (agg != AggFunc::kCount) return Error("only COUNT(*) allowed");
          q->select_list.push_back(SelectItem::CountStar());
        } else {
          WMP_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
          q->select_list.push_back(SelectItem::Agg(agg, std::move(ref)));
        }
        WMP_RETURN_IF_ERROR(ExpectSymbol(")"));
      } else {
        WMP_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
        q->select_list.push_back(SelectItem::Col(std::move(ref)));
      }
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  Status ParseTableList(Query* q) {
    do {
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected table name");
      }
      TableRef ref;
      ref.table = util::Intern(Advance().text);
      if (AcceptKeyword("AS")) {
        if (Peek().type != TokenType::kIdentifier) {
          return Error("expected alias after AS");
        }
        ref.alias = util::Intern(Advance().text);
      } else if (Peek().type == TokenType::kIdentifier) {
        ref.alias = util::Intern(Advance().text);  // bare alias
      }
      q->from.push_back(std::move(ref));
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  Status ParseConjunction(Query* q) {
    do {
      WMP_ASSIGN_OR_RETURN(Predicate pred, ParsePredicate());
      q->where.push_back(std::move(pred));
    } while (AcceptKeyword("AND"));
    return Status::OK();
  }

  Result<Predicate> ParsePredicate() {
    WMP_ASSIGN_OR_RETURN(ColumnRef lhs, ParseColumnRef());
    if (AcceptKeyword("BETWEEN")) {
      WMP_ASSIGN_OR_RETURN(Literal lo, ParseLiteral());
      WMP_RETURN_IF_ERROR(ExpectKeyword("AND"));
      WMP_ASSIGN_OR_RETURN(Literal hi, ParseLiteral());
      return Predicate::Comparison(std::move(lhs), CompareOp::kBetween,
                                   {std::move(lo), std::move(hi)});
    }
    if (AcceptKeyword("IN")) {
      WMP_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<Literal> values;
      do {
        WMP_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
        values.push_back(std::move(lit));
      } while (AcceptSymbol(","));
      WMP_RETURN_IF_ERROR(ExpectSymbol(")"));
      return Predicate::Comparison(std::move(lhs), CompareOp::kIn,
                                   std::move(values));
    }
    if (AcceptKeyword("LIKE")) {
      if (Peek().type != TokenType::kString) {
        return Error("LIKE requires a string literal");
      }
      Literal pattern = Literal::String(std::string(Advance().text));
      return Predicate::Comparison(std::move(lhs), CompareOp::kLike,
                                   {std::move(pattern)});
    }
    CompareOp op;
    if (AcceptSymbol("=")) {
      op = CompareOp::kEq;
    } else if (AcceptSymbol("<>")) {
      op = CompareOp::kNe;
    } else if (AcceptSymbol("<=")) {
      op = CompareOp::kLe;
    } else if (AcceptSymbol(">=")) {
      op = CompareOp::kGe;
    } else if (AcceptSymbol("<")) {
      op = CompareOp::kLt;
    } else if (AcceptSymbol(">")) {
      op = CompareOp::kGt;
    } else {
      return Error("expected comparison operator");
    }
    // Column-vs-column equality is a join predicate.
    if (Peek().type == TokenType::kIdentifier) {
      WMP_ASSIGN_OR_RETURN(ColumnRef rhs, ParseColumnRef());
      if (op != CompareOp::kEq) {
        return Error("only equi-joins are supported");
      }
      return Predicate::Join(std::move(lhs), std::move(rhs));
    }
    WMP_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
    return Predicate::Comparison(std::move(lhs), op, {std::move(lit)});
  }

  Status ParseColumnList(std::vector<ColumnRef>* out) {
    do {
      WMP_ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
      out->push_back(std::move(ref));
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  const std::vector<Token>& tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> Parse(const std::string& input) {
  // Grow-only per-thread lexer scratch: a warmed thread parses with zero
  // lexer heap traffic. `input` outlives the Parser, so tokens may view it.
  thread_local util::Arena arena(16 << 10);
  thread_local std::vector<Token> tokens;
  arena.Reset();
  WMP_RETURN_IF_ERROR(LexInto(input, &arena, &tokens));
  Parser parser(tokens);
  return parser.ParseQuery();
}

}  // namespace wmp::sql
