#ifndef WMP_SQL_LEXER_H_
#define WMP_SQL_LEXER_H_

/// \file lexer.h
/// Tokenizer for the SQL subset. Keywords are case-insensitive; identifiers
/// preserve case (lowered for matching downstream).
///
/// Tokens are allocation-free views: keyword/symbol text points at static
/// canonical spellings, and everything else points either into the input
/// buffer or into the caller's arena (lowered identifiers, unescaped
/// strings). One warmed arena lexes an entire batch of queries with zero
/// heap traffic.

#include <string>
#include <string_view>
#include <vector>

#include "util/arena.h"
#include "util/status.h"

namespace wmp::sql {

/// Token categories.
enum class TokenType : uint8_t {
  kKeyword,     ///< SELECT, FROM, WHERE, ... (normalized upper-case)
  kIdentifier,  ///< table/column names; bare ones are lowered, double-quoted
                ///< ones keep their exact spelling ("" escapes a quote)
  kNumber,
  kString,      ///< single-quoted literal, quotes stripped
  kSymbol,      ///< punctuation / operators: ( ) , . = <> <= >= < > *
  kEnd,
};

/// \brief A single token with its source offset (for error messages).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string_view text;
  size_t offset = 0;

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(const char* s) const {
    return type == TokenType::kSymbol && text == s;
  }
};

/// \brief Tokenizes `input` into `*out` (cleared first). Token text views
/// into `input`, `arena`, or static storage — valid while both the input
/// buffer and the arena epoch live. Returns InvalidArgument on malformed
/// input (unterminated string/quoted identifier, stray character).
Status LexInto(std::string_view input, util::Arena* arena,
               std::vector<Token>* out);

/// \brief Convenience form: tokenizes into a thread-local arena (the input
/// is copied there too, so the tokens do not borrow from `input`). The
/// returned tokens are valid until the next Lex/Parse call on this thread.
Result<std::vector<Token>> Lex(const std::string& input);

/// True if `upper_word` is a reserved keyword (callers upper-case first).
bool IsReservedKeyword(std::string_view upper_word);

}  // namespace wmp::sql

#endif  // WMP_SQL_LEXER_H_
