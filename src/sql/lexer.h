#ifndef WMP_SQL_LEXER_H_
#define WMP_SQL_LEXER_H_

/// \file lexer.h
/// Tokenizer for the SQL subset. Keywords are case-insensitive; identifiers
/// preserve case (lowered for matching downstream).

#include <string>
#include <vector>

#include "util/status.h"

namespace wmp::sql {

/// Token categories.
enum class TokenType : uint8_t {
  kKeyword,     ///< SELECT, FROM, WHERE, ... (normalized upper-case)
  kIdentifier,  ///< table/column names
  kNumber,
  kString,      ///< single-quoted literal, quotes stripped
  kSymbol,      ///< punctuation / operators: ( ) , . = <> <= >= < > *
  kEnd,
};

/// \brief A single token with its source offset (for error messages).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  size_t offset = 0;

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(const char* s) const {
    return type == TokenType::kSymbol && text == s;
  }
};

/// \brief Tokenizes `input`. Returns InvalidArgument on malformed input
/// (unterminated string, stray character).
Result<std::vector<Token>> Lex(const std::string& input);

/// True if `word` (upper-cased) is a reserved keyword.
bool IsReservedKeyword(const std::string& upper_word);

}  // namespace wmp::sql

#endif  // WMP_SQL_LEXER_H_
