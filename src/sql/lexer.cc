#include "sql/lexer.h"

#include <cctype>
#include <set>

#include "util/strings.h"

namespace wmp::sql {

namespace {

// Canonical spellings; keyword tokens view into this static table.
const std::set<std::string_view>& Keywords() {
  static const std::set<std::string_view> kKeywords = {
      "SELECT", "FROM",  "WHERE",    "AND",   "GROUP", "BY",
      "ORDER",  "LIMIT", "DISTINCT", "AS",    "BETWEEN", "IN",
      "LIKE",   "COUNT", "SUM",      "AVG",   "MIN",   "MAX",
      "ASC",    "DESC",  "NOT",      "OR",    "JOIN",  "ON",
  };
  return kKeywords;
}

constexpr size_t kMaxKeywordLen = 8;  // DISTINCT

const char* SymbolText(char c) {
  switch (c) {
    case '(': return "(";
    case ')': return ")";
    case ',': return ",";
    case '.': return ".";
    case '=': return "=";
    case '<': return "<";
    case '>': return ">";
    case '*': return "*";
    case ';': return ";";
  }
  return "?";
}

}  // namespace

bool IsReservedKeyword(std::string_view upper_word) {
  return Keywords().count(upper_word) > 0;
}

Status LexInto(std::string_view input, util::Arena* arena,
               std::vector<Token>* out) {
  out->clear();
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      bool has_upper = false;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        has_upper |= std::isupper(static_cast<unsigned char>(input[i])) != 0;
        ++i;
      }
      const std::string_view word = input.substr(start, i - start);
      if (word.size() <= kMaxKeywordLen) {
        char upper[kMaxKeywordLen];
        for (size_t j = 0; j < word.size(); ++j) {
          upper[j] = static_cast<char>(
              std::toupper(static_cast<unsigned char>(word[j])));
        }
        auto it = Keywords().find(std::string_view(upper, word.size()));
        if (it != Keywords().end()) {
          out->push_back({TokenType::kKeyword, *it, start});
          continue;
        }
      }
      std::string_view text = word;
      if (has_upper) {  // lowered copy in the arena
        char* lowered = arena->AllocateArray<char>(word.size());
        for (size_t j = 0; j < word.size(); ++j) {
          lowered[j] = static_cast<char>(
              std::tolower(static_cast<unsigned char>(word[j])));
        }
        text = {lowered, word.size()};
      }
      out->push_back({TokenType::kIdentifier, text, start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      ++i;  // sign or first digit
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.' || input[i] == 'e' || input[i] == 'E' ||
                       ((input[i] == '+' || input[i] == '-') &&
                        (input[i - 1] == 'e' || input[i - 1] == 'E')))) {
        ++i;
      }
      out->push_back(
          {TokenType::kNumber, input.substr(start, i - start), start});
      continue;
    }
    if (c == '"') {  // quoted identifier: case-preserved, "" escapes a quote
      ++i;
      size_t escapes = 0;
      const size_t body = i;
      bool closed = false;
      while (i < n) {
        if (input[i] == '"') {
          if (i + 1 < n && input[i + 1] == '"') {
            ++escapes;
            i += 2;
            continue;
          }
          closed = true;
          break;
        }
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument(
            StrFormat("unterminated quoted identifier at offset %zu", start));
      }
      std::string_view text = input.substr(body, i - body);
      ++i;  // closing quote
      if (text.empty()) {
        return Status::InvalidArgument(
            StrFormat("empty quoted identifier at offset %zu", start));
      }
      if (escapes != 0) {  // unescape into the arena
        char* buf = arena->AllocateArray<char>(text.size() - escapes);
        size_t w = 0;
        for (size_t r = 0; r < text.size(); ++r) {
          buf[w++] = text[r];
          if (text[r] == '"') ++r;  // skip the doubled quote
        }
        text = {buf, w};
      }
      out->push_back({TokenType::kIdentifier, text, start});
      continue;
    }
    if (c == '\'') {
      ++i;
      size_t escapes = 0;
      const size_t body = i;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {
            ++escapes;
            i += 2;
            continue;
          }
          closed = true;
          break;
        }
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument(
            StrFormat("unterminated string literal at offset %zu", start));
      }
      std::string_view text = input.substr(body, i - body);
      ++i;  // closing quote
      if (escapes != 0) {
        char* buf = arena->AllocateArray<char>(text.size() - escapes);
        size_t w = 0;
        for (size_t r = 0; r < text.size(); ++r) {
          buf[w++] = text[r];
          if (text[r] == '\'') ++r;
        }
        text = {buf, w};
      }
      out->push_back({TokenType::kString, text, start});
      continue;
    }
    // Two-character operators first.
    if (i + 1 < n) {
      const std::string_view two = input.substr(i, 2);
      if (two == "<>" || two == "!=") {
        out->push_back({TokenType::kSymbol, "<>", start});
        i += 2;
        continue;
      }
      if (two == "<=" || two == ">=") {
        out->push_back({TokenType::kSymbol, two == "<=" ? "<=" : ">=", start});
        i += 2;
        continue;
      }
    }
    switch (c) {
      case '(':
      case ')':
      case ',':
      case '.':
      case '=':
      case '<':
      case '>':
      case '*':
      case ';':
        out->push_back({TokenType::kSymbol, SymbolText(c), start});
        ++i;
        break;
      default:
        return Status::InvalidArgument(
            StrFormat("unexpected character '%c' at offset %zu", c, start));
    }
  }
  out->push_back({TokenType::kEnd, {}, n});
  return Status::OK();
}

Result<std::vector<Token>> Lex(const std::string& input) {
  thread_local util::Arena arena(8 << 10);
  arena.Reset();
  // Copy the input into the arena so the tokens own no view into `input`
  // (callers routinely pass temporaries).
  const std::string_view stable = arena.CopyString(input);
  std::vector<Token> tokens;
  WMP_RETURN_IF_ERROR(LexInto(stable, &arena, &tokens));
  return tokens;
}

}  // namespace wmp::sql
