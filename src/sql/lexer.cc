#include "sql/lexer.h"

#include <cctype>
#include <set>

#include "util/strings.h"

namespace wmp::sql {

namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kKeywords = {
      "SELECT", "FROM",  "WHERE",    "AND",   "GROUP", "BY",
      "ORDER",  "LIMIT", "DISTINCT", "AS",    "BETWEEN", "IN",
      "LIKE",   "COUNT", "SUM",      "AVG",   "MIN",   "MAX",
      "ASC",    "DESC",  "NOT",      "OR",    "JOIN",  "ON",
  };
  return kKeywords;
}

}  // namespace

bool IsReservedKeyword(const std::string& upper_word) {
  return Keywords().count(upper_word) > 0;
}

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      std::string word = input.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (IsReservedKeyword(upper)) {
        tokens.push_back({TokenType::kKeyword, std::move(upper), start});
      } else {
        tokens.push_back({TokenType::kIdentifier, ToLower(word), start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      ++i;  // sign or first digit
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.' || input[i] == 'e' || input[i] == 'E' ||
                       ((input[i] == '+' || input[i] == '-') &&
                        (input[i - 1] == 'e' || input[i - 1] == 'E')))) {
        ++i;
      }
      tokens.push_back({TokenType::kNumber, input.substr(start, i - start), start});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // escaped quote
            text.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text.push_back(input[i]);
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument(
            StrFormat("unterminated string literal at offset %zu", start));
      }
      tokens.push_back({TokenType::kString, std::move(text), start});
      continue;
    }
    // Two-character operators first.
    if (i + 1 < n) {
      const std::string two = input.substr(i, 2);
      if (two == "<>" || two == "<=" || two == ">=" || two == "!=") {
        tokens.push_back({TokenType::kSymbol, two == "!=" ? "<>" : two, start});
        i += 2;
        continue;
      }
    }
    switch (c) {
      case '(':
      case ')':
      case ',':
      case '.':
      case '=':
      case '<':
      case '>':
      case '*':
      case ';':
        tokens.push_back({TokenType::kSymbol, std::string(1, c), start});
        ++i;
        break;
      default:
        return Status::InvalidArgument(
            StrFormat("unexpected character '%c' at offset %zu", c, start));
    }
  }
  tokens.push_back({TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace wmp::sql
