#ifndef WMP_ML_DTREE_H_
#define WMP_ML_DTREE_H_

/// \file dtree.h
/// CART regression trees with histogram-based split finding.
///
/// Features are quantile-binned once per dataset (`FeatureBinner`); split
/// search then scans per-bin statistics instead of sorting rows at every
/// node, which keeps single-core training fast at the paper's 93k-query
/// scale. The same binning infrastructure is reused by the random forest
/// and the gradient-boosted trees.

#include <cstdint>
#include <vector>

#include "ml/regressor.h"
#include "util/random.h"

namespace wmp::ml {

/// \brief Quantile binning of continuous features into at most `max_bins`
/// buckets per feature.
class FeatureBinner {
 public:
  /// Computes per-feature bin edges from the rows of `x`.
  /// \param max_bins  upper bound on buckets per feature (2..65535).
  Status Fit(const Matrix& x, int max_bins = 64);

  /// Bin index of `value` for feature `f` (0-based, < NumBins(f)).
  uint16_t BinValue(size_t f, double value) const;

  /// Bins every row of `x`; returns a row-major `n x d` bin-index buffer.
  Result<std::vector<uint16_t>> BinAll(const Matrix& x) const;

  /// Number of buckets for feature `f`.
  size_t NumBins(size_t f) const { return edges_[f].size() + 1; }
  size_t num_features() const { return edges_.size(); }
  bool fitted() const { return !edges_.empty(); }

  /// Upper edge of bucket `bin` for feature `f` — the raw-value threshold a
  /// tree node stores so prediction never needs the binner.
  double UpperEdge(size_t f, size_t bin) const { return edges_[f][bin]; }

 private:
  // edges_[f] is a sorted list of cut points; value <= edges_[f][i] and
  // > edges_[f][i-1] falls in bin i; values above the last edge fall in the
  // final bin.
  std::vector<std::vector<double>> edges_;
};

/// \brief Flat-array tree node. `feature == -1` marks a leaf.
struct TreeNode {
  int feature = -1;
  double threshold = 0.0;  ///< go left iff x[feature] <= threshold
  int left = -1;
  int right = -1;
  double value = 0.0;  ///< leaf prediction
};

/// Hyperparameters shared by the tree learners.
struct TreeOptions {
  int max_depth = 10;
  int min_samples_split = 2;
  int min_samples_leaf = 1;
  /// Features examined per split: 0 = all, else ceil(fraction * d).
  double feature_fraction = 0.0;
  int max_bins = 64;
};

/// \brief A single regression tree trained on pre-binned data with variance
/// reduction as the split criterion. Building block for DecisionTree and
/// RandomForest regressors.
class RegressionTree {
 public:
  /// Trains on rows `row_indices` of the binned design.
  /// \param bins    row-major n x d bin indices from FeatureBinner::BinAll
  /// \param binner  fitted binner (for raw-value thresholds)
  /// \param y       targets, length n
  Status Fit(const std::vector<uint16_t>& bins, size_t num_features,
             const FeatureBinner& binner, const std::vector<double>& y,
             const std::vector<uint32_t>& row_indices,
             const TreeOptions& options, Rng* rng);

  /// Predicts from raw (un-binned) features.
  double Predict(const std::vector<double>& x) const;
  double Predict(const double* x, size_t n) const;

  const std::vector<TreeNode>& nodes() const { return nodes_; }
  bool fitted() const { return !nodes_.empty(); }

  /// Wraps an externally built node array (used by the gradient booster,
  /// which grows trees on gradient/hessian statistics instead of variance).
  static RegressionTree FromNodes(std::vector<TreeNode> nodes);

  void Serialize(BinaryWriter* writer) const;
  static Result<RegressionTree> Deserialize(BinaryReader* reader);

 private:
  std::vector<TreeNode> nodes_;
};

/// Hyperparameters for DecisionTreeRegressor.
struct DecisionTreeOptions {
  TreeOptions tree;
  uint64_t seed = 42;
};

/// \brief Single CART tree exposed through the Regressor interface — the
/// paper's "DT" model family.
class DecisionTreeRegressor : public Regressor {
 public:
  explicit DecisionTreeRegressor(DecisionTreeOptions options = {})
      : options_(options) {}

  std::string Name() const override { return "DT"; }
  Status Fit(const Matrix& x, const std::vector<double>& y) override;
  Result<double> PredictOne(const std::vector<double>& x) const override;
  /// Batch prediction walking the tree once per contiguous row (no per-row
  /// vector copies), parallelized over row blocks.
  Result<std::vector<double>> Predict(const Matrix& x) const override;
  Status Serialize(BinaryWriter* writer) const override;

  static Result<std::unique_ptr<DecisionTreeRegressor>> Deserialize(
      BinaryReader* reader);

  const RegressionTree& tree() const { return tree_; }

 private:
  DecisionTreeOptions options_;
  RegressionTree tree_;
};

}  // namespace wmp::ml

#endif  // WMP_ML_DTREE_H_
