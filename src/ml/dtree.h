#ifndef WMP_ML_DTREE_H_
#define WMP_ML_DTREE_H_

/// \file dtree.h
/// CART regression trees with histogram-based split finding.
///
/// Features are quantile-binned once per dataset (`FeatureBinner` /
/// `BinnedDataset`, ml/binned.h); split search then scans per-bin statistics
/// instead of sorting rows at every node, which keeps single-core training
/// fast at the paper's 93k-query scale. The default growth engine
/// (`TreeGrowth::kHistogram`) works on feature-major bins with sibling
/// subtraction and a reusable histogram pool (ml/tree_grower.h); the
/// original direct builder is retained as `TreeGrowth::kReference` for
/// equivalence testing and benchmarking. The same binning infrastructure is
/// reused by the random forest and the gradient-boosted trees.

#include <cstdint>
#include <vector>

#include "ml/binned.h"
#include "ml/regressor.h"
#include "util/random.h"

namespace wmp::ml {

/// Row-block grain for the ParallelFor in the tree-family batch Predict
/// overrides (DT, RF, GBT), replacing the ad-hoc 64 (RF/GBT) vs 256 (DT)
/// split. Measured on the bench box (50k-row GBT predict, grains 16..4096):
/// throughput is flat within noise, so the grain only matters for
/// multi-core chunk-handoff overhead — where fewer, larger blocks win as
/// long as there are still >= threads blocks. 256 keeps thousands of
/// blocks at serving batch sizes while capping handoffs.
inline constexpr size_t kTreePredictGrain = 256;

/// \brief Flat-array tree node. `feature == -1` marks a leaf.
struct TreeNode {
  int feature = -1;
  double threshold = 0.0;  ///< go left iff x[feature] <= threshold
  int left = -1;
  int right = -1;
  double value = 0.0;  ///< leaf prediction
};

/// Hyperparameters shared by the tree learners.
struct TreeOptions {
  int max_depth = 10;
  int min_samples_split = 2;
  int min_samples_leaf = 1;
  /// Features examined per split: 0 = all, else ceil(fraction * d).
  double feature_fraction = 0.0;
  int max_bins = 64;
  /// Growth engine; kReference selects the pre-histogram-engine builder.
  TreeGrowth growth = TreeGrowth::kHistogram;
};

/// \brief A single regression tree trained on pre-binned data with variance
/// reduction as the split criterion. Building block for DecisionTree and
/// RandomForest regressors.
class RegressionTree {
 public:
  /// Reference (direct-build) trainer on rows `row_indices` of the
  /// row-major binned design. Kept as the equivalence baseline for the
  /// histogram engine — production training goes through
  /// VarianceTreeGrower (ml/tree_grower.h) instead.
  /// \param bins    row-major n x d bin indices from FeatureBinner::BinAll
  /// \param binner  fitted binner (for raw-value thresholds)
  /// \param y       targets, length n
  Status Fit(const std::vector<uint16_t>& bins, size_t num_features,
             const FeatureBinner& binner, const std::vector<double>& y,
             const std::vector<uint32_t>& row_indices,
             const TreeOptions& options, Rng* rng);

  /// Predicts from raw (un-binned) features.
  double Predict(const std::vector<double>& x) const;
  double Predict(const double* x, size_t n) const;

  const std::vector<TreeNode>& nodes() const { return nodes_; }
  bool fitted() const { return !nodes_.empty(); }

  /// Wraps an externally built node array (the histogram growers and the
  /// gradient booster produce nodes through this).
  static RegressionTree FromNodes(std::vector<TreeNode> nodes);

  void Serialize(BinaryWriter* writer) const;
  static Result<RegressionTree> Deserialize(BinaryReader* reader);

 private:
  std::vector<TreeNode> nodes_;
};

/// Hyperparameters for DecisionTreeRegressor.
struct DecisionTreeOptions {
  TreeOptions tree;
  uint64_t seed = 42;
};

/// \brief Single CART tree exposed through the Regressor interface — the
/// paper's "DT" model family.
class DecisionTreeRegressor : public Regressor {
 public:
  explicit DecisionTreeRegressor(DecisionTreeOptions options = {})
      : options_(options) {}

  std::string Name() const override { return "DT"; }
  Status Fit(const Matrix& x, const std::vector<double>& y) override;
  Result<double> PredictOne(const std::vector<double>& x) const override;
  /// Batch prediction walking the tree once per contiguous row (no per-row
  /// vector copies), parallelized over row blocks.
  Result<std::vector<double>> Predict(const Matrix& x) const override;
  Status Serialize(BinaryWriter* writer) const override;
  FitTiming fit_timing() const override { return fit_timing_; }
  Status FitWithSharedBins(const Matrix& x, const std::vector<double>& y,
                           BinnedDatasetCache* cache) override;

  /// Trains on an externally binned design (histogram engine only). The
  /// dataset's binning governs; sharing one BinnedDataset across DT/RF/GBT
  /// trained on the same matrix is what BinnedDatasetCache is for.
  Status FitFromBinned(const BinnedDataset& data, const std::vector<double>& y);

  static Result<std::unique_ptr<DecisionTreeRegressor>> Deserialize(
      BinaryReader* reader);

  const RegressionTree& tree() const { return tree_; }
  const DecisionTreeOptions& options() const { return options_; }
  /// Histogram-engine instrumentation of the last Fit (pool allocation
  /// bounds are asserted by the equivalence suite).
  const TreeGrowerStats& grower_stats() const { return grower_stats_; }

 private:
  DecisionTreeOptions options_;
  RegressionTree tree_;
  FitTiming fit_timing_;
  TreeGrowerStats grower_stats_;
};

}  // namespace wmp::ml

#endif  // WMP_ML_DTREE_H_
