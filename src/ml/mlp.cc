#include "ml/mlp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "ml/lbfgs.h"
#include "util/parallel.h"

namespace wmp::ml {

const char* ActivationName(Activation a) {
  switch (a) {
    case Activation::kIdentity:
      return "identity";
    case Activation::kRelu:
      return "relu";
    case Activation::kTanh:
      return "tanh";
  }
  return "?";
}

const char* MlpSolverName(MlpSolver s) {
  switch (s) {
    case MlpSolver::kSgd:
      return "sgd";
    case MlpSolver::kAdam:
      return "adam";
    case MlpSolver::kLbfgs:
      return "lbfgs";
  }
  return "?";
}

namespace {

inline double Act(double v, Activation a) {
  switch (a) {
    case Activation::kIdentity:
      return v;
    case Activation::kRelu:
      return v > 0.0 ? v : 0.0;
    case Activation::kTanh:
      return std::tanh(v);
  }
  return v;
}

// Derivative expressed through the activation output.
inline double ActDerivFromOutput(double out, Activation a) {
  switch (a) {
    case Activation::kIdentity:
      return 1.0;
    case Activation::kRelu:
      return out > 0.0 ? 1.0 : 0.0;
    case Activation::kTanh:
      return 1.0 - out * out;
  }
  return 1.0;
}

}  // namespace

void MlpRegressor::InitParams(size_t input_dim, Rng* rng) {
  layer_dims_.clear();
  layer_dims_.push_back(input_dim);
  for (int h : options_.hidden_layers) {
    layer_dims_.push_back(static_cast<size_t>(h));
  }
  layer_dims_.push_back(1);

  weights_.clear();
  biases_.clear();
  for (size_t l = 0; l + 1 < layer_dims_.size(); ++l) {
    const size_t in = layer_dims_[l], out = layer_dims_[l + 1];
    Matrix w(in, out);
    // Glorot-uniform init, matching scikit-learn's MLP.
    const double bound = std::sqrt(6.0 / static_cast<double>(in + out));
    for (double& v : w.data()) v = rng->UniformDouble(-bound, bound);
    weights_.push_back(std::move(w));
    biases_.emplace_back(out, 0.0);
  }
}

std::vector<Matrix> MlpRegressor::Forward(const Matrix& x) const {
  std::vector<Matrix> acts;
  acts.reserve(weights_.size() + 1);
  acts.push_back(x);
  for (size_t l = 0; l < weights_.size(); ++l) {
    Matrix z = MatMul(acts.back(), weights_[l]);
    const bool is_output = (l + 1 == weights_.size());
    for (size_t r = 0; r < z.rows(); ++r) {
      double* row = z.RowPtr(r);
      for (size_t c = 0; c < z.cols(); ++c) {
        row[c] += biases_[l][c];
        if (!is_output) row[c] = Act(row[c], options_.activation);
      }
    }
    acts.push_back(std::move(z));
  }
  return acts;
}

double MlpRegressor::LossAndGrad(const Matrix& x,
                                 const std::vector<double>& y_scaled,
                                 std::vector<Matrix>* grad_w,
                                 std::vector<std::vector<double>>* grad_b) const {
  const size_t batch = x.rows();
  const double inv_n = 1.0 / static_cast<double>(batch);
  std::vector<Matrix> acts = Forward(x);

  grad_w->clear();
  grad_b->clear();
  for (size_t l = 0; l < weights_.size(); ++l) {
    grad_w->emplace_back(weights_[l].rows(), weights_[l].cols());
    grad_b->emplace_back(biases_[l].size(), 0.0);
  }

  // Data loss: 1/(2N) sum (pred - y)^2  (eq. 9).
  const Matrix& output = acts.back();
  double loss = 0.0;
  Matrix delta(batch, 1);
  for (size_t i = 0; i < batch; ++i) {
    const double err = output.At(i, 0) - y_scaled[i];
    loss += 0.5 * err * err;
    delta.At(i, 0) = err * inv_n;  // dL/dz at the output
  }
  loss *= inv_n;

  // Backprop through layers.
  for (size_t li = weights_.size(); li-- > 0;) {
    const Matrix& input_act = acts[li];
    // grad_w = input^T * delta ; grad_b = column sums of delta.
    Matrix& gw = (*grad_w)[li];
    std::vector<double>& gb = (*grad_b)[li];
    for (size_t r = 0; r < input_act.rows(); ++r) {
      const double* in_row = input_act.RowPtr(r);
      const double* d_row = delta.RowPtr(r);
      for (size_t c = 0; c < delta.cols(); ++c) {
        const double d = d_row[c];
        if (d == 0.0) continue;
        gb[c] += d;
        double* gw_col_base = gw.RowPtr(0) + c;
        for (size_t k = 0; k < input_act.cols(); ++k) {
          gw_col_base[k * gw.cols()] += in_row[k] * d;
        }
      }
    }
    if (li == 0) break;
    // delta_prev = (delta * W^T) ⊙ act'(acts[li])
    Matrix prev(delta.rows(), weights_[li].rows());
    for (size_t r = 0; r < delta.rows(); ++r) {
      const double* d_row = delta.RowPtr(r);
      double* p_row = prev.RowPtr(r);
      for (size_t c = 0; c < delta.cols(); ++c) {
        const double d = d_row[c];
        if (d == 0.0) continue;
        const double* w_row_base = weights_[li].RowPtr(0) + c;
        for (size_t k = 0; k < weights_[li].rows(); ++k) {
          p_row[k] += d * w_row_base[k * weights_[li].cols()];
        }
      }
      const double* a_row = acts[li].RowPtr(r);
      for (size_t k = 0; k < prev.cols(); ++k) {
        p_row[k] *= ActDerivFromOutput(a_row[k], options_.activation);
      }
    }
    delta = std::move(prev);
  }

  // L2 penalty: alpha/(2N) ||W||^2, gradients alpha/N * W (biases excluded).
  const double reg_scale = options_.alpha * inv_n;
  for (size_t l = 0; l < weights_.size(); ++l) {
    const auto& wdata = weights_[l].data();
    auto& gdata = (*grad_w)[l].data();
    for (size_t i = 0; i < wdata.size(); ++i) {
      loss += 0.5 * reg_scale * wdata[i] * wdata[i];
      gdata[i] += reg_scale * wdata[i];
    }
  }
  return loss;
}

Status MlpRegressor::FitFirstOrder(const Matrix& x,
                                   const std::vector<double>& y_scaled) {
  const size_t n = x.rows();
  Rng rng(options_.seed + 1);
  const size_t batch_size =
      std::min<size_t>(std::max(options_.batch_size, 1), n);

  // Optimizer state.
  std::vector<Matrix> vel_w, m_w, v_w;
  std::vector<std::vector<double>> vel_b, m_b, v_b;
  for (size_t l = 0; l < weights_.size(); ++l) {
    vel_w.emplace_back(weights_[l].rows(), weights_[l].cols());
    m_w.emplace_back(weights_[l].rows(), weights_[l].cols());
    v_w.emplace_back(weights_[l].rows(), weights_[l].cols());
    vel_b.emplace_back(biases_[l].size(), 0.0);
    m_b.emplace_back(biases_[l].size(), 0.0);
    v_b.emplace_back(biases_[l].size(), 0.0);
  }
  constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;
  int64_t adam_t = 0;

  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  double best_loss = std::numeric_limits<double>::max();
  int stale_epochs = 0;
  std::vector<Matrix> gw;
  std::vector<std::vector<double>> gb;
  for (int epoch = 0; epoch < options_.max_iter; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t start = 0; start < n; start += batch_size) {
      const size_t end = std::min(start + batch_size, n);
      Matrix bx(end - start, x.cols());
      std::vector<double> by(end - start);
      for (size_t i = start; i < end; ++i) {
        std::copy(x.RowPtr(order[i]), x.RowPtr(order[i]) + x.cols(),
                  bx.RowPtr(i - start));
        by[i - start] = y_scaled[order[i]];
      }
      epoch_loss += LossAndGrad(bx, by, &gw, &gb);
      ++batches;

      if (options_.solver == MlpSolver::kSgd) {
        for (size_t l = 0; l < weights_.size(); ++l) {
          auto& w = weights_[l].data();
          auto& g = gw[l].data();
          auto& vel = vel_w[l].data();
          for (size_t i = 0; i < w.size(); ++i) {
            vel[i] = options_.momentum * vel[i] - options_.learning_rate * g[i];
            w[i] += vel[i];
          }
          for (size_t i = 0; i < biases_[l].size(); ++i) {
            vel_b[l][i] = options_.momentum * vel_b[l][i] -
                          options_.learning_rate * gb[l][i];
            biases_[l][i] += vel_b[l][i];
          }
        }
      } else {  // Adam
        ++adam_t;
        const double bc1 = 1.0 - std::pow(kBeta1, static_cast<double>(adam_t));
        const double bc2 = 1.0 - std::pow(kBeta2, static_cast<double>(adam_t));
        for (size_t l = 0; l < weights_.size(); ++l) {
          auto& w = weights_[l].data();
          auto& g = gw[l].data();
          auto& m = m_w[l].data();
          auto& v = v_w[l].data();
          for (size_t i = 0; i < w.size(); ++i) {
            m[i] = kBeta1 * m[i] + (1.0 - kBeta1) * g[i];
            v[i] = kBeta2 * v[i] + (1.0 - kBeta2) * g[i] * g[i];
            w[i] -= options_.learning_rate * (m[i] / bc1) /
                    (std::sqrt(v[i] / bc2) + kEps);
          }
          for (size_t i = 0; i < biases_[l].size(); ++i) {
            m_b[l][i] = kBeta1 * m_b[l][i] + (1.0 - kBeta1) * gb[l][i];
            v_b[l][i] =
                kBeta2 * v_b[l][i] + (1.0 - kBeta2) * gb[l][i] * gb[l][i];
            biases_[l][i] -= options_.learning_rate * (m_b[l][i] / bc1) /
                             (std::sqrt(v_b[l][i] / bc2) + kEps);
          }
        }
      }
    }
    epoch_loss /= static_cast<double>(std::max<size_t>(batches, 1));
    iterations_run_ = epoch + 1;
    final_loss_ = epoch_loss;
    if (epoch_loss < best_loss - options_.tol * std::max(best_loss, 1e-12)) {
      best_loss = epoch_loss;
      stale_epochs = 0;
    } else if (++stale_epochs >= options_.n_iter_no_change) {
      break;
    }
  }
  return Status::OK();
}

Status MlpRegressor::FitLbfgs(const Matrix& x,
                              const std::vector<double>& y_scaled) {
  ObjectiveFn objective = [this, &x, &y_scaled](const std::vector<double>& p,
                                                std::vector<double>* grad) {
    // const_cast is confined to the optimizer round-trip: parameters are
    // restored from `p` before every evaluation.
    auto* self = const_cast<MlpRegressor*>(this);
    self->UnflattenParams(p);
    std::vector<Matrix> gw;
    std::vector<std::vector<double>> gb;
    const double loss = LossAndGrad(x, y_scaled, &gw, &gb);
    grad->clear();
    grad->reserve(NumParams());
    for (size_t l = 0; l < gw.size(); ++l) {
      grad->insert(grad->end(), gw[l].data().begin(), gw[l].data().end());
      grad->insert(grad->end(), gb[l].begin(), gb[l].end());
    }
    return loss;
  };
  LbfgsOptions lopt;
  lopt.max_iters = options_.max_iter;
  lopt.f_tol = options_.tol;
  WMP_ASSIGN_OR_RETURN(LbfgsSummary summary,
                       MinimizeLbfgs(objective, FlattenParams(), lopt));
  UnflattenParams(summary.x);
  final_loss_ = summary.loss;
  iterations_run_ = summary.iterations;
  return Status::OK();
}

Status MlpRegressor::Fit(const Matrix& x, const std::vector<double>& y) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("MLP::Fit on empty matrix");
  }
  if (y.size() != x.rows()) {
    return Status::InvalidArgument("MLP::Fit target size mismatch");
  }
  for (int h : options_.hidden_layers) {
    if (h < 1) return Status::InvalidArgument("hidden layer width must be >= 1");
  }
  Rng rng(options_.seed);
  InitParams(x.cols(), &rng);

  // Standardize targets for optimizer stability.
  y_mean_ = 0.0;
  for (double v : y) y_mean_ += v;
  y_mean_ /= static_cast<double>(y.size());
  double var = 0.0;
  for (double v : y) var += (v - y_mean_) * (v - y_mean_);
  y_std_ = std::sqrt(var / static_cast<double>(y.size()));
  if (y_std_ < 1e-12) y_std_ = 1.0;
  std::vector<double> y_scaled(y.size());
  for (size_t i = 0; i < y.size(); ++i) y_scaled[i] = (y[i] - y_mean_) / y_std_;

  if (options_.solver == MlpSolver::kLbfgs) return FitLbfgs(x, y_scaled);
  return FitFirstOrder(x, y_scaled);
}

Result<double> MlpRegressor::PredictOne(const std::vector<double>& x) const {
  if (!fitted()) return Status::FailedPrecondition("MLP not fitted");
  if (x.size() != layer_dims_.front()) {
    return Status::InvalidArgument("MLP::PredictOne dimension mismatch");
  }
  Matrix m(1, x.size());
  std::copy(x.begin(), x.end(), m.RowPtr(0));
  std::vector<Matrix> acts = Forward(m);
  return acts.back().At(0, 0) * y_std_ + y_mean_;
}

Result<std::vector<double>> MlpRegressor::Predict(const Matrix& x) const {
  if (!fitted()) return Status::FailedPrecondition("MLP not fitted");
  if (x.cols() != layer_dims_.front()) {
    return Status::InvalidArgument("MLP::Predict dimension mismatch");
  }
  // Row-blocked forward passes: bounds activation memory and lets blocks run
  // on the worker pool. Per-row results are independent of block shape (each
  // output element is one fixed-order dot product), so this agrees with the
  // whole-matrix pass and with PredictOne bitwise.
  std::vector<double> out(x.rows());
  util::ParallelFor(x.rows(), 256, [&](size_t begin, size_t end) {
    Matrix block(end - begin, x.cols());
    std::copy(x.RowPtr(begin), x.RowPtr(begin) + (end - begin) * x.cols(),
              block.data().begin());
    const std::vector<Matrix> acts = Forward(block);
    for (size_t i = begin; i < end; ++i) {
      out[i] = acts.back().At(i - begin, 0) * y_std_ + y_mean_;
    }
  });
  return out;
}

std::vector<double> MlpRegressor::FlattenParams() const {
  std::vector<double> flat;
  flat.reserve(NumParams());
  for (size_t l = 0; l < weights_.size(); ++l) {
    flat.insert(flat.end(), weights_[l].data().begin(),
                weights_[l].data().end());
    flat.insert(flat.end(), biases_[l].begin(), biases_[l].end());
  }
  return flat;
}

void MlpRegressor::UnflattenParams(const std::vector<double>& flat) {
  size_t pos = 0;
  for (size_t l = 0; l < weights_.size(); ++l) {
    auto& wdata = weights_[l].data();
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(pos),
              flat.begin() + static_cast<std::ptrdiff_t>(pos + wdata.size()),
              wdata.begin());
    pos += wdata.size();
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(pos),
              flat.begin() +
                  static_cast<std::ptrdiff_t>(pos + biases_[l].size()),
              biases_[l].begin());
    pos += biases_[l].size();
  }
}

size_t MlpRegressor::NumParams() const {
  size_t n = 0;
  for (size_t l = 0; l < weights_.size(); ++l) {
    n += weights_[l].data().size() + biases_[l].size();
  }
  return n;
}

Status MlpRegressor::Serialize(BinaryWriter* writer) const {
  if (!fitted()) return Status::FailedPrecondition("MLP not fitted");
  writer->WriteU32(serialize_tags::kMlp);
  writer->WriteU8(static_cast<uint8_t>(options_.activation));
  writer->WriteDouble(y_mean_);
  writer->WriteDouble(y_std_);
  writer->WriteU64(layer_dims_.size());
  for (size_t dim : layer_dims_) writer->WriteU64(dim);
  for (size_t l = 0; l < weights_.size(); ++l) {
    writer->WriteDoubleVec(weights_[l].data());
    writer->WriteDoubleVec(biases_[l]);
  }
  return Status::OK();
}

Result<std::unique_ptr<MlpRegressor>> MlpRegressor::Deserialize(
    BinaryReader* reader) {
  WMP_ASSIGN_OR_RETURN(uint32_t tag, reader->ReadU32());
  if (tag != serialize_tags::kMlp) {
    return Status::InvalidArgument("bad mlp magic tag");
  }
  MlpOptions opt;
  WMP_ASSIGN_OR_RETURN(uint8_t act, reader->ReadU8());
  opt.activation = static_cast<Activation>(act);
  auto model = std::make_unique<MlpRegressor>();
  WMP_ASSIGN_OR_RETURN(model->y_mean_, reader->ReadDouble());
  WMP_ASSIGN_OR_RETURN(model->y_std_, reader->ReadDouble());
  WMP_ASSIGN_OR_RETURN(uint64_t nlayers, reader->ReadU64());
  model->layer_dims_.resize(nlayers);
  opt.hidden_layers.clear();
  for (uint64_t i = 0; i < nlayers; ++i) {
    WMP_ASSIGN_OR_RETURN(uint64_t dim, reader->ReadU64());
    model->layer_dims_[i] = dim;
    if (i > 0 && i + 1 < nlayers) {
      opt.hidden_layers.push_back(static_cast<int>(dim));
    }
  }
  for (uint64_t l = 0; l + 1 < nlayers; ++l) {
    WMP_ASSIGN_OR_RETURN(std::vector<double> w, reader->ReadDoubleVec());
    WMP_ASSIGN_OR_RETURN(std::vector<double> b, reader->ReadDoubleVec());
    const size_t in = model->layer_dims_[l], out = model->layer_dims_[l + 1];
    if (w.size() != in * out || b.size() != out) {
      return Status::InvalidArgument("mlp stream corrupt");
    }
    model->weights_.emplace_back(in, out, std::move(w));
    model->biases_.push_back(std::move(b));
  }
  model->options_ = opt;
  return model;
}

}  // namespace wmp::ml
