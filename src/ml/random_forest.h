#ifndef WMP_ML_RANDOM_FOREST_H_
#define WMP_ML_RANDOM_FOREST_H_

/// \file random_forest.h
/// Bagged CART ensemble with per-split feature subsampling — the paper's
/// "RF" model family.

#include <vector>

#include "ml/dtree.h"
#include "ml/regressor.h"

namespace wmp::ml {

/// Hyperparameters for RandomForestRegressor.
struct RandomForestOptions {
  int num_trees = 50;
  TreeOptions tree = {.max_depth = 12,
                      .min_samples_split = 2,
                      .min_samples_leaf = 2,
                      .feature_fraction = 0.6,
                      .max_bins = 64};
  double bootstrap_fraction = 1.0;  ///< bootstrap sample size / n.
  uint64_t seed = 42;
};

/// \brief Random forest regressor: average of bootstrapped trees.
class RandomForestRegressor : public Regressor {
 public:
  explicit RandomForestRegressor(RandomForestOptions options = {})
      : options_(options) {}

  std::string Name() const override { return "RF"; }
  Status Fit(const Matrix& x, const std::vector<double>& y) override;
  Result<double> PredictOne(const std::vector<double>& x) const override;
  /// Batch prediction: each contiguous row averages over all trees in
  /// ensemble order (bitwise-identical to PredictOne), rows parallelized.
  Result<std::vector<double>> Predict(const Matrix& x) const override;
  Status Serialize(BinaryWriter* writer) const override;
  FitTiming fit_timing() const override { return fit_timing_; }
  Status FitWithSharedBins(const Matrix& x, const std::vector<double>& y,
                           BinnedDatasetCache* cache) override;

  /// Trains on an externally binned design (histogram engine only); one
  /// grower — and so one histogram pool and one row buffer — is reused
  /// across all trees of the forest.
  Status FitFromBinned(const BinnedDataset& data, const std::vector<double>& y);

  static Result<std::unique_ptr<RandomForestRegressor>> Deserialize(
      BinaryReader* reader);

  size_t num_trees() const { return trees_.size(); }
  const std::vector<RegressionTree>& trees() const { return trees_; }
  const RandomForestOptions& options() const { return options_; }
  /// Histogram-engine instrumentation of the last Fit.
  const TreeGrowerStats& grower_stats() const { return grower_stats_; }

 private:
  RandomForestOptions options_;
  std::vector<RegressionTree> trees_;
  FitTiming fit_timing_;
  TreeGrowerStats grower_stats_;
};

}  // namespace wmp::ml

#endif  // WMP_ML_RANDOM_FOREST_H_
