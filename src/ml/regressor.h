#ifndef WMP_ML_REGRESSOR_H_
#define WMP_ML_REGRESSOR_H_

/// \file regressor.h
/// Common interface for every learned estimator in the library.
///
/// Both LearnedWMP (distribution regression over workload histograms) and the
/// SingleWMP baselines (per-query regression over plan features) are trained
/// through this interface, so the experiment harness can sweep model families
/// uniformly (Figs. 4-8).

#include <memory>
#include <string>
#include <vector>

#include "ml/linalg.h"
#include "util/io.h"
#include "util/status.h"

namespace wmp::ml {

/// Identifies a model family. Names mirror the paper's model suffixes.
enum class RegressorKind {
  kRidge,         ///< L2-regularized linear regression (closed form).
  kDecisionTree,  ///< CART regression tree.
  kRandomForest,  ///< Bagged CART ensemble with feature subsampling.
  kGbt,           ///< Gradient-boosted trees, XGBoost-style objective.
  kMlp,           ///< Multilayer perceptron ("DNN" in the paper).
};

/// Paper-style short name ("Ridge", "DT", "RF", "XGB", "DNN").
const char* RegressorKindName(RegressorKind kind);

/// All kinds, in the order the paper's figures list them.
const std::vector<RegressorKind>& AllRegressorKinds();

/// \brief Phase breakdown of the last Fit() call, for attributing training
/// regressions (wmpctl train, bench/train_throughput). Families without
/// internal phases report zeros.
struct FitTiming {
  double bin_ms = 0.0;     ///< dataset binning (skipped on shared-bin hits)
  double grow_ms = 0.0;    ///< tree growth / split search
  double update_ms = 0.0;  ///< GBT per-round gradient + prediction updates
};

class BinnedDatasetCache;

/// \brief Abstract trainable regression model.
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Model family short name.
  virtual std::string Name() const = 0;

  /// Trains on feature matrix `x` (one row per example) and targets `y`.
  /// Refitting an already-fitted model replaces the previous fit.
  virtual Status Fit(const Matrix& x, const std::vector<double>& y) = 0;

  /// Predicts a single example. Requires a prior successful Fit().
  virtual Result<double> PredictOne(const std::vector<double>& x) const = 0;

  /// Predicts every row of `x`.
  ///
  /// This is the batched inference hot path: every concrete model overrides
  /// it with a vectorized implementation that reads contiguous rows via
  /// `Matrix::RowPtr` and distributes row blocks over the shared worker
  /// pool (util/parallel.h). Overrides must agree with a PredictOne() loop
  /// to within 1e-9 per row (the tests assert bitwise-or-better agreement).
  /// Thread-safe after Fit(): Predict is const and takes no locks. The
  /// default implementation loops PredictOne().
  virtual Result<std::vector<double>> Predict(const Matrix& x) const;

  /// Serializes the fitted model. The byte count of the stream is the
  /// "model size" metric in Fig. 8.
  virtual Status Serialize(BinaryWriter* writer) const = 0;

  /// Serialized size in bytes; convenience over Serialize().
  Result<size_t> SerializedSize() const;

  /// Phase breakdown of the last Fit(); zeros for families that don't
  /// instrument their trainer.
  virtual FitTiming fit_timing() const { return {}; }

  /// Fits like Fit(), but families that train on binned designs (the tree
  /// family, in histogram-growth mode) route their binning through `cache`
  /// so several candidates trained on the same design matrix bin it once.
  /// The default — and any family without a binned trainer, or a null
  /// cache — is a plain Fit(x, y), which is also the exact arithmetic the
  /// shared path produces (a cached fit is bitwise the fit the model would
  /// compute alone; asserted in tests). On the cached path the model's
  /// `fit_timing().bin_ms` reads 0: binning is a shared cost paid once
  /// inside the cache (it still shows up in the first consumer's fit wall
  /// time, so nothing disappears from train_ms totals).
  virtual Status FitWithSharedBins(const Matrix& x,
                                   const std::vector<double>& y,
                                   BinnedDatasetCache* /*cache*/) {
    return Fit(x, y);
  }
};

/// \brief Creates a regressor of the given family with the default
/// hyperparameters used throughout the experiments.
///
/// \param kind  model family
/// \param seed  seed for stochastic trainers (RF bagging, MLP init/shuffle);
///              ignored by deterministic ones.
std::unique_ptr<Regressor> CreateRegressor(RegressorKind kind, uint64_t seed = 42);

/// \brief Reconstructs a regressor from a stream produced by
/// `Regressor::Serialize` (dispatches on the per-model magic tag).
Result<std::unique_ptr<Regressor>> DeserializeRegressor(BinaryReader* reader);

namespace serialize_tags {
/// Per-model magic tags; first u32 of every serialized model stream.
constexpr uint32_t kRidge = 0x574D5031;         // "WMP1"
constexpr uint32_t kDecisionTree = 0x574D5032;  // "WMP2"
constexpr uint32_t kRandomForest = 0x574D5033;  // "WMP3"
constexpr uint32_t kGbt = 0x574D5034;           // "WMP4"
constexpr uint32_t kMlp = 0x574D5035;           // "WMP5"
constexpr uint32_t kScaler = 0x574D5036;        // "WMP6"
constexpr uint32_t kKMeans = 0x574D5037;        // "WMP7"
}  // namespace serialize_tags

}  // namespace wmp::ml

#endif  // WMP_ML_REGRESSOR_H_
