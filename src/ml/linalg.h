#ifndef WMP_ML_LINALG_H_
#define WMP_ML_LINALG_H_

/// \file linalg.h
/// Dense linear algebra used by the learned models: row-major matrices,
/// matrix products, and a Cholesky SPD solver (for Ridge's closed form and
/// the truncated-SVD embedding trainer).

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace wmp::ml {

/// \brief Dense row-major matrix of doubles.
///
/// The ML code paths are dominated by matvec/matmul over small-to-medium
/// shapes (thousands of rows, tens to hundreds of columns), so a plain
/// cache-friendly row-major layout is sufficient.
class Matrix {
 public:
  Matrix() = default;
  /// Zero-initialized `rows x cols`.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}
  /// Takes ownership of `data`, which must have `rows*cols` entries.
  Matrix(size_t rows, size_t cols, std::vector<double> data);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Pointer to the start of row `r`.
  double* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  /// Copies row `r` into a vector.
  std::vector<double> RowVec(size_t r) const;

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Appends a row; the first appended row fixes `cols()` for an empty
  /// matrix, afterwards `row.size()` must match.
  Status AppendRow(const std::vector<double>& row);

  /// Grow-only reshape for scratch reuse: adopts the new shape, enlarging
  /// the backing storage only when `rows*cols` exceeds what any earlier
  /// shape required. Contents are unspecified afterwards (callers
  /// overwrite every row). Note `data().size()` may exceed `rows*cols` on
  /// a reshaped matrix — don't serialize a scratch matrix's backing store.
  void Reshape(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    if (data_.size() < rows * cols) data_.resize(rows * cols);
  }

  /// Returns the transpose.
  Matrix Transposed() const;

  /// Builds a matrix from rows (all rows must have equal length).
  static Result<Matrix> FromRows(const std::vector<std::vector<double>>& rows);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// `y = A * x`. Requires `x.size() == A.cols()`.
std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x);

/// `y = A^T * x`. Requires `x.size() == A.rows()`.
std::vector<double> MatTVec(const Matrix& a, const std::vector<double>& x);

/// `C = A * B`. Requires `a.cols() == b.rows()`.
Matrix MatMul(const Matrix& a, const Matrix& b);

/// Gram matrix `A^T * A` (symmetric, computed in one pass).
Matrix Gram(const Matrix& a);

/// Dot product; requires equal sizes.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double Norm2(const std::vector<double>& v);

/// `y += alpha * x` in place.
void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y);

/// Squared Euclidean distance between two equal-length buffers.
///
/// Register-blocked: the inner loop runs four independent accumulator
/// chains over the dimension axis with a fixed reduction order, so
/// repeated calls on the same buffers are bitwise reproducible. On hosts
/// with AVX2 (x86) or NEON (aarch64) a guarded vector kernel is selected
/// once at first call; it performs the scalar kernel's exact operation
/// sequence — separate subtract/multiply/add per 4-wide block (never
/// fused into FMA) and the same ((s0+s1)+(s2+s3))+tail reduction — so
/// dispatch never changes a single result bit (linalg_test asserts this).
double SquaredDistance(const double* a, const double* b, size_t n);

/// The portable reference kernel SquaredDistance's vector paths must match
/// bitwise. Exposed for the equivalence tests.
double SquaredDistanceScalar(const double* a, const double* b, size_t n);

/// Which kernel SquaredDistance resolved to on this host:
/// "avx2", "neon", or "scalar".
const char* SquaredDistanceKernel();

/// \brief Nearest-centroid labels for a contiguous row block — the batch
/// assignment kernel shared by k-means and DBSCAN template assignment.
///
/// `rows` is a row-major `n x centroids.cols()` block. Rows are processed
/// four at a time so each centroid row streams through cache once per
/// block; every (row, centroid) distance goes through SquaredDistance's
/// 4-wide kernel with its fixed reduction order, so labels are bitwise
/// identical to a naive per-row scan.
void NearestCentroids(const double* rows, size_t n, const Matrix& centroids,
                      int* labels);

/// \brief Cholesky factorization/solve for symmetric positive-definite
/// systems. Used by Ridge regression (`(X^T X + aI) w = X^T y`).
class CholeskySolver {
 public:
  /// Factorizes SPD matrix `a` (lower triangular). Fails with
  /// FailedPrecondition if `a` is not positive definite.
  static Result<CholeskySolver> Factor(const Matrix& a);

  /// Solves `A x = b` using the stored factor.
  Result<std::vector<double>> Solve(const std::vector<double>& b) const;

 private:
  explicit CholeskySolver(Matrix l) : l_(std::move(l)) {}
  Matrix l_;  // lower-triangular factor
};

}  // namespace wmp::ml

#endif  // WMP_ML_LINALG_H_
