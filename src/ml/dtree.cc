#include "ml/dtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "ml/compiled_tree.h"
#include "ml/tree_grower.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace wmp::ml {

namespace {

// Work item for iterative (stack-based) reference tree construction.
struct BuildItem {
  int node = 0;
  size_t begin = 0;  // range into the shared index buffer
  size_t end = 0;
  int depth = 0;
};

struct BinStats {
  double sum = 0.0;
  uint32_t count = 0;
};

}  // namespace

Status RegressionTree::Fit(const std::vector<uint16_t>& bins,
                           size_t num_features, const FeatureBinner& binner,
                           const std::vector<double>& y,
                           const std::vector<uint32_t>& row_indices,
                           const TreeOptions& options, Rng* rng) {
  if (row_indices.empty()) {
    return Status::InvalidArgument("RegressionTree::Fit with no rows");
  }
  if (num_features == 0 || bins.size() % num_features != 0) {
    return Status::InvalidArgument("RegressionTree::Fit bad bin buffer");
  }
  nodes_.clear();
  nodes_.push_back({});

  std::vector<uint32_t> idx = row_indices;  // partitioned in place
  std::vector<BuildItem> stack;
  stack.push_back({0, 0, idx.size(), 0});

  const size_t feat_per_split =
      options.feature_fraction <= 0.0
          ? num_features
          : std::max<size_t>(
                1, static_cast<size_t>(
                       std::ceil(options.feature_fraction *
                                 static_cast<double>(num_features))));
  std::vector<size_t> feature_order(num_features);
  std::iota(feature_order.begin(), feature_order.end(), 0);

  while (!stack.empty()) {
    BuildItem item = stack.back();
    stack.pop_back();
    const size_t n_node = item.end - item.begin;

    double sum = 0.0, sum2 = 0.0;
    for (size_t i = item.begin; i < item.end; ++i) {
      const double v = y[idx[i]];
      sum += v;
      sum2 += v * v;
    }
    const double node_mean = sum / static_cast<double>(n_node);
    TreeNode& node = nodes_[static_cast<size_t>(item.node)];
    node.value = node_mean;

    const double node_sse = sum2 - sum * sum / static_cast<double>(n_node);
    const bool can_split =
        item.depth < options.max_depth &&
        n_node >= static_cast<size_t>(options.min_samples_split) &&
        node_sse > 1e-12;
    if (!can_split) continue;

    // Sample the features examined at this node (random forests).
    if (feat_per_split < num_features) rng->Shuffle(&feature_order);

    double best_gain = 0.0;
    size_t best_feature = 0;
    uint16_t best_bin = 0;
    for (size_t fi = 0; fi < feat_per_split; ++fi) {
      const size_t f = feature_order[fi];
      const size_t nbins = binner.NumBins(f);
      if (nbins < 2) continue;
      std::vector<BinStats> hist(nbins);
      for (size_t i = item.begin; i < item.end; ++i) {
        const uint32_t r = idx[i];
        BinStats& b = hist[bins[r * num_features + f]];
        b.sum += y[r];
        ++b.count;
      }
      double left_sum = 0.0;
      uint32_t left_count = 0;
      for (size_t b = 0; b + 1 < nbins; ++b) {
        left_sum += hist[b].sum;
        left_count += hist[b].count;
        const uint32_t right_count =
            static_cast<uint32_t>(n_node) - left_count;
        if (left_count < static_cast<uint32_t>(options.min_samples_leaf) ||
            right_count < static_cast<uint32_t>(options.min_samples_leaf)) {
          continue;
        }
        if (left_count == 0 || right_count == 0) continue;
        const double right_sum = sum - left_sum;
        // Variance-reduction gain, constant terms dropped:
        // gain = SL^2/nL + SR^2/nR - S^2/n
        const double gain = left_sum * left_sum / left_count +
                            right_sum * right_sum / right_count -
                            sum * sum / static_cast<double>(n_node);
        if (gain > best_gain + 1e-12) {
          best_gain = gain;
          best_feature = f;
          best_bin = static_cast<uint16_t>(b);
        }
      }
    }
    if (best_gain <= 0.0) continue;

    // Partition rows of this node in place around the chosen split.
    auto mid_it = std::partition(
        idx.begin() + static_cast<std::ptrdiff_t>(item.begin),
        idx.begin() + static_cast<std::ptrdiff_t>(item.end),
        [&](uint32_t r) {
          return bins[r * num_features + best_feature] <= best_bin;
        });
    const size_t mid =
        static_cast<size_t>(mid_it - idx.begin());
    if (mid == item.begin || mid == item.end) continue;  // degenerate

    // push_back may reallocate, so finish all writes through the index
    // rather than the `node` reference.
    const int left_id = static_cast<int>(nodes_.size());
    const int right_id = left_id + 1;
    nodes_.push_back({});
    nodes_.push_back({});
    TreeNode& split_node = nodes_[static_cast<size_t>(item.node)];
    split_node.feature = static_cast<int>(best_feature);
    split_node.threshold = binner.UpperEdge(best_feature, best_bin);
    split_node.left = left_id;
    split_node.right = right_id;
    stack.push_back({right_id, mid, item.end, item.depth + 1});
    stack.push_back({left_id, item.begin, mid, item.depth + 1});
  }
  return Status::OK();
}

RegressionTree RegressionTree::FromNodes(std::vector<TreeNode> nodes) {
  RegressionTree t;
  t.nodes_ = std::move(nodes);
  return t;
}

double RegressionTree::Predict(const std::vector<double>& x) const {
  return Predict(x.data(), x.size());
}

double RegressionTree::Predict(const double* x, size_t n) const {
  int i = 0;
  while (nodes_[static_cast<size_t>(i)].feature >= 0) {
    const TreeNode& node = nodes_[static_cast<size_t>(i)];
    if (static_cast<size_t>(node.feature) >= n) return node.value;
    i = x[static_cast<size_t>(node.feature)] <= node.threshold ? node.left
                                                               : node.right;
  }
  return nodes_[static_cast<size_t>(i)].value;
}

void RegressionTree::Serialize(BinaryWriter* writer) const {
  writer->WriteU64(nodes_.size());
  for (const TreeNode& n : nodes_) {
    writer->WriteI64(n.feature);
    writer->WriteDouble(n.threshold);
    writer->WriteI64(n.left);
    writer->WriteI64(n.right);
    writer->WriteDouble(n.value);
  }
}

Result<RegressionTree> RegressionTree::Deserialize(BinaryReader* reader) {
  WMP_ASSIGN_OR_RETURN(uint64_t n, reader->ReadU64());
  RegressionTree t;
  t.nodes_.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    TreeNode& node = t.nodes_[i];
    WMP_ASSIGN_OR_RETURN(int64_t f, reader->ReadI64());
    node.feature = static_cast<int>(f);
    WMP_ASSIGN_OR_RETURN(node.threshold, reader->ReadDouble());
    WMP_ASSIGN_OR_RETURN(int64_t l, reader->ReadI64());
    node.left = static_cast<int>(l);
    WMP_ASSIGN_OR_RETURN(int64_t r, reader->ReadI64());
    node.right = static_cast<int>(r);
    WMP_ASSIGN_OR_RETURN(node.value, reader->ReadDouble());
  }
  return t;
}

Status DecisionTreeRegressor::Fit(const Matrix& x,
                                  const std::vector<double>& y) {
  if (x.rows() == 0) return Status::InvalidArgument("DT::Fit on empty matrix");
  if (y.size() != x.rows()) {
    return Status::InvalidArgument("DT::Fit target size mismatch");
  }
  if (options_.tree.growth == TreeGrowth::kReference) {
    fit_timing_ = {};
    Stopwatch sw;
    FeatureBinner binner;
    WMP_RETURN_IF_ERROR(binner.Fit(x, options_.tree.max_bins));
    WMP_ASSIGN_OR_RETURN(std::vector<uint16_t> bins, binner.BinAll(x));
    fit_timing_.bin_ms = sw.ElapsedMillis();
    sw.Reset();
    std::vector<uint32_t> rows(x.rows());
    std::iota(rows.begin(), rows.end(), 0);
    Rng rng(options_.seed);
    WMP_RETURN_IF_ERROR(
        tree_.Fit(bins, x.cols(), binner, y, rows, options_.tree, &rng));
    fit_timing_.grow_ms = sw.ElapsedMillis();
    grower_stats_ = {};
    return Status::OK();
  }
  Stopwatch sw;
  WMP_ASSIGN_OR_RETURN(BinnedDataset data,
                       BinnedDataset::Build(x, options_.tree.max_bins));
  const double bin_ms = sw.ElapsedMillis();
  WMP_RETURN_IF_ERROR(FitFromBinned(data, y));
  fit_timing_.bin_ms = bin_ms;  // FitFromBinned reset it to 0 (shared bins)
  return Status::OK();
}

Status DecisionTreeRegressor::FitWithSharedBins(const Matrix& x,
                                                const std::vector<double>& y,
                                                BinnedDatasetCache* cache) {
  if (cache == nullptr || options_.tree.growth != TreeGrowth::kHistogram ||
      x.rows() == 0 || x.cols() == 0 || y.size() != x.rows()) {
    return Fit(x, y);
  }
  WMP_ASSIGN_OR_RETURN(const BinnedDataset* data,
                       cache->Get(x, options_.tree.max_bins));
  return FitFromBinned(*data, y);
}

Status DecisionTreeRegressor::FitFromBinned(const BinnedDataset& data,
                                            const std::vector<double>& y) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("DT::FitFromBinned on empty dataset");
  }
  if (y.size() != data.num_rows()) {
    return Status::InvalidArgument("DT::FitFromBinned target size mismatch");
  }
  if (options_.tree.growth == TreeGrowth::kReference) {
    return Status::InvalidArgument(
        "FitFromBinned requires histogram growth mode");
  }
  fit_timing_ = {};
  Stopwatch sw;
  std::vector<uint32_t> rows(data.num_rows());
  std::iota(rows.begin(), rows.end(), 0);
  Rng rng(options_.seed);
  VarianceTreeGrower grower(data, y, options_.tree);
  std::vector<TreeNode> nodes;
  WMP_RETURN_IF_ERROR(grower.Grow(rows, &rng, &nodes));
  tree_ = RegressionTree::FromNodes(std::move(nodes));
  fit_timing_.grow_ms = sw.ElapsedMillis();
  grower_stats_ = grower.stats();
  return Status::OK();
}

Result<double> DecisionTreeRegressor::PredictOne(
    const std::vector<double>& x) const {
  if (!tree_.fitted()) return Status::FailedPrecondition("DT not fitted");
  return tree_.Predict(x);
}

Result<std::vector<double>> DecisionTreeRegressor::Predict(
    const Matrix& x) const {
  if (!tree_.fitted()) return Status::FailedPrecondition("DT not fitted");
  std::vector<double> out(x.rows());
  util::ParallelFor(x.rows(), kTreePredictGrain, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      out[i] = tree_.Predict(x.RowPtr(i), x.cols());
    }
  });
  return out;
}

// The stream body is the compiled bin-space form (ml/compiled_tree.h):
// one shared edge table plus ~7 bytes per node instead of five 8-byte
// fields. Decompile() restores the exact thresholds and topology, so the
// codec change is invisible to predictions.
Status DecisionTreeRegressor::Serialize(BinaryWriter* writer) const {
  if (!tree_.fitted()) return Status::FailedPrecondition("DT not fitted");
  writer->WriteU32(serialize_tags::kDecisionTree);
  WMP_ASSIGN_OR_RETURN(
      CompiledEnsemble compiled,
      CompiledEnsemble::Compile(*this, CompileOptions{.lut_levels = 0}));
  compiled.Serialize(writer);
  return Status::OK();
}

Result<std::unique_ptr<DecisionTreeRegressor>> DecisionTreeRegressor::Deserialize(
    BinaryReader* reader) {
  WMP_ASSIGN_OR_RETURN(uint32_t tag, reader->ReadU32());
  if (tag != serialize_tags::kDecisionTree) {
    return Status::InvalidArgument("bad decision-tree magic tag");
  }
  WMP_ASSIGN_OR_RETURN(
      CompiledEnsemble compiled,
      CompiledEnsemble::Deserialize(reader, CompileOptions{.lut_levels = 0}));
  if (compiled.combine() != CompiledEnsemble::Combine::kSingle ||
      compiled.num_trees() != 1) {
    return Status::InvalidArgument("stream is not a single decision tree");
  }
  WMP_ASSIGN_OR_RETURN(std::vector<RegressionTree> trees,
                       compiled.Decompile());
  auto model = std::make_unique<DecisionTreeRegressor>();
  model->tree_ = std::move(trees.front());
  return model;
}

}  // namespace wmp::ml
