#ifndef WMP_ML_TREE_GROWER_H_
#define WMP_ML_TREE_GROWER_H_

/// \file tree_grower.h
/// Allocation-free histogram tree growth shared by DT, RF, and GBT.
///
/// Both growers walk a DFS stack over a BinnedDataset and use the classic
/// histogram-subtraction trick: at every split only the smaller child's
/// histogram is built by scanning rows; the larger sibling is derived in
/// place as `parent - smaller`, cutting per-level build work from
/// O(n_node) rows to O(min(n_left, n_right)). Histogram builds are a
/// single pass over the node's rows — one target/gradient gather and one
/// contiguous (u8) bin line per row updates every examined feature's
/// segment — while split partitions read the one split feature through its
/// feature-major column. Histogram buffers come from a depth-bounded
/// HistogramPool (one live slot per pending node), so steady-state growth
/// performs zero per-node heap allocations.
///
/// A grower is constructed once per ensemble and its Grow() is called once
/// per tree: the row-index buffer, DFS stack, histogram pool, and node
/// scratch all retain their capacity across calls.

#include <cstdint>
#include <vector>

#include "ml/binned.h"
#include "ml/dtree.h"
#include "util/random.h"

namespace wmp::ml {

/// \brief Variance-reduction tree growth (DecisionTree / RandomForest).
///
/// Split decisions replicate RegressionTree::Fit exactly — same node order,
/// same RNG consumption for per-node feature sampling, same gain formula and
/// tie epsilon — so a grown tree matches the reference builder up to the
/// floating-point noise of histogram subtraction (within 1e-9 on
/// predictions; asserted by the equivalence suite).
///
/// When every feature is examined at every split (DT), nodes inherit their
/// histogram from the parent via sibling subtraction. With per-node feature
/// sampling (RF), the engine instead direct-builds just the sampled
/// features' histograms into one recycled scratch buffer: subtraction would
/// need full-width histograms (children sample different features than the
/// parent), costing more than the 'feature_fraction' of direct work it
/// saves — and, worse, any last-ulp gain tie it flipped would change the
/// per-node Shuffle count and desynchronize the forest's RNG stream. The
/// direct build accumulates in the reference order, so sampled-mode trees
/// are bitwise identical to the reference builder's.
class VarianceTreeGrower {
 public:
  /// `data` and `y` must outlive the grower; `y` has one target per dataset
  /// row.
  VarianceTreeGrower(const BinnedDataset& data, const std::vector<double>& y,
                     const TreeOptions& options);

  /// Grows one tree over `rows` (bootstrap samples may repeat ids). The
  /// node array is written into `*nodes`, which callers should reuse across
  /// trees to keep growth allocation-free.
  Status Grow(const std::vector<uint32_t>& rows, Rng* rng,
              std::vector<TreeNode>* nodes);

  TreeGrowerStats stats() const;

 private:
  struct VarBin {
    double sum = 0.0;
    uint32_t count = 0;
  };
  struct Item {
    int node = 0;
    size_t begin = 0;
    size_t end = 0;
    int depth = 0;
    int slot = -1;  ///< pool slot holding this node's histogram
  };
  struct SegRef {
    VarBin* seg = nullptr;  ///< feature's segment inside the flat histogram
    uint32_t feature = 0;   ///< offset into the row's bin line
  };

  void BuildHistogram(size_t begin, size_t end, VarBin* hist,
                      const size_t* features, size_t num_features);

  const BinnedDataset& data_;
  const std::vector<double>& y_;
  const TreeOptions& options_;
  size_t feat_per_split_ = 0;
  bool subtract_ = true;  ///< sibling subtraction; off under feature sampling
  std::vector<size_t> feature_order_;
  std::vector<uint32_t> idx_;
  std::vector<Item> stack_;
  std::vector<SegRef> seg_;  ///< per-build segment table (reused scratch)
  HistogramPool<VarBin> pool_;
  TreeGrowerStats stats_;
};

/// First/second-order gradient statistics of one row (squared-error loss:
/// g = pred - y, h = 1).
struct GradHess {
  double g = 0.0;
  double h = 0.0;
};

/// The slice of GbtOptions the grower needs (kept free of gbt.h so the
/// grower layer has no dependency on the booster).
struct GbtGrowParams {
  int max_depth = 6;
  double lambda = 1.0;
  double gamma = 0.0;
  double min_child_weight = 1.0;
};

/// \brief Gradient tree growth for the booster.
///
/// Mirrors the reference GbtTreeBuilder decision-for-decision (same gain,
/// child stats carried through the stack, same degenerate-split handling).
/// Additionally records what the booster's per-round update needs:
///  * leaf ranges over the partitioned row buffer, so in-sample predictions
///    update by leaf-membership scatter instead of re-traversing raw
///    features, and
///  * per-node split bins, so out-of-sample rows traverse in bin space
///    (`bin <= split_bin` is exactly `value <= threshold` for binned rows).
class GbtTreeGrower {
 public:
  struct LeafRange {
    int node = 0;
    size_t begin = 0;  ///< range into row_order()
    size_t end = 0;
  };

  /// `data` must outlive the grower.
  explicit GbtTreeGrower(const BinnedDataset& data, const GbtGrowParams& params);

  /// Grows one tree on gradient statistics `gh` (one entry per dataset row)
  /// over the sampled `rows`, examining only `features` (the per-round
  /// column subsample; order defines the gain-scan order). Histogram work
  /// touches only the sampled features' segments.
  Status Grow(const std::vector<GradHess>& gh,
              const std::vector<uint32_t>& rows,
              const std::vector<size_t>& features, std::vector<TreeNode>* nodes);

  /// Sampled rows grouped by leaf after Grow(); ranges index row_order().
  const std::vector<LeafRange>& leaf_ranges() const { return leaf_ranges_; }
  const std::vector<uint32_t>& row_order() const { return idx_; }

  /// Bin-space traversal of the grown tree for dataset row `row` — used for
  /// out-of-sample rows, whose leaf assignment matches raw-feature traversal
  /// exactly (bin/threshold equivalence).
  double PredictRow(const std::vector<TreeNode>& nodes, uint32_t row) const;

  TreeGrowerStats stats() const;

 private:
  struct Item {
    int node = 0;
    size_t begin = 0;
    size_t end = 0;
    int depth = 0;
    int slot = -1;
    double g_sum = 0.0;
    double h_sum = 0.0;
  };

  void BuildHistogram(const std::vector<GradHess>& gh,
                      const std::vector<size_t>& features, size_t begin,
                      size_t end, GradHess* hist);

  struct SegRef {
    GradHess* seg = nullptr;  ///< feature's segment inside the flat histogram
    uint32_t feature = 0;     ///< offset into the row's bin line
  };

  const BinnedDataset& data_;
  const GbtGrowParams params_;
  std::vector<uint32_t> idx_;
  std::vector<Item> stack_;
  std::vector<LeafRange> leaf_ranges_;
  std::vector<uint32_t> split_bins_;  ///< per node; valid for internal nodes
  std::vector<SegRef> seg_;  ///< per-build segment table (reused scratch)
  HistogramPool<GradHess> pool_;
  TreeGrowerStats stats_;
};

}  // namespace wmp::ml

#endif  // WMP_ML_TREE_GROWER_H_
