#include "ml/compiled_tree.h"

#include <algorithm>
#include <limits>
#include <type_traits>

#include "ml/gbt.h"
#include "ml/random_forest.h"
#include "util/parallel.h"

namespace wmp::ml {

namespace {

constexpr uint32_t kCompiledEnsembleTag = 0x574D5043;  // "WMPC"
constexpr uint8_t kCompiledEnsembleVersion = 1;

// Hard bounds keeping every index representable: global node indices and
// leaf references fit i32, feature indices fit u16, codes fit u16.
constexpr size_t kMaxNodes = (size_t{1} << 31) - 2;
constexpr size_t kMaxFeatures = 65536;
constexpr size_t kMaxEdgesPerFeature = 65535;

}  // namespace

Result<CompiledEnsemble> CompiledEnsemble::CompileTrees(
    const std::vector<const RegressionTree*>& trees, Combine combine,
    double base, double scale, const CompileOptions& opts) {
  if (trees.empty()) {
    return Status::FailedPrecondition("compile of an empty ensemble");
  }
  // Pass 1: the bin space. Collect the distinct thresholds every feature is
  // ever split on; their sorted order is the edge table, and each node's
  // double threshold becomes its exact index in that table. Built from the
  // ensemble itself, so deserialized models compile without the trainer's
  // FeatureBinner.
  size_t d = 0;
  size_t total_nodes = 0;
  for (const RegressionTree* tree : trees) {
    if (!tree->fitted()) {
      return Status::FailedPrecondition("compile of an unfitted tree");
    }
    total_nodes += tree->nodes().size();
    for (const TreeNode& nd : tree->nodes()) {
      if (nd.feature >= 0) {
        d = std::max(d, static_cast<size_t>(nd.feature) + 1);
      }
    }
  }
  if (total_nodes > kMaxNodes) {
    return Status::InvalidArgument("ensemble too large to compile");
  }
  if (d > kMaxFeatures) {
    return Status::InvalidArgument("feature index exceeds compiled range");
  }
  std::vector<std::vector<double>> edges(d);
  for (const RegressionTree* tree : trees) {
    for (const TreeNode& nd : tree->nodes()) {
      if (nd.feature >= 0) {
        edges[static_cast<size_t>(nd.feature)].push_back(nd.threshold);
      }
    }
  }
  size_t widest = 0;
  for (std::vector<double>& e : edges) {
    std::sort(e.begin(), e.end());
    e.erase(std::unique(e.begin(), e.end()), e.end());
    if (e.size() > kMaxEdgesPerFeature) {
      return Status::InvalidArgument("too many distinct thresholds");
    }
    widest = std::max(widest, e.size());
  }

  CompiledEnsemble c;
  c.combine_ = combine;
  c.base_ = base;
  c.scale_ = scale;
  c.d_ = static_cast<uint32_t>(d);
  c.narrow_ = widest <= 255;
  c.binner_ = FeatureBinner::FromEdges(std::move(edges));
  for (size_t f = 0; f < d; ++f) {
    if (c.binner_.NumBins(f) > 1) {
      c.used_features_.push_back(static_cast<uint16_t>(f));
    }
  }

  // Pass 2: BFS-flatten each tree. Processing nodes in discovery order
  // while appending both children together puts the root first and
  // siblings adjacent, so one i32 left-child offset encodes the pair.
  c.tree_counts_.reserve(trees.size());
  c.tree_base_.reserve(trees.size());
  c.node_feature_.reserve(total_nodes);
  c.child_.reserve(total_nodes);
  if (c.narrow_) {
    c.code8_.reserve(total_nodes);
  } else {
    c.code16_.reserve(total_nodes);
  }
  std::vector<int> order;  // original node ids, BFS
  for (const RegressionTree* tree : trees) {
    const std::vector<TreeNode>& nodes = tree->nodes();
    const size_t base = c.child_.size();
    c.tree_base_.push_back(static_cast<uint32_t>(base));
    order.clear();
    order.push_back(0);
    for (size_t pos = 0; pos < order.size(); ++pos) {
      if (order.size() > nodes.size()) {
        return Status::InvalidArgument("malformed tree: shared subtrees");
      }
      const TreeNode& nd = nodes[static_cast<size_t>(order[pos])];
      if (nd.feature < 0) {
        c.child_.push_back(
            -static_cast<int32_t>(c.leaf_value_.size()) - 1);
        c.leaf_value_.push_back(nd.value);
        c.node_feature_.push_back(0);
        if (c.narrow_) {
          c.code8_.push_back(0);
        } else {
          c.code16_.push_back(0);
        }
        continue;
      }
      if (nd.left < 0 || nd.right < 0 ||
          static_cast<size_t>(nd.left) >= nodes.size() ||
          static_cast<size_t>(nd.right) >= nodes.size()) {
        return Status::InvalidArgument("malformed tree: bad child index");
      }
      const size_t f = static_cast<size_t>(nd.feature);
      const uint16_t code = c.binner_.BinValue(f, nd.threshold);
      if (c.binner_.UpperEdge(f, code) != nd.threshold) {
        return Status::Internal("threshold lost its edge-table index");
      }
      c.child_.push_back(static_cast<int32_t>(base + order.size()));
      order.push_back(nd.left);
      order.push_back(nd.right);
      c.node_feature_.push_back(static_cast<uint16_t>(f));
      if (c.narrow_) {
        c.code8_.push_back(static_cast<uint8_t>(code));
      } else {
        c.code16_.push_back(code);
      }
    }
    c.tree_counts_.push_back(static_cast<uint32_t>(c.child_.size() - base));
  }
  WMP_RETURN_IF_ERROR(c.BuildLut(opts.lut_levels));
  return c;
}

Result<CompiledEnsemble> CompiledEnsemble::Compile(
    const DecisionTreeRegressor& model, const CompileOptions& opts) {
  return CompileTrees({&model.tree()}, Combine::kSingle, 0.0, 1.0, opts);
}

Result<CompiledEnsemble> CompiledEnsemble::Compile(
    const RandomForestRegressor& model, const CompileOptions& opts) {
  std::vector<const RegressionTree*> trees;
  trees.reserve(model.trees().size());
  for (const RegressionTree& t : model.trees()) trees.push_back(&t);
  return CompileTrees(trees, Combine::kAverage, 0.0, 1.0, opts);
}

Result<CompiledEnsemble> CompiledEnsemble::Compile(const GbtRegressor& model,
                                                   const CompileOptions& opts) {
  std::vector<const RegressionTree*> trees;
  trees.reserve(model.trees().size());
  for (const RegressionTree& t : model.trees()) trees.push_back(&t);
  return CompileTrees(trees, Combine::kBoosted, model.base_score(),
                      model.options().learning_rate, opts);
}

Result<CompiledEnsemble> CompiledEnsemble::CompileRegressor(
    const Regressor& model, const CompileOptions& opts) {
  if (const auto* dt = dynamic_cast<const DecisionTreeRegressor*>(&model)) {
    return Compile(*dt, opts);
  }
  if (const auto* rf = dynamic_cast<const RandomForestRegressor*>(&model)) {
    return Compile(*rf, opts);
  }
  if (const auto* gbt = dynamic_cast<const GbtRegressor*>(&model)) {
    return Compile(*gbt, opts);
  }
  return Status::FailedPrecondition("not a tree-family regressor");
}

Status CompiledEnsemble::BuildLut(int levels) {
  lut_levels_ = 0;
  lut_feature_.clear();
  lut_code8_.clear();
  lut_code16_.clear();
  lut_exit_.clear();
  if (levels <= 0 || d_ == 0) return Status::OK();  // all-leaf ensembles
  if (levels > 16) return Status::InvalidArgument("lut_levels > 16");
  const size_t num_trees = tree_counts_.size();
  const size_t tests = (size_t{1} << levels) - 1;
  const size_t exits = tests + 1;
  lut_feature_.assign(num_trees * tests, 0);
  if (narrow_) {
    lut_code8_.assign(num_trees * tests, 0);
  } else {
    lut_code16_.assign(num_trees * tests, 0);
  }
  lut_exit_.assign(num_trees * exits, 0);
  const uint32_t dummy_code = narrow_ ? 255u : 65535u;
  // Any used feature works for the dummy always-left tests (`code <= max`
  // holds for every code), but an unused one would read an unbinned slot.
  const uint16_t dummy_feature = used_features_.front();
  const auto put_code = [&](size_t idx, uint32_t code) {
    if (narrow_) {
      lut_code8_[idx] = static_cast<uint8_t>(code);
    } else {
      lut_code16_[idx] = static_cast<uint16_t>(code);
    }
  };
  std::vector<uint32_t> cur, next;
  for (size_t t = 0; t < num_trees; ++t) {
    cur.assign(1, tree_base_[t]);
    for (int l = 0; l < levels; ++l) {
      next.assign(cur.size() * 2, 0);
      for (size_t s = 0; s < cur.size(); ++s) {
        const size_t j = t * tests + ((size_t{1} << l) - 1) + s;
        const uint32_t node = cur[s];
        if (child_[node] >= 0) {
          lut_feature_[j] = node_feature_[node];
          put_code(j, narrow_ ? code8_[node] : code16_[node]);
          next[2 * s] = static_cast<uint32_t>(child_[node]);
          next[2 * s + 1] = static_cast<uint32_t>(child_[node]) + 1;
        } else {
          // Leaf above depth L: pad with an always-left test and carry the
          // leaf down; the unreachable right subtree carries it too.
          lut_feature_[j] = dummy_feature;
          put_code(j, dummy_code);
          next[2 * s] = node;
          next[2 * s + 1] = node;
        }
      }
      cur.swap(next);
    }
    for (size_t s = 0; s < exits; ++s) lut_exit_[t * exits + s] = cur[s];
  }
  lut_levels_ = levels;
  return Status::OK();
}

template <typename Code>
double CompiledEnsemble::TraverseTree(size_t t, const Code* codes,
                                      const Code* node_code,
                                      const Code* lut_code) const {
  uint32_t i;
  if (lut_levels_ > 0) {
    // Unrolled top levels: complete-tree stepping, no dependent child
    // loads — the next test's index is pure arithmetic on the previous
    // compare.
    const size_t tests = (size_t{1} << lut_levels_) - 1;
    const uint16_t* lf = lut_feature_.data() + t * tests;
    const Code* lc = lut_code + t * tests;
    size_t j = 0;
    for (int l = 0; l < lut_levels_; ++l) {
      j = 2 * j + 1 + (codes[lf[j]] > lc[j] ? 1u : 0u);
    }
    i = lut_exit_[t * (tests + 1) + (j - tests)];
  } else {
    i = tree_base_[t];
  }
  int32_t ch;
  while ((ch = child_[i]) >= 0) {
    // Siblings are adjacent: +0 goes left (code <= threshold code), +1
    // goes right. One integer compare, no float math, no second pointer.
    i = static_cast<uint32_t>(ch) +
        (codes[node_feature_[i]] > node_code[i] ? 1u : 0u);
  }
  return leaf_value_[static_cast<size_t>(-(ch + 1))];
}

template <typename Code>
void CompiledEnsemble::PredictBlockT(const Code* codes, size_t begin,
                                     size_t end, double* out) const {
  const Code* node_code;
  const Code* lut_code;
  if constexpr (std::is_same_v<Code, uint8_t>) {
    node_code = code8_.data();
    lut_code = lut_code8_.data();
  } else {
    node_code = code16_.data();
    lut_code = lut_code16_.data();
  }
  const size_t num_trees = tree_counts_.size();
  for (size_t i = begin; i < end; ++i) {
    const Code* rc = codes + i * d_;
    // Accumulation mirrors the reference family loops exactly: DT takes
    // the lone leaf, RF sums in tree order then divides once, GBT starts
    // at the base score and adds scale * leaf per round.
    double acc;
    if (combine_ == Combine::kBoosted) {
      acc = base_;
      for (size_t t = 0; t < num_trees; ++t) {
        acc += scale_ * TraverseTree(t, rc, node_code, lut_code);
      }
    } else {
      acc = 0.0;
      for (size_t t = 0; t < num_trees; ++t) {
        acc += TraverseTree(t, rc, node_code, lut_code);
      }
      if (combine_ == Combine::kAverage) {
        acc /= static_cast<double>(num_trees);
      }
    }
    out[i] = acc;
  }
}

template <typename Code>
double CompiledEnsemble::PredictRowT(const double* x) const {
  thread_local std::vector<Code> codes;
  if (codes.size() < d_) codes.resize(d_);
  for (uint16_t f : used_features_) {
    codes[f] = static_cast<Code>(binner_.BinValue(f, x[f]));
  }
  double out;
  PredictBlockT<Code>(codes.data(), 0, 1, &out);
  return out;
}

double CompiledEnsemble::PredictRow(const double* x, size_t /*n*/) const {
  return narrow_ ? PredictRowT<uint8_t>(x) : PredictRowT<uint16_t>(x);
}

Result<double> CompiledEnsemble::PredictOne(const std::vector<double>& x) const {
  if (tree_counts_.empty()) {
    return Status::FailedPrecondition("ensemble not compiled");
  }
  if (x.size() < d_) {
    return Status::InvalidArgument("row narrower than the compiled ensemble");
  }
  return PredictRow(x.data(), x.size());
}

Result<std::vector<double>> CompiledEnsemble::Predict(const Matrix& x) const {
  if (tree_counts_.empty()) {
    return Status::FailedPrecondition("ensemble not compiled");
  }
  if (x.cols() < d_) {
    return Status::InvalidArgument("matrix narrower than the compiled ensemble");
  }
  const size_t n = x.rows();
  std::vector<double> out(n);
  if (n == 0) return out;
  // Bin once per used feature — strided multi-probe searches down each
  // column — then traverse row blocks on the worker pool with the same
  // grain as the reference batch Predict.
  if (narrow_) {
    std::vector<uint8_t> codes(n * d_, 0);
    for (uint16_t f : used_features_) {
      binner_.BinColumn(f, x.data().data() + f, n, x.cols(), codes.data() + f,
                        d_);
    }
    util::ParallelFor(n, kTreePredictGrain, [&](size_t begin, size_t end) {
      PredictBlockT<uint8_t>(codes.data(), begin, end, out.data());
    });
  } else {
    std::vector<uint16_t> codes(n * d_, 0);
    for (uint16_t f : used_features_) {
      binner_.BinColumn(f, x.data().data() + f, n, x.cols(), codes.data() + f,
                        d_);
    }
    util::ParallelFor(n, kTreePredictGrain, [&](size_t begin, size_t end) {
      PredictBlockT<uint16_t>(codes.data(), begin, end, out.data());
    });
  }
  return out;
}

Result<std::vector<RegressionTree>> CompiledEnsemble::Decompile() const {
  std::vector<RegressionTree> trees;
  trees.reserve(tree_counts_.size());
  for (size_t t = 0; t < tree_counts_.size(); ++t) {
    const size_t base = tree_base_[t];
    const size_t count = tree_counts_[t];
    std::vector<TreeNode> nodes(count);
    for (size_t i = 0; i < count; ++i) {
      const size_t g = base + i;
      TreeNode& nd = nodes[i];
      const int32_t ch = child_[g];
      if (ch < 0) {
        nd.value = leaf_value_[static_cast<size_t>(-(ch + 1))];
        continue;
      }
      const size_t local = static_cast<size_t>(ch) - base;
      if (static_cast<size_t>(ch) < base || local + 1 >= count) {
        return Status::Internal("compiled child outside its tree block");
      }
      nd.feature = node_feature_[g];
      const uint32_t code = narrow_ ? code8_[g] : code16_[g];
      nd.threshold = binner_.UpperEdge(static_cast<size_t>(nd.feature), code);
      nd.left = static_cast<int>(local);
      nd.right = static_cast<int>(local) + 1;
    }
    trees.push_back(RegressionTree::FromNodes(std::move(nodes)));
  }
  return trees;
}

void CompiledEnsemble::Serialize(BinaryWriter* writer) const {
  writer->WriteU32(kCompiledEnsembleTag);
  writer->WriteU8(kCompiledEnsembleVersion);
  writer->WriteU8(static_cast<uint8_t>(combine_));
  writer->WriteU8(narrow_ ? 1 : 0);
  writer->WriteDouble(base_);
  writer->WriteDouble(scale_);
  writer->WriteU32(d_);
  writer->WriteU32(static_cast<uint32_t>(tree_counts_.size()));
  for (uint32_t count : tree_counts_) writer->WriteU32(count);
  for (size_t f = 0; f < d_; ++f) {
    const size_t ne = binner_.NumBins(f) - 1;
    writer->WriteU32(static_cast<uint32_t>(ne));
    for (size_t e = 0; e < ne; ++e) {
      writer->WriteDouble(binner_.UpperEdge(f, e));
    }
  }
  writer->WriteU64(child_.size());
  writer->WriteU64(leaf_value_.size());
  for (int32_t ch : child_) writer->WriteU32(static_cast<uint32_t>(ch));
  for (size_t i = 0; i < child_.size(); ++i) {
    if (child_[i] < 0) continue;  // leaves carry no test
    writer->WriteU16(node_feature_[i]);
    if (narrow_) {
      writer->WriteU8(code8_[i]);
    } else {
      writer->WriteU16(code16_[i]);
    }
  }
  for (double v : leaf_value_) writer->WriteDouble(v);
}

size_t CompiledEnsemble::SerializedBytes() const {
  BinaryWriter writer;
  Serialize(&writer);
  return writer.size();
}

Result<CompiledEnsemble> CompiledEnsemble::Deserialize(
    BinaryReader* reader, const CompileOptions& opts) {
  WMP_ASSIGN_OR_RETURN(uint32_t tag, reader->ReadU32());
  if (tag != kCompiledEnsembleTag) {
    return Status::InvalidArgument("bad compiled-ensemble magic tag");
  }
  WMP_ASSIGN_OR_RETURN(uint8_t version, reader->ReadU8());
  if (version != kCompiledEnsembleVersion) {
    return Status::InvalidArgument("unsupported compiled-ensemble version");
  }
  CompiledEnsemble c;
  WMP_ASSIGN_OR_RETURN(uint8_t combine, reader->ReadU8());
  if (combine > static_cast<uint8_t>(Combine::kBoosted)) {
    return Status::InvalidArgument("bad combine mode");
  }
  c.combine_ = static_cast<Combine>(combine);
  WMP_ASSIGN_OR_RETURN(uint8_t narrow, reader->ReadU8());
  c.narrow_ = narrow != 0;
  WMP_ASSIGN_OR_RETURN(c.base_, reader->ReadDouble());
  WMP_ASSIGN_OR_RETURN(c.scale_, reader->ReadDouble());
  WMP_ASSIGN_OR_RETURN(c.d_, reader->ReadU32());
  if (c.d_ > kMaxFeatures) {
    return Status::InvalidArgument("compiled feature count out of range");
  }
  WMP_ASSIGN_OR_RETURN(uint32_t num_trees, reader->ReadU32());
  if (num_trees == 0 ||
      static_cast<size_t>(num_trees) * 4 > reader->remaining()) {
    return Status::InvalidArgument("compiled tree count out of range");
  }
  c.tree_counts_.resize(num_trees);
  c.tree_base_.resize(num_trees);
  uint64_t running = 0;
  for (uint32_t t = 0; t < num_trees; ++t) {
    WMP_ASSIGN_OR_RETURN(c.tree_counts_[t], reader->ReadU32());
    if (c.tree_counts_[t] == 0) {
      return Status::InvalidArgument("compiled tree with no nodes");
    }
    c.tree_base_[t] = static_cast<uint32_t>(running);
    running += c.tree_counts_[t];
  }
  std::vector<std::vector<double>> edges(c.d_);
  size_t widest = 0;
  for (uint32_t f = 0; f < c.d_; ++f) {
    WMP_ASSIGN_OR_RETURN(uint32_t ne, reader->ReadU32());
    if (ne > kMaxEdgesPerFeature ||
        static_cast<size_t>(ne) * sizeof(double) > reader->remaining()) {
      return Status::InvalidArgument("compiled edge table out of range");
    }
    edges[f].resize(ne);
    for (uint32_t e = 0; e < ne; ++e) {
      WMP_ASSIGN_OR_RETURN(edges[f][e], reader->ReadDouble());
      if (e > 0 && edges[f][e] <= edges[f][e - 1]) {
        return Status::InvalidArgument("compiled edges not increasing");
      }
    }
    widest = std::max(widest, edges[f].size());
  }
  if (c.narrow_ != (widest <= 255)) {
    return Status::InvalidArgument("compiled code width mismatch");
  }
  WMP_ASSIGN_OR_RETURN(uint64_t total_nodes, reader->ReadU64());
  WMP_ASSIGN_OR_RETURN(uint64_t num_leaves, reader->ReadU64());
  if (total_nodes != running || total_nodes > kMaxNodes ||
      total_nodes * 4 > reader->remaining() || num_leaves > total_nodes) {
    return Status::InvalidArgument("compiled node counts out of range");
  }
  c.binner_ = FeatureBinner::FromEdges(std::move(edges));
  for (uint32_t f = 0; f < c.d_; ++f) {
    if (c.binner_.NumBins(f) > 1) c.used_features_.push_back(
        static_cast<uint16_t>(f));
  }
  c.child_.resize(total_nodes);
  for (uint64_t i = 0; i < total_nodes; ++i) {
    WMP_ASSIGN_OR_RETURN(uint32_t raw, reader->ReadU32());
    c.child_[i] = static_cast<int32_t>(raw);
  }
  // Validate the block structure: every internal child lands strictly
  // later inside its own tree block (guarantees traversal terminates),
  // every leaf reference is in range.
  {
    size_t t = 0;
    for (size_t i = 0; i < total_nodes; ++i) {
      while (t + 1 < c.tree_base_.size() && i >= c.tree_base_[t + 1]) ++t;
      const int32_t ch = c.child_[i];
      if (ch < 0) {
        if (static_cast<size_t>(-(ch + 1)) >= num_leaves) {
          return Status::InvalidArgument("compiled leaf index out of range");
        }
      } else {
        const size_t tree_end = c.tree_base_[t] + c.tree_counts_[t];
        if (static_cast<size_t>(ch) <= i ||
            static_cast<size_t>(ch) + 1 >= tree_end) {
          return Status::InvalidArgument("compiled child index out of range");
        }
      }
    }
  }
  c.node_feature_.assign(total_nodes, 0);
  if (c.narrow_) {
    c.code8_.assign(total_nodes, 0);
  } else {
    c.code16_.assign(total_nodes, 0);
  }
  for (uint64_t i = 0; i < total_nodes; ++i) {
    if (c.child_[i] < 0) continue;
    WMP_ASSIGN_OR_RETURN(uint16_t f, reader->ReadU16());
    if (f >= c.d_) {
      return Status::InvalidArgument("compiled feature index out of range");
    }
    c.node_feature_[i] = f;
    uint32_t code;
    if (c.narrow_) {
      WMP_ASSIGN_OR_RETURN(uint8_t c8, reader->ReadU8());
      code = c8;
      c.code8_[i] = c8;
    } else {
      WMP_ASSIGN_OR_RETURN(uint16_t c16, reader->ReadU16());
      code = c16;
      c.code16_[i] = c16;
    }
    if (code + 1 >= c.binner_.NumBins(f)) {
      return Status::InvalidArgument("compiled threshold code out of range");
    }
  }
  c.leaf_value_.resize(num_leaves);
  for (uint64_t i = 0; i < num_leaves; ++i) {
    WMP_ASSIGN_OR_RETURN(c.leaf_value_[i], reader->ReadDouble());
  }
  WMP_RETURN_IF_ERROR(c.BuildLut(opts.lut_levels));
  return c;
}

Result<size_t> PointerSerializedBytes(const Regressor& model) {
  BinaryWriter writer;
  if (const auto* dt = dynamic_cast<const DecisionTreeRegressor*>(&model)) {
    if (!dt->tree().fitted()) {
      return Status::FailedPrecondition("DT not fitted");
    }
    writer.WriteU32(serialize_tags::kDecisionTree);
    dt->tree().Serialize(&writer);
    return writer.size();
  }
  if (const auto* rf = dynamic_cast<const RandomForestRegressor*>(&model)) {
    if (rf->trees().empty()) return Status::FailedPrecondition("RF not fitted");
    writer.WriteU32(serialize_tags::kRandomForest);
    writer.WriteU64(rf->trees().size());
    for (const RegressionTree& t : rf->trees()) t.Serialize(&writer);
    return writer.size();
  }
  if (const auto* gbt = dynamic_cast<const GbtRegressor*>(&model)) {
    if (gbt->trees().empty()) {
      return Status::FailedPrecondition("GBT not fitted");
    }
    writer.WriteU32(serialize_tags::kGbt);
    writer.WriteDouble(gbt->options().learning_rate);
    writer.WriteDouble(gbt->base_score());
    writer.WriteU64(gbt->trees().size());
    for (const RegressionTree& t : gbt->trees()) t.Serialize(&writer);
    return writer.size();
  }
  return model.SerializedSize();
}

}  // namespace wmp::ml
