#include "ml/compiled_tree.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <type_traits>

#include "ml/gbt.h"
#include "ml/random_forest.h"
#include "util/parallel.h"

// AVX2 gather kernel: compiled whenever the compiler supports per-function
// target attributes on x86-64 and selected at runtime via cpuid — same
// pattern as linalg.cc's SquaredDistance dispatch.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define WMP_TRAVERSE_AVX2 1
#include <immintrin.h>
#else
#define WMP_TRAVERSE_AVX2 0
#endif

namespace wmp::ml {

namespace {

constexpr uint32_t kCompiledEnsembleTag = 0x574D5043;  // "WMPC"
constexpr uint8_t kCompiledEnsembleVersion = 1;

// Hard bounds keeping every index representable: global node indices and
// leaf references fit i32, feature indices fit u16, codes fit u16.
constexpr size_t kMaxNodes = (size_t{1} << 31) - 2;
constexpr size_t kMaxFeatures = 65536;
constexpr size_t kMaxEdgesPerFeature = 65535;

// Extra zero elements appended to the u8/u16 node/LUT arrays and the bin
// scratch so the AVX2 kernel's 4-byte-per-lane gathers stay in bounds when
// a lane sits on the last element (i32 fields gather exactly, doubles too).
constexpr size_t kGatherPad = 4;

TraverseKernel ParseTraverseKernelEnv() {
  const char* s = std::getenv("WMP_TRAVERSE_KERNEL");
  if (s == nullptr || *s == '\0') return TraverseKernel::kAuto;
  for (TraverseKernel k :
       {TraverseKernel::kScalar, TraverseKernel::kLockstep4,
        TraverseKernel::kLockstep8, TraverseKernel::kAvx2}) {
    if (std::strcmp(s, TraverseKernelName(k)) == 0) return k;
  }
  return TraverseKernel::kAuto;  // unknown value: fall through to the default
}

}  // namespace

const char* TraverseKernelName(TraverseKernel kernel) {
  switch (kernel) {
    case TraverseKernel::kAuto:
      return "auto";
    case TraverseKernel::kScalar:
      return "scalar";
    case TraverseKernel::kLockstep4:
      return "lockstep4";
    case TraverseKernel::kLockstep8:
      return "lockstep8";
    case TraverseKernel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

const char* TraverseKernelIdName(uint64_t id) {
  if (id == 0) return "reference";
  if (id <= static_cast<uint64_t>(TraverseKernel::kAvx2)) {
    return TraverseKernelName(static_cast<TraverseKernel>(id));
  }
  return "unknown";
}

bool TraverseKernelSupported(TraverseKernel kernel) {
  if (kernel == TraverseKernel::kAvx2) {
#if WMP_TRAVERSE_AVX2
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
  }
  return true;
}

TraverseKernel ResolveTraverseKernel(TraverseKernel requested) {
  if (requested == TraverseKernel::kAuto) {
    static const TraverseKernel from_env = ParseTraverseKernelEnv();
    requested = from_env;
  }
  if (requested == TraverseKernel::kAuto) {
    // Lockstep-8 wins across families and batch sizes in
    // bench/traverse_kernel; the AVX2 gather variant loses to it (and often
    // to scalar) wherever gathers are microcoded, so it is opt-in only.
    requested = TraverseKernel::kLockstep8;
  }
  if (!TraverseKernelSupported(requested)) {
    requested = TraverseKernel::kLockstep8;
  }
  return requested;
}

Result<CompiledEnsemble> CompiledEnsemble::CompileTrees(
    const std::vector<const RegressionTree*>& trees, Combine combine,
    double base, double scale, const CompileOptions& opts) {
  if (trees.empty()) {
    return Status::FailedPrecondition("compile of an empty ensemble");
  }
  // Pass 1: the bin space. Collect the distinct thresholds every feature is
  // ever split on; their sorted order is the edge table, and each node's
  // double threshold becomes its exact index in that table. Built from the
  // ensemble itself, so deserialized models compile without the trainer's
  // FeatureBinner.
  size_t d = 0;
  size_t total_nodes = 0;
  for (const RegressionTree* tree : trees) {
    if (!tree->fitted()) {
      return Status::FailedPrecondition("compile of an unfitted tree");
    }
    total_nodes += tree->nodes().size();
    for (const TreeNode& nd : tree->nodes()) {
      if (nd.feature >= 0) {
        d = std::max(d, static_cast<size_t>(nd.feature) + 1);
      }
    }
  }
  if (total_nodes > kMaxNodes) {
    return Status::InvalidArgument("ensemble too large to compile");
  }
  if (d > kMaxFeatures) {
    return Status::InvalidArgument("feature index exceeds compiled range");
  }
  std::vector<std::vector<double>> edges(d);
  for (const RegressionTree* tree : trees) {
    for (const TreeNode& nd : tree->nodes()) {
      if (nd.feature >= 0) {
        edges[static_cast<size_t>(nd.feature)].push_back(nd.threshold);
      }
    }
  }
  size_t widest = 0;
  for (std::vector<double>& e : edges) {
    std::sort(e.begin(), e.end());
    e.erase(std::unique(e.begin(), e.end()), e.end());
    if (e.size() > kMaxEdgesPerFeature) {
      return Status::InvalidArgument("too many distinct thresholds");
    }
    widest = std::max(widest, e.size());
  }

  CompiledEnsemble c;
  c.combine_ = combine;
  c.base_ = base;
  c.scale_ = scale;
  c.d_ = static_cast<uint32_t>(d);
  c.narrow_ = widest <= 255;
  c.binner_ = FeatureBinner::FromEdges(std::move(edges));
  for (size_t f = 0; f < d; ++f) {
    if (c.binner_.NumBins(f) > 1) {
      c.used_features_.push_back(static_cast<uint16_t>(f));
    }
  }

  // Pass 2: BFS-flatten each tree. Processing nodes in discovery order
  // while appending both children together puts the root first and
  // siblings adjacent, so one i32 left-child offset encodes the pair.
  c.tree_counts_.reserve(trees.size());
  c.tree_base_.reserve(trees.size());
  c.node_feature_.reserve(total_nodes);
  c.child_.reserve(total_nodes);
  if (c.narrow_) {
    c.code8_.reserve(total_nodes);
  } else {
    c.code16_.reserve(total_nodes);
  }
  std::vector<int> order;  // original node ids, BFS
  for (const RegressionTree* tree : trees) {
    const std::vector<TreeNode>& nodes = tree->nodes();
    const size_t base = c.child_.size();
    c.tree_base_.push_back(static_cast<uint32_t>(base));
    order.clear();
    order.push_back(0);
    for (size_t pos = 0; pos < order.size(); ++pos) {
      if (order.size() > nodes.size()) {
        return Status::InvalidArgument("malformed tree: shared subtrees");
      }
      const TreeNode& nd = nodes[static_cast<size_t>(order[pos])];
      if (nd.feature < 0) {
        c.child_.push_back(
            -static_cast<int32_t>(c.leaf_value_.size()) - 1);
        c.leaf_value_.push_back(nd.value);
        c.node_feature_.push_back(0);
        if (c.narrow_) {
          c.code8_.push_back(0);
        } else {
          c.code16_.push_back(0);
        }
        continue;
      }
      if (nd.left < 0 || nd.right < 0 ||
          static_cast<size_t>(nd.left) >= nodes.size() ||
          static_cast<size_t>(nd.right) >= nodes.size()) {
        return Status::InvalidArgument("malformed tree: bad child index");
      }
      const size_t f = static_cast<size_t>(nd.feature);
      const uint16_t code = c.binner_.BinValue(f, nd.threshold);
      if (c.binner_.UpperEdge(f, code) != nd.threshold) {
        return Status::Internal("threshold lost its edge-table index");
      }
      c.child_.push_back(static_cast<int32_t>(base + order.size()));
      order.push_back(nd.left);
      order.push_back(nd.right);
      c.node_feature_.push_back(static_cast<uint16_t>(f));
      if (c.narrow_) {
        c.code8_.push_back(static_cast<uint8_t>(code));
      } else {
        c.code16_.push_back(code);
      }
    }
    c.tree_counts_.push_back(static_cast<uint32_t>(c.child_.size() - base));
  }
#ifndef NDEBUG
  // Predict()'s reusable bin scratch only writes used_features_ columns and
  // never re-zeroes the rest, so no node may reference an unbinned feature
  // (each internal node's own threshold is an edge of its feature, making
  // this true by construction — the assert guards future layout changes).
  for (size_t i = 0; i < c.child_.size(); ++i) {
    assert(c.child_[i] < 0 || c.binner_.NumBins(c.node_feature_[i]) > 1);
  }
#endif
  WMP_RETURN_IF_ERROR(c.BuildLut(opts.lut_levels));
  c.PadNodeArraysForGather();
  c.kernel_ = ResolveTraverseKernel(opts.kernel);
  return c;
}

Result<CompiledEnsemble> CompiledEnsemble::Compile(
    const DecisionTreeRegressor& model, const CompileOptions& opts) {
  return CompileTrees({&model.tree()}, Combine::kSingle, 0.0, 1.0, opts);
}

Result<CompiledEnsemble> CompiledEnsemble::Compile(
    const RandomForestRegressor& model, const CompileOptions& opts) {
  std::vector<const RegressionTree*> trees;
  trees.reserve(model.trees().size());
  for (const RegressionTree& t : model.trees()) trees.push_back(&t);
  return CompileTrees(trees, Combine::kAverage, 0.0, 1.0, opts);
}

Result<CompiledEnsemble> CompiledEnsemble::Compile(const GbtRegressor& model,
                                                   const CompileOptions& opts) {
  std::vector<const RegressionTree*> trees;
  trees.reserve(model.trees().size());
  for (const RegressionTree& t : model.trees()) trees.push_back(&t);
  return CompileTrees(trees, Combine::kBoosted, model.base_score(),
                      model.options().learning_rate, opts);
}

Result<CompiledEnsemble> CompiledEnsemble::CompileRegressor(
    const Regressor& model, const CompileOptions& opts) {
  if (const auto* dt = dynamic_cast<const DecisionTreeRegressor*>(&model)) {
    return Compile(*dt, opts);
  }
  if (const auto* rf = dynamic_cast<const RandomForestRegressor*>(&model)) {
    return Compile(*rf, opts);
  }
  if (const auto* gbt = dynamic_cast<const GbtRegressor*>(&model)) {
    return Compile(*gbt, opts);
  }
  return Status::FailedPrecondition("not a tree-family regressor");
}

Status CompiledEnsemble::BuildLut(int levels) {
  lut_levels_ = 0;
  lut_feature_.clear();
  lut_code8_.clear();
  lut_code16_.clear();
  lut_exit_.clear();
  // All-leaf ensembles have no tests to unroll (and no used feature to back
  // the dummy always-left padding) — serve them through the plain walk.
  if (levels <= 0 || d_ == 0 || used_features_.empty()) return Status::OK();
  if (levels > 16) return Status::InvalidArgument("lut_levels > 16");
  const size_t num_trees = tree_counts_.size();
  const size_t tests = (size_t{1} << levels) - 1;
  const size_t exits = tests + 1;
  lut_feature_.assign(num_trees * tests, 0);
  if (narrow_) {
    lut_code8_.assign(num_trees * tests, 0);
  } else {
    lut_code16_.assign(num_trees * tests, 0);
  }
  lut_exit_.assign(num_trees * exits, 0);
  const uint32_t dummy_code = narrow_ ? 255u : 65535u;
  // Any used feature works for the dummy always-left tests (`code <= max`
  // holds for every code), but an unused one would read an unbinned slot.
  const uint16_t dummy_feature = used_features_.front();
  const auto put_code = [&](size_t idx, uint32_t code) {
    if (narrow_) {
      lut_code8_[idx] = static_cast<uint8_t>(code);
    } else {
      lut_code16_[idx] = static_cast<uint16_t>(code);
    }
  };
  std::vector<uint32_t> cur, next;
  for (size_t t = 0; t < num_trees; ++t) {
    cur.assign(1, tree_base_[t]);
    for (int l = 0; l < levels; ++l) {
      next.assign(cur.size() * 2, 0);
      for (size_t s = 0; s < cur.size(); ++s) {
        const size_t j = t * tests + ((size_t{1} << l) - 1) + s;
        const uint32_t node = cur[s];
        if (child_[node] >= 0) {
          lut_feature_[j] = node_feature_[node];
          put_code(j, narrow_ ? code8_[node] : code16_[node]);
          next[2 * s] = static_cast<uint32_t>(child_[node]);
          next[2 * s + 1] = static_cast<uint32_t>(child_[node]) + 1;
        } else {
          // Leaf above depth L: pad with an always-left test and carry the
          // leaf down; the unreachable right subtree carries it too.
          lut_feature_[j] = dummy_feature;
          put_code(j, dummy_code);
          next[2 * s] = node;
          next[2 * s + 1] = node;
        }
      }
      cur.swap(next);
    }
    for (size_t s = 0; s < exits; ++s) lut_exit_[t * exits + s] = cur[s];
  }
  lut_levels_ = levels;
  return Status::OK();
}

template <typename Code>
double CompiledEnsemble::TraverseTree(size_t t, const Code* codes,
                                      const Code* node_code,
                                      const Code* lut_code) const {
  uint32_t i;
  if (lut_levels_ > 0) {
    // Unrolled top levels: complete-tree stepping, no dependent child
    // loads — the next test's index is pure arithmetic on the previous
    // compare.
    const size_t tests = (size_t{1} << lut_levels_) - 1;
    const uint16_t* lf = lut_feature_.data() + t * tests;
    const Code* lc = lut_code + t * tests;
    size_t j = 0;
    for (int l = 0; l < lut_levels_; ++l) {
      j = 2 * j + 1 + (codes[lf[j]] > lc[j] ? 1u : 0u);
    }
    i = lut_exit_[t * (tests + 1) + (j - tests)];
  } else {
    i = tree_base_[t];
  }
  int32_t ch;
  while ((ch = child_[i]) >= 0) {
    // Siblings are adjacent: +0 goes left (code <= threshold code), +1
    // goes right. One integer compare, no float math, no second pointer.
    i = static_cast<uint32_t>(ch) +
        (codes[node_feature_[i]] > node_code[i] ? 1u : 0u);
  }
  return leaf_value_[static_cast<size_t>(-(ch + 1))];
}

template <typename Code, int R>
void CompiledEnsemble::PredictRowsLockstepT(const Code* codes,
                                            const Code* node_code,
                                            const Code* lut_code,
                                            double* out) const {
  const size_t num_trees = tree_counts_.size();
  const size_t d = d_;
  // Per-lane accumulators: lane r is row r of the block, and its updates
  // run in tree order exactly like the scalar walk — DT takes the lone
  // leaf, RF sums then divides once, GBT starts at base and adds
  // scale * leaf per round. Lanes never mix, so every lane is bitwise the
  // scalar result.
  double acc[R];
  const double init = combine_ == Combine::kBoosted ? base_ : 0.0;
  for (int r = 0; r < R; ++r) acc[r] = init;
  uint32_t idx[R];
  int32_t ch[R];
  const size_t tests =
      lut_levels_ > 0 ? (size_t{1} << lut_levels_) - 1 : 0;
  for (size_t t = 0; t < num_trees; ++t) {
    if (lut_levels_ > 0) {
      const uint16_t* lf = lut_feature_.data() + t * tests;
      const Code* lc = lut_code + t * tests;
      uint32_t j[R];
      for (int r = 0; r < R; ++r) j[r] = 0;
      for (int l = 0; l < lut_levels_; ++l) {
        // R independent complete-tree steps per level: pure arithmetic on
        // the previous compare, no cross-lane dependencies, so the
        // compiler can vectorize over the u8/u16 code lanes.
        for (int r = 0; r < R; ++r) {
          j[r] = 2 * j[r] + 1 +
                 (codes[static_cast<size_t>(r) * d + lf[j[r]]] > lc[j[r]]
                      ? 1u
                      : 0u);
        }
      }
      const uint32_t* exits = lut_exit_.data() + t * (tests + 1);
      for (int r = 0; r < R; ++r) idx[r] = exits[j[r] - tests];
    } else {
      for (int r = 0; r < R; ++r) idx[r] = tree_base_[t];
    }
    for (int r = 0; r < R; ++r) ch[r] = child_[idx[r]];
    for (;;) {
      bool any_active = false;
      for (int r = 0; r < R; ++r) any_active |= ch[r] >= 0;
      if (!any_active) break;
      for (int r = 0; r < R; ++r) {
        // A lane that reached its leaf parks there: the select keeps its
        // idx, so it re-loads the same (negative) child until every lane
        // parks. The step it computes meanwhile reads the leaf's zeroed
        // feature/code slots — initialized memory, result discarded. The
        // R dependent-load chains of the active lanes overlap in flight
        // instead of serializing on memory latency.
        const uint32_t step =
            static_cast<uint32_t>(ch[r]) +
            (codes[static_cast<size_t>(r) * d + node_feature_[idx[r]]] >
                     node_code[idx[r]]
                 ? 1u
                 : 0u);
        idx[r] = ch[r] >= 0 ? step : idx[r];
      }
      for (int r = 0; r < R; ++r) ch[r] = child_[idx[r]];
    }
    if (combine_ == Combine::kBoosted) {
      for (int r = 0; r < R; ++r) {
        acc[r] += scale_ * leaf_value_[static_cast<size_t>(-(ch[r] + 1))];
      }
    } else {
      for (int r = 0; r < R; ++r) {
        acc[r] += leaf_value_[static_cast<size_t>(-(ch[r] + 1))];
      }
    }
  }
  if (combine_ == Combine::kAverage) {
    for (int r = 0; r < R; ++r) acc[r] /= static_cast<double>(num_trees);
  }
  for (int r = 0; r < R; ++r) out[r] = acc[r];
}

namespace {

#if WMP_TRAVERSE_AVX2

// Flat view of the ensemble for the AVX2 kernel (free function so the
// target attribute stays off the class).
template <typename Code>
struct LockstepParams {
  const int32_t* child;
  const uint16_t* feature;
  const Code* node_code;
  const double* leaf_value;
  const uint32_t* tree_base;
  const uint16_t* lut_feature;
  const Code* lut_code;
  const uint32_t* lut_exit;
  size_t num_trees;
  size_t d;
  int lut_levels;
  uint8_t combine;  // CompiledEnsemble::Combine numeric value
  double base;
  double scale;
};

// 4-byte gather of a u8/u16 element per lane, masked down to the value.
// Overreads up to 3 bytes past the last element — covered by kGatherPad.
template <typename Code>
__attribute__((target("avx2"))) inline __m256i GatherCode(const Code* base,
                                                          __m256i elem) {
  if constexpr (sizeof(Code) == 1) {
    return _mm256_and_si256(
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(base), elem, 1),
        _mm256_set1_epi32(0xFF));
  } else {
    return _mm256_and_si256(
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(base), elem, 2),
        _mm256_set1_epi32(0xFFFF));
  }
}

// 8 rows per tree via AVX2 gathers. Same traversal and per-lane
// accumulation order as PredictRowsLockstepT<Code, 8>; mul_pd + add_pd is
// deliberately separate (target("avx2") never enables FMA, matching the
// scalar `acc += scale * leaf` rounding), so lanes are bitwise the scalar
// walk.
template <typename Code>
__attribute__((target("avx2"))) void PredictRows8Avx2(
    const LockstepParams<Code>& p, const Code* codes, double* out) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i all_ones = _mm256_set1_epi32(-1);
  const __m256i feature_mask = _mm256_set1_epi32(0xFFFF);
  const int d = static_cast<int>(p.d);
  // Element offset of each lane's bin line within `codes`.
  const __m256i rowoff =
      _mm256_setr_epi32(0, d, 2 * d, 3 * d, 4 * d, 5 * d, 6 * d, 7 * d);
  __m256d acc_lo, acc_hi;
  if (p.combine == 2) {  // kBoosted
    acc_lo = acc_hi = _mm256_set1_pd(p.base);
  } else {
    acc_lo = acc_hi = _mm256_setzero_pd();
  }
  const __m256d scale = _mm256_set1_pd(p.scale);
  const size_t tests =
      p.lut_levels > 0 ? (size_t{1} << p.lut_levels) - 1 : 0;
  for (size_t t = 0; t < p.num_trees; ++t) {
    __m256i idx;
    if (p.lut_levels > 0) {
      const uint16_t* lf = p.lut_feature + t * tests;
      const Code* lc = p.lut_code + t * tests;
      __m256i j = zero;
      for (int l = 0; l < p.lut_levels; ++l) {
        const __m256i f = _mm256_and_si256(
            _mm256_i32gather_epi32(reinterpret_cast<const int*>(lf), j, 2),
            feature_mask);
        const __m256i c = GatherCode(lc, j);
        const __m256i rc = GatherCode(codes, _mm256_add_epi32(rowoff, f));
        // gt is -1 where row code > node code: j = 2j + 1 - gt.
        const __m256i gt = _mm256_cmpgt_epi32(rc, c);
        j = _mm256_sub_epi32(
            _mm256_add_epi32(_mm256_add_epi32(j, j), _mm256_set1_epi32(1)),
            gt);
      }
      j = _mm256_sub_epi32(j, _mm256_set1_epi32(static_cast<int>(tests)));
      idx = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(p.lut_exit + t * (tests + 1)), j, 4);
    } else {
      idx = _mm256_set1_epi32(static_cast<int>(p.tree_base[t]));
    }
    __m256i ch = _mm256_i32gather_epi32(p.child, idx, 4);
    __m256i parked = _mm256_cmpgt_epi32(zero, ch);  // -1 where ch < 0
    while (static_cast<uint32_t>(_mm256_movemask_epi8(parked)) !=
           0xFFFFFFFFu) {
      const __m256i f = _mm256_and_si256(
          _mm256_i32gather_epi32(reinterpret_cast<const int*>(p.feature), idx,
                                 2),
          feature_mask);
      const __m256i nc = GatherCode(p.node_code, idx);
      const __m256i rc = GatherCode(codes, _mm256_add_epi32(rowoff, f));
      const __m256i gt = _mm256_cmpgt_epi32(rc, nc);
      const __m256i step = _mm256_sub_epi32(ch, gt);  // ch + (rc > nc)
      idx = _mm256_blendv_epi8(step, idx, parked);  // parked lanes keep idx
      ch = _mm256_i32gather_epi32(p.child, idx, 4);
      parked = _mm256_cmpgt_epi32(zero, ch);
    }
    // Leaf reference: -(ch + 1) == ~ch in two's complement.
    const __m256i leaf = _mm256_xor_si256(ch, all_ones);
    const __m256d v_lo =
        _mm256_i32gather_pd(p.leaf_value, _mm256_castsi256_si128(leaf), 8);
    const __m256d v_hi =
        _mm256_i32gather_pd(p.leaf_value, _mm256_extracti128_si256(leaf, 1), 8);
    if (p.combine == 2) {
      acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(scale, v_lo));
      acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(scale, v_hi));
    } else {
      acc_lo = _mm256_add_pd(acc_lo, v_lo);
      acc_hi = _mm256_add_pd(acc_hi, v_hi);
    }
  }
  if (p.combine == 1) {  // kAverage
    const __m256d nt = _mm256_set1_pd(static_cast<double>(p.num_trees));
    acc_lo = _mm256_div_pd(acc_lo, nt);
    acc_hi = _mm256_div_pd(acc_hi, nt);
  }
  _mm256_storeu_pd(out, acc_lo);
  _mm256_storeu_pd(out + 4, acc_hi);
}

#endif  // WMP_TRAVERSE_AVX2

}  // namespace

template <typename Code>
void CompiledEnsemble::PredictBlockT(const Code* codes, size_t begin,
                                     size_t end, double* out) const {
  const Code* node_code;
  const Code* lut_code;
  if constexpr (std::is_same_v<Code, uint8_t>) {
    node_code = code8_.data();
    lut_code = lut_code8_.data();
  } else {
    node_code = code16_.data();
    lut_code = lut_code16_.data();
  }
  // Full R-row blocks take the selected lockstep kernel; the ragged tail
  // (and kScalar entirely) walks one row at a time — bitwise the same.
  size_t i = begin;
  switch (kernel_) {
    case TraverseKernel::kLockstep4:
      for (; i + 4 <= end; i += 4) {
        PredictRowsLockstepT<Code, 4>(codes + i * d_, node_code, lut_code,
                                      out + i);
      }
      break;
    case TraverseKernel::kLockstep8:
      for (; i + 8 <= end; i += 8) {
        PredictRowsLockstepT<Code, 8>(codes + i * d_, node_code, lut_code,
                                      out + i);
      }
      break;
#if WMP_TRAVERSE_AVX2
    case TraverseKernel::kAvx2: {
      const LockstepParams<Code> p{child_.data(),
                                   node_feature_.data(),
                                   node_code,
                                   leaf_value_.data(),
                                   tree_base_.data(),
                                   lut_feature_.data(),
                                   lut_code,
                                   lut_exit_.data(),
                                   tree_counts_.size(),
                                   d_,
                                   lut_levels_,
                                   static_cast<uint8_t>(combine_),
                                   base_,
                                   scale_};
      for (; i + 8 <= end; i += 8) {
        PredictRows8Avx2<Code>(p, codes + i * d_, out + i);
      }
      break;
    }
#endif
    default:
      break;  // kScalar: everything goes through the tail loop below
  }
  const size_t num_trees = tree_counts_.size();
  for (; i < end; ++i) {
    const Code* rc = codes + i * d_;
    // Accumulation mirrors the reference family loops exactly: DT takes
    // the lone leaf, RF sums in tree order then divides once, GBT starts
    // at the base score and adds scale * leaf per round.
    double acc;
    if (combine_ == Combine::kBoosted) {
      acc = base_;
      for (size_t t = 0; t < num_trees; ++t) {
        acc += scale_ * TraverseTree(t, rc, node_code, lut_code);
      }
    } else {
      acc = 0.0;
      for (size_t t = 0; t < num_trees; ++t) {
        acc += TraverseTree(t, rc, node_code, lut_code);
      }
      if (combine_ == Combine::kAverage) {
        acc /= static_cast<double>(num_trees);
      }
    }
    out[i] = acc;
  }
}

int CompiledEnsemble::kernel_block_rows() const {
  switch (kernel_) {
    case TraverseKernel::kLockstep4:
      return 4;
    case TraverseKernel::kLockstep8:
    case TraverseKernel::kAvx2:
      return 8;
    default:
      return 1;
  }
}

Status CompiledEnsemble::ForceKernel(TraverseKernel kernel) {
  if (kernel != TraverseKernel::kAuto && !TraverseKernelSupported(kernel)) {
    return Status::FailedPrecondition(
        "traversal kernel unsupported on this cpu");
  }
  kernel_ = ResolveTraverseKernel(kernel);
  return Status::OK();
}

void CompiledEnsemble::PadNodeArraysForGather() {
  node_feature_.resize(node_feature_.size() + kGatherPad, 0);
  if (narrow_) {
    code8_.resize(code8_.size() + kGatherPad, 0);
  } else {
    code16_.resize(code16_.size() + kGatherPad, 0);
  }
  if (lut_levels_ > 0) {
    lut_feature_.resize(lut_feature_.size() + kGatherPad, 0);
    if (narrow_) {
      lut_code8_.resize(lut_code8_.size() + kGatherPad, 0);
    } else {
      lut_code16_.resize(lut_code16_.size() + kGatherPad, 0);
    }
  }
}

template <typename Code>
double CompiledEnsemble::PredictRowT(const double* x) const {
  thread_local std::vector<Code> codes;
  if (codes.size() < d_) codes.resize(d_);
  for (uint16_t f : used_features_) {
    codes[f] = static_cast<Code>(binner_.BinValue(f, x[f]));
  }
  double out;
  PredictBlockT<Code>(codes.data(), 0, 1, &out);
  return out;
}

double CompiledEnsemble::PredictRow(const double* x, size_t /*n*/) const {
  return narrow_ ? PredictRowT<uint8_t>(x) : PredictRowT<uint16_t>(x);
}

Result<double> CompiledEnsemble::PredictOne(const std::vector<double>& x) const {
  if (tree_counts_.empty()) {
    return Status::FailedPrecondition("ensemble not compiled");
  }
  if (x.size() < d_) {
    return Status::InvalidArgument("row narrower than the compiled ensemble");
  }
  return PredictRow(x.data(), x.size());
}

Result<std::vector<double>> CompiledEnsemble::Predict(const Matrix& x) const {
  if (tree_counts_.empty()) {
    return Status::FailedPrecondition("ensemble not compiled");
  }
  if (x.cols() < d_) {
    return Status::InvalidArgument("matrix narrower than the compiled ensemble");
  }
  const size_t n = x.rows();
  std::vector<double> out(n);
  if (n == 0) return out;
  // Bin once per used feature — strided multi-probe searches down each
  // column — then traverse row blocks on the worker pool with the same
  // grain as the reference batch Predict. The bin lines live in a grow-only
  // per-thread scratch instead of a fresh zero-initialized n*d_ buffer per
  // call: only used_features_ columns are ever written, and traversal only
  // reads features some node references, which Compile asserts are all
  // binned — so stale bytes from earlier calls are never consumed (parked
  // lockstep lanes may *load* a stale slot, but discard the comparison).
  // resize() value-initializes growth, keeping every byte below size()
  // defined. kGatherPad covers the AVX2 kernel's 4-byte lane gathers.
  const size_t needed = n * static_cast<size_t>(d_) + kGatherPad;
  if (narrow_) {
    thread_local std::vector<uint8_t> scratch;
    if (scratch.size() < needed) scratch.resize(needed);
    uint8_t* codes = scratch.data();
    for (uint16_t f : used_features_) {
      binner_.BinColumn(f, x.data().data() + f, n, x.cols(), codes + f, d_);
    }
    util::ParallelFor(n, kTreePredictGrain, [&](size_t begin, size_t end) {
      PredictBlockT<uint8_t>(codes, begin, end, out.data());
    });
  } else {
    thread_local std::vector<uint16_t> scratch;
    if (scratch.size() < needed) scratch.resize(needed);
    uint16_t* codes = scratch.data();
    for (uint16_t f : used_features_) {
      binner_.BinColumn(f, x.data().data() + f, n, x.cols(), codes + f, d_);
    }
    util::ParallelFor(n, kTreePredictGrain, [&](size_t begin, size_t end) {
      PredictBlockT<uint16_t>(codes, begin, end, out.data());
    });
  }
  return out;
}

Result<std::vector<RegressionTree>> CompiledEnsemble::Decompile() const {
  std::vector<RegressionTree> trees;
  trees.reserve(tree_counts_.size());
  for (size_t t = 0; t < tree_counts_.size(); ++t) {
    const size_t base = tree_base_[t];
    const size_t count = tree_counts_[t];
    std::vector<TreeNode> nodes(count);
    for (size_t i = 0; i < count; ++i) {
      const size_t g = base + i;
      TreeNode& nd = nodes[i];
      const int32_t ch = child_[g];
      if (ch < 0) {
        nd.value = leaf_value_[static_cast<size_t>(-(ch + 1))];
        continue;
      }
      const size_t local = static_cast<size_t>(ch) - base;
      if (static_cast<size_t>(ch) < base || local + 1 >= count) {
        return Status::Internal("compiled child outside its tree block");
      }
      nd.feature = node_feature_[g];
      const uint32_t code = narrow_ ? code8_[g] : code16_[g];
      nd.threshold = binner_.UpperEdge(static_cast<size_t>(nd.feature), code);
      nd.left = static_cast<int>(local);
      nd.right = static_cast<int>(local) + 1;
    }
    trees.push_back(RegressionTree::FromNodes(std::move(nodes)));
  }
  return trees;
}

void CompiledEnsemble::Serialize(BinaryWriter* writer) const {
  writer->WriteU32(kCompiledEnsembleTag);
  writer->WriteU8(kCompiledEnsembleVersion);
  writer->WriteU8(static_cast<uint8_t>(combine_));
  writer->WriteU8(narrow_ ? 1 : 0);
  writer->WriteDouble(base_);
  writer->WriteDouble(scale_);
  writer->WriteU32(d_);
  writer->WriteU32(static_cast<uint32_t>(tree_counts_.size()));
  for (uint32_t count : tree_counts_) writer->WriteU32(count);
  for (size_t f = 0; f < d_; ++f) {
    const size_t ne = binner_.NumBins(f) - 1;
    writer->WriteU32(static_cast<uint32_t>(ne));
    for (size_t e = 0; e < ne; ++e) {
      writer->WriteDouble(binner_.UpperEdge(f, e));
    }
  }
  writer->WriteU64(child_.size());
  writer->WriteU64(leaf_value_.size());
  for (int32_t ch : child_) writer->WriteU32(static_cast<uint32_t>(ch));
  for (size_t i = 0; i < child_.size(); ++i) {
    if (child_[i] < 0) continue;  // leaves carry no test
    writer->WriteU16(node_feature_[i]);
    if (narrow_) {
      writer->WriteU8(code8_[i]);
    } else {
      writer->WriteU16(code16_[i]);
    }
  }
  for (double v : leaf_value_) writer->WriteDouble(v);
}

size_t CompiledEnsemble::SerializedBytes() const {
  BinaryWriter writer;
  Serialize(&writer);
  return writer.size();
}

Result<CompiledEnsemble> CompiledEnsemble::Deserialize(
    BinaryReader* reader, const CompileOptions& opts) {
  WMP_ASSIGN_OR_RETURN(uint32_t tag, reader->ReadU32());
  if (tag != kCompiledEnsembleTag) {
    return Status::InvalidArgument("bad compiled-ensemble magic tag");
  }
  WMP_ASSIGN_OR_RETURN(uint8_t version, reader->ReadU8());
  if (version != kCompiledEnsembleVersion) {
    return Status::InvalidArgument("unsupported compiled-ensemble version");
  }
  CompiledEnsemble c;
  WMP_ASSIGN_OR_RETURN(uint8_t combine, reader->ReadU8());
  if (combine > static_cast<uint8_t>(Combine::kBoosted)) {
    return Status::InvalidArgument("bad combine mode");
  }
  c.combine_ = static_cast<Combine>(combine);
  WMP_ASSIGN_OR_RETURN(uint8_t narrow, reader->ReadU8());
  c.narrow_ = narrow != 0;
  WMP_ASSIGN_OR_RETURN(c.base_, reader->ReadDouble());
  WMP_ASSIGN_OR_RETURN(c.scale_, reader->ReadDouble());
  WMP_ASSIGN_OR_RETURN(c.d_, reader->ReadU32());
  if (c.d_ > kMaxFeatures) {
    return Status::InvalidArgument("compiled feature count out of range");
  }
  WMP_ASSIGN_OR_RETURN(uint32_t num_trees, reader->ReadU32());
  if (num_trees == 0 ||
      static_cast<size_t>(num_trees) * 4 > reader->remaining()) {
    return Status::InvalidArgument("compiled tree count out of range");
  }
  c.tree_counts_.resize(num_trees);
  c.tree_base_.resize(num_trees);
  uint64_t running = 0;
  for (uint32_t t = 0; t < num_trees; ++t) {
    WMP_ASSIGN_OR_RETURN(c.tree_counts_[t], reader->ReadU32());
    if (c.tree_counts_[t] == 0) {
      return Status::InvalidArgument("compiled tree with no nodes");
    }
    c.tree_base_[t] = static_cast<uint32_t>(running);
    running += c.tree_counts_[t];
  }
  std::vector<std::vector<double>> edges(c.d_);
  size_t widest = 0;
  for (uint32_t f = 0; f < c.d_; ++f) {
    WMP_ASSIGN_OR_RETURN(uint32_t ne, reader->ReadU32());
    if (ne > kMaxEdgesPerFeature ||
        static_cast<size_t>(ne) * sizeof(double) > reader->remaining()) {
      return Status::InvalidArgument("compiled edge table out of range");
    }
    edges[f].resize(ne);
    for (uint32_t e = 0; e < ne; ++e) {
      WMP_ASSIGN_OR_RETURN(edges[f][e], reader->ReadDouble());
      if (e > 0 && edges[f][e] <= edges[f][e - 1]) {
        return Status::InvalidArgument("compiled edges not increasing");
      }
    }
    widest = std::max(widest, edges[f].size());
  }
  if (c.narrow_ != (widest <= 255)) {
    return Status::InvalidArgument("compiled code width mismatch");
  }
  WMP_ASSIGN_OR_RETURN(uint64_t total_nodes, reader->ReadU64());
  WMP_ASSIGN_OR_RETURN(uint64_t num_leaves, reader->ReadU64());
  if (total_nodes != running || total_nodes > kMaxNodes ||
      total_nodes * 4 > reader->remaining() || num_leaves > total_nodes) {
    return Status::InvalidArgument("compiled node counts out of range");
  }
  c.binner_ = FeatureBinner::FromEdges(std::move(edges));
  for (uint32_t f = 0; f < c.d_; ++f) {
    if (c.binner_.NumBins(f) > 1) c.used_features_.push_back(
        static_cast<uint16_t>(f));
  }
  c.child_.resize(total_nodes);
  for (uint64_t i = 0; i < total_nodes; ++i) {
    WMP_ASSIGN_OR_RETURN(uint32_t raw, reader->ReadU32());
    c.child_[i] = static_cast<int32_t>(raw);
  }
  // Validate the block structure: every internal child lands strictly
  // later inside its own tree block (guarantees traversal terminates),
  // every leaf reference is in range.
  {
    size_t t = 0;
    for (size_t i = 0; i < total_nodes; ++i) {
      while (t + 1 < c.tree_base_.size() && i >= c.tree_base_[t + 1]) ++t;
      const int32_t ch = c.child_[i];
      if (ch < 0) {
        if (static_cast<size_t>(-(ch + 1)) >= num_leaves) {
          return Status::InvalidArgument("compiled leaf index out of range");
        }
      } else {
        const size_t tree_end = c.tree_base_[t] + c.tree_counts_[t];
        if (static_cast<size_t>(ch) <= i ||
            static_cast<size_t>(ch) + 1 >= tree_end) {
          return Status::InvalidArgument("compiled child index out of range");
        }
      }
    }
  }
  c.node_feature_.assign(total_nodes, 0);
  if (c.narrow_) {
    c.code8_.assign(total_nodes, 0);
  } else {
    c.code16_.assign(total_nodes, 0);
  }
  for (uint64_t i = 0; i < total_nodes; ++i) {
    if (c.child_[i] < 0) continue;
    WMP_ASSIGN_OR_RETURN(uint16_t f, reader->ReadU16());
    if (f >= c.d_) {
      return Status::InvalidArgument("compiled feature index out of range");
    }
    c.node_feature_[i] = f;
    uint32_t code;
    if (c.narrow_) {
      WMP_ASSIGN_OR_RETURN(uint8_t c8, reader->ReadU8());
      code = c8;
      c.code8_[i] = c8;
    } else {
      WMP_ASSIGN_OR_RETURN(uint16_t c16, reader->ReadU16());
      code = c16;
      c.code16_[i] = c16;
    }
    if (code + 1 >= c.binner_.NumBins(f)) {
      return Status::InvalidArgument("compiled threshold code out of range");
    }
  }
  c.leaf_value_.resize(num_leaves);
  for (uint64_t i = 0; i < num_leaves; ++i) {
    WMP_ASSIGN_OR_RETURN(c.leaf_value_[i], reader->ReadDouble());
  }
  WMP_RETURN_IF_ERROR(c.BuildLut(opts.lut_levels));
  c.PadNodeArraysForGather();
  c.kernel_ = ResolveTraverseKernel(opts.kernel);
  return c;
}

Result<size_t> PointerSerializedBytes(const Regressor& model) {
  BinaryWriter writer;
  if (const auto* dt = dynamic_cast<const DecisionTreeRegressor*>(&model)) {
    if (!dt->tree().fitted()) {
      return Status::FailedPrecondition("DT not fitted");
    }
    writer.WriteU32(serialize_tags::kDecisionTree);
    dt->tree().Serialize(&writer);
    return writer.size();
  }
  if (const auto* rf = dynamic_cast<const RandomForestRegressor*>(&model)) {
    if (rf->trees().empty()) return Status::FailedPrecondition("RF not fitted");
    writer.WriteU32(serialize_tags::kRandomForest);
    writer.WriteU64(rf->trees().size());
    for (const RegressionTree& t : rf->trees()) t.Serialize(&writer);
    return writer.size();
  }
  if (const auto* gbt = dynamic_cast<const GbtRegressor*>(&model)) {
    if (gbt->trees().empty()) {
      return Status::FailedPrecondition("GBT not fitted");
    }
    writer.WriteU32(serialize_tags::kGbt);
    writer.WriteDouble(gbt->options().learning_rate);
    writer.WriteDouble(gbt->base_score());
    writer.WriteU64(gbt->trees().size());
    for (const RegressionTree& t : gbt->trees()) t.Serialize(&writer);
    return writer.size();
  }
  return model.SerializedSize();
}

}  // namespace wmp::ml
