#include "ml/lbfgs.h"

#include <cmath>
#include <deque>

#include "ml/linalg.h"

namespace wmp::ml {

namespace {

double InfNorm(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

}  // namespace

Result<LbfgsSummary> MinimizeLbfgs(const ObjectiveFn& f,
                                   std::vector<double> x0,
                                   const LbfgsOptions& options) {
  if (x0.empty()) return Status::InvalidArgument("L-BFGS: empty start point");
  const size_t n = x0.size();

  std::vector<double> x = std::move(x0);
  std::vector<double> grad(n, 0.0);
  double loss = f(x, &grad);
  if (grad.size() != n) {
    return Status::InvalidArgument("L-BFGS: gradient length mismatch");
  }

  struct Pair {
    std::vector<double> s;  // x_{k+1} - x_k
    std::vector<double> y;  // g_{k+1} - g_k
    double rho;             // 1 / (y . s)
  };
  std::deque<Pair> memory;

  LbfgsSummary out;
  std::vector<double> direction(n), x_new(n), grad_new(n, 0.0), alpha_buf;
  for (int iter = 0; iter < options.max_iters; ++iter) {
    if (InfNorm(grad) < options.grad_tol) {
      out.converged = true;
      break;
    }
    // Two-loop recursion: direction = -H * grad.
    direction = grad;
    alpha_buf.assign(memory.size(), 0.0);
    for (size_t i = memory.size(); i-- > 0;) {
      const Pair& p = memory[i];
      alpha_buf[i] = p.rho * Dot(p.s, direction);
      Axpy(-alpha_buf[i], p.y, &direction);
    }
    if (!memory.empty()) {
      const Pair& last = memory.back();
      const double yy = Dot(last.y, last.y);
      if (yy > 1e-300) {
        const double scale = Dot(last.s, last.y) / yy;
        for (double& v : direction) v *= scale;
      }
    }
    for (size_t i = 0; i < memory.size(); ++i) {
      const Pair& p = memory[i];
      const double beta = p.rho * Dot(p.y, direction);
      Axpy(alpha_buf[i] - beta, p.s, &direction);
    }
    for (double& v : direction) v = -v;

    double dir_dot_grad = Dot(direction, grad);
    if (dir_dot_grad >= 0.0) {
      // Not a descent direction (stale curvature): fall back to steepest
      // descent and drop history.
      memory.clear();
      for (size_t i = 0; i < n; ++i) direction[i] = -grad[i];
      dir_dot_grad = -Dot(grad, grad);
    }

    // Weak-Wolfe line search: backtrack on Armijo failure, expand when the
    // curvature condition shows the step is too short. Expansion matters:
    // pure backtracking accepts microscopic steps whose (s, y) pairs poison
    // the inverse-Hessian estimate on ill-conditioned objectives.
    constexpr double kC2 = 0.9;
    double lo = 0.0, hi = 0.0;  // hi == 0 means "no upper bracket yet"
    double step = 1.0;
    double new_loss = loss;
    bool accepted = false;
    double armijo_step = -1.0, armijo_loss = loss;  // best fallback point
    std::vector<double> armijo_x, armijo_grad;
    for (int ls = 0; ls < options.max_line_search; ++ls) {
      for (size_t i = 0; i < n; ++i) x_new[i] = x[i] + step * direction[i];
      new_loss = f(x_new, &grad_new);
      const bool armijo_ok =
          std::isfinite(new_loss) &&
          new_loss <= loss + options.c1 * step * dir_dot_grad;
      if (!armijo_ok) {
        hi = step;
        step = 0.5 * (lo + hi);
        continue;
      }
      if (new_loss < armijo_loss) {
        armijo_step = step;
        armijo_loss = new_loss;
        armijo_x = x_new;
        armijo_grad = grad_new;
      }
      if (Dot(grad_new, direction) < kC2 * dir_dot_grad) {
        // Slope still steeply negative: step too short, move right.
        lo = step;
        step = hi > 0.0 ? 0.5 * (lo + hi) : 2.0 * step;
        continue;
      }
      accepted = true;
      break;
    }
    if (!accepted) {
      if (armijo_step < 0.0) break;  // no acceptable point at all
      // Fall back to the best Armijo point seen during the search.
      x_new = std::move(armijo_x);
      grad_new = std::move(armijo_grad);
      new_loss = armijo_loss;
    }

    Pair p;
    p.s.resize(n);
    p.y.resize(n);
    for (size_t i = 0; i < n; ++i) {
      p.s[i] = x_new[i] - x[i];
      p.y[i] = grad_new[i] - grad[i];
    }
    const double sy = Dot(p.s, p.y);
    if (sy > 1e-12) {
      p.rho = 1.0 / sy;
      memory.push_back(std::move(p));
      if (memory.size() > static_cast<size_t>(options.history)) {
        memory.pop_front();
      }
    }

    const double improvement = loss - new_loss;
    x.swap(x_new);
    grad.swap(grad_new);
    loss = new_loss;
    out.iterations = iter + 1;
    if (improvement < options.f_tol * std::max(std::fabs(loss), 1.0)) {
      out.converged = true;
      break;
    }
  }
  out.x = std::move(x);
  out.loss = loss;
  return out;
}

}  // namespace wmp::ml
