#ifndef WMP_ML_RIDGE_H_
#define WMP_ML_RIDGE_H_

/// \file ridge.h
/// L2-regularized linear regression, solved in closed form via Cholesky on
/// the centered normal equations — the "Ridge" model family of the paper.

#include <vector>

#include "ml/regressor.h"

namespace wmp::ml {

/// Hyperparameters for RidgeRegressor.
struct RidgeOptions {
  double alpha = 1.0;  ///< L2 penalty strength; must be >= 0.
};

/// \brief Ridge regression `min ||Xw - y||^2 + alpha ||w||^2` with intercept.
///
/// Fitting centers X and y so the intercept is not penalized, then solves
/// `(Xc^T Xc + alpha I) w = Xc^T y` with a Cholesky factorization.
class RidgeRegressor : public Regressor {
 public:
  explicit RidgeRegressor(RidgeOptions options = {}) : options_(options) {}

  std::string Name() const override { return "Ridge"; }
  Status Fit(const Matrix& x, const std::vector<double>& y) override;
  Result<double> PredictOne(const std::vector<double>& x) const override;
  /// Vectorized batch prediction: one dot product per contiguous row,
  /// parallelized over row blocks. Agrees with PredictOne bitwise (same
  /// accumulation order).
  Result<std::vector<double>> Predict(const Matrix& x) const override;
  Status Serialize(BinaryWriter* writer) const override;

  static Result<std::unique_ptr<RidgeRegressor>> Deserialize(
      BinaryReader* reader);

  const std::vector<double>& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }
  bool fitted() const { return !coef_.empty(); }

 private:
  RidgeOptions options_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
};

}  // namespace wmp::ml

#endif  // WMP_ML_RIDGE_H_
