#include "ml/random_forest.h"

#include <cmath>
#include <numeric>

#include "ml/compiled_tree.h"
#include "ml/tree_grower.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace wmp::ml {

Status RandomForestRegressor::Fit(const Matrix& x,
                                  const std::vector<double>& y) {
  if (x.rows() == 0) return Status::InvalidArgument("RF::Fit on empty matrix");
  if (y.size() != x.rows()) {
    return Status::InvalidArgument("RF::Fit target size mismatch");
  }
  if (options_.num_trees < 1) {
    return Status::InvalidArgument("RF needs num_trees >= 1");
  }
  if (options_.tree.growth == TreeGrowth::kReference) {
    fit_timing_ = {};
    Stopwatch sw;
    FeatureBinner binner;
    WMP_RETURN_IF_ERROR(binner.Fit(x, options_.tree.max_bins));
    WMP_ASSIGN_OR_RETURN(std::vector<uint16_t> bins, binner.BinAll(x));
    fit_timing_.bin_ms = sw.ElapsedMillis();

    sw.Reset();
    Rng rng(options_.seed);
    const size_t n = x.rows();
    const size_t sample_n = std::max<size_t>(
        1, static_cast<size_t>(std::llround(options_.bootstrap_fraction *
                                            static_cast<double>(n))));
    trees_.assign(static_cast<size_t>(options_.num_trees), {});
    std::vector<uint32_t> sample(sample_n);
    for (auto& tree : trees_) {
      for (auto& s : sample) {
        s = static_cast<uint32_t>(
            rng.UniformInt(0, static_cast<int64_t>(n) - 1));
      }
      WMP_RETURN_IF_ERROR(
          tree.Fit(bins, x.cols(), binner, y, sample, options_.tree, &rng));
    }
    fit_timing_.grow_ms = sw.ElapsedMillis();
    grower_stats_ = {};
    return Status::OK();
  }
  Stopwatch sw;
  WMP_ASSIGN_OR_RETURN(BinnedDataset data,
                       BinnedDataset::Build(x, options_.tree.max_bins));
  const double bin_ms = sw.ElapsedMillis();
  WMP_RETURN_IF_ERROR(FitFromBinned(data, y));
  fit_timing_.bin_ms = bin_ms;  // FitFromBinned reset it to 0 (shared bins)
  return Status::OK();
}

Status RandomForestRegressor::FitWithSharedBins(const Matrix& x,
                                                const std::vector<double>& y,
                                                BinnedDatasetCache* cache) {
  if (cache == nullptr || options_.tree.growth != TreeGrowth::kHistogram ||
      x.rows() == 0 || x.cols() == 0 || y.size() != x.rows()) {
    return Fit(x, y);
  }
  WMP_ASSIGN_OR_RETURN(const BinnedDataset* data,
                       cache->Get(x, options_.tree.max_bins));
  return FitFromBinned(*data, y);
}

Status RandomForestRegressor::FitFromBinned(const BinnedDataset& data,
                                            const std::vector<double>& y) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("RF::FitFromBinned on empty dataset");
  }
  if (y.size() != data.num_rows()) {
    return Status::InvalidArgument("RF::FitFromBinned target size mismatch");
  }
  if (options_.num_trees < 1) {
    return Status::InvalidArgument("RF needs num_trees >= 1");
  }
  if (options_.tree.growth == TreeGrowth::kReference) {
    return Status::InvalidArgument(
        "FitFromBinned requires histogram growth mode");
  }
  fit_timing_ = {};
  Stopwatch sw;
  Rng rng(options_.seed);
  const size_t n = data.num_rows();
  const size_t sample_n = std::max<size_t>(
      1, static_cast<size_t>(std::llround(options_.bootstrap_fraction *
                                          static_cast<double>(n))));
  trees_.assign(static_cast<size_t>(options_.num_trees), {});
  VarianceTreeGrower grower(data, y, options_.tree);
  std::vector<uint32_t> sample(sample_n);
  std::vector<TreeNode> nodes;  // reused scratch across trees
  for (auto& tree : trees_) {
    for (auto& s : sample) {
      s = static_cast<uint32_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    }
    WMP_RETURN_IF_ERROR(grower.Grow(sample, &rng, &nodes));
    tree = RegressionTree::FromNodes(nodes);
  }
  fit_timing_.grow_ms = sw.ElapsedMillis();
  grower_stats_ = grower.stats();
  return Status::OK();
}

Result<double> RandomForestRegressor::PredictOne(
    const std::vector<double>& x) const {
  if (trees_.empty()) return Status::FailedPrecondition("RF not fitted");
  double acc = 0.0;
  for (const auto& tree : trees_) acc += tree.Predict(x);
  return acc / static_cast<double>(trees_.size());
}

Result<std::vector<double>> RandomForestRegressor::Predict(
    const Matrix& x) const {
  if (trees_.empty()) return Status::FailedPrecondition("RF not fitted");
  std::vector<double> out(x.rows());
  util::ParallelFor(x.rows(), kTreePredictGrain, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const double* row = x.RowPtr(i);
      double acc = 0.0;
      for (const auto& tree : trees_) acc += tree.Predict(row, x.cols());
      out[i] = acc / static_cast<double>(trees_.size());
    }
  });
  return out;
}

// Compiled bin-space codec (ml/compiled_tree.h): all trees share one edge
// table and nodes ship as (child i32, feature u16, code u8/u16) — the
// dominant cost in an RF stream, since thresholds repeat heavily across
// bootstrapped trees. Decompile() restores the trees losslessly.
Status RandomForestRegressor::Serialize(BinaryWriter* writer) const {
  if (trees_.empty()) return Status::FailedPrecondition("RF not fitted");
  writer->WriteU32(serialize_tags::kRandomForest);
  WMP_ASSIGN_OR_RETURN(
      CompiledEnsemble compiled,
      CompiledEnsemble::Compile(*this, CompileOptions{.lut_levels = 0}));
  compiled.Serialize(writer);
  return Status::OK();
}

Result<std::unique_ptr<RandomForestRegressor>> RandomForestRegressor::Deserialize(
    BinaryReader* reader) {
  WMP_ASSIGN_OR_RETURN(uint32_t tag, reader->ReadU32());
  if (tag != serialize_tags::kRandomForest) {
    return Status::InvalidArgument("bad random-forest magic tag");
  }
  WMP_ASSIGN_OR_RETURN(
      CompiledEnsemble compiled,
      CompiledEnsemble::Deserialize(reader, CompileOptions{.lut_levels = 0}));
  if (compiled.combine() != CompiledEnsemble::Combine::kAverage) {
    return Status::InvalidArgument("stream is not a random forest");
  }
  auto model = std::make_unique<RandomForestRegressor>();
  WMP_ASSIGN_OR_RETURN(model->trees_, compiled.Decompile());
  return model;
}

}  // namespace wmp::ml
