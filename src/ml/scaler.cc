#include "ml/scaler.h"

#include <cmath>

#include "ml/regressor.h"
#include "util/parallel.h"

namespace wmp::ml {

Status StandardScaler::Fit(const Matrix& x) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("StandardScaler::Fit on empty matrix");
  }
  const size_t n = x.rows(), d = x.cols();
  mean_.assign(d, 0.0);
  std_.assign(d, 0.0);
  for (size_t r = 0; r < n; ++r) {
    const double* row = x.RowPtr(r);
    for (size_t c = 0; c < d; ++c) mean_[c] += row[c];
  }
  for (double& m : mean_) m /= static_cast<double>(n);
  for (size_t r = 0; r < n; ++r) {
    const double* row = x.RowPtr(r);
    for (size_t c = 0; c < d; ++c) {
      const double dlt = row[c] - mean_[c];
      std_[c] += dlt * dlt;
    }
  }
  for (double& s : std_) {
    s = std::sqrt(s / static_cast<double>(n));
    if (s < 1e-12) s = 1.0;  // constant column: center only
  }
  return Status::OK();
}

Result<Matrix> StandardScaler::Transform(const Matrix& x) const {
  if (!fitted()) return Status::FailedPrecondition("scaler not fitted");
  if (x.cols() != mean_.size()) {
    return Status::InvalidArgument("scaler column count mismatch");
  }
  Matrix out(x.rows(), x.cols());
  util::ParallelFor(x.rows(), 1024, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      const double* in = x.RowPtr(r);
      double* o = out.RowPtr(r);
      for (size_t c = 0; c < x.cols(); ++c) o[c] = (in[c] - mean_[c]) / std_[c];
    }
  });
  return out;
}

Status StandardScaler::TransformInPlace(Matrix* x) const {
  if (!fitted()) return Status::FailedPrecondition("scaler not fitted");
  if (x->cols() != mean_.size()) {
    return Status::InvalidArgument("scaler column count mismatch");
  }
  util::ParallelFor(x->rows(), 1024, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      double* row = x->RowPtr(r);
      for (size_t c = 0; c < x->cols(); ++c) {
        row[c] = (row[c] - mean_[c]) / std_[c];
      }
    }
  });
  return Status::OK();
}

Status StandardScaler::TransformRow(std::vector<double>* row) const {
  if (!fitted()) return Status::FailedPrecondition("scaler not fitted");
  if (row->size() != mean_.size()) {
    return Status::InvalidArgument("scaler column count mismatch");
  }
  for (size_t c = 0; c < row->size(); ++c) {
    (*row)[c] = ((*row)[c] - mean_[c]) / std_[c];
  }
  return Status::OK();
}

Status StandardScaler::InverseTransformRow(std::vector<double>* row) const {
  if (!fitted()) return Status::FailedPrecondition("scaler not fitted");
  if (row->size() != mean_.size()) {
    return Status::InvalidArgument("scaler column count mismatch");
  }
  for (size_t c = 0; c < row->size(); ++c) {
    (*row)[c] = (*row)[c] * std_[c] + mean_[c];
  }
  return Status::OK();
}

void StandardScaler::Serialize(BinaryWriter* writer) const {
  writer->WriteU32(serialize_tags::kScaler);
  writer->WriteDoubleVec(mean_);
  writer->WriteDoubleVec(std_);
}

Result<StandardScaler> StandardScaler::Deserialize(BinaryReader* reader) {
  WMP_ASSIGN_OR_RETURN(uint32_t tag, reader->ReadU32());
  if (tag != serialize_tags::kScaler) {
    return Status::InvalidArgument("bad scaler magic tag");
  }
  StandardScaler s;
  WMP_ASSIGN_OR_RETURN(s.mean_, reader->ReadDoubleVec());
  WMP_ASSIGN_OR_RETURN(s.std_, reader->ReadDoubleVec());
  if (s.mean_.size() != s.std_.size()) {
    return Status::InvalidArgument("scaler stream corrupt");
  }
  return s;
}

}  // namespace wmp::ml
