#ifndef WMP_ML_KMEANS_H_
#define WMP_ML_KMEANS_H_

/// \file kmeans.h
/// Lloyd's k-means with k-means++ initialization.
///
/// This is the paper's template learner (Algorithm 1): queries featurized
/// from their plans are clustered, and each cluster is a *query template*.
/// `inertia()` feeds the elbow method the paper uses to tune `k`.

#include <cstdint>
#include <vector>

#include "ml/linalg.h"
#include "util/io.h"
#include "util/status.h"

namespace wmp::ml {

/// Configuration for KMeans::Fit.
struct KMeansOptions {
  int num_clusters = 8;     ///< k; must be >= 1.
  int max_iters = 100;      ///< Lloyd iteration cap.
  double tol = 1e-6;        ///< relative inertia improvement to keep going.
  int n_init = 3;           ///< restarts; best inertia wins (kmeans++ each).
  uint64_t seed = 42;       ///< RNG seed for init and restarts.
};

/// \brief k-means clustering model.
class KMeans {
 public:
  KMeans() = default;

  /// Clusters the rows of `x`. Returns InvalidArgument for empty input or
  /// `num_clusters < 1`. If there are fewer distinct rows than clusters,
  /// surplus centroids collapse onto existing points (still a valid fit).
  Status Fit(const Matrix& x, const KMeansOptions& options);

  /// Index of the nearest centroid for `row`. Requires a prior Fit().
  Result<int> Assign(const std::vector<double>& row) const;

  /// Nearest-centroid labels for every row of `x`. Operates on contiguous
  /// rows and runs row blocks on the worker pool; agrees with per-row
  /// Assign() exactly.
  Result<std::vector<int>> AssignAll(const Matrix& x) const;

  /// Sum of squared distances of training points to their centroid.
  double inertia() const { return inertia_; }

  /// Fitted centroids (k rows).
  const Matrix& centroids() const { return centroids_; }
  int num_clusters() const { return static_cast<int>(centroids_.rows()); }
  bool fitted() const { return centroids_.rows() > 0; }

  void Serialize(BinaryWriter* writer) const;
  static Result<KMeans> Deserialize(BinaryReader* reader);

 private:
  Matrix centroids_;
  double inertia_ = 0.0;
};

/// \brief Runs k-means for each k in `ks` and returns the inertias, the raw
/// material of an elbow plot.
Result<std::vector<double>> KMeansElbowCurve(const Matrix& x,
                                             const std::vector<int>& ks,
                                             const KMeansOptions& base);

/// \brief Picks the elbow from an inertia curve via the maximum-distance-to-
/// chord heuristic. Returns the index into `ks`.
size_t PickElbow(const std::vector<double>& inertias);

}  // namespace wmp::ml

#endif  // WMP_ML_KMEANS_H_
