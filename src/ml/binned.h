#ifndef WMP_ML_BINNED_H_
#define WMP_ML_BINNED_H_

/// \file binned.h
/// Shared binning infrastructure for the histogram tree family.
///
/// `FeatureBinner` quantile-bins continuous features; `BinnedDataset` stores
/// the binned design feature-major (column-contiguous) so per-feature
/// histogram builds are sequential scans instead of stride-`d` walks, using
/// `uint8_t` bin indices whenever every feature has at most 256 buckets
/// (the default `max_bins = 64` qualifies, halving the buffer and doubling
/// cache density versus row-major `uint16_t`). `HistogramPool` recycles
/// fixed-size histogram buffers across tree nodes so steady-state growth
/// performs zero per-node heap allocations, and `BinnedDatasetCache` lets
/// several tree learners trained on the same design matrix bin it once.

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/linalg.h"
#include "util/status.h"

namespace wmp::ml {

/// \brief Quantile binning of continuous features into at most `max_bins`
/// buckets per feature.
class FeatureBinner {
 public:
  /// Computes per-feature bin edges from the rows of `x`.
  /// \param max_bins  upper bound on buckets per feature (2..65535).
  Status Fit(const Matrix& x, int max_bins = 64);

  /// Wraps externally supplied cut points (each inner vector strictly
  /// increasing; empty = single-bin feature). The compiled tree backend
  /// (ml/compiled_tree.h) rebuilds its bin space from the thresholds stored
  /// in a fitted ensemble through this, so bin-space prediction needs no
  /// access to the training-time binner.
  static FeatureBinner FromEdges(std::vector<std::vector<double>> edges);

  /// Bin index of `value` for feature `f` (0-based, < NumBins(f)).
  uint16_t BinValue(size_t f, double value) const;

  /// Bins every row of `x`; returns a row-major `n x d` bin-index buffer.
  /// This is the reference layout the pre-histogram-engine tree builders
  /// consume; the training hot path uses BinnedDataset instead.
  Result<std::vector<uint16_t>> BinAll(const Matrix& x) const;

  /// \name Multi-probe batch binning — the binning hot path.
  ///
  /// Bins `n` values of feature `f`, reading `values[i * value_stride]` and
  /// writing `out[i * out_stride]`. Features with enough edges carry a
  /// radix bucket index (built once at Fit/FromEdges): a uniform bucket
  /// grid over [first_edge, last_edge] whose prefix array confines each
  /// value's lower bound to the few edges of its bucket, collapsing the
  /// per-value search from log2(edges) dependent steps to O(1) expected.
  /// Features below the radix threshold (and values only there) take four
  /// independent branchless lower-bound searches run interleaved: they
  /// probe the same edge array, so every probe has the identical
  /// (data-independent) trip count and the four cmov chains overlap in
  /// flight instead of serializing on load latency. Either path is
  /// bitwise-equal to calling BinValue per element (binning_test asserts
  /// this exhaustively). The u8 overload requires NumBins(f) <= 256.
  /// @{
  void BinColumn(size_t f, const double* values, size_t n, size_t value_stride,
                 uint16_t* out, size_t out_stride) const;
  void BinColumn(size_t f, const double* values, size_t n, size_t value_stride,
                 uint8_t* out, size_t out_stride) const;
  /// @}

  /// Number of buckets for feature `f`.
  size_t NumBins(size_t f) const { return edges_[f].size() + 1; }
  size_t num_features() const { return edges_.size(); }
  bool fitted() const { return !edges_.empty(); }

  /// Upper edge of bucket `bin` for feature `f` — the raw-value threshold a
  /// tree node stores so prediction never needs the binner. Splitting at
  /// bin `b` sends `value <= UpperEdge(f, b)` left, which is exactly
  /// `BinValue(f, value) <= b`: bin-space and raw-space traversal agree.
  double UpperEdge(size_t f, size_t bin) const { return edges_[f][bin]; }

 private:
  /// Radix bucket index over one feature's sorted edges: bucket(v) =
  /// clamp(trunc((v - min_edge) * scale)) is monotone non-decreasing in v
  /// (IEEE subtract and multiply by a positive finite scale preserve
  /// order, truncation and clamping are monotone), so for sorted edges the
  /// bucket sequence is non-decreasing and `lo[b]` — the count of edges in
  /// buckets < b — brackets every value's lower bound: edges before lo[b]
  /// are < v, edges from lo[b + 1] are >= v, hence the global answer lies
  /// in [lo[b], lo[b + 1]] and a sub-range search returns the IDENTICAL
  /// index (lower bounds are unique). Values outside [min, max] clamp to
  /// the end buckets; NaN fails the `> 0` guard and lands in bucket 0,
  /// whose sub-range reproduces the scalar search's 0. Built only when a
  /// feature has enough edges to beat the plain search; `usable == false`
  /// (few edges, zero span, non-finite edges) falls back to multi-probe.
  struct RadixBuckets {
    double min_edge = 0.0;
    double scale = 0.0;
    uint32_t nbuckets = 0;
    std::vector<uint32_t> lo;  ///< nbuckets + 1 prefix counts
    bool usable = false;
  };

  /// Rebuilds radix_ from edges_ (Fit and FromEdges both end here).
  void BuildRadixIndexes();

  // edges_[f] is a sorted list of cut points; value <= edges_[f][i] and
  // > edges_[f][i-1] falls in bin i; values above the last edge fall in the
  // final bin.
  std::vector<std::vector<double>> edges_;
  std::vector<RadixBuckets> radix_;  // parallel to edges_
};

/// Selects the tree-growth engine. The histogram engine is the production
/// path; the reference engine is the original direct builder retained so
/// equivalence tests and the training benchmark can detect any divergence
/// the subtraction trick might introduce.
enum class TreeGrowth {
  kHistogram,  ///< feature-major bins + sibling subtraction + buffer pool
  kReference,  ///< row-major direct build (pre-engine behavior)
};

/// \brief Feature-major binned design matrix shared by the tree trainers.
///
/// Column `f` is the contiguous `num_rows()`-length array of bin indices of
/// feature `f`; per-feature bucket counts and their prefix sums are baked in
/// so a histogram covering all features is one flat `total_bins()` buffer.
///
/// A row-major mirror of the bins is kept alongside the columns: histogram
/// builds walk a node's rows once and update every examined feature's
/// segment from the row's contiguous bin line (one gradient/target gather
/// and one ~d-byte line per row instead of one gather per row *per
/// feature*), while split partitions read the single split feature through
/// its compact column. Each access pattern gets the layout it is fastest
/// on, and at `uint8_t` width (the default) the two copies together cost
/// exactly what the single row-major `uint16_t` buffer used to.
class BinnedDataset {
 public:
  /// Fits a FeatureBinner on `x` and bins every column.
  static Result<BinnedDataset> Build(const Matrix& x, int max_bins = 64);

  size_t num_rows() const { return n_; }
  size_t num_features() const { return d_; }
  int max_bins() const { return max_bins_; }

  /// True when bins are stored as `uint8_t` (every feature has <= 256
  /// buckets); false selects the `uint16_t` columns/rows.
  bool narrow() const { return narrow_; }
  const uint8_t* Column8(size_t f) const { return bins8_.data() + f * n_; }
  const uint16_t* Column16(size_t f) const { return bins16_.data() + f * n_; }
  /// Row `r`'s bin line in the row-major mirror (histogram-build path).
  const uint8_t* Row8(size_t r) const { return rows8_.data() + r * d_; }
  const uint16_t* Row16(size_t r) const { return rows16_.data() + r * d_; }

  /// Bin of (row, feature) regardless of storage width.
  uint32_t BinAt(size_t r, size_t f) const {
    return narrow_ ? Column8(f)[r] : Column16(f)[r];
  }

  uint32_t NumBins(size_t f) const { return num_bins_[f]; }
  /// Offset of feature `f`'s segment inside a flat all-feature histogram.
  uint32_t BinOffset(size_t f) const { return bin_offsets_[f]; }
  /// Flat histogram length: sum of per-feature bucket counts.
  uint32_t total_bins() const { return bin_offsets_[d_]; }

  const FeatureBinner& binner() const { return binner_; }

 private:
  FeatureBinner binner_;
  size_t n_ = 0;
  size_t d_ = 0;
  int max_bins_ = 0;
  bool narrow_ = true;
  std::vector<uint8_t> bins8_;    // feature-major, f * n_ + r
  std::vector<uint16_t> bins16_;  // populated instead when !narrow_
  std::vector<uint8_t> rows8_;    // row-major mirror, r * d_ + f
  std::vector<uint16_t> rows16_;  // populated instead when !narrow_
  std::vector<uint32_t> num_bins_;     // per feature
  std::vector<uint32_t> bin_offsets_;  // d_ + 1 prefix sums
};

/// Instrumentation shared by the tree growers (ml/tree_grower.h);
/// cumulative across Grow() calls of one grower.
struct TreeGrowerStats {
  size_t nodes_built = 0;            ///< total nodes over all grown trees
  size_t histograms_scanned = 0;     ///< histograms built by scanning rows
  size_t histograms_subtracted = 0;  ///< histograms derived from the sibling
  size_t pool_allocations = 0;       ///< histogram buffers ever heap-allocated
  size_t pool_slots = 0;  ///< live pool buffers (bounded by depth + 2)
};

/// \brief Pool of fixed-size histogram buffers keyed by small slot ids.
///
/// Tree growth holds one slot per pending node (bounded by tree depth, not
/// node count); slots are recycled through a free list, so after the first
/// few nodes of the first tree reach a new depth, Acquire/Release never
/// touch the heap again — the zero-per-node-allocation contract of the
/// histogram engine. `allocations()` counts buffers ever created, which the
/// tests bound by `max_depth + 2`.
template <typename Stat>
class HistogramPool {
 public:
  /// Sets the per-slot entry count. Keeps existing buffers when unchanged,
  /// so re-configuring per tree (RF, GBT rounds) costs nothing.
  void Configure(size_t slot_size) {
    if (slot_size != slot_size_) {
      slots_.clear();
      free_.clear();
      slot_size_ = slot_size;
    }
  }

  int Acquire() {
    if (free_.empty()) {
      slots_.emplace_back(slot_size_);
      ++allocations_;
      free_.push_back(static_cast<int>(slots_.size()) - 1);
    }
    const int s = free_.back();
    free_.pop_back();
    return s;
  }

  void Release(int s) { free_.push_back(s); }

  /// Stable across Acquire/Release (inner buffers never move).
  Stat* Slot(int s) { return slots_[static_cast<size_t>(s)].data(); }

  size_t allocations() const { return allocations_; }
  size_t num_slots() const { return slots_.size(); }

 private:
  std::vector<std::vector<Stat>> slots_;
  std::vector<int> free_;
  size_t slot_size_ = 0;
  size_t allocations_ = 0;
};

/// \brief Build-once cache of BinnedDatasets keyed by design-matrix content.
///
/// The experiment harness trains DT, RF, and GBT candidates on the same
/// design matrix; routing their fits through one cache bins the matrix once
/// instead of once per family. Entries are keyed by shape, `max_bins`, and
/// a content hash, so distinct designs coexist safely. Not thread-safe:
/// intended for the (single-threaded) training side.
class BinnedDatasetCache {
 public:
  /// Returns the dataset for (`x`, `max_bins`), building it on first use.
  /// The pointer stays valid for the cache's lifetime.
  Result<const BinnedDataset*> Get(const Matrix& x, int max_bins);

  size_t builds() const { return builds_; }
  size_t hits() const { return hits_; }

 private:
  struct Entry {
    uint64_t key = 0;
    std::unique_ptr<BinnedDataset> data;
  };
  std::vector<Entry> entries_;
  size_t builds_ = 0;
  size_t hits_ = 0;
};

}  // namespace wmp::ml

#endif  // WMP_ML_BINNED_H_
