#ifndef WMP_ML_SEARCH_H_
#define WMP_ML_SEARCH_H_

/// \file search.h
/// Dataset splitting and hyperparameter search.
///
/// The paper tunes the MLP with randomized search (§III-B3) and uses an
/// 80/20 train/test split for all experiments; these are the supporting
/// utilities.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ml/regressor.h"
#include "util/random.h"

namespace wmp::ml {

/// \brief Row-index split of a dataset.
struct IndexSplit {
  std::vector<uint32_t> train;
  std::vector<uint32_t> test;
};

/// Shuffled train/test split of `n` rows; `test_fraction` in (0, 1).
IndexSplit TrainTestSplitIndices(size_t n, double test_fraction, uint64_t seed);

/// Shuffled k-fold cross-validation splits of `n` rows.
std::vector<IndexSplit> KFoldIndices(size_t n, int folds, uint64_t seed);

/// Materializes the selected rows of `(x, y)`.
void TakeRows(const Matrix& x, const std::vector<double>& y,
              const std::vector<uint32_t>& idx, Matrix* x_out,
              std::vector<double>* y_out);

/// \brief One hyperparameter configuration: a short description plus a
/// factory producing a fresh, unfitted model with those parameters.
struct SearchCandidate {
  std::string description;
  std::function<std::unique_ptr<Regressor>()> factory;
};

/// Configuration for RandomizedSearch.
struct SearchOptions {
  double validation_fraction = 0.2;
  /// Number of candidates sampled (without replacement); 0 = evaluate all.
  int num_samples = 0;
  uint64_t seed = 42;
};

/// Outcome of a search run.
struct SearchOutcome {
  size_t best_index = 0;           ///< into the evaluated subset order
  double best_rmse = 0.0;
  std::vector<size_t> evaluated;   ///< candidate indices, evaluation order
  std::vector<double> rmse;        ///< validation RMSE per evaluated candidate
};

/// \brief Randomized hyperparameter search on a holdout validation split.
///
/// Samples `num_samples` candidates (or all when 0), fits each on the
/// training portion and scores RMSE on the validation portion.
Result<SearchOutcome> RandomizedSearch(const Matrix& x,
                                       const std::vector<double>& y,
                                       const std::vector<SearchCandidate>& candidates,
                                       const SearchOptions& options = {});

}  // namespace wmp::ml

#endif  // WMP_ML_SEARCH_H_
