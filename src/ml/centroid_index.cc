#include "ml/centroid_index.h"

#include <limits>

namespace wmp::ml {

namespace {

/// Relative margin for the centroid-centroid skip test. The quarter
/// distances and the running best each carry O(d * 2^-52) ~ 1e-14 relative
/// rounding error; 1e-6 dwarfs that, so `quarter > best * kBoundSlack`
/// implies the exact inequality and the skip is provably safe.
constexpr double kBoundSlack = 1.0 + 1e-6;

}  // namespace

double SquaredDistanceEarlyExit(const double* a, const double* b, size_t n,
                                double bound) {
  // Mirrors SquaredDistanceScalar exactly: same four accumulator chains,
  // same ((s0+s1)+(s2+s3))+tail reduction. The only addition is a periodic
  // partial check; partial sums of non-negative terms are monotone under
  // IEEE rounding, so partial > bound implies final > bound.
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  size_t i = 0;
  size_t next_check = 8;
  for (; i + 4 <= n; i += 4) {
    const double d0 = a[i] - b[i];
    s0 += d0 * d0;
    const double d1 = a[i + 1] - b[i + 1];
    s1 += d1 * d1;
    const double d2 = a[i + 2] - b[i + 2];
    s2 += d2 * d2;
    const double d3 = a[i + 3] - b[i + 3];
    s3 += d3 * d3;
    if (i + 4 >= next_check) {
      if (((s0 + s1) + (s2 + s3)) > bound) {
        return std::numeric_limits<double>::infinity();
      }
      next_check += 8;
    }
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    tail += d * d;
  }
  return ((s0 + s1) + (s2 + s3)) + tail;
}

CentroidIndex::CentroidIndex(const Matrix& centroids) : centroids_(centroids) {
  const size_t k = centroids_.rows(), d = centroids_.cols();
  quarter_cc_.assign(k * k, 0.0);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      // Division by 4 is exact in binary floating point.
      const double q =
          SquaredDistance(centroids_.RowPtr(i), centroids_.RowPtr(j), d) / 4.0;
      quarter_cc_[i * k + j] = q;
      quarter_cc_[j * k + i] = q;
    }
  }
}

void CentroidIndex::Assign(const double* rows, size_t n, int* labels,
                           AssignStats* stats) const {
  const size_t k = centroids_.rows(), d = centroids_.cols();
  if (k == 0) return;
  AssignStats local;
  int prev = 0;
  for (size_t r = 0; r < n; ++r) {
    const double* row = rows + r * d;
    // Seed with the previous row's winner: batches repeat templates, so
    // this usually starts the scan with a tight best and lets the bounds
    // reject most of the other centroids outright.
    int best_label = prev;
    double best = SquaredDistance(
        row, centroids_.RowPtr(static_cast<size_t>(prev)), d);
    ++local.full_distances;
    const double* quarter_row =
        quarter_cc_.data() + static_cast<size_t>(best_label) * k;
    for (size_t c = 0; c < k; ++c) {
      if (static_cast<int>(c) == prev) continue;
      if (quarter_row[c] > best * kBoundSlack) {
        ++local.bound_skips;
        continue;
      }
      const double dist =
          SquaredDistanceEarlyExit(row, centroids_.RowPtr(c), d, best);
      if (dist == std::numeric_limits<double>::infinity()) {
        ++local.early_exits;
        continue;
      }
      ++local.full_distances;
      const int ci = static_cast<int>(c);
      // Tie-aware: the reference scan keeps the lowest index attaining the
      // minimum; under seeding the current holder may have a higher index
      // than a tied candidate.
      if (dist < best || (dist == best && ci < best_label)) {
        best = dist;
        best_label = ci;
        quarter_row = quarter_cc_.data() + static_cast<size_t>(best_label) * k;
      }
    }
    labels[r] = best_label;
    prev = best_label;
  }
  local.rows += n;
  if (stats != nullptr) {
    stats->rows += local.rows;
    stats->bound_skips += local.bound_skips;
    stats->early_exits += local.early_exits;
    stats->full_distances += local.full_distances;
  }
}

}  // namespace wmp::ml
