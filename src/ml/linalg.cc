#include "ml/linalg.h"

#include <cassert>
#include <cmath>
#include <limits>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace wmp::ml {

Matrix::Matrix(size_t rows, size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  assert(data_.size() == rows_ * cols_);
}

std::vector<double> Matrix::RowVec(size_t r) const {
  return std::vector<double>(RowPtr(r), RowPtr(r) + cols_);
}

Status Matrix::AppendRow(const std::vector<double>& row) {
  if (rows_ == 0 && cols_ == 0) {
    cols_ = row.size();
  } else if (row.size() != cols_) {
    return Status::InvalidArgument("row length mismatch in AppendRow");
  }
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
  return Status::OK();
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t.At(c, r) = At(r, c);
  }
  return t;
}

Result<Matrix> Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  Matrix m;
  for (const auto& r : rows) WMP_RETURN_IF_ERROR(m.AppendRow(r));
  return m;
}

std::vector<double> MatVec(const Matrix& a, const std::vector<double>& x) {
  assert(x.size() == a.cols());
  std::vector<double> y(a.rows(), 0.0);
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.RowPtr(r);
    double acc = 0.0;
    for (size_t c = 0; c < a.cols(); ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

std::vector<double> MatTVec(const Matrix& a, const std::vector<double>& x) {
  assert(x.size() == a.rows());
  std::vector<double> y(a.cols(), 0.0);
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.RowPtr(r);
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (size_t c = 0; c < a.cols(); ++c) y[c] += row[c] * xr;
  }
  return y;
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  // i-k-j loop order keeps the inner loop streaming over rows of b and c.
  for (size_t i = 0; i < a.rows(); ++i) {
    double* crow = c.RowPtr(i);
    for (size_t k = 0; k < a.cols(); ++k) {
      const double aik = a.At(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.RowPtr(k);
      for (size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix Gram(const Matrix& a) {
  Matrix g(a.cols(), a.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.RowPtr(r);
    for (size_t i = 0; i < a.cols(); ++i) {
      const double ri = row[i];
      if (ri == 0.0) continue;
      double* grow = g.RowPtr(i);
      for (size_t j = i; j < a.cols(); ++j) grow[j] += ri * row[j];
    }
  }
  // Mirror the upper triangle.
  for (size_t i = 0; i < g.rows(); ++i) {
    for (size_t j = 0; j < i; ++j) g.At(i, j) = g.At(j, i);
  }
  return g;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm2(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y) {
  assert(x.size() == y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

// Register-blocked: four independent accumulator chains over the dimension
// axis, so the adds interleave in the pipeline (and vectorize cleanly)
// instead of serializing on one `acc += d*d` dependency. The kmeans
// assignment scan — the batch-inference profile's hot spot — spends nearly
// all its time here. The (s0+s1)+(s2+s3)+tail reduction order is fixed and
// shared with NearestCentroids below, which is what keeps batch and scalar
// template assignments bitwise identical.
double SquaredDistanceScalar(const double* a, const double* b, size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = a[i] - b[i];
    s0 += d0 * d0;
    const double d1 = a[i + 1] - b[i + 1];
    s1 += d1 * d1;
    const double d2 = a[i + 2] - b[i + 2];
    s2 += d2 * d2;
    const double d3 = a[i + 3] - b[i + 3];
    s3 += d3 * d3;
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    tail += d * d;
  }
  return ((s0 + s1) + (s2 + s3)) + tail;
}

namespace {

// Vector kernels replicating the scalar chain bit-for-bit: lane j of the
// vector accumulator IS chain s_j (same subtract, multiply, add per block,
// in the same order — deliberately separate mul + add, never an FMA, which
// would round once instead of twice), and the horizontal reduction uses
// the scalar kernel's fixed ((s0+s1)+(s2+s3))+tail order. The kernels are
// compiled with per-function target attributes and only ever called behind
// a runtime CPU check, so the binary still runs on baseline hardware.

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define WMP_HAVE_AVX2_KERNEL 1
__attribute__((target("avx2"))) double SquaredDistanceAvx2(const double* a,
                                                           const double* b,
                                                           size_t n) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  double s[4];
  _mm256_storeu_pd(s, acc);
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    tail += d * d;
  }
  return ((s[0] + s[1]) + (s[2] + s[3])) + tail;
}
#endif

#if defined(__aarch64__)
#define WMP_HAVE_NEON_KERNEL 1
double SquaredDistanceNeon(const double* a, const double* b, size_t n) {
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float64x2_t d01 = vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i));
    const float64x2_t d23 =
        vsubq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2));
    acc01 = vaddq_f64(acc01, vmulq_f64(d01, d01));
    acc23 = vaddq_f64(acc23, vmulq_f64(d23, d23));
  }
  const double s0 = vgetq_lane_f64(acc01, 0);
  const double s1 = vgetq_lane_f64(acc01, 1);
  const double s2 = vgetq_lane_f64(acc23, 0);
  const double s3 = vgetq_lane_f64(acc23, 1);
  double tail = 0.0;
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    tail += d * d;
  }
  return ((s0 + s1) + (s2 + s3)) + tail;
}
#endif

using DistanceKernel = double (*)(const double*, const double*, size_t);

struct DistanceDispatch {
  DistanceKernel fn;
  const char* name;
};

DistanceDispatch PickDistanceKernel() {
#if defined(WMP_HAVE_AVX2_KERNEL)
  if (__builtin_cpu_supports("avx2")) return {&SquaredDistanceAvx2, "avx2"};
#endif
#if defined(WMP_HAVE_NEON_KERNEL)
  return {&SquaredDistanceNeon, "neon"};
#endif
  return {&SquaredDistanceScalar, "scalar"};
}

const DistanceDispatch& GetDistanceDispatch() {
  static const DistanceDispatch dispatch = PickDistanceKernel();
  return dispatch;
}

}  // namespace

double SquaredDistance(const double* a, const double* b, size_t n) {
  return GetDistanceDispatch().fn(a, b, n);
}

const char* SquaredDistanceKernel() { return GetDistanceDispatch().name; }

namespace {

// Four rows against every centroid: the centroid row streams through cache
// once per 4-row block, and each (row, centroid) distance runs through
// SquaredDistance itself — same 4-wide kernel, same accumulation order —
// so labels agree bitwise with a naive per-row scan.
void NearestCentroids4(const double* x0, const double* x1, const double* x2,
                       const double* x3, const Matrix& centroids,
                       int* labels) {
  const size_t k = centroids.rows(), d = centroids.cols();
  double b0 = std::numeric_limits<double>::max(), b1 = b0, b2 = b0, b3 = b0;
  int l0 = 0, l1 = 0, l2 = 0, l3 = 0;
  for (size_t c = 0; c < k; ++c) {
    const double* cc = centroids.RowPtr(c);
    const double s0 = SquaredDistance(x0, cc, d);
    const double s1 = SquaredDistance(x1, cc, d);
    const double s2 = SquaredDistance(x2, cc, d);
    const double s3 = SquaredDistance(x3, cc, d);
    const int ci = static_cast<int>(c);
    if (s0 < b0) { b0 = s0; l0 = ci; }
    if (s1 < b1) { b1 = s1; l1 = ci; }
    if (s2 < b2) { b2 = s2; l2 = ci; }
    if (s3 < b3) { b3 = s3; l3 = ci; }
  }
  labels[0] = l0;
  labels[1] = l1;
  labels[2] = l2;
  labels[3] = l3;
}

}  // namespace

void NearestCentroids(const double* rows, size_t n, const Matrix& centroids,
                      int* labels) {
  const size_t k = centroids.rows(), d = centroids.cols();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    NearestCentroids4(rows + i * d, rows + (i + 1) * d, rows + (i + 2) * d,
                      rows + (i + 3) * d, centroids, labels + i);
  }
  for (; i < n; ++i) {
    const double* row = rows + i * d;
    double best = std::numeric_limits<double>::max();
    int best_c = 0;
    for (size_t c = 0; c < k; ++c) {
      const double dist = SquaredDistance(row, centroids.RowPtr(c), d);
      if (dist < best) {
        best = dist;
        best_c = static_cast<int>(c);
      }
    }
    labels[i] = best_c;
  }
}

Result<CholeskySolver> CholeskySolver::Factor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    double diag = a.At(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l.At(j, k) * l.At(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::FailedPrecondition("matrix is not positive definite");
    }
    l.At(j, j) = std::sqrt(diag);
    for (size_t i = j + 1; i < n; ++i) {
      double v = a.At(i, j);
      for (size_t k = 0; k < j; ++k) v -= l.At(i, k) * l.At(j, k);
      l.At(i, j) = v / l.At(j, j);
    }
  }
  return CholeskySolver(std::move(l));
}

Result<std::vector<double>> CholeskySolver::Solve(
    const std::vector<double>& b) const {
  const size_t n = l_.rows();
  if (b.size() != n) {
    return Status::InvalidArgument("rhs size mismatch in Cholesky solve");
  }
  // Forward substitution: L z = b.
  std::vector<double> z(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (size_t k = 0; k < i; ++k) v -= l_.At(i, k) * z[k];
    z[i] = v / l_.At(i, i);
  }
  // Backward substitution: L^T x = z.
  std::vector<double> x(n, 0.0);
  for (size_t ii = n; ii-- > 0;) {
    double v = z[ii];
    for (size_t k = ii + 1; k < n; ++k) v -= l_.At(k, ii) * x[k];
    x[ii] = v / l_.At(ii, ii);
  }
  return x;
}

}  // namespace wmp::ml
