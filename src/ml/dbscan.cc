#include "ml/dbscan.h"

#include <deque>

namespace wmp::ml {

Status Dbscan::Fit(const Matrix& x, const DbscanOptions& options) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("Dbscan::Fit on empty matrix");
  }
  if (options.eps <= 0.0 || options.min_points < 1) {
    return Status::InvalidArgument("Dbscan: eps must be > 0, min_points >= 1");
  }
  const size_t n = x.rows(), d = x.cols();
  const double eps2 = options.eps * options.eps;

  auto region_query = [&](size_t i) {
    std::vector<size_t> out;
    const double* row = x.RowPtr(i);
    for (size_t j = 0; j < n; ++j) {
      if (SquaredDistance(row, x.RowPtr(j), d) <= eps2) out.push_back(j);
    }
    return out;
  };

  constexpr int kUnvisited = -2;
  constexpr int kNoise = -1;
  labels_.assign(n, kUnvisited);
  int cluster = 0;
  for (size_t i = 0; i < n; ++i) {
    if (labels_[i] != kUnvisited) continue;
    std::vector<size_t> neighbors = region_query(i);
    if (neighbors.size() < static_cast<size_t>(options.min_points)) {
      labels_[i] = kNoise;
      continue;
    }
    labels_[i] = cluster;
    std::deque<size_t> frontier(neighbors.begin(), neighbors.end());
    while (!frontier.empty()) {
      size_t j = frontier.front();
      frontier.pop_front();
      if (labels_[j] == kNoise) labels_[j] = cluster;  // border point
      if (labels_[j] != kUnvisited) continue;
      labels_[j] = cluster;
      std::vector<size_t> jn = region_query(j);
      if (jn.size() >= static_cast<size_t>(options.min_points)) {
        frontier.insert(frontier.end(), jn.begin(), jn.end());
      }
    }
    ++cluster;
  }
  num_clusters_ = cluster;

  centroids_ = Matrix(static_cast<size_t>(num_clusters_), d);
  std::vector<size_t> counts(static_cast<size_t>(num_clusters_), 0);
  for (size_t i = 0; i < n; ++i) {
    if (labels_[i] < 0) continue;
    double* crow = centroids_.RowPtr(static_cast<size_t>(labels_[i]));
    const double* row = x.RowPtr(i);
    for (size_t j = 0; j < d; ++j) crow[j] += row[j];
    ++counts[static_cast<size_t>(labels_[i])];
  }
  for (int c = 0; c < num_clusters_; ++c) {
    double* crow = centroids_.RowPtr(static_cast<size_t>(c));
    const double denom = std::max<size_t>(counts[static_cast<size_t>(c)], 1);
    for (size_t j = 0; j < d; ++j) crow[j] /= static_cast<double>(denom);
  }
  return Status::OK();
}

}  // namespace wmp::ml
