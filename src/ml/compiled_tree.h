#ifndef WMP_ML_COMPILED_TREE_H_
#define WMP_ML_COMPILED_TREE_H_

/// \file compiled_tree.h
/// Bin-space compiled inference for the tree families (DT / RF / GBT).
///
/// A fitted ensemble is flattened into contiguous structure-of-arrays node
/// blocks laid out breadth-first per tree, and prediction runs directly on
/// bin codes instead of raw doubles:
///
///   - per-feature cut points are the sorted distinct thresholds the
///     ensemble's nodes actually store, so each node's double threshold
///     compresses to its u8/u16 index in that edge table — exactly
///     recoverable, making Decompile() lossless;
///   - a row is binned once per used feature (`FeatureBinner::BinValue`),
///     then every tree traversal is integer compares over a few contiguous
///     arrays: no float compares, no pointer chasing, ~7 bytes per node
///     instead of a 40-byte TreeNode;
///   - BFS layout stores siblings adjacently, so only the left child index
///     is kept (right = left + 1) and the branch is the branchless
///     `i = child + (code[feature] > node_code)`;
///   - optionally the top `lut_levels` levels of every tree are unrolled
///     into a complete-tree lookup table: L predictable iterations of
///     `j = 2j + 1 + (code > c)` replace the first L dependent node loads;
///   - batch prediction traverses R rows per tree in lockstep (R = 4 or 8,
///     see TraverseKernel): the R dependent-load chains are independent, so
///     they overlap in flight (memory-level parallelism) and each tree's
///     node lines are touched once per R-row block instead of once per row.
///     A lane that reaches a leaf parks there — its stored child stays
///     negative, so a branchless select keeps re-applying the identity
///     step until every lane has parked. Row-count tails (and single rows)
///     fall back to the scalar walk; per-row accumulation runs in tree
///     order either way, so every kernel is bitwise-identical.
///
/// Equivalence with the raw-space reference walk is provable, not
/// statistical: for a strictly increasing edge table,
/// `BinValue(f, x) <= code(t)  <=>  x <= t` (binned.h's UpperEdge
/// guarantee), so a compiled traversal reaches the same leaf as
/// `RegressionTree::Predict` for every input, and the per-family
/// accumulation (RF sum-then-divide, GBT base + lr * leaf per round) keeps
/// the reference operation order — predictions are bitwise identical.
/// tests/compiled_test.cc and the bench equivalence gates enforce this.
///
/// The compiled form is also the serialization codec for the tree-family
/// regressors: internal nodes ship (u16 feature, u8/u16 code, i32 child)
/// plus one shared edge table instead of five 8-byte fields per node,
/// which is what shrinks Fig. 8's tree-model payloads and the wire/publish
/// artifacts.

#include <cstdint>
#include <vector>

#include "ml/binned.h"
#include "ml/dtree.h"

namespace wmp::ml {

class DecisionTreeRegressor;
class GbtRegressor;
class RandomForestRegressor;
class Regressor;

/// Batch traversal kernel. Every kernel computes bitwise-identical
/// predictions; they differ only in how many row cursors advance per tree
/// and how node fields are loaded. The numeric values are stable — they
/// travel as `ServiceStats::traverse_kernel_id` over the wire.
enum class TraverseKernel : uint8_t {
  kAuto = 0,       ///< resolve via WMP_TRAVERSE_KERNEL, else best available
  kScalar = 1,     ///< one row at a time (the PR 6 walk; also the tail path)
  kLockstep4 = 2,  ///< 4 row cursors per tree, portable branchless lanes
  kLockstep8 = 3,  ///< 8 row cursors per tree, portable branchless lanes
  kAvx2 = 4,       ///< 8 lanes via AVX2 gathers (runtime-dispatched)
};

/// Stable display name ("auto", "scalar", "lockstep4", ...).
const char* TraverseKernelName(TraverseKernel kernel);
/// Name for a wire-carried kernel id; 0 maps to "reference" (a service
/// scoring through the raw-space walk reports no compiled kernel).
const char* TraverseKernelIdName(uint64_t id);
/// True when this CPU can execute `kernel` (kAvx2 needs AVX2; the portable
/// kernels always qualify). kAuto is "supported" — it resolves to one that is.
bool TraverseKernelSupported(TraverseKernel kernel);
/// Resolution used at Compile/Deserialize: an explicit request wins (falling
/// back to lockstep8 only if the CPU lacks it); kAuto consults
/// `WMP_TRAVERSE_KERNEL` (read once per process), else picks lockstep8 —
/// the bench-winning kernel (the AVX2 gather variant is opt-in: gathers
/// are microcoded on many cores and lose to the portable lanes). Never
/// returns kAuto.
TraverseKernel ResolveTraverseKernel(TraverseKernel requested);

/// Compilation knobs.
struct CompileOptions {
  /// Tree levels unrolled into the lookup table (0 disables it). Depth-3
  /// replaces the three hottest dependent loads per tree; deeper tables
  /// grow as 2^L per tree for diminishing returns.
  int lut_levels = 3;
  /// Batch traversal kernel; kAuto resolves at compile time (env override,
  /// then best available). Benches and tests pin specific kernels.
  TraverseKernel kernel = TraverseKernel::kAuto;
};

/// \brief A fitted tree ensemble flattened for bin-space prediction.
///
/// Immutable after construction; Predict/PredictRow are const and
/// thread-safe, so one compiled ensemble can back concurrent serving
/// shards.
class CompiledEnsemble {
 public:
  /// How per-tree leaf values combine into the prediction. Mirrors each
  /// family's Predict arithmetic operation-for-operation.
  enum class Combine : uint8_t {
    kSingle = 0,   ///< DT: the single tree's leaf value
    kAverage = 1,  ///< RF: sum over trees, then divide by tree count
    kBoosted = 2,  ///< GBT: base_score + sum of scale * leaf per tree
  };

  static Result<CompiledEnsemble> Compile(const DecisionTreeRegressor& model,
                                          const CompileOptions& opts = {});
  static Result<CompiledEnsemble> Compile(const RandomForestRegressor& model,
                                          const CompileOptions& opts = {});
  static Result<CompiledEnsemble> Compile(const GbtRegressor& model,
                                          const CompileOptions& opts = {});
  /// Family-dispatching entry: compiles any tree-family regressor, fails
  /// with FailedPrecondition for families without a tree form (Ridge, MLP)
  /// — callers treat that as "serve through the reference path".
  static Result<CompiledEnsemble> CompileRegressor(
      const Regressor& model, const CompileOptions& opts = {});

  /// Predicts one raw-feature row of width `n >= num_features()`. Bins the
  /// used features, then traverses every tree in bin space.
  double PredictRow(const double* x, size_t n) const;

  /// Checked single-row convenience (PredictOne-shaped).
  Result<double> PredictOne(const std::vector<double>& x) const;

  /// Batch prediction over the rows of `x` (cols >= num_features()).
  /// Columns are binned once via the multi-probe searches, then row blocks
  /// traverse on the shared worker pool — same grain as the reference
  /// batch Predict, and bitwise the same predictions.
  Result<std::vector<double>> Predict(const Matrix& x) const;

  /// Reconstructs the ensemble as reference RegressionTrees. Lossless for
  /// everything prediction reads: thresholds come back as the exact
  /// doubles (edge-table lookup), leaf values and tree topology are
  /// preserved. Internal-node mean values (never read by Predict) are not
  /// carried and decompile to 0.
  Result<std::vector<RegressionTree>> Decompile() const;

  Combine combine() const { return combine_; }
  double base_score() const { return base_; }
  /// Per-tree leaf scale (GBT learning rate; 1 for DT/RF).
  double scale() const { return scale_; }
  size_t num_trees() const { return tree_counts_.size(); }
  size_t num_nodes() const { return child_.size(); }
  size_t num_leaves() const { return leaf_value_.size(); }
  /// Width of the bin space: max used feature index + 1.
  size_t num_features() const { return d_; }
  /// True when every feature has <= 255 cut points and codes are u8.
  bool narrow() const { return narrow_; }
  int lut_levels() const { return lut_levels_; }

  /// The resolved batch traversal kernel (never kAuto).
  TraverseKernel kernel() const { return kernel_; }
  const char* kernel_name() const { return TraverseKernelName(kernel_); }
  /// Kernel id as surfaced in ServiceStats (numeric value of kernel()).
  uint64_t kernel_id() const { return static_cast<uint64_t>(kernel_); }
  /// Rows a full lockstep block covers (1 for kScalar).
  int kernel_block_rows() const;
  /// Re-pins the batch kernel after compilation (benches/tests sweep
  /// kernels on one compiled ensemble without recompiling). kAuto re-runs
  /// the default resolution; pinning an unsupported kernel fails.
  Status ForceKernel(TraverseKernel kernel);

  /// \name Compact serialization.
  /// The stream carries the edge tables, the SoA blocks (child i32 per
  /// node; feature + code for internal nodes only) and the leaf values.
  /// The lookup table is rebuilt on load, never shipped.
  /// @{
  void Serialize(BinaryWriter* writer) const;
  static Result<CompiledEnsemble> Deserialize(BinaryReader* reader,
                                              const CompileOptions& opts = {});
  size_t SerializedBytes() const;
  /// @}

 private:
  static Result<CompiledEnsemble> CompileTrees(
      const std::vector<const RegressionTree*>& trees, Combine combine,
      double base, double scale, const CompileOptions& opts);
  Status BuildLut(int levels);

  template <typename Code>
  double PredictRowT(const double* x) const;
  template <typename Code>
  void PredictBlockT(const Code* codes, size_t begin, size_t end,
                     double* out) const;
  template <typename Code>
  double TraverseTree(size_t t, const Code* codes, const Code* node_code,
                      const Code* lut_code) const;
  /// Lockstep core: predicts R consecutive rows (`codes` points at the
  /// first row's bin line; rows are `d_` apart) with R cursors advancing
  /// per tree. Accumulation is per-lane in tree order — bitwise equal to
  /// R scalar walks.
  template <typename Code, int R>
  void PredictRowsLockstepT(const Code* codes, const Code* node_code,
                            const Code* lut_code, double* out) const;
  /// Appends a few zero elements to the per-node / LUT arrays so 4-byte
  /// AVX2 gathers of u8/u16 fields at the last node stay in bounds. The
  /// padding is invisible to Serialize/Decompile (both iterate counts).
  void PadNodeArraysForGather();

  Combine combine_ = Combine::kSingle;
  double base_ = 0.0;
  double scale_ = 1.0;
  uint32_t d_ = 0;
  bool narrow_ = true;
  TraverseKernel kernel_ = TraverseKernel::kScalar;  // resolved, never kAuto
  /// Bin space: edges_[f] = sorted distinct thresholds over feature f.
  FeatureBinner binner_;
  std::vector<uint16_t> used_features_;  // features with >= 1 cut point

  // SoA node blocks. Tree t owns the contiguous index range
  // [tree_base_[t], tree_base_[t] + tree_counts_[t]), breadth-first with
  // the root first and siblings adjacent. child_[i] >= 0 is the left child
  // (right child = child_[i] + 1); child_[i] < 0 marks a leaf whose value
  // lives at leaf_value_[-(child_[i] + 1)]. feature/code are meaningful
  // for internal nodes only.
  std::vector<uint32_t> tree_counts_;
  std::vector<uint32_t> tree_base_;  // prefix sums of tree_counts_
  std::vector<uint16_t> node_feature_;
  std::vector<uint8_t> code8_;    // when narrow_
  std::vector<uint16_t> code16_;  // when !narrow_
  std::vector<int32_t> child_;
  std::vector<double> leaf_value_;

  // Top-level unroll: per tree, a complete binary tree of 2^L - 1
  // (feature, code) tests and 2^L exit slots holding node indices to
  // resume the SoA walk from (possibly leaves). Shallow branches are
  // padded with always-left dummy tests (code = max code value), so the
  // unrolled loop needs no bounds logic. Rebuilt on Compile/Deserialize.
  int lut_levels_ = 0;
  std::vector<uint16_t> lut_feature_;
  std::vector<uint8_t> lut_code8_;
  std::vector<uint16_t> lut_code16_;
  std::vector<uint32_t> lut_exit_;
};

/// Byte size of `model` under the retained pointer-tree codec
/// (RegressionTree::Serialize: five 8-byte fields per node) for the tree
/// families, and the model's own codec otherwise — Fig. 8's
/// pointer-vs-compiled comparison column.
Result<size_t> PointerSerializedBytes(const Regressor& model);

}  // namespace wmp::ml

#endif  // WMP_ML_COMPILED_TREE_H_
