#ifndef WMP_ML_SCALER_H_
#define WMP_ML_SCALER_H_

/// \file scaler.h
/// Feature standardization (zero mean, unit variance). Plan-feature vectors
/// mix operator counts (~units) with cardinalities (~millions); k-means and
/// the MLP both require standardized inputs to behave.

#include <vector>

#include "ml/linalg.h"
#include "util/io.h"
#include "util/status.h"

namespace wmp::ml {

/// \brief Per-column standardizer: `x' = (x - mean) / std`.
///
/// Columns with zero variance are passed through centered only (divisor 1),
/// matching scikit-learn's StandardScaler behaviour.
class StandardScaler {
 public:
  StandardScaler() = default;

  /// Learns per-column mean and standard deviation from `x`.
  Status Fit(const Matrix& x);

  /// Returns the standardized copy of `x`. Requires a prior Fit() with the
  /// same column count. Row blocks are processed on the worker pool.
  Result<Matrix> Transform(const Matrix& x) const;

  /// Standardizes every row of `x` in place — the batch pipeline's
  /// allocation-free variant of Transform. Parallelized over row blocks.
  Status TransformInPlace(Matrix* x) const;

  /// Standardizes a single row in place.
  Status TransformRow(std::vector<double>* row) const;

  /// Undoes TransformRow.
  Status InverseTransformRow(std::vector<double>* row) const;

  bool fitted() const { return !mean_.empty(); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& std_dev() const { return std_; }

  void Serialize(BinaryWriter* writer) const;
  static Result<StandardScaler> Deserialize(BinaryReader* reader);

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

}  // namespace wmp::ml

#endif  // WMP_ML_SCALER_H_
