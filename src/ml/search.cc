#include "ml/search.h"

#include <algorithm>
#include <numeric>

#include "ml/metrics.h"

namespace wmp::ml {

IndexSplit TrainTestSplitIndices(size_t n, double test_fraction,
                                 uint64_t seed) {
  std::vector<uint32_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  Rng rng(seed);
  rng.Shuffle(&idx);
  const size_t n_test = std::min(
      n, std::max<size_t>(1, static_cast<size_t>(test_fraction *
                                                 static_cast<double>(n))));
  IndexSplit split;
  split.test.assign(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(n_test));
  split.train.assign(idx.begin() + static_cast<std::ptrdiff_t>(n_test), idx.end());
  return split;
}

std::vector<IndexSplit> KFoldIndices(size_t n, int folds, uint64_t seed) {
  folds = std::max(folds, 2);
  std::vector<uint32_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  Rng rng(seed);
  rng.Shuffle(&idx);
  std::vector<IndexSplit> out(static_cast<size_t>(folds));
  for (size_t i = 0; i < n; ++i) {
    const size_t fold = i % static_cast<size_t>(folds);
    for (size_t f = 0; f < static_cast<size_t>(folds); ++f) {
      if (f == fold) {
        out[f].test.push_back(idx[i]);
      } else {
        out[f].train.push_back(idx[i]);
      }
    }
  }
  return out;
}

void TakeRows(const Matrix& x, const std::vector<double>& y,
              const std::vector<uint32_t>& idx, Matrix* x_out,
              std::vector<double>* y_out) {
  *x_out = Matrix(idx.size(), x.cols());
  y_out->resize(idx.size());
  for (size_t i = 0; i < idx.size(); ++i) {
    std::copy(x.RowPtr(idx[i]), x.RowPtr(idx[i]) + x.cols(), x_out->RowPtr(i));
    (*y_out)[i] = y[idx[i]];
  }
}

Result<SearchOutcome> RandomizedSearch(
    const Matrix& x, const std::vector<double>& y,
    const std::vector<SearchCandidate>& candidates,
    const SearchOptions& options) {
  if (candidates.empty()) {
    return Status::InvalidArgument("RandomizedSearch: no candidates");
  }
  if (x.rows() < 4) {
    return Status::InvalidArgument("RandomizedSearch: need >= 4 rows");
  }
  IndexSplit split =
      TrainTestSplitIndices(x.rows(), options.validation_fraction, options.seed);
  Matrix x_train, x_val;
  std::vector<double> y_train, y_val;
  TakeRows(x, y, split.train, &x_train, &y_train);
  TakeRows(x, y, split.test, &x_val, &y_val);

  std::vector<size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), 0);
  if (options.num_samples > 0 &&
      static_cast<size_t>(options.num_samples) < candidates.size()) {
    Rng rng(options.seed ^ 0xABCD);
    rng.Shuffle(&order);
    order.resize(static_cast<size_t>(options.num_samples));
  }

  SearchOutcome outcome;
  outcome.best_rmse = -1.0;
  for (size_t oi = 0; oi < order.size(); ++oi) {
    std::unique_ptr<Regressor> model = candidates[order[oi]].factory();
    if (model == nullptr) {
      return Status::Internal("candidate factory returned null");
    }
    WMP_RETURN_IF_ERROR(model->Fit(x_train, y_train));
    WMP_ASSIGN_OR_RETURN(std::vector<double> pred, model->Predict(x_val));
    const double rmse = Rmse(y_val, pred);
    outcome.evaluated.push_back(order[oi]);
    outcome.rmse.push_back(rmse);
    if (outcome.best_rmse < 0.0 || rmse < outcome.best_rmse) {
      outcome.best_rmse = rmse;
      outcome.best_index = oi;
    }
  }
  return outcome;
}

}  // namespace wmp::ml
