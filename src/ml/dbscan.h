#ifndef WMP_ML_DBSCAN_H_
#define WMP_ML_DBSCAN_H_

/// \file dbscan.h
/// DBSCAN density clustering. The paper's related-work section reports an
/// ablation comparing DBSCAN-learned templates against k-means templates
/// (DBSeer uses DBSCAN for transaction-type learning); `bench/abl_clustering`
/// reproduces that comparison.

#include <vector>

#include "ml/linalg.h"
#include "util/status.h"

namespace wmp::ml {

/// Configuration for DBSCAN::Fit.
struct DbscanOptions {
  double eps = 0.5;     ///< neighborhood radius (Euclidean).
  int min_points = 5;   ///< core-point density threshold (incl. self).
};

/// \brief DBSCAN clustering; noise points get label -1.
///
/// To use DBSCAN output as query templates, callers typically map noise to
/// its nearest cluster centroid (see `TemplateLearner`).
class Dbscan {
 public:
  Dbscan() = default;

  /// Clusters the rows of `x`; O(n^2) neighbor search, intended for the
  /// template-ablation scale (thousands of queries).
  Status Fit(const Matrix& x, const DbscanOptions& options);

  /// Per-row cluster labels; -1 means noise.
  const std::vector<int>& labels() const { return labels_; }
  int num_clusters() const { return num_clusters_; }

  /// Mean point of each cluster (noise excluded); `num_clusters()` rows.
  const Matrix& centroids() const { return centroids_; }

 private:
  std::vector<int> labels_;
  int num_clusters_ = 0;
  Matrix centroids_;
};

}  // namespace wmp::ml

#endif  // WMP_ML_DBSCAN_H_
