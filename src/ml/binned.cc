#include "ml/binned.h"

#include <algorithm>
#include <cmath>

#include "util/hash.h"

namespace wmp::ml {

Status FeatureBinner::Fit(const Matrix& x, int max_bins) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("FeatureBinner::Fit on empty matrix");
  }
  if (max_bins < 2 || max_bins > 65535) {
    return Status::InvalidArgument("max_bins must be in [2, 65535]");
  }
  const size_t n = x.rows(), d = x.cols();
  edges_.assign(d, {});
  std::vector<double> col(n);
  for (size_t f = 0; f < d; ++f) {
    for (size_t r = 0; r < n; ++r) col[r] = x.At(r, f);
    std::sort(col.begin(), col.end());
    std::vector<double>& edges = edges_[f];
    // Quantile cut points; duplicates collapse so constant features get a
    // single bin.
    for (int b = 1; b < max_bins; ++b) {
      const size_t idx = std::min(
          n - 1, static_cast<size_t>(static_cast<double>(b) *
                                     static_cast<double>(n) / max_bins));
      const double v = col[idx];
      if (edges.empty() || v > edges.back()) edges.push_back(v);
    }
    // Drop a trailing edge equal to the max so the last bin is non-empty.
    while (!edges.empty() && edges.back() >= col.back()) edges.pop_back();
  }
  BuildRadixIndexes();
  return Status::OK();
}

FeatureBinner FeatureBinner::FromEdges(
    std::vector<std::vector<double>> edges) {
  FeatureBinner binner;
  binner.edges_ = std::move(edges);
  binner.BuildRadixIndexes();
  return binner;
}

void FeatureBinner::BuildRadixIndexes() {
  // Below this the log2(edges) cmov chain is already a handful of steps
  // and the bucket arithmetic would not pay for itself.
  constexpr size_t kMinEdgesForRadix = 8;
  radix_.assign(edges_.size(), {});
  for (size_t f = 0; f < edges_.size(); ++f) {
    const std::vector<double>& edges = edges_[f];
    RadixBuckets& radix = radix_[f];
    if (edges.size() < kMinEdgesForRadix) continue;
    const double lo_edge = edges.front();
    const double hi_edge = edges.back();
    const double span = hi_edge - lo_edge;
    if (!std::isfinite(span) || span <= 0.0) continue;
    // ~2 buckets per edge: expected occupancy 0.5, so most sub-range
    // searches inspect zero or one edge.
    const uint32_t nbuckets = static_cast<uint32_t>(
        std::min<size_t>(2 * edges.size(), 1u << 16));
    const double scale = static_cast<double>(nbuckets) / span;
    if (!std::isfinite(scale) || scale <= 0.0) continue;
    radix.min_edge = lo_edge;
    radix.scale = scale;
    radix.nbuckets = nbuckets;
    radix.lo.assign(nbuckets + 1, 0);
    // Count edges per bucket, then prefix-sum: lo[b] = edges in buckets
    // < b. The bucket formula here MUST match the lookup's exactly —
    // shared bucket math is what makes the bracketing airtight.
    for (const double edge : edges) {
      const double t = (edge - lo_edge) * scale;
      uint32_t b = 0;
      if (t > 0.0) {
        b = (t >= static_cast<double>(nbuckets)) ? nbuckets - 1
                                                 : static_cast<uint32_t>(t);
      }
      ++radix.lo[b + 1];
    }
    for (uint32_t b = 0; b < nbuckets; ++b) radix.lo[b + 1] += radix.lo[b];
    radix.usable = true;
  }
}

namespace {

// Branchless lower bound over a sorted edge array: the bin of `value` is
// the index of the first edge >= value. BinnedDataset::Build calls this
// once per (row, feature) — with tree growth now histogram-based, this
// search IS the binning phase (train_throughput's bin_ms), and the
// classic std::lower_bound loop spends it on unpredictable compare
// branches (each quantile edge is a coin flip by construction). The
// halving step below has no branch on the comparison: the compiler turns
// `base += (cond ? half : 0)` into a cmov, so the only control flow is
// the length countdown, which is data-independent and predicted
// perfectly. Result is identical to std::lower_bound for every input
// (checked exhaustively in tests/binning_test.cc) — bitwise-equal models.
inline size_t LowerBoundIndex(const double* edges, size_t n, double value) {
  const double* base = edges;
  while (n > 1) {
    const size_t half = n / 2;
    base += (base[half - 1] < value) ? half : 0;  // cmov, not a branch
    n -= half;
  }
  return static_cast<size_t>(base - edges) +
         ((n == 1 && *base < value) ? 1 : 0);
}

// Four LowerBoundIndex searches over the SAME edge array, interleaved.
// Each probe alone is a serial chain of dependent cmov+load steps (the
// next halving can't start before the previous compare's load resolves);
// batching four values gives the core four independent chains to overlap,
// which is where the multi-probe throughput comes from. All four probes
// share the trip count — it depends only on the edge count — so there is
// no divergence to mask. Step-for-step identical arithmetic to the scalar
// search: the results are the same indices, not merely close.
inline void LowerBound4(const double* edges, size_t n, const double* v,
                        size_t* out) {
  const double* b0 = edges;
  const double* b1 = edges;
  const double* b2 = edges;
  const double* b3 = edges;
  size_t m = n;
  while (m > 1) {
    const size_t half = m / 2;
    b0 += (b0[half - 1] < v[0]) ? half : 0;
    b1 += (b1[half - 1] < v[1]) ? half : 0;
    b2 += (b2[half - 1] < v[2]) ? half : 0;
    b3 += (b3[half - 1] < v[3]) ? half : 0;
    m -= half;
  }
  const bool tail = (m == 1);
  out[0] = static_cast<size_t>(b0 - edges) + ((tail && *b0 < v[0]) ? 1 : 0);
  out[1] = static_cast<size_t>(b1 - edges) + ((tail && *b1 < v[1]) ? 1 : 0);
  out[2] = static_cast<size_t>(b2 - edges) + ((tail && *b2 < v[2]) ? 1 : 0);
  out[3] = static_cast<size_t>(b3 - edges) + ((tail && *b3 < v[3]) ? 1 : 0);
}

// Borrowed view of a feature's radix bucket index (the owning struct is
// private to FeatureBinner; the members pass this through).
struct RadixView {
  bool usable = false;
  double min_edge = 0.0;
  double scale = 0.0;
  uint32_t nbuckets = 0;
  const uint32_t* lo = nullptr;
};

// Bucket of `value` under the grid — the exact arithmetic the index was
// built with. The `> 0` guard routes NaN and everything below the first
// edge to bucket 0 without ever casting a non-finite double to integer.
inline uint32_t RadixBucket(const RadixView& radix, double value) {
  const double t = (value - radix.min_edge) * radix.scale;
  if (!(t > 0.0)) return 0;
  if (t >= static_cast<double>(radix.nbuckets)) return radix.nbuckets - 1;
  return static_cast<uint32_t>(t);
}

// Radix-narrowed lower bound: identical index to LowerBoundIndex over the
// full array, found by searching only the value's bucket sub-range.
inline size_t RadixLowerBound(const double* edges, const RadixView& radix,
                              double value) {
  const uint32_t b = RadixBucket(radix, value);
  const uint32_t lo = radix.lo[b];
  return lo + LowerBoundIndex(edges + lo, radix.lo[b + 1] - lo, value);
}

// Strided multi-probe column binning shared by the u8 and u16 outputs.
template <typename Out>
void BinColumnImpl(const std::vector<double>& edges, const RadixView& radix,
                   const double* values, size_t n, size_t value_stride,
                   Out* out, size_t out_stride) {
  const double* e = edges.data();
  const size_t ne = edges.size();
  size_t i = 0;
  if (radix.usable) {
    // Expected sub-range length is under one edge (~2 buckets per edge),
    // so each lookup is bucket arithmetic + a couple of loads; unroll by
    // four anyway so the bucket computes and prefix loads overlap.
    for (; i + 4 <= n; i += 4) {
      out[(i + 0) * out_stride] = static_cast<Out>(
          RadixLowerBound(e, radix, values[(i + 0) * value_stride]));
      out[(i + 1) * out_stride] = static_cast<Out>(
          RadixLowerBound(e, radix, values[(i + 1) * value_stride]));
      out[(i + 2) * out_stride] = static_cast<Out>(
          RadixLowerBound(e, radix, values[(i + 2) * value_stride]));
      out[(i + 3) * out_stride] = static_cast<Out>(
          RadixLowerBound(e, radix, values[(i + 3) * value_stride]));
    }
    for (; i < n; ++i) {
      out[i * out_stride] = static_cast<Out>(
          RadixLowerBound(e, radix, values[i * value_stride]));
    }
    return;
  }
  double v[4];
  size_t idx[4];
  for (; i + 4 <= n; i += 4) {
    v[0] = values[(i + 0) * value_stride];
    v[1] = values[(i + 1) * value_stride];
    v[2] = values[(i + 2) * value_stride];
    v[3] = values[(i + 3) * value_stride];
    LowerBound4(e, ne, v, idx);
    out[(i + 0) * out_stride] = static_cast<Out>(idx[0]);
    out[(i + 1) * out_stride] = static_cast<Out>(idx[1]);
    out[(i + 2) * out_stride] = static_cast<Out>(idx[2]);
    out[(i + 3) * out_stride] = static_cast<Out>(idx[3]);
  }
  for (; i < n; ++i) {
    out[i * out_stride] = static_cast<Out>(
        LowerBoundIndex(e, ne, values[i * value_stride]));
  }
}

}  // namespace

uint16_t FeatureBinner::BinValue(size_t f, double value) const {
  const std::vector<double>& edges = edges_[f];
  return static_cast<uint16_t>(
      LowerBoundIndex(edges.data(), edges.size(), value));
}

namespace {

template <typename Radix>
RadixView ViewOf(const Radix& radix) {
  RadixView view;
  view.usable = radix.usable;
  view.min_edge = radix.min_edge;
  view.scale = radix.scale;
  view.nbuckets = radix.nbuckets;
  view.lo = radix.lo.data();
  return view;
}

}  // namespace

void FeatureBinner::BinColumn(size_t f, const double* values, size_t n,
                              size_t value_stride, uint16_t* out,
                              size_t out_stride) const {
  BinColumnImpl(edges_[f], ViewOf(radix_[f]), values, n, value_stride, out,
                out_stride);
}

void FeatureBinner::BinColumn(size_t f, const double* values, size_t n,
                              size_t value_stride, uint8_t* out,
                              size_t out_stride) const {
  BinColumnImpl(edges_[f], ViewOf(radix_[f]), values, n, value_stride, out,
                out_stride);
}

Result<std::vector<uint16_t>> FeatureBinner::BinAll(const Matrix& x) const {
  if (!fitted()) return Status::FailedPrecondition("binner not fitted");
  if (x.cols() != edges_.size()) {
    return Status::InvalidArgument("binner column count mismatch");
  }
  std::vector<uint16_t> out(x.rows() * x.cols());
  if (x.rows() == 0) return out;
  // Feature-at-a-time so each edge array stays hot across the whole column
  // and the multi-probe searches batch rows of equal trip count.
  for (size_t f = 0; f < x.cols(); ++f) {
    BinColumn(f, x.data().data() + f, x.rows(), x.cols(), out.data() + f,
              x.cols());
  }
  return out;
}

Result<BinnedDataset> BinnedDataset::Build(const Matrix& x, int max_bins) {
  BinnedDataset data;
  WMP_RETURN_IF_ERROR(data.binner_.Fit(x, max_bins));
  data.n_ = x.rows();
  data.d_ = x.cols();
  data.max_bins_ = max_bins;
  data.num_bins_.resize(data.d_);
  data.bin_offsets_.assign(data.d_ + 1, 0);
  uint32_t widest = 0;
  for (size_t f = 0; f < data.d_; ++f) {
    const uint32_t nb = static_cast<uint32_t>(data.binner_.NumBins(f));
    data.num_bins_[f] = nb;
    data.bin_offsets_[f + 1] = data.bin_offsets_[f] + nb;
    widest = std::max(widest, nb);
  }
  data.narrow_ = widest <= 256;
  if (data.narrow_) {
    data.bins8_.resize(data.n_ * data.d_);
    data.rows8_.resize(data.n_ * data.d_);
  } else {
    data.bins16_.resize(data.n_ * data.d_);
    data.rows16_.resize(data.n_ * data.d_);
  }
  // Column-contiguous fill: one feature at a time so the per-feature bin
  // search stays warm and the multi-probe searches batch four rows of the
  // same feature (equal trip counts, four overlapping cmov chains); the
  // row-major mirror is scattered from the finished column afterwards so
  // the search loop's write stream stays purely sequential.
  for (size_t f = 0; f < data.d_; ++f) {
    const double* vals = x.data().data() + f;
    if (data.narrow_) {
      uint8_t* col = data.bins8_.data() + f * data.n_;
      data.binner_.BinColumn(f, vals, data.n_, data.d_, col, 1);
      for (size_t r = 0; r < data.n_; ++r) {
        data.rows8_[r * data.d_ + f] = col[r];
      }
    } else {
      uint16_t* col = data.bins16_.data() + f * data.n_;
      data.binner_.BinColumn(f, vals, data.n_, data.d_, col, 1);
      for (size_t r = 0; r < data.n_; ++r) {
        data.rows16_[r * data.d_ + f] = col[r];
      }
    }
  }
  return data;
}

Result<const BinnedDataset*> BinnedDatasetCache::Get(const Matrix& x,
                                                     int max_bins) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("BinnedDatasetCache::Get on empty matrix");
  }
  uint64_t key = util::HashBytes(x.data().data(),
                                 x.data().size() * sizeof(double),
                                 0x42494E4E45444453ull);  // "BINNEDDS"
  key = util::Mix64(key ^ (static_cast<uint64_t>(x.rows()) << 20) ^
                    (static_cast<uint64_t>(x.cols()) << 4) ^
                    static_cast<uint64_t>(max_bins));
  for (const Entry& e : entries_) {
    if (e.key == key && e.data->num_rows() == x.rows() &&
        e.data->num_features() == x.cols() && e.data->max_bins() == max_bins) {
      ++hits_;
      return e.data.get();
    }
  }
  WMP_ASSIGN_OR_RETURN(BinnedDataset built, BinnedDataset::Build(x, max_bins));
  entries_.push_back({key, std::make_unique<BinnedDataset>(std::move(built))});
  ++builds_;
  return entries_.back().data.get();
}

}  // namespace wmp::ml
