#include "ml/binned.h"

#include <algorithm>

#include "util/hash.h"

namespace wmp::ml {

Status FeatureBinner::Fit(const Matrix& x, int max_bins) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("FeatureBinner::Fit on empty matrix");
  }
  if (max_bins < 2 || max_bins > 65535) {
    return Status::InvalidArgument("max_bins must be in [2, 65535]");
  }
  const size_t n = x.rows(), d = x.cols();
  edges_.assign(d, {});
  std::vector<double> col(n);
  for (size_t f = 0; f < d; ++f) {
    for (size_t r = 0; r < n; ++r) col[r] = x.At(r, f);
    std::sort(col.begin(), col.end());
    std::vector<double>& edges = edges_[f];
    // Quantile cut points; duplicates collapse so constant features get a
    // single bin.
    for (int b = 1; b < max_bins; ++b) {
      const size_t idx = std::min(
          n - 1, static_cast<size_t>(static_cast<double>(b) *
                                     static_cast<double>(n) / max_bins));
      const double v = col[idx];
      if (edges.empty() || v > edges.back()) edges.push_back(v);
    }
    // Drop a trailing edge equal to the max so the last bin is non-empty.
    while (!edges.empty() && edges.back() >= col.back()) edges.pop_back();
  }
  return Status::OK();
}

namespace {

// Branchless lower bound over a sorted edge array: the bin of `value` is
// the index of the first edge >= value. BinnedDataset::Build calls this
// once per (row, feature) — with tree growth now histogram-based, this
// search IS the binning phase (train_throughput's bin_ms), and the
// classic std::lower_bound loop spends it on unpredictable compare
// branches (each quantile edge is a coin flip by construction). The
// halving step below has no branch on the comparison: the compiler turns
// `base += (cond ? half : 0)` into a cmov, so the only control flow is
// the length countdown, which is data-independent and predicted
// perfectly. Result is identical to std::lower_bound for every input
// (checked exhaustively in tests/binning_test.cc) — bitwise-equal models.
inline size_t LowerBoundIndex(const double* edges, size_t n, double value) {
  const double* base = edges;
  while (n > 1) {
    const size_t half = n / 2;
    base += (base[half - 1] < value) ? half : 0;  // cmov, not a branch
    n -= half;
  }
  return static_cast<size_t>(base - edges) +
         ((n == 1 && *base < value) ? 1 : 0);
}

}  // namespace

uint16_t FeatureBinner::BinValue(size_t f, double value) const {
  const std::vector<double>& edges = edges_[f];
  return static_cast<uint16_t>(
      LowerBoundIndex(edges.data(), edges.size(), value));
}

Result<std::vector<uint16_t>> FeatureBinner::BinAll(const Matrix& x) const {
  if (!fitted()) return Status::FailedPrecondition("binner not fitted");
  if (x.cols() != edges_.size()) {
    return Status::InvalidArgument("binner column count mismatch");
  }
  std::vector<uint16_t> out(x.rows() * x.cols());
  for (size_t r = 0; r < x.rows(); ++r) {
    const double* row = x.RowPtr(r);
    uint16_t* o = out.data() + r * x.cols();
    for (size_t f = 0; f < x.cols(); ++f) o[f] = BinValue(f, row[f]);
  }
  return out;
}

Result<BinnedDataset> BinnedDataset::Build(const Matrix& x, int max_bins) {
  BinnedDataset data;
  WMP_RETURN_IF_ERROR(data.binner_.Fit(x, max_bins));
  data.n_ = x.rows();
  data.d_ = x.cols();
  data.max_bins_ = max_bins;
  data.num_bins_.resize(data.d_);
  data.bin_offsets_.assign(data.d_ + 1, 0);
  uint32_t widest = 0;
  for (size_t f = 0; f < data.d_; ++f) {
    const uint32_t nb = static_cast<uint32_t>(data.binner_.NumBins(f));
    data.num_bins_[f] = nb;
    data.bin_offsets_[f + 1] = data.bin_offsets_[f] + nb;
    widest = std::max(widest, nb);
  }
  data.narrow_ = widest <= 256;
  if (data.narrow_) {
    data.bins8_.resize(data.n_ * data.d_);
    data.rows8_.resize(data.n_ * data.d_);
  } else {
    data.bins16_.resize(data.n_ * data.d_);
    data.rows16_.resize(data.n_ * data.d_);
  }
  // Column-contiguous fill: one feature at a time so the per-feature bin
  // search stays warm and the write stream is sequential; the row-major
  // mirror scatters alongside.
  for (size_t f = 0; f < data.d_; ++f) {
    if (data.narrow_) {
      uint8_t* col = data.bins8_.data() + f * data.n_;
      for (size_t r = 0; r < data.n_; ++r) {
        col[r] = static_cast<uint8_t>(data.binner_.BinValue(f, x.At(r, f)));
        data.rows8_[r * data.d_ + f] = col[r];
      }
    } else {
      uint16_t* col = data.bins16_.data() + f * data.n_;
      for (size_t r = 0; r < data.n_; ++r) {
        col[r] = data.binner_.BinValue(f, x.At(r, f));
        data.rows16_[r * data.d_ + f] = col[r];
      }
    }
  }
  return data;
}

Result<const BinnedDataset*> BinnedDatasetCache::Get(const Matrix& x,
                                                     int max_bins) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("BinnedDatasetCache::Get on empty matrix");
  }
  uint64_t key = util::HashBytes(x.data().data(),
                                 x.data().size() * sizeof(double),
                                 0x42494E4E45444453ull);  // "BINNEDDS"
  key = util::Mix64(key ^ (static_cast<uint64_t>(x.rows()) << 20) ^
                    (static_cast<uint64_t>(x.cols()) << 4) ^
                    static_cast<uint64_t>(max_bins));
  for (const Entry& e : entries_) {
    if (e.key == key && e.data->num_rows() == x.rows() &&
        e.data->num_features() == x.cols() && e.data->max_bins() == max_bins) {
      ++hits_;
      return e.data.get();
    }
  }
  WMP_ASSIGN_OR_RETURN(BinnedDataset built, BinnedDataset::Build(x, max_bins));
  entries_.push_back({key, std::make_unique<BinnedDataset>(std::move(built))});
  ++builds_;
  return entries_.back().data.get();
}

}  // namespace wmp::ml
