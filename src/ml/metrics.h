#ifndef WMP_ML_METRICS_H_
#define WMP_ML_METRICS_H_

/// \file metrics.h
/// Accuracy metrics from the paper's evaluation: RMSE (eq. 12), MAPE
/// (eq. 14), and residual-distribution summaries (the violin plots of
/// Fig. 5 reduce to median/IQR/tails in text form).

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace wmp::ml {

/// Root mean squared error (paper eq. 12). Requires equal non-empty sizes.
double Rmse(const std::vector<double>& y, const std::vector<double>& y_hat);

/// Mean absolute error.
double MeanAbsError(const std::vector<double>& y,
                    const std::vector<double>& y_hat);

/// Mean absolute percentage error in [0, 100] (paper eq. 14). Targets with
/// |y| < `eps` are skipped to avoid division blow-ups.
double Mape(const std::vector<double>& y, const std::vector<double>& y_hat,
            double eps = 1e-9);

/// Signed residuals `y_hat - y` (positive = overestimate).
std::vector<double> Residuals(const std::vector<double>& y,
                              const std::vector<double>& y_hat);

/// Linear-interpolated quantile of `values`, `q` in [0,1].
double Quantile(std::vector<double> values, double q);

/// \brief Five-number-style summary of a residual distribution, the textual
/// equivalent of one violin in Fig. 5.
struct ResidualSummary {
  double mean = 0.0;
  double median = 0.0;
  double p5 = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double iqr = 0.0;       ///< p75 - p25 (paper eq. 13)
  double skewness = 0.0;  ///< Fisher moment skewness; sign = estimation bias.
};

/// Computes the summary; `residuals` must be non-empty.
ResidualSummary SummarizeResiduals(const std::vector<double>& residuals);

}  // namespace wmp::ml

#endif  // WMP_ML_METRICS_H_
