#ifndef WMP_ML_GBT_H_
#define WMP_ML_GBT_H_

/// \file gbt.h
/// Gradient-boosted regression trees with the XGBoost objective — the
/// paper's "XGB" model family.
///
/// Trees are grown on first/second-order gradient statistics with the
/// regularized gain
///   gain = 1/2 [ GL^2/(HL+lambda) + GR^2/(HR+lambda) - G^2/(H+lambda) ] - gamma
/// and leaf weights `-G/(H+lambda)`; predictions accumulate `eta * leaf`
/// over rounds on top of a base score. For squared-error loss the gradient
/// is `pred - y` and the hessian is 1.

#include <vector>

#include "ml/dtree.h"
#include "ml/regressor.h"

namespace wmp::ml {

/// Hyperparameters for GbtRegressor.
struct GbtOptions {
  int num_rounds = 80;          ///< boosting rounds (trees).
  double learning_rate = 0.15;  ///< eta shrinkage.
  int max_depth = 6;
  double lambda = 1.0;          ///< L2 on leaf weights.
  double gamma = 0.0;           ///< min gain to split.
  double subsample = 1.0;       ///< row sampling per round.
  double colsample = 1.0;       ///< feature sampling per round.
  int min_child_weight = 1;     ///< min hessian sum per leaf.
  int max_bins = 64;
  uint64_t seed = 42;
  /// Growth engine; kReference selects the pre-histogram-engine builder
  /// (per-node histogram allocation + raw-feature re-traversal per round).
  TreeGrowth growth = TreeGrowth::kHistogram;
};

/// \brief XGBoost-style gradient-boosted tree regressor.
class GbtRegressor : public Regressor {
 public:
  explicit GbtRegressor(GbtOptions options = {}) : options_(options) {}

  std::string Name() const override { return "XGB"; }
  Status Fit(const Matrix& x, const std::vector<double>& y) override;
  Result<double> PredictOne(const std::vector<double>& x) const override;
  /// Batch prediction: each contiguous row accumulates over all trees in
  /// round order (bitwise-identical to PredictOne), rows parallelized.
  Result<std::vector<double>> Predict(const Matrix& x) const override;
  Status Serialize(BinaryWriter* writer) const override;
  FitTiming fit_timing() const override { return fit_timing_; }
  Status FitWithSharedBins(const Matrix& x, const std::vector<double>& y,
                           BinnedDatasetCache* cache) override;

  /// Trains on an externally binned design (histogram engine only). Each
  /// round's in-sample prediction updates come from leaf-membership scatter
  /// over the grower's partitioned row ranges; out-of-sample rows (when
  /// `subsample < 1`) traverse the fresh tree in bin space. Both agree
  /// exactly with raw-feature re-traversal, so the fitted model is
  /// identical to what `Fit` produces on the same binning.
  Status FitFromBinned(const BinnedDataset& data, const std::vector<double>& y);

  static Result<std::unique_ptr<GbtRegressor>> Deserialize(BinaryReader* reader);

  size_t num_trees() const { return trees_.size(); }
  const std::vector<RegressionTree>& trees() const { return trees_; }
  double base_score() const { return base_score_; }
  const GbtOptions& options() const { return options_; }
  /// Histogram-engine instrumentation of the last Fit.
  const TreeGrowerStats& grower_stats() const { return grower_stats_; }

 private:
  GbtOptions options_;
  double base_score_ = 0.0;
  std::vector<RegressionTree> trees_;
  FitTiming fit_timing_;
  TreeGrowerStats grower_stats_;
};

}  // namespace wmp::ml

#endif  // WMP_ML_GBT_H_
