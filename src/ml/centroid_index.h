#ifndef WMP_ML_CENTROID_INDEX_H_
#define WMP_ML_CENTROID_INDEX_H_

/// \file centroid_index.h
/// Exact pruned nearest-centroid assignment.
///
/// `NearestCentroids` (linalg.h) scans every (row, centroid) pair at full
/// dimensionality. For the serving cold path — thousands of rows against a
/// few dozen k-means templates per batch — most of that work is provably
/// unnecessary. CentroidIndex prunes it with two classic bounds while
/// keeping the *assignments bitwise identical* to the full scan:
///
///  1. Partial-distance early exit. Distances accumulate in the same four
///     non-negative accumulator chains as `SquaredDistanceScalar`. IEEE
///     addition of non-negative terms is monotone, so any partial
///     reduction `((s0+s1)+(s2+s3))` is <= the final value *in the same
///     rounding regime*; once the partial exceeds the current best the
///     candidate provably loses and the scan abandons it. A candidate that
///     survives runs the identical operation sequence to the reference
///     kernel, so its final distance is bit-for-bit the same.
///  2. Elkan-style centroid-centroid bounds. By the triangle inequality a
///     centroid `c` with `dist(best, c) >= 2 * dist(x, best)` cannot beat
///     the current best; in squared terms `ccdist^2/4 >= best^2`. The
///     precomputed quarter-distances carry ~1e-14 relative floating-point
///     error, so the skip test demands a 1e-6 relative margin — vastly
///     wider than the error, vastly tighter than any prunable gap — making
///     the skip decision exact. Duplicate centroids (ccdist == 0) are
///     never skipped and resolve by index order like the reference scan.
///
/// Rows within a batch tend to repeat templates, so each row's scan is
/// seeded with the previous row's winner; a tie-aware update rule
/// (`d < best || (d == best && c < best_label)`) preserves the reference
/// semantics of "lowest index attaining the minimum" under seeding.
///
/// `NearestCentroids` stays in linalg.h as the reference oracle; the tests
/// and the featurize-throughput bench assert label-for-label equality.

#include <cstddef>
#include <cstdint>

#include "ml/linalg.h"

namespace wmp::ml {

/// \brief Pruned batch assignment against a fixed centroid matrix.
class CentroidIndex {
 public:
  /// Copies `centroids` and precomputes the k x k quarter squared
  /// distances. Cost O(k^2 d); build once per trained model.
  explicit CentroidIndex(const Matrix& centroids);

  /// Pruning counters for one Assign call (monotone totals when reused).
  struct AssignStats {
    uint64_t rows = 0;
    /// Candidates skipped by the centroid-centroid bound (no distance
    /// arithmetic at all).
    uint64_t bound_skips = 0;
    /// Candidates abandoned mid-distance by the partial-sum test.
    uint64_t early_exits = 0;
    /// Distances computed to completion.
    uint64_t full_distances = 0;
  };

  /// Writes the nearest-centroid label of each of the `n` row-major rows
  /// into `labels`. Bitwise-identical to `NearestCentroids` on the same
  /// inputs. `stats`, when non-null, is accumulated into (not reset).
  void Assign(const double* rows, size_t n, int* labels,
              AssignStats* stats = nullptr) const;

  const Matrix& centroids() const { return centroids_; }
  size_t num_centroids() const { return centroids_.rows(); }
  size_t dim() const { return centroids_.cols(); }

 private:
  Matrix centroids_;
  /// Row-major k x k: SquaredDistance(c_i, c_j) / 4.
  std::vector<double> quarter_cc_;
};

/// Partial-distance variant of `SquaredDistanceScalar`: returns the exact
/// scalar-kernel value, unless a monotone partial sum already exceeds
/// `bound`, in which case it returns +infinity (the candidate provably
/// loses; the true distance is > bound). Exposed for the tests.
double SquaredDistanceEarlyExit(const double* a, const double* b, size_t n,
                                double bound);

}  // namespace wmp::ml

#endif  // WMP_ML_CENTROID_INDEX_H_
