#include "ml/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wmp::ml {

double Rmse(const std::vector<double>& y, const std::vector<double>& y_hat) {
  assert(y.size() == y_hat.size() && !y.empty());
  double acc = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    const double d = y[i] - y_hat[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(y.size()));
}

double MeanAbsError(const std::vector<double>& y,
                    const std::vector<double>& y_hat) {
  assert(y.size() == y_hat.size() && !y.empty());
  double acc = 0.0;
  for (size_t i = 0; i < y.size(); ++i) acc += std::fabs(y[i] - y_hat[i]);
  return acc / static_cast<double>(y.size());
}

double Mape(const std::vector<double>& y, const std::vector<double>& y_hat,
            double eps) {
  assert(y.size() == y_hat.size() && !y.empty());
  double acc = 0.0;
  size_t n = 0;
  for (size_t i = 0; i < y.size(); ++i) {
    if (std::fabs(y[i]) < eps) continue;
    acc += std::fabs(y[i] - y_hat[i]) / std::fabs(y[i]);
    ++n;
  }
  return n == 0 ? 0.0 : 100.0 * acc / static_cast<double>(n);
}

std::vector<double> Residuals(const std::vector<double>& y,
                              const std::vector<double>& y_hat) {
  assert(y.size() == y_hat.size());
  std::vector<double> r(y.size());
  for (size_t i = 0; i < y.size(); ++i) r[i] = y_hat[i] - y[i];
  return r;
}

double Quantile(std::vector<double> values, double q) {
  assert(!values.empty());
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

ResidualSummary SummarizeResiduals(const std::vector<double>& residuals) {
  assert(!residuals.empty());
  ResidualSummary s;
  const double n = static_cast<double>(residuals.size());
  for (double r : residuals) s.mean += r;
  s.mean /= n;
  s.median = Quantile(residuals, 0.5);
  s.p5 = Quantile(residuals, 0.05);
  s.p25 = Quantile(residuals, 0.25);
  s.p75 = Quantile(residuals, 0.75);
  s.p95 = Quantile(residuals, 0.95);
  s.iqr = s.p75 - s.p25;
  double m2 = 0.0, m3 = 0.0;
  for (double r : residuals) {
    const double d = r - s.mean;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= n;
  m3 /= n;
  s.skewness = m2 > 1e-300 ? m3 / std::pow(m2, 1.5) : 0.0;
  return s;
}

}  // namespace wmp::ml
