#ifndef WMP_ML_LBFGS_H_
#define WMP_ML_LBFGS_H_

/// \file lbfgs.h
/// Limited-memory BFGS minimizer with Armijo backtracking line search.
///
/// The paper compares L-BFGS against Adam for MLP training (§III-B3,
/// following scikit-learn's guidance that L-BFGS wins on small datasets);
/// `bench/abl_optimizer` reproduces that comparison.

#include <functional>
#include <vector>

#include "util/status.h"

namespace wmp::ml {

/// Objective callback: returns the loss at `x` and writes the gradient
/// (same length as `x`) into `*grad`.
using ObjectiveFn =
    std::function<double(const std::vector<double>& x, std::vector<double>* grad)>;

/// Configuration for MinimizeLbfgs.
struct LbfgsOptions {
  int max_iters = 200;      ///< outer iterations.
  int history = 10;         ///< stored (s, y) curvature pairs.
  double grad_tol = 1e-6;   ///< stop when ||grad||_inf falls below this.
  double f_tol = 1e-9;      ///< stop on relative loss improvement below this.
  double c1 = 1e-4;         ///< Armijo sufficient-decrease constant.
  int max_line_search = 25; ///< backtracking steps per iteration.
};

/// Outcome of an L-BFGS run.
struct LbfgsSummary {
  std::vector<double> x;  ///< final parameters.
  double loss = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// \brief Minimizes `f` starting from `x0`.
///
/// Returns InvalidArgument if `x0` is empty or the objective produces a
/// gradient of the wrong length.
Result<LbfgsSummary> MinimizeLbfgs(const ObjectiveFn& f,
                                   std::vector<double> x0,
                                   const LbfgsOptions& options = {});

}  // namespace wmp::ml

#endif  // WMP_ML_LBFGS_H_
