#include "ml/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ml/regressor.h"
#include "util/parallel.h"
#include "util/random.h"

namespace wmp::ml {

namespace {

// One full k-means++ init followed by Lloyd iterations.
// Returns (centroids, inertia).
std::pair<Matrix, double> RunOnce(const Matrix& x, int k, int max_iters,
                                  double tol, Rng* rng) {
  const size_t n = x.rows(), d = x.cols();
  const size_t kk = static_cast<size_t>(k);
  Matrix centroids(kk, d);

  // --- k-means++ seeding ---
  std::vector<double> min_dist(n, std::numeric_limits<double>::max());
  size_t first = static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1));
  std::copy(x.RowPtr(first), x.RowPtr(first) + d, centroids.RowPtr(0));
  for (size_t c = 1; c < kk; ++c) {
    const double* prev = centroids.RowPtr(c - 1);
    for (size_t i = 0; i < n; ++i) {
      min_dist[i] = std::min(min_dist[i], SquaredDistance(x.RowPtr(i), prev, d));
    }
    double total = 0.0;
    for (double v : min_dist) total += v;
    size_t chosen;
    if (total <= 0.0) {
      chosen = static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1));
    } else {
      double r = rng->UniformDouble() * total;
      double acc = 0.0;
      chosen = n - 1;
      for (size_t i = 0; i < n; ++i) {
        acc += min_dist[i];
        if (r < acc) {
          chosen = i;
          break;
        }
      }
    }
    std::copy(x.RowPtr(chosen), x.RowPtr(chosen) + d, centroids.RowPtr(c));
  }

  // --- Lloyd iterations ---
  std::vector<int> labels(n, 0);
  double prev_inertia = std::numeric_limits<double>::max();
  double inertia = prev_inertia;
  for (int it = 0; it < max_iters; ++it) {
    inertia = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double* row = x.RowPtr(i);
      double best = std::numeric_limits<double>::max();
      int best_c = 0;
      for (size_t c = 0; c < kk; ++c) {
        const double dist = SquaredDistance(row, centroids.RowPtr(c), d);
        if (dist < best) {
          best = dist;
          best_c = static_cast<int>(c);
        }
      }
      labels[i] = best_c;
      inertia += best;
    }
    // Recompute centroids.
    Matrix sums(kk, d);
    std::vector<size_t> counts(kk, 0);
    for (size_t i = 0; i < n; ++i) {
      double* srow = sums.RowPtr(static_cast<size_t>(labels[i]));
      const double* row = x.RowPtr(i);
      for (size_t j = 0; j < d; ++j) srow[j] += row[j];
      ++counts[static_cast<size_t>(labels[i])];
    }
    for (size_t c = 0; c < kk; ++c) {
      if (counts[c] == 0) {
        // Empty cluster: re-seed on a random point to keep k live clusters.
        size_t p = static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1));
        std::copy(x.RowPtr(p), x.RowPtr(p) + d, centroids.RowPtr(c));
        continue;
      }
      double* crow = centroids.RowPtr(c);
      const double* srow = sums.RowPtr(c);
      for (size_t j = 0; j < d; ++j) {
        crow[j] = srow[j] / static_cast<double>(counts[c]);
      }
    }
    if (prev_inertia - inertia <= tol * std::max(prev_inertia, 1e-12)) break;
    prev_inertia = inertia;
  }
  return {std::move(centroids), inertia};
}

}  // namespace

Status KMeans::Fit(const Matrix& x, const KMeansOptions& options) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("KMeans::Fit on empty matrix");
  }
  if (options.num_clusters < 1) {
    return Status::InvalidArgument("num_clusters must be >= 1");
  }
  const int k =
      std::min<int>(options.num_clusters, static_cast<int>(x.rows()));
  Rng rng(options.seed);
  double best_inertia = std::numeric_limits<double>::max();
  Matrix best;
  const int restarts = std::max(options.n_init, 1);
  for (int r = 0; r < restarts; ++r) {
    auto [centroids, inertia] =
        RunOnce(x, k, options.max_iters, options.tol, &rng);
    if (inertia < best_inertia) {
      best_inertia = inertia;
      best = std::move(centroids);
    }
  }
  centroids_ = std::move(best);
  inertia_ = best_inertia;
  return Status::OK();
}

Result<int> KMeans::Assign(const std::vector<double>& row) const {
  if (!fitted()) return Status::FailedPrecondition("KMeans not fitted");
  if (row.size() != centroids_.cols()) {
    return Status::InvalidArgument("KMeans::Assign dimension mismatch");
  }
  double best = std::numeric_limits<double>::max();
  int best_c = 0;
  for (size_t c = 0; c < centroids_.rows(); ++c) {
    const double dist =
        SquaredDistance(row.data(), centroids_.RowPtr(c), row.size());
    if (dist < best) {
      best = dist;
      best_c = static_cast<int>(c);
    }
  }
  return best_c;
}

Result<std::vector<int>> KMeans::AssignAll(const Matrix& x) const {
  if (!fitted()) return Status::FailedPrecondition("KMeans not fitted");
  if (x.cols() != centroids_.cols()) {
    return Status::InvalidArgument("KMeans::AssignAll dimension mismatch");
  }
  // Register-blocked nearest-centroid over contiguous rows (no per-row
  // copies), row blocks on the worker pool. Same per-pair arithmetic as
  // Assign, so labels agree exactly.
  std::vector<int> labels(x.rows());
  util::ParallelFor(x.rows(), 256, [&](size_t begin, size_t end) {
    NearestCentroids(x.RowPtr(begin), end - begin, centroids_,
                     labels.data() + begin);
  });
  return labels;
}

void KMeans::Serialize(BinaryWriter* writer) const {
  writer->WriteU32(serialize_tags::kKMeans);
  writer->WriteU64(centroids_.rows());
  writer->WriteU64(centroids_.cols());
  writer->WriteDoubleVec(centroids_.data());
  writer->WriteDouble(inertia_);
}

Result<KMeans> KMeans::Deserialize(BinaryReader* reader) {
  WMP_ASSIGN_OR_RETURN(uint32_t tag, reader->ReadU32());
  if (tag != serialize_tags::kKMeans) {
    return Status::InvalidArgument("bad kmeans magic tag");
  }
  WMP_ASSIGN_OR_RETURN(uint64_t rows, reader->ReadU64());
  WMP_ASSIGN_OR_RETURN(uint64_t cols, reader->ReadU64());
  WMP_ASSIGN_OR_RETURN(std::vector<double> data, reader->ReadDoubleVec());
  if (data.size() != rows * cols) {
    return Status::InvalidArgument("kmeans stream corrupt");
  }
  KMeans km;
  km.centroids_ = Matrix(rows, cols, std::move(data));
  WMP_ASSIGN_OR_RETURN(km.inertia_, reader->ReadDouble());
  return km;
}

Result<std::vector<double>> KMeansElbowCurve(const Matrix& x,
                                             const std::vector<int>& ks,
                                             const KMeansOptions& base) {
  std::vector<double> inertias;
  inertias.reserve(ks.size());
  for (int k : ks) {
    KMeans km;
    KMeansOptions opt = base;
    opt.num_clusters = k;
    WMP_RETURN_IF_ERROR(km.Fit(x, opt));
    inertias.push_back(km.inertia());
  }
  return inertias;
}

size_t PickElbow(const std::vector<double>& inertias) {
  if (inertias.size() < 3) return inertias.empty() ? 0 : inertias.size() - 1;
  // Max distance from the chord connecting the first and last points.
  const double x0 = 0.0, y0 = inertias.front();
  const double x1 = static_cast<double>(inertias.size() - 1);
  const double y1 = inertias.back();
  const double dx = x1 - x0, dy = y1 - y0;
  const double norm = std::sqrt(dx * dx + dy * dy);
  size_t best_i = 0;
  double best_d = -1.0;
  for (size_t i = 0; i < inertias.size(); ++i) {
    const double px = static_cast<double>(i) - x0;
    const double py = inertias[i] - y0;
    const double dist = norm > 0 ? std::fabs(dx * py - dy * px) / norm : 0.0;
    if (dist > best_d) {
      best_d = dist;
      best_i = i;
    }
  }
  return best_i;
}

}  // namespace wmp::ml
