#include "ml/gbt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ml/compiled_tree.h"
#include "ml/tree_grower.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace wmp::ml {

namespace {

struct BuildItem {
  int node = 0;
  size_t begin = 0;
  size_t end = 0;
  int depth = 0;
  double g_sum = 0.0;
  double h_sum = 0.0;
};

// Reference builder: grows one tree on gradient statistics from the
// row-major bin buffer, allocating the per-feature histogram at every node.
// Retained as the equivalence baseline for GbtTreeGrower — production
// training uses the histogram engine.
class GbtTreeBuilder {
 public:
  GbtTreeBuilder(const std::vector<uint16_t>& bins, size_t num_features,
                 const FeatureBinner& binner, const GbtOptions& opt, Rng* rng)
      : bins_(bins),
        d_(num_features),
        binner_(binner),
        opt_(opt),
        rng_(rng) {}

  std::vector<TreeNode> Build(const std::vector<GradHess>& gh,
                              std::vector<uint32_t> idx) {
    nodes_.clear();
    nodes_.push_back({});
    // Per-round feature subsample.
    features_.resize(d_);
    std::iota(features_.begin(), features_.end(), 0);
    if (opt_.colsample < 1.0) {
      rng_->Shuffle(&features_);
      const size_t keep = std::max<size_t>(
          1, static_cast<size_t>(
                 std::ceil(opt_.colsample * static_cast<double>(d_))));
      features_.resize(keep);
    }

    double g0 = 0.0, h0 = 0.0;
    for (uint32_t r : idx) {
      g0 += gh[r].g;
      h0 += gh[r].h;
    }
    std::vector<BuildItem> stack;
    stack.push_back({0, 0, idx.size(), 0, g0, h0});
    while (!stack.empty()) {
      BuildItem item = stack.back();
      stack.pop_back();
      ProcessNode(gh, &idx, item, &stack);
    }
    return std::move(nodes_);
  }

 private:
  void ProcessNode(const std::vector<GradHess>& gh, std::vector<uint32_t>* idx,
                   const BuildItem& item, std::vector<BuildItem>* stack) {
    TreeNode& node = nodes_[static_cast<size_t>(item.node)];
    const double lambda = opt_.lambda;
    node.value = -item.g_sum / (item.h_sum + lambda);

    if (item.depth >= opt_.max_depth ||
        item.h_sum < 2.0 * opt_.min_child_weight) {
      return;
    }
    const double parent_score =
        item.g_sum * item.g_sum / (item.h_sum + lambda);

    double best_gain = 0.0;
    size_t best_feature = 0;
    uint16_t best_bin = 0;
    double best_gl = 0.0, best_hl = 0.0;
    for (size_t f : features_) {
      const size_t nbins = binner_.NumBins(f);
      if (nbins < 2) continue;
      hist_.assign(nbins, {});
      for (size_t i = item.begin; i < item.end; ++i) {
        const uint32_t r = (*idx)[i];
        GradHess& b = hist_[bins_[r * d_ + f]];
        b.g += gh[r].g;
        b.h += gh[r].h;
      }
      double gl = 0.0, hl = 0.0;
      for (size_t b = 0; b + 1 < nbins; ++b) {
        gl += hist_[b].g;
        hl += hist_[b].h;
        const double gr = item.g_sum - gl;
        const double hr = item.h_sum - hl;
        if (hl < opt_.min_child_weight || hr < opt_.min_child_weight) continue;
        const double gain =
            0.5 * (gl * gl / (hl + lambda) + gr * gr / (hr + lambda) -
                   parent_score) -
            opt_.gamma;
        if (gain > best_gain + 1e-12) {
          best_gain = gain;
          best_feature = f;
          best_bin = static_cast<uint16_t>(b);
          best_gl = gl;
          best_hl = hl;
        }
      }
    }
    if (best_gain <= 0.0) return;

    auto mid_it = std::partition(
        idx->begin() + static_cast<std::ptrdiff_t>(item.begin),
        idx->begin() + static_cast<std::ptrdiff_t>(item.end),
        [&](uint32_t r) { return bins_[r * d_ + best_feature] <= best_bin; });
    const size_t mid = static_cast<size_t>(mid_it - idx->begin());
    if (mid == item.begin || mid == item.end) return;

    // push_back may reallocate, so finish all writes through the index
    // rather than the `node` reference.
    const int left_id = static_cast<int>(nodes_.size());
    const int right_id = left_id + 1;
    nodes_.push_back({});
    nodes_.push_back({});
    TreeNode& split_node = nodes_[static_cast<size_t>(item.node)];
    split_node.feature = static_cast<int>(best_feature);
    split_node.threshold = binner_.UpperEdge(best_feature, best_bin);
    split_node.left = left_id;
    split_node.right = right_id;
    stack->push_back({right_id, mid, item.end, item.depth + 1,
                      item.g_sum - best_gl, item.h_sum - best_hl});
    stack->push_back(
        {left_id, item.begin, mid, item.depth + 1, best_gl, best_hl});
  }

  const std::vector<uint16_t>& bins_;
  const size_t d_;
  const FeatureBinner& binner_;
  const GbtOptions& opt_;
  Rng* rng_;
  std::vector<TreeNode> nodes_;
  std::vector<size_t> features_;
  std::vector<GradHess> hist_;
};

}  // namespace

Status GbtRegressor::Fit(const Matrix& x, const std::vector<double>& y) {
  if (x.rows() == 0) return Status::InvalidArgument("GBT::Fit on empty matrix");
  if (y.size() != x.rows()) {
    return Status::InvalidArgument("GBT::Fit target size mismatch");
  }
  if (options_.num_rounds < 1) {
    return Status::InvalidArgument("GBT needs num_rounds >= 1");
  }
  if (options_.growth != TreeGrowth::kReference) {
    Stopwatch sw;
    WMP_ASSIGN_OR_RETURN(BinnedDataset data,
                         BinnedDataset::Build(x, options_.max_bins));
    const double bin_ms = sw.ElapsedMillis();
    WMP_RETURN_IF_ERROR(FitFromBinned(data, y));
    fit_timing_.bin_ms = bin_ms;  // FitFromBinned reset it to 0 (shared bins)
    return Status::OK();
  }

  fit_timing_ = {};
  grower_stats_ = {};
  Stopwatch sw;
  FeatureBinner binner;
  WMP_RETURN_IF_ERROR(binner.Fit(x, options_.max_bins));
  WMP_ASSIGN_OR_RETURN(std::vector<uint16_t> bins, binner.BinAll(x));
  fit_timing_.bin_ms = sw.ElapsedMillis();

  const size_t n = x.rows();
  base_score_ = 0.0;
  for (double v : y) base_score_ += v;
  base_score_ /= static_cast<double>(n);

  std::vector<double> pred(n, base_score_);
  std::vector<GradHess> gh(n);
  Rng rng(options_.seed);
  trees_.clear();
  trees_.reserve(static_cast<size_t>(options_.num_rounds));

  std::vector<uint32_t> all_rows(n);
  std::iota(all_rows.begin(), all_rows.end(), 0);

  for (int round = 0; round < options_.num_rounds; ++round) {
    sw.Reset();
    // Squared-error loss: g = pred - y, h = 1.
    for (size_t i = 0; i < n; ++i) {
      gh[i].g = pred[i] - y[i];
      gh[i].h = 1.0;
    }
    fit_timing_.update_ms += sw.ElapsedMillis();
    sw.Reset();
    std::vector<uint32_t> sample;
    if (options_.subsample < 1.0) {
      sample.reserve(n);
      for (uint32_t r : all_rows) {
        if (rng.Bernoulli(options_.subsample)) sample.push_back(r);
      }
      if (sample.empty()) sample = all_rows;
    } else {
      sample = all_rows;
    }
    GbtTreeBuilder builder(bins, x.cols(), binner, options_, &rng);
    RegressionTree tree =
        RegressionTree::FromNodes(builder.Build(gh, std::move(sample)));
    fit_timing_.grow_ms += sw.ElapsedMillis();
    sw.Reset();
    for (size_t i = 0; i < n; ++i) {
      pred[i] += options_.learning_rate * tree.Predict(x.RowPtr(i), x.cols());
    }
    fit_timing_.update_ms += sw.ElapsedMillis();
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

Status GbtRegressor::FitWithSharedBins(const Matrix& x,
                                       const std::vector<double>& y,
                                       BinnedDatasetCache* cache) {
  if (cache == nullptr || options_.growth != TreeGrowth::kHistogram ||
      x.rows() == 0 || x.cols() == 0 || y.size() != x.rows()) {
    return Fit(x, y);
  }
  WMP_ASSIGN_OR_RETURN(const BinnedDataset* data,
                       cache->Get(x, options_.max_bins));
  return FitFromBinned(*data, y);
}

Status GbtRegressor::FitFromBinned(const BinnedDataset& data,
                                   const std::vector<double>& y) {
  const size_t n = data.num_rows();
  if (n == 0) {
    return Status::InvalidArgument("GBT::FitFromBinned on empty dataset");
  }
  if (y.size() != n) {
    return Status::InvalidArgument("GBT::FitFromBinned target size mismatch");
  }
  if (options_.num_rounds < 1) {
    return Status::InvalidArgument("GBT needs num_rounds >= 1");
  }
  if (options_.growth == TreeGrowth::kReference) {
    return Status::InvalidArgument(
        "FitFromBinned requires histogram growth mode");
  }
  fit_timing_ = {};

  const size_t d = data.num_features();
  base_score_ = 0.0;
  for (double v : y) base_score_ += v;
  base_score_ /= static_cast<double>(n);

  std::vector<double> pred(n, base_score_);
  std::vector<GradHess> gh(n);
  Rng rng(options_.seed);
  trees_.clear();
  trees_.reserve(static_cast<size_t>(options_.num_rounds));

  std::vector<uint32_t> all_rows(n);
  std::iota(all_rows.begin(), all_rows.end(), 0);
  std::vector<uint32_t> sample;
  std::vector<size_t> features;
  std::vector<uint8_t> in_sample(n);
  const size_t colsample_keep = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(options_.colsample * static_cast<double>(d))));

  GbtGrowParams params;
  params.max_depth = options_.max_depth;
  params.lambda = options_.lambda;
  params.gamma = options_.gamma;
  params.min_child_weight = options_.min_child_weight;
  GbtTreeGrower grower(data, params);
  std::vector<TreeNode> nodes;  // reused scratch across rounds

  const double lr = options_.learning_rate;
  Stopwatch sw;
  for (int round = 0; round < options_.num_rounds; ++round) {
    sw.Reset();
    // Squared-error loss: g = pred - y, h = 1.
    for (size_t i = 0; i < n; ++i) {
      gh[i].g = pred[i] - y[i];
      gh[i].h = 1.0;
    }
    fit_timing_.update_ms += sw.ElapsedMillis();

    sw.Reset();
    // Row then feature sampling, consuming the RNG in the reference
    // builder's order so both engines see identical draws.
    if (options_.subsample < 1.0) {
      sample.clear();
      for (uint32_t r : all_rows) {
        if (rng.Bernoulli(options_.subsample)) sample.push_back(r);
      }
      if (sample.empty()) sample = all_rows;
    } else {
      sample = all_rows;
    }
    features.resize(d);
    std::iota(features.begin(), features.end(), 0);
    if (options_.colsample < 1.0) {
      rng.Shuffle(&features);
      features.resize(colsample_keep);
    }
    WMP_RETURN_IF_ERROR(grower.Grow(gh, sample, features, &nodes));
    fit_timing_.grow_ms += sw.ElapsedMillis();

    sw.Reset();
    // In-sample rows update by leaf-membership scatter: the in-place
    // partition already grouped them by leaf, and the per-leaf delta is the
    // exact value raw re-traversal would add.
    const std::vector<uint32_t>& order = grower.row_order();
    for (const GbtTreeGrower::LeafRange& leaf : grower.leaf_ranges()) {
      const double delta = lr * nodes[static_cast<size_t>(leaf.node)].value;
      for (size_t i = leaf.begin; i < leaf.end; ++i) pred[order[i]] += delta;
    }
    // Out-of-sample rows traverse the fresh tree in bin space (same leaf as
    // raw-feature traversal by the bin/threshold equivalence).
    if (order.size() < n) {
      std::fill(in_sample.begin(), in_sample.end(), 0);
      for (uint32_t r : order) in_sample[r] = 1;
      for (uint32_t r = 0; r < static_cast<uint32_t>(n); ++r) {
        if (!in_sample[r]) pred[r] += lr * grower.PredictRow(nodes, r);
      }
    }
    fit_timing_.update_ms += sw.ElapsedMillis();
    trees_.push_back(RegressionTree::FromNodes(nodes));
  }
  grower_stats_ = grower.stats();
  return Status::OK();
}

Result<double> GbtRegressor::PredictOne(const std::vector<double>& x) const {
  if (trees_.empty()) return Status::FailedPrecondition("GBT not fitted");
  double acc = base_score_;
  for (const auto& tree : trees_) {
    acc += options_.learning_rate * tree.Predict(x);
  }
  return acc;
}

Result<std::vector<double>> GbtRegressor::Predict(const Matrix& x) const {
  if (trees_.empty()) return Status::FailedPrecondition("GBT not fitted");
  std::vector<double> out(x.rows());
  util::ParallelFor(x.rows(), kTreePredictGrain, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const double* row = x.RowPtr(i);
      double acc = base_score_;
      for (const auto& tree : trees_) {
        acc += options_.learning_rate * tree.Predict(row, x.cols());
      }
      out[i] = acc;
    }
  });
  return out;
}

// Compiled bin-space codec (ml/compiled_tree.h). The stream's base score
// and per-tree scale carry base_score_ / learning_rate, so deserialization
// restores both the trees (losslessly, via Decompile) and the prediction
// arithmetic exactly.
Status GbtRegressor::Serialize(BinaryWriter* writer) const {
  if (trees_.empty()) return Status::FailedPrecondition("GBT not fitted");
  writer->WriteU32(serialize_tags::kGbt);
  WMP_ASSIGN_OR_RETURN(
      CompiledEnsemble compiled,
      CompiledEnsemble::Compile(*this, CompileOptions{.lut_levels = 0}));
  compiled.Serialize(writer);
  return Status::OK();
}

Result<std::unique_ptr<GbtRegressor>> GbtRegressor::Deserialize(
    BinaryReader* reader) {
  WMP_ASSIGN_OR_RETURN(uint32_t tag, reader->ReadU32());
  if (tag != serialize_tags::kGbt) {
    return Status::InvalidArgument("bad gbt magic tag");
  }
  WMP_ASSIGN_OR_RETURN(
      CompiledEnsemble compiled,
      CompiledEnsemble::Deserialize(reader, CompileOptions{.lut_levels = 0}));
  if (compiled.combine() != CompiledEnsemble::Combine::kBoosted) {
    return Status::InvalidArgument("stream is not a boosted ensemble");
  }
  GbtOptions opt;
  opt.learning_rate = compiled.scale();
  auto model = std::make_unique<GbtRegressor>(opt);
  model->base_score_ = compiled.base_score();
  WMP_ASSIGN_OR_RETURN(model->trees_, compiled.Decompile());
  return model;
}

}  // namespace wmp::ml
