#ifndef WMP_ML_MLP_H_
#define WMP_ML_MLP_H_

/// \file mlp.h
/// Multilayer perceptron regressor — the paper's "DNN" model family.
///
/// Matches the paper's training setup (§III-B3): MSE + L2 loss (eq. 9),
/// choice of identity or ReLU hidden activations, and SGD / Adam / L-BFGS
/// optimizers. The default architecture is the paper's tuned net: six
/// hidden layers of 48, 39, 27, 16, 7, and 5 units.
///
/// Targets are standardized internally during Fit (and de-standardized at
/// prediction time) so one learning-rate default works across datasets whose
/// memory labels differ by orders of magnitude.

#include <vector>

#include "ml/regressor.h"
#include "util/random.h"

namespace wmp::ml {

/// Hidden-layer activation.
enum class Activation { kIdentity, kRelu, kTanh };

/// First-order trainer choice.
enum class MlpSolver { kSgd, kAdam, kLbfgs };

const char* ActivationName(Activation a);
const char* MlpSolverName(MlpSolver s);

/// Hyperparameters for MlpRegressor.
struct MlpOptions {
  /// Paper's tuned architecture (input and scalar output are implicit).
  std::vector<int> hidden_layers = {48, 39, 27, 16, 7, 5};
  Activation activation = Activation::kRelu;
  MlpSolver solver = MlpSolver::kAdam;
  double alpha = 1e-4;          ///< L2 penalty (eq. 9).
  double learning_rate = 1e-3;  ///< SGD/Adam step size.
  double momentum = 0.9;        ///< SGD momentum.
  int batch_size = 64;
  int max_iter = 150;           ///< epochs (SGD/Adam) or L-BFGS iterations.
  double tol = 1e-5;            ///< relative improvement for early stopping.
  int n_iter_no_change = 10;
  uint64_t seed = 42;
};

/// \brief Feed-forward neural network for scalar regression.
class MlpRegressor : public Regressor {
 public:
  explicit MlpRegressor(MlpOptions options = {}) : options_(options) {}

  std::string Name() const override { return "DNN"; }
  Status Fit(const Matrix& x, const std::vector<double>& y) override;
  Result<double> PredictOne(const std::vector<double>& x) const override;
  Result<std::vector<double>> Predict(const Matrix& x) const override;
  Status Serialize(BinaryWriter* writer) const override;

  static Result<std::unique_ptr<MlpRegressor>> Deserialize(BinaryReader* reader);

  /// Training loss (eq. 9) at the end of Fit.
  double final_loss() const { return final_loss_; }
  /// Epochs (or L-BFGS iterations) actually run.
  int iterations_run() const { return iterations_run_; }
  bool fitted() const { return !weights_.empty(); }

  const MlpOptions& options() const { return options_; }

 private:
  // Layer l maps layer_dims_[l] -> layer_dims_[l+1]:
  //   weights_[l] is (in x out) row-major, biases_[l] has `out` entries.
  std::vector<Matrix> weights_;
  std::vector<std::vector<double>> biases_;
  std::vector<size_t> layer_dims_;

  MlpOptions options_;
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
  double final_loss_ = 0.0;
  int iterations_run_ = 0;

  void InitParams(size_t input_dim, Rng* rng);
  // Forward pass for a batch; returns activations per layer (including input).
  std::vector<Matrix> Forward(const Matrix& x) const;
  // Computes loss (eq. 9) and gradients for a batch; gradients returned in
  // the same (weights, biases) structure.
  double LossAndGrad(const Matrix& x, const std::vector<double>& y_scaled,
                     std::vector<Matrix>* grad_w,
                     std::vector<std::vector<double>>* grad_b) const;

  // Flat-parameter bridging for the L-BFGS solver.
  std::vector<double> FlattenParams() const;
  void UnflattenParams(const std::vector<double>& flat);
  size_t NumParams() const;

  Status FitFirstOrder(const Matrix& x, const std::vector<double>& y_scaled);
  Status FitLbfgs(const Matrix& x, const std::vector<double>& y_scaled);
};

}  // namespace wmp::ml

#endif  // WMP_ML_MLP_H_
