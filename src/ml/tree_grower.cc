#include "ml/tree_grower.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace wmp::ml {

namespace {

// In-place partition of idx's [begin, end) range around `bin` of `feature`
// (left: bin <= `bin`), shared by both growers. Reads the split feature
// through its feature-major column; same std::partition call — and so the
// same resulting order — as the reference builders.
size_t PartitionBinned(std::vector<uint32_t>* idx, size_t begin, size_t end,
                       const BinnedDataset& data, size_t feature,
                       uint32_t bin) {
  auto first = idx->begin() + static_cast<std::ptrdiff_t>(begin);
  auto last = idx->begin() + static_cast<std::ptrdiff_t>(end);
  auto split = [&](const auto* col) {
    return static_cast<size_t>(
        std::partition(first, last, [&](uint32_t r) { return col[r] <= bin; }) -
        idx->begin());
  };
  return data.narrow() ? split(data.Column8(feature))
                       : split(data.Column16(feature));
}

}  // namespace

// ---------------------------------------------------------------------------
// VarianceTreeGrower
// ---------------------------------------------------------------------------

VarianceTreeGrower::VarianceTreeGrower(const BinnedDataset& data,
                                       const std::vector<double>& y,
                                       const TreeOptions& options)
    : data_(data), y_(y), options_(options) {
  const size_t d = data_.num_features();
  feat_per_split_ =
      options_.feature_fraction <= 0.0
          ? d
          : std::max<size_t>(
                1, static_cast<size_t>(std::ceil(options_.feature_fraction *
                                                 static_cast<double>(d))));
  feature_order_.resize(d);
  std::iota(feature_order_.begin(), feature_order_.end(), 0);
  subtract_ = feat_per_split_ == d;
  pool_.Configure(data_.total_bins());
}

void VarianceTreeGrower::BuildHistogram(size_t begin, size_t end, VarBin* hist,
                                        const size_t* features,
                                        size_t num_features) {
  // Single pass over the node's rows: the target is gathered once per row
  // and every examined feature's segment is updated from the row's
  // contiguous bin line (row-major mirror). Per feature, rows are still
  // accumulated in index order, so sums are bitwise what the reference
  // builder's one-pass-per-feature scheme produces.
  seg_.resize(num_features);
  for (size_t fi = 0; fi < num_features; ++fi) {
    const size_t f = features[fi];
    VarBin* seg = hist + data_.BinOffset(f);
    std::fill_n(seg, data_.NumBins(f), VarBin{});
    seg_[fi] = {seg, static_cast<uint32_t>(f)};
  }
  if (data_.narrow()) {
    for (size_t i = begin; i < end; ++i) {
      const uint32_t r = idx_[i];
      const double v = y_[r];
      const uint8_t* line = data_.Row8(r);
      for (size_t fi = 0; fi < num_features; ++fi) {
        VarBin& b = seg_[fi].seg[line[seg_[fi].feature]];
        b.sum += v;
        ++b.count;
      }
    }
  } else {
    for (size_t i = begin; i < end; ++i) {
      const uint32_t r = idx_[i];
      const double v = y_[r];
      const uint16_t* line = data_.Row16(r);
      for (size_t fi = 0; fi < num_features; ++fi) {
        VarBin& b = seg_[fi].seg[line[seg_[fi].feature]];
        b.sum += v;
        ++b.count;
      }
    }
  }
  ++stats_.histograms_scanned;
}

Status VarianceTreeGrower::Grow(const std::vector<uint32_t>& rows, Rng* rng,
                                std::vector<TreeNode>* nodes) {
  if (rows.empty()) {
    return Status::InvalidArgument("VarianceTreeGrower::Grow with no rows");
  }
  nodes->clear();
  nodes->push_back({});
  idx_.assign(rows.begin(), rows.end());
  stack_.clear();
  // Fresh identity order per tree: the reference builder starts every tree
  // from iota before its per-node shuffles, and matching its RNG
  // consumption exactly is what keeps the engines' forests identical.
  std::iota(feature_order_.begin(), feature_order_.end(), 0);

  if (subtract_) {
    const int root_slot = pool_.Acquire();
    BuildHistogram(0, idx_.size(), pool_.Slot(root_slot),
                   feature_order_.data(), feature_order_.size());
    stack_.push_back({0, 0, idx_.size(), 0, root_slot});
  } else {
    stack_.push_back({0, 0, idx_.size(), 0, -1});
  }

  while (!stack_.empty()) {
    const Item item = stack_.back();
    stack_.pop_back();
    ++stats_.nodes_built;
    const size_t n_node = item.end - item.begin;

    double sum = 0.0, sum2 = 0.0;
    for (size_t i = item.begin; i < item.end; ++i) {
      const double v = y_[idx_[i]];
      sum += v;
      sum2 += v * v;
    }
    (*nodes)[static_cast<size_t>(item.node)].value =
        sum / static_cast<double>(n_node);

    const double node_sse = sum2 - sum * sum / static_cast<double>(n_node);
    const bool can_split =
        item.depth < options_.max_depth &&
        n_node >= static_cast<size_t>(options_.min_samples_split) &&
        node_sse > 1e-12;
    if (!can_split) {
      if (subtract_) pool_.Release(item.slot);
      continue;
    }

    // Sample the features examined at this node (random forests).
    if (feat_per_split_ < data_.num_features()) rng->Shuffle(&feature_order_);

    // In subtraction mode this node's histogram was inherited when its
    // parent split; in sampled mode, build just the sampled features into a
    // recycled scratch slot.
    int slot = item.slot;
    if (!subtract_) {
      slot = pool_.Acquire();
      BuildHistogram(item.begin, item.end, pool_.Slot(slot),
                     feature_order_.data(), feat_per_split_);
    }
    VarBin* hist = pool_.Slot(slot);
    double best_gain = 0.0;
    size_t best_feature = 0;
    uint32_t best_bin = 0;
    for (size_t fi = 0; fi < feat_per_split_; ++fi) {
      const size_t f = feature_order_[fi];
      const size_t nbins = data_.NumBins(f);
      if (nbins < 2) continue;
      const VarBin* h = hist + data_.BinOffset(f);
      double left_sum = 0.0;
      uint32_t left_count = 0;
      for (size_t b = 0; b + 1 < nbins; ++b) {
        left_sum += h[b].sum;
        left_count += h[b].count;
        const uint32_t right_count =
            static_cast<uint32_t>(n_node) - left_count;
        if (left_count < static_cast<uint32_t>(options_.min_samples_leaf) ||
            right_count < static_cast<uint32_t>(options_.min_samples_leaf)) {
          continue;
        }
        if (left_count == 0 || right_count == 0) continue;
        const double right_sum = sum - left_sum;
        // Variance-reduction gain, constant terms dropped:
        // gain = SL^2/nL + SR^2/nR - S^2/n
        const double gain = left_sum * left_sum / left_count +
                            right_sum * right_sum / right_count -
                            sum * sum / static_cast<double>(n_node);
        if (gain > best_gain + 1e-12) {
          best_gain = gain;
          best_feature = f;
          best_bin = static_cast<uint32_t>(b);
        }
      }
    }
    if (!subtract_) pool_.Release(slot);  // scratch consumed by the scan
    if (best_gain <= 0.0) {
      if (subtract_) pool_.Release(slot);
      continue;
    }

    const size_t mid =
        PartitionBinned(&idx_, item.begin, item.end, data_, best_feature,
                        best_bin);
    if (mid == item.begin || mid == item.end) {  // degenerate
      if (subtract_) pool_.Release(slot);
      continue;
    }

    const int left_id = static_cast<int>(nodes->size());
    const int right_id = left_id + 1;
    nodes->push_back({});
    nodes->push_back({});
    TreeNode& split_node = (*nodes)[static_cast<size_t>(item.node)];
    split_node.feature = static_cast<int>(best_feature);
    split_node.threshold =
        data_.binner().UpperEdge(best_feature, best_bin);
    split_node.left = left_id;
    split_node.right = right_id;

    int left_slot = -1;
    int right_slot = -1;
    if (subtract_) {
      // Build the smaller child's histogram by scanning its rows; derive
      // the larger sibling in the parent's buffer as parent - smaller.
      const size_t left_n = mid - item.begin;
      const size_t right_n = item.end - mid;
      const bool left_small = left_n <= right_n;
      const int small_slot = pool_.Acquire();
      VarBin* small = pool_.Slot(small_slot);
      if (left_small) {
        BuildHistogram(item.begin, mid, small, feature_order_.data(),
                       feature_order_.size());
      } else {
        BuildHistogram(mid, item.end, small, feature_order_.data(),
                       feature_order_.size());
      }
      VarBin* parent = pool_.Slot(slot);
      const uint32_t total = data_.total_bins();
      for (uint32_t b = 0; b < total; ++b) {
        parent[b].sum -= small[b].sum;
        parent[b].count -= small[b].count;
      }
      ++stats_.histograms_subtracted;
      left_slot = left_small ? small_slot : slot;
      right_slot = left_small ? slot : small_slot;
    }
    stack_.push_back({right_id, mid, item.end, item.depth + 1, right_slot});
    stack_.push_back({left_id, item.begin, mid, item.depth + 1, left_slot});
  }
  return Status::OK();
}

TreeGrowerStats VarianceTreeGrower::stats() const {
  TreeGrowerStats s = stats_;
  s.pool_allocations = pool_.allocations();
  s.pool_slots = pool_.num_slots();
  return s;
}

// ---------------------------------------------------------------------------
// GbtTreeGrower
// ---------------------------------------------------------------------------

GbtTreeGrower::GbtTreeGrower(const BinnedDataset& data,
                             const GbtGrowParams& params)
    : data_(data), params_(params) {
  pool_.Configure(data_.total_bins());
}

void GbtTreeGrower::BuildHistogram(const std::vector<GradHess>& gh,
                                   const std::vector<size_t>& features,
                                   size_t begin, size_t end, GradHess* hist) {
  // Single pass over the node's rows: gradients are gathered once per row
  // and every sampled feature's segment is updated from the row's
  // contiguous bin line; only sampled segments are zeroed and filled.
  // Per-feature accumulation order matches the reference builder (rows in
  // index order), so sums are bitwise identical to per-feature passes.
  seg_.resize(features.size());
  for (size_t fi = 0; fi < features.size(); ++fi) {
    const size_t f = features[fi];
    GradHess* seg = hist + data_.BinOffset(f);
    std::fill_n(seg, data_.NumBins(f), GradHess{});
    seg_[fi] = {seg, static_cast<uint32_t>(f)};
  }
  const size_t nf = features.size();
  if (data_.narrow()) {
    for (size_t i = begin; i < end; ++i) {
      const uint32_t r = idx_[i];
      const double g = gh[r].g, h = gh[r].h;
      const uint8_t* line = data_.Row8(r);
      for (size_t fi = 0; fi < nf; ++fi) {
        GradHess& b = seg_[fi].seg[line[seg_[fi].feature]];
        b.g += g;
        b.h += h;
      }
    }
  } else {
    for (size_t i = begin; i < end; ++i) {
      const uint32_t r = idx_[i];
      const double g = gh[r].g, h = gh[r].h;
      const uint16_t* line = data_.Row16(r);
      for (size_t fi = 0; fi < nf; ++fi) {
        GradHess& b = seg_[fi].seg[line[seg_[fi].feature]];
        b.g += g;
        b.h += h;
      }
    }
  }
  ++stats_.histograms_scanned;
}

Status GbtTreeGrower::Grow(const std::vector<GradHess>& gh,
                           const std::vector<uint32_t>& rows,
                           const std::vector<size_t>& features,
                           std::vector<TreeNode>* nodes) {
  if (rows.empty()) {
    return Status::InvalidArgument("GbtTreeGrower::Grow with no rows");
  }
  if (features.empty()) {
    return Status::InvalidArgument("GbtTreeGrower::Grow with no features");
  }
  nodes->clear();
  nodes->push_back({});
  leaf_ranges_.clear();
  split_bins_.assign(1, 0);
  idx_.assign(rows.begin(), rows.end());
  stack_.clear();

  double g0 = 0.0, h0 = 0.0;
  for (uint32_t r : idx_) {
    g0 += gh[r].g;
    h0 += gh[r].h;
  }
  const int root_slot = pool_.Acquire();
  BuildHistogram(gh, features, 0, idx_.size(), pool_.Slot(root_slot));
  stack_.push_back({0, 0, idx_.size(), 0, root_slot, g0, h0});

  const double lambda = params_.lambda;
  while (!stack_.empty()) {
    const Item item = stack_.back();
    stack_.pop_back();
    ++stats_.nodes_built;
    (*nodes)[static_cast<size_t>(item.node)].value =
        -item.g_sum / (item.h_sum + lambda);

    if (item.depth >= params_.max_depth ||
        item.h_sum < 2.0 * params_.min_child_weight) {
      pool_.Release(item.slot);
      leaf_ranges_.push_back({item.node, item.begin, item.end});
      continue;
    }
    const double parent_score =
        item.g_sum * item.g_sum / (item.h_sum + lambda);

    GradHess* hist = pool_.Slot(item.slot);
    double best_gain = 0.0;
    size_t best_feature = 0;
    uint32_t best_bin = 0;
    double best_gl = 0.0, best_hl = 0.0;
    for (size_t f : features) {
      const size_t nbins = data_.NumBins(f);
      if (nbins < 2) continue;
      const GradHess* h = hist + data_.BinOffset(f);
      double gl = 0.0, hl = 0.0;
      for (size_t b = 0; b + 1 < nbins; ++b) {
        gl += h[b].g;
        hl += h[b].h;
        const double gr = item.g_sum - gl;
        const double hr = item.h_sum - hl;
        if (hl < params_.min_child_weight || hr < params_.min_child_weight) {
          continue;
        }
        const double gain =
            0.5 * (gl * gl / (hl + lambda) + gr * gr / (hr + lambda) -
                   parent_score) -
            params_.gamma;
        if (gain > best_gain + 1e-12) {
          best_gain = gain;
          best_feature = f;
          best_bin = static_cast<uint32_t>(b);
          best_gl = gl;
          best_hl = hl;
        }
      }
    }
    if (best_gain <= 0.0) {
      pool_.Release(item.slot);
      leaf_ranges_.push_back({item.node, item.begin, item.end});
      continue;
    }

    const size_t mid =
        PartitionBinned(&idx_, item.begin, item.end, data_, best_feature,
                        best_bin);
    if (mid == item.begin || mid == item.end) {  // degenerate
      pool_.Release(item.slot);
      leaf_ranges_.push_back({item.node, item.begin, item.end});
      continue;
    }

    const int left_id = static_cast<int>(nodes->size());
    const int right_id = left_id + 1;
    nodes->push_back({});
    nodes->push_back({});
    split_bins_.resize(nodes->size(), 0);
    TreeNode& split_node = (*nodes)[static_cast<size_t>(item.node)];
    split_node.feature = static_cast<int>(best_feature);
    split_node.threshold =
        data_.binner().UpperEdge(best_feature, best_bin);
    split_node.left = left_id;
    split_node.right = right_id;
    split_bins_[static_cast<size_t>(item.node)] = best_bin;

    const size_t left_n = mid - item.begin;
    const size_t right_n = item.end - mid;
    const bool left_small = left_n <= right_n;
    const int small_slot = pool_.Acquire();
    GradHess* small = pool_.Slot(small_slot);
    if (left_small) {
      BuildHistogram(gh, features, item.begin, mid, small);
    } else {
      BuildHistogram(gh, features, mid, item.end, small);
    }
    GradHess* parent = pool_.Slot(item.slot);
    for (size_t f : features) {
      GradHess* pseg = parent + data_.BinOffset(f);
      const GradHess* sseg = small + data_.BinOffset(f);
      const uint32_t nb = data_.NumBins(f);
      for (uint32_t b = 0; b < nb; ++b) {
        pseg[b].g -= sseg[b].g;
        pseg[b].h -= sseg[b].h;
      }
    }
    ++stats_.histograms_subtracted;
    const int left_slot = left_small ? small_slot : item.slot;
    const int right_slot = left_small ? item.slot : small_slot;
    stack_.push_back({right_id, mid, item.end, item.depth + 1, right_slot,
                      item.g_sum - best_gl, item.h_sum - best_hl});
    stack_.push_back({left_id, item.begin, mid, item.depth + 1, left_slot,
                      best_gl, best_hl});
  }
  return Status::OK();
}

double GbtTreeGrower::PredictRow(const std::vector<TreeNode>& nodes,
                                 uint32_t row) const {
  size_t i = 0;
  while (nodes[i].feature >= 0) {
    const uint32_t b = data_.BinAt(row, static_cast<size_t>(nodes[i].feature));
    i = static_cast<size_t>(b <= split_bins_[i] ? nodes[i].left
                                                : nodes[i].right);
  }
  return nodes[i].value;
}

TreeGrowerStats GbtTreeGrower::stats() const {
  TreeGrowerStats s = stats_;
  s.pool_allocations = pool_.allocations();
  s.pool_slots = pool_.num_slots();
  return s;
}

}  // namespace wmp::ml
