#include "ml/ridge.h"

#include "util/parallel.h"

namespace wmp::ml {

Status RidgeRegressor::Fit(const Matrix& x, const std::vector<double>& y) {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("Ridge::Fit on empty matrix");
  }
  if (y.size() != x.rows()) {
    return Status::InvalidArgument("Ridge::Fit target size mismatch");
  }
  if (options_.alpha < 0.0) {
    return Status::InvalidArgument("Ridge alpha must be >= 0");
  }
  const size_t n = x.rows(), d = x.cols();

  // Center features and target so the intercept is unpenalized.
  std::vector<double> mean_x(d, 0.0);
  double mean_y = 0.0;
  for (size_t r = 0; r < n; ++r) {
    const double* row = x.RowPtr(r);
    for (size_t c = 0; c < d; ++c) mean_x[c] += row[c];
    mean_y += y[r];
  }
  for (double& m : mean_x) m /= static_cast<double>(n);
  mean_y /= static_cast<double>(n);

  Matrix xc(n, d);
  std::vector<double> yc(n);
  for (size_t r = 0; r < n; ++r) {
    const double* row = x.RowPtr(r);
    double* out = xc.RowPtr(r);
    for (size_t c = 0; c < d; ++c) out[c] = row[c] - mean_x[c];
    yc[r] = y[r] - mean_y;
  }

  Matrix gram = Gram(xc);
  // A small ridge even when alpha == 0 keeps the factorization well posed
  // for rank-deficient designs (e.g. sparse histogram bins never hit).
  const double lambda = options_.alpha + 1e-8;
  for (size_t i = 0; i < d; ++i) gram.At(i, i) += lambda;

  std::vector<double> xty = MatTVec(xc, yc);
  WMP_ASSIGN_OR_RETURN(CholeskySolver chol, CholeskySolver::Factor(gram));
  WMP_ASSIGN_OR_RETURN(coef_, chol.Solve(xty));
  intercept_ = mean_y - Dot(mean_x, coef_);
  return Status::OK();
}

Result<double> RidgeRegressor::PredictOne(const std::vector<double>& x) const {
  if (!fitted()) return Status::FailedPrecondition("Ridge not fitted");
  if (x.size() != coef_.size()) {
    return Status::InvalidArgument("Ridge::PredictOne dimension mismatch");
  }
  return intercept_ + Dot(x, coef_);
}

Result<std::vector<double>> RidgeRegressor::Predict(const Matrix& x) const {
  if (!fitted()) return Status::FailedPrecondition("Ridge not fitted");
  if (x.cols() != coef_.size()) {
    return Status::InvalidArgument("Ridge::Predict dimension mismatch");
  }
  std::vector<double> out(x.rows());
  util::ParallelFor(x.rows(), 512, [&](size_t begin, size_t end) {
    const size_t d = coef_.size();
    for (size_t i = begin; i < end; ++i) {
      const double* row = x.RowPtr(i);
      double acc = 0.0;
      for (size_t c = 0; c < d; ++c) acc += row[c] * coef_[c];
      out[i] = intercept_ + acc;
    }
  });
  return out;
}

Status RidgeRegressor::Serialize(BinaryWriter* writer) const {
  if (!fitted()) return Status::FailedPrecondition("Ridge not fitted");
  writer->WriteU32(serialize_tags::kRidge);
  writer->WriteDouble(options_.alpha);
  writer->WriteDouble(intercept_);
  writer->WriteDoubleVec(coef_);
  return Status::OK();
}

Result<std::unique_ptr<RidgeRegressor>> RidgeRegressor::Deserialize(
    BinaryReader* reader) {
  WMP_ASSIGN_OR_RETURN(uint32_t tag, reader->ReadU32());
  if (tag != serialize_tags::kRidge) {
    return Status::InvalidArgument("bad ridge magic tag");
  }
  RidgeOptions opt;
  WMP_ASSIGN_OR_RETURN(opt.alpha, reader->ReadDouble());
  auto model = std::make_unique<RidgeRegressor>(opt);
  WMP_ASSIGN_OR_RETURN(model->intercept_, reader->ReadDouble());
  WMP_ASSIGN_OR_RETURN(model->coef_, reader->ReadDoubleVec());
  return model;
}

}  // namespace wmp::ml
