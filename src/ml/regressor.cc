#include "ml/regressor.h"

#include "ml/dtree.h"
#include "ml/gbt.h"
#include "ml/mlp.h"
#include "ml/random_forest.h"
#include "ml/ridge.h"

namespace wmp::ml {

const char* RegressorKindName(RegressorKind kind) {
  switch (kind) {
    case RegressorKind::kRidge:
      return "Ridge";
    case RegressorKind::kDecisionTree:
      return "DT";
    case RegressorKind::kRandomForest:
      return "RF";
    case RegressorKind::kGbt:
      return "XGB";
    case RegressorKind::kMlp:
      return "DNN";
  }
  return "?";
}

const std::vector<RegressorKind>& AllRegressorKinds() {
  static const std::vector<RegressorKind> kKinds = {
      RegressorKind::kMlp, RegressorKind::kRidge, RegressorKind::kDecisionTree,
      RegressorKind::kRandomForest, RegressorKind::kGbt};
  return kKinds;
}

Result<std::vector<double>> Regressor::Predict(const Matrix& x) const {
  std::vector<double> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    WMP_ASSIGN_OR_RETURN(out[i], PredictOne(x.RowVec(i)));
  }
  return out;
}

Result<size_t> Regressor::SerializedSize() const {
  BinaryWriter writer;
  WMP_RETURN_IF_ERROR(Serialize(&writer));
  return writer.size();
}

std::unique_ptr<Regressor> CreateRegressor(RegressorKind kind, uint64_t seed) {
  switch (kind) {
    case RegressorKind::kRidge:
      return std::make_unique<RidgeRegressor>(RidgeOptions{.alpha = 1.0});
    case RegressorKind::kDecisionTree: {
      DecisionTreeOptions opt;
      opt.tree.max_depth = 12;
      opt.tree.min_samples_leaf = 2;
      opt.seed = seed;
      return std::make_unique<DecisionTreeRegressor>(opt);
    }
    case RegressorKind::kRandomForest: {
      RandomForestOptions opt;
      opt.num_trees = 40;
      opt.seed = seed;
      return std::make_unique<RandomForestRegressor>(opt);
    }
    case RegressorKind::kGbt: {
      GbtOptions opt;
      opt.seed = seed;
      return std::make_unique<GbtRegressor>(opt);
    }
    case RegressorKind::kMlp: {
      MlpOptions opt;
      opt.seed = seed;
      return std::make_unique<MlpRegressor>(opt);
    }
  }
  return nullptr;
}

Result<std::unique_ptr<Regressor>> DeserializeRegressor(BinaryReader* reader) {
  WMP_ASSIGN_OR_RETURN(uint32_t tag, reader->PeekU32());
  switch (tag) {
    case serialize_tags::kRidge: {
      WMP_ASSIGN_OR_RETURN(auto m, RidgeRegressor::Deserialize(reader));
      return std::unique_ptr<Regressor>(std::move(m));
    }
    case serialize_tags::kDecisionTree: {
      WMP_ASSIGN_OR_RETURN(auto m, DecisionTreeRegressor::Deserialize(reader));
      return std::unique_ptr<Regressor>(std::move(m));
    }
    case serialize_tags::kRandomForest: {
      WMP_ASSIGN_OR_RETURN(auto m, RandomForestRegressor::Deserialize(reader));
      return std::unique_ptr<Regressor>(std::move(m));
    }
    case serialize_tags::kGbt: {
      WMP_ASSIGN_OR_RETURN(auto m, GbtRegressor::Deserialize(reader));
      return std::unique_ptr<Regressor>(std::move(m));
    }
    case serialize_tags::kMlp: {
      WMP_ASSIGN_OR_RETURN(auto m, MlpRegressor::Deserialize(reader));
      return std::unique_ptr<Regressor>(std::move(m));
    }
    default:
      return Status::InvalidArgument("unknown regressor magic tag");
  }
}

}  // namespace wmp::ml
