#include "core/workload.h"

#include <algorithm>

#include "util/hash.h"

namespace wmp::core {

using util::Mix64;

uint64_t QueryFingerprint(const workloads::QueryRecord& record) {
  // The dataset builder and log loader memoize the content hash at ingest;
  // records from other sources fall back to hashing here.
  return record.content_fingerprint != 0
             ? record.content_fingerprint
             : workloads::ContentFingerprint(record);
}

uint64_t WorkloadFingerprint(const std::vector<workloads::QueryRecord>& records,
                             const std::vector<uint32_t>& batch) {
  // Histograms are order-invariant, so combine with commutative ops. Sum
  // and xor-of-mixed together keep multiset multiplicity (xor alone cancels
  // duplicate pairs; sum alone is weak against crafted splits).
  uint64_t sum = 0, xr = 0;
  for (uint32_t i : batch) {
    const uint64_t h = QueryFingerprint(records[i]);
    sum += h;
    xr ^= Mix64(h);
  }
  return Mix64(sum ^ Mix64(xr + static_cast<uint64_t>(batch.size())));
}

double ComputeWorkloadLabel(const std::vector<workloads::QueryRecord>& records,
                            const std::vector<uint32_t>& batch,
                            WorkloadLabel label) {
  double value = 0.0;
  for (uint32_t i : batch) {
    const double m = records[i].actual_memory_mb;
    value = label == WorkloadLabel::kSum ? value + m : std::max(value, m);
  }
  return value;
}

std::vector<WorkloadBatch> BuildWorkloads(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<uint32_t>& indices, const WorkloadSetOptions& options) {
  const size_t s = static_cast<size_t>(std::max(options.batch_size, 1));
  std::vector<uint32_t> order = indices;
  if (options.shuffle) {
    Rng rng(options.seed);
    rng.Shuffle(&order);
  }
  std::vector<WorkloadBatch> batches;
  batches.reserve(order.size() / s);
  for (size_t start = 0; start + s <= order.size(); start += s) {
    WorkloadBatch batch;
    batch.query_indices.assign(
        order.begin() + static_cast<std::ptrdiff_t>(start),
        order.begin() + static_cast<std::ptrdiff_t>(start + s));
    batch.label_mb = ComputeWorkloadLabel(records, batch.query_indices,
                                          options.label);
    batches.push_back(std::move(batch));
  }
  return batches;
}

}  // namespace wmp::core
