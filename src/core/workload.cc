#include "core/workload.h"

#include <algorithm>

namespace wmp::core {

double ComputeWorkloadLabel(const std::vector<workloads::QueryRecord>& records,
                            const std::vector<uint32_t>& batch,
                            WorkloadLabel label) {
  double value = 0.0;
  for (uint32_t i : batch) {
    const double m = records[i].actual_memory_mb;
    value = label == WorkloadLabel::kSum ? value + m : std::max(value, m);
  }
  return value;
}

std::vector<WorkloadBatch> BuildWorkloads(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<uint32_t>& indices, const WorkloadSetOptions& options) {
  const size_t s = static_cast<size_t>(std::max(options.batch_size, 1));
  std::vector<uint32_t> order = indices;
  if (options.shuffle) {
    Rng rng(options.seed);
    rng.Shuffle(&order);
  }
  std::vector<WorkloadBatch> batches;
  batches.reserve(order.size() / s);
  for (size_t start = 0; start + s <= order.size(); start += s) {
    WorkloadBatch batch;
    batch.query_indices.assign(
        order.begin() + static_cast<std::ptrdiff_t>(start),
        order.begin() + static_cast<std::ptrdiff_t>(start + s));
    batch.label_mb = ComputeWorkloadLabel(records, batch.query_indices,
                                          options.label);
    batches.push_back(std::move(batch));
  }
  return batches;
}

}  // namespace wmp::core
