#ifndef WMP_CORE_HISTOGRAM_H_
#define WMP_CORE_HISTOGRAM_H_

/// \file histogram.h
/// Workload histograms (paper §II, def. "Workload Histogram"): the k-bin
/// count vector H = [c_1 ... c_k] recording how a workload's queries
/// distribute over the query templates. Sum of bins == workload size
/// (paper eq. 4/8).

#include <vector>

#include "util/status.h"

namespace wmp::core {

/// \brief Counts template assignments into a k-bin histogram.
///
/// Fails if any id lies outside `[0, num_templates)`.
Result<std::vector<double>> BuildHistogram(const std::vector<int>& template_ids,
                                           int num_templates);

/// Sum of all bins (== number of queries binned).
double HistogramMass(const std::vector<double>& histogram);

}  // namespace wmp::core

#endif  // WMP_CORE_HISTOGRAM_H_
