#ifndef WMP_CORE_HISTOGRAM_H_
#define WMP_CORE_HISTOGRAM_H_

/// \file histogram.h
/// Workload histograms (paper §II, def. "Workload Histogram"): the k-bin
/// count vector H = [c_1 ... c_k] recording how a workload's queries
/// distribute over the query templates. Sum of bins == workload size
/// (paper eq. 4/8).

#include <cstddef>
#include <vector>

#include "ml/linalg.h"
#include "util/status.h"

namespace wmp::core {

/// \brief Counts template assignments into a k-bin histogram.
///
/// Fails if any id lies outside `[0, num_templates)`.
Result<std::vector<double>> BuildHistogram(const std::vector<int>& template_ids,
                                           int num_templates);

/// \brief Batched histogram construction (IN4 over many workloads at once).
///
/// `template_ids` holds the assignments of every query of every workload in
/// workload-major order; workload `w` owns the slice
/// `[offsets[w], offsets[w+1])`. Returns a `(offsets.size()-1) x
/// num_templates` count matrix with one histogram per row. Rows are filled
/// in parallel (each worker writes only its own rows). Fails if any id lies
/// outside `[0, num_templates)` or the offsets are not monotone and bounded
/// by `template_ids.size()`.
Result<ml::Matrix> BuildHistogramMatrix(const std::vector<int>& template_ids,
                                        const std::vector<size_t>& offsets,
                                        int num_templates);

/// \brief Cache-aware scatter variant of BuildHistogramMatrix.
///
/// Fills only the rows `row_map[w]` of the preallocated `*out` (zeroing
/// each before accumulating); rows not listed are left untouched. This is
/// the histogram-cache miss path: the serving layer copies cached
/// histograms into their rows directly and asks this function to compute
/// just the missed workloads, whose assignments arrive as the same
/// flattened `(template_ids, offsets)` layout BuildHistogramMatrix takes
/// (`offsets.size() - 1 == row_map.size()`). Target rows must be distinct —
/// they are filled concurrently. Fails without touching `*out` beyond
/// already-written rows if any id, offset, or target row is out of range
/// or duplicated.
Status BuildHistogramRows(const std::vector<int>& template_ids,
                          const std::vector<size_t>& offsets,
                          int num_templates,
                          const std::vector<size_t>& row_map, ml::Matrix* out);

/// Sum of all bins (== number of queries binned).
double HistogramMass(const std::vector<double>& histogram);

}  // namespace wmp::core

#endif  // WMP_CORE_HISTOGRAM_H_
