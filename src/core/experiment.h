#ifndef WMP_CORE_EXPERIMENT_H_
#define WMP_CORE_EXPERIMENT_H_

/// \file experiment.h
/// Shared experiment harness behind every `bench/fig*` binary: builds the
/// dataset, performs the 80/20 split, trains SingleWMP and LearnedWMP
/// variants across all model families, and collects the metrics the paper
/// plots — RMSE (Fig. 4), residual distributions (Fig. 5), training time
/// (Fig. 6), inference time (Fig. 7), and model size (Fig. 8).

#include <string>
#include <vector>

#include "core/learned_wmp.h"
#include "core/single_wmp.h"
#include "ml/metrics.h"
#include "workloads/dataset.h"

namespace wmp::core {

/// Per-benchmark default template count k, as the paper's elbow tuning
/// lands: large for TPC-DS (best at 100, Fig. 10a), moderate for JOB and
/// TPC-C (optimum 20-40, Fig. 10b/c).
int DefaultNumTemplates(workloads::Benchmark benchmark);

/// Experiment configuration shared by the figure harnesses.
struct ExperimentConfig {
  workloads::Benchmark benchmark = workloads::Benchmark::kTpcds;
  /// Fraction of the paper's query count to generate (1.0 = paper scale).
  double scale = 1.0;
  int batch_size = 10;
  int num_templates = 0;  ///< 0 = DefaultNumTemplates(benchmark)
  WorkloadLabel label = WorkloadLabel::kSum;
  TemplateMethod template_method = TemplateMethod::kPlanKMeans;
  double test_fraction = 0.2;
  uint64_t seed = 42;
};

/// Metrics of one model on the test workloads.
struct ModelReport {
  std::string name;  ///< e.g. "LearnedWMP-XGB", "SingleWMP-DBMS"
  double rmse = 0.0;
  double mape = 0.0;
  ml::ResidualSummary residuals;
  double train_ms = 0.0;            ///< regressor fit time (Fig. 6)
  /// Fit-phase breakdown (tree families: bin / grow / round-update; zeros
  /// elsewhere) — the machine-readable detail behind fig6's --json output.
  ml::FitTiming fit_timing;
  double infer_us_per_workload = 0.0;  ///< Fig. 7
  size_t model_bytes = 0;           ///< serialized regressor (Fig. 8)
  /// Bytes the same regressor would occupy under the legacy pointer-tree
  /// codec (five 8-byte fields per node); equals model_bytes for non-tree
  /// families. fig8's pointer-vs-compiled comparison.
  size_t pointer_model_bytes = 0;
  std::vector<double> predictions;  ///< per test workload
};

/// Everything the figure harnesses need.
struct ExperimentResult {
  std::string benchmark;
  size_t num_queries = 0;
  size_t num_train_queries = 0;
  size_t num_test_workloads = 0;
  int num_templates = 0;
  double template_learning_ms = 0.0;  ///< phase-1 cost, reported once
  std::vector<double> test_labels;    ///< actual y per test workload
  std::vector<ModelReport> reports;
};

/// \brief Prepared experiment state, reusable across model sweeps (the
/// dataset and split are built once; individual benches then train the
/// models they need).
struct ExperimentData {
  workloads::Dataset dataset;
  std::vector<uint32_t> train_indices;
  std::vector<uint32_t> test_indices;
  std::vector<WorkloadBatch> test_batches;
  std::vector<double> test_labels;
  ExperimentConfig config;
};

/// Builds the dataset and the query-level 80/20 split plus test workloads.
Result<ExperimentData> PrepareExperiment(const ExperimentConfig& config);

/// Trains + evaluates one LearnedWMP variant on prepared data. If
/// `template_ms_out` is non-null it receives the phase-1 (template
/// learning) wall time, which is shared across the Learned variants. A
/// shared `bin_cache` lets the tree families (DT/RF/GBT) bin the identical
/// histogram design matrix once across the sweep.
Result<ModelReport> EvaluateLearnedWmp(const ExperimentData& data,
                                       ml::RegressorKind kind,
                                       double* template_ms_out = nullptr,
                                       ml::BinnedDatasetCache* bin_cache = nullptr);

/// Trains + evaluates one SingleWMP variant on prepared data; `bin_cache`
/// as in EvaluateLearnedWmp (the per-query scaled design is also identical
/// across the tree families).
Result<ModelReport> EvaluateSingleWmp(const ExperimentData& data,
                                      ml::RegressorKind kind,
                                      ml::BinnedDatasetCache* bin_cache = nullptr);

/// Evaluates the SingleWMP-DBMS baseline (no training).
ModelReport EvaluateDbmsBaseline(const ExperimentData& data);

/// \brief Full sweep: DBMS baseline + Single/Learned across all five model
/// families — the data behind Figs. 4-8.
Result<ExperimentResult> RunCoreExperiment(const ExperimentConfig& config);

/// Same sweep over already-prepared data, for harnesses that reuse the
/// dataset for further measurements (e.g. fig7's batch-throughput sweep) —
/// the dataset and split are built exactly once.
Result<ExperimentResult> RunCoreExperiment(const ExperimentData& data);

}  // namespace wmp::core

#endif  // WMP_CORE_EXPERIMENT_H_
