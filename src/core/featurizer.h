#ifndef WMP_CORE_FEATURIZER_H_
#define WMP_CORE_FEATURIZER_H_

/// \file featurizer.h
/// Bridges query records to ML inputs: feature matrices and label vectors
/// over arbitrary row subsets.

#include <vector>

#include "ml/linalg.h"
#include "workloads/query_record.h"

namespace wmp::core {

/// Plan-feature matrix (TR2 output) for the selected records.
ml::Matrix PlanFeatureMatrix(const std::vector<workloads::QueryRecord>& records,
                             const std::vector<uint32_t>& indices);

/// Actual peak memory labels (MB) for the selected records.
std::vector<double> ActualMemoryVector(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<uint32_t>& indices);

/// DBMS heuristic estimates (MB) for the selected records.
std::vector<double> DbmsEstimateVector(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<uint32_t>& indices);

/// Identity index vector [0, n).
std::vector<uint32_t> AllIndices(size_t n);

}  // namespace wmp::core

#endif  // WMP_CORE_FEATURIZER_H_
